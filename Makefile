GO ?= go
FUZZTIME ?= 30s
MAX_REGRESS ?= 0.25

.PHONY: all build test race cover cover-gate bench bench-json bench-gate alloc-gate ci fmt-check fuzz fuzz-smoke soak-agent soak-stream soak-cluster serve-smoke cluster-smoke experiments examples clean

all: build test

# Everything the lint + test CI jobs run, reproducible offline. The
# network-installed linters (staticcheck, govulncheck) only run when they
# are already on PATH, so `make ci` gives the same verdict on an
# air-gapped machine as in CI minus those two advisory steps.
ci: fmt-check build test
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "ci: staticcheck not installed, skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck ./..."; govulncheck ./...; \
	else \
		echo "ci: govulncheck not installed, skipping"; \
	fi

# gofmt -l prints offending files but always exits 0; fail explicitly.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Coverage gate: internal/failure is the substrate every Monte Carlo
# oracle, experiment schedule and scenario-source job is built on, so its
# statement coverage is floored (currently measured ~96%; the floor
# leaves headroom for refactors without letting whole features land
# untested). Writes coverage.out so CI can publish the profile.
COVER_FLOOR_FAILURE ?= 90
cover-gate:
	$(GO) test -coverprofile=coverage.out ./internal/failure/
	@pct="$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }')"; \
	echo "internal/failure coverage: $$pct% (floor $(COVER_FLOOR_FAILURE)%)"; \
	awk -v p="$$pct" -v f="$(COVER_FLOOR_FAILURE)" 'BEGIN { exit (p + 0 < f + 0) ? 1 : 0 }' || \
		{ echo "cover-gate: internal/failure coverage $$pct% fell below the $(COVER_FLOOR_FAILURE)% floor"; exit 1; }

bench:
	$(GO) test -bench=. -benchmem ./...

# Run the tracked benchmark suites and record ns/op, allocs/op and
# throughput (plus optimized-vs-baseline speedups) in BENCH_selection.json
# (Monte Carlo kernels), BENCH_bandit.json (epoch-incremental LSR +
# trial-sharded experiment runners) and BENCH_obs.json (observability hot
# paths, proving the nil-registry cost is a single nil check), tracking
# the perf trajectory across PRs.
bench-json:
	$(GO) run ./cmd/benchregress -suite selection
	$(GO) run ./cmd/benchregress -suite bandit
	$(GO) run ./cmd/benchregress -suite obs
	$(GO) run ./cmd/benchregress -suite agent
	$(GO) run ./cmd/benchregress -suite loss
	$(GO) run ./cmd/benchregress -suite cluster
	$(GO) run ./cmd/benchregress -suite failure

# CI perf gate: rerun every tracked suite and fail if any benchmark lost
# more than MAX_REGRESS (default 25%) of its committed-baseline
# throughput, or disappeared from the suite without a re-baseline.
bench-gate:
	$(GO) run ./cmd/benchregress -suite selection -compare -max-regress $(MAX_REGRESS)
	$(GO) run ./cmd/benchregress -suite bandit -compare -max-regress $(MAX_REGRESS)
	$(GO) run ./cmd/benchregress -suite obs -compare -max-regress $(MAX_REGRESS)
	$(GO) run ./cmd/benchregress -suite agent -compare -max-regress $(MAX_REGRESS)
	$(GO) run ./cmd/benchregress -suite loss -compare -max-regress $(MAX_REGRESS)
	$(GO) run ./cmd/benchregress -suite cluster -compare -max-regress $(MAX_REGRESS)
	$(GO) run ./cmd/benchregress -suite failure -compare -max-regress $(MAX_REGRESS)

# CI allocation gate: the steady-state zero-allocation contracts asserted
# with testing.AllocsPerRun — the Monte Carlo incremental oracle (Gain,
# GainBatch, splitless Add on both kernels), the GF(2) basis slab reuse and
# the sparse-basis scratch pre-sizing. Gated, not just documented.
alloc-gate:
	$(GO) test -run 'TestMonteCarloIncSteadyStateZeroAlloc' -count=1 -v ./internal/er/
	$(GO) test -run 'TestGF2BasisSteadyStateAllocs|TestSparseBasisScratchPresized|TestSparseBasisDependentScratchAllocFree' -count=1 -v ./internal/linalg/
	$(GO) test -run 'TestRankOfWithGF2' -count=1 -v ./internal/tomo/

fuzz: fuzz-smoke

# Native fuzzing smoke: every target gets FUZZTIME (go test accepts one
# -fuzz pattern per invocation, hence one line per target). Each target
# ships a seed corpus via f.Add, so even -fuzztime 0 replays the known
# tricky frames. Targets: the GF(2)-vs-float64 rank differential, the
# scenario-source contract invariants, the edge-list and weight parsers,
# the canonical cache-key encoder, and the agent and cluster wire codecs.
fuzz-smoke:
	$(GO) test -fuzz=FuzzGF2VsFloat64Rank -fuzztime=$(FUZZTIME) ./internal/linalg/
	$(GO) test -fuzz=FuzzScenarioSource -fuzztime=$(FUZZTIME) ./internal/failure/
	$(GO) test -fuzz=FuzzReadEdgeList -fuzztime=$(FUZZTIME) ./internal/graph/
	$(GO) test -fuzz=FuzzLoadWeights -fuzztime=$(FUZZTIME) ./internal/topo/
	$(GO) test -fuzz=FuzzCanonicalKey -fuzztime=$(FUZZTIME) ./internal/selection/
	$(GO) test -fuzz=FuzzWireFrame -fuzztime=$(FUZZTIME) ./internal/agent/
	$(GO) test -fuzz=FuzzWireRoundTrip -fuzztime=$(FUZZTIME) ./internal/agent/
	$(GO) test -fuzz=FuzzBatchFrame -fuzztime=$(FUZZTIME) ./internal/agent/
	$(GO) test -fuzz=FuzzBatchRoundTrip -fuzztime=$(FUZZTIME) ./internal/agent/
	$(GO) test -fuzz=FuzzPeerFrame -fuzztime=$(FUZZTIME) ./internal/cluster/
	$(GO) test -fuzz=FuzzPeerRoundTrip -fuzztime=$(FUZZTIME) ./internal/cluster/

# Hammer the fault-tolerant collection plane (retries, circuit breakers,
# persistent sessions) with scripted faults and concurrent collectors
# under the race detector. Bounded well under 30s.
soak-agent:
	AGENT_SOAK=1 $(GO) test -race -run TestAgentSoak -count=1 -timeout 60s -v ./internal/agent/

# Drive STREAM_SOAK_SESSIONS (default 100000) logical monitor sessions,
# multiplexed over a few thousand real TCP connections, through the
# streaming collection plane: asserts complete epoch assembly and flat
# heap across epochs, and logs sustained frames/sec. Uses the full
# descriptor budget (the test raises the soft NOFILE limit to the hard
# one and clamps the session count to what the limit can carry).
soak-stream:
	STREAM_SOAK=1 $(GO) test -run TestStreamSoak -count=1 -timeout 590s -v ./internal/agent/

# Drive the `tomo serve` daemon two ways: the in-process race-detector
# tests over the whole HTTP surface, then scripts/serve_smoke.sh, which
# boots the real binary on a random port, walks the job API with curl and
# shuts it down with SIGTERM. The script traps EXIT/INT/TERM and kills
# the daemon PID on every exit path, so a failing assertion can never
# leave an orphaned daemon hanging a CI runner.
serve-smoke:
	$(GO) test -race -run 'TestServe|TestAPI' -count=1 -timeout 120s -v ./cmd/tomo/
	./scripts/serve_smoke.sh

# Churn soak for the cluster plane: a 16-node in-process ring under the
# race detector with peers being killed and revived while submitters
# spray a shared key space. Asserts no submission is lost, every result
# is bit-identical to the single-node reference, and every node's
# disposition ledger balances after the drain. Bounded well under 60s.
soak-cluster:
	CLUSTER_SOAK=1 $(GO) test -race -run TestClusterChurnSoak -count=1 -timeout 120s -v ./internal/cluster/

# Boot three real `tomo serve` daemons wired into one consistent-hash
# ring, walk the forwarded job path with curl, kill the owner with
# SIGKILL and prove the survivors route around it. The script traps
# EXIT/INT/TERM and kills all daemon PIDs on every exit path.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Regenerate every paper table/figure at quick scale (seconds). Use
# SCALE=medium or SCALE=paper for the larger runs.
SCALE ?= quick
experiments:
	$(GO) run ./cmd/experiments -run all -scale $(SCALE)

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/linkinference
	$(GO) run ./examples/monitoring
	$(GO) run ./examples/lossinference
	$(GO) run ./examples/agents
	$(GO) run ./examples/closedloop
	$(GO) run ./examples/learning
	$(GO) run ./examples/observability
	$(GO) run ./examples/service

clean:
	$(GO) clean ./...
