GO ?= go

.PHONY: all build test race cover bench bench-json fuzz soak-agent serve-smoke experiments examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Run the tracked benchmark suites and record ns/op, allocs/op and
# throughput (plus optimized-vs-baseline speedups) in BENCH_selection.json
# (Monte Carlo kernels), BENCH_bandit.json (epoch-incremental LSR +
# trial-sharded experiment runners) and BENCH_obs.json (observability hot
# paths, proving the nil-registry cost is a single nil check), tracking
# the perf trajectory across PRs.
bench-json:
	$(GO) run ./cmd/benchregress -suite selection
	$(GO) run ./cmd/benchregress -suite bandit
	$(GO) run ./cmd/benchregress -suite obs

fuzz:
	$(GO) test -fuzz=FuzzReadEdgeList -fuzztime=30s ./internal/graph/
	$(GO) test -fuzz=FuzzLoadWeights -fuzztime=30s ./internal/topo/

# Hammer the fault-tolerant collection plane (retries, circuit breakers,
# persistent sessions) with scripted faults and concurrent collectors
# under the race detector. Bounded well under 30s.
soak-agent:
	AGENT_SOAK=1 $(GO) test -race -run TestAgentSoak -count=1 -timeout 60s -v ./internal/agent/

# Boot the `tomo serve` daemon on a random port under the race detector
# and drive its whole HTTP surface: /readyz, the breaker-aware /healthz
# flip after the monitor kill, Prometheus metric families from every
# instrumented layer on /metrics, /statusz JSON, pprof, expvar, and a real
# SIGTERM graceful shutdown.
serve-smoke:
	$(GO) test -race -run 'TestServe' -count=1 -timeout 120s -v ./cmd/tomo/

# Regenerate every paper table/figure at quick scale (seconds). Use
# SCALE=medium or SCALE=paper for the larger runs.
SCALE ?= quick
experiments:
	$(GO) run ./cmd/experiments -run all -scale $(SCALE)

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/linkinference
	$(GO) run ./examples/monitoring
	$(GO) run ./examples/lossinference
	$(GO) run ./examples/agents
	$(GO) run ./examples/closedloop
	$(GO) run ./examples/learning
	$(GO) run ./examples/observability

clean:
	$(GO) clean ./...
