package robusttomo

// Ablation bench: dense vs sparse incremental basis on genuine candidate
// paths (AS1239-scale). Real path rows are tree-structured with limited
// elimination fill-in, where the sparse representation wins ~2×; on
// random-support rows the dense basis wins instead (see the linalg
// package benches), which is why both implementations exist.

import (
	"testing"

	"robusttomo/internal/experiments"
	"robusttomo/internal/linalg"
)

func BenchmarkAblationSparseVsDenseBasis(b *testing.B) {
	in, err := experiments.BuildInstance(experiments.Workload{Preset: "AS1239", CandidatePaths: 2500}, experiments.QuickScale(), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			basis := linalg.NewBasis(in.PM.NumLinks())
			for r := 0; r < in.PM.NumPaths(); r++ {
				basis.Add(in.PM.Row(r))
			}
		}
	})
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			basis := linalg.NewSparseBasis(in.PM.NumLinks())
			for r := 0; r < in.PM.NumPaths(); r++ {
				basis.Add(in.PM.Row(r))
			}
		}
	})
}
