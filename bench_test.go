package robusttomo

// One benchmark per table/figure of the paper (DESIGN.md §3). Each bench
// runs the corresponding experiment at a reduced but faithful scale (the
// same runners cmd/experiments uses at paper scale) and reports the
// figure's headline quantities as custom metrics, so `go test -bench=.`
// regenerates the shape of every result in one command.

import (
	"testing"

	"robusttomo/internal/experiments"
	"robusttomo/internal/topo"
)

// benchWorkload mirrors the paper's setup at bench scale: an ISP-like
// topology with a deterministic seed.
func benchWorkload() experiments.Workload {
	return experiments.Workload{
		CandidatePaths: 100,
		Custom:         &topo.Config{Name: "bench", Nodes: 60, Links: 130, PoPs: 5, Seed: 4242},
	}
}

func benchScale() experiments.Scale {
	return experiments.Scale{MonitorSets: 2, Scenarios: 50, MonteCarloRuns: 25, ExpectedFailures: 2, Seed: 2014}
}

func BenchmarkTableITopologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableI()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFig3RankUnderFailures(b *testing.B) {
	cfg := experiments.Fig3Config{Workload: benchWorkload(), MaxFailures: 5, Trials: 40}
	var fig experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Fig3(cfg, benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	all, _ := fig.SeriesByName("AllPaths")
	basis, _ := fig.SeriesByName("Basis-1")
	b.ReportMetric(all.FinalMean(), "allpaths-rank")
	b.ReportMetric(basis.FinalMean(), "basis-rank")
}

func BenchmarkFig4ERBound(b *testing.B) {
	cfg := experiments.Fig4Config{
		Workload:      benchWorkload(),
		MaxDependent:  8,
		ReferenceRuns: 2000,
		SmallRuns:     50,
	}
	var fig experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Fig4(cfg, benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	ref, _ := fig.SeriesByName("MC-2000")
	bound, _ := fig.SeriesByName("ProbBound")
	b.ReportMetric(ref.FinalMean(), "mc-ref-er")
	b.ReportMetric(bound.FinalMean(), "probbound-er")
}

func BenchmarkFig5RankVsBudget(b *testing.B) {
	cfg := experiments.BudgetSweepConfig{
		Workload:   benchWorkload(),
		Multiplier: []float64{0.5, 1.0},
	}
	var res experiments.BudgetSweepResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.BudgetSweep(cfg, benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	prob, _ := res.Rank.SeriesByName(experiments.AlgProbRoMe)
	monte, _ := res.Rank.SeriesByName(experiments.AlgMonteRoMe)
	sp, _ := res.Rank.SeriesByName(experiments.AlgSelectPath)
	pr, _ := prob.MeanAt(0.5)
	mr, _ := monte.MeanAt(0.5)
	sr, _ := sp.MeanAt(0.5)
	b.ReportMetric(pr, "probrome-rank")
	b.ReportMetric(mr, "monterome-rank")
	b.ReportMetric(sr, "selectpath-rank")
}

func BenchmarkFig6RankCDF(b *testing.B) {
	cfg := experiments.RankCDFConfig{Workload: benchWorkload(), Multiplier: 0.75}
	var fig experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.RankCDF(cfg, benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	// Median rank per algorithm: the x where the CDF crosses 0.5.
	for _, s := range fig.Series {
		median := 0.0
		for _, p := range s.Points {
			if p.Mean >= 0.5 {
				median = p.X
				break
			}
		}
		switch s.Name {
		case experiments.AlgProbRoMe:
			b.ReportMetric(median, "probrome-median")
		case experiments.AlgSelectPath:
			b.ReportMetric(median, "selectpath-median")
		}
	}
}

func BenchmarkFig7Identifiability(b *testing.B) {
	cfg := experiments.BudgetSweepConfig{
		Workload:            benchWorkload(),
		Multiplier:          []float64{0.75},
		Algorithms:          []string{experiments.AlgProbRoMe, experiments.AlgSelectPath},
		WithIdentifiability: true,
	}
	var res experiments.BudgetSweepResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.BudgetSweep(cfg, benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	prob, _ := res.Ident.SeriesByName(experiments.AlgProbRoMe)
	sp, _ := res.Ident.SeriesByName(experiments.AlgSelectPath)
	b.ReportMetric(prob.FinalMean(), "probrome-ident")
	b.ReportMetric(sp.FinalMean(), "selectpath-ident")
}

func BenchmarkFig8RankLoss(b *testing.B) {
	cfg := experiments.MatroidLossConfig{
		Base:       benchWorkload(),
		PathCounts: []int{50, 100},
	}
	var res experiments.MatroidLossResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.MatroidLoss(cfg, benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	mat, _ := res.RankLoss.SeriesByName(experiments.AlgMatRoMe)
	sp, _ := res.RankLoss.SeriesByName(experiments.AlgSelectPath)
	b.ReportMetric(mat.FinalMean(), "matrome-rankloss")
	b.ReportMetric(sp.FinalMean(), "selectpath-rankloss")
}

func BenchmarkFig9IdentifiabilityLoss(b *testing.B) {
	cfg := experiments.MatroidLossConfig{
		Base:       benchWorkload(),
		PathCounts: []int{50, 100},
	}
	var res experiments.MatroidLossResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.MatroidLoss(cfg, benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	mat, _ := res.IdentLoss.SeriesByName(experiments.AlgMatRoMe)
	sp, _ := res.IdentLoss.SeriesByName(experiments.AlgSelectPath)
	b.ReportMetric(mat.FinalMean(), "matrome-identloss")
	b.ReportMetric(sp.FinalMean(), "selectpath-identloss")
}

func BenchmarkFig10LSR(b *testing.B) {
	cfg := experiments.LearningConfig{
		Workload:   benchWorkload(),
		Multiplier: []float64{0.75},
		Epochs:     []int{100, 300},
	}
	var fig experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Learning(cfg, benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	lsr, _ := fig.SeriesByName("LSR-300")
	prob, _ := fig.SeriesByName(experiments.AlgProbRoMe)
	sp, _ := fig.SeriesByName(experiments.AlgSelectPath)
	b.ReportMetric(lsr.FinalMean(), "lsr-rank")
	b.ReportMetric(prob.FinalMean(), "probrome-rank")
	b.ReportMetric(sp.FinalMean(), "selectpath-rank")
}

// Ablation benches (DESIGN.md §6).

func BenchmarkAblationLazyGreedy(b *testing.B) {
	var res experiments.LazyAblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.LazyAblation(benchWorkload(), benchScale(), 0.75)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.LazyEvaluations), "lazy-evals")
	b.ReportMetric(float64(res.NaiveEvaluations), "naive-evals")
	b.ReportMetric(res.Speedup, "speedup")
}

func BenchmarkAblationOracleQuality(b *testing.B) {
	var res experiments.OracleQualityResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.OracleQuality(benchWorkload(), benchScale(), 0.75, 1000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ProbBoundER, "probbound-er")
	b.ReportMetric(res.MonteCarloER, "montecarlo-er")
}

// Extension benches (beyond the paper's figures).

func BenchmarkExtCorrelated(b *testing.B) {
	cfg := experiments.CorrelatedConfig{
		Workload: benchWorkload(), Multiplier: 0.75, GroupProb: 0.15, MaxGroup: 4,
	}
	var fig experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Correlated(cfg, benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	blind, _ := fig.SeriesByName("ProbRoMe-marginals")
	aware, _ := fig.SeriesByName("MonteRoMe-joint")
	sp, _ := fig.SeriesByName(experiments.AlgSelectPath)
	b.ReportMetric(blind.FinalMean(), "blind-rank")
	b.ReportMetric(aware.FinalMean(), "aware-rank")
	b.ReportMetric(sp.FinalMean(), "selectpath-rank")
}

func BenchmarkExtMultipath(b *testing.B) {
	cfg := experiments.MultipathConfig{
		Workload: benchWorkload(), Multiplier: 0.75, K: []int{1, 2},
	}
	var fig experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Multipath(cfg, benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	s, _ := fig.SeriesByName(experiments.AlgProbRoMe)
	k1, _ := s.MeanAt(1)
	k2, _ := s.MeanAt(2)
	b.ReportMetric(k1, "k1-rank")
	b.ReportMetric(k2, "k2-rank")
}

func BenchmarkExtClosedLoop(b *testing.B) {
	cfg := experiments.ClosedLoopConfig{
		Workload: benchWorkload(), Multiplier: 0.6, Horizon: 120, Windows: 4,
	}
	var fig experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.ClosedLoop(cfg, benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	static, _ := fig.SeriesByName("Static")
	learning, _ := fig.SeriesByName("Learning")
	b.ReportMetric(static.FinalMean(), "static-rank")
	b.ReportMetric(learning.FinalMean(), "learning-rank")
}

func BenchmarkExtLearnerDuel(b *testing.B) {
	cfg := experiments.LearnerDuelConfig{
		Workload: benchWorkload(), Multiplier: 0.5, Horizon: 150, Windows: 3,
	}
	var fig experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.LearnerDuel(cfg, benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	lsr, _ := fig.SeriesByName("LSR")
	eg, _ := fig.SeriesByName("eps-greedy-0.2")
	b.ReportMetric(lsr.FinalMean(), "lsr-reward")
	b.ReportMetric(eg.FinalMean(), "egreedy-reward")
}

func BenchmarkExtRegret(b *testing.B) {
	cfg := experiments.RegretConfig{
		Workload: benchWorkload(), Multiplier: 0.5, Horizon: 500, Checkpoints: 5,
	}
	var curve experiments.RegretCurve
	var err error
	for i := 0; i < b.N; i++ {
		curve, err = experiments.Regret(cfg, benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(curve.Regret[len(curve.Regret)-1], "final-regret")
	b.ReportMetric(curve.PerLog[len(curve.PerLog)-1], "regret-per-log")
}

// Micro-benchmarks of the hot kernels.

func BenchmarkKernelRank(b *testing.B) {
	in, err := experiments.BuildInstance(benchWorkload(), benchScale(), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if in.PM.Rank() == 0 {
			b.Fatal("zero rank")
		}
	}
}

func BenchmarkKernelProbRoMeSelection(b *testing.B) {
	in, err := experiments.BuildInstance(benchWorkload(), benchScale(), 0)
	if err != nil {
		b.Fatal(err)
	}
	budget := 0.75 * benchBasisCost(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Select(experiments.AlgProbRoMe, budget, benchScale(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelMonteRoMeSelection(b *testing.B) {
	in, err := experiments.BuildInstance(benchWorkload(), benchScale(), 0)
	if err != nil {
		b.Fatal(err)
	}
	budget := 0.75 * benchBasisCost(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Select(experiments.AlgMonteRoMe, budget, benchScale(), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBasisCost(in *experiments.Instance) float64 {
	order := make([]int, in.PM.NumPaths())
	for i := range order {
		order[i] = i
	}
	total := 0.0
	for _, q := range in.PM.SelectBasisIndices(order) {
		total += in.Costs[q]
	}
	return total
}
