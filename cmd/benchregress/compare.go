package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// Regression is one benchmark whose current throughput fell outside the
// allowed envelope of its committed baseline, or that vanished from the
// suite entirely.
type Regression struct {
	Name string `json:"name"`
	// BaselineNsPerOp and CurrentNsPerOp are the compared figures; both
	// zero when Missing.
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	CurrentNsPerOp  float64 `json:"current_ns_per_op,omitempty"`
	// Ratio is current over baseline ns/op (> 1 means slower).
	Ratio float64 `json:"ratio,omitempty"`
	// Missing marks a baseline benchmark absent from the current run — a
	// renamed or deleted benchmark must be re-baselined, not ignored.
	Missing bool `json:"missing,omitempty"`
}

func (r Regression) String() string {
	if r.Missing {
		return fmt.Sprintf("%s: missing from current run (baseline %.0f ns/op)", r.Name, r.BaselineNsPerOp)
	}
	return fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%.2fx slower)",
		r.Name, r.CurrentNsPerOp, r.BaselineNsPerOp, r.Ratio)
}

// CompareReports checks every baseline benchmark against the current
// run. maxRegress is a throughput fraction: 0.25 means a benchmark may
// lose up to 25% throughput before it counts as a regression, i.e. its
// ns/op may grow to baseline/(1−0.25). Benchmarks present only in the
// current run are new and pass; benchmarks present only in the baseline
// are reported as missing. Returned regressions follow baseline order,
// so output is deterministic.
func CompareReports(baseline, current Report, maxRegress float64) []Regression {
	if maxRegress < 0 || maxRegress >= 1 {
		// A nonsense envelope would silently pass or reject everything;
		// clamp to the conventional gate instead.
		maxRegress = 0.25
	}
	cur := make(map[string]Entry, len(current.Benchmarks))
	for _, e := range current.Benchmarks {
		cur[e.Name] = e
	}
	var regs []Regression
	for _, base := range baseline.Benchmarks {
		if base.NsPerOp <= 0 {
			continue // unusable baseline line; nothing to gate against
		}
		e, ok := cur[base.Name]
		if !ok {
			regs = append(regs, Regression{Name: base.Name, BaselineNsPerOp: base.NsPerOp, Missing: true})
			continue
		}
		limit := base.NsPerOp / (1 - maxRegress)
		if e.NsPerOp > limit {
			regs = append(regs, Regression{
				Name:            base.Name,
				BaselineNsPerOp: base.NsPerOp,
				CurrentNsPerOp:  e.NsPerOp,
				Ratio:           e.NsPerOp / base.NsPerOp,
			})
		}
	}
	return regs
}

// loadReport reads a committed BENCH_*.json baseline.
func loadReport(path string) (Report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(blob, &r); err != nil {
		return Report{}, fmt.Errorf("parse %s: %w", path, err)
	}
	return r, nil
}
