package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func report(entries ...Entry) Report {
	return Report{Benchmarks: entries}
}

func TestCompareReportsWithinEnvelope(t *testing.T) {
	base := report(
		Entry{Name: "BenchmarkA", NsPerOp: 1000},
		Entry{Name: "BenchmarkB", NsPerOp: 500},
	)
	// 25% throughput loss allows ns/op up to 1000/0.75 ≈ 1333.
	cur := report(
		Entry{Name: "BenchmarkA", NsPerOp: 1300},
		Entry{Name: "BenchmarkB", NsPerOp: 400}, // faster is always fine
	)
	if regs := CompareReports(base, cur, 0.25); len(regs) != 0 {
		t.Fatalf("in-envelope run flagged: %v", regs)
	}
}

func TestCompareReportsFlagsRegression(t *testing.T) {
	base := report(Entry{Name: "BenchmarkA", NsPerOp: 1000})
	cur := report(Entry{Name: "BenchmarkA", NsPerOp: 1400}) // > 1333 limit
	regs := CompareReports(base, cur, 0.25)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	r := regs[0]
	if r.Name != "BenchmarkA" || r.Missing {
		t.Fatalf("regression %+v", r)
	}
	if r.Ratio < 1.39 || r.Ratio > 1.41 {
		t.Fatalf("ratio %.3f, want 1.4", r.Ratio)
	}
	if !strings.Contains(r.String(), "slower") {
		t.Fatalf("String() = %q", r.String())
	}
}

func TestCompareReportsBoundaryExact(t *testing.T) {
	// Exactly at the limit passes; one ns over fails.
	base := report(Entry{Name: "BenchmarkA", NsPerOp: 750})
	limit := 750 / (1 - 0.25) // = 1000
	if regs := CompareReports(base, report(Entry{Name: "BenchmarkA", NsPerOp: limit}), 0.25); len(regs) != 0 {
		t.Fatalf("exact-limit run flagged: %v", regs)
	}
	if regs := CompareReports(base, report(Entry{Name: "BenchmarkA", NsPerOp: limit + 1}), 0.25); len(regs) != 1 {
		t.Fatalf("over-limit run passed")
	}
}

func TestCompareReportsMissingBenchmark(t *testing.T) {
	base := report(
		Entry{Name: "BenchmarkA", NsPerOp: 1000},
		Entry{Name: "BenchmarkGone", NsPerOp: 2000},
	)
	cur := report(Entry{Name: "BenchmarkA", NsPerOp: 1000})
	regs := CompareReports(base, cur, 0.25)
	if len(regs) != 1 || !regs[0].Missing || regs[0].Name != "BenchmarkGone" {
		t.Fatalf("missing benchmark not flagged: %v", regs)
	}
	if !strings.Contains(regs[0].String(), "missing") {
		t.Fatalf("String() = %q", regs[0].String())
	}
}

func TestCompareReportsNewBenchmarkPasses(t *testing.T) {
	base := report(Entry{Name: "BenchmarkA", NsPerOp: 1000})
	cur := report(
		Entry{Name: "BenchmarkA", NsPerOp: 1000},
		Entry{Name: "BenchmarkNew", NsPerOp: 9e9}, // no baseline: not gated
	)
	if regs := CompareReports(base, cur, 0.25); len(regs) != 0 {
		t.Fatalf("new benchmark flagged: %v", regs)
	}
}

func TestCompareReportsSkipsUnusableBaseline(t *testing.T) {
	base := report(Entry{Name: "BenchmarkZero", NsPerOp: 0})
	cur := report() // empty current run
	if regs := CompareReports(base, cur, 0.25); len(regs) != 0 {
		t.Fatalf("zero-ns baseline gated: %v", regs)
	}
}

func TestCompareReportsClampsBadEnvelope(t *testing.T) {
	base := report(Entry{Name: "BenchmarkA", NsPerOp: 1000})
	cur := report(Entry{Name: "BenchmarkA", NsPerOp: 1300})
	// maxRegress 1.0 would make the limit infinite; the clamp restores
	// the conventional 25% gate, under which 1300 passes and 1400 fails.
	if regs := CompareReports(base, cur, 1.0); len(regs) != 0 {
		t.Fatalf("clamped envelope flagged in-envelope run: %v", regs)
	}
	cur = report(Entry{Name: "BenchmarkA", NsPerOp: 1400})
	if regs := CompareReports(base, cur, -3); len(regs) != 1 {
		t.Fatalf("clamped envelope passed over-limit run")
	}
}

func TestCompareReportsDeterministicOrder(t *testing.T) {
	base := report(
		Entry{Name: "BenchmarkC", NsPerOp: 100},
		Entry{Name: "BenchmarkA", NsPerOp: 100},
		Entry{Name: "BenchmarkB", NsPerOp: 100},
	)
	cur := report() // everything missing
	regs := CompareReports(base, cur, 0.25)
	want := []string{"BenchmarkC", "BenchmarkA", "BenchmarkB"}
	for i, r := range regs {
		if r.Name != want[i] {
			t.Fatalf("order %v, want baseline order %v", regs, want)
		}
	}
}

func TestLoadReport(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"benchmarks":[{"name":"BenchmarkA","iterations":5,"ns_per_op":123}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := loadReport(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 1 || r.Benchmarks[0].NsPerOp != 123 {
		t.Fatalf("loaded %+v", r)
	}
	if _, err := loadReport(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("absent baseline loaded")
	}
	badFile := filepath.Join(dir, "bad.json")
	os.WriteFile(badFile, []byte("{broken"), 0o644)
	if _, err := loadReport(badFile); err == nil {
		t.Fatal("corrupt baseline loaded")
	}
}

// TestCompareGateExitsNonZero is the acceptance check for the CI gate:
// against an intentionally broken baseline (absurdly fast figures no
// real run can match), `benchregress -compare` must exit non-zero. The
// obs suite keeps the wall-clock cost low.
func TestCompareGateExitsNonZero(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real obs benchmark suite")
	}
	dir := t.TempDir()
	broken := filepath.Join(dir, "broken.json")
	// 0.0001 ns/op: any real benchmark is thousands of times slower.
	blob := []byte(`{"benchmarks":[{"name":"BenchmarkCounterAdd","iterations":1,"ns_per_op":0.0001}]}`)
	if err := os.WriteFile(broken, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/benchregress",
		"-suite", "obs", "-bench", "^BenchmarkCounterAdd$", "-benchtime", "100x",
		"-compare", "-baseline", broken)
	cmd.Dir = repoRoot
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("gate passed against broken baseline:\n%s", out)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("gate did not run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "regression") {
		t.Fatalf("gate output does not report the regression:\n%s", out)
	}
}
