// Command benchregress runs a benchmark suite and records the results in a
// JSON file, so the performance trajectory of the optimized hot paths is
// tracked across PRs. The suites:
//
//   - selection (default): the Monte Carlo kernel benchmarks →
//     BENCH_selection.json
//   - bandit: the epoch-incremental LSR and trial-sharded experiment
//     benchmarks → BENCH_bandit.json
//   - obs: the observability hot paths (counter add, histogram observe,
//     nil-handle no-ops, /metrics render) → BENCH_obs.json; the *Nil
//     variants prove the unobserved cost is a single nil check
//   - agent: the measurement collection plane over real TCP →
//     BENCH_agent.json; the batched streaming plane against its per-line
//     JSON *Serial baseline on the same monitor panel
//   - loss: the multicast loss-tomography MLE → BENCH_loss.json; the
//     incremental per-epoch update against its from-scratch batch *Fresh
//     baseline
//   - cluster: the sharded cluster plane → BENCH_cluster.json; the
//     forwarded submit path (route → peer frame → remote execute →
//     cache-fill) against its submit-at-owner *Serial baseline, plus the
//     ring lookup and peer codec microbenchmarks and the hedge-win rate
//     per forwarded op
//
// Each benchmark is paired with its baseline reference — a *Serial variant
// (one worker / per-line plane) or a *Fresh variant (from-scratch-per-epoch
// LSR) — and the derived speedup is recorded alongside ns/op, B/op,
// allocs/op, the allocation ratio for Fresh pairs, and — for benchmarks
// that report a "panel" or "frames" metric — the throughput in
// scenarios/second or path-frames/second.
//
// Usage:
//
//	go run ./cmd/benchregress [-suite selection|bandit|obs|agent|loss|cluster] [-out FILE] [-benchtime 5x]
//
// With -compare the command becomes a CI gate: instead of rewriting the
// JSON, it runs the suite, compares against the committed baseline
// (-baseline FILE, default the suite's own output file) and exits
// non-zero when any benchmark lost more than -max-regress (default 25%)
// of its baseline throughput or disappeared from the suite:
//
//	go run ./cmd/benchregress -suite selection -compare [-max-regress 0.25]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"
)

// suites maps each -suite name to its benchmark pattern, packages and
// default output file. A suite may override the default -benchtime: the
// algorithmic suites run a fixed 5 iterations of expensive benchmarks,
// while the obs suite measures sub-nanosecond operations that need a
// time-based budget to produce meaningful figures.
var suites = map[string]struct {
	out       string
	pattern   string
	packages  []string
	benchtime string
}{
	"selection": {
		out: "BENCH_selection.json",
		pattern: "^(BenchmarkMonteCarlo|BenchmarkMonteCarloSerial|" +
			"BenchmarkMonteCarloInc|BenchmarkMonteCarloIncSerial|" +
			"BenchmarkMonteCarloIncGF2|BenchmarkMonteCarloIncGF2Serial|" +
			"BenchmarkGF2Rank|BenchmarkGF2RankSerial|" +
			"BenchmarkMonteRoMe|BenchmarkMonteRoMeSerial)$",
		packages: []string{"./internal/er/", "./internal/selection/", "./internal/linalg/"},
	},
	"bandit": {
		out: "BENCH_bandit.json",
		pattern: "^(BenchmarkLSREpochSteady|BenchmarkLSREpochSteadyFresh|" +
			"BenchmarkFig8Quick|BenchmarkFig8QuickSerial|" +
			"BenchmarkFig5Quick|BenchmarkFig5QuickSerial)$",
		packages: []string{"./internal/bandit/", "./internal/experiments/"},
	},
	"obs": {
		out: "BENCH_obs.json",
		pattern: "^(BenchmarkCounterAdd|BenchmarkCounterAddNil|" +
			"BenchmarkGaugeSet|BenchmarkGaugeSetNil|" +
			"BenchmarkHistogramObserve|BenchmarkHistogramObserveNil|" +
			"BenchmarkCounterAddContended|BenchmarkPrometheusRender)$",
		packages:  []string{"./internal/obs/"},
		benchtime: "1s",
	},
	// The agent suite exercises real TCP round trips, so one op is an
	// entire epoch collection (milliseconds); a time-based budget keeps
	// the iteration counts meaningful without taking minutes.
	"agent": {
		out:       "BENCH_agent.json",
		pattern:   "^(BenchmarkCollectFrames|BenchmarkCollectFramesSerial)$",
		packages:  []string{"./internal/agent/"},
		benchtime: "1s",
	},
	// The loss suite tracks the incremental MINC epoch update against
	// its from-scratch batch baseline (the Fresh pair).
	"loss": {
		out:       "BENCH_loss.json",
		pattern:   "^(BenchmarkLossEpochUpdate|BenchmarkLossEpochUpdateFresh)$",
		packages:  []string{"./internal/loss/"},
		benchtime: "20x",
	},
	// The failure suite tracks scenario-panel throughput per registered
	// scenario source (the Monte Carlo oracle's refresh cost) and the
	// steady-state Gilbert–Elliott column sampler, whose allocs/op is a
	// zero-allocation contract.
	"failure": {
		out:       "BENCH_failure.json",
		pattern:   "^(BenchmarkScenarioPanelBernoulli|BenchmarkScenarioPanelGE|BenchmarkScenarioPanelSRLG|BenchmarkScenarioPanelNode|BenchmarkGEColumnSteady)$",
		packages:  []string{"./internal/failure/"},
		benchtime: "1s",
	},
	// The cluster suite pairs the forwarded submit path against its
	// submit-at-owner Serial baseline, so the Speedup column reads as the
	// forwarding overhead factor (expected < 1). One forwarded op stands
	// up real jobs on the in-process fabric, so a time budget keeps the
	// run bounded.
	"cluster": {
		out: "BENCH_cluster.json",
		pattern: "^(BenchmarkClusterSubmitForwarded|BenchmarkClusterSubmitForwardedSerial|" +
			"BenchmarkClusterRingOwner|BenchmarkClusterPeerCodec)$",
		packages:  []string{"./internal/cluster/"},
		benchtime: "1s",
	},
}

func main() {
	suiteName := flag.String("suite", "selection", "benchmark suite: selection, bandit, obs, agent, loss or cluster")
	out := flag.String("out", "", "output JSON path (default per suite)")
	benchtime := flag.String("benchtime", "", "go test -benchtime value (default per suite)")
	pattern := flag.String("bench", "", "go test -bench regexp override (default per suite)")
	compare := flag.Bool("compare", false, "gate mode: compare against the committed baseline instead of rewriting it")
	baselinePath := flag.String("baseline", "", "baseline JSON for -compare (default: the suite's output file)")
	maxRegress := flag.Float64("max-regress", 0.25, "allowed throughput loss fraction before -compare fails")
	flag.Parse()

	suite, ok := suites[*suiteName]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchregress: unknown suite %q (selection, bandit, obs, agent, loss, cluster)\n", *suiteName)
		os.Exit(1)
	}
	if *out == "" {
		*out = suite.out
	}
	if *pattern == "" {
		*pattern = suite.pattern
	}
	if *benchtime == "" {
		*benchtime = suite.benchtime
		if *benchtime == "" {
			*benchtime = "5x"
		}
	}

	args := append([]string{
		"test", "-run=^$", "-bench", *pattern, "-benchmem",
		"-benchtime", *benchtime,
	}, suite.packages...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchregress: go %v: %v\n", args, err)
		os.Exit(1)
	}

	report := BuildReport(ParseBenchOutput(string(raw)))
	report.Date = time.Now().UTC().Format(time.RFC3339)
	report.BenchTime = *benchtime

	if *compare {
		if *baselinePath == "" {
			*baselinePath = suite.out
		}
		baseline, err := loadReport(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchregress: load baseline: %v\n", err)
			os.Exit(1)
		}
		regs := CompareReports(baseline, report, *maxRegress)
		if len(regs) == 0 {
			fmt.Printf("benchregress: %d benchmarks within %.0f%% of %s\n",
				len(report.Benchmarks), *maxRegress*100, *baselinePath)
			return
		}
		fmt.Fprintf(os.Stderr, "benchregress: %d regression(s) vs %s:\n", len(regs), *baselinePath)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchregress: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchregress: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchregress: wrote %d benchmarks, %d speedup pairs to %s\n",
		len(report.Benchmarks), len(report.Speedups), *out)
	for _, p := range report.Speedups {
		fmt.Printf("  %-28s %8.2fx vs %s  (%.2fms vs %.2fms)",
			p.Name, p.Speedup, p.Serial, p.NsPerOp/1e6, p.SerialNsPerOp/1e6)
		if p.AllocsRatio > 0 {
			fmt.Printf("  allocs %.0f vs %.0f (%.0fx)", p.AllocsPerOp, p.SerialAllocsPerOp, p.AllocsRatio)
		}
		fmt.Println()
	}
}
