// Command benchregress runs the Monte Carlo kernel benchmarks and records
// their results in a JSON file (BENCH_selection.json by default), so the
// performance trajectory of the MonteRoMe hot path is tracked across PRs.
//
// Each kernel benchmark is paired with its *Serial reference (e.g.
// BenchmarkMonteCarlo vs BenchmarkMonteCarloSerial) and the derived speedup
// is recorded alongside ns/op, B/op, allocs/op and — for benchmarks that
// report a "panel" metric — the scenario throughput in scenarios/second.
//
// Usage:
//
//	go run ./cmd/benchregress [-out BENCH_selection.json] [-benchtime 5x]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"
)

func main() {
	out := flag.String("out", "BENCH_selection.json", "output JSON path")
	benchtime := flag.String("benchtime", "5x", "go test -benchtime value")
	pattern := flag.String("bench", defaultPattern, "go test -bench regexp")
	flag.Parse()

	args := []string{
		"test", "-run=^$", "-bench", *pattern, "-benchmem",
		"-benchtime", *benchtime,
		"./internal/er/", "./internal/selection/",
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchregress: go %v: %v\n", args, err)
		os.Exit(1)
	}

	report := BuildReport(ParseBenchOutput(string(raw)))
	report.Date = time.Now().UTC().Format(time.RFC3339)
	report.BenchTime = *benchtime

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchregress: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchregress: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchregress: wrote %d benchmarks, %d speedup pairs to %s\n",
		len(report.Benchmarks), len(report.Speedups), *out)
	for _, p := range report.Speedups {
		fmt.Printf("  %-24s %8.2fx  (%.1fms vs %.1fms serial)\n",
			p.Name, p.Speedup, p.NsPerOp/1e6, p.SerialNsPerOp/1e6)
	}
}

const defaultPattern = "^(BenchmarkMonteCarlo|BenchmarkMonteCarloSerial|" +
	"BenchmarkMonteCarloInc|BenchmarkMonteCarloIncSerial|" +
	"BenchmarkMonteRoMe|BenchmarkMonteRoMeSerial)$"
