package main

import (
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Panel is the scenario-panel size the benchmark reports via the
	// "panel" metric; zero when the benchmark doesn't report one.
	Panel float64 `json:"panel,omitempty"`
	// ScenariosPerSecond is Panel / (NsPerOp in seconds): how many
	// scenario evaluations per second one op sustains.
	ScenariosPerSecond float64 `json:"scenarios_per_second,omitempty"`
	// Frames is the per-op wire-message count the collection-plane
	// benchmarks report via the "frames" metric, normalized to the
	// per-line baseline's one-frame-per-path framing so batched and
	// per-line planes are directly comparable; zero when the benchmark
	// doesn't report one.
	Frames float64 `json:"frames,omitempty"`
	// FramesPerSecond is Frames / (NsPerOp in seconds): the sustained
	// path-frame throughput of one collection epoch.
	FramesPerSecond float64 `json:"frames_per_second,omitempty"`
	// HedgeWins is the hedge-win rate per forwarded op the cluster
	// benchmarks report via the "hedgewins" metric — near zero on a
	// healthy fabric, so a climb flags an accidental always-hedge.
	HedgeWins float64 `json:"hedge_wins,omitempty"`
}

// Pair relates a benchmark to its baseline reference — a *Serial variant
// (parallelism speedup) or a *Fresh variant (epoch-incremental speedup).
// The JSON field names keep the original "serial" spelling for continuity
// of the recorded trajectory.
type Pair struct {
	Name          string  `json:"name"`
	Serial        string  `json:"serial"`
	NsPerOp       float64 `json:"ns_per_op"`
	SerialNsPerOp float64 `json:"serial_ns_per_op"`
	Speedup       float64 `json:"speedup"`
	// AllocsRatio is baseline allocs/op over optimized allocs/op, recorded
	// when both sides report allocations (the Fresh pairs' headline metric).
	AllocsPerOp       float64 `json:"allocs_per_op,omitempty"`
	SerialAllocsPerOp float64 `json:"serial_allocs_per_op,omitempty"`
	AllocsRatio       float64 `json:"allocs_ratio,omitempty"`
}

// Report is the BENCH_selection.json schema.
type Report struct {
	Date       string  `json:"date"`
	BenchTime  string  `json:"benchtime"`
	Benchmarks []Entry `json:"benchmarks"`
	Speedups   []Pair  `json:"speedups"`
}

// ParseBenchOutput extracts benchmark result lines from `go test -bench`
// output. It understands the standard column layout
//
//	BenchmarkName-8   5   1234 ns/op   99 B/op   7 allocs/op   1000 panel
//
// where the value/unit metric pairs appear in any order, and tracks "pkg:"
// headers so entries carry their package.
func ParseBenchOutput(out string) []Entry {
	var entries []Entry
	pkg := ""
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == "pkg:" {
			pkg = fields[1]
			continue
		}
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		e := Entry{Name: trimProcSuffix(fields[0]), Package: pkg, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			case "panel":
				e.Panel = v
			case "frames":
				e.Frames = v
			case "hedgewins":
				e.HedgeWins = v
			}
		}
		if e.Panel > 0 && e.NsPerOp > 0 {
			e.ScenariosPerSecond = e.Panel / (e.NsPerOp / 1e9)
		}
		if e.Frames > 0 && e.NsPerOp > 0 {
			e.FramesPerSecond = e.Frames / (e.NsPerOp / 1e9)
		}
		entries = append(entries, e)
	}
	return entries
}

// trimProcSuffix strips the -<GOMAXPROCS> suffix go test appends to
// benchmark names when running with more than one proc.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// baselineSuffixes are the recognized baseline-variant suffixes: Serial
// marks a one-worker reference, Fresh a from-scratch-per-epoch reference.
var baselineSuffixes = []string{"Serial", "Fresh"}

// BuildReport pairs every benchmark with its <Name>Serial and <Name>Fresh
// counterparts and derives the speedups (and, when reported, the
// allocation ratios).
func BuildReport(entries []Entry) Report {
	r := Report{Benchmarks: entries}
	byName := make(map[string]Entry, len(entries))
	for _, e := range entries {
		byName[e.Name] = e
	}
	for _, e := range entries {
		if isBaseline(e.Name) {
			continue
		}
		for _, suffix := range baselineSuffixes {
			s, ok := byName[e.Name+suffix]
			if !ok || e.NsPerOp <= 0 {
				continue
			}
			p := Pair{
				Name:          e.Name,
				Serial:        s.Name,
				NsPerOp:       e.NsPerOp,
				SerialNsPerOp: s.NsPerOp,
				Speedup:       s.NsPerOp / e.NsPerOp,
			}
			if e.AllocsPerOp > 0 && s.AllocsPerOp > 0 {
				p.AllocsPerOp = e.AllocsPerOp
				p.SerialAllocsPerOp = s.AllocsPerOp
				p.AllocsRatio = s.AllocsPerOp / e.AllocsPerOp
			}
			r.Speedups = append(r.Speedups, p)
		}
	}
	return r
}

func isBaseline(name string) bool {
	for _, suffix := range baselineSuffixes {
		if strings.HasSuffix(name, suffix) {
			return true
		}
	}
	return false
}
