package main

import "testing"

const sampleOutput = `goos: linux
goarch: amd64
pkg: robusttomo/internal/er
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMonteCarlo       	       5	  49305185 ns/op	      1000 panel	  330890 B/op	    2743 allocs/op
BenchmarkMonteCarloSerial 	       5	 212379565 ns/op	      1000 panel	146072517 B/op	 1066143 allocs/op
PASS
ok  	robusttomo/internal/er	2.918s
pkg: robusttomo/internal/selection
BenchmarkMonteRoMe-8      	       5	   6421687 ns/op	      1000 panel	 1899532 B/op	   13793 allocs/op
BenchmarkMonteRoMeSerial-8	       5	 190220440 ns/op	      1000 panel	48967028 B/op	  321376 allocs/op
PASS
`

func TestParseBenchOutput(t *testing.T) {
	entries := ParseBenchOutput(sampleOutput)
	if len(entries) != 4 {
		t.Fatalf("parsed %d entries, want 4: %+v", len(entries), entries)
	}
	e := entries[0]
	if e.Name != "BenchmarkMonteCarlo" || e.Package != "robusttomo/internal/er" {
		t.Fatalf("entry 0 = %+v", e)
	}
	if e.Iterations != 5 || e.NsPerOp != 49305185 || e.BytesPerOp != 330890 || e.AllocsPerOp != 2743 {
		t.Fatalf("entry 0 metrics = %+v", e)
	}
	if e.Panel != 1000 {
		t.Fatalf("entry 0 panel = %v", e.Panel)
	}
	wantTput := 1000 / (49305185.0 / 1e9)
	if e.ScenariosPerSecond != wantTput {
		t.Fatalf("entry 0 throughput = %v, want %v", e.ScenariosPerSecond, wantTput)
	}
	// The -8 proc suffix must be stripped; the package header must follow.
	if entries[2].Name != "BenchmarkMonteRoMe" || entries[2].Package != "robusttomo/internal/selection" {
		t.Fatalf("entry 2 = %+v", entries[2])
	}
}

func TestBuildReportPairsSerial(t *testing.T) {
	report := BuildReport(ParseBenchOutput(sampleOutput))
	if len(report.Speedups) != 2 {
		t.Fatalf("got %d speedup pairs, want 2: %+v", len(report.Speedups), report.Speedups)
	}
	p := report.Speedups[0]
	if p.Name != "BenchmarkMonteCarlo" || p.Serial != "BenchmarkMonteCarloSerial" {
		t.Fatalf("pair 0 = %+v", p)
	}
	want := 212379565.0 / 49305185.0
	if p.Speedup != want {
		t.Fatalf("pair 0 speedup = %v, want %v", p.Speedup, want)
	}
}

const banditOutput = `pkg: robusttomo/internal/bandit
BenchmarkLSREpochSteady-4     	   78000	     15336 ns/op	      56 B/op	       1 allocs/op
BenchmarkLSREpochSteadyFresh-4	   58000	     20443 ns/op	   11368 B/op	      89 allocs/op
PASS
pkg: robusttomo/internal/experiments
BenchmarkFig8Quick-4       	       5	  80000000 ns/op	 1000000 B/op	   10000 allocs/op
BenchmarkFig8QuickSerial-4 	       5	 240000000 ns/op	 1000000 B/op	   10000 allocs/op
PASS
`

func TestBuildReportPairsFresh(t *testing.T) {
	report := BuildReport(ParseBenchOutput(banditOutput))
	if len(report.Speedups) != 2 {
		t.Fatalf("got %d pairs, want 2: %+v", len(report.Speedups), report.Speedups)
	}
	fresh := report.Speedups[0]
	if fresh.Name != "BenchmarkLSREpochSteady" || fresh.Serial != "BenchmarkLSREpochSteadyFresh" {
		t.Fatalf("fresh pair = %+v", fresh)
	}
	if want := 20443.0 / 15336.0; fresh.Speedup != want {
		t.Fatalf("fresh speedup = %v, want %v", fresh.Speedup, want)
	}
	if want := 89.0 / 1.0; fresh.AllocsRatio != want {
		t.Fatalf("fresh allocs ratio = %v, want %v", fresh.AllocsRatio, want)
	}
	serial := report.Speedups[1]
	if serial.Name != "BenchmarkFig8Quick" || serial.Serial != "BenchmarkFig8QuickSerial" {
		t.Fatalf("serial pair = %+v", serial)
	}
	if serial.Speedup != 3 {
		t.Fatalf("serial speedup = %v, want 3", serial.Speedup)
	}
}

const clusterOutput = `pkg: robusttomo/internal/cluster
BenchmarkClusterSubmitForwarded-4      	   10000	    103000 ns/op	         0.0020 hedgewins	    9000 B/op	     120 allocs/op
BenchmarkClusterSubmitForwardedSerial-4	   40000	     29000 ns/op	         0 hedgewins	    5000 B/op	      60 allocs/op
PASS
`

func TestParseClusterHedgeWins(t *testing.T) {
	entries := ParseBenchOutput(clusterOutput)
	if len(entries) != 2 {
		t.Fatalf("parsed %d entries, want 2: %+v", len(entries), entries)
	}
	if entries[0].HedgeWins != 0.0020 {
		t.Fatalf("hedge wins = %v, want 0.0020", entries[0].HedgeWins)
	}
	report := BuildReport(entries)
	if len(report.Speedups) != 1 {
		t.Fatalf("got %d pairs, want 1: %+v", len(report.Speedups), report.Speedups)
	}
	// The Serial pair is the submit-at-owner baseline, so the "speedup"
	// reads as the forwarding overhead factor (< 1).
	if want := 29000.0 / 103000.0; report.Speedups[0].Speedup != want {
		t.Fatalf("forwarding overhead factor = %v, want %v", report.Speedups[0].Speedup, want)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkMonteCarlo":     "BenchmarkMonteCarlo",
		"BenchmarkMonteCarlo-16":  "BenchmarkMonteCarlo",
		"BenchmarkWeird-Name":     "BenchmarkWeird-Name",
		"BenchmarkMonteRoMe-8":    "BenchmarkMonteRoMe",
		"BenchmarkMonteRoMe-8-no": "BenchmarkMonteRoMe-8-no",
	} {
		if got := trimProcSuffix(in); got != want {
			t.Fatalf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
