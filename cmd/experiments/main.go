// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all -scale quick
//	experiments -run fig5 -scale paper -workload AS3257:1600 -parallel 0 -progress
//	experiments -run tableI,fig3,fig4
//
// Output is tab-separated text, one block per figure, matching the series
// the paper plots. Paper scale reproduces Section VI-A parameters (5
// monitor sets × 500 scenarios) and can take hours on the large topology;
// quick and medium scales preserve the shapes at a fraction of the cost.
// -parallel shards each runner's independent trials across workers
// (-parallel 0 uses every CPU); the output is byte-identical at any worker
// count, so parallelism is purely a wall-clock knob.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"robusttomo/internal/experiments"
	"robusttomo/internal/topo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	runList := fs.String("run", "all", "comma-separated experiments: tableI,fig3,fig4,fig5,fig6,fig7,fig8,fig9,fig10,ablations,extensions,scenarios,all")
	scaleName := fs.String("scale", "quick", "evaluation scale: quick, medium, paper")
	workload := fs.String("workload", "", "override workload as PRESET:PATHS (e.g. AS3257:1600); default per figure")
	epochs := fs.String("epochs", "500,1000", "LSR learning horizons for fig10")
	format := fs.String("format", "text", "output format: text or json")
	parallel := fs.Int("parallel", 1, "trial workers per runner: 1 serial, N fixed, 0 = all CPUs; output is identical at any value")
	progress := fs.Bool("progress", false, "report per-runner trial completion on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale, err := parseScale(*scaleName)
	if err != nil {
		return err
	}
	if *parallel == 0 {
		scale.Workers = -1 // resolves to GOMAXPROCS
	} else {
		scale.Workers = *parallel
	}
	if *progress {
		scale.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d trials", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown format %q (text, json)", *format)
	}
	emit := func(fig experiments.Figure) error {
		if *format == "json" {
			out, err := fig.JSON()
			if err != nil {
				return err
			}
			fmt.Println(out)
			return nil
		}
		fmt.Println(fig)
		return nil
	}
	selected := map[string]bool{}
	for _, name := range strings.Split(*runList, ",") {
		selected[strings.TrimSpace(name)] = true
	}
	all := selected["all"]

	want := func(name string) bool { return all || selected[name] }

	if want("tableI") {
		rows, err := experiments.TableIWith(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTableI(rows))
		fmt.Println()
	}

	// Per-figure default workloads from the paper; -workload overrides.
	fig3W := defaultWorkload(*workload, *scaleName, experiments.Workload{Preset: topo.AS1239, CandidatePaths: 1600})
	fig4W := fig3W
	fig6W := defaultWorkload(*workload, *scaleName, experiments.Workload{Preset: topo.AS3257, CandidatePaths: 1600})
	fig10W := defaultWorkload(*workload, *scaleName, experiments.Workload{Preset: topo.AS3257, CandidatePaths: 400})

	if want("fig3") {
		fig, err := experiments.Fig3(experiments.Fig3Config{Workload: fig3W, MaxFailures: 10, Trials: scale.Scenarios}, scale)
		if err != nil {
			return err
		}
		if err := emit(fig); err != nil {
			return err
		}
	}
	if want("fig4") {
		refRuns := 100000
		if *scaleName != "paper" {
			refRuns = 5000
		}
		fig, err := experiments.Fig4(experiments.Fig4Config{
			Workload: fig4W, MaxDependent: 10, ReferenceRuns: refRuns, SmallRuns: 50,
		}, scale)
		if err != nil {
			return err
		}
		if err := emit(fig); err != nil {
			return err
		}
	}
	if want("fig5") {
		for _, w := range fig5Workloads(*workload, *scaleName) {
			res, err := experiments.BudgetSweep(experiments.BudgetSweepConfig{Workload: w}, scale)
			if err != nil {
				return err
			}
			if err := emit(res.Rank); err != nil {
				return err
			}
			fmt.Printf("basis costs per monitor set: %v\n\n", res.BasisCosts)
		}
	}
	if want("fig6") {
		fig, err := experiments.RankCDF(experiments.RankCDFConfig{Workload: fig6W, Multiplier: 0.5}, scale)
		if err != nil {
			return err
		}
		if err := emit(fig); err != nil {
			return err
		}
	}
	if want("fig7") {
		res, err := experiments.BudgetSweep(experiments.BudgetSweepConfig{
			Workload:            fig6W,
			Algorithms:          []string{experiments.AlgProbRoMe, experiments.AlgSelectPath},
			WithIdentifiability: true,
		}, scale)
		if err != nil {
			return err
		}
		if err := emit(res.Ident); err != nil {
			return err
		}
	}
	if want("fig8") || want("fig9") {
		base := defaultWorkload(*workload, *scaleName, experiments.Workload{Preset: topo.AS1239})
		counts := []int{500, 1000, 1500, 2000, 2500}
		if *scaleName != "paper" {
			counts = []int{200, 400, 800}
		}
		if base.Custom != nil {
			counts = []int{40, 80, 120}
		}
		res, err := experiments.MatroidLoss(experiments.MatroidLossConfig{Base: base, PathCounts: counts}, scale)
		if err != nil {
			return err
		}
		if want("fig8") {
			if err := emit(res.RankLoss); err != nil {
				return err
			}
		}
		if want("fig9") {
			if err := emit(res.IdentLoss); err != nil {
				return err
			}
		}
	}
	if want("fig10") {
		horizons, err := parseInts(*epochs)
		if err != nil {
			return fmt.Errorf("bad -epochs: %w", err)
		}
		fig, err := experiments.Learning(experiments.LearningConfig{Workload: fig10W, Epochs: horizons}, scale)
		if err != nil {
			return err
		}
		if err := emit(fig); err != nil {
			return err
		}
	}
	if want("extensions") {
		w := defaultWorkload(*workload, *scaleName, experiments.Workload{Preset: topo.AS1755, CandidatePaths: 400})
		corr, err := experiments.Correlated(experiments.CorrelatedConfig{
			Workload: w, Multiplier: 0.75, GroupProb: 0.15, MaxGroup: 4,
		}, scale)
		if err != nil {
			return err
		}
		if err := emit(corr); err != nil {
			return err
		}
		multipath, err := experiments.Multipath(experiments.MultipathConfig{
			Workload: w, Multiplier: 0.75, K: []int{1, 2, 3},
		}, scale)
		if err != nil {
			return err
		}
		if err := emit(multipath); err != nil {
			return err
		}
		loop, err := experiments.ClosedLoop(experiments.ClosedLoopConfig{
			Workload: w, Multiplier: 0.6, Horizon: 600, Windows: 6,
		}, scale)
		if err != nil {
			return err
		}
		if err := emit(loop); err != nil {
			return err
		}
		duel, err := experiments.LearnerDuel(experiments.LearnerDuelConfig{
			Workload: w, Multiplier: 0.5, Horizon: 400, Windows: 8,
		}, scale)
		if err != nil {
			return err
		}
		if err := emit(duel); err != nil {
			return err
		}
		regret, err := experiments.Regret(experiments.RegretConfig{
			Workload: w, Multiplier: 0.5, Horizon: 1000, Checkpoints: 10,
		}, scale)
		if err != nil {
			return err
		}
		fmt.Printf("# ext-regret — LSR cumulative regret (best fixed reward %.2f)\nepoch\tregret\tregret/ln(n)\n", regret.BestReward)
		for i, e := range regret.Epochs {
			fmt.Printf("%d\t%.1f\t%.1f\n", e, regret.Regret[i], regret.PerLog[i])
		}
		fmt.Println()
	}
	if want("scenarios") {
		w := defaultWorkload(*workload, *scaleName, experiments.Workload{Preset: topo.AS1755, CandidatePaths: 400})
		burst, err := experiments.Burstiness(experiments.BurstinessConfig{
			Workload: w, Multiplier: 0.75,
		}, scale)
		if err != nil {
			return err
		}
		if err := emit(burst); err != nil {
			return err
		}
		nodefail, err := experiments.NodeFailures(experiments.NodeFailConfig{
			Workload: w, Multiplier: 0.75,
		}, scale)
		if err != nil {
			return err
		}
		if err := emit(nodefail); err != nil {
			return err
		}
	}
	if want("ablations") {
		w := defaultWorkload(*workload, *scaleName, experiments.Workload{Preset: topo.AS1755, CandidatePaths: 400})
		lazy, err := experiments.LazyAblation(w, scale, 0.75)
		if err != nil {
			return err
		}
		fmt.Printf("# ablation-lazy — greedy evaluation counts\npaths\tlazy\tnaive\tspeedup\n%d\t%d\t%d\t%.1f\n\n",
			lazy.Paths, lazy.LazyEvaluations, lazy.NaiveEvaluations, lazy.Speedup)
		intens, err := experiments.IntensitySweep(w, scale, []float64{1, 2, 4, 8}, 0.75)
		if err != nil {
			return err
		}
		if err := emit(intens); err != nil {
			return err
		}
		quality, err := experiments.OracleQuality(w, scale, 0.75, 5000)
		if err != nil {
			return err
		}
		fmt.Printf("# ablation-oracle — final-selection ER (MC-%d evaluation)\nProbBound\tMonteCarlo\n%.2f\t%.2f\n",
			quality.EvalRuns, quality.ProbBoundER, quality.MonteCarloER)
	}
	return nil
}

func parseScale(name string) (experiments.Scale, error) {
	switch name {
	case "paper":
		return experiments.PaperScale(), nil
	case "medium":
		return experiments.Scale{MonitorSets: 2, Scenarios: 150, MonteCarloRuns: 50, ExpectedFailures: 3, Seed: 2014}, nil
	case "quick":
		return experiments.QuickScale(), nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q (quick, medium, paper)", name)
	}
}

// defaultWorkload applies the -workload override; at quick scale, paper
// workloads are shrunk to their small-topology counterparts to keep the
// default command fast.
func defaultWorkload(override, scaleName string, def experiments.Workload) experiments.Workload {
	if override != "" {
		if w, err := parseWorkload(override); err == nil {
			return w
		}
	}
	if scaleName == "quick" {
		// Shrink to the small topology and a modest candidate count.
		paths := def.CandidatePaths
		if paths == 0 || paths > 196 {
			paths = 196
		}
		return experiments.Workload{Preset: topo.AS1755, CandidatePaths: paths}
	}
	return def
}

func fig5Workloads(override, scaleName string) []experiments.Workload {
	if override != "" {
		if w, err := parseWorkload(override); err == nil {
			return []experiments.Workload{w}
		}
	}
	if scaleName == "paper" {
		return experiments.PaperWorkloads()
	}
	if scaleName == "medium" {
		return []experiments.Workload{
			{Preset: topo.AS1755, CandidatePaths: 400},
			{Preset: topo.AS3257, CandidatePaths: 900},
		}
	}
	return []experiments.Workload{{Preset: topo.AS1755, CandidatePaths: 196}}
}

func parseWorkload(s string) (experiments.Workload, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return experiments.Workload{}, fmt.Errorf("workload %q: want PRESET:PATHS", s)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n <= 0 {
		return experiments.Workload{}, fmt.Errorf("workload %q: bad path count", s)
	}
	return experiments.Workload{Preset: parts[0], CandidatePaths: n}, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
