package main

import (
	"testing"

	"robusttomo/internal/experiments"
	"robusttomo/internal/topo"
)

func TestParseScale(t *testing.T) {
	for _, name := range []string{"quick", "medium", "paper"} {
		sc, err := parseScale(name)
		if err != nil {
			t.Fatalf("parseScale(%s): %v", name, err)
		}
		if sc.MonitorSets <= 0 || sc.Scenarios <= 0 {
			t.Fatalf("degenerate scale for %s: %+v", name, sc)
		}
	}
	if _, err := parseScale("warp"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestParseWorkload(t *testing.T) {
	w, err := parseWorkload("AS3257:1600")
	if err != nil {
		t.Fatal(err)
	}
	if w.Preset != "AS3257" || w.CandidatePaths != 1600 {
		t.Fatalf("parsed %+v", w)
	}
	for _, bad := range []string{"AS3257", "AS3257:zero", "AS3257:-5", ""} {
		if _, err := parseWorkload(bad); err == nil {
			t.Fatalf("workload %q accepted", bad)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("500, 1000")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 500 || got[1] != 1000 {
		t.Fatalf("parseInts = %v", got)
	}
	if _, err := parseInts("a,b"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDefaultWorkload(t *testing.T) {
	def := experiments.Workload{Preset: topo.AS1239, CandidatePaths: 1600}
	// Quick scale shrinks to the small topology.
	w := defaultWorkload("", "quick", def)
	if w.Preset != topo.AS1755 || w.CandidatePaths > 196 {
		t.Fatalf("quick default = %+v", w)
	}
	// Paper scale keeps the figure default.
	w = defaultWorkload("", "paper", def)
	if w.Preset != topo.AS1239 {
		t.Fatalf("paper default = %+v", w)
	}
	// Overrides win at any scale.
	w = defaultWorkload("AS3257:77", "quick", def)
	if w.Preset != "AS3257" || w.CandidatePaths != 77 {
		t.Fatalf("override = %+v", w)
	}
}

func TestFig5Workloads(t *testing.T) {
	if got := fig5Workloads("", "paper"); len(got) != 3 {
		t.Fatalf("paper workloads = %v", got)
	}
	if got := fig5Workloads("", "medium"); len(got) != 2 {
		t.Fatalf("medium workloads = %v", got)
	}
	if got := fig5Workloads("", "quick"); len(got) != 1 {
		t.Fatalf("quick workloads = %v", got)
	}
	if got := fig5Workloads("AS1755:50", "paper"); len(got) != 1 || got[0].CandidatePaths != 50 {
		t.Fatalf("override workloads = %v", got)
	}
}

func TestRunTableI(t *testing.T) {
	if err := run([]string{"-run", "tableI"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllFiguresQuickTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep takes a few seconds")
	}
	// Exercise every figure branch on a tiny workload.
	args := []string{
		"-run", "fig3,fig4,fig5,fig6,fig7,fig8,fig9,fig10,ablations,extensions,scenarios",
		"-scale", "quick",
		"-workload", "AS1755:36",
		"-epochs", "30,60",
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONFormat(t *testing.T) {
	if err := run([]string{"-run", "fig3", "-scale", "quick", "-format", "json", "-workload", "AS1755:36"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-format", "xml"}); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-scale", "warp"}); err == nil {
		t.Fatal("bad scale accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-run", "fig10", "-epochs", "abc", "-scale", "quick"}); err == nil {
		t.Fatal("bad epochs accepted")
	}
}
