package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"robusttomo/internal/cluster"
	"robusttomo/internal/engine"
	"robusttomo/internal/service"
)

// maxJobBody bounds a POST /api/v1/jobs body so a hostile client cannot
// balloon memory before validation runs: 8 MiB comfortably holds a
// 10k-path instance while staying far below any real heap.
const maxJobBody = 8 << 20

// apiError is the JSON error envelope for every non-2xx API response.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeAPIError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// mountJobAPI registers the selection-service job routes. Method and
// path-wildcard routing come from the stdlib mux.
func (s *server) mountJobAPI() {
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /api/v1/stats", s.handleServiceStats)
}

// The job verbs route through the cluster node when one is configured
// (the node forwards to the ring owner or serves locally) and straight
// to the service otherwise. The HTTP surface is identical either way.

func (s *server) submitJob(spec service.JobSpec) (service.SubmitOutcome, error) {
	if s.node != nil {
		return s.node.Submit(spec)
	}
	return s.svc.Submit(spec)
}

func (s *server) jobStatus(id string) (service.JobStatus, error) {
	if s.node != nil {
		return s.node.Status(id)
	}
	return s.svc.Status(id)
}

func (s *server) jobResult(id string) (engine.Result, error) {
	if s.node != nil {
		return s.node.Result(id)
	}
	return s.svc.Result(id)
}

func (s *server) jobCancel(id string) (service.JobStatus, error) {
	if s.node != nil {
		return s.node.Cancel(id)
	}
	return s.svc.Cancel(id)
}

// handleSubmitJob accepts a selection job: 202 Accepted for queued or
// deduped work, 200 OK for a cache answer, 400 for invalid specs, 429 +
// Retry-After when the queue is full, 503 once shutdown has begun.
func (s *server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var spec service.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeAPIError(w, http.StatusBadRequest, fmt.Errorf("decode job spec: %w", err))
		return
	}
	out, err := s.submitJob(spec)
	switch {
	case err == nil:
		code := http.StatusAccepted
		if out.Cached {
			code = http.StatusOK
		}
		writeJSON(w, code, out)
	case errors.Is(err, service.ErrOverloaded):
		var oe *service.OverloadError
		if errors.As(err, &oe) {
			secs := int(oe.RetryAfter.Seconds() + 0.999) // ceil; header granularity is 1s
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeAPIError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, service.ErrClosed), errors.Is(err, cluster.ErrNodeClosed):
		writeAPIError(w, http.StatusServiceUnavailable, err)
	default:
		writeAPIError(w, http.StatusBadRequest, err)
	}
}

func (s *server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobStatus(r.PathValue("id"))
	if err != nil {
		writeAPIError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobResult serves the completed result: 404 for unknown IDs, 409
// (with the current state in the error) while the job is not done.
func (s *server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.jobResult(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, res)
	case errors.Is(err, service.ErrUnknownJob):
		writeAPIError(w, http.StatusNotFound, err)
	case errors.Is(err, service.ErrNotDone):
		writeAPIError(w, http.StatusConflict, err)
	default:
		writeAPIError(w, http.StatusInternalServerError, err)
	}
}

func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobCancel(r.PathValue("id"))
	if err != nil {
		writeAPIError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleServiceStats reports local service counters in single-node
// mode; in cluster mode it fans out to every peer and returns the
// cluster-wide snapshot (unreachable peers are listed, not fatal).
func (s *server) handleServiceStats(w http.ResponseWriter, r *http.Request) {
	if s.node != nil {
		writeJSON(w, http.StatusOK, s.node.ClusterStats(r.Context()))
		return
	}
	writeJSON(w, http.StatusOK, s.svc.Stats())
}
