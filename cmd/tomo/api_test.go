package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"robusttomo/internal/engine"
	"robusttomo/internal/selection"
	"robusttomo/internal/service"
)

// apiSpec is a valid wire-format job body; vary n to vary the cache key.
func apiSpec(n int) service.JobSpec {
	return service.JobSpec{
		Links:     6,
		Paths:     [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}, {0, 1, 2}, {3, 4, 5}},
		Probs:     []float64{0.1, 0.05, 0.2, 0.1, 0.15, 0.08},
		Budget:    4 + float64(n)*0.125,
		Algorithm: service.AlgProbRoMe,
	}
}

// startAPIServer boots an in-process daemon with the job-service knobs
// set and returns its base URL plus a shutdown func.
func startAPIServer(t *testing.T, mutate func(*serveConfig)) (string, *server, func()) {
	t.Helper()
	cfg := testServeConfig()
	cfg.KillEpoch = -1
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	stop := func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("Run returned %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("Run did not return after cancel")
		}
	}
	return "http://" + s.Addr(), s, stop
}

// doJSON performs a request with an optional JSON body and decodes the
// JSON response into out (when non-nil).
func doJSON(t *testing.T, method, url string, body, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: response not JSON (%v): %s", method, url, err, raw)
		}
	}
	return resp.StatusCode, resp.Header
}

// waitJobState polls the status endpoint until the job reaches state.
func waitJobState(t *testing.T, base, id string, state service.JobState) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st service.JobStatus
		code, _ := doJSON(t, http.MethodGet, base+"/api/v1/jobs/"+id, nil, &st)
		if code == http.StatusOK && st.State == state {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck: code %d, state %s (want %s)", id, code, st.State, state)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAPIJobLifecycle drives the happy path over real HTTP: submit →
// poll status → fetch result → cache hit on resubmission → stats.
func TestAPIJobLifecycle(t *testing.T) {
	base, _, stop := startAPIServer(t, nil)
	defer stop()

	var out service.SubmitOutcome
	code, _ := doJSON(t, http.MethodPost, base+"/api/v1/jobs", apiSpec(0), &out)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d, want 202", code)
	}
	if out.ID == "" || out.Cached {
		t.Fatalf("submit outcome %+v", out)
	}

	waitJobState(t, base, out.ID, service.StateDone)

	var res selection.Result
	code, _ = doJSON(t, http.MethodGet, base+"/api/v1/jobs/"+out.ID+"/result", nil, &res)
	if code != http.StatusOK {
		t.Fatalf("result returned %d", code)
	}
	if len(res.Selected) == 0 {
		t.Fatalf("empty result %+v", res)
	}

	// Resubmission is answered from the cache with 200, and the result
	// matches the original bit for bit.
	var hit service.SubmitOutcome
	code, _ = doJSON(t, http.MethodPost, base+"/api/v1/jobs", apiSpec(0), &hit)
	if code != http.StatusOK || !hit.Cached || hit.ID != out.ID {
		t.Fatalf("cache resubmission: code %d, outcome %+v", code, hit)
	}
	var res2 selection.Result
	doJSON(t, http.MethodGet, base+"/api/v1/jobs/"+hit.ID+"/result", nil, &res2)
	if fmt.Sprintf("%+v", res2) != fmt.Sprintf("%+v", res) {
		t.Fatalf("cached result differs:\n%+v\n%+v", res2, res)
	}

	var stats service.Stats
	code, _ = doJSON(t, http.MethodGet, base+"/api/v1/stats", nil, &stats)
	if code != http.StatusOK {
		t.Fatalf("stats returned %d", code)
	}
	if stats.Submitted != 2 || stats.Executed != 1 || stats.CacheHits != 1 {
		t.Fatalf("stats %+v: want 2 submitted, 1 executed, 1 cache hit", stats)
	}
}

// TestAPIValidationAndLookupErrors covers the 4xx surface: malformed
// JSON, an invalid spec, unknown fields, unknown job IDs, and a result
// fetch on an in-flight job.
func TestAPIValidationAndLookupErrors(t *testing.T) {
	release := make(chan struct{})
	base, _, stop := startAPIServer(t, func(cfg *serveConfig) {
		cfg.Workers = 1
		cfg.beforeRun = func(service.JobSpec) { <-release }
	})
	defer stop()
	defer close(release)

	// Malformed body.
	req, _ := http.NewRequest(http.MethodPost, base+"/api/v1/jobs", bytes.NewReader([]byte("{not json")))
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body returned %d", resp.StatusCode)
	}

	// Unknown field (schema drift protection).
	var apiErr apiError
	code, _ := doJSON(t, http.MethodPost, base+"/api/v1/jobs",
		map[string]any{"links": 2, "bogus_field": 1}, &apiErr)
	if code != http.StatusBadRequest || apiErr.Error == "" {
		t.Fatalf("unknown field: code %d, err %+v", code, apiErr)
	}

	// Invalid spec (probability out of range).
	bad := apiSpec(0)
	bad.Probs[0] = 2
	code, _ = doJSON(t, http.MethodPost, base+"/api/v1/jobs", bad, &apiErr)
	if code != http.StatusBadRequest {
		t.Fatalf("invalid spec returned %d", code)
	}

	// Unknown job ID on every lookup verb.
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/api/v1/jobs/deadbeef"},
		{http.MethodGet, "/api/v1/jobs/deadbeef/result"},
		{http.MethodDelete, "/api/v1/jobs/deadbeef"},
	} {
		if code, _ := doJSON(t, probe.method, base+probe.path, nil, &apiErr); code != http.StatusNotFound {
			t.Fatalf("%s %s returned %d, want 404", probe.method, probe.path, code)
		}
	}

	// Result of an in-flight job: 409 with the state in the error.
	var out service.SubmitOutcome
	doJSON(t, http.MethodPost, base+"/api/v1/jobs", apiSpec(0), &out)
	code, _ = doJSON(t, http.MethodGet, base+"/api/v1/jobs/"+out.ID+"/result", nil, &apiErr)
	if code != http.StatusConflict {
		t.Fatalf("in-flight result returned %d, want 409", code)
	}
}

// TestAPIShedRoundTrip overloads the queue over HTTP and asserts the
// 429 + Retry-After contract, then retries after the drain.
func TestAPIShedRoundTrip(t *testing.T) {
	release := make(chan struct{})
	base, _, stop := startAPIServer(t, func(cfg *serveConfig) {
		cfg.Workers = 1
		cfg.QueueDepth = 1
		cfg.RetryAfter = 2 * time.Second
		cfg.beforeRun = func(service.JobSpec) { <-release }
	})
	defer stop()

	var blocker, queued service.SubmitOutcome
	if code, _ := doJSON(t, http.MethodPost, base+"/api/v1/jobs", apiSpec(0), &blocker); code != http.StatusAccepted {
		t.Fatalf("blocker submit returned %d", code)
	}
	// The blocker may sit queued for a moment before a worker picks it
	// up; the queue admits exactly one more either way.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ := doJSON(t, http.MethodPost, base+"/api/v1/jobs", apiSpec(1), &queued)
		if code == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("second submit never accepted (last code %d)", code)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The queue is full: the next distinct job must be shed.
	var apiErr apiError
	var hdr http.Header
	var code int
	deadline = time.Now().Add(5 * time.Second)
	for {
		code, hdr = doJSON(t, http.MethodPost, base+"/api/v1/jobs", apiSpec(2), &apiErr)
		if code == http.StatusTooManyRequests {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("overloaded submit returned %d, want 429", code)
		}
		time.Sleep(5 * time.Millisecond)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra != 2 {
		t.Fatalf("Retry-After header %q, want 2 seconds", hdr.Get("Retry-After"))
	}

	// Drain, then the shed spec goes through.
	close(release)
	waitJobState(t, base, blocker.ID, service.StateDone)
	waitJobState(t, base, queued.ID, service.StateDone)
	var retry service.SubmitOutcome
	if code, _ := doJSON(t, http.MethodPost, base+"/api/v1/jobs", apiSpec(2), &retry); code != http.StatusAccepted {
		t.Fatalf("retry after drain returned %d", code)
	}
	waitJobState(t, base, retry.ID, service.StateDone)
}

// TestAPICancel cancels a queued job over HTTP (DELETE) and confirms the
// canceled terminal state.
func TestAPICancel(t *testing.T) {
	release := make(chan struct{})
	base, _, stop := startAPIServer(t, func(cfg *serveConfig) {
		cfg.Workers = 1
		cfg.beforeRun = func(service.JobSpec) { <-release }
	})
	defer stop()

	var blocker, victim service.SubmitOutcome
	doJSON(t, http.MethodPost, base+"/api/v1/jobs", apiSpec(0), &blocker)
	doJSON(t, http.MethodPost, base+"/api/v1/jobs", apiSpec(1), &victim)
	waitJobState(t, base, blocker.ID, service.StateRunning)

	var st service.JobStatus
	code, _ := doJSON(t, http.MethodDelete, base+"/api/v1/jobs/"+victim.ID, nil, &st)
	if code != http.StatusOK || st.State != service.StateCanceled {
		t.Fatalf("cancel: code %d, state %s", code, st.State)
	}
	close(release)
	waitJobState(t, base, blocker.ID, service.StateDone)
}

// TestAPIDrainOnShutdown delivers the shutdown while a job is running
// and asserts Run drains it: the daemon exits cleanly only after the
// running job reaches Done.
func TestAPIDrainOnShutdown(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	cfg := testServeConfig()
	cfg.KillEpoch = -1
	cfg.Workers = 1
	cfg.beforeRun = func(service.JobSpec) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()

	var out service.SubmitOutcome
	if code, _ := doJSON(t, http.MethodPost, base+"/api/v1/jobs", apiSpec(0), &out); code != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	<-entered // the job is running and blocked

	// Shut down while the job is blocked; release it shortly after so
	// the drain completes inside its 5s window.
	cancel()
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	// The drained job completed rather than being cut.
	wctx, wcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer wcancel()
	st, err := s.svc.Wait(wctx, out.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("job state %s after graceful shutdown, want done", st.State)
	}
}

// engineSamples maps every registered engine to a valid sample job body.
// TestAPIEngineMatrix fails when a registered engine has no sample here,
// so adding an engine forces its HTTP round trip into the matrix.
func engineSamples() map[string]service.JobSpec {
	return map[string]service.JobSpec{
		"selection": {
			Engine: "selection",
			Links:  4,
			Paths:  [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}},
			Probs:  []float64{0.1, 0.05, 0.2, 0.1},
			Budget: 3,
		},
		"loss": {
			Engine: "loss",
			Params: json.RawMessage(`{"parents":[-1,0,0],"probes":[[1,1],[1,0],[1,1],[0,1],[1,1],[1,1],[0,0],[1,1]]}`),
		},
	}
}

// TestAPIEngineMatrix drives every registered engine through the same
// POST /api/v1/jobs → status → result round trip: the HTTP surface is
// engine-agnostic, so each row differs only in the submitted body.
func TestAPIEngineMatrix(t *testing.T) {
	base, _, stop := startAPIServer(t, nil)
	defer stop()

	samples := engineSamples()
	for _, name := range engine.Engines() {
		spec, ok := samples[name]
		if !ok {
			t.Fatalf("registered engine %q has no sample spec in engineSamples", name)
		}
		t.Run(name, func(t *testing.T) {
			var out service.SubmitOutcome
			code, _ := doJSON(t, http.MethodPost, base+"/api/v1/jobs", spec, &out)
			if code != http.StatusAccepted {
				t.Fatalf("submit returned %d, want 202", code)
			}
			st := waitJobState(t, base, out.ID, service.StateDone)
			if st.Engine != name {
				t.Fatalf("status engine %q, want %q", st.Engine, name)
			}
			var res map[string]any
			if code, _ := doJSON(t, http.MethodGet, base+"/api/v1/jobs/"+out.ID+"/result", nil, &res); code != http.StatusOK {
				t.Fatalf("result returned %d", code)
			}
			if len(res) == 0 {
				t.Fatal("empty result body")
			}
			// The same body resubmitted is a cache hit on the same ID.
			var hit service.SubmitOutcome
			if code, _ := doJSON(t, http.MethodPost, base+"/api/v1/jobs", spec, &hit); code != http.StatusOK || !hit.Cached || hit.ID != out.ID {
				t.Fatalf("resubmission: code %d, outcome %+v", code, hit)
			}
		})
	}
}

// TestAPIUnknownEngineLists400: naming an unregistered engine is a 400
// whose body tells the client what the server actually serves.
func TestAPIUnknownEngineLists400(t *testing.T) {
	base, _, stop := startAPIServer(t, nil)
	defer stop()

	var apiErr struct {
		Error string `json:"error"`
	}
	code, _ := doJSON(t, http.MethodPost, base+"/api/v1/jobs",
		service.JobSpec{Engine: "warp-drive"}, &apiErr)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown engine returned %d, want 400", code)
	}
	for _, want := range append([]string{"warp-drive"}, engine.Engines()...) {
		if !strings.Contains(apiErr.Error, want) {
			t.Fatalf("400 body %q does not mention %q", apiErr.Error, want)
		}
	}
}
