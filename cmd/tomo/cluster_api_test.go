package main

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"robusttomo/internal/cluster"
	"robusttomo/internal/service"
)

// clusterDaemons is an in-process multi-daemon cluster: real HTTP
// listeners, real TCP peer protocol, one server per node.
type clusterDaemons struct {
	bases   []string // HTTP base URLs
	peers   []string // peer-protocol addresses (ring identities)
	servers []*server
	stops   []func()
	stopped []bool
}

// stopNode shuts one daemon down (idempotent) — the cluster-mode
// equivalent of killing a peer.
func (cd *clusterDaemons) stopNode(i int) {
	if cd.stopped[i] {
		return
	}
	cd.stopped[i] = true
	cd.stops[i]()
}

// startClusterDaemons boots size daemons wired into one ring. Peer
// listeners are pre-bound on port 0 first so every node can name every
// other in its Peers list before any of them starts.
func startClusterDaemons(t *testing.T, size int, mutate func(i int, cfg *serveConfig)) *clusterDaemons {
	t.Helper()
	lns := make([]net.Listener, size)
	peers := make([]string, size)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("bind peer listener %d: %v", i, err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	cd := &clusterDaemons{peers: peers, stopped: make([]bool, size)}
	for i := 0; i < size; i++ {
		others := make([]string, 0, size-1)
		for j, p := range peers {
			if j != i {
				others = append(others, p)
			}
		}
		i := i
		base, s, stop := startAPIServer(t, func(cfg *serveConfig) {
			cfg.Peers = others
			cfg.peerLn = lns[i]
			cfg.HedgeAfter = 25 * time.Millisecond
			if mutate != nil {
				mutate(i, cfg)
			}
		})
		cd.bases = append(cd.bases, base)
		cd.servers = append(cd.servers, s)
		cd.stops = append(cd.stops, stop)
	}
	t.Cleanup(func() {
		for i := range cd.stops {
			cd.stopNode(i)
		}
	})
	return cd
}

// ownerOf returns the index of the daemon owning spec's canonical key.
func (cd *clusterDaemons) ownerOf(t *testing.T, spec service.JobSpec) int {
	t.Helper()
	key, err := spec.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	owner, ok := cd.servers[0].node.Ring().Owner(key, nil)
	if !ok {
		t.Fatal("ring has no owner")
	}
	for i, p := range cd.peers {
		if p == owner {
			return i
		}
	}
	t.Fatalf("owner %s is not a daemon", owner)
	return -1
}

// specOwnedByDaemon finds an apiSpec variant owned by daemon want.
func (cd *clusterDaemons) specOwnedByDaemon(t *testing.T, want int) service.JobSpec {
	t.Helper()
	for n := 0; n < 1000; n++ {
		spec := apiSpec(n)
		if cd.ownerOf(t, spec) == want {
			return spec
		}
	}
	t.Fatalf("no spec owned by daemon %d", want)
	return service.JobSpec{}
}

// getRaw fetches url and returns the raw response bytes.
func getRaw(t *testing.T, url string) (int, []byte) {
	t.Helper()
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestAPIClusterExactlyOnceBitIdentical is the acceptance path over
// real HTTP and TCP: the same job submitted concurrently at all three
// daemons executes exactly once cluster-wide, every daemon serves the
// result, and the bytes are identical from every node.
func TestAPIClusterExactlyOnceBitIdentical(t *testing.T) {
	cd := startClusterDaemons(t, 3, nil)
	spec := cd.specOwnedByDaemon(t, 1)

	outs := make([]service.SubmitOutcome, 3)
	var wg sync.WaitGroup
	for i, base := range cd.bases {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			code, _ := doJSON(t, http.MethodPost, base+"/api/v1/jobs", spec, &outs[i])
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("daemon %d submit returned %d", i, code)
			}
		}(i, base)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < 3; i++ {
		if outs[i].ID != outs[0].ID {
			t.Fatalf("daemons disagree on the job ID: %q vs %q", outs[i].ID, outs[0].ID)
		}
	}

	var bodies [][]byte
	for i, base := range cd.bases {
		waitJobState(t, base, outs[i].ID, service.StateDone)
		code, body := getRaw(t, base+"/api/v1/jobs/"+outs[i].ID+"/result")
		if code != http.StatusOK {
			t.Fatalf("daemon %d result returned %d: %s", i, code, body)
		}
		bodies = append(bodies, body)
	}
	for i := 1; i < 3; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("daemon %d serves different bytes:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}

	// Exactly one execution across the fleet, on the owner.
	executed := 0
	for i, s := range cd.servers {
		ex := int(s.svc.Stats().Executed)
		executed += ex
		if i == 1 && ex != 1 {
			t.Fatalf("owner daemon executed %d times, want 1", ex)
		}
	}
	if executed != 1 {
		t.Fatalf("cluster executed %d times, want exactly 1", executed)
	}

	// The stats endpoint is cluster-aware: any daemon reports the fleet.
	var snap cluster.ClusterSnapshot
	if code, _ := doJSON(t, http.MethodGet, cd.bases[2]+"/api/v1/stats", nil, &snap); code != http.StatusOK {
		t.Fatalf("cluster stats returned %d", code)
	}
	if snap.Totals.Nodes != 3 || len(snap.Unreachable) != 0 {
		t.Fatalf("cluster stats totals %+v, unreachable %v", snap.Totals, snap.Unreachable)
	}
	if snap.Totals.Submitted < 3 {
		t.Fatalf("fleet submitted %d, want >= 3", snap.Totals.Submitted)
	}
}

// TestAPIClusterKilledPeerRoutedAround kills the daemon owning a key,
// then submits that key elsewhere: the hedge (or local fallback)
// completes the job, and the stats endpoint reports the dead peer as
// unreachable rather than failing.
func TestAPIClusterKilledPeerRoutedAround(t *testing.T) {
	cd := startClusterDaemons(t, 3, nil)
	spec := cd.specOwnedByDaemon(t, 2)
	cd.stopNode(2)

	var out service.SubmitOutcome
	code, _ := doJSON(t, http.MethodPost, cd.bases[0]+"/api/v1/jobs", spec, &out)
	if code != http.StatusAccepted {
		t.Fatalf("submit with dead owner returned %d", code)
	}
	waitJobState(t, cd.bases[0], out.ID, service.StateDone)
	if code, body := getRaw(t, cd.bases[0]+"/api/v1/jobs/"+out.ID+"/result"); code != http.StatusOK || len(body) == 0 {
		t.Fatalf("result after routing around dead owner: %d %s", code, body)
	}

	var snap cluster.ClusterSnapshot
	if code, _ := doJSON(t, http.MethodGet, cd.bases[0]+"/api/v1/stats", nil, &snap); code != http.StatusOK {
		t.Fatalf("cluster stats returned %d", code)
	}
	if snap.Totals.Unreachable != 1 || len(snap.Unreachable) != 1 || snap.Unreachable[0] != cd.peers[2] {
		t.Fatalf("stats should list the killed peer %s as unreachable, got %+v", cd.peers[2], snap.Unreachable)
	}
}

// TestServePeerFlagValidation: cluster misconfiguration fails newServer
// synchronously with the typed peer-validation error — the daemon never
// starts half-clustered.
func TestServePeerFlagValidation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	self := ln.Addr().String()

	cases := []struct {
		name   string
		peers  []string
		reason string
	}{
		{"self-addressed", []string{self}, "own address"},
		{"duplicate", []string{"10.0.0.1:9321", "10.0.0.1:9321"}, "duplicate"},
		{"empty entry", []string{"10.0.0.1:9321", ""}, "empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testServeConfig()
			cfg.KillEpoch = -1
			cfg.Peers = tc.peers
			cfg.peerLn = ln
			s, err := newServer(cfg)
			if err == nil {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				s.Run(ctx)
				t.Fatalf("newServer accepted peers %v", tc.peers)
			}
			var ce *cluster.ClusterConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %v is not a *cluster.ClusterConfigError", err)
			}
			if !strings.Contains(ce.Reason, tc.reason) {
				t.Fatalf("reason %q does not mention %q", ce.Reason, tc.reason)
			}
		})
	}
}

// TestSplitPeers covers the -peers flag parser: trimming, kept empties
// (so validation rejects them loudly), and the single-node empty case.
func TestSplitPeers(t *testing.T) {
	if got := splitPeers(""); got != nil {
		t.Fatalf("splitPeers(\"\") = %v, want nil", got)
	}
	got := splitPeers(" a:1, b:2 ,,c:3")
	want := []string{"a:1", "b:2", "", "c:3"}
	if len(got) != len(want) {
		t.Fatalf("splitPeers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitPeers[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
