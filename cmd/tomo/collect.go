package main

import (
	"context"
	"flag"
	"fmt"
	"strings"
	"time"

	"robusttomo/internal/agent"
)

// runCollect demonstrates the fault-tolerant collection plane end to end:
// real TCP monitors on the example network, a NOC with retries and circuit
// breakers, and a monitor killed mid-run. The loop degrades — partial
// epochs, failed paths, breaker opening — instead of aborting. With
// -strict the command exits non-zero when the final epoch was degraded
// (or, in -fail-fast mode, failed), so scripted health checks can gate on
// a clean steady state.
func runCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ContinueOnError)
	epochs := fs.Int("epochs", 12, "epochs to run")
	killEpoch := fs.Int("kill-epoch", 4, "epoch at which one monitor is killed (-1: never)")
	retries := fs.Int("retries", 2, "max connection attempts per monitor per epoch")
	backoff := fs.Duration("backoff", 5*time.Millisecond, "base retry backoff")
	threshold := fs.Int("breaker-threshold", 3, "consecutive failures before the breaker opens")
	cooldown := fs.Duration("cooldown", 100*time.Millisecond, "breaker cool-down before a half-open probe")
	failFast := fs.Bool("fail-fast", false, "abort degraded epochs instead of keeping partial data")
	strict := fs.Bool("strict", false, "exit non-zero if the final epoch was degraded")
	seed := fs.Uint64("seed", 2014, "random seed")
	stream := fs.Bool("stream", false, "use the batched streaming plane instead of per-line JSON")
	shards := fs.Int("shards", 0, "streaming session-table shards (0: default; needs -stream)")
	watermark := fs.Duration("watermark", 0, "streaming epoch watermark (0: default; needs -stream)")
	encoding := fs.String("batch-encoding", "binary", "streaming frame encoding: binary or json (needs -stream)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *epochs <= 0 {
		return fmt.Errorf("epochs must be positive")
	}
	enc, err := agent.ParseEncoding(*encoding)
	if err != nil {
		return err
	}

	d, err := newDemoLoop(demoConfig{
		Horizon:   *epochs,
		Retries:   *retries,
		Backoff:   *backoff,
		Threshold: *threshold,
		Cooldown:  *cooldown,
		FailFast:  *failFast,
		Seed:      *seed,
		Stream:    *stream,
		Shards:    *shards,
		Watermark: *watermark,
		Encoding:  enc,
	})
	if err != nil {
		return err
	}
	defer d.Close()

	plane := "per-line JSON"
	if *stream {
		plane = fmt.Sprintf("streaming %s frames", enc)
	}
	fmt.Printf("fault-tolerant collection on %s: %d monitors, %d selected paths, %d epochs (%s)\n",
		d.Ex.Graph, len(d.Addrs), len(d.Runner.StaticSelection()), *epochs, plane)
	if *killEpoch >= 0 {
		fmt.Printf("monitor %s dies before epoch %d (retries %d, breaker threshold %d, cooldown %v)\n",
			d.Victim, *killEpoch, *retries, *threshold, *cooldown)
	}
	fmt.Println("epoch  probed  survived  rank  health")
	ctx := context.Background()
	finalDegraded := false
	for e := 0; e < *epochs; e++ {
		if e == *killEpoch {
			d.KillVictim()
		}
		rep, err := d.Runner.Step(ctx)
		if err != nil {
			// FailFast mode surfaces degraded epochs as errors; report and
			// keep going so the breaker arc is still visible.
			fmt.Printf("%5d  collection failed: %v\n", e, err)
			finalDegraded = true
			continue
		}
		health := "ok"
		finalDegraded = rep.Collection.Degraded
		if rep.Collection.Degraded {
			health = fmt.Sprintf("degraded: lost %d path(s) via %s after %d attempt(s)",
				rep.Collection.LostPaths, strings.Join(rep.Collection.FailedMonitors, ","), rep.Collection.Attempts)
		}
		fmt.Printf("%5d  %6d  %8d  %4d  %s\n", rep.Epoch, rep.Probed, rep.Survived, rep.Rank, health)
	}
	fmt.Printf("breakers: %s\n", d.BreakerLine())

	values, ident, err := d.Runner.Estimates(1, 1e-6)
	if err != nil {
		return err
	}
	identified := 0
	for j := range ident {
		if ident[j] {
			identified++
			_ = values[j]
		}
	}
	fmt.Printf("inference from the surviving data: %d/%d links identified\n", identified, d.PM.NumLinks())
	if *strict && finalDegraded {
		return fmt.Errorf("strict: final epoch was degraded")
	}
	return nil
}
