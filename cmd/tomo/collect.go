package main

import (
	"context"
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	"robusttomo/internal/agent"
	"robusttomo/internal/failure"
	"robusttomo/internal/routing"
	"robusttomo/internal/sim"
	"robusttomo/internal/tomo"
	"robusttomo/internal/topo"
)

// runCollect demonstrates the fault-tolerant collection plane end to end:
// real TCP monitors on the example network, a NOC with retries and circuit
// breakers, and a monitor killed mid-run. The loop degrades — partial
// epochs, failed paths, breaker opening — instead of aborting.
func runCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ContinueOnError)
	epochs := fs.Int("epochs", 12, "epochs to run")
	killEpoch := fs.Int("kill-epoch", 4, "epoch at which one monitor is killed (-1: never)")
	retries := fs.Int("retries", 2, "max connection attempts per monitor per epoch")
	backoff := fs.Duration("backoff", 5*time.Millisecond, "base retry backoff")
	threshold := fs.Int("breaker-threshold", 3, "consecutive failures before the breaker opens")
	cooldown := fs.Duration("cooldown", 100*time.Millisecond, "breaker cool-down before a half-open probe")
	failFast := fs.Bool("fail-fast", false, "abort degraded epochs instead of keeping partial data")
	seed := fs.Uint64("seed", 2014, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *epochs <= 0 {
		return fmt.Errorf("epochs must be positive")
	}

	ex := topo.NewExample()
	paths, err := routing.MonitorPairs(ex.Graph, ex.Monitors, ex.Monitors)
	if err != nil {
		return err
	}
	pm, err := tomo.NewPathMatrix(paths, ex.Graph.NumEdges())
	if err != nil {
		return err
	}
	probs := make([]float64, pm.NumLinks())
	for i := range probs {
		probs[i] = 0.05
	}
	probs[ex.Bridge] = 0.3
	model, err := failure.FromProbabilities(probs)
	if err != nil {
		return err
	}
	costs := make([]float64, pm.NumPaths())
	for i := range costs {
		costs[i] = 1
	}
	metrics := make([]float64, pm.NumLinks())
	for i := range metrics {
		metrics[i] = 1 + float64(i)*0.5
	}
	runner, err := sim.New(sim.Config{
		PM:       pm,
		Costs:    costs,
		Budget:   10,
		Metrics:  metrics,
		Failures: model,
		Horizon:  *epochs,
		Mode:     sim.Static,
		Model:    model,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}

	srcOf := func(p int) string { return ex.Graph.Label(pm.Path(p).Src) }
	// The victim is the monitor sourcing the first selected path, so the
	// kill is guaranteed to cost measurements.
	victim := srcOf(runner.StaticSelection()[0])
	monitors := map[string]*agent.Monitor{}
	addrs := map[string]string{}
	for _, mn := range ex.Monitors {
		name := ex.Graph.Label(mn)
		mon, err := agent.StartMonitor(name, "127.0.0.1:0", runner.Oracle())
		if err != nil {
			return err
		}
		defer mon.Close()
		monitors[name] = mon
		addrs[name] = mon.Addr()
	}

	cfg := agent.DefaultNOCConfig()
	cfg.PM = pm
	cfg.Monitors = addrs
	cfg.SourceOf = srcOf
	cfg.Retry = agent.RetryPolicy{MaxAttempts: *retries, BaseBackoff: *backoff, MaxBackoff: 20 * *backoff, Multiplier: 2, Jitter: 0.5}
	cfg.Breaker = agent.BreakerPolicy{FailureThreshold: *threshold, Cooldown: *cooldown}
	cfg.Timeouts = agent.Timeouts{Dial: 250 * time.Millisecond, Exchange: 2 * time.Second}
	cfg.FailFast = *failFast
	cfg.Seed = *seed
	noc, err := agent.NewNOC(cfg)
	if err != nil {
		return err
	}
	defer noc.Close()
	if err := runner.UseCollector(noc); err != nil {
		return err
	}

	fmt.Printf("fault-tolerant collection on %s: %d monitors, %d selected paths, %d epochs\n",
		ex.Graph, len(addrs), len(runner.StaticSelection()), *epochs)
	if *killEpoch >= 0 {
		fmt.Printf("monitor %s dies before epoch %d (retries %d, breaker threshold %d, cooldown %v)\n",
			victim, *killEpoch, *retries, *threshold, *cooldown)
	}
	fmt.Println("epoch  probed  survived  rank  health")
	ctx := context.Background()
	for e := 0; e < *epochs; e++ {
		if e == *killEpoch {
			monitors[victim].Close()
		}
		rep, err := runner.Step(ctx)
		if err != nil {
			// FailFast mode surfaces degraded epochs as errors; report and
			// keep going so the breaker arc is still visible.
			fmt.Printf("%5d  collection failed: %v\n", e, err)
			continue
		}
		health := "ok"
		if rep.Collection.Degraded {
			health = fmt.Sprintf("degraded: lost %d path(s) via %s after %d attempt(s)",
				rep.Collection.LostPaths, strings.Join(rep.Collection.FailedMonitors, ","), rep.Collection.Attempts)
		}
		fmt.Printf("%5d  %6d  %8d  %4d  %s\n", rep.Epoch, rep.Probed, rep.Survived, rep.Rank, health)
	}
	var states []string
	for name, st := range noc.BreakerStates() {
		states = append(states, fmt.Sprintf("%s=%s", name, st))
	}
	sort.Strings(states)
	fmt.Printf("breakers: %s\n", strings.Join(states, " "))

	values, ident, err := runner.Estimates(1, 1e-6)
	if err != nil {
		return err
	}
	identified := 0
	for j := range metrics {
		if ident[j] {
			identified++
			_ = values[j]
		}
	}
	fmt.Printf("inference from the surviving data: %d/%d links identified\n", identified, pm.NumLinks())
	return nil
}
