package main

import (
	"fmt"
	"sort"
	"time"

	"robusttomo/internal/agent"
	"robusttomo/internal/failure"
	"robusttomo/internal/obs"
	"robusttomo/internal/routing"
	"robusttomo/internal/sim"
	"robusttomo/internal/tomo"
	"robusttomo/internal/topo"
)

// demoConfig parameterizes the shared fault-tolerance demo loop that both
// `tomo collect` (fixed epoch count) and `tomo serve` (daemon) run: the
// Section II example network with real TCP monitors, a NOC with retries
// and circuit breakers, and — optionally — one monitor killed mid-run.
type demoConfig struct {
	Horizon   int // epochs the failure schedule covers
	Retries   int
	Backoff   time.Duration
	Threshold int
	Cooldown  time.Duration
	FailFast  bool
	Seed      uint64
	Mode      sim.Mode
	// Observer, when non-nil, instruments every layer of the loop.
	Observer *obs.Registry

	// Stream swaps the per-line JSON NOC for the batched streaming plane
	// (sharded sessions, watermark epoch assembly); the knobs below only
	// apply then.
	Stream bool
	// Shards is the streaming session-table shard count (0: the plane's
	// default).
	Shards int
	// Watermark bounds how long an epoch waits for missing results before
	// sealing (0: the plane's default).
	Watermark time.Duration
	// Encoding selects the batch frame encoding (binary or JSON lines).
	Encoding agent.Encoding
}

// demoLoop owns the wired-up components of the demo. Exactly one of NOC
// (per-line JSON plane) and Stream (batched streaming plane) is non-nil.
type demoLoop struct {
	Ex       *topo.Example
	PM       *tomo.PathMatrix
	Runner   *sim.Runner
	NOC      *agent.NOC
	Stream   *agent.StreamNOC
	Monitors map[string]*agent.Monitor
	Addrs    map[string]string
	// Victim is the monitor whose death costs measurements: the source of
	// the first selected path in Static mode, the first monitor by name in
	// Learning mode.
	Victim string
}

// newDemoLoop builds and wires the demo: topology, routing, failure model,
// closed-loop runner, TCP monitors and the NOC collector.
func newDemoLoop(cfg demoConfig) (*demoLoop, error) {
	ex := topo.NewExample()
	paths, err := routing.MonitorPairs(ex.Graph, ex.Monitors, ex.Monitors)
	if err != nil {
		return nil, err
	}
	pm, err := tomo.NewPathMatrix(paths, ex.Graph.NumEdges())
	if err != nil {
		return nil, err
	}
	probs := make([]float64, pm.NumLinks())
	for i := range probs {
		probs[i] = 0.05
	}
	probs[ex.Bridge] = 0.3
	model, err := failure.FromProbabilities(probs)
	if err != nil {
		return nil, err
	}
	costs := make([]float64, pm.NumPaths())
	for i := range costs {
		costs[i] = 1
	}
	metrics := make([]float64, pm.NumLinks())
	for i := range metrics {
		metrics[i] = 1 + float64(i)*0.5
	}
	mode := cfg.Mode
	if mode == 0 {
		mode = sim.Static
	}
	runner, err := sim.New(sim.Config{
		PM:       pm,
		Costs:    costs,
		Budget:   10,
		Metrics:  metrics,
		Failures: model,
		Horizon:  cfg.Horizon,
		Mode:     mode,
		Model:    model,
		Seed:     cfg.Seed,
		Observer: cfg.Observer,
	})
	if err != nil {
		return nil, err
	}

	d := &demoLoop{
		Ex:       ex,
		PM:       pm,
		Runner:   runner,
		Monitors: map[string]*agent.Monitor{},
		Addrs:    map[string]string{},
	}
	for _, mn := range ex.Monitors {
		name := ex.Graph.Label(mn)
		mon, err := agent.StartMonitor(name, "127.0.0.1:0", runner.Oracle())
		if err != nil {
			d.Close()
			return nil, err
		}
		d.Monitors[name] = mon
		d.Addrs[name] = mon.Addr()
	}
	if sel := runner.StaticSelection(); len(sel) > 0 {
		d.Victim = d.SrcOf(sel[0])
	} else {
		names := make([]string, 0, len(d.Monitors))
		for name := range d.Monitors {
			names = append(names, name)
		}
		sort.Strings(names)
		d.Victim = names[0]
	}

	retry := agent.RetryPolicy{MaxAttempts: cfg.Retries, BaseBackoff: cfg.Backoff, MaxBackoff: 20 * cfg.Backoff, Multiplier: 2, Jitter: 0.5}
	breaker := agent.BreakerPolicy{FailureThreshold: cfg.Threshold, Cooldown: cfg.Cooldown}
	timeouts := agent.Timeouts{Dial: 250 * time.Millisecond, Exchange: 2 * time.Second}

	var collector sim.Collector
	if cfg.Stream {
		s, err := agent.NewStreamNOC(agent.StreamConfig{
			PM:        pm,
			Monitors:  d.Addrs,
			SourceOf:  d.SrcOf,
			Shards:    cfg.Shards,
			Watermark: cfg.Watermark,
			Encoding:  cfg.Encoding,
			Retry:     retry,
			Breaker:   breaker,
			Timeouts:  timeouts,
			FailFast:  cfg.FailFast,
			Seed:      cfg.Seed,
			Observer:  cfg.Observer,
		})
		if err != nil {
			d.Close()
			return nil, err
		}
		d.Stream = s
		collector = s
	} else {
		ncfg := agent.DefaultNOCConfig()
		ncfg.PM = pm
		ncfg.Monitors = d.Addrs
		ncfg.SourceOf = d.SrcOf
		ncfg.Retry = retry
		ncfg.Breaker = breaker
		ncfg.Timeouts = timeouts
		ncfg.FailFast = cfg.FailFast
		ncfg.Seed = cfg.Seed
		ncfg.Observer = cfg.Observer
		noc, err := agent.NewNOC(ncfg)
		if err != nil {
			d.Close()
			return nil, err
		}
		d.NOC = noc
		collector = noc
	}
	if err := runner.UseCollector(collector); err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

// BreakerStates reports the per-monitor breaker states of whichever
// collection plane the loop runs.
func (d *demoLoop) BreakerStates() map[string]agent.BreakerState {
	if d.Stream != nil {
		return d.Stream.BreakerStates()
	}
	return d.NOC.BreakerStates()
}

// SrcOf maps a path index to its source monitor's name.
func (d *demoLoop) SrcOf(p int) string { return d.Ex.Graph.Label(d.PM.Path(p).Src) }

// KillVictim closes the victim monitor's listener, so subsequent epochs
// exercise retries, breaker opening and partial collection.
func (d *demoLoop) KillVictim() { d.Monitors[d.Victim].Close() }

// BreakerLine formats the collector's breaker states as "name=state ..."
// sorted by monitor name.
func (d *demoLoop) BreakerLine() string {
	states := make([]string, 0, len(d.Monitors))
	for name, st := range d.BreakerStates() {
		states = append(states, fmt.Sprintf("%s=%s", name, st))
	}
	sort.Strings(states)
	out := ""
	for i, s := range states {
		if i > 0 {
			out += " "
		}
		out += s
	}
	return out
}

// Close tears down the NOC and every monitor. Safe on a partially
// constructed loop and safe to call twice.
func (d *demoLoop) Close() {
	if d.NOC != nil {
		d.NOC.Close()
	}
	if d.Stream != nil {
		d.Stream.Close()
	}
	for _, m := range d.Monitors {
		m.Close()
	}
}
