// Command tomo is the operator CLI for the robust-tomography library:
//
//	tomo topo     -preset AS1755 [-load weights] [-write file]   describe/export
//	tomo select   -preset AS3257 -paths 400 -alg probrome        robust selection
//	tomo infer    -failures 1 [-seed 7]                          inference demo
//	tomo learn    -epochs 500 -paths 100                         LSR learner
//	tomo place    -monitors 8 [-failures 3]                      monitor placement
//	tomo simulate -epochs 200 -mode learning                     closed-loop run
//	tomo diagnose -failures 2                                    failure localization
//	tomo collect  -epochs 12 -kill-epoch 4 [-strict]             fault-tolerant collection demo
//	tomo serve    -addr 127.0.0.1:8321 [-kill-epoch 20]          observability daemon: /metrics, /healthz, /statusz, pprof
//
// Every subcommand is deterministic in its -seed flag.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"robusttomo/internal/diagnose"
	"robusttomo/internal/er"
	"robusttomo/internal/experiments"
	"robusttomo/internal/failure"
	"robusttomo/internal/placement"
	"robusttomo/internal/routing"
	"robusttomo/internal/selection"
	"robusttomo/internal/sim"
	"robusttomo/internal/stats"
	"robusttomo/internal/tomo"
	"robusttomo/internal/topo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tomo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: tomo <topo|select|infer|learn|place|simulate|diagnose|collect|serve> [flags]")
	}
	switch args[0] {
	case "topo":
		return runTopo(args[1:])
	case "select":
		return runSelect(args[1:])
	case "infer":
		return runInfer(args[1:])
	case "learn":
		return runLearn(args[1:])
	case "place":
		return runPlace(args[1:])
	case "simulate":
		return runSimulate(args[1:])
	case "diagnose":
		return runDiagnose(args[1:])
	case "collect":
		return runCollect(args[1:])
	case "serve":
		return runServe(args[1:], os.Stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (topo, select, infer, learn, place, simulate, diagnose, collect, serve)", args[0])
	}
}

func runDiagnose(args []string) error {
	fs := flag.NewFlagSet("diagnose", flag.ContinueOnError)
	preset := fs.String("preset", topo.AS1755, "topology preset")
	paths := fs.Int("paths", 100, "candidate path count")
	failures := fs.Int("failures", 2, "concurrent link failures to inject")
	seed := fs.Uint64("seed", 2014, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc := experiments.Scale{MonitorSets: 1, Scenarios: 1, MonteCarloRuns: 50, ExpectedFailures: 3, Seed: *seed}
	in, err := experiments.BuildInstance(experiments.Workload{Preset: *preset, CandidatePaths: *paths}, sc, 0)
	if err != nil {
		return err
	}
	rng := stats.NewRNG(*seed, 3)
	scenario, err := in.Model.ExactK(rng, *failures)
	if err != nil {
		return err
	}
	obs := diagnose.Observation{}
	for i := 0; i < in.PM.NumPaths(); i++ {
		obs.Paths = append(obs.Paths, i)
		obs.OK = append(obs.OK, in.PM.Available(i, scenario))
	}
	diag, err := diagnose.Localize(in.PM, obs)
	if err != nil {
		return err
	}
	fmt.Printf("%s with %d probed paths; injected down links:", *preset, in.PM.NumPaths())
	for l, down := range scenario.Failed {
		if down {
			fmt.Printf(" l%d", l)
		}
	}
	fmt.Printf("\nlocalization: %d links proven up, %d suspects, %d implicated (certainly down)\n",
		count(diag.Up), diag.NumSuspect(), diag.NumImplicated())
	for l, down := range diag.Implicated {
		if down {
			fmt.Printf("  implicated: l%d (truly down: %v)\n", l, scenario.Failed[l])
		}
	}
	expl, err := diagnose.GreedyExplanation(in.PM, obs)
	if err != nil {
		return err
	}
	fmt.Printf("greedy explanation (%d links):", len(expl))
	for _, l := range expl {
		fmt.Printf(" l%d", l)
	}
	fmt.Println()
	return nil
}

func count(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func runPlace(args []string) error {
	fs := flag.NewFlagSet("place", flag.ContinueOnError)
	preset := fs.String("preset", topo.AS1755, "topology preset")
	monitors := fs.Int("monitors", 8, "monitors to place")
	failures := fs.Float64("failures", 0, "expected concurrent failures; 0 optimizes plain rank")
	seed := fs.Uint64("seed", 2014, "random seed for the failure model")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tp, err := topo.Preset(*preset)
	if err != nil {
		return err
	}
	cfg := placement.Config{Graph: tp.Graph, Candidates: tp.Access, Budget: *monitors}
	objective := "rank"
	if *failures > 0 {
		model, err := failure.NewModel(failure.Config{
			Links: tp.Graph.NumEdges(), ExpectedFailures: *failures, Seed: *seed,
		})
		if err != nil {
			return err
		}
		cfg.Model = model
		objective = "expected rank"
	}
	res, err := placement.Greedy(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("placed %d monitors on %s (%d candidates): %s %.2f over %d paths\n",
		len(res.Monitors), tp.Name, len(tp.Access), objective, res.Objective, res.Paths)
	for i, m := range res.Monitors {
		fmt.Printf("  %2d. %s\n", i+1, tp.Graph.Label(m))
	}
	return nil
}

func runSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	preset := fs.String("preset", topo.AS1755, "topology preset")
	paths := fs.Int("paths", 100, "candidate path count")
	epochs := fs.Int("epochs", 200, "epochs to run")
	mode := fs.String("mode", "static", "static (known distribution) or learning")
	mult := fs.Float64("budget-mult", 0.6, "budget as a multiple of the basis cost")
	seed := fs.Uint64("seed", 2014, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc := experiments.Scale{MonitorSets: 1, Scenarios: 1, MonteCarloRuns: 50, ExpectedFailures: 3, Seed: *seed}
	in, err := experiments.BuildInstance(experiments.Workload{Preset: *preset, CandidatePaths: *paths}, sc, 0)
	if err != nil {
		return err
	}
	order := make([]int, in.PM.NumPaths())
	for i := range order {
		order[i] = i
	}
	basisCost := 0.0
	for _, q := range in.PM.SelectBasisIndices(order) {
		basisCost += in.Costs[q]
	}
	metrics := make([]float64, in.PM.NumLinks())
	rng := stats.NewRNG(*seed, 2)
	for i := range metrics {
		metrics[i] = 1 + rng.Float64()*9
	}
	simMode := sim.Static
	if *mode == "learning" {
		simMode = sim.Learning
	} else if *mode != "static" {
		return fmt.Errorf("unknown mode %q", *mode)
	}
	runner, err := sim.New(sim.Config{
		PM:       in.PM,
		Costs:    in.Costs,
		Budget:   *mult * basisCost,
		Metrics:  metrics,
		Failures: in.Model,
		Horizon:  *epochs,
		Mode:     simMode,
		Model:    in.Model,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}
	ctx := context.Background()
	reports, err := runner.Run(ctx, *epochs)
	if err != nil {
		return err
	}
	window := *epochs / 10
	if window < 1 {
		window = 1
	}
	fmt.Printf("closed-loop %s mode on %s, %d candidates, budget %.0f\n", *mode, *preset, in.PM.NumPaths(), *mult*basisCost)
	fmt.Println("epochs       avg rank  avg survived  localized-down events")
	for start := 0; start < len(reports); start += window {
		end := start + window
		if end > len(reports) {
			end = len(reports)
		}
		rank, surv, impl := 0.0, 0.0, 0
		for _, rep := range reports[start:end] {
			rank += float64(rep.Rank)
			surv += float64(rep.Survived)
			impl += len(rep.Implicated)
		}
		n := float64(end - start)
		fmt.Printf("%4d–%-4d    %7.2f  %11.2f  %d\n", start+1, end, rank/n, surv/n, impl)
	}
	values, ident, err := runner.Estimates(1, 1e-6)
	if err != nil {
		return err
	}
	identified, maxErr := 0, 0.0
	for j := range metrics {
		if !ident[j] {
			continue
		}
		identified++
		if d := values[j] - metrics[j]; d > maxErr {
			maxErr = d
		} else if -d > maxErr {
			maxErr = -d
		}
	}
	fmt.Printf("final inference: %d/%d links identified, max abs error %.2g\n",
		identified, in.PM.NumLinks(), maxErr)
	return nil
}

func runTopo(args []string) error {
	fs := flag.NewFlagSet("topo", flag.ContinueOnError)
	preset := fs.String("preset", topo.AS1755, "topology preset (AS1755, AS3257, AS1239)")
	load := fs.String("load", "", "load a Rocketfuel-style weights file instead of a preset")
	write := fs.String("write", "", "write the edge list to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var tp *topo.Topology
	var err error
	if *load != "" {
		f, ferr := os.Open(*load)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		tp, err = topo.LoadWeights(*load, f)
	} else {
		tp, err = topo.Preset(*preset)
	}
	if err != nil {
		return err
	}
	deg := tp.Graph.Degrees()
	fmt.Printf("%s: %s, %d core / %d access routers\n",
		tp.Name, tp.Graph, len(tp.Core), len(tp.Access))
	fmt.Printf("degree: min %d, max %d, mean %.2f; connected: %v\n",
		deg.Min, deg.Max, deg.Mean, tp.Graph.Connected())
	bridges := tp.Graph.Bridges()
	cutNodes := tp.Graph.ArticulationPoints()
	fmt.Printf("cut links (bridges): %d of %d; cut routers: %d of %d — single points of failure for tomography\n",
		len(bridges), tp.Graph.NumEdges(), len(cutNodes), tp.Graph.NumNodes())
	if *write != "" {
		f, err := os.Create(*write)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tp.Graph.WriteEdgeList(f); err != nil {
			return err
		}
		fmt.Printf("edge list written to %s\n", *write)
	}
	return nil
}

func runSelect(args []string) error {
	fs := flag.NewFlagSet("select", flag.ContinueOnError)
	preset := fs.String("preset", topo.AS1755, "topology preset")
	load := fs.String("load", "", "load a Rocketfuel-style weights file instead of a preset")
	paths := fs.Int("paths", 400, "candidate path count")
	alg := fs.String("alg", "probrome", "algorithm: probrome, monterome, selectpath, matrome")
	mult := fs.Float64("budget-mult", 0.75, "budget as a multiple of the basis cost")
	seed := fs.Uint64("seed", 2014, "random seed")
	failures := fs.Float64("failures", 3, "expected concurrent link failures")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := experiments.Workload{Preset: *preset, CandidatePaths: *paths}
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		defer f.Close()
		tp, err := topo.LoadWeights(*load, f)
		if err != nil {
			return err
		}
		w = experiments.Workload{Loaded: tp, CandidatePaths: *paths}
	}
	sc := experiments.Scale{MonitorSets: 1, Scenarios: 200, MonteCarloRuns: 50, ExpectedFailures: *failures, Seed: *seed}
	in, err := experiments.BuildInstance(w, sc, 0)
	if err != nil {
		return err
	}

	// Budget from the basis cost.
	order := make([]int, in.PM.NumPaths())
	for i := range order {
		order[i] = i
	}
	basisCost := 0.0
	for _, q := range in.PM.SelectBasisIndices(order) {
		basisCost += in.Costs[q]
	}
	budget := *mult * basisCost

	var selected []int
	switch *alg {
	case "probrome":
		selected, err = in.Select(experiments.AlgProbRoMe, budget, sc, 1)
	case "monterome":
		selected, err = in.Select(experiments.AlgMonteRoMe, budget, sc, 1)
	case "selectpath":
		selected, err = in.Select(experiments.AlgSelectPath, budget, sc, 1)
	case "matrome":
		ea := er.Availabilities(in.PM, in.Model)
		var res selection.Result
		res, err = selection.MatRoMe(in.PM, ea, in.PM.Rank(), selection.MatRoMeOptions{})
		selected = res.Selected
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}
	if err != nil {
		return err
	}

	total := 0.0
	for _, q := range selected {
		total += in.Costs[q]
	}
	scenarios := in.Model.SampleN(stats.NewRNG(*seed, 77), sc.Scenarios)
	ranks, _ := in.EvalMetrics(selected, scenarios, false)
	fmt.Printf("%s on %s with %d candidates\n", *alg, in.Topology.Name, in.PM.NumPaths())
	fmt.Printf("budget %.0f (%.2f× basis cost %.0f): selected %d paths, cost %.0f\n",
		budget, *mult, basisCost, len(selected), total)
	fmt.Printf("no-failure rank: %d of max %d\n", in.PM.RankOf(selected), in.PM.Rank())
	fmt.Printf("rank under failures (%d scenarios): %s\n", sc.Scenarios, stats.Summarize(ranks))
	return nil
}

func runInfer(args []string) error {
	fs := flag.NewFlagSet("infer", flag.ContinueOnError)
	failures := fs.Int("failures", 1, "concurrent link failures to inject")
	seed := fs.Uint64("seed", 7, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The Section II example network end to end: select, fail, measure,
	// infer.
	ex := topo.NewExample()
	paths, err := routing.MonitorPairs(ex.Graph, ex.Monitors, ex.Monitors)
	if err != nil {
		return err
	}
	pm, err := tomo.NewPathMatrix(paths, ex.Graph.NumEdges())
	if err != nil {
		return err
	}
	probs := make([]float64, pm.NumLinks())
	for i := range probs {
		probs[i] = 0.05
	}
	probs[ex.Bridge] = 0.3 // the bridge is the flaky link, as in the paper
	model, err := failure.FromProbabilities(probs)
	if err != nil {
		return err
	}

	metrics := make([]float64, pm.NumLinks())
	rng := stats.NewRNG(*seed, 1)
	for i := range metrics {
		metrics[i] = 1 + rng.Float64()*9 // ground-truth link delays, ms
	}
	y, err := pm.TrueMeasurements(metrics)
	if err != nil {
		return err
	}

	scenario, err := model.ExactK(rng, *failures)
	if err != nil {
		return err
	}
	fmt.Printf("example network: %s, %d candidate paths, rank %d\n", ex.Graph, pm.NumPaths(), pm.Rank())
	fmt.Printf("injected failures: %d (links:", scenario.NumFailed())
	for l, down := range scenario.Failed {
		if down {
			fmt.Printf(" l%d", l)
		}
	}
	fmt.Println(")")

	all := make([]int, pm.NumPaths())
	for i := range all {
		all[i] = i
	}
	surviving := pm.Surviving(all, scenario)
	ys := make([]float64, len(surviving))
	for k, i := range surviving {
		ys[k] = y[i]
	}
	sys, err := tomo.NewSystem(pm, surviving, ys)
	if err != nil {
		return err
	}
	values, ident, err := sys.Solve()
	if err != nil {
		return err
	}
	fmt.Printf("surviving paths: %d/%d, rank %d, identifiable links %d/%d\n",
		len(surviving), pm.NumPaths(), sys.Rank(), sys.NumIdentifiable(), pm.NumLinks())
	for j := range metrics {
		if ident[j] {
			fmt.Printf("  l%d: inferred %.3f ms (truth %.3f)\n", j, values[j], metrics[j])
		} else {
			fmt.Printf("  l%d: not identifiable (truth %.3f)\n", j, metrics[j])
		}
	}
	return nil
}

func runLearn(args []string) error {
	fs := flag.NewFlagSet("learn", flag.ContinueOnError)
	preset := fs.String("preset", topo.AS1755, "topology preset")
	paths := fs.Int("paths", 100, "candidate path count")
	epochs := fs.Int("epochs", 500, "learning epochs")
	mult := fs.Float64("budget-mult", 0.5, "budget as a multiple of the basis cost")
	seed := fs.Uint64("seed", 2014, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fig, err := experiments.Learning(experiments.LearningConfig{
		Workload:   experiments.Workload{Preset: *preset, CandidatePaths: *paths},
		Multiplier: []float64{*mult},
		Epochs:     []int{*epochs},
	}, experiments.Scale{MonitorSets: 1, Scenarios: 150, MonteCarloRuns: 50, ExpectedFailures: 3, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Println(fig)
	return nil
}
