package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunDispatch(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

func TestRunTopoPresetAndWrite(t *testing.T) {
	out := filepath.Join(t.TempDir(), "as1755.edges")
	if err := run([]string{"topo", "-preset", "AS1755", "-write", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("edge list empty")
	}
}

func TestRunTopoLoad(t *testing.T) {
	in := filepath.Join(t.TempDir(), "weights.intra")
	if err := os.WriteFile(in, []byte("a b 1\nb c 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"topo", "-load", in}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"topo", "-load", in + ".missing"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunTopoUnknownPreset(t *testing.T) {
	if err := run([]string{"topo", "-preset", "AS0"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestRunInfer(t *testing.T) {
	if err := run([]string{"infer", "-failures", "1", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"infer", "-failures", "-2"}); err == nil {
		t.Fatal("negative failure count accepted")
	}
}

func TestRunSelectSmall(t *testing.T) {
	for _, alg := range []string{"probrome", "selectpath", "matrome"} {
		if err := run([]string{"select", "-preset", "AS1755", "-paths", "49", "-alg", alg, "-budget-mult", "0.5"}); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
	if err := run([]string{"select", "-alg", "quantum"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunSelectLoadedTopology(t *testing.T) {
	in := filepath.Join(t.TempDir(), "weights.intra")
	data := "a b 1\nb c 1\nc d 1\nd a 1\na c 2\nb d 2\nc e 1\ne f 1\nf d 1\n"
	if err := os.WriteFile(in, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"select", "-load", in, "-paths", "4", "-budget-mult", "1.0"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlace(t *testing.T) {
	if err := run([]string{"place", "-monitors", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"place", "-monitors", "4", "-failures", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"place", "-monitors", "1"}); err == nil {
		t.Fatal("budget 1 accepted")
	}
}

func TestRunSimulate(t *testing.T) {
	if err := run([]string{"simulate", "-paths", "36", "-epochs", "20"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"simulate", "-paths", "36", "-epochs", "20", "-mode", "learning"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"simulate", "-mode", "quantum"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestRunLearnSmall(t *testing.T) {
	if err := run([]string{"learn", "-paths", "36", "-epochs", "40", "-budget-mult", "0.5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCollect(t *testing.T) {
	// Full arc: healthy epochs, monitor killed mid-run, degraded epochs,
	// breaker opening — and the loop still completes.
	if err := run([]string{"collect", "-epochs", "6", "-kill-epoch", "2",
		"-backoff", "1ms", "-cooldown", "50ms"}); err != nil {
		t.Fatal(err)
	}
	// No kill: every epoch healthy.
	if err := run([]string{"collect", "-epochs", "3", "-kill-epoch", "-1"}); err != nil {
		t.Fatal(err)
	}
	// FailFast mode reports degraded epochs but the command still succeeds.
	if err := run([]string{"collect", "-epochs", "4", "-kill-epoch", "1",
		"-backoff", "1ms", "-fail-fast"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"collect", "-epochs", "0"}); err == nil {
		t.Fatal("zero epochs accepted")
	}
}
