package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDispatch(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

func TestRunTopoPresetAndWrite(t *testing.T) {
	out := filepath.Join(t.TempDir(), "as1755.edges")
	if err := run([]string{"topo", "-preset", "AS1755", "-write", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("edge list empty")
	}
}

func TestRunTopoLoad(t *testing.T) {
	in := filepath.Join(t.TempDir(), "weights.intra")
	if err := os.WriteFile(in, []byte("a b 1\nb c 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"topo", "-load", in}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"topo", "-load", in + ".missing"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunTopoUnknownPreset(t *testing.T) {
	if err := run([]string{"topo", "-preset", "AS0"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestRunInfer(t *testing.T) {
	if err := run([]string{"infer", "-failures", "1", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"infer", "-failures", "-2"}); err == nil {
		t.Fatal("negative failure count accepted")
	}
}

func TestRunSelectSmall(t *testing.T) {
	for _, alg := range []string{"probrome", "selectpath", "matrome"} {
		if err := run([]string{"select", "-preset", "AS1755", "-paths", "49", "-alg", alg, "-budget-mult", "0.5"}); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
	if err := run([]string{"select", "-alg", "quantum"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunSelectLoadedTopology(t *testing.T) {
	in := filepath.Join(t.TempDir(), "weights.intra")
	data := "a b 1\nb c 1\nc d 1\nd a 1\na c 2\nb d 2\nc e 1\ne f 1\nf d 1\n"
	if err := os.WriteFile(in, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"select", "-load", in, "-paths", "4", "-budget-mult", "1.0"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlace(t *testing.T) {
	if err := run([]string{"place", "-monitors", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"place", "-monitors", "4", "-failures", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"place", "-monitors", "1"}); err == nil {
		t.Fatal("budget 1 accepted")
	}
}

func TestRunSimulate(t *testing.T) {
	if err := run([]string{"simulate", "-paths", "36", "-epochs", "20"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"simulate", "-paths", "36", "-epochs", "20", "-mode", "learning"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"simulate", "-mode", "quantum"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestRunLearnSmall(t *testing.T) {
	if err := run([]string{"learn", "-paths", "36", "-epochs", "40", "-budget-mult", "0.5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCollect(t *testing.T) {
	// Full arc: healthy epochs, monitor killed mid-run, degraded epochs,
	// breaker opening — and the loop still completes.
	if err := run([]string{"collect", "-epochs", "6", "-kill-epoch", "2",
		"-backoff", "1ms", "-cooldown", "50ms"}); err != nil {
		t.Fatal(err)
	}
	// No kill: every epoch healthy.
	if err := run([]string{"collect", "-epochs", "3", "-kill-epoch", "-1"}); err != nil {
		t.Fatal(err)
	}
	// FailFast mode reports degraded epochs but the command still succeeds.
	if err := run([]string{"collect", "-epochs", "4", "-kill-epoch", "1",
		"-backoff", "1ms", "-fail-fast"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"collect", "-epochs", "0"}); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

func TestRunCollectStrict(t *testing.T) {
	// A monitor killed with a long breaker cooldown leaves the final epoch
	// degraded: -strict turns that into a non-zero exit.
	err := run([]string{"collect", "-epochs", "5", "-kill-epoch", "1",
		"-backoff", "1ms", "-cooldown", "1h", "-strict"})
	if err == nil {
		t.Fatal("strict mode accepted a degraded final epoch")
	}
	if !strings.Contains(err.Error(), "degraded") {
		t.Fatalf("strict error %q does not mention degradation", err)
	}
	// All monitors healthy: strict mode passes.
	if err := run([]string{"collect", "-epochs", "3", "-kill-epoch", "-1", "-strict"}); err != nil {
		t.Fatalf("strict mode rejected a healthy run: %v", err)
	}
	// In fail-fast mode the degraded final epoch surfaces as a step error;
	// strict treats that as a failure too.
	if err := run([]string{"collect", "-epochs", "4", "-kill-epoch", "2",
		"-backoff", "1ms", "-cooldown", "1h", "-fail-fast", "-strict"}); err == nil {
		t.Fatal("strict + fail-fast accepted a failing final epoch")
	}
}
