package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"robusttomo/internal/agent"
	"robusttomo/internal/cluster"
	_ "robusttomo/internal/loss" // register the loss engine
	"robusttomo/internal/obs"
	"robusttomo/internal/service"
	"robusttomo/internal/sim"
)

// serveConfig parameterizes the daemon; runServe fills it from flags, the
// smoke tests construct it directly (with port 0 and short intervals).
type serveConfig struct {
	Addr      string
	Interval  time.Duration
	MaxEpochs int // 0: run until the internal horizon, then idle
	KillEpoch int // -1: never
	Mode      sim.Mode
	Retries   int
	Backoff   time.Duration
	Threshold int
	Cooldown  time.Duration
	Seed      uint64

	// Selection-service knobs (POST /api/v1/jobs). Zeros take the
	// service defaults.
	Workers    int
	QueueDepth int
	CacheBytes int64
	RetryAfter time.Duration
	// beforeRun is the service's test seam; production leaves it nil.
	beforeRun func(service.JobSpec)

	// Cluster knobs (-peers and friends). Empty Peers means single-node
	// mode: no peer listener, no routing layer, the service is hit
	// directly.
	Peers        []string
	PeerAddr     string // peer-protocol listen address and ring identity
	RingReplicas int
	HedgeAfter   time.Duration
	// peerLn is the cluster test seam: a pre-bound peer listener whose
	// address is this node's ring identity (tests bind port 0 first so
	// peers can reference each other). Production leaves it nil and
	// PeerAddr is bound here.
	peerLn net.Listener
}

// serveHorizon bounds the failure schedule when -epochs is 0: large enough
// that an unattended daemon runs for days at the default interval, small
// enough that the precomputed schedule stays cheap.
const serveHorizon = 1 << 17

// defaultPeerAddr is where the peer protocol listens in cluster mode
// (one port above the default HTTP address).
const defaultPeerAddr = "127.0.0.1:9321"

// splitPeers turns the -peers flag value into the peer list. Entries
// are trimmed but empties are kept: `-peers a:1,,b:2` should fail peer
// validation loudly, not silently drop a member.
func splitPeers(flagVal string) []string {
	if flagVal == "" {
		return nil
	}
	parts := strings.Split(flagVal, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// server is the long-running observability daemon: the demo closed loop
// stepping on a ticker, with the obs registry exported over HTTP.
type server struct {
	cfg  serveConfig
	d    *demoLoop
	reg  *obs.Registry
	svc  *service.Service
	ln   net.Listener
	mux  *http.ServeMux
	http *http.Server

	// Cluster mode only (nil otherwise): the routing node and its peer
	// protocol listener.
	node   *cluster.Node
	peerLn net.Listener

	mu       sync.Mutex
	ready    bool
	done     bool // loop finished (horizon or MaxEpochs reached)
	lastRep  sim.EpochReport
	degraded int
}

// newServer wires the loop, the registry and the HTTP surface, and binds
// the listener (so Addr() is concrete even with port 0).
func newServer(cfg serveConfig) (*server, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	horizon := cfg.MaxEpochs
	if horizon <= 0 {
		horizon = serveHorizon
	}
	reg := obs.New()
	d, err := newDemoLoop(demoConfig{
		Horizon:   horizon,
		Retries:   cfg.Retries,
		Backoff:   cfg.Backoff,
		Threshold: cfg.Threshold,
		Cooldown:  cfg.Cooldown,
		Seed:      cfg.Seed,
		Mode:      cfg.Mode,
		Observer:  reg,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		d.Close()
		return nil, err
	}
	svc := service.New(service.Config{
		Workers:    cfg.Workers,
		QueueDepth: cfg.QueueDepth,
		CacheBytes: cfg.CacheBytes,
		RetryAfter: cfg.RetryAfter,
		Observer:   reg,
		BeforeRun:  cfg.beforeRun,
	})
	s := &server{cfg: cfg, d: d, reg: reg, svc: svc, ln: ln}
	if len(cfg.Peers) > 0 {
		if err := s.startCluster(); err != nil {
			cctx, ccancel := context.WithTimeout(context.Background(), time.Second)
			_ = svc.Close(cctx)
			ccancel()
			ln.Close()
			d.Close()
			return nil, err
		}
	}
	// A second server in the same process (tests) hits the
	// already-published name; the expvar surface then reflects the first
	// registry, which is fine for a debug endpoint.
	_ = reg.PublishExpvar("tomo")
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	s.mux.Handle("/debug/vars", expvar.Handler())
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mountJobAPI()
	s.http = &http.Server{Handler: s.mux}
	return s, nil
}

// Addr returns the bound listen address.
func (s *server) Addr() string { return s.ln.Addr().String() }

// startCluster binds the peer-protocol listener and stands up the
// routing node. The ring identity is cfg.PeerAddr when it names a
// concrete port (every node must then list exactly that string in its
// peers' -peers flags); with port 0 (tests) the identity is the bound
// address.
func (s *server) startCluster() error {
	pln := s.cfg.peerLn
	if pln == nil {
		addr := s.cfg.PeerAddr
		if addr == "" {
			addr = defaultPeerAddr
		}
		var err error
		pln, err = net.Listen("tcp", addr)
		if err != nil {
			return fmt.Errorf("cluster: bind peer listener: %w", err)
		}
	}
	self := s.cfg.PeerAddr
	if self == "" || strings.HasSuffix(self, ":0") {
		self = pln.Addr().String()
	}
	node, err := cluster.New(cluster.Config{
		Self:         self,
		Peers:        s.cfg.Peers,
		RingReplicas: s.cfg.RingReplicas,
		HedgeAfter:   s.cfg.HedgeAfter,
		Service:      s.svc,
		Transport:    cluster.NewTCPTransport(),
		Observer:     s.reg,
	})
	if err != nil {
		if pln != s.cfg.peerLn {
			pln.Close()
		}
		return err
	}
	s.node = node
	s.peerLn = pln
	return nil
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// openBreakers returns the monitors whose circuit breaker is currently
// open, sorted by name.
func (s *server) openBreakers() []string {
	var open []string
	for name, st := range s.d.BreakerStates() {
		if st == agent.BreakerOpen {
			open = append(open, name)
		}
	}
	sort.Strings(open)
	return open
}

// handleHealthz is breaker-aware liveness: any open breaker means the
// collection plane is degraded and the daemon reports 503 with the
// offending monitors, so orchestrators can alert or restart.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if open := s.openBreakers(); len(open) > 0 {
		http.Error(w, "unhealthy: open breakers: "+strings.Join(open, ","), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports 200 once the loop has completed at least one epoch.
func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ready := s.ready
	s.mu.Unlock()
	if !ready {
		http.Error(w, "not ready: no epoch completed", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// serveStatus is the /statusz JSON document.
type serveStatus struct {
	Mode           string            `json:"mode"`
	Epoch          int               `json:"epoch"`
	Probed         int               `json:"probed"`
	Survived       int               `json:"survived"`
	Rank           int               `json:"rank"`
	Identifiable   int               `json:"identifiable"`
	Degraded       bool              `json:"degraded"`
	DegradedEpochs int               `json:"degraded_epochs"`
	LoopDone       bool              `json:"loop_done"`
	Monitors       map[string]string `json:"monitors"`
	RecentEvents   []obs.Event       `json:"recent_events"`
}

func (s *server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	rep := s.lastRep
	st := serveStatus{
		Mode:           "static",
		Epoch:          rep.Epoch,
		Probed:         rep.Probed,
		Survived:       rep.Survived,
		Rank:           rep.Rank,
		Identifiable:   rep.Identifiable,
		Degraded:       rep.Collection.Degraded,
		DegradedEpochs: s.degraded,
		LoopDone:       s.done,
	}
	s.mu.Unlock()
	if s.cfg.Mode == sim.Learning {
		st.Mode = "learning"
	}
	st.Monitors = map[string]string{}
	for name, bs := range s.d.BreakerStates() {
		st.Monitors[name] = bs.String()
	}
	st.RecentEvents = s.reg.Events()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// loop steps the closed loop every interval until the context is
// cancelled or the epoch budget is exhausted; HTTP keeps serving either
// way.
func (s *server) loop(ctx context.Context) {
	horizon := s.cfg.MaxEpochs
	if horizon <= 0 {
		horizon = serveHorizon
	}
	tick := time.NewTicker(s.cfg.Interval)
	defer tick.Stop()
	for epoch := 0; epoch < horizon; epoch++ {
		if epoch == s.cfg.KillEpoch {
			s.reg.Event("serve.kill_victim", s.d.Victim)
			s.d.KillVictim()
		}
		rep, err := s.d.Runner.Step(ctx)
		if err != nil {
			// FailFast is never set here, so any error is fatal wiring
			// trouble; record it and stop the loop (HTTP stays up for
			// debugging).
			s.reg.Event("serve.loop_error", err.Error())
			break
		}
		s.mu.Lock()
		s.ready = true
		s.lastRep = rep
		if rep.Collection.Degraded {
			s.degraded++
		}
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
	s.mu.Lock()
	s.done = true
	s.mu.Unlock()
	s.reg.Event("serve.loop_done", "")
}

// Run serves HTTP and steps the loop until ctx is cancelled (typically by
// SIGINT/SIGTERM), then shuts the listener down gracefully.
func (s *server) Run(ctx context.Context) error {
	lctx, stopLoop := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.loop(lctx)
	}()

	errc := make(chan error, 1)
	go func() { errc <- s.http.Serve(s.ln) }()

	// Cluster mode: serve the peer protocol for as long as HTTP runs,
	// and a little longer — peers may still be fetching results while
	// this node drains.
	pctx, stopPeers := context.WithCancel(context.Background())
	defer stopPeers()
	var peerWG sync.WaitGroup
	if s.node != nil {
		peerWG.Add(1)
		go func() {
			defer peerWG.Done()
			if perr := cluster.ServePeers(pctx, s.peerLn, s.node); perr != nil {
				s.reg.Event("serve.peer_listener_error", perr.Error())
			}
		}()
	}

	var err error
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err = s.http.Shutdown(sctx)
		cancel()
	case err = <-errc:
	}
	stopLoop()
	wg.Wait()
	// Drain the cluster node first (outstanding forwards finish or are
	// cut), then stop answering peers, then drain the local service.
	if s.node != nil {
		nctx, ncancel := context.WithTimeout(context.Background(), 5*time.Second)
		if nerr := s.node.Close(nctx); nerr != nil {
			s.reg.Event("serve.cluster_drain_cut_short", nerr.Error())
		}
		ncancel()
		stopPeers()
		peerWG.Wait()
	}
	// Drain the selection service after the listener stops accepting new
	// submissions: queued jobs are canceled, running jobs get the drain
	// window, stragglers are cut at the deadline.
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	if derr := s.svc.Close(dctx); derr != nil {
		s.reg.Event("serve.drain_cut_short", derr.Error())
	}
	dcancel()
	s.d.Close()
	if err == http.ErrServerClosed {
		err = nil
	}
	return err
}

// runServe boots the observability daemon: the demo closed loop stepping
// continuously, with /metrics (Prometheus text), /healthz, /readyz,
// /statusz (JSON), /debug/vars (expvar) and /debug/pprof on one listener.
// SIGINT/SIGTERM shut it down gracefully.
func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8321", "listen address (port 0 picks a free port)")
	interval := fs.Duration("interval", 500*time.Millisecond, "delay between epochs")
	epochs := fs.Int("epochs", 0, "epochs to run before idling (0: keep running)")
	killEpoch := fs.Int("kill-epoch", -1, "epoch at which one monitor is killed (-1: never)")
	mode := fs.String("mode", "static", "static (known distribution) or learning")
	retries := fs.Int("retries", 2, "max connection attempts per monitor per epoch")
	backoff := fs.Duration("backoff", 5*time.Millisecond, "base retry backoff")
	threshold := fs.Int("breaker-threshold", 3, "consecutive failures before the breaker opens")
	cooldown := fs.Duration("cooldown", 10*time.Second, "breaker cool-down before a half-open probe")
	seed := fs.Uint64("seed", 2014, "random seed")
	workers := fs.Int("workers", 0, "selection-service worker pool size (0: GOMAXPROCS)")
	queueDepth := fs.Int("queue-depth", 0, "queued jobs before load shedding kicks in (0: default 64)")
	cacheMB := fs.Int("cache-mb", 16, "result cache byte budget in MiB")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint attached to shed submissions")
	peers := fs.String("peers", "", "comma-separated peer addresses; non-empty enables cluster mode")
	peerAddr := fs.String("peer-addr", defaultPeerAddr, "peer-protocol listen address and ring identity (cluster mode)")
	ringReplicas := fs.Int("ring-replicas", 0, "virtual nodes per cluster member (0: default 64)")
	hedgeAfter := fs.Duration("hedge-after", 0, "delay before hedging a slow forward to the successor replica (0: default 150ms)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	simMode := sim.Static
	switch *mode {
	case "static":
	case "learning":
		simMode = sim.Learning
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	s, err := newServer(serveConfig{
		Addr:      *addr,
		Interval:  *interval,
		MaxEpochs: *epochs,
		KillEpoch: *killEpoch,
		Mode:      simMode,
		Retries:   *retries,
		Backoff:   *backoff,
		Threshold: *threshold,
		Cooldown:  *cooldown,
		Seed:      *seed,

		Workers:    *workers,
		QueueDepth: *queueDepth,
		CacheBytes: int64(*cacheMB) << 20,
		RetryAfter: *retryAfter,

		Peers:        splitPeers(*peers),
		PeerAddr:     *peerAddr,
		RingReplicas: *ringReplicas,
		HedgeAfter:   *hedgeAfter,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "tomo serve listening on http://%s (metrics /metrics, health /healthz, status /statusz, pprof /debug/pprof)\n", s.Addr())
	fmt.Fprintf(out, "selection service: POST /api/v1/jobs (workers %d, queue %d, cache %d MiB)\n",
		s.svc.Stats().Workers, s.svc.QueueDepth(), *cacheMB)
	if s.node != nil {
		fmt.Fprintf(out, "cluster: ring identity %s, %d peers, peer protocol on %s\n",
			s.node.Self(), len(s.cfg.Peers), s.peerLn.Addr())
	}
	fmt.Fprintf(out, "closed loop: %s mode, epoch every %v; SIGINT/SIGTERM to stop\n", *mode, *interval)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	err = s.Run(ctx)
	fmt.Fprintln(out, "tomo serve: shut down")
	return err
}
