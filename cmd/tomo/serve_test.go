package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"robusttomo/internal/sim"
)

// testServeConfig is a fast-cycling daemon config for in-process smoke
// tests: random port, millisecond epochs, a monitor killed early and a
// hair-trigger breaker that never recovers (so /healthz stays 503 once it
// flips).
func testServeConfig() serveConfig {
	return serveConfig{
		Addr:      "127.0.0.1:0",
		Interval:  2 * time.Millisecond,
		KillEpoch: 3,
		Mode:      sim.Static,
		Retries:   1,
		Backoff:   time.Millisecond,
		Threshold: 1,
		Cooldown:  time.Hour,
		Seed:      2014,
	}
}

// get fetches a URL and returns status code and body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

// waitCode polls a URL until it returns the wanted status code.
func waitCode(t *testing.T, url string, want int) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := get(t, url)
		if code == want {
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s: code %d (want %d), body %q", url, code, want, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeSmoke boots the daemon on a random port and exercises the full
// HTTP surface: readiness, Prometheus exposition with families from every
// instrumented layer, the breaker-aware health flip after the monitor
// kill, the JSON status document, and pprof/expvar.
func TestServeSmoke(t *testing.T) {
	s, err := newServer(testServeConfig())
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()

	waitCode(t, base+"/readyz", http.StatusOK)

	// The kill at epoch 3 with a hair-trigger breaker flips health.
	body := waitCode(t, base+"/healthz", http.StatusServiceUnavailable)
	if !strings.Contains(body, "open breakers") {
		t.Fatalf("healthz body %q does not name the open breakers", body)
	}

	// Prometheus exposition carries families from every instrumented
	// layer, with valid TYPE lines and histogram series.
	_, metrics := get(t, base+"/metrics")
	for _, want := range []string{
		"# TYPE tomo_agent_epochs_total counter",
		"# TYPE tomo_agent_dial_seconds histogram",
		"tomo_agent_breaker_state{monitor=",
		"# TYPE tomo_selection_runs_total counter",
		"tomo_selection_runs_total 1",
		"# TYPE tomo_sim_epochs_total counter",
		"tomo_sim_epoch_seconds_bucket{le=\"+Inf\"}",
		"tomo_agent_degraded_epochs_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("exposition was:\n%s", metrics)
	}

	var st serveStatus
	_, statusz := get(t, base+"/statusz")
	if err := json.Unmarshal([]byte(statusz), &st); err != nil {
		t.Fatalf("statusz is not JSON: %v\n%s", err, statusz)
	}
	if st.Mode != "static" {
		t.Errorf("statusz mode = %q", st.Mode)
	}
	if st.Epoch < 3 {
		t.Errorf("statusz epoch = %d, want ≥ 3 by now", st.Epoch)
	}
	if st.DegradedEpochs < 1 {
		t.Errorf("statusz degraded_epochs = %d, want ≥ 1 after the kill", st.DegradedEpochs)
	}
	if len(st.Monitors) == 0 {
		t.Error("statusz reports no monitors")
	}
	open := false
	for _, state := range st.Monitors {
		if state == "open" {
			open = true
		}
	}
	if !open {
		t.Errorf("statusz shows no open breaker: %v", st.Monitors)
	}
	killSeen := false
	for _, ev := range st.RecentEvents {
		if ev.Name == "serve.kill_victim" {
			killSeen = true
		}
	}
	if !killSeen {
		t.Errorf("statusz recent_events missing serve.kill_victim: %+v", st.RecentEvents)
	}

	if code, _ := get(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof index returned %d", code)
	}
	if code, body := get(t, base+"/debug/vars"); code != http.StatusOK || !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("expvar returned %d: %.80s", code, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

// TestServeSignalShutdown drives the real signal path: Run under a
// signal.NotifyContext, SIGTERM delivered to the process, graceful exit.
func TestServeSignalShutdown(t *testing.T) {
	cfg := testServeConfig()
	cfg.KillEpoch = -1
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()

	waitCode(t, base+"/readyz", http.StatusOK)
	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d with all monitors alive", code)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v after SIGTERM", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after SIGTERM")
	}
	// The listener is down: a fresh request must fail.
	c := &http.Client{Timeout: time.Second}
	if resp, err := c.Get(base + "/healthz"); err == nil {
		resp.Body.Close()
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestRunServeFlags covers flag validation without booting a daemon.
func TestRunServeFlags(t *testing.T) {
	if err := runServe([]string{"-mode", "bogus"}, io.Discard); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if err := runServe([]string{"-not-a-flag"}, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
