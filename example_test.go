package robusttomo_test

import (
	"fmt"

	"robusttomo"
)

// Example reproduces the paper's Section II story: an arbitrary basis
// collapses when the bridge link fails, while the robust RoMe selection
// keeps nearly full visibility.
func Example() {
	ex := robusttomo.NewExampleNetwork()
	paths, err := robusttomo.MonitorPairs(ex.Graph, ex.Monitors, ex.Monitors)
	if err != nil {
		fmt.Println(err)
		return
	}
	pm, err := robusttomo.NewPathMatrix(paths, ex.Graph.NumEdges())
	if err != nil {
		fmt.Println(err)
		return
	}

	probs := make([]float64, pm.NumLinks())
	for i := range probs {
		probs[i] = 0.02
	}
	probs[ex.Bridge] = 0.30
	model, err := robusttomo.FailureFromProbabilities(probs)
	if err != nil {
		fmt.Println(err)
		return
	}
	costs := make([]float64, pm.NumPaths())
	for i := range costs {
		costs[i] = 1
	}
	robust, err := robusttomo.SelectRobustPaths(pm, model, costs, 8)
	if err != nil {
		fmt.Println(err)
		return
	}

	sc := robusttomo.Scenario{Failed: make([]bool, pm.NumLinks())}
	sc.Failed[ex.Bridge] = true
	fmt.Printf("robust rank under bridge failure: %d\n", pm.RankUnder(robust.Selected, sc))
	fmt.Printf("arbitrary basis rank under bridge failure: %d\n",
		pm.RankUnder(robusttomo.SelectPath(pm), sc))
	// Output:
	// robust rank under bridge failure: 7
	// arbitrary basis rank under bridge failure: 4
}

// ExampleLocalize shows Boolean failure localization: the bridge failure
// is pinpointed from binary path outcomes alone.
func ExampleLocalize() {
	ex := robusttomo.NewExampleNetwork()
	paths, _ := robusttomo.MonitorPairs(ex.Graph, ex.Monitors, ex.Monitors)
	pm, _ := robusttomo.NewPathMatrix(paths, ex.Graph.NumEdges())

	sc := robusttomo.Scenario{Failed: make([]bool, pm.NumLinks())}
	sc.Failed[ex.Bridge] = true
	obs := robusttomo.Observation{}
	for i := 0; i < pm.NumPaths(); i++ {
		obs.Paths = append(obs.Paths, i)
		obs.OK = append(obs.OK, pm.Available(i, sc))
	}
	diag, err := robusttomo.Localize(pm, obs)
	if err != nil {
		fmt.Println(err)
		return
	}
	for l, down := range diag.Implicated {
		if down {
			fmt.Printf("link l%d is down\n", l)
		}
	}
	// Output:
	// link l6 is down
}

// ExampleNewReconstructor demonstrates algebraic monitoring: measuring a
// basis reconstructs every other end-to-end measurement.
func ExampleNewReconstructor() {
	ex := robusttomo.NewExampleNetwork()
	paths, _ := robusttomo.MonitorPairs(ex.Graph, ex.Monitors, ex.Monitors)
	pm, _ := robusttomo.NewPathMatrix(paths, ex.Graph.NumEdges())

	truth := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y, _ := pm.TrueMeasurements(truth)

	order := make([]int, pm.NumPaths())
	for i := range order {
		order[i] = i
	}
	basis := pm.SelectBasisIndices(order)
	yBasis := make([]float64, len(basis))
	for k, i := range basis {
		yBasis[k] = y[i]
	}
	rc, err := robusttomo.NewReconstructor(pm, basis, yBasis)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("probed %d of %d paths, reconstructable: %d\n",
		len(basis), pm.NumPaths(), rc.CoverageCount())
	// Output:
	// probed 8 of 15 paths, reconstructable: 15
}
