// Distributed measurement collection: monitor agents over TCP plus a NOC
// collector — the plumbing the paper assumes for "monitors probe each
// other and the NOC collects measurements".
//
// The example starts one TCP monitor per vantage point of the Section II
// network, schedules three epochs (the second with the bridge link down),
// collects the end-to-end measurements through real sockets, and feeds the
// surviving measurements into the tomography solver.
//
// Run: go run ./examples/agents
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"robusttomo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ex := robusttomo.NewExampleNetwork()
	paths, err := robusttomo.MonitorPairs(ex.Graph, ex.Monitors, ex.Monitors)
	if err != nil {
		return err
	}
	pm, err := robusttomo.NewPathMatrix(paths, ex.Graph.NumEdges())
	if err != nil {
		return err
	}

	// Ground truth and the epoch schedule: epoch 1 loses the bridge.
	truth := []float64{2.5, 1.0, 4.0, 3.5, 1.5, 2.0, 5.0, 3.0}
	schedule := make([]robusttomo.Scenario, 3)
	for e := range schedule {
		schedule[e] = robusttomo.Scenario{Failed: make([]bool, pm.NumLinks())}
	}
	schedule[1].Failed[ex.Bridge] = true
	oracle, err := robusttomo.NewEpochOracle(truth, schedule)
	if err != nil {
		return err
	}

	// One TCP monitor per vantage point, ephemeral ports on localhost.
	addrs := map[string]string{}
	for _, mn := range ex.Monitors {
		name := ex.Graph.Label(mn)
		mon, err := robusttomo.StartMonitor(name, "127.0.0.1:0", oracle)
		if err != nil {
			return err
		}
		defer mon.Close()
		addrs[name] = mon.Addr()
		fmt.Printf("monitor %s listening on %s\n", name, mon.Addr())
	}

	noc, err := robusttomo.NewNOC(robusttomo.NOCConfig{
		PM:       pm,
		Monitors: addrs,
		SourceOf: func(path int) string { return ex.Graph.Label(pm.Path(path).Src) },
	})
	if err != nil {
		return err
	}

	selected := make([]int, pm.NumPaths())
	for i := range selected {
		selected[i] = i
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for epoch := 0; epoch < len(schedule); epoch++ {
		ms, err := noc.CollectEpoch(ctx, epoch, selected)
		if err != nil {
			return err
		}
		var idx []int
		var y []float64
		for _, m := range ms {
			if m.OK {
				idx = append(idx, m.PathID)
				y = append(y, m.Value)
			}
		}
		sys, err := robusttomo.NewSystem(pm, idx, y)
		if err != nil {
			return err
		}
		values, ident, err := sys.Solve()
		if err != nil {
			return err
		}
		identified := 0
		maxErr := 0.0
		for j := range truth {
			if !ident[j] {
				continue
			}
			identified++
			if d := values[j] - truth[j]; d > maxErr {
				maxErr = d
			} else if -d > maxErr {
				maxErr = -d
			}
		}
		fmt.Printf("epoch %d: %d/%d measurements collected, rank %d, %d/%d links identified (max abs error %.2g)\n",
			epoch, len(idx), len(selected), sys.Rank(), identified, pm.NumLinks(), maxErr)
	}
	return nil
}
