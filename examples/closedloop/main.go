// Closed-loop tomography: the full system in one program.
//
// Place monitors greedily, build the candidate paths, then run the
// epoch loop in learning mode (the failure distribution is treated as
// unknown): each epoch LSR picks probing paths under the budget, the
// collector gathers surviving measurements, the Boolean diagnoser
// localizes failed links from binary outcomes, and the aggregator
// accumulates measurements until the link metrics can be solved.
//
// Run: go run ./examples/closedloop
package main

import (
	"context"
	"fmt"
	"log"

	"robusttomo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tp, err := robusttomo.GenerateTopology(robusttomo.TopologyConfig{
		Name: "demo-isp", Nodes: 50, Links: 100, PoPs: 5, Seed: 17,
	})
	if err != nil {
		return err
	}
	fmt.Printf("network: %s, %d cut links\n", tp.Graph, len(tp.Graph.Bridges()))

	// 1. Place monitors where they see the most of the network.
	pl, err := robusttomo.PlaceMonitors(robusttomo.PlacementConfig{
		Graph:      tp.Graph,
		Candidates: tp.Access,
		Budget:     10,
	})
	if err != nil {
		return err
	}
	fmt.Printf("placed %d monitors → %d candidate paths, rank %.0f\n",
		len(pl.Monitors), pl.Paths, pl.Objective)

	// 2. Candidate paths and models.
	paths, err := robusttomo.MonitorPairs(tp.Graph, pl.Monitors, pl.Monitors)
	if err != nil {
		return err
	}
	pm, err := robusttomo.NewPathMatrix(paths, tp.Graph.NumEdges())
	if err != nil {
		return err
	}
	model, err := robusttomo.NewFailureModel(robusttomo.FailureConfig{
		Links: tp.Graph.NumEdges(), ExpectedFailures: 2, Seed: 17,
	})
	if err != nil {
		return err
	}
	costs := make([]float64, pm.NumPaths())
	for i := range costs {
		costs[i] = float64(100 * pm.Path(i).Hops())
	}
	truth := make([]float64, pm.NumLinks())
	rng := robusttomo.NewRNG(17, 1)
	for i := range truth {
		truth[i] = 1 + rng.Float64()*9
	}

	// 3. The closed loop in learning mode.
	budget := 0.0
	for _, q := range robusttomo.SelectPath(pm) {
		budget += costs[q]
	}
	budget *= 0.7
	const horizon = 400
	runner, err := robusttomo.NewSimRunner(robusttomo.SimConfig{
		PM:       pm,
		Costs:    costs,
		Budget:   budget,
		Metrics:  truth,
		Failures: model,
		Horizon:  horizon,
		Mode:     robusttomo.SimLearning,
		Seed:     17,
	})
	if err != nil {
		return err
	}

	ctx := context.Background()
	localized := 0
	var lastWindow float64
	for e := 0; e < horizon; e++ {
		rep, err := runner.Step(ctx)
		if err != nil {
			return err
		}
		localized += len(rep.Implicated)
		lastWindow += float64(rep.Rank)
		if (e+1)%100 == 0 {
			fmt.Printf("epochs %3d–%3d: avg surviving rank %.1f\n", e-98, e+1, lastWindow/100)
			lastWindow = 0
		}
	}
	fmt.Printf("localized-down link events over %d epochs: %d\n", horizon, localized)

	// 4. Solve the aggregated system.
	values, ident, err := runner.Estimates(1, 1e-6)
	if err != nil {
		return err
	}
	identified, maxErr := 0, 0.0
	for j := range truth {
		if !ident[j] {
			continue
		}
		identified++
		if d := values[j] - truth[j]; d > maxErr {
			maxErr = d
		} else if -d > maxErr {
			maxErr = -d
		}
	}
	fmt.Printf("inferred %d/%d link metrics from accumulated measurements (max abs error %.2g)\n",
		identified, pm.NumLinks(), maxErr)
	return nil
}
