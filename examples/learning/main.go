// Online learning of robust probing paths (the paper's Section V):
// when the failure distribution is unknown, LSR learns per-path
// availabilities while probing, converging toward the selection that the
// known-distribution ProbRoMe would make.
//
// The example prints a learning curve: average reward (surviving rank) per
// epoch window, plus the final exploit-time selection compared against
// ProbRoMe and SelectPath.
//
// Run: go run ./examples/learning
package main

import (
	"fmt"
	"log"

	"robusttomo"
)

const (
	epochs = 800
	window = 100
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tp, err := robusttomo.PresetTopology("AS1755")
	if err != nil {
		return err
	}
	rng := robusttomo.NewRNG(11, 0)
	k := 10
	perm := rng.Perm(len(tp.Access))
	var src, dst []robusttomo.NodeID
	for i := 0; i < k; i++ {
		src = append(src, tp.Access[perm[i]])
		dst = append(dst, tp.Access[perm[k+i]])
	}
	paths, err := robusttomo.MonitorPairs(tp.Graph, src, dst)
	if err != nil {
		return err
	}
	pm, err := robusttomo.NewPathMatrix(paths, tp.Graph.NumEdges())
	if err != nil {
		return err
	}
	model, err := robusttomo.NewFailureModel(robusttomo.FailureConfig{
		Links: tp.Graph.NumEdges(), ExpectedFailures: 3, Seed: 11,
	})
	if err != nil {
		return err
	}

	costs := make([]float64, pm.NumPaths())
	for i := range costs {
		costs[i] = float64(100 * pm.Path(i).Hops())
	}
	basis := robusttomo.SelectPath(pm)
	budget := 0.0
	for _, q := range basis {
		budget += costs[q]
	}
	budget *= 0.6

	fmt.Printf("learning over %d candidate paths, budget %.0f, %d epochs\n",
		pm.NumPaths(), budget, epochs)

	learner, err := robusttomo.NewLearner(pm, costs, budget, robusttomo.LearnerOptions{})
	if err != nil {
		return err
	}
	env := robusttomo.NewFailureEnv(pm, model, robusttomo.NewRNG(11, 1))

	fmt.Println("\nepoch window   avg reward (rank)")
	windowSum := 0.0
	for e := 1; e <= epochs; e++ {
		_, reward, err := learner.Step(env)
		if err != nil {
			return err
		}
		windowSum += float64(reward)
		if e%window == 0 {
			fmt.Printf("  %4d–%4d    %.2f\n", e-window+1, e, windowSum/window)
			windowSum = 0
		}
	}

	learned, err := learner.Exploit()
	if err != nil {
		return err
	}
	probRoMe, err := robusttomo.SelectRobustPaths(pm, model, costs, budget)
	if err != nil {
		return err
	}
	baseline, err := robusttomo.SelectPathBudgeted(pm, costs, budget)
	if err != nil {
		return err
	}

	// Evaluate all three selections on a common scenario panel.
	evalRng := robusttomo.NewRNG(11, 2)
	const scenarios = 300
	fmt.Println("\nfinal selections, avg rank over fresh failure scenarios:")
	sels := []struct {
		name string
		idx  []int
	}{
		{"LSR (learned)", learned},
		{"ProbRoMe (knows distribution)", probRoMe.Selected},
		{"SelectPath (failure-agnostic)", baseline.Selected},
	}
	panel := make([]robusttomo.Scenario, scenarios)
	for i := range panel {
		panel[i] = model.Sample(evalRng)
	}
	for _, s := range sels {
		sum := 0
		for _, sc := range panel {
			sum += pm.RankOf(pm.Surviving(s.idx, sc))
		}
		fmt.Printf("  %-30s %.2f (probing %d paths)\n", s.name, float64(sum)/scenarios, len(s.idx))
	}
	return nil
}
