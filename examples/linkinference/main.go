// Link-delay inference under failures (the paper's primary application,
// the Zheng–Cao setting of reference [1]).
//
// Build an ISP-scale topology, place monitors, pick probing paths under a
// budget with the failure-aware ProbRoMe and with the failure-agnostic
// SelectPath baseline, then inject random link failures and infer per-link
// delays from the surviving measurements. The robust selection identifies
// substantially more links, with identical probing budget.
//
// Run: go run ./examples/linkinference
package main

import (
	"fmt"
	"log"

	"robusttomo"
)

const (
	candidatePaths   = 196
	budgetMultiplier = 0.6
	trials           = 200
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tp, err := robusttomo.PresetTopology("AS1755")
	if err != nil {
		return err
	}
	fmt.Printf("topology %s: %s\n", tp.Name, tp.Graph)

	// Monitor placement: 14 sources × 14 destinations among access routers.
	rng := robusttomo.NewRNG(42, 0)
	k := 14
	src := make([]robusttomo.NodeID, 0, k)
	dst := make([]robusttomo.NodeID, 0, k)
	perm := rng.Perm(len(tp.Access))
	for i := 0; i < k; i++ {
		src = append(src, tp.Access[perm[i]])
		dst = append(dst, tp.Access[perm[k+i]])
	}
	paths, err := robusttomo.MonitorPairs(tp.Graph, src, dst)
	if err != nil {
		return err
	}
	if len(paths) > candidatePaths {
		paths = paths[:candidatePaths]
	}
	pm, err := robusttomo.NewPathMatrix(paths, tp.Graph.NumEdges())
	if err != nil {
		return err
	}

	model, err := robusttomo.NewFailureModel(robusttomo.FailureConfig{
		Links:            tp.Graph.NumEdges(),
		ExpectedFailures: 3,
		Seed:             42,
	})
	if err != nil {
		return err
	}
	monitors := append(append([]robusttomo.NodeID{}, src...), dst...)
	cm, err := robusttomo.NewCostModel(robusttomo.CostConfig{Monitors: monitors, Seed: 42, PeerProbability: -1})
	if err != nil {
		return err
	}
	costs := cm.Costs(paths)

	// Budget: a fraction of what an arbitrary basis costs.
	basis := robusttomo.SelectPath(pm)
	basisCost := 0.0
	for _, q := range basis {
		basisCost += costs[q]
	}
	budget := budgetMultiplier * basisCost
	fmt.Printf("candidates: %d paths, full rank %d; budget %.0f (%.0f%% of basis cost)\n",
		pm.NumPaths(), pm.Rank(), budget, budgetMultiplier*100)

	robust, err := robusttomo.SelectRobustPaths(pm, model, costs, budget)
	if err != nil {
		return err
	}
	baseline, err := robusttomo.SelectPathBudgeted(pm, costs, budget)
	if err != nil {
		return err
	}

	// Ground-truth link delays and exact measurements.
	truth := make([]float64, pm.NumLinks())
	for i := range truth {
		truth[i] = 0.5 + rng.Float64()*19.5 // 0.5–20 ms
	}
	y, err := pm.TrueMeasurements(truth)
	if err != nil {
		return err
	}

	evalRng := robusttomo.NewRNG(42, 1)
	stats := map[string]*tally{"ProbRoMe": {}, "SelectPath": {}}
	selections := map[string][]int{"ProbRoMe": robust.Selected, "SelectPath": baseline.Selected}
	for t := 0; t < trials; t++ {
		sc := model.Sample(evalRng)
		for name, sel := range selections {
			surv := pm.Surviving(sel, sc)
			ys := make([]float64, len(surv))
			for i, q := range surv {
				ys[i] = y[q]
			}
			sys, err := robusttomo.NewSystem(pm, surv, ys)
			if err != nil {
				return err
			}
			values, ident, err := sys.Solve()
			if err != nil {
				return err
			}
			st := stats[name]
			st.trials++
			st.rank += sys.Rank()
			for j := range truth {
				if ident[j] {
					st.identified++
					if abs(values[j]-truth[j]) < 1e-6 {
						st.correct++
					}
				}
			}
		}
	}

	fmt.Printf("\nover %d random failure scenarios:\n", trials)
	for _, name := range []string{"ProbRoMe", "SelectPath"} {
		st := stats[name]
		fmt.Printf("  %-10s  avg rank %.1f, avg identifiable links %.1f, inferred values exact in %.1f%% of identifications\n",
			name,
			float64(st.rank)/float64(st.trials),
			float64(st.identified)/float64(st.trials),
			100*float64(st.correct)/float64(max(st.identified, 1)))
	}
	return nil
}

type tally struct {
	trials     int
	rank       int
	identified int
	correct    int
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
