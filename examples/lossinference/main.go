// Loss-rate tomography: the paper's other additive metric. Packet
// delivery rates are multiplicative along a path; under the −ln transform
// they become additive, so the identical linear-system machinery infers
// per-link loss from end-to-end loss — here under link failures, with the
// robust path selection keeping most links identifiable.
//
// Run: go run ./examples/lossinference
package main

import (
	"fmt"
	"log"

	"robusttomo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tp, err := robusttomo.PresetTopology("AS1755")
	if err != nil {
		return err
	}
	rng := robusttomo.NewRNG(23, 0)
	k := 12
	perm := rng.Perm(len(tp.Access))
	var src, dst []robusttomo.NodeID
	for i := 0; i < k; i++ {
		src = append(src, tp.Access[perm[i]])
		dst = append(dst, tp.Access[perm[k+i]])
	}
	paths, err := robusttomo.MonitorPairs(tp.Graph, src, dst)
	if err != nil {
		return err
	}
	pm, err := robusttomo.NewPathMatrix(paths, tp.Graph.NumEdges())
	if err != nil {
		return err
	}
	model, err := robusttomo.NewFailureModel(robusttomo.FailureConfig{
		Links: tp.Graph.NumEdges(), ExpectedFailures: 2, Seed: 23,
	})
	if err != nil {
		return err
	}

	// Ground-truth per-link delivery rates: mostly clean, a few lossy.
	rates := make([]float64, pm.NumLinks())
	for i := range rates {
		rates[i] = 0.995 + rng.Float64()*0.00499
	}
	lossy := rng.Perm(pm.NumLinks())[:5]
	for _, l := range lossy {
		rates[l] = 0.90 + rng.Float64()*0.05
	}
	metrics, err := robusttomo.DeliveryRatesToMetrics(rates)
	if err != nil {
		return err
	}
	y, err := pm.TrueMeasurements(metrics)
	if err != nil {
		return err
	}

	// Robust selection at 70% of basis cost.
	costs := make([]float64, pm.NumPaths())
	for i := range costs {
		costs[i] = float64(100 * pm.Path(i).Hops())
	}
	budget := 0.0
	for _, q := range robusttomo.SelectPath(pm) {
		budget += costs[q]
	}
	budget *= 0.7
	sel, err := robusttomo.SelectRobustPaths(pm, model, costs, budget)
	if err != nil {
		return err
	}
	fmt.Printf("probing %d of %d candidate paths (budget %.0f)\n",
		len(sel.Selected), pm.NumPaths(), budget)

	// One failure epoch: solve from the surviving measurements.
	sc := model.Sample(robusttomo.NewRNG(23, 1))
	surv := pm.Surviving(sel.Selected, sc)
	ys := make([]float64, len(surv))
	for i, q := range surv {
		ys[i] = y[q]
	}
	sys, err := robusttomo.NewSystem(pm, surv, ys)
	if err != nil {
		return err
	}
	values, ident, err := sys.Solve()
	if err != nil {
		return err
	}
	recovered, err := robusttomo.MetricsToDeliveryRates(values, ident)
	if err != nil {
		return err
	}

	identified := 0
	lossyFound := 0
	for j, ok := range ident {
		if !ok {
			continue
		}
		identified++
		if recovered[j] < 0.98 {
			fmt.Printf("  lossy link l%d: inferred delivery %.4f (truth %.4f)\n",
				j, recovered[j], rates[j])
			lossyFound++
		}
	}
	fmt.Printf("failures this epoch: %d links down; identified %d/%d link loss rates, flagged %d lossy links\n",
		sc.NumFailed(), identified, pm.NumLinks(), lossyFound)
	return nil
}
