// Scalable overlay monitoring (the Chen et al. application the paper
// builds on, reference [3]): probe only an independent subset of paths and
// reconstruct every other end-to-end measurement algebraically.
//
// The twist from the paper: under link failures, which basis you probed
// matters. This example probes (a) an arbitrary basis and (b) a robust
// RoMe selection of the same cost, fails links, and counts how many of the
// full candidate set's measurements can still be reconstructed from the
// surviving probes.
//
// The second half runs the same idea over the wire: real TCP monitors, a
// fault-tolerant NOC, and a monitor killed mid-run — collection degrades
// to partial epochs with a typed error instead of aborting.
//
// Run: go run ./examples/monitoring
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"robusttomo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tp, err := robusttomo.PresetTopology("AS1755")
	if err != nil {
		return err
	}

	rng := robusttomo.NewRNG(7, 0)
	k := 12
	perm := rng.Perm(len(tp.Access))
	var src, dst []robusttomo.NodeID
	for i := 0; i < k; i++ {
		src = append(src, tp.Access[perm[i]])
		dst = append(dst, tp.Access[perm[k+i]])
	}
	paths, err := robusttomo.MonitorPairs(tp.Graph, src, dst)
	if err != nil {
		return err
	}
	pm, err := robusttomo.NewPathMatrix(paths, tp.Graph.NumEdges())
	if err != nil {
		return err
	}
	fmt.Printf("overlay: %d candidate monitor pairs over %s, rank %d\n",
		pm.NumPaths(), tp.Graph, pm.Rank())

	model, err := robusttomo.NewFailureModel(robusttomo.FailureConfig{
		Links: tp.Graph.NumEdges(), ExpectedFailures: 3, Seed: 7,
	})
	if err != nil {
		return err
	}

	costs := make([]float64, pm.NumPaths())
	for i := range costs {
		costs[i] = 1
	}
	budget := float64(pm.Rank()) // probe a basis worth of paths

	arbitrary := robusttomo.SelectPath(pm)
	robust, err := robusttomo.SelectRobustPaths(pm, model, costs, budget)
	if err != nil {
		return err
	}

	// Ground-truth loss rates → additive metric via log transform is the
	// classic use; plain delays keep the demo readable.
	truth := make([]float64, pm.NumLinks())
	for i := range truth {
		truth[i] = 1 + rng.Float64()*4
	}
	y, err := pm.TrueMeasurements(truth)
	if err != nil {
		return err
	}

	const trials = 300
	evalRng := robusttomo.NewRNG(7, 1)
	kinds := []struct {
		name string
		sel  []int
	}{
		{"arbitrary basis", arbitrary},
		{"robust selection", robust.Selected},
	}
	totals := make([]float64, len(kinds))
	exact := make([]int, len(kinds))
	for t := 0; t < trials; t++ {
		sc := model.Sample(evalRng)
		for ki, kind := range kinds {
			surv := pm.Surviving(kind.sel, sc)
			ys := make([]float64, len(surv))
			for i, q := range surv {
				ys[i] = y[q]
			}
			rc, err := robusttomo.NewReconstructor(pm, surv, ys)
			if err != nil {
				return err
			}
			covered := 0
			for q := 0; q < pm.NumPaths(); q++ {
				if v, ok := rc.Reconstruct(q); ok {
					covered++
					if diff := v - y[q]; diff < 1e-6 && diff > -1e-6 {
						exact[ki]++
					}
				}
			}
			totals[ki] += float64(covered)
		}
	}

	fmt.Printf("\nreconstruction coverage over %d failure scenarios (probing ≤ %d paths):\n", trials, int(budget))
	for ki, kind := range kinds {
		avg := totals[ki] / trials
		fmt.Printf("  %-17s reconstructs %.1f/%d e2e measurements on average (all %d reconstructions exact)\n",
			kind.name, avg, pm.NumPaths(), exact[ki])
	}

	return faultTolerantCollection()
}

// faultTolerantCollection probes the Section II example network over real
// TCP monitors and kills one mid-run: the NOC retries, trips its circuit
// breaker, and keeps delivering the surviving monitors' measurements.
func faultTolerantCollection() error {
	ex := robusttomo.NewExampleNetwork()
	paths, err := robusttomo.MonitorPairs(ex.Graph, ex.Monitors, ex.Monitors)
	if err != nil {
		return err
	}
	pm, err := robusttomo.NewPathMatrix(paths, ex.Graph.NumEdges())
	if err != nil {
		return err
	}
	truth := make([]float64, pm.NumLinks())
	for i := range truth {
		truth[i] = 1 + float64(i)*0.5
	}
	oracle, err := robusttomo.NewEpochOracle(truth, nil)
	if err != nil {
		return err
	}

	monitors := map[string]*robusttomo.Monitor{}
	addrs := map[string]string{}
	for _, mn := range ex.Monitors {
		name := ex.Graph.Label(mn)
		mon, err := robusttomo.StartMonitor(name, "127.0.0.1:0", oracle)
		if err != nil {
			return err
		}
		defer mon.Close()
		monitors[name] = mon
		addrs[name] = mon.Addr()
	}

	cfg := robusttomo.DefaultNOCConfig()
	cfg.PM = pm
	cfg.Monitors = addrs
	cfg.SourceOf = func(p int) string { return ex.Graph.Label(pm.Path(p).Src) }
	cfg.Retry = robusttomo.RetryPolicy{MaxAttempts: 2, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond, Multiplier: 2, Jitter: 0.5}
	cfg.Breaker = robusttomo.BreakerPolicy{FailureThreshold: 2, Cooldown: 200 * time.Millisecond}
	cfg.Timeouts = robusttomo.CollectorTimeouts{Dial: 250 * time.Millisecond, Exchange: 2 * time.Second}
	noc, err := robusttomo.NewNOC(cfg)
	if err != nil {
		return err
	}
	defer noc.Close()

	selected := make([]int, pm.NumPaths())
	for i := range selected {
		selected[i] = i
	}
	victim := ex.Graph.Label(pm.Path(selected[0]).Src)
	fmt.Printf("\nfault-tolerant TCP collection: %d monitors, %d paths; monitor %s dies after epoch 1\n",
		len(addrs), len(selected), victim)
	ctx := context.Background()
	for epoch := 0; epoch < 5; epoch++ {
		if epoch == 2 {
			monitors[victim].Close()
		}
		ms, err := noc.CollectEpoch(ctx, epoch, selected)
		switch {
		case err == nil:
			fmt.Printf("  epoch %d: %d/%d measurements, all monitors healthy\n", epoch, len(ms), len(selected))
		case errors.Is(err, robusttomo.ErrMonitorUnreachable) || errors.Is(err, robusttomo.ErrCircuitOpen):
			var cerr *robusttomo.CollectionError
			if !errors.As(err, &cerr) {
				return err // typed degradation is the only expected error here
			}
			fmt.Printf("  epoch %d: degraded — %d/%d measurements, lost paths %v via %v (breaker %s)\n",
				epoch, len(ms), len(selected), cerr.LostPaths(), cerr.FailedMonitors(), noc.BreakerStates()[victim])
		default:
			return err
		}
	}
	fmt.Printf("  the loop survived the dead monitor: partial epochs kept flowing\n")
	return nil
}
