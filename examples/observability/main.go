// Observability: instrument the whole pipeline with one registry.
//
// Install a robusttomo.Observer on the selection options and the
// closed-loop config, run a short learning loop, then inspect what the
// instrumentation captured: the Prometheus text exposition (the exact
// bytes a `tomo serve` /metrics scrape returns), a structured snapshot,
// and the span/event trace ring. The registry is dependency-free and
// concurrent-safe; code holding nil handles (no Observer installed) pays
// a single nil check per update.
//
// Run: go run ./examples/observability
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"robusttomo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	reg := robusttomo.NewObserver()

	// Wrap the setup in a span: it lands in the event ring with its
	// duration once EndDetail fires.
	setup := reg.StartSpan("example.setup")

	ex := robusttomo.NewExampleNetwork()
	paths, err := robusttomo.MonitorPairs(ex.Graph, ex.Monitors, ex.Monitors)
	if err != nil {
		return err
	}
	pm, err := robusttomo.NewPathMatrix(paths, ex.Graph.NumEdges())
	if err != nil {
		return err
	}
	probs := make([]float64, pm.NumLinks())
	for i := range probs {
		probs[i] = 0.05
	}
	probs[ex.Bridge] = 0.3
	model, err := robusttomo.FailureFromProbabilities(probs)
	if err != nil {
		return err
	}
	costs := make([]float64, pm.NumPaths())
	for i := range costs {
		costs[i] = 1
	}
	metrics := make([]float64, pm.NumLinks())
	for i := range metrics {
		metrics[i] = 1 + float64(i)*0.5
	}
	setup.EndDetail(fmt.Sprintf("%d candidate paths", pm.NumPaths()))

	// 1. An instrumented selection: run counts, gain-evaluation totals and
	// durations accumulate in the registry.
	opts := robusttomo.DefaultSelectionOptions()
	opts.Observer = reg
	res, err := robusttomo.RoMe(pm, costs, 10, robusttomo.NewProbBoundOracle(pm, model), opts)
	if err != nil {
		return err
	}
	fmt.Printf("selection: %d paths, %d gain evaluations\n", len(res.Selected), res.GainEvaluations)

	// 2. An instrumented closed loop in learning mode: the same registry
	// collects epoch durations, rewards and rank gauges from the sim and
	// bandit layers.
	runner, err := robusttomo.NewSimRunner(robusttomo.SimConfig{
		PM: pm, Costs: costs, Budget: 10, Metrics: metrics,
		Failures: model, Horizon: 30, Mode: robusttomo.SimLearning,
		Seed: 2014, Observer: reg,
	})
	if err != nil {
		return err
	}
	if _, err := runner.Run(context.Background(), 30); err != nil {
		return err
	}

	// 3. The Prometheus exposition — exactly what `tomo serve` returns on
	// /metrics. Print the counter families.
	fmt.Println("\nPrometheus exposition (counters):")
	for _, line := range strings.Split(reg.PrometheusText(), "\n") {
		if strings.HasPrefix(line, "tomo_") && strings.HasSuffix(strings.Fields(line)[0], "_total") {
			fmt.Println(" ", line)
		}
	}

	// 4. The structured snapshot, for programmatic checks.
	snap := reg.Snapshot()
	fmt.Printf("\nsnapshot: %v learning epochs, last reward %v, rank gauge %v\n",
		snap["tomo_bandit_epochs_total"], snap["tomo_bandit_reward"], snap["tomo_sim_rank"])

	// 5. The event ring holds the recorded spans, oldest first.
	fmt.Println("\nrecent events:")
	for _, ev := range reg.Events() {
		fmt.Printf("  %-16s %s\n", ev.Name, ev.Detail)
	}
	return nil
}
