// Quickstart: the paper's Section II story on its example network.
//
// Build the 8-node/8-link example, enumerate the 15 candidate monitor
// pairs, and compare an arbitrary basis against the robust RoMe selection
// when the flaky bridge link fails: the arbitrary basis loses most of its
// rank while the robust selection keeps identifying every surviving link.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"robusttomo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ex := robusttomo.NewExampleNetwork()
	paths, err := robusttomo.MonitorPairs(ex.Graph, ex.Monitors, ex.Monitors)
	if err != nil {
		return err
	}
	pm, err := robusttomo.NewPathMatrix(paths, ex.Graph.NumEdges())
	if err != nil {
		return err
	}
	fmt.Printf("network: %s — %d candidate paths, full rank %d\n",
		ex.Graph, pm.NumPaths(), pm.Rank())

	// The bridge between the two monitor clusters fails 30%% of the time;
	// everything else is reliable.
	probs := make([]float64, pm.NumLinks())
	for i := range probs {
		probs[i] = 0.02
	}
	probs[ex.Bridge] = 0.30
	model, err := robusttomo.FailureFromProbabilities(probs)
	if err != nil {
		return err
	}

	// Unit costs, budget of 8 paths: exactly a basis worth of probing.
	costs := make([]float64, pm.NumPaths())
	for i := range costs {
		costs[i] = 1
	}
	robust, err := robusttomo.SelectRobustPaths(pm, model, costs, 8)
	if err != nil {
		return err
	}

	// The failure-agnostic baseline picks an arbitrary basis.
	arbitrary := robusttomo.SelectPath(pm)

	// Fail the bridge and compare.
	sc := robusttomo.Scenario{Failed: make([]bool, pm.NumLinks())}
	sc.Failed[ex.Bridge] = true

	fmt.Printf("\nbridge link l%d fails:\n", ex.Bridge)
	report(pm, "arbitrary basis (SelectPath)", arbitrary, sc)
	report(pm, "robust selection (RoMe)     ", robust.Selected, sc)

	er, err := robusttomo.ExactER(pm, model, robust.Selected)
	if err != nil {
		return err
	}
	fmt.Printf("\nexpected rank of the robust selection: %.3f (RoMe's bound estimate: %.3f)\n",
		er, robust.Objective)
	return nil
}

func report(pm *robusttomo.PathMatrix, name string, selected []int, sc robusttomo.Scenario) {
	surviving := pm.Surviving(selected, sc)
	sys, err := robusttomo.NewSystem(pm, surviving, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s: %d/%d paths survive, rank %d, identifiable links %d/%d\n",
		name, len(surviving), len(selected), sys.Rank(), sys.NumIdentifiable(), pm.NumLinks())
}
