// Service: the multi-tenant selection-job subsystem, embedded.
//
// The same engine that backs `tomo serve`'s POST /api/v1/jobs can be
// embedded directly: submit selection instances as jobs, let the bounded
// worker pool run them, and watch the content-addressed cache and
// singleflight dedup amortize repeated queries. This example submits the
// same instance from several goroutines (exactly one execution), shows a
// cache hit answering instantly, trips the load shedder against a tiny
// queue, and reads the canonical cache key that makes it all work.
//
// Run: go run ./examples/service
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"robusttomo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Build a small instance: the paper's example network, candidate
	// paths between monitors, a skewed failure model.
	ex := robusttomo.NewExampleNetwork()
	paths, err := robusttomo.MonitorPairs(ex.Graph, ex.Monitors, ex.Monitors)
	if err != nil {
		return err
	}
	pm, err := robusttomo.NewPathMatrix(paths, ex.Graph.NumEdges())
	if err != nil {
		return err
	}
	probs := make([]float64, pm.NumLinks())
	for i := range probs {
		probs[i] = 0.05
	}
	probs[ex.Bridge] = 0.3

	// A JobSpec is self-contained: the path matrix rows as link lists,
	// the failure probabilities, and the algorithm + budget.
	spec := robusttomo.SelectionJobSpec{
		Links:     pm.NumLinks(),
		Paths:     pathLinks(pm),
		Probs:     probs,
		Budget:    4,
		Algorithm: "probrome",
	}

	svc := robusttomo.NewSelectionService(robusttomo.SelectionServiceConfig{
		Workers:    2,
		QueueDepth: 4,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Close(ctx)
	}()

	// 1. Singleflight: five goroutines submit the identical instance;
	// the service executes it once and attaches the rest.
	var wg sync.WaitGroup
	var id string
	var mu sync.Mutex
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := svc.Submit(spec)
			if err != nil {
				log.Printf("submit: %v", err)
				return
			}
			mu.Lock()
			id = out.ID
			mu.Unlock()
		}()
	}
	wg.Wait()
	st, err := svc.Wait(context.Background(), id)
	if err != nil {
		return err
	}
	res, err := svc.Result(id)
	if err != nil {
		return err
	}
	// Result returns the engine's payload behind the EngineResult
	// interface; a selection job's concrete type is SelectionResult.
	sel := res.(robusttomo.SelectionResult)
	fmt.Printf("job %s…: %s, selected %d paths, ER %.3f\n",
		id[:12], st.State, len(sel.Selected), sel.Objective)

	// 2. Content-addressed cache: the same instance resubmitted is
	// answered without a new execution — bit-identical by construction.
	again, err := svc.Submit(spec)
	if err != nil {
		return err
	}
	fmt.Printf("resubmission: cached=%v (same ID: %v)\n", again.Cached, again.ID == id)

	// 3. Load shedding: flood distinct instances past the queue bound
	// and count deterministic rejections with their Retry-After hint.
	shed := 0
	var retryAfter time.Duration
	for n := 0; n < 32; n++ {
		variant := spec
		variant.Budget = 3 + float64(n)*0.25
		if _, err := svc.Submit(variant); err != nil {
			var oe *robusttomo.ServiceOverloadError
			if errors.As(err, &oe) {
				shed++
				retryAfter = oe.RetryAfter
				continue
			}
			return err
		}
	}
	fmt.Printf("flood of 32: %d shed with Retry-After %v\n", shed, retryAfter)

	stats := svc.Stats()
	fmt.Printf("stats: submitted %d, executed %d, dedup %d, cache hits %d, shed %d\n",
		stats.Submitted, stats.Executed, stats.DedupHits, stats.CacheHits, stats.Shed)

	// 4. The canonical key behind it all: the hash of everything the
	// result depends on, computable without a service.
	model, err := robusttomo.FailureFromProbabilities(probs)
	if err != nil {
		return err
	}
	costs := make([]float64, pm.NumPaths())
	for i := range costs {
		costs[i] = 1
	}
	key := robusttomo.CanonicalSelectionKey(pm, model.Probs(), costs, 4, "probrome", 0, 0)
	fmt.Printf("canonical key: %s… (matches job ID: %v)\n", key[:12], key == id)
	return nil
}

// pathLinks flattens a path matrix back into per-path link lists, the
// wire form a JobSpec carries.
func pathLinks(pm *robusttomo.PathMatrix) [][]int {
	out := make([][]int, pm.NumPaths())
	for i := range out {
		out[i] = pm.EdgesOf(i)
	}
	return out
}
