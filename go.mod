module robusttomo

go 1.24
