package agent

import (
	"bufio"
	"context"
	"fmt"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"robusttomo/internal/failure"
	"robusttomo/internal/routing"
	"robusttomo/internal/tomo"
	"robusttomo/internal/topo"
)

// exampleDeployment spins up one monitor per example-network monitor node
// and a NOC over the 15 candidate paths.
func exampleDeployment(t *testing.T, scenarios []failure.Scenario) (*tomo.PathMatrix, []float64, *NOC, []*Monitor) {
	t.Helper()
	ex := topo.NewExample()
	paths, err := routing.MonitorPairs(ex.Graph, ex.Monitors, ex.Monitors)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := tomo.NewPathMatrix(paths, ex.Graph.NumEdges())
	if err != nil {
		t.Fatal(err)
	}
	metrics := make([]float64, pm.NumLinks())
	for i := range metrics {
		metrics[i] = 1 + float64(i)*0.25
	}
	oracle, err := NewEpochOracle(metrics, scenarios)
	if err != nil {
		t.Fatal(err)
	}

	monitors := map[string]string{}
	var started []*Monitor
	for _, mn := range ex.Monitors {
		name := ex.Graph.Label(mn)
		m, err := StartMonitor(name, "127.0.0.1:0", oracle)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			if err := m.Close(); err != nil {
				t.Errorf("close %s: %v", m.Name(), err)
			}
		})
		monitors[name] = m.Addr()
		started = append(started, m)
	}
	noc, err := NewNOC(NOCConfig{
		PM:       pm,
		Monitors: monitors,
		SourceOf: func(path int) string { return ex.Graph.Label(pm.Path(path).Src) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return pm, metrics, noc, started
}

func allPaths(pm *tomo.PathMatrix) []int {
	idx := make([]int, pm.NumPaths())
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func TestCollectEpochNoFailures(t *testing.T) {
	pm, metrics, noc, monitors := exampleDeployment(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	ms, err := noc.CollectEpoch(ctx, 0, allPaths(pm))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != pm.NumPaths() {
		t.Fatalf("measurements = %d, want %d", len(ms), pm.NumPaths())
	}
	truth, _ := pm.TrueMeasurements(metrics)
	for _, m := range ms {
		if !m.OK {
			t.Fatalf("path %d failed without failures", m.PathID)
		}
		if math.Abs(m.Value-truth[m.PathID]) > 1e-9 {
			t.Fatalf("path %d measured %v, want %v", m.PathID, m.Value, truth[m.PathID])
		}
	}
	served := 0
	for _, m := range monitors {
		served += m.ProbesServed()
	}
	if served != pm.NumPaths() {
		t.Fatalf("monitors served %d probes, want %d", served, pm.NumPaths())
	}
}

func TestCollectEpochWithFailure(t *testing.T) {
	ex := topo.NewExample()
	failed := make([]bool, 8)
	failed[ex.Bridge] = true
	scenarios := []failure.Scenario{{Failed: failed}}

	pm, metrics, noc, _ := exampleDeployment(t, scenarios)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	ms, err := noc.CollectEpoch(ctx, 0, allPaths(pm))
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := pm.TrueMeasurements(metrics)
	okCount := 0
	for _, m := range ms {
		usesBridge := pm.Path(m.PathID).Uses(ex.Bridge)
		if m.OK == usesBridge {
			t.Fatalf("path %d: ok=%v but usesBridge=%v", m.PathID, m.OK, usesBridge)
		}
		if m.OK {
			okCount++
			if math.Abs(m.Value-truth[m.PathID]) > 1e-9 {
				t.Fatalf("path %d measured %v, want %v", m.PathID, m.Value, truth[m.PathID])
			}
		}
	}
	if okCount != 7 {
		t.Fatalf("surviving measurements = %d, want 7", okCount)
	}

	// Epoch 1 is beyond the schedule: failure-free again.
	ms, err = noc.CollectEpoch(ctx, 1, allPaths(pm))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if !m.OK {
			t.Fatalf("path %d failed in scheduled-free epoch", m.PathID)
		}
	}
}

func TestEndToEndInference(t *testing.T) {
	ex := topo.NewExample()
	failed := make([]bool, 8)
	failed[ex.Bridge] = true
	pm, metrics, noc, _ := exampleDeployment(t, []failure.Scenario{{Failed: failed}})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ms, err := noc.CollectEpoch(ctx, 0, allPaths(pm))
	if err != nil {
		t.Fatal(err)
	}
	var idx []int
	var y []float64
	for _, m := range ms {
		if m.OK {
			idx = append(idx, m.PathID)
			y = append(y, m.Value)
		}
	}
	sys, err := tomo.NewSystem(pm, idx, y)
	if err != nil {
		t.Fatal(err)
	}
	values, ident, err := sys.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for j := range metrics {
		if j == int(ex.Bridge) {
			if ident[j] {
				t.Fatal("failed bridge claimed identifiable")
			}
			continue
		}
		if !ident[j] {
			t.Fatalf("link %d not identifiable", j)
		}
		if math.Abs(values[j]-metrics[j]) > 1e-8 {
			t.Fatalf("link %d inferred %v, want %v", j, values[j], metrics[j])
		}
	}
}

func TestNOCValidation(t *testing.T) {
	pm, _ := tomo.NewPathMatrix([]routing.Path{{Src: 0, Dst: 1, Edges: nil}}, 1)
	if _, err := NewNOC(NOCConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := NewNOC(NOCConfig{PM: pm}); err == nil {
		t.Fatal("missing monitors accepted")
	}
	if _, err := NewNOC(NOCConfig{PM: pm, Monitors: map[string]string{"m": "x"}}); err == nil {
		t.Fatal("missing SourceOf accepted")
	}
}

func TestCollectEpochUnknownMonitor(t *testing.T) {
	pm, _, noc, _ := exampleDeployment(t, nil)
	_ = pm
	badNoc, err := NewNOC(NOCConfig{
		PM:       pm,
		Monitors: map[string]string{"only": "127.0.0.1:1"},
		SourceOf: func(int) string { return "ghost" },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := badNoc.CollectEpoch(ctx, 0, []int{0}); err == nil {
		t.Fatal("unknown monitor accepted")
	}
	if _, err := noc.CollectEpoch(ctx, 0, []int{9999}); err == nil {
		t.Fatal("out-of-range path accepted")
	}
}

func TestCollectEpochDeadMonitor(t *testing.T) {
	pm, metrics, _, _ := exampleDeployment(t, nil)
	_ = metrics
	noc, err := NewNOC(NOCConfig{
		PM:       pm,
		Monitors: map[string]string{"dead": "127.0.0.1:1"}, // nothing listens
		SourceOf: func(int) string { return "dead" },
		// Short timeout so the test fails fast.
		DialTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := noc.CollectEpoch(ctx, 0, []int{0}); err == nil {
		t.Fatal("dead monitor produced measurements")
	}
}

func TestCollectEpochContextCancelled(t *testing.T) {
	pm, _, noc, _ := exampleDeployment(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled
	if _, err := noc.CollectEpoch(ctx, 0, allPaths(pm)); err == nil {
		t.Fatal("cancelled context produced measurements")
	}
}

func TestCollectEpochEmptySelection(t *testing.T) {
	_, _, noc, _ := exampleDeployment(t, nil)
	ms, err := noc.CollectEpoch(context.Background(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("measurements = %v", ms)
	}
}

func TestCollectEpochConcurrent(t *testing.T) {
	// The NOC and monitors are stateless per request: concurrent epoch
	// collections must not interfere (run with -race in CI).
	pm, metrics, noc, _ := exampleDeployment(t, nil)
	truth, _ := pm.TrueMeasurements(metrics)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(epoch int) {
			ms, err := noc.CollectEpoch(ctx, epoch, allPaths(pm))
			if err != nil {
				errs <- err
				return
			}
			for _, m := range ms {
				if !m.OK || math.Abs(m.Value-truth[m.PathID]) > 1e-9 {
					errs <- fmt.Errorf("epoch %d path %d: %+v", epoch, m.PathID, m)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestMonitorRejectsGarbage(t *testing.T) {
	oracle, _ := NewEpochOracle([]float64{1}, nil)
	m, err := StartMonitor("m", "127.0.0.1:0", oracle)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	conn, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	// The monitor should close the session without replying.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	r := bufio.NewReader(conn)
	if _, err := r.ReadBytes('\n'); err == nil {
		t.Fatal("monitor replied to garbage")
	}
}

func TestMonitorShutdownMessage(t *testing.T) {
	oracle, _ := NewEpochOracle([]float64{1}, nil)
	m, err := StartMonitor("m", "127.0.0.1:0", oracle)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	conn, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"type":"shutdown"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("session still alive after shutdown")
	}
}

func TestStartMonitorValidation(t *testing.T) {
	if _, err := StartMonitor("m", "127.0.0.1:0", nil); err == nil {
		t.Fatal("nil oracle accepted")
	}
	if _, err := StartMonitor("m", "256.256.256.256:0", &EpochOracle{metrics: []float64{1}}); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestEpochOracleValidation(t *testing.T) {
	if _, err := NewEpochOracle(nil, nil); err == nil {
		t.Fatal("empty metrics accepted")
	}
	if _, err := NewEpochOracle([]float64{1}, []failure.Scenario{{Failed: []bool{true, false}}}); err == nil {
		t.Fatal("mis-sized scenario accepted")
	}
	oracle, err := NewEpochOracle([]float64{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := oracle.Measure(0, []int{5}); ok {
		t.Fatal("out-of-range link measured")
	}
	v, ok := oracle.Measure(0, []int{0, 1})
	if !ok || v != 3 {
		t.Fatalf("Measure = %v, %v", v, ok)
	}
}

func TestProtocolPeekType(t *testing.T) {
	if _, err := peekType([]byte(`{"type":"probe"}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := peekType([]byte(`nope`)); err == nil {
		t.Fatal("garbage accepted")
	}
	if !strings.Contains(string(MsgProbe), "probe") {
		t.Fatal("unexpected constant")
	}
}
