package agent

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Watermark epoch assembly: the streaming plane ingests measurements
// continuously, and an epoch is handed to the consumer either when every
// expected path has reported or when the watermark elapses — whichever
// comes first. Results that arrive after their epoch sealed are not
// dropped and do not stall the collector: they are folded forward into the
// next sealed epoch's AssembledEpoch.Late, tagged with their origin epoch,
// so consumers (the sim Runner's aggregator) can still use them.
//
// Policies, shared with the serial reference assembly the tests compare
// against bit-for-bit:
//
//   - dedup: the first result for an (epoch, path) pair wins; later
//     duplicates are counted, not applied.
//   - late: a result for an epoch that is not open (already sealed, or
//     never opened) goes to the late buffer, drained at the next Seal in
//     arrival order. The buffer is bounded; overflow is counted and
//     dropped so a runaway peer cannot grow memory.
//   - out-of-order: any number of epochs may be open at once; results
//     route by epoch number, not arrival order.

// LateMeasurement is a measurement that arrived after its epoch sealed,
// folded forward into a later assembled epoch.
type LateMeasurement struct {
	// Epoch is the origin epoch the measurement belongs to.
	Epoch int
	Measurement
}

// AssembledEpoch is the watermark assembler's output for one epoch.
type AssembledEpoch struct {
	Epoch int
	// Measurements holds the results that arrived before the seal, sorted
	// by path ID, duplicates removed (first wins).
	Measurements []Measurement
	// Missing lists expected paths that never reported, sorted.
	Missing []int
	// Late holds older-epoch results folded forward into this seal, in
	// arrival order, each tagged with its origin epoch.
	Late []LateMeasurement
	// Duplicates counts results discarded by dedup for this epoch.
	Duplicates int
	// LateDropped counts late results discarded because the late buffer
	// was full at the time they arrived (reported on the next seal).
	LateDropped int
}

// ingestStats summarizes one Ingest call for the metrics plane.
type ingestStats struct {
	accepted   int
	duplicates int
	late       int
	lateDrop   int
	// lag is the arrival lag behind the seal for late results (zero when
	// the seal time is no longer tracked).
	lag time.Duration
}

// epochAssembly is one open epoch's accumulation state.
type epochAssembly struct {
	expect     map[int]struct{} // paths still outstanding
	got        []Measurement    // arrival order; sorted at seal
	gotSet     map[int]struct{}
	duplicates int
	done       chan struct{} // closed when expect drains
	doneClosed bool
}

// assembler is the concurrent watermark assembler. All methods are safe
// for concurrent use; the injectable clock only feeds the lag metric, so
// assembly output is a pure function of the call sequence (the property
// the serial-reference tests assert).
type assembler struct {
	mu          sync.Mutex
	now         func() time.Time
	maxLate     int
	open        map[int]*epochAssembly
	late        []LateMeasurement
	lateDropped int
	// sealedAt remembers recent seal times for the watermark-lag metric,
	// bounded by sealedRing.
	sealedAt   map[int]time.Time
	sealedRing []int
}

// maxSealedTracked bounds how many sealed epochs keep their seal time for
// lag measurement.
const maxSealedTracked = 16

func newAssembler(now func() time.Time, maxLate int) *assembler {
	if now == nil {
		now = time.Now
	}
	if maxLate <= 0 {
		maxLate = 1 << 16
	}
	return &assembler{
		now:      now,
		maxLate:  maxLate,
		open:     make(map[int]*epochAssembly),
		sealedAt: make(map[int]time.Time),
	}
}

// openEpoch registers an epoch and its expected path set, returning a
// channel closed once every expected path has reported. Opening an
// already-open epoch is an error; an empty expectation completes
// immediately.
func (a *assembler) openEpoch(epoch int, expected []int) (<-chan struct{}, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.open[epoch]; ok {
		return nil, fmt.Errorf("agent: epoch %d already open in assembler", epoch)
	}
	ea := &epochAssembly{
		expect: make(map[int]struct{}, len(expected)),
		gotSet: make(map[int]struct{}, len(expected)),
		done:   make(chan struct{}),
	}
	for _, p := range expected {
		ea.expect[p] = struct{}{}
	}
	if len(ea.expect) == 0 {
		close(ea.done)
		ea.doneClosed = true
	}
	a.open[epoch] = ea
	return ea.done, nil
}

// abandon removes paths from an open epoch's expectation — the caller
// could not send their probes (backpressure, open breaker) — so the epoch
// can still complete without waiting out the watermark for results that
// will never come.
func (a *assembler) abandon(epoch int, paths []int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ea, ok := a.open[epoch]
	if !ok {
		return
	}
	for _, p := range paths {
		delete(ea.expect, p)
	}
	ea.checkComplete()
}

func (ea *epochAssembly) checkComplete() {
	if len(ea.expect) == 0 && !ea.doneClosed {
		close(ea.done)
		ea.doneClosed = true
	}
}

// ingest routes one result batch. Results for open epochs accumulate
// (first-wins dedup); results for anything else land in the bounded late
// buffer for the next seal.
func (a *assembler) ingest(epoch int, results []Measurement) ingestStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	var st ingestStats
	ea, ok := a.open[epoch]
	if !ok {
		for _, m := range results {
			if len(a.late) >= a.maxLate {
				a.lateDropped++
				st.lateDrop++
				continue
			}
			a.late = append(a.late, LateMeasurement{Epoch: epoch, Measurement: m})
			st.late++
		}
		if sealed, ok := a.sealedAt[epoch]; ok && st.late+st.lateDrop > 0 {
			st.lag = a.now().Sub(sealed)
		}
		return st
	}
	for _, m := range results {
		if _, dup := ea.gotSet[m.PathID]; dup {
			ea.duplicates++
			st.duplicates++
			continue
		}
		ea.gotSet[m.PathID] = struct{}{}
		ea.got = append(ea.got, m)
		delete(ea.expect, m.PathID)
		st.accepted++
	}
	ea.checkComplete()
	return st
}

// seal closes the epoch: no more results fold into it (they become late),
// and the assembled output — sorted measurements, sorted missing paths,
// the drained late buffer — is returned. Sealing an epoch that was never
// opened yields a zero AssembledEpoch carrying only the late drain.
func (a *assembler) seal(epoch int) AssembledEpoch {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := AssembledEpoch{Epoch: epoch}
	if ea, ok := a.open[epoch]; ok {
		delete(a.open, epoch)
		out.Measurements = ea.got
		sort.Slice(out.Measurements, func(i, j int) bool {
			return out.Measurements[i].PathID < out.Measurements[j].PathID
		})
		out.Missing = make([]int, 0, len(ea.expect))
		for p := range ea.expect {
			out.Missing = append(out.Missing, p)
		}
		sort.Ints(out.Missing)
		out.Duplicates = ea.duplicates
	}
	out.Late = a.late
	a.late = nil
	out.LateDropped = a.lateDropped
	a.lateDropped = 0

	a.sealedAt[epoch] = a.now()
	a.sealedRing = append(a.sealedRing, epoch)
	if len(a.sealedRing) > maxSealedTracked {
		delete(a.sealedAt, a.sealedRing[0])
		a.sealedRing = a.sealedRing[1:]
	}
	return out
}
