package agent

import (
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"robusttomo/internal/stats"
)

// The assembler's contract is deterministic: output is a pure function of
// the call sequence. These tests replay event scripts through both the
// concurrent assembler and an independently written serial reference and
// require bit-identical AssembledEpochs (satellite: late fold-in,
// duplicate dedup, out-of-order epochs, injectable clock).

type asmEvent struct {
	kind    string // "open", "ingest", "abandon", "seal", "tick"
	epoch   int
	paths   []int         // open/abandon
	results []Measurement // ingest
	d       time.Duration // tick
}

// refAssembler is the serial reference: same policies, written as a plain
// single-threaded replay with no channels or locks.
type refAssembler struct {
	open        map[int]*refEpoch
	late        []LateMeasurement
	lateDropped int
	maxLate     int
}

type refEpoch struct {
	expect map[int]bool
	order  []Measurement
	seen   map[int]bool
	dups   int
}

func newRefAssembler(maxLate int) *refAssembler {
	if maxLate <= 0 {
		maxLate = 1 << 16 // mirror newAssembler's default
	}
	return &refAssembler{open: map[int]*refEpoch{}, maxLate: maxLate}
}

func (r *refAssembler) replay(ev asmEvent) *AssembledEpoch {
	switch ev.kind {
	case "open":
		re := &refEpoch{expect: map[int]bool{}, seen: map[int]bool{}}
		for _, p := range ev.paths {
			re.expect[p] = true
		}
		r.open[ev.epoch] = re
	case "abandon":
		if re, ok := r.open[ev.epoch]; ok {
			for _, p := range ev.paths {
				delete(re.expect, p)
			}
		}
	case "ingest":
		re, ok := r.open[ev.epoch]
		if !ok {
			for _, m := range ev.results {
				if len(r.late) >= r.maxLate {
					r.lateDropped++
					continue
				}
				r.late = append(r.late, LateMeasurement{Epoch: ev.epoch, Measurement: m})
			}
			return nil
		}
		for _, m := range ev.results {
			if re.seen[m.PathID] {
				re.dups++
				continue
			}
			re.seen[m.PathID] = true
			re.order = append(re.order, m)
			delete(re.expect, m.PathID)
		}
	case "seal":
		out := AssembledEpoch{Epoch: ev.epoch}
		if re, ok := r.open[ev.epoch]; ok {
			delete(r.open, ev.epoch)
			out.Measurements = re.order
			sort.Slice(out.Measurements, func(i, j int) bool {
				return out.Measurements[i].PathID < out.Measurements[j].PathID
			})
			out.Missing = []int{}
			for p := range re.expect {
				out.Missing = append(out.Missing, p)
			}
			sort.Ints(out.Missing)
			out.Duplicates = re.dups
		}
		out.Late = r.late
		r.late = nil
		out.LateDropped = r.lateDropped
		r.lateDropped = 0
		return &out
	}
	return nil
}

// runScript replays the same event script through the concurrent
// assembler and the serial reference, returning both seal sequences.
func runScript(t *testing.T, script []asmEvent, maxLate int) (got, want []AssembledEpoch) {
	t.Helper()
	clock := time.Unix(2014, 0)
	a := newAssembler(func() time.Time { return clock }, maxLate)
	ref := newRefAssembler(maxLate)
	for _, ev := range script {
		switch ev.kind {
		case "open":
			if _, err := a.openEpoch(ev.epoch, ev.paths); err != nil {
				t.Fatalf("open %d: %v", ev.epoch, err)
			}
		case "abandon":
			a.abandon(ev.epoch, ev.paths)
		case "ingest":
			a.ingest(ev.epoch, ev.results)
		case "seal":
			got = append(got, a.seal(ev.epoch))
		case "tick":
			clock = clock.Add(ev.d)
			continue
		}
		if out := ref.replay(ev); out != nil {
			want = append(want, *out)
		}
	}
	return got, want
}

// normalizeEmpty maps nil and empty slices onto each other so DeepEqual
// compares content; float bit patterns still compare exactly through the
// Measurement values.
func normalizeEmpty(es []AssembledEpoch) {
	for i := range es {
		if len(es[i].Measurements) == 0 {
			es[i].Measurements = nil
		}
		if len(es[i].Missing) == 0 {
			es[i].Missing = nil
		}
		if len(es[i].Late) == 0 {
			es[i].Late = nil
		}
	}
}

func assertMatchesReference(t *testing.T, got, want []AssembledEpoch) {
	t.Helper()
	normalizeEmpty(got)
	normalizeEmpty(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("assembler diverged from serial reference:\n got %+v\nwant %+v", got, want)
	}
}

func m(path int, v float64) Measurement { return Measurement{PathID: path, OK: true, Value: v} }

// TestAssemblerLateFoldIn: results arriving after their epoch seals fold
// into the next seal's Late list, tagged with their origin epoch.
func TestAssemblerLateFoldIn(t *testing.T) {
	script := []asmEvent{
		{kind: "open", epoch: 0, paths: []int{1, 2, 3}},
		{kind: "ingest", epoch: 0, results: []Measurement{m(1, 1.5), m(2, 2.5)}},
		{kind: "seal", epoch: 0}, // path 3 missing
		{kind: "tick", d: 250 * time.Millisecond},
		{kind: "ingest", epoch: 0, results: []Measurement{m(3, 3.5)}}, // late
		{kind: "open", epoch: 1, paths: []int{1, 2}},
		{kind: "ingest", epoch: 1, results: []Measurement{m(1, 1.5), m(2, 2.5)}},
		{kind: "seal", epoch: 1},
	}
	got, want := runScript(t, script, 0)
	assertMatchesReference(t, got, want)
	if len(got) != 2 || len(got[0].Missing) != 1 || got[0].Missing[0] != 3 {
		t.Fatalf("epoch 0 should miss path 3: %+v", got[0])
	}
	if len(got[1].Late) != 1 || got[1].Late[0].Epoch != 0 || got[1].Late[0].PathID != 3 {
		t.Fatalf("late result not folded into epoch 1: %+v", got[1].Late)
	}
}

// TestAssemblerDuplicateDedup: duplicate results are first-wins within an
// epoch, and the discard is counted.
func TestAssemblerDuplicateDedup(t *testing.T) {
	script := []asmEvent{
		{kind: "open", epoch: 5, paths: []int{7, 8}},
		{kind: "ingest", epoch: 5, results: []Measurement{m(7, 1.0)}},
		{kind: "ingest", epoch: 5, results: []Measurement{m(7, 99.0), m(8, 2.0), m(8, 42.0)}},
		{kind: "seal", epoch: 5},
	}
	got, want := runScript(t, script, 0)
	assertMatchesReference(t, got, want)
	if got[0].Duplicates != 2 {
		t.Fatalf("duplicates = %d, want 2", got[0].Duplicates)
	}
	if got[0].Measurements[0].Value != 1.0 || got[0].Measurements[1].Value != 2.0 {
		t.Fatalf("dedup is not first-wins: %+v", got[0].Measurements)
	}
}

// TestAssemblerOutOfOrderEpochs: multiple epochs open at once, results
// arriving interleaved and out of epoch order, seals in a different order
// still route everything correctly.
func TestAssemblerOutOfOrderEpochs(t *testing.T) {
	script := []asmEvent{
		{kind: "open", epoch: 10, paths: []int{0, 1}},
		{kind: "open", epoch: 11, paths: []int{0, 1}},
		{kind: "open", epoch: 12, paths: []int{2}},
		{kind: "ingest", epoch: 12, results: []Measurement{m(2, 12.2)}},
		{kind: "ingest", epoch: 11, results: []Measurement{m(1, 11.1)}},
		{kind: "ingest", epoch: 10, results: []Measurement{m(0, 10.0), m(1, 10.1)}},
		{kind: "ingest", epoch: 11, results: []Measurement{m(0, 11.0)}},
		{kind: "seal", epoch: 11},
		{kind: "seal", epoch: 10},
		{kind: "ingest", epoch: 11, results: []Measurement{m(1, 999)}}, // late after its seal
		{kind: "seal", epoch: 12},
	}
	got, want := runScript(t, script, 0)
	assertMatchesReference(t, got, want)
	if got[2].Epoch != 12 || len(got[2].Late) != 1 || got[2].Late[0].Epoch != 11 {
		t.Fatalf("out-of-order late routing broken: %+v", got[2])
	}
}

// TestAssemblerAbandonCompletes: abandoning unsendable paths lets the done
// channel fire without waiting out the watermark.
func TestAssemblerAbandonCompletes(t *testing.T) {
	a := newAssembler(nil, 0)
	done, err := a.openEpoch(3, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	a.ingest(3, []Measurement{m(1, 0.5)})
	select {
	case <-done:
		t.Fatal("done fired with paths outstanding")
	default:
	}
	a.abandon(3, []int{2, 3})
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("done did not fire after abandon drained the expectation")
	}
	out := a.seal(3)
	if len(out.Missing) != 0 || len(out.Measurements) != 1 {
		t.Fatalf("abandoned paths should not read as missing: %+v", out)
	}
}

// TestAssemblerLateBufferBounded: a runaway peer cannot grow the late
// buffer beyond its bound; the overflow is counted.
func TestAssemblerLateBufferBounded(t *testing.T) {
	script := []asmEvent{
		{kind: "open", epoch: 0, paths: []int{0}},
		{kind: "ingest", epoch: 0, results: []Measurement{m(0, 1)}},
		{kind: "seal", epoch: 0},
	}
	for i := 0; i < 10; i++ {
		script = append(script, asmEvent{kind: "ingest", epoch: 0,
			results: []Measurement{m(i, float64(i))}})
	}
	script = append(script,
		asmEvent{kind: "open", epoch: 1, paths: []int{0}},
		asmEvent{kind: "ingest", epoch: 1, results: []Measurement{m(0, 1)}},
		asmEvent{kind: "seal", epoch: 1},
	)
	got, want := runScript(t, script, 4) // late buffer bound 4
	assertMatchesReference(t, got, want)
	final := got[len(got)-1]
	if len(final.Late) != 4 || final.LateDropped != 6 {
		t.Fatalf("late bound not enforced: late=%d dropped=%d", len(final.Late), final.LateDropped)
	}
}

// TestAssemblerRandomizedAgainstReference fuzzes event scripts from a
// seeded RNG: whatever the mix of opens, out-of-order ingests, dups,
// lates and seals, the concurrent assembler must match the reference
// bit-for-bit.
func TestAssemblerRandomizedAgainstReference(t *testing.T) {
	rng := stats.NewRNG(2014, 0xA55E)
	for trial := 0; trial < 50; trial++ {
		var script []asmEvent
		opened := []int{}
		nextEpoch := 0
		for len(script) < 60 {
			switch rng.IntN(5) {
			case 0:
				paths := make([]int, rng.IntN(6))
				for i := range paths {
					paths[i] = rng.IntN(8)
				}
				script = append(script, asmEvent{kind: "open", epoch: nextEpoch, paths: paths})
				opened = append(opened, nextEpoch)
				nextEpoch++
			case 1, 2:
				epoch := rng.IntN(nextEpoch + 1) // may target sealed/unknown epochs
				results := make([]Measurement, rng.IntN(4))
				for i := range results {
					results[i] = Measurement{
						PathID: rng.IntN(8),
						OK:     rng.IntN(3) > 0,
						Value:  math.Floor(rng.Float64()*1000) / 8,
					}
				}
				script = append(script, asmEvent{kind: "ingest", epoch: epoch, results: results})
			case 3:
				if len(opened) > 0 {
					i := rng.IntN(len(opened))
					script = append(script, asmEvent{kind: "seal", epoch: opened[i]})
					opened = append(opened[:i], opened[i+1:]...)
				}
			case 4:
				if len(opened) > 0 {
					paths := make([]int, rng.IntN(3))
					for i := range paths {
						paths[i] = rng.IntN(8)
					}
					script = append(script, asmEvent{kind: "abandon", epoch: opened[rng.IntN(len(opened))], paths: paths})
				}
			}
		}
		for _, e := range opened {
			script = append(script, asmEvent{kind: "seal", epoch: e})
		}
		got, want := runScript(t, script, 8)
		assertMatchesReference(t, got, want)
	}
}

// TestAssemblerConcurrentIngest hammers one epoch from many goroutines
// with disjoint path sets (race-detector coverage); the sealed output must
// contain exactly the union.
func TestAssemblerConcurrentIngest(t *testing.T) {
	const workers, per = 8, 200
	a := newAssembler(nil, 0)
	expected := make([]int, workers*per)
	for i := range expected {
		expected[i] = i
	}
	done, err := a.openEpoch(0, expected)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p := w*per + i
				a.ingest(0, []Measurement{m(p, float64(p))})
			}
		}(w)
	}
	wg.Wait()
	select {
	case <-done:
	default:
		t.Fatal("epoch did not complete after all paths reported")
	}
	out := a.seal(0)
	if len(out.Measurements) != workers*per || len(out.Missing) != 0 {
		t.Fatalf("concurrent ingest lost data: got %d measurements, %d missing",
			len(out.Measurements), len(out.Missing))
	}
	for i, meas := range out.Measurements {
		if meas.PathID != i || meas.Value != float64(i) {
			t.Fatalf("measurement %d corrupted: %+v", i, meas)
		}
	}
}
