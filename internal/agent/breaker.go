package agent

import (
	"sync"
	"time"
)

// BreakerState is the circuit-breaker state of one monitor.
type BreakerState int

// Breaker states. Closed admits every attempt; Open rejects attempts until
// the cooldown elapses; HalfOpen admits exactly one probe whose outcome
// decides between Closed (success) and Open again (failure).
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is a per-monitor circuit breaker:
//
//	closed --[FailureThreshold consecutive failures]--> open
//	open   --[Cooldown elapsed, one probe admitted]--> half-open
//	half-open --[probe succeeds]--> closed
//	half-open --[probe fails]--> open (cooldown restarts)
//
// All methods are safe for concurrent use.
type breaker struct {
	pol BreakerPolicy
	now func() time.Time // injectable clock for deterministic tests

	mu          sync.Mutex
	state       BreakerState
	consecutive int       // consecutive failures while closed
	openedAt    time.Time // when the breaker last tripped
	probing     bool      // a half-open probe is in flight
}

func newBreaker(pol BreakerPolicy) *breaker {
	return &breaker{pol: pol.withDefaults(), now: time.Now}
}

// allow reports whether an attempt may proceed, transitioning open →
// half-open once the cooldown has elapsed. In half-open state only one
// probe is admitted at a time.
func (b *breaker) allow() bool {
	if b.pol.Disabled {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.pol.Cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			return true
		}
		return false
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// success records a successful exchange: the breaker closes and the
// failure count resets.
func (b *breaker) success() {
	if b.pol.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.consecutive = 0
	b.probing = false
}

// failure records a failed attempt: a half-open probe re-opens the breaker
// (restarting the cooldown); in closed state the consecutive count may
// trip it.
func (b *breaker) failure() {
	if b.pol.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
	case BreakerClosed:
		b.consecutive++
		if b.consecutive >= b.pol.FailureThreshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
		}
	}
}

// State returns the current breaker state (open → half-open transitions
// only happen on allow, so an expired cooldown still reads as open here).
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Breaker is the exported face of the three-state circuit breaker, so
// other planes (the cluster peer protocol marks peers dead/alive with
// it) reuse the exact state machine the collection plane runs per
// monitor instead of growing a second implementation. All methods are
// safe for concurrent use.
type Breaker struct{ b *breaker }

// NewBreaker returns a closed breaker under pol (zero fields take the
// BreakerPolicy defaults).
func NewBreaker(pol BreakerPolicy) *Breaker { return &Breaker{b: newBreaker(pol)} }

// Allow reports whether an attempt may proceed; in half-open state it
// admits exactly one probe, whose Success/Failure decides the next
// state. Callers that are admitted must report the outcome.
func (b *Breaker) Allow() bool { return b.b.allow() }

// Success records a successful exchange: the breaker closes.
func (b *Breaker) Success() { b.b.success() }

// Failure records a failed attempt: it may trip the breaker open (or
// re-open it from a half-open probe, restarting the cooldown).
func (b *Breaker) Failure() { b.b.failure() }

// State returns the current breaker state.
func (b *Breaker) State() BreakerState { return b.b.State() }
