package agent

import (
	"errors"
	"testing"
	"time"
)

// TestDialTimeoutCombinations covers the full matrix of the deprecated
// NOCConfig.DialTimeout against the canonical Timeouts.Dial: unset/unset
// takes the default, either alone wins, both-and-equal is accepted, and
// both-and-different is a typed *ConfigError instead of a silent
// preference.
func TestDialTimeoutCombinations(t *testing.T) {
	pm := twoLinkPM(t)
	base := func() NOCConfig {
		return NOCConfig{
			PM:       pm,
			Monitors: map[string]string{"a": "127.0.0.1:1", "b": "127.0.0.1:1"},
			SourceOf: sourceAB(pm),
		}
	}
	cases := []struct {
		name      string
		legacy    time.Duration // DialTimeout
		canonical time.Duration // Timeouts.Dial
		wantDial  time.Duration // 0 means "expect the default"
		wantErr   bool
	}{
		{name: "neither set takes the default", wantDial: DefaultTimeouts().Dial},
		{name: "only deprecated DialTimeout", legacy: 123 * time.Millisecond, wantDial: 123 * time.Millisecond},
		{name: "only Timeouts.Dial", canonical: 456 * time.Millisecond, wantDial: 456 * time.Millisecond},
		{name: "both set and equal", legacy: 789 * time.Millisecond, canonical: 789 * time.Millisecond, wantDial: 789 * time.Millisecond},
		{name: "both set and different", legacy: 123 * time.Millisecond, canonical: 456 * time.Millisecond, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			cfg.DialTimeout = tc.legacy
			cfg.Timeouts.Dial = tc.canonical
			noc, err := NewNOC(cfg)
			if tc.wantErr {
				if err == nil {
					t.Fatal("conflicting config accepted")
				}
				var ce *ConfigError
				if !errors.As(err, &ce) {
					t.Fatalf("err = %v (%T), want *ConfigError", err, err)
				}
				if ce.Field != "DialTimeout" {
					t.Fatalf("ConfigError.Field = %q, want DialTimeout", ce.Field)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, st := range noc.state {
				if st.sess.timeouts.Dial != tc.wantDial {
					t.Fatalf("Timeouts.Dial = %v, want %v", st.sess.timeouts.Dial, tc.wantDial)
				}
			}
		})
	}
}
