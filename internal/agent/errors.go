package agent

import (
	"errors"
	"fmt"
	"strings"
)

// Sentinel errors for the collection subsystem. Every error returned by
// the agent package wraps one of these (possibly through a
// *CollectionError), so callers dispatch with errors.Is/errors.As instead
// of string matching.
var (
	// ErrMonitorUnreachable marks a monitor the NOC could not collect from
	// this epoch: dial failures, mid-stream resets, protocol garbage and
	// I/O timeouts all wrap it once the retry budget is exhausted.
	ErrMonitorUnreachable = errors.New("agent: monitor unreachable")
	// ErrUnknownMonitor marks a path whose SourceOf monitor has no
	// registered address — a wiring bug, reported for the whole epoch.
	ErrUnknownMonitor = errors.New("agent: unknown monitor")
	// ErrPathOutOfRange marks a selected path index outside the path
	// matrix — a wiring bug, reported for the whole epoch.
	ErrPathOutOfRange = errors.New("agent: path out of range")
	// ErrCircuitOpen marks a monitor skipped because its circuit breaker
	// is open (cooling down after repeated failures).
	ErrCircuitOpen = errors.New("agent: circuit open")
	// ErrWatermark marks paths whose monitor did not answer before the
	// streaming collector's watermark elapsed; the epoch sealed without
	// them (their results, if they ever arrive, fold into a later epoch as
	// LateMeasurements). Streaming outcomes wrap both this and
	// ErrMonitorUnreachable so legacy error dispatch keeps working.
	ErrWatermark = errors.New("agent: watermark elapsed")
	// ErrBackpressure marks probe batches the streaming collector dropped
	// because the owning shard's send queue was full — the collection plane
	// sheds load instead of stalling the epoch loop.
	ErrBackpressure = errors.New("agent: shard backpressure")
)

// ConfigError reports an invalid NOCConfig combination detected by
// NewNOC — currently the deprecated DialTimeout conflicting with
// Timeouts.Dial. Match with errors.As:
//
//	var ce *agent.ConfigError
//	if errors.As(err, &ce) { ... ce.Field ... }
type ConfigError struct {
	// Field names the offending NOCConfig field.
	Field string
	// Reason explains the conflict, with both values spelled out.
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("agent: invalid config %s: %s", e.Field, e.Reason)
}

// MonitorOutcome records how collection went for one monitor in one epoch.
type MonitorOutcome struct {
	// Monitor is the monitor's registered name.
	Monitor string
	// Paths are the selected paths assigned to this monitor this epoch.
	Paths []int
	// Attempts counts the connect+exchange attempts actually performed
	// (zero when the breaker was open before the first attempt).
	Attempts int
	// Err is the last error observed, wrapping ErrMonitorUnreachable or
	// ErrCircuitOpen; nil for a successful monitor.
	Err error
	// Breaker is the monitor's breaker state after the epoch.
	Breaker BreakerState
}

// CollectionError reports a partially failed epoch: some monitors did not
// deliver measurements. CollectEpoch returns it alongside the measurements
// it did collect, so callers degrade instead of dropping the epoch.
//
// Unwrap exposes every per-monitor error, so errors.Is(err,
// agent.ErrMonitorUnreachable) and errors.Is(err, agent.ErrCircuitOpen)
// work through a *CollectionError.
type CollectionError struct {
	// Epoch is the epoch being collected.
	Epoch int
	// Outcomes holds one entry per failed monitor, sorted by monitor name.
	Outcomes []MonitorOutcome
}

// Error implements error.
func (e *CollectionError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "agent: epoch %d: %d monitor(s) failed:", e.Epoch, len(e.Outcomes))
	for _, o := range e.Outcomes {
		fmt.Fprintf(&b, " %s(paths=%d attempts=%d: %v)", o.Monitor, len(o.Paths), o.Attempts, o.Err)
	}
	return b.String()
}

// Unwrap returns every failed monitor's error, enabling errors.Is/As
// through the collection error.
func (e *CollectionError) Unwrap() []error {
	errs := make([]error, 0, len(e.Outcomes))
	for _, o := range e.Outcomes {
		if o.Err != nil {
			errs = append(errs, o.Err)
		}
	}
	return errs
}

// FailedMonitors returns the names of the monitors that delivered nothing
// this epoch, in sorted order.
func (e *CollectionError) FailedMonitors() []string {
	names := make([]string, len(e.Outcomes))
	for i, o := range e.Outcomes {
		names[i] = o.Monitor
	}
	return names
}

// LostPaths returns the selected paths that produced no measurement this
// epoch, across all failed monitors.
func (e *CollectionError) LostPaths() []int {
	var out []int
	for _, o := range e.Outcomes {
		out = append(out, o.Paths...)
	}
	return out
}
