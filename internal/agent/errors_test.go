package agent

import (
	"errors"
	"fmt"
	"testing"
)

// sentinels is the complete set the collection plane wraps.
var sentinels = []struct {
	name string
	err  error
}{
	{"ErrMonitorUnreachable", ErrMonitorUnreachable},
	{"ErrUnknownMonitor", ErrUnknownMonitor},
	{"ErrPathOutOfRange", ErrPathOutOfRange},
	{"ErrCircuitOpen", ErrCircuitOpen},
}

// TestCollectionErrorUnwrapMultiError pins the Unwrap() []error contract:
// errors.Is reaches every per-monitor chain through the aggregate, for
// each of the four sentinels, including sentinels buried one fmt.Errorf
// layer deep inside an outcome.
func TestCollectionErrorUnwrapMultiError(t *testing.T) {
	for _, s := range sentinels {
		t.Run(s.name, func(t *testing.T) {
			cerr := &CollectionError{
				Epoch: 3,
				Outcomes: []MonitorOutcome{
					{Monitor: "a", Err: fmt.Errorf("%w: monitor a details", s.err)},
					{Monitor: "b", Err: fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", errors.New("unrelated")))},
				},
			}
			if !errors.Is(cerr, s.err) {
				t.Fatalf("errors.Is(cerr, %s) = false", s.name)
			}
			// The aggregate must not claim sentinels it does not carry.
			for _, other := range sentinels {
				if other.err == s.err {
					continue
				}
				if errors.Is(cerr, other.err) {
					t.Fatalf("errors.Is(cerr, %s) = true, only %s is wrapped", other.name, s.name)
				}
			}
		})
	}
}

// TestCollectionErrorThroughFmtErrorf walks the aggregate itself wrapped
// inside fmt.Errorf chains: both errors.Is (sentinel at the leaves) and
// errors.As (*CollectionError in the middle) must traverse.
func TestCollectionErrorThroughFmtErrorf(t *testing.T) {
	cerr := &CollectionError{
		Epoch: 7,
		Outcomes: []MonitorOutcome{
			{Monitor: "m1", Err: fmt.Errorf("%w: m1 gone", ErrMonitorUnreachable)},
			{Monitor: "m2", Err: fmt.Errorf("wrapped: %w", fmt.Errorf("%w: m2 cooling", ErrCircuitOpen))},
		},
	}
	wrapped := fmt.Errorf("epoch step: %w", fmt.Errorf("collect: %w", cerr))

	if !errors.Is(wrapped, ErrMonitorUnreachable) {
		t.Fatal("ErrMonitorUnreachable not reachable through the fmt.Errorf chain")
	}
	if !errors.Is(wrapped, ErrCircuitOpen) {
		t.Fatal("ErrCircuitOpen not reachable through a doubly wrapped outcome")
	}
	if errors.Is(wrapped, ErrPathOutOfRange) || errors.Is(wrapped, ErrUnknownMonitor) {
		t.Fatal("wiring-bug sentinels matched without being wrapped")
	}

	var got *CollectionError
	if !errors.As(wrapped, &got) {
		t.Fatal("errors.As did not recover the *CollectionError")
	}
	if got.Epoch != 7 || len(got.Outcomes) != 2 {
		t.Fatalf("recovered %+v", got)
	}
}

// TestCollectionErrorUnwrapSkipsNilOutcomes pins that outcomes recorded
// without an error (possible when a caller assembles outcomes by hand)
// do not inject nil into the unwrap list, which would panic errors.Is.
func TestCollectionErrorUnwrapSkipsNilOutcomes(t *testing.T) {
	cerr := &CollectionError{
		Outcomes: []MonitorOutcome{
			{Monitor: "ok", Err: nil},
			{Monitor: "bad", Err: fmt.Errorf("%w: bad", ErrMonitorUnreachable)},
		},
	}
	errs := cerr.Unwrap()
	if len(errs) != 1 {
		t.Fatalf("Unwrap returned %d errors, want 1", len(errs))
	}
	if !errors.Is(cerr, ErrMonitorUnreachable) {
		t.Fatal("sentinel lost")
	}
}

// TestCollectionErrorAllSentinelsAtOnce exercises the multi-error fanout:
// one aggregate carrying all four sentinels answers errors.Is for each.
func TestCollectionErrorAllSentinelsAtOnce(t *testing.T) {
	outcomes := make([]MonitorOutcome, len(sentinels))
	for i, s := range sentinels {
		outcomes[i] = MonitorOutcome{
			Monitor: fmt.Sprintf("m%d", i),
			Err:     fmt.Errorf("layer: %w", fmt.Errorf("%w: detail", s.err)),
		}
	}
	cerr := &CollectionError{Outcomes: outcomes}
	for _, s := range sentinels {
		if !errors.Is(cerr, s.err) {
			t.Fatalf("errors.Is(cerr, %s) = false", s.name)
		}
	}
}

func TestConfigErrorMessage(t *testing.T) {
	err := &ConfigError{Field: "DialTimeout", Reason: "conflict"}
	if got := err.Error(); got != "agent: invalid config DialTimeout: conflict" {
		t.Fatalf("Error() = %q", got)
	}
}
