package agent

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Deterministic fault injection for the collection plane. Faults are
// scripted: the n-th dial (FaultyDialer) or the n-th accepted connection
// (FaultyListener) misbehaves exactly as the script's n-th entry says, and
// everything beyond the script is clean. Tests drive refused connections,
// mid-stream resets, delays and garbage frames without timing races.

// DialFault scripts one NOC-side dial attempt.
type DialFault struct {
	// Refuse fails the dial outright (the monitor looks down).
	Refuse bool
	// Delay sleeps (context-aware) before the dial proceeds.
	Delay time.Duration
}

// errDialRefused is what a scripted refusal returns, wrapped by the
// session's dial error.
var errDialRefused = errors.New("agent: fault: connection refused")

// FaultyDialer wraps a DialFunc with a per-dial fault script. Dial i
// (0-based, in call order across all monitors) applies script[i]; dials
// beyond the script pass through cleanly. Safe for concurrent use.
type FaultyDialer struct {
	inner DialFunc

	mu     sync.Mutex
	script []DialFault
	dials  int
}

// NewFaultyDialer scripts faults over inner (nil inner means the default
// net.Dialer).
func NewFaultyDialer(inner DialFunc, script ...DialFault) *FaultyDialer {
	if inner == nil {
		inner = (&net.Dialer{}).DialContext
	}
	return &FaultyDialer{inner: inner, script: script}
}

// DialContext implements DialFunc.
func (d *FaultyDialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	d.mu.Lock()
	var f DialFault
	if d.dials < len(d.script) {
		f = d.script[d.dials]
	}
	i := d.dials
	d.dials++
	d.mu.Unlock()

	if f.Delay > 0 && !sleepCtx(ctx, f.Delay) {
		return nil, ctx.Err()
	}
	if f.Refuse {
		return nil, fmt.Errorf("%w (dial %d to %s)", errDialRefused, i, addr)
	}
	return d.inner(ctx, network, addr)
}

// Dials returns how many dial attempts have been made.
func (d *FaultyDialer) Dials() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials
}

// ConnFault scripts one monitor-side accepted connection.
type ConnFault struct {
	// Reject closes the connection immediately after accept: the NOC's
	// dial succeeds but the first exchange hits a reset.
	Reject bool
	// AcceptDelay sleeps before the connection is handed to the server.
	AcceptDelay time.Duration
	// ServeReplies, when > 0, kills the connection after that many replies
	// — a monitor dying mid-epoch.
	ServeReplies int
	// GarbageReplies replaces the first n replies with a non-protocol
	// frame, exercising the NOC's decode path.
	GarbageReplies int
}

// FaultyListener wraps a net.Listener with a per-connection fault script:
// accepted connection i (0-based) behaves as script[i] says, later
// connections are clean. Pass it to StartMonitorOn. Safe for concurrent
// use.
type FaultyListener struct {
	net.Listener

	mu       sync.Mutex
	script   []ConnFault
	accepted int
}

// NewFaultyListener scripts faults over an existing listener.
func NewFaultyListener(ln net.Listener, script ...ConnFault) *FaultyListener {
	return &FaultyListener{Listener: ln, script: script}
}

// Accept implements net.Listener.
func (l *FaultyListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	var f ConnFault
	if l.accepted < len(l.script) {
		f = l.script[l.accepted]
	}
	l.accepted++
	l.mu.Unlock()

	if f.AcceptDelay > 0 {
		time.Sleep(f.AcceptDelay)
	}
	if f.Reject {
		conn.Close()
		return conn, nil // the server's first read fails and drops it
	}
	if f.ServeReplies > 0 || f.GarbageReplies > 0 {
		return &faultConn{Conn: conn, serveReplies: f.ServeReplies, garbage: f.GarbageReplies}, nil
	}
	return conn, nil
}

// Accepted returns how many connections have been accepted.
func (l *FaultyListener) Accepted() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.accepted
}

// faultConn corrupts the server's reply stream. The monitor flushes once
// per reply, so one Write call corresponds to one protocol frame.
type faultConn struct {
	net.Conn

	mu           sync.Mutex
	serveReplies int // kill the connection after this many replies (0 = unlimited)
	garbage      int // replace the first n replies with garbage frames
	writes       int
}

func (c *faultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.serveReplies > 0 && c.writes >= c.serveReplies {
		c.mu.Unlock()
		c.Conn.Close()
		return 0, errors.New("agent: fault: connection reset mid-stream")
	}
	c.writes++
	garbage := false
	if c.garbage > 0 {
		c.garbage--
		garbage = true
	}
	c.mu.Unlock()
	if garbage {
		if _, err := c.Conn.Write([]byte("!!not-a-protocol-frame!!\n")); err != nil {
			return 0, err
		}
		// Report p as written so the monitor keeps serving; only the NOC
		// sees the corruption.
		return len(p), nil
	}
	return c.Conn.Write(p)
}
