package agent

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"robusttomo/internal/graph"
	"robusttomo/internal/routing"
	"robusttomo/internal/stats"
	"robusttomo/internal/tomo"
)

// fastRetry keeps fault-injection tests quick and deterministic.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		Multiplier:  2,
		Jitter:      -1, // no jitter: exact backoff, still bounded
	}
}

// twoLinkPM builds a 2-path/2-link matrix: path 0 over link 0 (source
// monitor "a"), path 1 over link 1 (source monitor "b").
func twoLinkPM(t *testing.T) *tomo.PathMatrix {
	t.Helper()
	paths := []routing.Path{
		{Src: 0, Dst: 1, Edges: []graph.EdgeID{0}},
		{Src: 2, Dst: 3, Edges: []graph.EdgeID{1}},
	}
	pm, err := tomo.NewPathMatrix(paths, 2)
	if err != nil {
		t.Fatal(err)
	}
	return pm
}

func sourceAB(pm *tomo.PathMatrix) func(int) string {
	return func(p int) string {
		if pm.Path(p).Src == 0 {
			return "a"
		}
		return "b"
	}
}

// faultyMonitor starts one monitor behind a scripted FaultyListener.
func faultyMonitor(t *testing.T, name string, oracle LinkOracle, script ...ConnFault) (*Monitor, *FaultyListener) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFaultyListener(ln, script...)
	m, err := StartMonitorOn(name, fl, oracle)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m, fl
}

func TestBreakerStateMachine(t *testing.T) {
	clock := time.Unix(0, 0)
	b := newBreaker(BreakerPolicy{FailureThreshold: 2, Cooldown: time.Minute})
	b.now = func() time.Time { return clock }

	if got := b.State(); got != BreakerClosed {
		t.Fatalf("initial state %v", got)
	}
	if !b.allow() {
		t.Fatal("closed breaker rejected an attempt")
	}
	b.failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 1 failure = %v", got)
	}
	b.failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold failures = %v", got)
	}
	if b.allow() {
		t.Fatal("open breaker admitted an attempt before cooldown")
	}

	clock = clock.Add(time.Minute)
	if !b.allow() {
		t.Fatal("cooldown elapsed but no half-open probe admitted")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after cooldown allow = %v", got)
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe fails: back to open, cooldown restarts.
	b.failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed half-open probe = %v", got)
	}
	if b.allow() {
		t.Fatal("re-opened breaker admitted an attempt immediately")
	}

	// Second probe succeeds: closed, and failures must re-accumulate from
	// scratch.
	clock = clock.Add(time.Minute)
	if !b.allow() {
		t.Fatal("second half-open probe rejected")
	}
	b.success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v", got)
	}
	b.failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("single failure after recovery tripped the breaker: %v", got)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(BreakerPolicy{FailureThreshold: 1, Cooldown: time.Hour, Disabled: true})
	for i := 0; i < 5; i++ {
		if !b.allow() {
			t.Fatal("disabled breaker rejected an attempt")
		}
		b.failure()
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("disabled breaker state = %v", got)
	}
}

func TestRetryBackoffBoundedAndDeterministic(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Multiplier: 2, Jitter: 0.5}.withDefaults()
	r1 := stats.NewRNG(42, 7)
	r2 := stats.NewRNG(42, 7)
	prevCeil := time.Duration(0)
	for attempt := 1; attempt <= 8; attempt++ {
		d1 := p.backoff(attempt, r1)
		d2 := p.backoff(attempt, r2)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, d1, d2)
		}
		ceil := time.Duration(math.Min(
			float64(p.BaseBackoff)*math.Pow(p.Multiplier, float64(attempt-1)),
			float64(p.MaxBackoff)))
		if d1 > ceil {
			t.Fatalf("attempt %d: backoff %v above ceiling %v", attempt, d1, ceil)
		}
		if d1 < ceil/2 {
			t.Fatalf("attempt %d: backoff %v below jitter floor %v", attempt, d1, ceil/2)
		}
		if ceil < prevCeil {
			t.Fatalf("ceiling decreased: %v after %v", ceil, prevCeil)
		}
		prevCeil = ceil
	}
	// No-jitter policies are exact.
	exact := fastRetry(3)
	if d := exact.withDefaults().backoff(2, nil); d != 2*time.Millisecond {
		t.Fatalf("no-jitter backoff(2) = %v, want 2ms", d)
	}
}

func TestCollectEpochSentinelErrors(t *testing.T) {
	pm := twoLinkPM(t)
	oracle, err := NewEpochOracle([]float64{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ma, _ := faultyMonitor(t, "a", oracle)
	noc, err := NewNOC(NOCConfig{
		PM:       pm,
		Monitors: map[string]string{"a": ma.Addr(), "b": "127.0.0.1:1"}, // b is dead
		SourceOf: sourceAB(pm),
		Retry:    fastRetry(2),
		Timeouts: Timeouts{Dial: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer noc.Close()
	ctx := context.Background()

	if _, err := noc.CollectEpoch(ctx, 0, []int{99}); !errors.Is(err, ErrPathOutOfRange) {
		t.Fatalf("out-of-range path: err = %v, want ErrPathOutOfRange", err)
	}

	ghostNoc, err := NewNOC(NOCConfig{
		PM:       pm,
		Monitors: map[string]string{"a": ma.Addr()},
		SourceOf: func(int) string { return "ghost" },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ghostNoc.CollectEpoch(ctx, 0, []int{0}); !errors.Is(err, ErrUnknownMonitor) {
		t.Fatalf("unknown monitor: err = %v, want ErrUnknownMonitor", err)
	}

	// Dead monitor b: partial epoch, typed error, a's data intact.
	ms, err := noc.CollectEpoch(ctx, 0, []int{0, 1})
	if err == nil {
		t.Fatal("dead monitor produced no error")
	}
	if !errors.Is(err, ErrMonitorUnreachable) {
		t.Fatalf("err = %v, want ErrMonitorUnreachable in chain", err)
	}
	var cerr *CollectionError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %T, want *CollectionError", err)
	}
	if got := cerr.FailedMonitors(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("FailedMonitors = %v", got)
	}
	if got := cerr.LostPaths(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("LostPaths = %v", got)
	}
	if cerr.Outcomes[0].Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", cerr.Outcomes[0].Attempts)
	}
	if len(ms) != 1 || ms[0].PathID != 0 || !ms[0].OK || ms[0].Value != 1 {
		t.Fatalf("surviving measurements = %+v", ms)
	}

	// Force the breaker open and check the circuit sentinel surfaces.
	openNoc, err := NewNOC(NOCConfig{
		PM:       pm,
		Monitors: map[string]string{"a": ma.Addr(), "b": "127.0.0.1:1"},
		SourceOf: sourceAB(pm),
		Retry:    fastRetry(1),
		Breaker:  BreakerPolicy{FailureThreshold: 1, Cooldown: time.Hour},
		Timeouts: Timeouts{Dial: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := openNoc.CollectEpoch(ctx, 0, []int{1}); !errors.Is(err, ErrMonitorUnreachable) {
		t.Fatalf("first epoch: %v", err)
	}
	if _, err := openNoc.CollectEpoch(ctx, 1, []int{1}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second epoch: err = %v, want ErrCircuitOpen", err)
	}
}

func TestCollectEpochOneOfThreeDead(t *testing.T) {
	// Three monitors, three paths; monitor "m1" is killed before the
	// epoch. CollectEpoch must return the other monitors' measurements and
	// a typed *CollectionError, not a bare failure.
	paths := []routing.Path{
		{Src: 0, Dst: 9, Edges: []graph.EdgeID{0}},
		{Src: 1, Dst: 9, Edges: []graph.EdgeID{1}},
		{Src: 2, Dst: 9, Edges: []graph.EdgeID{2}},
	}
	pm, err := tomo.NewPathMatrix(paths, 3)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewEpochOracle([]float64{1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"m0", "m1", "m2"}
	addrs := map[string]string{}
	mons := map[string]*Monitor{}
	for _, name := range names {
		m, err := StartMonitor(name, "127.0.0.1:0", oracle)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		addrs[name] = m.Addr()
		mons[name] = m
	}
	noc, err := NewNOC(NOCConfig{
		PM:       pm,
		Monitors: addrs,
		SourceOf: func(p int) string { return names[pm.Path(p).Src] },
		Retry:    fastRetry(2),
		Timeouts: Timeouts{Dial: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer noc.Close()

	if err := mons["m1"].Close(); err != nil {
		t.Fatal(err)
	}

	ms, err := noc.CollectEpoch(context.Background(), 0, []int{0, 1, 2})
	var cerr *CollectionError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v (%T), want *CollectionError", err, err)
	}
	if got := cerr.FailedMonitors(); len(got) != 1 || got[0] != "m1" {
		t.Fatalf("FailedMonitors = %v", got)
	}
	if len(ms) != 2 {
		t.Fatalf("measurements = %+v, want paths 0 and 2", ms)
	}
	want := map[int]float64{0: 1, 2: 3}
	for _, m := range ms {
		if !m.OK || math.Abs(m.Value-want[m.PathID]) > 1e-9 {
			t.Fatalf("measurement %+v", m)
		}
	}
}

func TestRetryRecoversFromRefusedDials(t *testing.T) {
	pm := twoLinkPM(t)
	oracle, _ := NewEpochOracle([]float64{1, 2}, nil)
	ma, _ := faultyMonitor(t, "a", oracle)
	mb, _ := faultyMonitor(t, "b", oracle)

	// First two dials are refused by script; the third goes through. With
	// MaxAttempts 3 the epoch must succeed in full.
	dialer := NewFaultyDialer(nil, DialFault{Refuse: true}, DialFault{Refuse: true})
	noc, err := NewNOC(NOCConfig{
		PM:       pm,
		Monitors: map[string]string{"a": ma.Addr(), "b": mb.Addr()},
		SourceOf: sourceAB(pm),
		Retry:    fastRetry(3),
		Dial:     dialer.DialContext,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer noc.Close()

	ms, err := noc.CollectEpoch(context.Background(), 0, []int{0})
	if err != nil {
		t.Fatalf("epoch failed despite retry budget: %v", err)
	}
	if len(ms) != 1 || !ms[0].OK || ms[0].Value != 1 {
		t.Fatalf("measurements = %+v", ms)
	}
	if got := dialer.Dials(); got != 3 {
		t.Fatalf("dials = %d, want 3 (2 refused + 1 clean)", got)
	}

	// Bounded attempts: with the script refusing more than the budget, the
	// epoch degrades after exactly MaxAttempts dials.
	dialer2 := NewFaultyDialer(nil,
		DialFault{Refuse: true}, DialFault{Refuse: true}, DialFault{Refuse: true},
		DialFault{Refuse: true}, DialFault{Refuse: true})
	noc2, err := NewNOC(NOCConfig{
		PM:       pm,
		Monitors: map[string]string{"a": ma.Addr(), "b": mb.Addr()},
		SourceOf: sourceAB(pm),
		Retry:    fastRetry(2),
		Dial:     dialer2.DialContext,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer noc2.Close()
	_, err = noc2.CollectEpoch(context.Background(), 0, []int{0})
	var cerr *CollectionError
	if !errors.As(err, &cerr) || cerr.Outcomes[0].Attempts != 2 {
		t.Fatalf("err = %v, want CollectionError with 2 attempts", err)
	}
	if got := dialer2.Dials(); got != 2 {
		t.Fatalf("dials = %d, want exactly MaxAttempts", got)
	}
}

func TestDeadMonitorMidEpochRecovers(t *testing.T) {
	// The monitor accepts, answers one probe, then resets mid-epoch; the
	// NOC's retry redials and the clean second connection completes the
	// epoch.
	paths := []routing.Path{
		{Src: 0, Dst: 9, Edges: []graph.EdgeID{0}},
		{Src: 0, Dst: 9, Edges: []graph.EdgeID{1}},
		{Src: 0, Dst: 9, Edges: []graph.EdgeID{2}},
	}
	pm, err := tomo.NewPathMatrix(paths, 3)
	if err != nil {
		t.Fatal(err)
	}
	oracle, _ := NewEpochOracle([]float64{1, 2, 3}, nil)
	ma, fl := faultyMonitor(t, "a", oracle, ConnFault{ServeReplies: 1})
	noc, err := NewNOC(NOCConfig{
		PM:       pm,
		Monitors: map[string]string{"a": ma.Addr()},
		SourceOf: func(int) string { return "a" },
		Retry:    fastRetry(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer noc.Close()

	ms, err := noc.CollectEpoch(context.Background(), 0, []int{0, 1, 2})
	if err != nil {
		t.Fatalf("epoch failed: %v", err)
	}
	if len(ms) != 3 {
		t.Fatalf("measurements = %+v", ms)
	}
	for i, m := range ms {
		if !m.OK || math.Abs(m.Value-float64(i+1)) > 1e-9 {
			t.Fatalf("measurement %+v", m)
		}
	}
	if got := fl.Accepted(); got != 2 {
		t.Fatalf("connections = %d, want 2 (reset + retry)", got)
	}
}

func TestGarbageFramesAreRetried(t *testing.T) {
	pm := twoLinkPM(t)
	oracle, _ := NewEpochOracle([]float64{5, 6}, nil)
	ma, fl := faultyMonitor(t, "a", oracle, ConnFault{GarbageReplies: 1})
	noc, err := NewNOC(NOCConfig{
		PM:       pm,
		Monitors: map[string]string{"a": ma.Addr(), "b": ma.Addr()},
		SourceOf: sourceAB(pm),
		Retry:    fastRetry(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer noc.Close()

	ms, err := noc.CollectEpoch(context.Background(), 0, []int{0})
	if err != nil {
		t.Fatalf("epoch failed after garbage frame: %v", err)
	}
	if len(ms) != 1 || !ms[0].OK || ms[0].Value != 5 {
		t.Fatalf("measurements = %+v", ms)
	}
	if got := fl.Accepted(); got != 2 {
		t.Fatalf("connections = %d, want 2 (garbage + clean retry)", got)
	}
}

// TestBreakerLifecycle walks the acceptance scenario end to end: the
// breaker demonstrably opens after the configured threshold of failed
// epochs, fast-fails with ErrCircuitOpen while open, and closes again
// after the monitor restarts on the same address and the cooldown elapses.
func TestBreakerLifecycle(t *testing.T) {
	pm := twoLinkPM(t)
	oracle, _ := NewEpochOracle([]float64{1, 2}, nil)
	ma, _ := faultyMonitor(t, "a", oracle)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mb, err := StartMonitorOn("b", ln, oracle)
	if err != nil {
		t.Fatal(err)
	}
	addrB := mb.Addr()

	noc, err := NewNOC(NOCConfig{
		PM:       pm,
		Monitors: map[string]string{"a": ma.Addr(), "b": addrB},
		SourceOf: sourceAB(pm),
		Retry:    fastRetry(1), // one attempt per epoch: exact failure counting
		Breaker:  BreakerPolicy{FailureThreshold: 2, Cooldown: time.Minute},
		Timeouts: Timeouts{Dial: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer noc.Close()
	clock := time.Unix(1000, 0)
	var clockMu sync.Mutex
	noc.setClock(func() time.Time { clockMu.Lock(); defer clockMu.Unlock(); return clock })
	advance := func(d time.Duration) { clockMu.Lock(); clock = clock.Add(d); clockMu.Unlock() }
	ctx := context.Background()

	// Healthy epoch first: breaker closed, persistent session established.
	if ms, err := noc.CollectEpoch(ctx, 0, []int{0, 1}); err != nil || len(ms) != 2 {
		t.Fatalf("healthy epoch: ms=%v err=%v", ms, err)
	}
	if st := noc.BreakerStates()["b"]; st != BreakerClosed {
		t.Fatalf("breaker after healthy epoch = %v", st)
	}

	// Kill b. Two epochs of failures trip the breaker.
	if err := mb.Close(); err != nil {
		t.Fatal(err)
	}
	for e := 1; e <= 2; e++ {
		_, err := noc.CollectEpoch(ctx, e, []int{0, 1})
		if !errors.Is(err, ErrMonitorUnreachable) {
			t.Fatalf("epoch %d: err = %v", e, err)
		}
	}
	if st := noc.BreakerStates()["b"]; st != BreakerOpen {
		t.Fatalf("breaker after %d failures = %v, want open", 2, st)
	}

	// While open: fast-fail with ErrCircuitOpen, zero attempts burned.
	_, err = noc.CollectEpoch(ctx, 3, []int{0, 1})
	var cerr *CollectionError
	if !errors.As(err, &cerr) || !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open-breaker epoch: err = %v, want ErrCircuitOpen", err)
	}
	if cerr.Outcomes[0].Attempts != 0 {
		t.Fatalf("open-breaker epoch burned %d attempts", cerr.Outcomes[0].Attempts)
	}

	// Restart the monitor on the same address, elapse the cooldown: the
	// half-open probe succeeds and the breaker closes.
	ln2, err := net.Listen("tcp", addrB)
	if err != nil {
		t.Fatalf("restart on %s: %v", addrB, err)
	}
	mb2, err := StartMonitorOn("b", ln2, oracle)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mb2.Close() })
	advance(time.Minute)

	ms, err := noc.CollectEpoch(ctx, 4, []int{0, 1})
	if err != nil {
		t.Fatalf("post-restart epoch: %v", err)
	}
	if len(ms) != 2 || !ms[1].OK || ms[1].Value != 2 {
		t.Fatalf("post-restart measurements = %+v", ms)
	}
	if st := noc.BreakerStates()["b"]; st != BreakerClosed {
		t.Fatalf("breaker after recovery = %v, want closed", st)
	}
}

func TestFailFastDiscardsEpoch(t *testing.T) {
	pm := twoLinkPM(t)
	oracle, _ := NewEpochOracle([]float64{1, 2}, nil)
	ma, _ := faultyMonitor(t, "a", oracle)
	noc, err := NewNOC(NOCConfig{
		PM:       pm,
		Monitors: map[string]string{"a": ma.Addr(), "b": "127.0.0.1:1"},
		SourceOf: sourceAB(pm),
		Retry:    fastRetry(1),
		Timeouts: Timeouts{Dial: 200 * time.Millisecond},
		FailFast: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer noc.Close()
	ms, err := noc.CollectEpoch(context.Background(), 0, []int{0, 1})
	if err == nil {
		t.Fatal("fail-fast epoch succeeded with a dead monitor")
	}
	if ms != nil {
		t.Fatalf("fail-fast returned partial measurements: %+v", ms)
	}
	if !errors.Is(err, ErrMonitorUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeprecatedDialTimeoutMapsToTimeouts(t *testing.T) {
	pm := twoLinkPM(t)
	noc, err := NewNOC(NOCConfig{
		PM:          pm,
		Monitors:    map[string]string{"a": "127.0.0.1:1", "b": "127.0.0.1:1"},
		SourceOf:    sourceAB(pm),
		DialTimeout: 123 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range noc.state {
		if st.sess.timeouts.Dial != 123*time.Millisecond {
			t.Fatalf("Timeouts.Dial = %v, want the deprecated DialTimeout", st.sess.timeouts.Dial)
		}
	}
	// Setting both to different values is a config conflict; see
	// TestDialTimeoutCombinations for the full matrix.
	_, err = NewNOC(NOCConfig{
		PM:          pm,
		Monitors:    map[string]string{"a": "127.0.0.1:1", "b": "127.0.0.1:1"},
		SourceOf:    sourceAB(pm),
		DialTimeout: 123 * time.Millisecond,
		Timeouts:    Timeouts{Dial: 456 * time.Millisecond},
	})
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("conflicting timeouts: err = %v, want *ConfigError", err)
	}
}

func TestPersistentSessionReused(t *testing.T) {
	pm := twoLinkPM(t)
	oracle, _ := NewEpochOracle([]float64{1, 2}, nil)
	ma, fl := faultyMonitor(t, "a", oracle)
	noc, err := NewNOC(NOCConfig{
		PM:       pm,
		Monitors: map[string]string{"a": ma.Addr(), "b": ma.Addr()},
		SourceOf: sourceAB(pm),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer noc.Close()
	ctx := context.Background()
	for epoch := 0; epoch < 5; epoch++ {
		if _, err := noc.CollectEpoch(ctx, epoch, []int{0}); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
	}
	if got := fl.Accepted(); got != 1 {
		t.Fatalf("connections for 5 epochs = %d, want 1 persistent session", got)
	}
}

func TestCollectEpochConcurrentFaulty(t *testing.T) {
	// Concurrent epochs over a monitor that resets and garbles early
	// connections: every epoch must end in either full data or a typed
	// *CollectionError, with correct values on the OK rows. Run with -race
	// in CI.
	paths := []routing.Path{
		{Src: 0, Dst: 9, Edges: []graph.EdgeID{0}},
		{Src: 0, Dst: 9, Edges: []graph.EdgeID{1}},
	}
	pm, err := tomo.NewPathMatrix(paths, 2)
	if err != nil {
		t.Fatal(err)
	}
	oracle, _ := NewEpochOracle([]float64{3, 4}, nil)
	ma, _ := faultyMonitor(t, "a", oracle,
		ConnFault{Reject: true},
		ConnFault{ServeReplies: 1},
		ConnFault{GarbageReplies: 1},
	)
	noc, err := NewNOC(NOCConfig{
		PM:       pm,
		Monitors: map[string]string{"a": ma.Addr()},
		SourceOf: func(int) string { return "a" },
		Retry:    fastRetry(4),
		Breaker:  BreakerPolicy{FailureThreshold: 100}, // stay closed through the scripted faults
	})
	if err != nil {
		t.Fatal(err)
	}
	defer noc.Close()

	const workers = 8
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(epoch int) {
			ms, err := noc.CollectEpoch(ctx, epoch, []int{0, 1})
			if err != nil {
				var cerr *CollectionError
				if !errors.As(err, &cerr) {
					errs <- fmt.Errorf("epoch %d: untyped error %v", epoch, err)
					return
				}
				errs <- nil
				return
			}
			for i, m := range ms {
				if !m.OK || math.Abs(m.Value-float64(i+3)) > 1e-9 {
					errs <- fmt.Errorf("epoch %d: measurement %+v", epoch, m)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
