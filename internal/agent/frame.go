package agent

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Batched multi-path probe frames: the streaming collection plane's wire
// format. One frame carries an entire path batch for one monitor and one
// epoch, so a monitor-epoch costs one syscall and one codec pass instead
// of one JSON line per path.
//
// Two encodings share the stream and may be mixed frame-by-frame:
//
//   - Binary (default): a length-prefixed frame
//
//     offset 0      magic byte 0xB5
//     offset 1      frame type (0x01 probe batch, 0x02 result batch)
//     offset 2..5   payload length, uint32 big-endian, ≤ maxFrame
//     offset 6..    payload (fixed-width big-endian fields, layouts below)
//
//   - JSON fallback (debuggability): the same batch as one JSON line,
//     type "batch" / "batchResult", read through the bounded readLine.
//
// The magic byte 0xB5 can never start a JSON line (JSON text begins with
// '{' here), so a reader distinguishes the encodings by peeking one byte.
// Every length and count is validated against what the frame can actually
// hold before any allocation, so a hostile peer cannot force the reader
// past maxFrame no matter what lengths it claims.

// Batch message types (JSON fallback encoding).
const (
	MsgBatch       MsgType = "batch"       // NOC → monitor: probe a path batch
	MsgBatchResult MsgType = "batchResult" // monitor → NOC: batch outcomes
)

// Binary frame constants.
const (
	frameMagic  = 0xB5
	frameHeader = 6 // magic + type + uint32 length

	frameTypeProbe  = 0x01
	frameTypeResult = 0x02

	// maxFrame bounds one binary frame payload (16 MiB ≈ 600k result
	// entries): far above any real batch, far below an allocation attack.
	maxFrame = 1 << 24
)

// Per-field limits of the binary layout.
const (
	maxBatchEntries = 1 << 20   // paths or results per frame
	maxLinksPerPath = 1<<16 - 1 // link count is a uint16
	maxMonitorName  = 1<<16 - 1 // name length is a uint16
	maxFieldValue   = 1<<32 - 1 // path and link IDs are uint32s
	probeEntryMin   = 4 + 2     // pathID + link count, links follow
	resultEntrySize = 4 + 1 + 8 // pathID + ok flag + float64 bits
)

// Encoding selects the wire form of batch frames.
type Encoding int

// Encodings.
const (
	// EncodingBinary is the length-prefixed binary frame codec (default).
	EncodingBinary Encoding = iota
	// EncodingJSON writes each batch as one JSON line — 5-10x slower, but
	// every frame is readable in a packet capture or a wire log.
	EncodingJSON
)

// String implements fmt.Stringer.
func (e Encoding) String() string {
	switch e {
	case EncodingBinary:
		return "binary"
	case EncodingJSON:
		return "json"
	default:
		return fmt.Sprintf("encoding(%d)", int(e))
	}
}

// ParseEncoding maps the CLI spelling onto an Encoding.
func ParseEncoding(s string) (Encoding, error) {
	switch s {
	case "binary":
		return EncodingBinary, nil
	case "json":
		return EncodingJSON, nil
	default:
		return 0, fmt.Errorf("agent: unknown encoding %q (binary, json)", s)
	}
}

// BatchPath is one path inside a probe batch.
type BatchPath struct {
	PathID int   `json:"pathId"`
	Links  []int `json:"links"`
}

// ProbeBatch asks a monitor to measure a whole path batch for one epoch in
// a single frame.
type ProbeBatch struct {
	Type  MsgType `json:"type"` // MsgBatch
	Epoch int     `json:"epoch"`
	// Monitor names the logical monitor session this batch belongs to.
	// Transports may multiplex many sessions over one TCP connection; the
	// server echoes the name back so results stay attributable.
	Monitor string      `json:"monitor,omitempty"`
	Paths   []BatchPath `json:"paths"`

	// enc records the encoding the frame arrived in, so replies match it.
	enc Encoding
}

// BatchResult is one path outcome inside a result batch. Value carries no
// omitempty for the same reason ProbeResult.Value does not: 0 is a
// legitimate measurement.
type BatchResult struct {
	PathID int     `json:"pathId"`
	OK     bool    `json:"ok"`
	Value  float64 `json:"value"`
}

// ResultBatch reports a probe batch's outcomes in a single frame.
type ResultBatch struct {
	Type    MsgType       `json:"type"` // MsgBatchResult
	Epoch   int           `json:"epoch"`
	Monitor string        `json:"monitor"`
	Results []BatchResult `json:"results"`
}

// errFrameTooLarge marks a frame rejected for claiming or needing more
// than maxFrame payload bytes.
var errFrameTooLarge = errors.New("agent: frame exceeds size bound")

// appendUint16/32/64 are the fixed-width big-endian writers.
func appendUint16(dst []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(dst, v) }
func appendUint32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }
func appendUint64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }

// EncodeProbeBatch appends b's wire form (in enc encoding) to dst and
// returns the extended slice. Binary encoding rejects fields outside the
// layout's fixed widths; JSON encoding inherits writeMsg's constraints
// (e.g. no NaN link metrics — not applicable to requests).
func EncodeProbeBatch(dst []byte, enc Encoding, b *ProbeBatch) ([]byte, error) {
	if enc == EncodingJSON {
		return appendJSONLine(dst, b)
	}
	if len(b.Paths) > maxBatchEntries {
		return dst, fmt.Errorf("agent: probe batch has %d paths (max %d)", len(b.Paths), maxBatchEntries)
	}
	if len(b.Monitor) > maxMonitorName {
		return dst, fmt.Errorf("agent: monitor name %d bytes (max %d)", len(b.Monitor), maxMonitorName)
	}
	start := len(dst)
	dst = append(dst, frameMagic, frameTypeProbe, 0, 0, 0, 0)
	dst = appendUint64(dst, uint64(int64(b.Epoch)))
	dst = appendUint16(dst, uint16(len(b.Monitor)))
	dst = append(dst, b.Monitor...)
	dst = appendUint32(dst, uint32(len(b.Paths)))
	for i := range b.Paths {
		p := &b.Paths[i]
		if p.PathID < 0 || int64(p.PathID) > maxFieldValue {
			return dst[:start], fmt.Errorf("agent: path ID %d outside uint32 wire range", p.PathID)
		}
		if len(p.Links) > maxLinksPerPath {
			return dst[:start], fmt.Errorf("agent: path %d has %d links (max %d)", p.PathID, len(p.Links), maxLinksPerPath)
		}
		dst = appendUint32(dst, uint32(p.PathID))
		dst = appendUint16(dst, uint16(len(p.Links)))
		for _, l := range p.Links {
			if l < 0 || int64(l) > maxFieldValue {
				return dst[:start], fmt.Errorf("agent: link ID %d outside uint32 wire range", l)
			}
			dst = appendUint32(dst, uint32(l))
		}
	}
	return sealFrame(dst, start)
}

// EncodeResultBatch appends b's wire form (in enc encoding) to dst. The
// binary layout carries float64 bit patterns verbatim (NaN and ±Inf
// included); the JSON fallback inherits encoding/json's rejection of
// unencodable values.
func EncodeResultBatch(dst []byte, enc Encoding, b *ResultBatch) ([]byte, error) {
	if enc == EncodingJSON {
		return appendJSONLine(dst, b)
	}
	if len(b.Results) > maxBatchEntries {
		return dst, fmt.Errorf("agent: result batch has %d results (max %d)", len(b.Results), maxBatchEntries)
	}
	if len(b.Monitor) > maxMonitorName {
		return dst, fmt.Errorf("agent: monitor name %d bytes (max %d)", len(b.Monitor), maxMonitorName)
	}
	start := len(dst)
	dst = append(dst, frameMagic, frameTypeResult, 0, 0, 0, 0)
	dst = appendUint64(dst, uint64(int64(b.Epoch)))
	dst = appendUint16(dst, uint16(len(b.Monitor)))
	dst = append(dst, b.Monitor...)
	dst = appendUint32(dst, uint32(len(b.Results)))
	for i := range b.Results {
		r := &b.Results[i]
		if r.PathID < 0 || int64(r.PathID) > maxFieldValue {
			return dst[:start], fmt.Errorf("agent: path ID %d outside uint32 wire range", r.PathID)
		}
		dst = appendUint32(dst, uint32(r.PathID))
		flag := byte(0)
		if r.OK {
			flag = 1
		}
		dst = append(dst, flag)
		dst = appendUint64(dst, math.Float64bits(r.Value))
	}
	return sealFrame(dst, start)
}

// sealFrame back-patches the payload length of the frame that started at
// start, rejecting payloads beyond maxFrame.
func sealFrame(dst []byte, start int) ([]byte, error) {
	payload := len(dst) - start - frameHeader
	if payload > maxFrame {
		return dst[:start], fmt.Errorf("%w: %d-byte payload", errFrameTooLarge, payload)
	}
	binary.BigEndian.PutUint32(dst[start+2:start+6], uint32(payload))
	return dst, nil
}

// appendJSONLine appends v as one JSON protocol line.
func appendJSONLine(dst []byte, v any) ([]byte, error) {
	blob, err := marshalMsg(v)
	if err != nil {
		return dst, err
	}
	return append(dst, blob...), nil
}

// frameDecoder walks a binary frame payload with bounds checking.
type frameDecoder struct {
	buf []byte
	off int
}

var errFrameTruncated = errors.New("agent: truncated frame")

func (d *frameDecoder) remaining() int { return len(d.buf) - d.off }

func (d *frameDecoder) uint16() (uint16, error) {
	if d.remaining() < 2 {
		return 0, errFrameTruncated
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v, nil
}

func (d *frameDecoder) uint32() (uint32, error) {
	if d.remaining() < 4 {
		return 0, errFrameTruncated
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *frameDecoder) uint64() (uint64, error) {
	if d.remaining() < 8 {
		return 0, errFrameTruncated
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *frameDecoder) byte() (byte, error) {
	if d.remaining() < 1 {
		return 0, errFrameTruncated
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *frameDecoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.remaining() < n {
		return nil, errFrameTruncated
	}
	v := d.buf[d.off : d.off+n]
	d.off += n
	return v, nil
}

// header reads the shared epoch + monitor-name prefix of both batch
// payloads.
func (d *frameDecoder) header() (epoch int, monitor string, err error) {
	e, err := d.uint64()
	if err != nil {
		return 0, "", err
	}
	nameLen, err := d.uint16()
	if err != nil {
		return 0, "", err
	}
	name, err := d.bytes(int(nameLen))
	if err != nil {
		return 0, "", err
	}
	return int(int64(e)), string(name), nil
}

// decodeProbeBatch decodes a binary probe-batch payload. Entry counts are
// validated against the bytes actually present before any allocation.
func decodeProbeBatch(payload []byte) (*ProbeBatch, error) {
	d := frameDecoder{buf: payload}
	epoch, monitor, err := d.header()
	if err != nil {
		return nil, err
	}
	count, err := d.uint32()
	if err != nil {
		return nil, err
	}
	if int64(count) > maxBatchEntries || int(count)*probeEntryMin > d.remaining() {
		return nil, fmt.Errorf("agent: probe batch claims %d paths in %d bytes", count, d.remaining())
	}
	b := &ProbeBatch{Type: MsgBatch, Epoch: epoch, Monitor: monitor, Paths: make([]BatchPath, count)}
	for i := range b.Paths {
		id, err := d.uint32()
		if err != nil {
			return nil, err
		}
		nlinks, err := d.uint16()
		if err != nil {
			return nil, err
		}
		if int(nlinks)*4 > d.remaining() {
			return nil, fmt.Errorf("agent: path entry claims %d links in %d bytes", nlinks, d.remaining())
		}
		links := make([]int, nlinks)
		for j := range links {
			l, err := d.uint32()
			if err != nil {
				return nil, err
			}
			links[j] = int(l)
		}
		b.Paths[i] = BatchPath{PathID: int(id), Links: links}
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("agent: %d trailing bytes after probe batch", d.remaining())
	}
	return b, nil
}

// decodeResultBatch decodes a binary result-batch payload.
func decodeResultBatch(payload []byte) (*ResultBatch, error) {
	d := frameDecoder{buf: payload}
	epoch, monitor, err := d.header()
	if err != nil {
		return nil, err
	}
	count, err := d.uint32()
	if err != nil {
		return nil, err
	}
	if int64(count) > maxBatchEntries || int(count)*resultEntrySize != d.remaining() {
		return nil, fmt.Errorf("agent: result batch claims %d results in %d bytes", count, d.remaining())
	}
	b := &ResultBatch{Type: MsgBatchResult, Epoch: epoch, Monitor: monitor, Results: make([]BatchResult, count)}
	for i := range b.Results {
		id, _ := d.uint32()
		flag, _ := d.byte()
		bits, _ := d.uint64()
		b.Results[i] = BatchResult{PathID: int(id), OK: flag != 0, Value: math.Float64frombits(bits)}
	}
	return b, nil
}

// readMessage reads one protocol message — a binary batch frame or a JSON
// line (legacy per-path messages and the batch fallback) — and returns the
// decoded form: *ProbeRequest, *ProbeBatch, *ResultBatch, *ProbeResult, or
// shutdownMsg. The two encodings may interleave freely on one stream.
func readMessage(r *bufio.Reader) (any, error) {
	head, err := r.Peek(1)
	if err != nil {
		return nil, err
	}
	if head[0] == frameMagic {
		return readBinaryFrame(r)
	}
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	mt, err := peekType(line)
	if err != nil {
		return nil, err
	}
	switch mt {
	case MsgProbe:
		var req ProbeRequest
		if err := unmarshalStrict(line, &req); err != nil {
			return nil, err
		}
		return &req, nil
	case MsgResult:
		var res ProbeResult
		if err := unmarshalStrict(line, &res); err != nil {
			return nil, err
		}
		return &res, nil
	case MsgBatch:
		var b ProbeBatch
		if err := unmarshalStrict(line, &b); err != nil {
			return nil, err
		}
		b.enc = EncodingJSON
		return &b, nil
	case MsgBatchResult:
		var b ResultBatch
		if err := unmarshalStrict(line, &b); err != nil {
			return nil, err
		}
		return &b, nil
	case MsgShutdown:
		return shutdownMsg{}, nil
	default:
		return nil, fmt.Errorf("agent: unknown message type %q", mt)
	}
}

// shutdownMsg is readMessage's decoded form of a MsgShutdown line.
type shutdownMsg struct{}

// readBinaryFrame reads one length-prefixed binary frame. The claimed
// payload length is checked against maxFrame before any allocation, so a
// hostile 4 GiB length prefix costs nothing.
func readBinaryFrame(r *bufio.Reader) (any, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != frameMagic {
		return nil, fmt.Errorf("agent: bad frame magic 0x%02x", hdr[0])
	}
	size := binary.BigEndian.Uint32(hdr[2:6])
	if size > maxFrame {
		return nil, fmt.Errorf("%w: claimed %d-byte payload", errFrameTooLarge, size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("agent: short frame payload: %w", err)
	}
	switch hdr[1] {
	case frameTypeProbe:
		return decodeProbeBatch(payload)
	case frameTypeResult:
		return decodeResultBatch(payload)
	default:
		return nil, fmt.Errorf("agent: unknown binary frame type 0x%02x", hdr[1])
	}
}
