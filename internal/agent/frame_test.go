package agent

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"strings"
	"testing"
)

func sampleProbeBatch() *ProbeBatch {
	return &ProbeBatch{
		Type:    MsgBatch,
		Epoch:   42,
		Monitor: "m-7",
		Paths: []BatchPath{
			{PathID: 0, Links: []int{0, 1, 2}},
			{PathID: 9, Links: nil},
			{PathID: 1 << 20, Links: []int{1<<32 - 1}},
		},
	}
}

func sampleResultBatch() *ResultBatch {
	return &ResultBatch{
		Type:    MsgBatchResult,
		Epoch:   42,
		Monitor: "m-7",
		Results: []BatchResult{
			{PathID: 0, OK: true, Value: 0}, // exact zero must survive
			{PathID: 9, OK: false, Value: 0},
			{PathID: 1 << 20, OK: true, Value: -123.456},
		},
	}
}

// TestBatchRoundTripBothEncodings drives both batch types through both
// encodings and back through the unified reader.
func TestBatchRoundTripBothEncodings(t *testing.T) {
	for _, enc := range []Encoding{EncodingBinary, EncodingJSON} {
		t.Run(enc.String(), func(t *testing.T) {
			pb := sampleProbeBatch()
			rb := sampleResultBatch()
			var wire []byte
			var err error
			if wire, err = EncodeProbeBatch(wire, enc, pb); err != nil {
				t.Fatalf("encode probe batch: %v", err)
			}
			if wire, err = EncodeResultBatch(wire, enc, rb); err != nil {
				t.Fatalf("encode result batch: %v", err)
			}

			r := bufio.NewReader(bytes.NewReader(wire))
			msg, err := readMessage(r)
			if err != nil {
				t.Fatalf("read probe batch: %v", err)
			}
			gotPB, ok := msg.(*ProbeBatch)
			if !ok {
				t.Fatalf("first frame decoded as %T", msg)
			}
			if gotPB.enc != enc {
				t.Fatalf("probe batch enc = %v, want %v", gotPB.enc, enc)
			}
			gotPB.enc = pb.enc // ignore transport bookkeeping in the compare
			// JSON omits empty link slices as null; normalize.
			for i := range gotPB.Paths {
				if len(gotPB.Paths[i].Links) == 0 {
					gotPB.Paths[i].Links = nil
				}
			}
			if !reflect.DeepEqual(gotPB, pb) {
				t.Fatalf("probe batch round trip:\n got %+v\nwant %+v", gotPB, pb)
			}

			msg, err = readMessage(r)
			if err != nil {
				t.Fatalf("read result batch: %v", err)
			}
			gotRB, ok := msg.(*ResultBatch)
			if !ok {
				t.Fatalf("second frame decoded as %T", msg)
			}
			if !reflect.DeepEqual(gotRB, rb) {
				t.Fatalf("result batch round trip:\n got %+v\nwant %+v", gotRB, rb)
			}
		})
	}
}

// TestBatchBinaryPreservesFloatBits checks the binary codec carries exact
// float64 bit patterns, including negative zero and non-finite values the
// JSON fallback cannot express.
func TestBatchBinaryPreservesFloatBits(t *testing.T) {
	rb := &ResultBatch{
		Type:  MsgBatchResult,
		Epoch: 1,
		Results: []BatchResult{
			{PathID: 0, OK: true, Value: math.Copysign(0, -1)},
			{PathID: 1, OK: true, Value: math.Inf(1)},
			{PathID: 2, OK: true, Value: math.MaxFloat64},
		},
	}
	wire, err := EncodeResultBatch(nil, EncodingBinary, rb)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := readMessage(bufio.NewReader(bytes.NewReader(wire)))
	if err != nil {
		t.Fatal(err)
	}
	got := msg.(*ResultBatch)
	for i := range rb.Results {
		want := math.Float64bits(rb.Results[i].Value)
		have := math.Float64bits(got.Results[i].Value)
		if want != have {
			t.Fatalf("result %d: bits %x, want %x", i, have, want)
		}
	}
}

// TestMixedBinaryJSONStream interleaves binary frames, JSON batch frames
// and legacy per-path JSON lines on one stream: the reader must decode all
// of them in order.
func TestMixedBinaryJSONStream(t *testing.T) {
	var wire []byte
	var err error
	if wire, err = EncodeProbeBatch(wire, EncodingBinary, sampleProbeBatch()); err != nil {
		t.Fatal(err)
	}
	legacy, err := marshalMsg(ProbeRequest{Type: MsgProbe, Epoch: 3, PathID: 5, Links: []int{1}, DstName: "d"})
	if err != nil {
		t.Fatal(err)
	}
	wire = append(wire, legacy...)
	if wire, err = EncodeResultBatch(wire, EncodingJSON, sampleResultBatch()); err != nil {
		t.Fatal(err)
	}
	if wire, err = EncodeResultBatch(wire, EncodingBinary, sampleResultBatch()); err != nil {
		t.Fatal(err)
	}

	r := bufio.NewReader(bytes.NewReader(wire))
	wantTypes := []string{"*agent.ProbeBatch", "*agent.ProbeRequest", "*agent.ResultBatch", "*agent.ResultBatch"}
	for i, want := range wantTypes {
		msg, err := readMessage(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got := reflect.TypeOf(msg).String(); got != want {
			t.Fatalf("frame %d: decoded %s, want %s", i, got, want)
		}
	}
}

// TestBinaryFrameBounds exercises the hostile-length defenses: a claimed
// payload beyond maxFrame is rejected from the 6-byte header alone, and
// entry counts that cannot fit the actual payload are rejected before
// allocation.
func TestBinaryFrameBounds(t *testing.T) {
	// Oversized claimed length.
	hdr := []byte{frameMagic, frameTypeResult, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := readMessage(bufio.NewReader(bytes.NewReader(hdr))); err == nil {
		t.Fatal("accepted a 4 GiB claimed payload")
	}

	// A result batch claiming 1<<19 entries inside a tiny payload.
	var payload []byte
	payload = appendUint64(payload, 0)       // epoch
	payload = appendUint16(payload, 0)       // monitor name
	payload = appendUint32(payload, 1<<19)   // absurd count
	payload = append(payload, 1, 2, 3, 4, 5) // 5 bytes of "entries"
	frame := []byte{frameMagic, frameTypeResult, 0, 0, 0, 0}
	binary.BigEndian.PutUint32(frame[2:6], uint32(len(payload)))
	frame = append(frame, payload...)
	if _, err := readMessage(bufio.NewReader(bytes.NewReader(frame))); err == nil {
		t.Fatal("accepted a count that cannot fit the payload")
	}

	// Truncated payload: header promises more bytes than the stream has.
	good, err := EncodeResultBatch(nil, EncodingBinary, sampleResultBatch())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := readMessage(bufio.NewReader(bytes.NewReader(good[:len(good)-3]))); err == nil {
		t.Fatal("accepted a truncated frame")
	}

	// Trailing garbage inside a probe-batch payload.
	pb, err := EncodeProbeBatch(nil, EncodingBinary, sampleProbeBatch())
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte{}, pb...)
	bad = append(bad, 0xEE)
	binary.BigEndian.PutUint32(bad[2:6], binary.BigEndian.Uint32(bad[2:6])+1)
	if _, err := readMessage(bufio.NewReader(bytes.NewReader(bad))); err == nil {
		t.Fatal("accepted trailing bytes inside a probe-batch payload")
	}
}

// TestEncodeRejectsUnencodable checks the binary encoders reject fields
// the fixed-width layout cannot carry instead of silently truncating.
func TestEncodeRejectsUnencodable(t *testing.T) {
	cases := []struct {
		name string
		pb   *ProbeBatch
		rb   *ResultBatch
	}{
		{name: "negative path id", pb: &ProbeBatch{Paths: []BatchPath{{PathID: -1}}}},
		{name: "negative link id", pb: &ProbeBatch{Paths: []BatchPath{{PathID: 0, Links: []int{-2}}}}},
		{name: "path id over uint32", pb: &ProbeBatch{Paths: []BatchPath{{PathID: 1 << 33}}}},
		{name: "oversized monitor name", pb: &ProbeBatch{Monitor: strings.Repeat("n", 1<<16)}},
		{name: "negative result path id", rb: &ResultBatch{Results: []BatchResult{{PathID: -1}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			if tc.pb != nil {
				_, err = EncodeProbeBatch(nil, EncodingBinary, tc.pb)
			} else {
				_, err = EncodeResultBatch(nil, EncodingBinary, tc.rb)
			}
			if err == nil {
				t.Fatal("encoder accepted an unencodable batch")
			}
		})
	}
}

// TestBatchResultZeroValueOnWire is the batch-codec sibling of the
// ProbeResult omitempty regression: a successful zero measurement keeps
// its value field in the JSON fallback.
func TestBatchResultZeroValueOnWire(t *testing.T) {
	rb := &ResultBatch{Type: MsgBatchResult, Epoch: 0, Monitor: "m",
		Results: []BatchResult{{PathID: 1, OK: true, Value: 0}}}
	wire, err := EncodeResultBatch(nil, EncodingJSON, rb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(wire), `"value":0`) {
		t.Fatalf("zero value omitted from batch JSON: %s", wire)
	}
}
