package agent

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzWireFrame throws arbitrary bytes at the NOC-side frame reader:
// readLine must never panic or hand back an unbounded line, and any line
// it does accept must flow through peekType without a crash. This is the
// surface a hostile or corrupted monitor reaches first.
func FuzzWireFrame(f *testing.F) {
	f.Add([]byte(`{"type":"probe","epoch":1,"pathId":2,"links":[0,1],"dstName":"b"}` + "\n"))
	f.Add([]byte(`{"type":"result","epoch":1,"pathId":2,"ok":true,"value":3.5,"monitor":"a"}` + "\n"))
	f.Add([]byte(`{"type":"shutdown"}` + "\n"))
	f.Add([]byte("\n"))
	f.Add([]byte(`{"type":`))                                      // truncated JSON, no newline
	f.Add([]byte(`not json at all` + "\n"))                        // garbage line
	f.Add([]byte(`{"type":123}` + "\n"))                           // type of the wrong kind
	f.Add([]byte(strings.Repeat("x", 1<<20+5) + "\n"))             // oversized frame
	f.Add([]byte("{\"type\":\"probe\"}\n{\"type\":\"result\"}\n")) // two frames
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for {
			line, err := readLine(r)
			if err != nil {
				// Errors are fine (EOF, oversize, broken frames); the
				// invariant is no panic and no oversized acceptance.
				return
			}
			if len(line) > 1<<20 {
				t.Fatalf("readLine accepted %d-byte frame past its 1 MiB bound", len(line))
			}
			mt, err := peekType(line)
			if err != nil {
				continue // malformed head on a well-framed line: rejected, keep reading
			}
			// Accepted types decode into their structs without panicking.
			switch mt {
			case MsgProbe:
				var req ProbeRequest
				_ = json.Unmarshal(line, &req)
			case MsgResult:
				var res ProbeResult
				_ = json.Unmarshal(line, &res)
			}
		}
	})
}

// FuzzWireRoundTrip drives the codec with structured inputs: any
// request/result the NOC can express must survive writeMsg → readLine →
// peekType → decode with every field intact. Two representability gaps
// exist: NaN/Inf (JSON has no encoding for them — writeMsg must reject
// them loudly instead of corrupting the stream) and invalid UTF-8 in
// strings (JSON strings are UTF-8; encoding/json substitutes U+FFFD, so
// byte-exactness cannot hold and the trip is only checked to frame).
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(0, 0, "", true, 0.0, "")
	f.Add(7, 3, "monitor-b", false, 12.25, "monitor-a")
	f.Add(-1, -9, "名前", true, math.MaxFloat64, "m")
	f.Add(1<<30, 1<<30, "a\nb", false, -0.0, "quote\"backslash\\")
	f.Add(2014, 5, "dst", true, math.Inf(1), "src")
	f.Fuzz(func(t *testing.T, epoch, pathID int, dstName string, ok bool, value float64, monitor string) {
		req := ProbeRequest{
			Type:    MsgProbe,
			Epoch:   epoch,
			PathID:  pathID,
			Links:   []int{0, pathID & 0xff, 1},
			DstName: dstName,
		}
		res := ProbeResult{
			Type:    MsgResult,
			Epoch:   epoch,
			PathID:  pathID,
			OK:      ok,
			Value:   value,
			Monitor: monitor,
		}

		var buf bytes.Buffer
		reqErr := writeMsg(&buf, req)
		resErr := writeMsg(&buf, res)
		if math.IsNaN(value) || math.IsInf(value, 0) {
			if resErr == nil {
				t.Fatalf("writeMsg accepted unencodable value %v", value)
			}
			return
		}
		if reqErr != nil || resErr != nil {
			t.Fatalf("writeMsg failed on encodable input: %v / %v", reqErr, resErr)
		}
		exactStrings := utf8.ValidString(dstName) && utf8.ValidString(monitor)

		r := bufio.NewReader(&buf)
		line, err := readLine(r)
		if err != nil {
			t.Fatalf("readLine after writeMsg: %v", err)
		}
		if mt, err := peekType(line); err != nil || mt != MsgProbe {
			t.Fatalf("peekType = %q, %v", mt, err)
		}
		var gotReq ProbeRequest
		if err := json.Unmarshal(line, &gotReq); err != nil {
			t.Fatalf("decode request: %v", err)
		}
		// json.Marshal escapes the payload, so a round trip must be
		// byte-exact on every field, including newlines inside strings
		// (the framing invariant: one message, one line). Invalid UTF-8
		// is the exception: the encoder coerces it to U+FFFD, so string
		// equality only holds for valid input.
		if gotReq.Epoch != req.Epoch || gotReq.PathID != req.PathID ||
			(exactStrings && gotReq.DstName != req.DstName) {
			t.Fatalf("request round trip: got %+v, want %+v", gotReq, req)
		}
		if len(gotReq.Links) != len(req.Links) {
			t.Fatalf("links round trip: got %v, want %v", gotReq.Links, req.Links)
		}

		line, err = readLine(r)
		if err != nil {
			t.Fatalf("readLine second frame: %v", err)
		}
		if mt, err := peekType(line); err != nil || mt != MsgResult {
			t.Fatalf("peekType second frame = %q, %v", mt, err)
		}
		var gotRes ProbeResult
		if err := json.Unmarshal(line, &gotRes); err != nil {
			t.Fatalf("decode result: %v", err)
		}
		if gotRes.Epoch != res.Epoch || gotRes.PathID != res.PathID ||
			gotRes.OK != res.OK || gotRes.Value != res.Value ||
			(exactStrings && gotRes.Monitor != res.Monitor) {
			t.Fatalf("result round trip: got %+v, want %+v", gotRes, res)
		}
	})
}
