package agent

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzWireFrame throws arbitrary bytes at the NOC-side frame reader:
// readLine must never panic or hand back an unbounded line, and any line
// it does accept must flow through peekType without a crash. This is the
// surface a hostile or corrupted monitor reaches first.
func FuzzWireFrame(f *testing.F) {
	f.Add([]byte(`{"type":"probe","epoch":1,"pathId":2,"links":[0,1],"dstName":"b"}` + "\n"))
	f.Add([]byte(`{"type":"result","epoch":1,"pathId":2,"ok":true,"value":3.5,"monitor":"a"}` + "\n"))
	f.Add([]byte(`{"type":"shutdown"}` + "\n"))
	f.Add([]byte("\n"))
	f.Add([]byte(`{"type":`))                                      // truncated JSON, no newline
	f.Add([]byte(`not json at all` + "\n"))                        // garbage line
	f.Add([]byte(`{"type":123}` + "\n"))                           // type of the wrong kind
	f.Add([]byte(strings.Repeat("x", 1<<20+5) + "\n"))             // oversized frame
	f.Add([]byte("{\"type\":\"probe\"}\n{\"type\":\"result\"}\n")) // two frames
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for {
			line, err := readLine(r)
			if err != nil {
				// Errors are fine (EOF, oversize, broken frames); the
				// invariant is no panic and no oversized acceptance.
				return
			}
			if len(line) > 1<<20 {
				t.Fatalf("readLine accepted %d-byte frame past its 1 MiB bound", len(line))
			}
			mt, err := peekType(line)
			if err != nil {
				continue // malformed head on a well-framed line: rejected, keep reading
			}
			// Accepted types decode into their structs without panicking.
			switch mt {
			case MsgProbe:
				var req ProbeRequest
				_ = json.Unmarshal(line, &req)
			case MsgResult:
				var res ProbeResult
				_ = json.Unmarshal(line, &res)
			}
		}
	})
}

// FuzzWireRoundTrip drives the codec with structured inputs: any
// request/result the NOC can express must survive writeMsg → readLine →
// peekType → decode with every field intact. Two representability gaps
// exist: NaN/Inf (JSON has no encoding for them — writeMsg must reject
// them loudly instead of corrupting the stream) and invalid UTF-8 in
// strings (JSON strings are UTF-8; encoding/json substitutes U+FFFD, so
// byte-exactness cannot hold and the trip is only checked to frame).
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(0, 0, "", true, 0.0, "")
	f.Add(7, 3, "monitor-b", false, 12.25, "monitor-a")
	f.Add(-1, -9, "名前", true, math.MaxFloat64, "m")
	f.Add(1<<30, 1<<30, "a\nb", false, -0.0, "quote\"backslash\\")
	f.Add(2014, 5, "dst", true, math.Inf(1), "src")
	f.Fuzz(func(t *testing.T, epoch, pathID int, dstName string, ok bool, value float64, monitor string) {
		req := ProbeRequest{
			Type:    MsgProbe,
			Epoch:   epoch,
			PathID:  pathID,
			Links:   []int{0, pathID & 0xff, 1},
			DstName: dstName,
		}
		res := ProbeResult{
			Type:    MsgResult,
			Epoch:   epoch,
			PathID:  pathID,
			OK:      ok,
			Value:   value,
			Monitor: monitor,
		}

		var buf bytes.Buffer
		reqErr := writeMsg(&buf, req)
		resErr := writeMsg(&buf, res)
		if math.IsNaN(value) || math.IsInf(value, 0) {
			if resErr == nil {
				t.Fatalf("writeMsg accepted unencodable value %v", value)
			}
			return
		}
		if reqErr != nil || resErr != nil {
			t.Fatalf("writeMsg failed on encodable input: %v / %v", reqErr, resErr)
		}
		exactStrings := utf8.ValidString(dstName) && utf8.ValidString(monitor)

		r := bufio.NewReader(&buf)
		line, err := readLine(r)
		if err != nil {
			t.Fatalf("readLine after writeMsg: %v", err)
		}
		if mt, err := peekType(line); err != nil || mt != MsgProbe {
			t.Fatalf("peekType = %q, %v", mt, err)
		}
		var gotReq ProbeRequest
		if err := json.Unmarshal(line, &gotReq); err != nil {
			t.Fatalf("decode request: %v", err)
		}
		// json.Marshal escapes the payload, so a round trip must be
		// byte-exact on every field, including newlines inside strings
		// (the framing invariant: one message, one line). Invalid UTF-8
		// is the exception: the encoder coerces it to U+FFFD, so string
		// equality only holds for valid input.
		if gotReq.Epoch != req.Epoch || gotReq.PathID != req.PathID ||
			(exactStrings && gotReq.DstName != req.DstName) {
			t.Fatalf("request round trip: got %+v, want %+v", gotReq, req)
		}
		if len(gotReq.Links) != len(req.Links) {
			t.Fatalf("links round trip: got %v, want %v", gotReq.Links, req.Links)
		}

		line, err = readLine(r)
		if err != nil {
			t.Fatalf("readLine second frame: %v", err)
		}
		if mt, err := peekType(line); err != nil || mt != MsgResult {
			t.Fatalf("peekType second frame = %q, %v", mt, err)
		}
		var gotRes ProbeResult
		if err := json.Unmarshal(line, &gotRes); err != nil {
			t.Fatalf("decode result: %v", err)
		}
		if gotRes.Epoch != res.Epoch || gotRes.PathID != res.PathID ||
			gotRes.OK != res.OK || gotRes.Value != res.Value ||
			(exactStrings && gotRes.Monitor != res.Monitor) {
			t.Fatalf("result round trip: got %+v, want %+v", gotRes, res)
		}
	})
}

// FuzzBatchFrame throws arbitrary bytes at the unified readMessage reader
// — the surface that now accepts binary batch frames, JSON batch lines and
// legacy per-path lines on one stream. Invariants: no panic, no oversized
// acceptance (claimed frame lengths past maxFrame are rejected from the
// header alone), and every decoded message is one of the known types.
func FuzzBatchFrame(f *testing.F) {
	// Well-formed frames in both encodings.
	if wire, err := EncodeProbeBatch(nil, EncodingBinary, sampleProbeBatch()); err == nil {
		f.Add(wire)
	}
	if wire, err := EncodeResultBatch(nil, EncodingJSON, sampleResultBatch()); err == nil {
		f.Add(wire)
	}
	// A binary frame followed by a legacy JSON line (mixed stream).
	if wire, err := EncodeResultBatch(nil, EncodingBinary, sampleResultBatch()); err == nil {
		f.Add(append(wire, []byte(`{"type":"probe","epoch":1,"pathId":2,"links":[0],"dstName":"d"}`+"\n")...))
	}
	// Truncated length prefixes: magic alone, magic+type, partial length.
	f.Add([]byte{frameMagic})
	f.Add([]byte{frameMagic, frameTypeProbe})
	f.Add([]byte{frameMagic, frameTypeResult, 0x00, 0x01})
	// Oversized claimed length, unknown frame type, zero-length payload.
	f.Add([]byte{frameMagic, frameTypeProbe, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{frameMagic, 0x7F, 0, 0, 0, 0})
	f.Add([]byte{frameMagic, frameTypeResult, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for {
			msg, err := readMessage(r)
			if err != nil {
				return // EOF or rejection: fine, as long as nothing panicked
			}
			switch msg.(type) {
			case *ProbeRequest, *ProbeResult, *ProbeBatch, *ResultBatch, shutdownMsg:
			default:
				t.Fatalf("readMessage produced unknown type %T", msg)
			}
		}
	})
}

// FuzzBatchRoundTrip drives the batch codec with structured inputs: any
// batch the NOC can express must survive encode → readMessage in both
// encodings with every field intact (float64 values bit-exact in binary,
// value-exact in JSON for finite values).
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add(0, "", 0, true, 0.0, true)
	f.Add(42, "m-7", 3, false, -123.456, false)
	f.Add(-1, "名前", 9, true, math.MaxFloat64, true)
	f.Add(1<<40, "x", 1<<20, true, 0.5, false)
	f.Fuzz(func(t *testing.T, epoch int, monitor string, pathID int, ok bool, value float64, binary bool) {
		enc := EncodingJSON
		if binary {
			enc = EncodingBinary
		}
		pb := &ProbeBatch{
			Type:    MsgBatch,
			Epoch:   epoch,
			Monitor: monitor,
			Paths:   []BatchPath{{PathID: pathID, Links: []int{0, pathID & 0xffff}}},
		}
		rb := &ResultBatch{
			Type:    MsgBatchResult,
			Epoch:   epoch,
			Monitor: monitor,
			Results: []BatchResult{{PathID: pathID, OK: ok, Value: value}},
		}

		encodable := pathID >= 0 && pathID <= maxFieldValue &&
			len(monitor) <= maxMonitorName && utf8.ValidString(monitor)
		finite := !math.IsNaN(value) && !math.IsInf(value, 0)
		if enc == EncodingJSON && (!finite || !utf8.ValidString(monitor)) {
			// JSON cannot express NaN/Inf and coerces invalid UTF-8; the
			// encoder must reject the former, and the latter cannot be
			// byte-exact — skip exactness checks either way.
			encodable = false
		}

		var wire []byte
		var err error
		if wire, err = EncodeProbeBatch(wire, enc, pb); err != nil {
			if encodable && (enc == EncodingBinary || finite) {
				t.Fatalf("EncodeProbeBatch rejected encodable batch: %v", err)
			}
			return
		}
		if wire, err = EncodeResultBatch(wire, enc, rb); err != nil {
			if encodable && (enc == EncodingBinary || finite) {
				t.Fatalf("EncodeResultBatch rejected encodable batch: %v", err)
			}
			return
		}
		if !encodable || (enc == EncodingJSON && !finite) {
			return // accepted despite being flagged borderline: decode check below would be unreliable
		}

		r := bufio.NewReader(bytes.NewReader(wire))
		msg, err := readMessage(r)
		if err != nil {
			t.Fatalf("readMessage probe batch: %v", err)
		}
		gotPB, castOK := msg.(*ProbeBatch)
		if !castOK {
			t.Fatalf("first frame decoded as %T", msg)
		}
		if gotPB.Epoch != epoch || gotPB.Monitor != monitor ||
			len(gotPB.Paths) != 1 || gotPB.Paths[0].PathID != pathID {
			t.Fatalf("probe batch round trip: got %+v, want %+v", gotPB, pb)
		}
		msg, err = readMessage(r)
		if err != nil {
			t.Fatalf("readMessage result batch: %v", err)
		}
		gotRB, castOK := msg.(*ResultBatch)
		if !castOK {
			t.Fatalf("second frame decoded as %T", msg)
		}
		got := gotRB.Results[0]
		if gotRB.Epoch != epoch || got.PathID != pathID || got.OK != ok {
			t.Fatalf("result batch round trip: got %+v, want %+v", gotRB, rb)
		}
		if enc == EncodingBinary {
			if math.Float64bits(got.Value) != math.Float64bits(value) {
				t.Fatalf("binary value bits %x, want %x", math.Float64bits(got.Value), math.Float64bits(value))
			}
		} else if finite && got.Value != value {
			t.Fatalf("JSON value %v, want %v", got.Value, value)
		}
	})
}
