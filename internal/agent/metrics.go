package agent

import (
	"robusttomo/internal/obs"
)

// nocMetrics holds the NOC's pre-interned instrument handles. With no
// observer registry installed every field is nil, and each update is the
// obs package's single nil check — the collection hot path never branches
// on a registry pointer or allocates for observability.
type nocMetrics struct {
	reg *obs.Registry

	// dialSeconds / exchangeSeconds time one TCP dial attempt and one
	// pipelined epoch exchange respectively.
	dialSeconds     *obs.Histogram
	exchangeSeconds *obs.Histogram
	// attempts counts connect+exchange attempts; retries counts the
	// attempts beyond the first per monitor-epoch; backoffSeconds records
	// the backoff sleeps the retry loop actually paid.
	attempts       *obs.Counter
	retries        *obs.Counter
	backoffSeconds *obs.Histogram
	// circuitDenied counts attempts rejected by an open breaker.
	circuitDenied *obs.Counter
	// epochs / degradedEpochs / lostPaths summarize CollectEpoch outcomes;
	// lostPaths counts selected paths that produced no measurement because
	// their monitor delivered nothing (the partial-epoch currency).
	epochs         *obs.Counter
	degradedEpochs *obs.Counter
	lostPaths      *obs.Counter
	// breakerState is a per-monitor gauge of the circuit-breaker state
	// (0 closed, 1 open, 2 half-open), pre-interned per monitor at NOC
	// construction.
	breakerState *obs.GaugeVec
}

// newNOCMetrics registers the agent metric families. A nil registry
// yields all-nil handles (the unobserved mode).
func newNOCMetrics(reg *obs.Registry) *nocMetrics {
	return &nocMetrics{
		reg: reg,
		dialSeconds: reg.Histogram("tomo_agent_dial_seconds",
			"Latency of one TCP dial attempt to a monitor.", obs.DefBuckets),
		exchangeSeconds: reg.Histogram("tomo_agent_exchange_seconds",
			"Latency of one pipelined epoch exchange with a monitor.", obs.DefBuckets),
		attempts: reg.Counter("tomo_agent_attempts_total",
			"Connect+exchange attempts across all monitors."),
		retries: reg.Counter("tomo_agent_retries_total",
			"Attempts beyond the first within one monitor-epoch."),
		backoffSeconds: reg.Histogram("tomo_agent_backoff_seconds",
			"Backoff sleeps paid between retry attempts.", obs.DefBuckets),
		circuitDenied: reg.Counter("tomo_agent_circuit_denied_total",
			"Attempts rejected because a monitor's circuit breaker was open."),
		epochs: reg.Counter("tomo_agent_epochs_total",
			"CollectEpoch calls."),
		degradedEpochs: reg.Counter("tomo_agent_degraded_epochs_total",
			"Epochs in which at least one monitor delivered nothing."),
		lostPaths: reg.Counter("tomo_agent_lost_paths_total",
			"Selected paths that produced no measurement due to monitor failure."),
		breakerState: reg.GaugeVec("tomo_agent_breaker_state",
			"Per-monitor circuit-breaker state: 0 closed, 1 open, 2 half-open.", "monitor"),
	}
}
