package agent

import (
	"robusttomo/internal/obs"
)

// nocMetrics holds the NOC's pre-interned instrument handles. With no
// observer registry installed every field is nil, and each update is the
// obs package's single nil check — the collection hot path never branches
// on a registry pointer or allocates for observability.
type nocMetrics struct {
	reg *obs.Registry

	// dialSeconds / exchangeSeconds time one TCP dial attempt and one
	// pipelined epoch exchange respectively.
	dialSeconds     *obs.Histogram
	exchangeSeconds *obs.Histogram
	// attempts counts connect+exchange attempts; retries counts the
	// attempts beyond the first per monitor-epoch; backoffSeconds records
	// the backoff sleeps the retry loop actually paid.
	attempts       *obs.Counter
	retries        *obs.Counter
	backoffSeconds *obs.Histogram
	// circuitDenied counts attempts rejected by an open breaker.
	circuitDenied *obs.Counter
	// epochs / degradedEpochs / lostPaths summarize CollectEpoch outcomes;
	// lostPaths counts selected paths that produced no measurement because
	// their monitor delivered nothing (the partial-epoch currency).
	epochs         *obs.Counter
	degradedEpochs *obs.Counter
	lostPaths      *obs.Counter
	// breakerState is a per-monitor gauge of the circuit-breaker state
	// (0 closed, 1 open, 2 half-open), pre-interned per monitor at NOC
	// construction.
	breakerState *obs.GaugeVec
}

// newNOCMetrics registers the agent metric families. A nil registry
// yields all-nil handles (the unobserved mode).
func newNOCMetrics(reg *obs.Registry) *nocMetrics {
	return &nocMetrics{
		reg: reg,
		dialSeconds: reg.Histogram("tomo_agent_dial_seconds",
			"Latency of one TCP dial attempt to a monitor.", obs.DefBuckets),
		exchangeSeconds: reg.Histogram("tomo_agent_exchange_seconds",
			"Latency of one pipelined epoch exchange with a monitor.", obs.DefBuckets),
		attempts: reg.Counter("tomo_agent_attempts_total",
			"Connect+exchange attempts across all monitors."),
		retries: reg.Counter("tomo_agent_retries_total",
			"Attempts beyond the first within one monitor-epoch."),
		backoffSeconds: reg.Histogram("tomo_agent_backoff_seconds",
			"Backoff sleeps paid between retry attempts.", obs.DefBuckets),
		circuitDenied: reg.Counter("tomo_agent_circuit_denied_total",
			"Attempts rejected because a monitor's circuit breaker was open."),
		epochs: reg.Counter("tomo_agent_epochs_total",
			"CollectEpoch calls."),
		degradedEpochs: reg.Counter("tomo_agent_degraded_epochs_total",
			"Epochs in which at least one monitor delivered nothing."),
		lostPaths: reg.Counter("tomo_agent_lost_paths_total",
			"Selected paths that produced no measurement due to monitor failure."),
		breakerState: reg.GaugeVec("tomo_agent_breaker_state",
			"Per-monitor circuit-breaker state: 0 closed, 1 open, 2 half-open.", "monitor"),
	}
}

// batchSizeBuckets grades batch-frame path counts: probe batches run from a
// single path up to the whole panel share of one monitor.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// streamMetrics holds the streaming plane's pre-interned handles, layered
// on top of the shared nocMetrics families (epochs, degraded epochs, lost
// paths, breaker states, dial latency). Nil-registry mode works the same
// way: every handle is nil and updates cost one nil check.
type streamMetrics struct {
	*nocMetrics

	// framesSent / framesReceived count batch frames on the wire in each
	// direction (one probe batch out, one result batch back per
	// monitor-epoch in the common case).
	framesSent     *obs.Counter
	framesReceived *obs.Counter
	// batchPaths records how many paths each sent probe batch carried.
	batchPaths *obs.Histogram
	// watermarkLag records how far behind its epoch's seal a late result
	// arrived (observed only for epochs whose seal time is still tracked).
	watermarkLag *obs.Histogram
	// lateResults / duplicateResults / lateDropped count assembler routing
	// outcomes; backpressureDrops counts probe batches rejected because a
	// shard's send queue was full.
	lateResults       *obs.Counter
	duplicateResults  *obs.Counter
	lateDropped       *obs.Counter
	backpressureDrops *obs.Counter
	// watermarkMissed counts monitor-epochs sealed with outstanding paths.
	watermarkMissed *obs.Counter
	// queueDepth is the per-shard send-queue depth at the last enqueue or
	// dequeue.
	queueDepth *obs.GaugeVec
}

// newStreamMetrics registers the streaming-plane metric families.
func newStreamMetrics(reg *obs.Registry) *streamMetrics {
	return &streamMetrics{
		nocMetrics: newNOCMetrics(reg),
		framesSent: reg.Counter("tomo_stream_frames_sent_total",
			"Probe batch frames written to monitor transports."),
		framesReceived: reg.Counter("tomo_stream_frames_received_total",
			"Result batch frames read from monitor transports."),
		batchPaths: reg.Histogram("tomo_stream_batch_paths",
			"Paths carried per sent probe batch frame.", batchSizeBuckets),
		watermarkLag: reg.Histogram("tomo_stream_watermark_lag_seconds",
			"Arrival lag of late results behind their epoch's seal.", obs.DefBuckets),
		lateResults: reg.Counter("tomo_stream_late_results_total",
			"Results that arrived after their epoch sealed (folded forward)."),
		duplicateResults: reg.Counter("tomo_stream_duplicate_results_total",
			"Results discarded by first-wins dedup."),
		lateDropped: reg.Counter("tomo_stream_late_dropped_total",
			"Late results dropped because the late buffer was full."),
		backpressureDrops: reg.Counter("tomo_stream_backpressure_drops_total",
			"Probe batches rejected because a shard send queue was full."),
		watermarkMissed: reg.Counter("tomo_stream_watermark_missed_total",
			"Monitor-epochs sealed with outstanding paths at the watermark."),
		queueDepth: reg.GaugeVec("tomo_stream_queue_depth",
			"Send-queue depth per shard.", "shard"),
	}
}
