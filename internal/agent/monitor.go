package agent

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
)

// LinkOracle answers, for a given epoch, the state of the simulated
// network: which links are up and what each link's additive metric is. It
// must be safe for concurrent use; implementations in this repository are
// immutable snapshots per epoch.
type LinkOracle interface {
	// Measure returns the end-to-end measurement over the links for the
	// epoch, with ok=false if any link is down.
	Measure(epoch int, links []int) (value float64, ok bool)
}

// Monitor is a TCP server playing the role of a vantage point at the
// network edge: it receives probe requests from the NOC, "sends the probe"
// (consults the link oracle), and returns the measurement.
type Monitor struct {
	name   string
	oracle LinkOracle

	ln        net.Listener
	mu        sync.Mutex
	wg        sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once

	// conns tracks live sessions so Close can tear them down: NOC
	// sessions are persistent (they span epochs), so draining the accept
	// loop alone would wait forever.
	conns map[net.Conn]struct{}

	probesServed int
}

// StartMonitor launches a monitor listening on addr (use "127.0.0.1:0" for
// an ephemeral port). The returned monitor serves until Close.
func StartMonitor(name, addr string, oracle LinkOracle) (*Monitor, error) {
	if oracle == nil {
		return nil, fmt.Errorf("agent: monitor %s needs a link oracle", name)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agent: listen %s: %w", addr, err)
	}
	return StartMonitorOn(name, ln, oracle)
}

// StartMonitorOn launches a monitor over an existing listener — the hook
// for fault injection (wrap the listener in a FaultyListener) and custom
// transports. The monitor takes ownership of the listener and closes it on
// Close.
func StartMonitorOn(name string, ln net.Listener, oracle LinkOracle) (*Monitor, error) {
	if oracle == nil {
		return nil, fmt.Errorf("agent: monitor %s needs a link oracle", name)
	}
	if ln == nil {
		return nil, fmt.Errorf("agent: monitor %s needs a listener", name)
	}
	m := &Monitor{name: name, oracle: oracle, ln: ln, done: make(chan struct{}), conns: make(map[net.Conn]struct{})}
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// Addr returns the monitor's listen address.
func (m *Monitor) Addr() string { return m.ln.Addr().String() }

// Name returns the monitor's name.
func (m *Monitor) Name() string { return m.name }

// ProbesServed returns how many probes this monitor has answered.
func (m *Monitor) ProbesServed() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.probesServed
}

func (m *Monitor) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			select {
			case <-m.done:
				return
			default:
				// Transient accept failure: keep serving.
				continue
			}
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.serve(conn)
		}()
	}
}

func (m *Monitor) serve(conn net.Conn) {
	m.mu.Lock()
	select {
	case <-m.done:
		m.mu.Unlock()
		conn.Close()
		return
	default:
	}
	m.conns[conn] = struct{}{}
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.conns, conn)
		m.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	// scratch is the reusable encode buffer for batch replies: one codec
	// pass and one flush per batch, regardless of how many paths it holds.
	var scratch []byte
	for {
		msg, err := readMessage(r)
		if err != nil {
			return // peer closed or protocol error: drop the session
		}
		switch req := msg.(type) {
		case *ProbeRequest:
			value, ok := m.oracle.Measure(req.Epoch, req.Links)
			res := ProbeResult{
				Type:    MsgResult,
				Epoch:   req.Epoch,
				PathID:  req.PathID,
				OK:      ok,
				Monitor: m.name,
			}
			if ok {
				res.Value = value
			}
			if err := writeMsg(w, res); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
			m.mu.Lock()
			m.probesServed++
			m.mu.Unlock()
		case *ProbeBatch:
			// Batched probing: measure the whole path batch and answer with
			// one frame in the encoding the request arrived in. The monitor
			// name echoes the batch's session identity, so one TCP
			// connection can carry many multiplexed monitor sessions.
			res := ResultBatch{
				Type:    MsgBatchResult,
				Epoch:   req.Epoch,
				Monitor: req.Monitor,
				Results: make([]BatchResult, len(req.Paths)),
			}
			if res.Monitor == "" {
				res.Monitor = m.name
			}
			for i := range req.Paths {
				p := &req.Paths[i]
				value, ok := m.oracle.Measure(req.Epoch, p.Links)
				res.Results[i] = BatchResult{PathID: p.PathID, OK: ok}
				if ok {
					res.Results[i].Value = value
				}
			}
			scratch, err = EncodeResultBatch(scratch[:0], req.enc, &res)
			if err != nil {
				return
			}
			if _, err := w.Write(scratch); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
			m.mu.Lock()
			m.probesServed += len(req.Paths)
			m.mu.Unlock()
		case shutdownMsg:
			return
		default:
			return // results flowing the wrong way, or unknown: terminate
		}
	}
}

// Close stops accepting connections, tears down live sessions (persistent
// NOC sessions would otherwise never end) and waits for their goroutines.
// Close is idempotent.
func (m *Monitor) Close() error {
	var err error
	m.closeOnce.Do(func() {
		close(m.done)
		err = m.ln.Close()
		m.mu.Lock()
		for conn := range m.conns {
			conn.Close()
		}
		m.mu.Unlock()
	})
	m.wg.Wait()
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

func unmarshalStrict(line []byte, v any) error {
	if err := json.Unmarshal(line, v); err != nil {
		return fmt.Errorf("agent: decode: %w", err)
	}
	return nil
}
