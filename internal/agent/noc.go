package agent

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"net"
	"sort"
	"sync"
	"time"

	"robusttomo/internal/failure"
	"robusttomo/internal/obs"
	"robusttomo/internal/stats"
	"robusttomo/internal/tomo"
)

// NOC is the Network Operations Center: it owns the selected probing
// paths, maps each path to the monitor at its source, and collects one
// round of end-to-end measurements per epoch by fanning probe requests out
// over TCP.
//
// The collection plane is fault-tolerant: each monitor gets a persistent
// session (reconnect-on-error instead of dial-per-epoch), a bounded retry
// policy with exponential backoff and deterministic jitter, and a circuit
// breaker that stops hammering a monitor that keeps failing. By default an
// epoch degrades instead of aborting: CollectEpoch returns the
// measurements it did get plus a *CollectionError describing the monitors
// that delivered nothing; FailFast restores the abort-the-epoch behavior.
type NOC struct {
	pm       *tomo.PathMatrix
	srcOf    func(path int) string
	retry    RetryPolicy
	failFast bool
	m        *nocMetrics

	// state is populated at construction and read-only afterwards; each
	// entry carries its own lock.
	state map[string]*monitorState
}

// monitorState is the per-monitor collection state, persistent across
// epochs.
type monitorState struct {
	name string

	mu   sync.Mutex // serializes exchanges (and their retries) per monitor
	sess *session
	brk  *breaker
	rng  *rand.Rand // deterministic backoff jitter stream, guarded by mu

	// brkGauge is the pre-interned per-monitor breaker-state gauge (nil
	// when no observer is installed).
	brkGauge *obs.Gauge
}

// NOCConfig wires up a collector.
type NOCConfig struct {
	PM *tomo.PathMatrix
	// Monitors maps monitor names to TCP addresses.
	Monitors map[string]string
	// SourceOf returns the monitor name responsible for probing a path
	// (the path's source endpoint).
	SourceOf func(path int) string

	// Retry bounds per-monitor attempts within one epoch; zero fields take
	// DefaultRetryPolicy values.
	Retry RetryPolicy
	// Breaker configures the per-monitor circuit breaker; zero fields take
	// DefaultBreakerPolicy values.
	Breaker BreakerPolicy
	// Timeouts groups the dial and exchange deadlines; zero fields take
	// DefaultTimeouts values.
	Timeouts Timeouts
	// FailFast makes CollectEpoch abort the whole epoch on the first
	// failed monitor (returning no measurements), the pre-degradation
	// behavior. The error is still a *CollectionError.
	FailFast bool
	// Seed derives the deterministic per-monitor jitter streams
	// (stats.NewRNG(Seed, fnv(monitor name))).
	Seed uint64
	// Dial overrides the TCP dialer — fault injection and tests. Nil means
	// the default net.Dialer.
	Dial DialFunc
	// Observer, when non-nil, receives the collection plane's metrics
	// (dial/exchange latency, retries, breaker states, degraded epochs)
	// and trace events. Nil runs unobserved at the cost of one nil check
	// per instrumented operation.
	Observer *obs.Registry

	// DialTimeout bounds one connection attempt.
	//
	// Deprecated: set Timeouts.Dial. A non-zero DialTimeout is mapped onto
	// Timeouts.Dial when the latter is unset; setting both to different
	// values is a configuration conflict and NewNOC returns a *ConfigError
	// instead of silently preferring one.
	DialTimeout time.Duration
}

// DefaultNOCConfig returns a config with the retry, breaker and timeout
// blocks at their defaults; the caller fills PM, Monitors and SourceOf.
func DefaultNOCConfig() NOCConfig {
	return NOCConfig{
		Retry:    DefaultRetryPolicy(),
		Breaker:  DefaultBreakerPolicy(),
		Timeouts: DefaultTimeouts(),
	}
}

// NewNOC validates the wiring.
func NewNOC(cfg NOCConfig) (*NOC, error) {
	if cfg.PM == nil {
		return nil, fmt.Errorf("agent: NOC needs a path matrix")
	}
	if len(cfg.Monitors) == 0 {
		return nil, fmt.Errorf("agent: NOC needs monitors")
	}
	if cfg.SourceOf == nil {
		return nil, fmt.Errorf("agent: NOC needs a path→monitor mapping")
	}
	timeouts := cfg.Timeouts
	if cfg.DialTimeout != 0 {
		if timeouts.Dial != 0 && timeouts.Dial != cfg.DialTimeout {
			return nil, &ConfigError{
				Field: "DialTimeout",
				Reason: fmt.Sprintf("deprecated DialTimeout (%v) conflicts with Timeouts.Dial (%v); set only Timeouts.Dial",
					cfg.DialTimeout, timeouts.Dial),
			}
		}
		timeouts.Dial = cfg.DialTimeout // deprecated field mapped forward
	}
	timeouts = timeouts.withDefaults()
	dial := cfg.Dial
	if dial == nil {
		dial = (&net.Dialer{}).DialContext
	}
	breakerPol := cfg.Breaker.withDefaults()

	m := newNOCMetrics(cfg.Observer)
	n := &NOC{
		pm:       cfg.PM,
		srcOf:    cfg.SourceOf,
		retry:    cfg.Retry.withDefaults(),
		failFast: cfg.FailFast,
		m:        m,
		state:    make(map[string]*monitorState, len(cfg.Monitors)),
	}
	for name, addr := range cfg.Monitors {
		sess := newSession(name, addr, dial, timeouts)
		sess.dialSeconds = m.dialSeconds
		st := &monitorState{
			name:     name,
			sess:     sess,
			brk:      newBreaker(breakerPol),
			rng:      stats.NewRNG(cfg.Seed, streamOf(name)),
			brkGauge: m.breakerState.With(name),
		}
		st.brkGauge.Set(float64(BreakerClosed))
		n.state[name] = st
	}
	return n, nil
}

// streamOf hashes a monitor name into a deterministic RNG stream.
func streamOf(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Measurement is one collected end-to-end measurement.
type Measurement struct {
	PathID int
	OK     bool
	Value  float64
}

// CollectEpoch probes the selected paths for the given epoch through the
// persistent per-monitor sessions, fanned out concurrently with requests
// pipelined per session. Results come back sorted by path ID.
//
// Failed monitors degrade the epoch instead of aborting it: the returned
// measurements cover the monitors that answered, and the error is a
// *CollectionError listing each failed monitor's outcome (attempts, last
// error, breaker state). errors.Is works through it — expect
// ErrMonitorUnreachable or ErrCircuitOpen. With FailFast set, any failed
// monitor discards the epoch (nil measurements, same *CollectionError).
//
// Wiring bugs — a path index out of range (ErrPathOutOfRange) or a path
// whose source has no registered monitor (ErrUnknownMonitor) — fail the
// epoch outright regardless of mode.
func (n *NOC) CollectEpoch(ctx context.Context, epoch int, selected []int) ([]Measurement, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n.m.epochs.Inc()
	sp := n.m.reg.StartSpan("agent.collect_epoch")
	// Group paths by their source monitor, preserving first-seen order.
	byMonitor := map[string][]int{}
	var order []string
	for _, p := range selected {
		if p < 0 || p >= n.pm.NumPaths() {
			sp.EndDetail("wiring bug: path out of range")
			return nil, fmt.Errorf("%w: path %d (matrix has %d)", ErrPathOutOfRange, p, n.pm.NumPaths())
		}
		name := n.srcOf(p)
		if _, ok := n.state[name]; !ok {
			sp.EndDetail("wiring bug: unknown monitor")
			return nil, fmt.Errorf("%w: %q (path %d)", ErrUnknownMonitor, name, p)
		}
		if _, seen := byMonitor[name]; !seen {
			order = append(order, name)
		}
		byMonitor[name] = append(byMonitor[name], p)
	}

	type batch struct {
		results []Measurement
		outcome MonitorOutcome
	}
	batches := make([]batch, len(order))
	var wg sync.WaitGroup
	for i, name := range order {
		wg.Add(1)
		go func(i int, name string, paths []int) {
			defer wg.Done()
			ms, outcome := n.collectMonitor(ctx, n.state[name], epoch, paths)
			batches[i] = batch{results: ms, outcome: outcome}
		}(i, name, byMonitor[name])
	}
	wg.Wait()

	var all []Measurement
	var failed []MonitorOutcome
	for _, b := range batches {
		if b.outcome.Err != nil {
			failed = append(failed, b.outcome)
			continue
		}
		all = append(all, b.results...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].PathID < all[j].PathID })

	if len(failed) > 0 {
		sort.Slice(failed, func(i, j int) bool { return failed[i].Monitor < failed[j].Monitor })
		cerr := &CollectionError{Epoch: epoch, Outcomes: failed}
		n.m.degradedEpochs.Inc()
		for _, o := range failed {
			n.m.lostPaths.Add(uint64(len(o.Paths)))
		}
		sp.EndDetail(fmt.Sprintf("epoch=%d degraded monitors=%d", epoch, len(failed)))
		if n.failFast {
			return nil, cerr
		}
		return all, cerr
	}
	sp.EndDetail(fmt.Sprintf("epoch=%d ok", epoch))
	return all, nil
}

// collectMonitor runs the per-monitor retry loop for one epoch. The
// monitor's mutex serializes concurrent epochs over the shared persistent
// session.
func (n *NOC) collectMonitor(ctx context.Context, st *monitorState, epoch int, paths []int) ([]Measurement, MonitorOutcome) {
	st.mu.Lock()
	defer st.mu.Unlock()

	outcome := MonitorOutcome{Monitor: st.name, Paths: paths}
	reqs := make([]ProbeRequest, len(paths))
	for i, p := range paths {
		reqs[i] = ProbeRequest{
			Type:    MsgProbe,
			Epoch:   epoch,
			PathID:  p,
			Links:   n.pm.EdgesOf(p),
			DstName: fmt.Sprintf("path-%d-dst", p),
		}
	}

	for attempt := 1; attempt <= n.retry.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			outcome.Err = fmt.Errorf("%w: %s: %w", ErrMonitorUnreachable, st.name, err)
			break
		}
		if !st.brk.allow() {
			n.m.circuitDenied.Inc()
			outcome.Err = fmt.Errorf("%w: monitor %s cooling down", ErrCircuitOpen, st.name)
			break
		}
		outcome.Attempts++
		n.m.attempts.Inc()
		if attempt > 1 {
			n.m.retries.Inc()
		}
		var exchangeStart time.Time
		if n.m.exchangeSeconds != nil {
			exchangeStart = time.Now()
		}
		ms, err := st.sess.exchange(ctx, epoch, reqs)
		if n.m.exchangeSeconds != nil {
			n.m.exchangeSeconds.Observe(time.Since(exchangeStart).Seconds())
		}
		if err == nil {
			st.brk.success()
			outcome.Err = nil // earlier attempts may have failed; this epoch recovered
			outcome.Breaker = st.brk.State()
			st.brkGauge.Set(float64(outcome.Breaker))
			return ms, outcome
		}
		st.brk.failure()
		st.brkGauge.Set(float64(st.brk.State()))
		outcome.Err = fmt.Errorf("%w: %s attempt %d/%d: %w", ErrMonitorUnreachable, st.name, attempt, n.retry.MaxAttempts, err)
		if attempt < n.retry.MaxAttempts {
			backoff := n.retry.backoff(attempt, st.rng)
			n.m.backoffSeconds.Observe(backoff.Seconds())
			if !sleepCtx(ctx, backoff) {
				break // context cancelled during backoff; outcome.Err already set
			}
		}
	}
	outcome.Breaker = st.brk.State()
	st.brkGauge.Set(float64(outcome.Breaker))
	return nil, outcome
}

// BreakerStates reports each monitor's current circuit-breaker state, for
// health dashboards and tests.
func (n *NOC) BreakerStates() map[string]BreakerState {
	out := make(map[string]BreakerState, len(n.state))
	for name, st := range n.state {
		out[name] = st.brk.State()
	}
	return out
}

// Close tears down every persistent monitor session. The NOC remains
// usable — the next CollectEpoch redials — so Close doubles as a
// "drop all connections" control.
func (n *NOC) Close() error {
	for _, st := range n.state {
		st.mu.Lock()
		st.sess.reset()
		st.mu.Unlock()
	}
	return nil
}

// setClock overrides every breaker's clock; deterministic breaker tests
// use it to step through cooldowns without sleeping.
func (n *NOC) setClock(now func() time.Time) {
	for _, st := range n.state {
		st.brk.now = now
	}
}

// EpochOracle is the LinkOracle used across this repository's examples and
// tests: ground-truth link metrics plus a per-epoch failure scenario
// schedule. Epoch scenarios are fixed up front so every monitor observes a
// consistent network state.
type EpochOracle struct {
	metrics   []float64
	scenarios []failure.Scenario
}

// NewEpochOracle builds an oracle over ground-truth metrics and a schedule
// of failure scenarios (epoch e uses scenarios[e]; epochs beyond the
// schedule see a failure-free network).
func NewEpochOracle(metrics []float64, scenarios []failure.Scenario) (*EpochOracle, error) {
	if len(metrics) == 0 {
		return nil, fmt.Errorf("agent: no link metrics")
	}
	for _, sc := range scenarios {
		if len(sc.Failed) != len(metrics) {
			return nil, fmt.Errorf("agent: scenario covers %d links, metrics %d", len(sc.Failed), len(metrics))
		}
	}
	cp := make([]float64, len(metrics))
	copy(cp, metrics)
	return &EpochOracle{metrics: cp, scenarios: scenarios}, nil
}

var _ LinkOracle = (*EpochOracle)(nil)

// Measure implements LinkOracle.
func (o *EpochOracle) Measure(epoch int, links []int) (float64, bool) {
	var sc *failure.Scenario
	if epoch >= 0 && epoch < len(o.scenarios) {
		sc = &o.scenarios[epoch]
	}
	sum := 0.0
	for _, l := range links {
		if l < 0 || l >= len(o.metrics) {
			return 0, false
		}
		if sc != nil && sc.Failed[l] {
			return 0, false
		}
		sum += o.metrics[l]
	}
	return sum, true
}
