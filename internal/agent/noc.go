package agent

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"robusttomo/internal/failure"
	"robusttomo/internal/tomo"
)

// NOC is the Network Operations Center: it owns the selected probing
// paths, maps each path to the monitor at its source, and collects one
// round of end-to-end measurements per epoch by fanning probe requests out
// over TCP.
type NOC struct {
	pm       *tomo.PathMatrix
	monitors map[string]string // monitor name → address
	srcOf    func(path int) string

	dialTimeout time.Duration
}

// NOCConfig wires up a collector.
type NOCConfig struct {
	PM *tomo.PathMatrix
	// Monitors maps monitor names to TCP addresses.
	Monitors map[string]string
	// SourceOf returns the monitor name responsible for probing a path
	// (the path's source endpoint).
	SourceOf    func(path int) string
	DialTimeout time.Duration // 0 means 5s
}

// NewNOC validates the wiring.
func NewNOC(cfg NOCConfig) (*NOC, error) {
	if cfg.PM == nil {
		return nil, fmt.Errorf("agent: NOC needs a path matrix")
	}
	if len(cfg.Monitors) == 0 {
		return nil, fmt.Errorf("agent: NOC needs monitors")
	}
	if cfg.SourceOf == nil {
		return nil, fmt.Errorf("agent: NOC needs a path→monitor mapping")
	}
	dt := cfg.DialTimeout
	if dt == 0 {
		dt = 5 * time.Second
	}
	monitors := make(map[string]string, len(cfg.Monitors))
	for k, v := range cfg.Monitors {
		monitors[k] = v
	}
	return &NOC{pm: cfg.PM, monitors: monitors, srcOf: cfg.SourceOf, dialTimeout: dt}, nil
}

// Measurement is one collected end-to-end measurement.
type Measurement struct {
	PathID int
	OK     bool
	Value  float64
}

// CollectEpoch probes the selected paths for the given epoch, one TCP
// session per involved monitor, requests pipelined per session and
// sessions fanned out concurrently. Results come back sorted by path ID.
func (n *NOC) CollectEpoch(ctx context.Context, epoch int, selected []int) ([]Measurement, error) {
	// Group paths by their source monitor.
	byMonitor := map[string][]int{}
	for _, p := range selected {
		if p < 0 || p >= n.pm.NumPaths() {
			return nil, fmt.Errorf("agent: path %d out of range", p)
		}
		name := n.srcOf(p)
		if _, ok := n.monitors[name]; !ok {
			return nil, fmt.Errorf("agent: no monitor registered for %q (path %d)", name, p)
		}
		byMonitor[name] = append(byMonitor[name], p)
	}

	type batch struct {
		results []Measurement
		err     error
	}
	out := make(chan batch, len(byMonitor))
	var wg sync.WaitGroup
	for name, paths := range byMonitor {
		wg.Add(1)
		go func(name string, paths []int) {
			defer wg.Done()
			results, err := n.probeSession(ctx, name, epoch, paths)
			out <- batch{results: results, err: err}
		}(name, paths)
	}
	wg.Wait()
	close(out)

	var all []Measurement
	for b := range out {
		if b.err != nil {
			return nil, b.err
		}
		all = append(all, b.results...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].PathID < all[j].PathID })
	return all, nil
}

// probeSession opens one connection to a monitor and pipelines the probes
// for all its paths.
func (n *NOC) probeSession(ctx context.Context, name string, epoch int, paths []int) ([]Measurement, error) {
	dialer := net.Dialer{Timeout: n.dialTimeout}
	conn, err := dialer.DialContext(ctx, "tcp", n.monitors[name])
	if err != nil {
		return nil, fmt.Errorf("agent: dial monitor %s: %w", name, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("agent: set deadline: %w", err)
		}
	}

	w := bufio.NewWriter(conn)
	for _, p := range paths {
		req := ProbeRequest{
			Type:    MsgProbe,
			Epoch:   epoch,
			PathID:  p,
			Links:   n.pm.EdgesOf(p),
			DstName: fmt.Sprintf("path-%d-dst", p),
		}
		if err := writeMsg(w, req); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, fmt.Errorf("agent: flush to %s: %w", name, err)
	}

	r := bufio.NewReader(conn)
	results := make([]Measurement, 0, len(paths))
	for range paths {
		line, err := readLine(r)
		if err != nil {
			return nil, fmt.Errorf("agent: read from %s: %w", name, err)
		}
		var res ProbeResult
		if err := unmarshalStrict(line, &res); err != nil {
			return nil, err
		}
		if res.Type != MsgResult {
			return nil, fmt.Errorf("agent: unexpected %q from %s", res.Type, name)
		}
		if res.Epoch != epoch {
			return nil, fmt.Errorf("agent: stale epoch %d from %s (want %d)", res.Epoch, name, epoch)
		}
		results = append(results, Measurement{PathID: res.PathID, OK: res.OK, Value: res.Value})
	}
	return results, nil
}

// EpochOracle is the LinkOracle used across this repository's examples and
// tests: ground-truth link metrics plus a per-epoch failure scenario
// schedule. Epoch scenarios are fixed up front so every monitor observes a
// consistent network state.
type EpochOracle struct {
	metrics   []float64
	scenarios []failure.Scenario
}

// NewEpochOracle builds an oracle over ground-truth metrics and a schedule
// of failure scenarios (epoch e uses scenarios[e]; epochs beyond the
// schedule see a failure-free network).
func NewEpochOracle(metrics []float64, scenarios []failure.Scenario) (*EpochOracle, error) {
	if len(metrics) == 0 {
		return nil, fmt.Errorf("agent: no link metrics")
	}
	for _, sc := range scenarios {
		if len(sc.Failed) != len(metrics) {
			return nil, fmt.Errorf("agent: scenario covers %d links, metrics %d", len(sc.Failed), len(metrics))
		}
	}
	cp := make([]float64, len(metrics))
	copy(cp, metrics)
	return &EpochOracle{metrics: cp, scenarios: scenarios}, nil
}

var _ LinkOracle = (*EpochOracle)(nil)

// Measure implements LinkOracle.
func (o *EpochOracle) Measure(epoch int, links []int) (float64, bool) {
	var sc *failure.Scenario
	if epoch >= 0 && epoch < len(o.scenarios) {
		sc = &o.scenarios[epoch]
	}
	sum := 0.0
	for _, l := range links {
		if l < 0 || l >= len(o.metrics) {
			return 0, false
		}
		if sc != nil && sc.Failed[l] {
			return 0, false
		}
		sum += o.metrics[l]
	}
	return sum, true
}
