package agent

import (
	"context"
	"math/rand/v2"
	"time"
)

// RetryPolicy bounds how hard the NOC tries to collect from one monitor
// within one epoch. Zero fields take the DefaultRetryPolicy values; set
// MaxAttempts to 1 to disable retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of connect+exchange attempts per
	// monitor per epoch (not per probe). 0 means 3.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry. 0 means 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. 0 means 2s.
	MaxBackoff time.Duration
	// Multiplier is the exponential growth factor. 0 means 2.
	Multiplier float64
	// Jitter is the fraction of the backoff randomized away, in [0, 1]:
	// the k-th retry sleeps min(Base·Mult^(k−1), Max) · (1 − Jitter·U)
	// with U uniform in [0, 1) drawn from a deterministic per-monitor
	// stream (stats.NewRNG seeded by NOCConfig.Seed). 0 means 0.5; set a
	// negative value for no jitter.
	Jitter float64
}

// DefaultRetryPolicy returns the retry defaults: 3 attempts, 50ms base
// backoff doubling up to 2s, half-range deterministic jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
		Multiplier:  2,
		Jitter:      0.5,
	}
}

// withDefaults fills zero fields with the default values.
func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts == 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	if p.Multiplier == 0 {
		p.Multiplier = d.Multiplier
	}
	if p.Jitter == 0 {
		p.Jitter = d.Jitter
	} else if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// backoff returns the sleep before retry number attempt (attempt ≥ 1 is
// the retry after the attempt-th failure). The rng supplies the
// deterministic jitter stream; it must not be shared across goroutines.
func (p RetryPolicy) backoff(attempt int, rng *rand.Rand) time.Duration {
	d := float64(p.BaseBackoff)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxBackoff) {
			d = float64(p.MaxBackoff)
			break
		}
	}
	if d > float64(p.MaxBackoff) {
		d = float64(p.MaxBackoff)
	}
	if p.Jitter > 0 && rng != nil {
		d *= 1 - p.Jitter*rng.Float64()
	}
	return time.Duration(d)
}

// BreakerPolicy configures the per-monitor circuit breaker. Zero fields
// take the DefaultBreakerPolicy values.
type BreakerPolicy struct {
	// FailureThreshold is the number of consecutive failed attempts that
	// trips the breaker from closed to open. 0 means 5.
	FailureThreshold int
	// Cooldown is how long an open breaker rejects attempts before
	// admitting one half-open probe. 0 means 2s.
	Cooldown time.Duration
	// Disabled turns the breaker into a pass-through (every attempt is
	// admitted, state stays closed).
	Disabled bool
}

// DefaultBreakerPolicy returns the breaker defaults: trip after 5
// consecutive failures, 2s cooldown before the half-open probe.
func DefaultBreakerPolicy() BreakerPolicy {
	return BreakerPolicy{FailureThreshold: 5, Cooldown: 2 * time.Second}
}

// withDefaults fills zero fields with the default values.
func (p BreakerPolicy) withDefaults() BreakerPolicy {
	d := DefaultBreakerPolicy()
	if p.FailureThreshold == 0 {
		p.FailureThreshold = d.FailureThreshold
	}
	if p.Cooldown == 0 {
		p.Cooldown = d.Cooldown
	}
	return p
}

// Timeouts groups the collection deadlines. Zero fields take the
// DefaultTimeouts values.
type Timeouts struct {
	// Dial bounds one connection attempt. 0 means 5s.
	Dial time.Duration
	// Exchange bounds one request/response exchange with a monitor (the
	// whole pipelined epoch batch for that monitor). 0 means 10s; the
	// context deadline still applies when sooner.
	Exchange time.Duration
}

// DefaultTimeouts returns the timeout defaults: 5s dial, 10s exchange.
func DefaultTimeouts() Timeouts {
	return Timeouts{Dial: 5 * time.Second, Exchange: 10 * time.Second}
}

// withDefaults fills zero fields with the default values.
func (t Timeouts) withDefaults() Timeouts {
	d := DefaultTimeouts()
	if t.Dial == 0 {
		t.Dial = d.Dial
	}
	if t.Exchange == 0 {
		t.Exchange = d.Exchange
	}
	return t
}

// sleepCtx sleeps for d or until the context is done, reporting whether
// the full sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
