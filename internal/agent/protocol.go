// Package agent is the measurement-collection substrate: monitor agents
// that answer probes over TCP and a Network Operations Center (NOC)
// collector that schedules epochs, probes the selected paths through the
// monitors, injects link failures, and hands the surviving end-to-end
// measurements to the tomography stack.
//
// The paper assumes this plumbing exists ("monitors probe each other to
// collect e2e measurements ... centrally collected at a NOC"); this package
// builds it as an in-process distributed system: every monitor is a real
// TCP server speaking a line-delimited JSON protocol, and the NOC fans
// probe requests out concurrently. The network itself is simulated — a
// probe's measured value is the sum of the ground-truth link metrics on its
// path, and a probe fails when any link on the path is down in the current
// epoch — which preserves exactly the linear-system semantics (Eq. 1) the
// algorithms consume.
package agent

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// MsgType enumerates protocol messages.
type MsgType string

// Protocol message types.
const (
	MsgProbe    MsgType = "probe"    // NOC → monitor: measure a path
	MsgResult   MsgType = "result"   // monitor → NOC: measurement outcome
	MsgShutdown MsgType = "shutdown" // NOC → monitor: drain and exit
)

// ProbeRequest asks a monitor to probe one path during one epoch.
type ProbeRequest struct {
	Type    MsgType `json:"type"`
	Epoch   int     `json:"epoch"`
	PathID  int     `json:"pathId"`
	Links   []int   `json:"links"` // link IDs along the path
	DstName string  `json:"dstName"`
}

// ProbeResult reports a measurement back to the NOC.
//
// Value must not carry omitempty: a legitimate measurement of exactly 0
// would be silently dropped from the wire and the NOC could not tell it
// apart from an absent field (regression-tested by
// TestProbeResultZeroValueRoundTrip).
type ProbeResult struct {
	Type    MsgType `json:"type"`
	Epoch   int     `json:"epoch"`
	PathID  int     `json:"pathId"`
	OK      bool    `json:"ok"` // false when a link on the path was down
	Value   float64 `json:"value"`
	Monitor string  `json:"monitor"`
}

// marshalMsg marshals v as one JSON line, newline included.
func marshalMsg(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("agent: marshal: %w", err)
	}
	return append(data, '\n'), nil
}

// writeMsg marshals v as one JSON line.
func writeMsg(w io.Writer, v any) error {
	data, err := marshalMsg(v)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("agent: write: %w", err)
	}
	return nil
}

// maxLine bounds one JSON protocol line (including the newline). The bound
// is enforced *during* the read: the loop below accumulates at most one
// bufio buffer past the limit before erroring, so a malicious peer cannot
// force an unbounded allocation by never sending a newline (the old
// ReadBytes-then-check shape buffered the whole line first).
const maxLine = 1 << 20

// readLine reads one protocol line, bounded to keep malicious peers from
// exhausting memory.
func readLine(r *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		frag, err := r.ReadSlice('\n')
		if len(line)+len(frag) > maxLine {
			return nil, fmt.Errorf("agent: oversized message (> %d bytes)", maxLine)
		}
		line = append(line, frag...)
		switch err {
		case nil:
			return line, nil
		case bufio.ErrBufferFull:
			continue // keep accumulating, bound checked per fragment
		default:
			return nil, err
		}
	}
}

// peekType extracts the type field without committing to a full decode.
func peekType(line []byte) (MsgType, error) {
	var head struct {
		Type MsgType `json:"type"`
	}
	if err := json.Unmarshal(line, &head); err != nil {
		return "", fmt.Errorf("agent: malformed message: %w", err)
	}
	return head.Type, nil
}
