package agent

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

// TestProbeResultZeroValueRoundTrip is the regression test for the
// `omitempty` bug: a successful probe whose measurement is exactly 0 must
// survive the wire with the value field present, not silently dropped and
// re-zeroed on the far side (indistinguishable from an absent field).
func TestProbeResultZeroValueRoundTrip(t *testing.T) {
	res := ProbeResult{
		Type:    MsgResult,
		Epoch:   3,
		PathID:  7,
		OK:      true,
		Value:   0,
		Monitor: "m0",
	}
	var buf bytes.Buffer
	if err := writeMsg(&buf, res); err != nil {
		t.Fatalf("writeMsg: %v", err)
	}
	if !strings.Contains(buf.String(), `"value":0`) {
		t.Fatalf("zero value omitted from the wire: %s", buf.String())
	}
	line, err := readLine(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("readLine: %v", err)
	}
	var got ProbeResult
	if err := json.Unmarshal(line, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != res {
		t.Fatalf("round trip: got %+v, want %+v", got, res)
	}
}

// countingReader counts how many bytes the consumer actually pulled, so
// the oversized-line test can prove the limit is enforced during the read
// rather than after buffering the whole line.
type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// TestReadLineBoundedDuringRead feeds a 64 MiB newline-free stream into
// readLine: it must reject the line having consumed barely more than the
// 1 MiB bound, instead of buffering the whole stream before checking.
func TestReadLineBoundedDuringRead(t *testing.T) {
	const streamSize = 64 << 20
	src := &countingReader{r: io.LimitReader(neverNewline{}, streamSize)}
	r := bufio.NewReader(src)
	if _, err := readLine(r); err == nil {
		t.Fatal("readLine accepted an oversized line")
	}
	// One bufio buffer of slack past the bound is the allowed overshoot.
	if limit := maxLine + 64<<10; src.n > limit {
		t.Fatalf("readLine consumed %d bytes before rejecting (limit %d): bound not enforced during the read", src.n, limit)
	}
}

// TestReadLineOversizedWithNewline covers the original shape of the bug: a
// well-terminated but oversized line must still be rejected without
// buffering it whole.
func TestReadLineOversizedWithNewline(t *testing.T) {
	huge := strings.Repeat("x", maxLine+5) + "\n"
	src := &countingReader{r: strings.NewReader(huge)}
	if _, err := readLine(bufio.NewReader(src)); err == nil {
		t.Fatal("readLine accepted an oversized terminated line")
	}
	if limit := maxLine + 64<<10; src.n > limit {
		t.Fatalf("readLine consumed %d bytes before rejecting (limit %d)", src.n, limit)
	}
}

// TestReadLineAcceptsLongValidLines makes sure the in-read bound did not
// shrink the accepted line length: a line just under the cap still reads
// whole, across many bufio refills.
func TestReadLineAcceptsLongValidLines(t *testing.T) {
	payload := strings.Repeat("y", maxLine-1) + "\n"
	line, err := readLine(bufio.NewReader(strings.NewReader(payload)))
	if err != nil {
		t.Fatalf("readLine rejected a %d-byte line under the bound: %v", len(payload), err)
	}
	if len(line) != len(payload) {
		t.Fatalf("readLine returned %d bytes, want %d", len(line), len(payload))
	}
}

// neverNewline is an infinite stream with no newline in it.
type neverNewline struct{}

func (neverNewline) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 'z'
	}
	return len(p), nil
}
