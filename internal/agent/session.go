package agent

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"time"

	"robusttomo/internal/obs"
)

// DialFunc opens a connection to a monitor; it matches
// (*net.Dialer).DialContext so custom dialers (fault injection, proxies,
// in-memory transports) drop in.
type DialFunc func(ctx context.Context, network, addr string) (net.Conn, error)

// session is one persistent NOC→monitor connection. It survives across
// epochs — reconnecting lazily after any error — so steady-state
// collection pays one dial per monitor lifetime, not per epoch. A session
// is not safe for concurrent use; the NOC serializes access per monitor.
type session struct {
	name     string
	addr     string
	dial     DialFunc
	timeouts Timeouts

	// dialSeconds, when non-nil, times each dial attempt (success or
	// failure); nil skips the clock reads entirely.
	dialSeconds *obs.Histogram

	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

func newSession(name, addr string, dial DialFunc, timeouts Timeouts) *session {
	return &session{name: name, addr: addr, dial: dial, timeouts: timeouts}
}

// connected reports whether the session currently holds a live connection
// (as far as it knows — a dead peer is only discovered on the next
// exchange).
func (s *session) connected() bool { return s.conn != nil }

// connect ensures a live connection, dialing if needed.
func (s *session) connect(ctx context.Context) error {
	if s.conn != nil {
		return nil
	}
	dctx := ctx
	if s.timeouts.Dial > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, s.timeouts.Dial)
		defer cancel()
	}
	var dialStart time.Time
	if s.dialSeconds != nil {
		dialStart = time.Now()
	}
	conn, err := s.dial(dctx, "tcp", s.addr)
	if s.dialSeconds != nil {
		s.dialSeconds.Observe(time.Since(dialStart).Seconds())
	}
	if err != nil {
		return fmt.Errorf("dial %s (%s): %w", s.name, s.addr, err)
	}
	s.conn = conn
	s.r = bufio.NewReader(conn)
	s.w = bufio.NewWriter(conn)
	return nil
}

// reset tears the connection down so the next exchange redials. Called
// after any exchange error: a failed pipelined batch leaves the stream in
// an unknown position, and a fresh connection is the only safe recovery.
func (s *session) reset() {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
		s.r = nil
		s.w = nil
	}
}

// exchange pipelines the probe requests for one epoch over the session and
// reads the matching results. Any failure resets the session before
// returning, so the caller's retry redials.
func (s *session) exchange(ctx context.Context, epoch int, reqs []ProbeRequest) ([]Measurement, error) {
	if err := s.connect(ctx); err != nil {
		return nil, err
	}
	deadline := time.Time{}
	if s.timeouts.Exchange > 0 {
		deadline = time.Now().Add(s.timeouts.Exchange)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	if err := s.conn.SetDeadline(deadline); err != nil {
		s.reset()
		return nil, fmt.Errorf("set deadline for %s: %w", s.name, err)
	}

	for i := range reqs {
		if err := writeMsg(s.w, reqs[i]); err != nil {
			s.reset()
			return nil, fmt.Errorf("write to %s: %w", s.name, err)
		}
	}
	if err := s.w.Flush(); err != nil {
		s.reset()
		return nil, fmt.Errorf("flush to %s: %w", s.name, err)
	}

	results := make([]Measurement, 0, len(reqs))
	for range reqs {
		line, err := readLine(s.r)
		if err != nil {
			s.reset()
			return nil, fmt.Errorf("read from %s: %w", s.name, err)
		}
		var res ProbeResult
		if err := unmarshalStrict(line, &res); err != nil {
			s.reset()
			return nil, fmt.Errorf("decode from %s: %w", s.name, err)
		}
		if res.Type != MsgResult {
			s.reset()
			return nil, fmt.Errorf("unexpected %q from %s", res.Type, s.name)
		}
		if res.Epoch != epoch {
			s.reset()
			return nil, fmt.Errorf("stale epoch %d from %s (want %d)", res.Epoch, s.name, epoch)
		}
		results = append(results, Measurement{PathID: res.PathID, OK: res.OK, Value: res.Value})
	}
	// Clear the deadline so an idle epoch gap cannot poison the next
	// exchange on this connection.
	if err := s.conn.SetDeadline(time.Time{}); err != nil {
		s.reset()
	}
	return results, nil
}
