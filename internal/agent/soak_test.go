package agent

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"testing"
	"time"

	"robusttomo/internal/graph"
	"robusttomo/internal/routing"
	"robusttomo/internal/stats"
	"robusttomo/internal/tomo"
)

// TestAgentSoak hammers the fault-tolerant collection plane for a few
// seconds: three monitors behind seeded fault scripts (rejects, mid-stream
// resets, garbage frames), four concurrent collectors, and a monitor that
// is killed and restarted mid-run. Invariants: every epoch ends in either
// full data or a typed *CollectionError, OK measurements are exact, and
// the run finishes inside the bound.
//
// Gated behind AGENT_SOAK=1 (wired as `make soak-agent`, bounded < 30s);
// the regular suite covers the same paths with single-shot scripts.
func TestAgentSoak(t *testing.T) {
	if os.Getenv("AGENT_SOAK") == "" {
		t.Skip("set AGENT_SOAK=1 (make soak-agent) to run the fault-injection soak")
	}

	const (
		numMonitors = 3
		pathsPerMon = 4
		workers     = 4
		soakFor     = 5 * time.Second
	)
	var paths []routing.Path
	links := numMonitors * pathsPerMon
	metrics := make([]float64, links)
	for m := 0; m < numMonitors; m++ {
		for p := 0; p < pathsPerMon; p++ {
			l := m*pathsPerMon + p
			paths = append(paths, routing.Path{Src: graph.NodeID(m), Dst: 99, Edges: []graph.EdgeID{graph.EdgeID(l)}})
			metrics[l] = 1 + float64(l)*0.5
		}
	}
	pm, err := tomo.NewPathMatrix(paths, links)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewEpochOracle(metrics, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Seeded fault scripts: a deterministic mix of rejects, mid-stream
	// resets and garbage frames, then clean connections forever.
	rng := stats.NewRNG(2014, 0xF417)
	names := make([]string, numMonitors)
	addrs := map[string]string{}
	for m := 0; m < numMonitors; m++ {
		names[m] = fmt.Sprintf("m%d", m)
		var script []ConnFault
		for i := 0; i < 20; i++ {
			switch rng.IntN(4) {
			case 0:
				script = append(script, ConnFault{Reject: true})
			case 1:
				script = append(script, ConnFault{ServeReplies: 1 + rng.IntN(pathsPerMon)})
			case 2:
				script = append(script, ConnFault{GarbageReplies: 1})
			default:
				script = append(script, ConnFault{}) // clean
			}
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		mon, err := StartMonitorOn(names[m], NewFaultyListener(ln, script...), oracle)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { mon.Close() })
		addrs[names[m]] = mon.Addr()
		if m == 0 {
			// Monitor 0 gets killed and restarted mid-soak.
			go func(addr string) {
				time.Sleep(soakFor / 3)
				mon.Close()
				time.Sleep(soakFor / 3)
				ln2, err := net.Listen("tcp", addr)
				if err != nil {
					return // port raced away; the soak tolerates it
				}
				mon2, err := StartMonitorOn(names[0], ln2, oracle)
				if err != nil {
					return
				}
				t.Cleanup(func() { mon2.Close() })
			}(mon.Addr())
		}
	}

	noc, err := NewNOC(NOCConfig{
		PM:       pm,
		Monitors: addrs,
		SourceOf: func(p int) string { return names[pm.Path(p).Src] },
		Retry:    RetryPolicy{MaxAttempts: 3, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond, Multiplier: 2, Jitter: 0.5},
		Breaker:  BreakerPolicy{FailureThreshold: 4, Cooldown: 200 * time.Millisecond},
		Timeouts: Timeouts{Dial: 300 * time.Millisecond, Exchange: 2 * time.Second},
		Seed:     2014,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer noc.Close()

	selected := make([]int, pm.NumPaths())
	for i := range selected {
		selected[i] = i
	}
	deadline := time.Now().Add(soakFor)
	ctx, cancel := context.WithTimeout(context.Background(), soakFor+10*time.Second)
	defer cancel()

	type tally struct {
		epochs, degraded, measurements int
	}
	results := make(chan tally, workers)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			var tl tally
			for epoch := w; time.Now().Before(deadline); epoch += workers {
				ms, err := noc.CollectEpoch(ctx, epoch, selected)
				tl.epochs++
				if err != nil {
					var cerr *CollectionError
					if !errors.As(err, &cerr) {
						errs <- fmt.Errorf("epoch %d: untyped error %v", epoch, err)
						return
					}
					if !errors.Is(err, ErrMonitorUnreachable) && !errors.Is(err, ErrCircuitOpen) {
						errs <- fmt.Errorf("epoch %d: no sentinel in chain: %v", epoch, err)
						return
					}
					tl.degraded++
				}
				for _, m := range ms {
					tl.measurements++
					if !m.OK || math.Abs(m.Value-metrics[m.PathID]) > 1e-9 {
						errs <- fmt.Errorf("epoch %d: bad measurement %+v", epoch, m)
						return
					}
				}
			}
			results <- tl
			errs <- nil
		}(w)
	}
	var total tally
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		tl := <-results
		total.epochs += tl.epochs
		total.degraded += tl.degraded
		total.measurements += tl.measurements
	}
	if total.epochs == 0 || total.measurements == 0 {
		t.Fatalf("soak made no progress: %+v", total)
	}
	if total.degraded == 0 {
		t.Fatalf("soak never degraded — fault scripts not exercised: %+v", total)
	}
	t.Logf("soak: %d epochs (%d degraded), %d exact measurements, breakers %v",
		total.epochs, total.degraded, total.measurements, noc.BreakerStates())
}
