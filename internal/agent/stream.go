package agent

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"robusttomo/internal/obs"
	"robusttomo/internal/tomo"
)

// StreamNOC is the streaming collection plane: the batched, sharded
// successor to NOC's per-path fan-out. Instead of one JSON line per probe
// and a goroutine per monitor per epoch, it keeps every monitor session
// persistent inside one of N shards, sends one batched probe frame per
// monitor per epoch through the shard's event loop, ingests result frames
// continuously off per-connection reader goroutines, and assembles epochs
// at a watermark: an epoch is handed back when every expected path reported
// or when the watermark elapses, whichever comes first. Results that arrive
// after their epoch sealed are folded forward into the next epoch's
// AssembledEpoch.Late instead of being dropped.
//
// Sessions are logical: SessionsPerConn of them multiplex over each TCP
// connection (the batch frames carry the session's monitor name, and the
// monitor echoes it back), so 100k monitor sessions fit in a few thousand
// file descriptors. Shard ownership is static — a monitor's session,
// breaker and transport never migrate — so per-session state needs no
// cross-shard coordination.
//
// Failure semantics mirror the legacy NOC: per-session circuit breakers
// deny sends to monitors that keep failing, failed or missing monitors
// degrade the epoch via *CollectionError (wrapping ErrMonitorUnreachable,
// plus ErrWatermark or ErrBackpressure for the streaming-specific causes),
// and FailFast restores abort-the-epoch. StreamNOC implements the same
// CollectEpoch contract as NOC, so it drops into sim.Runner unchanged.
type StreamNOC struct {
	pm       *tomo.PathMatrix
	srcOf    func(path int) string
	cfg      StreamConfig
	m        *streamMetrics
	asm      *assembler
	shards   []*streamShard
	sessions map[string]*streamSession

	// baseCtx governs in-flight sends and dials; Close cancels it so a
	// wedged dial cannot stall shutdown.
	baseCtx   context.Context
	cancel    context.CancelFunc
	closeOnce sync.Once
	closed    chan struct{}
}

// StreamConfig wires up a streaming collector.
type StreamConfig struct {
	PM *tomo.PathMatrix
	// Monitors maps monitor names to TCP addresses. Many monitors may
	// share an address: sessions are multiplexed over connections, and the
	// frame's monitor field carries the session identity.
	Monitors map[string]string
	// SourceOf returns the monitor name responsible for probing a path.
	SourceOf func(path int) string

	// Shards is the number of session shards, each with its own send queue
	// and event loop. 0 means 4.
	Shards int
	// SessionsPerConn is how many monitor sessions multiplex over one TCP
	// connection (sessions sharing a shard and an address are chunked into
	// transports of this size). 0 means 32.
	SessionsPerConn int
	// Watermark bounds how long CollectAssembled waits for stragglers
	// after the last expected path is outstanding. 0 means 2s.
	Watermark time.Duration
	// MaxLate bounds the late-result buffer folded into the next seal.
	// 0 means 65536.
	MaxLate int
	// QueueDepth bounds each shard's send queue; enqueueing into a full
	// queue drops the batch (ErrBackpressure) instead of stalling the
	// epoch loop. 0 means 1024.
	QueueDepth int
	// Encoding selects the batch frame codec (EncodingBinary default, or
	// EncodingJSON for debugging with line-oriented tools).
	Encoding Encoding

	// Retry bounds send attempts per batch (no backoff sleeps inside the
	// shard loop — the breaker provides cross-epoch backoff); zero fields
	// take DefaultRetryPolicy values.
	Retry RetryPolicy
	// Breaker configures the per-session circuit breaker.
	Breaker BreakerPolicy
	// Timeouts groups the dial and per-send write deadlines.
	Timeouts Timeouts
	// FailFast aborts the whole epoch on any failed monitor.
	FailFast bool
	// Seed derives deterministic per-session jitter streams.
	Seed uint64
	// Dial overrides the TCP dialer.
	Dial DialFunc
	// Observer receives the streaming plane's metrics; nil runs
	// unobserved.
	Observer *obs.Registry

	// now is the injectable clock for the watermark-lag metric (tests).
	now func() time.Time
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.SessionsPerConn <= 0 {
		c.SessionsPerConn = 32
	}
	if c.Watermark <= 0 {
		c.Watermark = 2 * time.Second
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	c.Retry = c.Retry.withDefaults()
	c.Breaker = c.Breaker.withDefaults()
	c.Timeouts = c.Timeouts.withDefaults()
	if c.Dial == nil {
		c.Dial = (&net.Dialer{}).DialContext
	}
	return c
}

// streamSession is one logical monitor session: breaker state, jitter
// stream and a fixed transport assignment. The session mutex only guards
// the breaker gauge write ordering; breakers are internally locked.
type streamSession struct {
	name     string
	shard    int
	tr       *streamTransport
	brk      *breaker
	brkGauge *obs.Gauge
}

func (ss *streamSession) setBreakerGauge() {
	ss.brkGauge.Set(float64(ss.brk.State()))
}

// streamJob is one batched probe send queued on a shard.
type streamJob struct {
	sess  *streamSession
	batch ProbeBatch
	// fail reports the paths as unsendable back to the collecting epoch
	// (records the outcome and shrinks the assembler expectation).
	fail func(attempts int, err error)
}

// streamShard owns a slice of the session table: a bounded send queue
// drained by one event loop goroutine, plus the transports its sessions
// write through.
type streamShard struct {
	id         int
	queue      chan streamJob
	depthGauge *obs.Gauge
	transports []*streamTransport
	wg         sync.WaitGroup
}

// streamTransport is one multiplexed TCP connection: up to SessionsPerConn
// sessions write through it (serialized by the shard event loop plus the
// transport mutex), and one reader goroutine per live connection delivers
// result frames to the assembler.
type streamTransport struct {
	addr     string
	dial     DialFunc
	timeouts Timeouts
	onFrame  func(*ResultBatch)
	dialHist *obs.Histogram

	mu   sync.Mutex
	conn net.Conn
	gen  int // connection generation; a reader only tears down its own conn

	readers sync.WaitGroup
}

func (t *streamTransport) connectLocked(ctx context.Context) error {
	if t.conn != nil {
		return nil
	}
	dctx := ctx
	if t.timeouts.Dial > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, t.timeouts.Dial)
		defer cancel()
	}
	var start time.Time
	if t.dialHist != nil {
		start = time.Now()
	}
	conn, err := t.dial(dctx, "tcp", t.addr)
	if t.dialHist != nil {
		t.dialHist.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		return fmt.Errorf("dial %s: %w", t.addr, err)
	}
	t.conn = conn
	t.gen++
	gen := t.gen
	t.readers.Add(1)
	go t.readLoop(conn, gen)
	return nil
}

// readLoop drains result frames off one connection until it dies, handing
// each to the assembler via onFrame. Any read error (including the NOC
// closing the conn) ends the loop; the next send redials.
func (t *streamTransport) readLoop(conn net.Conn, gen int) {
	defer t.readers.Done()
	r := newFrameReader(conn)
	for {
		msg, err := readMessage(r)
		if err != nil {
			t.lost(conn, gen)
			return
		}
		if rb, ok := msg.(*ResultBatch); ok {
			t.onFrame(rb)
		}
		// Anything else on the NOC side of the stream is protocol noise;
		// skip it rather than killing a connection shared by many sessions.
	}
}

// lost tears down the transport's connection if it is still the one the
// failed reader was serving.
func (t *streamTransport) lost(conn net.Conn, gen int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.gen == gen && t.conn == conn {
		t.conn.Close()
		t.conn = nil
	} else {
		conn.Close()
	}
}

// send writes one encoded frame, connecting if needed. Any error resets
// the connection so the next send redials.
func (t *streamTransport) send(ctx context.Context, frame []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.connectLocked(ctx); err != nil {
		return err
	}
	if t.timeouts.Exchange > 0 {
		if err := t.conn.SetWriteDeadline(time.Now().Add(t.timeouts.Exchange)); err != nil {
			t.resetLocked()
			return fmt.Errorf("deadline %s: %w", t.addr, err)
		}
	}
	if _, err := t.conn.Write(frame); err != nil {
		t.resetLocked()
		return fmt.Errorf("write %s: %w", t.addr, err)
	}
	if err := t.conn.SetWriteDeadline(time.Time{}); err != nil {
		t.resetLocked()
		return fmt.Errorf("deadline %s: %w", t.addr, err)
	}
	return nil
}

func (t *streamTransport) resetLocked() {
	if t.conn != nil {
		t.conn.Close() // the reader notices and exits via lost()
		t.conn = nil
	}
}

func (t *streamTransport) close() {
	t.mu.Lock()
	t.resetLocked()
	t.mu.Unlock()
	t.readers.Wait()
}

// collectState accumulates send-side failures for one in-flight epoch; the
// watermark seal merges them with the paths still missing.
type collectState struct {
	mu       sync.Mutex
	sealed   bool
	outcomes map[string]*MonitorOutcome
}

func (cs *collectState) fail(name string, paths []int, attempts int, err error) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.sealed {
		return false
	}
	cs.outcomes[name] = &MonitorOutcome{Monitor: name, Paths: paths, Attempts: attempts, Err: err}
	return true
}

// NewStreamNOC validates the wiring and starts the shard event loops.
func NewStreamNOC(cfg StreamConfig) (*StreamNOC, error) {
	if cfg.PM == nil {
		return nil, fmt.Errorf("agent: stream NOC needs a path matrix")
	}
	if len(cfg.Monitors) == 0 {
		return nil, fmt.Errorf("agent: stream NOC needs monitors")
	}
	if cfg.SourceOf == nil {
		return nil, fmt.Errorf("agent: stream NOC needs a path→monitor mapping")
	}
	cfg = cfg.withDefaults()
	m := newStreamMetrics(cfg.Observer)
	s := &StreamNOC{
		pm:       cfg.PM,
		srcOf:    cfg.SourceOf,
		cfg:      cfg,
		m:        m,
		asm:      newAssembler(cfg.now, cfg.MaxLate),
		sessions: make(map[string]*streamSession, len(cfg.Monitors)),
		closed:   make(chan struct{}),
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())

	// Deterministic session order: sorted monitor names, sharded by name
	// hash so ownership is stable across restarts regardless of map order.
	names := make([]string, 0, len(cfg.Monitors))
	for name := range cfg.Monitors {
		names = append(names, name)
	}
	sort.Strings(names)

	s.shards = make([]*streamShard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = &streamShard{
			id:         i,
			queue:      make(chan streamJob, cfg.QueueDepth),
			depthGauge: m.queueDepth.With(strconv.Itoa(i)),
		}
	}

	// Group each shard's sessions by monitor address and chunk the groups
	// into transports of SessionsPerConn sessions each.
	type trKey struct {
		shard int
		addr  string
	}
	open := make(map[trKey]*streamTransport)
	fill := make(map[trKey]int)
	for _, name := range names {
		addr := cfg.Monitors[name]
		shard := int(streamOf(name) % uint64(cfg.Shards))
		key := trKey{shard, addr}
		tr := open[key]
		if tr == nil || fill[key] >= cfg.SessionsPerConn {
			tr = &streamTransport{
				addr:     addr,
				dial:     cfg.Dial,
				timeouts: cfg.Timeouts,
				onFrame:  s.handleResultBatch,
				dialHist: m.dialSeconds,
			}
			s.shards[shard].transports = append(s.shards[shard].transports, tr)
			open[key] = tr
			fill[key] = 0
		}
		fill[key]++
		ss := &streamSession{
			name:     name,
			shard:    shard,
			tr:       tr,
			brk:      newBreaker(cfg.Breaker),
			brkGauge: m.breakerState.With(name),
		}
		ss.brkGauge.Set(float64(BreakerClosed))
		s.sessions[name] = ss
	}

	for _, sh := range s.shards {
		sh.wg.Add(1)
		go s.shardLoop(sh)
	}
	return s, nil
}

// shardLoop is one shard's event loop: it drains the send queue, encoding
// and writing one batch frame per job. Send failures feed the session
// breaker and report back to the collecting epoch; there is no in-loop
// backoff sleep (that would head-of-line block every session on the
// shard) — the breaker's cooldown provides backoff across epochs, and the
// retry budget here is spent on immediate reconnect attempts.
func (s *StreamNOC) shardLoop(sh *streamShard) {
	defer sh.wg.Done()
	var scratch []byte
	ctx := s.baseCtx
	for {
		var job streamJob
		var ok bool
		select {
		case <-s.closed:
			// Drain without sending so queued epochs fail fast on close.
			select {
			case job, ok = <-sh.queue:
				if !ok {
					return
				}
				job.fail(0, fmt.Errorf("%w: %s: stream NOC closed", ErrMonitorUnreachable, job.sess.name))
				continue
			default:
				return
			}
		case job, ok = <-sh.queue:
			if !ok {
				return
			}
		}
		sh.depthGauge.Set(float64(len(sh.queue)))

		ss := job.sess
		if !ss.brk.allow() {
			s.m.circuitDenied.Inc()
			job.fail(0, fmt.Errorf("%w: monitor %s cooling down", ErrCircuitOpen, ss.name))
			ss.setBreakerGauge()
			continue
		}

		var err error
		scratch, err = EncodeProbeBatch(scratch[:0], s.cfg.Encoding, &job.batch)
		if err != nil {
			// Unencodable batch: a wiring bug, not the monitor's fault.
			job.fail(0, fmt.Errorf("%w: %s: %w", ErrMonitorUnreachable, ss.name, err))
			continue
		}
		attempts := 0
		for attempts < s.cfg.Retry.MaxAttempts {
			attempts++
			s.m.attempts.Inc()
			if attempts > 1 {
				s.m.retries.Inc()
			}
			err = ss.tr.send(ctx, scratch)
			if err == nil {
				break
			}
		}
		if err != nil {
			ss.brk.failure()
			ss.setBreakerGauge()
			job.fail(attempts, fmt.Errorf("%w: %s after %d attempt(s): %w", ErrMonitorUnreachable, ss.name, attempts, err))
			continue
		}
		s.m.framesSent.Inc()
		s.m.batchPaths.Observe(float64(len(job.batch.Paths)))
	}
}

// handleResultBatch is the continuous ingest path, called from transport
// reader goroutines for every result frame on any connection.
func (s *StreamNOC) handleResultBatch(rb *ResultBatch) {
	s.m.framesReceived.Inc()
	ms := make([]Measurement, len(rb.Results))
	for i, r := range rb.Results {
		ms[i] = Measurement{PathID: r.PathID, OK: r.OK, Value: r.Value}
	}
	st := s.asm.ingest(rb.Epoch, ms)
	if st.duplicates > 0 {
		s.m.duplicateResults.Add(uint64(st.duplicates))
	}
	if st.late > 0 {
		s.m.lateResults.Add(uint64(st.late))
	}
	if st.lateDrop > 0 {
		s.m.lateDropped.Add(uint64(st.lateDrop))
	}
	if st.lag > 0 {
		s.m.watermarkLag.Observe(st.lag.Seconds())
	}
	// A frame back from the monitor is proof of life for its session.
	if ss, ok := s.sessions[rb.Monitor]; ok && st.accepted > 0 {
		ss.brk.success()
		ss.setBreakerGauge()
	}
}

// CollectAssembled probes the selected paths for one epoch through the
// sharded streaming plane and returns the watermark-assembled epoch:
// measurements that arrived in time, the paths that missed the watermark,
// and any older-epoch results that folded forward. The error mirrors
// CollectEpoch's contract — a *CollectionError listing per-monitor
// outcomes when the epoch degraded, nil when every path reported.
func (s *StreamNOC) CollectAssembled(ctx context.Context, epoch int, selected []int) (AssembledEpoch, error) {
	if err := ctx.Err(); err != nil {
		return AssembledEpoch{}, err
	}
	select {
	case <-s.closed:
		return AssembledEpoch{}, fmt.Errorf("agent: stream NOC closed")
	default:
	}
	s.m.epochs.Inc()
	sp := s.m.reg.StartSpan("agent.collect_assembled")

	byMonitor := map[string][]int{}
	var order []string
	for _, p := range selected {
		if p < 0 || p >= s.pm.NumPaths() {
			sp.EndDetail("wiring bug: path out of range")
			return AssembledEpoch{}, fmt.Errorf("%w: path %d (matrix has %d)", ErrPathOutOfRange, p, s.pm.NumPaths())
		}
		name := s.srcOf(p)
		if _, ok := s.sessions[name]; !ok {
			sp.EndDetail("wiring bug: unknown monitor")
			return AssembledEpoch{}, fmt.Errorf("%w: %q (path %d)", ErrUnknownMonitor, name, p)
		}
		if _, seen := byMonitor[name]; !seen {
			order = append(order, name)
		}
		byMonitor[name] = append(byMonitor[name], p)
	}

	done, err := s.asm.openEpoch(epoch, selected)
	if err != nil {
		sp.EndDetail("epoch already open")
		return AssembledEpoch{}, err
	}
	cs := &collectState{outcomes: make(map[string]*MonitorOutcome)}

	for _, name := range order {
		name := name
		paths := byMonitor[name]
		ss := s.sessions[name]
		batch := ProbeBatch{
			Type:    MsgBatch,
			Epoch:   epoch,
			Monitor: name,
			Paths:   make([]BatchPath, len(paths)),
		}
		for i, p := range paths {
			batch.Paths[i] = BatchPath{PathID: p, Links: s.pm.EdgesOf(p)}
		}
		job := streamJob{
			sess:  ss,
			batch: batch,
			fail: func(attempts int, err error) {
				if cs.fail(name, paths, attempts, err) {
					s.asm.abandon(epoch, paths)
				}
			},
		}
		sh := s.shards[ss.shard]
		select {
		case sh.queue <- job:
			sh.depthGauge.Set(float64(len(sh.queue)))
		default:
			s.m.backpressureDrops.Inc()
			job.fail(0, fmt.Errorf("%w: %w: shard %d queue full (monitor %s)", ErrMonitorUnreachable, ErrBackpressure, ss.shard, name))
		}
	}

	timer := time.NewTimer(s.cfg.Watermark)
	select {
	case <-done:
	case <-timer.C:
	case <-ctx.Done():
	case <-s.closed:
	}
	timer.Stop()

	cs.mu.Lock()
	cs.sealed = true
	out := s.asm.seal(epoch)
	outcomes := make([]MonitorOutcome, 0, len(cs.outcomes))
	for _, o := range cs.outcomes {
		outcomes = append(outcomes, *o)
	}
	cs.mu.Unlock()

	// Paths still missing at the seal, from monitors without a send-side
	// outcome, missed the watermark: the probe went out and no answer came
	// back in time. That counts as a breaker failure for the session.
	if len(out.Missing) > 0 {
		missingBy := map[string][]int{}
		for _, p := range out.Missing {
			name := s.srcOf(p)
			missingBy[name] = append(missingBy[name], p)
		}
		for name, paths := range missingBy {
			if _, already := cs.outcomes[name]; already {
				continue
			}
			s.m.watermarkMissed.Inc()
			ss := s.sessions[name]
			ss.brk.failure()
			ss.setBreakerGauge()
			outcomes = append(outcomes, MonitorOutcome{
				Monitor:  name,
				Paths:    paths,
				Attempts: 1,
				Err: fmt.Errorf("%w: %w: monitor %s missed %d path(s) at watermark %v",
					ErrMonitorUnreachable, ErrWatermark, name, len(paths), s.cfg.Watermark),
				Breaker: ss.brk.State(),
			})
		}
	}
	for i := range outcomes {
		if ss, ok := s.sessions[outcomes[i].Monitor]; ok {
			outcomes[i].Breaker = ss.brk.State()
		}
	}

	if len(outcomes) > 0 {
		sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].Monitor < outcomes[j].Monitor })
		cerr := &CollectionError{Epoch: epoch, Outcomes: outcomes}
		s.m.degradedEpochs.Inc()
		for _, o := range outcomes {
			s.m.lostPaths.Add(uint64(len(o.Paths)))
		}
		sp.EndDetail(fmt.Sprintf("epoch=%d degraded monitors=%d late=%d", epoch, len(outcomes), len(out.Late)))
		return out, cerr
	}
	sp.EndDetail(fmt.Sprintf("epoch=%d ok late=%d", epoch, len(out.Late)))
	return out, nil
}

// CollectEpoch adapts CollectAssembled to the legacy Collector contract:
// sorted measurements for the epoch, degraded epochs reported via
// *CollectionError, FailFast discarding the epoch outright. Late folded
// results are only available through CollectAssembled.
func (s *StreamNOC) CollectEpoch(ctx context.Context, epoch int, selected []int) ([]Measurement, error) {
	out, err := s.CollectAssembled(ctx, epoch, selected)
	if err != nil {
		if _, ok := err.(*CollectionError); ok && !s.cfg.FailFast {
			return out.Measurements, err
		}
		return nil, err
	}
	return out.Measurements, nil
}

// BreakerStates reports each session's circuit-breaker state.
func (s *StreamNOC) BreakerStates() map[string]BreakerState {
	out := make(map[string]BreakerState, len(s.sessions))
	for name, ss := range s.sessions {
		out[name] = ss.brk.State()
	}
	return out
}

// setClock overrides every session breaker's clock for deterministic
// cooldown tests.
func (s *StreamNOC) setClock(now func() time.Time) {
	for _, ss := range s.sessions {
		ss.brk.now = now
	}
}

// Close shuts the shard loops down, fails any queued sends, tears down
// every transport connection and waits for the reader goroutines. A closed
// StreamNOC stays closed (unlike NOC.Close, which doubles as
// drop-all-connections).
func (s *StreamNOC) Close() error {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.cancel()
		for _, sh := range s.shards {
			sh.wg.Wait()
			for _, tr := range sh.transports {
				tr.close()
			}
		}
	})
	return nil
}

// newFrameReader sizes the transport read buffer for batched frames: big
// enough that a typical result batch needs one read syscall.
func newFrameReader(conn net.Conn) *bufio.Reader {
	return bufio.NewReaderSize(conn, 64<<10)
}
