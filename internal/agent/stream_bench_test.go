package agent

import (
	"context"
	"testing"
	"time"
)

// The collection-plane benchmarks time one full epoch over real loopback
// TCP on the same panel (4 monitors x 128 paths): BenchmarkCollectFrames
// drives the batched streaming plane (binary frames, sharded sessions),
// BenchmarkCollectFramesSerial the legacy per-line JSON NOC. Both report
// the "frames" metric in the baseline's unit — one per-line frame carries
// one path, so the batch plane is credited with the per-line frames its
// batches replace — making frames/sec directly comparable and the
// benchregress speedup pair the headline batching win.

const (
	benchMonitors    = 4
	benchPathsPerMon = 128
)

func BenchmarkCollectFrames(b *testing.B) {
	panel := buildStreamPanel(b, benchMonitors, benchPathsPerMon)
	addrs := panel.startMonitors(b)
	cfg := panel.streamConfig(addrs)
	cfg.Shards = 2
	cfg.Encoding = EncodingBinary
	s, err := NewStreamNOC(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	// Warmup epoch: dial every transport so the timed loop measures the
	// steady state, not connection setup.
	if _, err := s.CollectAssembled(ctx, 0, panel.all); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.CollectAssembled(ctx, i+1, panel.all)
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Measurements) != len(panel.all) {
			b.Fatalf("epoch %d: %d/%d measurements", i+1, len(out.Measurements), len(panel.all))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(panel.all)), "frames")
}

func BenchmarkCollectFramesSerial(b *testing.B) {
	panel := buildStreamPanel(b, benchMonitors, benchPathsPerMon)
	addrs := panel.startMonitors(b)
	n, err := NewNOC(NOCConfig{
		PM:       panel.pm,
		Monitors: addrs,
		SourceOf: panel.sourceOf,
		Timeouts: Timeouts{Dial: 2 * time.Second, Exchange: 2 * time.Second},
		Seed:     2014,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()

	ctx := context.Background()
	if _, err := n.CollectEpoch(ctx, 0, panel.all); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := n.CollectEpoch(ctx, i+1, panel.all)
		if err != nil {
			b.Fatal(err)
		}
		if len(ms) != len(panel.all) {
			b.Fatalf("epoch %d: %d/%d measurements", i+1, len(ms), len(panel.all))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(panel.all)), "frames")
}
