package agent

import (
	"context"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"syscall"
	"testing"
	"time"

	"robusttomo/internal/graph"
	"robusttomo/internal/routing"
	"robusttomo/internal/tomo"
)

// TestStreamSoak drives STREAM_SOAK_SESSIONS (default 100000) logical
// monitor sessions through the streaming plane over the real TCP stack:
// sessions multiplex SessionsPerConn-to-a-connection onto a handful of hub
// Monitor servers, every epoch collects one path per session, and the
// invariants are (a) every epoch assembles completely, (b) heap stays flat
// across epochs (bounded against the post-warmup baseline, the
// flat-memory acceptance criterion), and (c) the run reports its
// sustained frames/sec.
//
// Gated behind STREAM_SOAK=1 (wired as `make soak-stream`). Knobs:
//
//	STREAM_SOAK_SESSIONS      logical monitor sessions (default 100000)
//	STREAM_SOAK_PER_CONN      sessions multiplexed per TCP conn (default 32)
//	STREAM_SOAK_EPOCHS        measured epochs after warmup (default 3)
func TestStreamSoak(t *testing.T) {
	if os.Getenv("STREAM_SOAK") == "" {
		t.Skip("set STREAM_SOAK=1 (make soak-stream) to run the 100k-session streaming soak")
	}
	sessions := soakEnvInt("STREAM_SOAK_SESSIONS", 100000)
	perConn := soakEnvInt("STREAM_SOAK_PER_CONN", 32)
	epochs := soakEnvInt("STREAM_SOAK_EPOCHS", 3)
	const hubs = 8
	const shards = 4

	raiseNOFILE(t)
	// Each TCP connection burns two descriptors (both ends live in this
	// process); clamp the session count if the rlimit cannot carry it.
	conns := (sessions + perConn - 1) / perConn
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err == nil {
		budget := int(lim.Cur) - 512 // headroom for listeners, stdio, runtime
		if conns*2 > budget {
			clamped := budget / 2 * perConn
			log.Printf("stream soak: RLIMIT_NOFILE=%d supports %d conns; clamping %d sessions to %d",
				lim.Cur, budget/2, sessions, clamped)
			sessions = clamped
			conns = (sessions + perConn - 1) / perConn
		}
	}
	t.Logf("soak: %d sessions, %d per conn (%d conns), %d shards, %d epochs",
		sessions, perConn, conns, shards, epochs)

	// One single-link path per session over a small shared link space:
	// PathMatrix rows are dense over links, so the soak keeps the column
	// count fixed (sessions share links round-robin) — the scale target is
	// the session table, not the linear system.
	const links = 512
	paths := make([]routing.Path, sessions)
	metrics := make([]float64, links)
	names := make([]string, sessions)
	for i := 0; i < links; i++ {
		metrics[i] = 1 + float64(i)/8
	}
	for i := 0; i < sessions; i++ {
		paths[i] = routing.Path{Src: graph.NodeID(i), Dst: graph.NodeID(sessions), Edges: []graph.EdgeID{graph.EdgeID(i % links)}}
		names[i] = "s" + strconv.Itoa(i)
	}
	pm, err := tomo.NewPathMatrix(paths, links)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewEpochOracle(metrics, nil)
	if err != nil {
		t.Fatal(err)
	}

	// A few hub servers answer for every session; the batch frames carry
	// the session identity, so one server multiplexes thousands of them.
	hubAddrs := make([]string, hubs)
	for h := 0; h < hubs; h++ {
		mon, err := StartMonitor(fmt.Sprintf("hub%d", h), "127.0.0.1:0", oracle)
		if err != nil {
			t.Fatal(err)
		}
		defer mon.Close()
		hubAddrs[h] = mon.Addr()
	}
	addrs := make(map[string]string, sessions)
	for i, name := range names {
		addrs[name] = hubAddrs[i%hubs]
	}

	selected := make([]int, sessions)
	for i := range selected {
		selected[i] = i
	}
	s, err := NewStreamNOC(StreamConfig{
		PM:              pm,
		Monitors:        addrs,
		SourceOf:        func(p int) string { return names[p] },
		Shards:          shards,
		SessionsPerConn: perConn,
		// Every session enqueues one batch per epoch; the queues must hold
		// a full epoch so backpressure shedding does not skew the soak.
		QueueDepth: sessions/shards + sessions/(2*shards) + 16,
		Watermark:  2 * time.Minute,
		Timeouts:   Timeouts{Dial: 30 * time.Second, Exchange: time.Minute},
		Seed:       2014,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	collect := func(epoch int) {
		t.Helper()
		out, err := s.CollectAssembled(ctx, epoch, selected)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if len(out.Measurements) != sessions || len(out.Missing) != 0 {
			t.Fatalf("epoch %d: %d/%d measurements, %d missing",
				epoch, len(out.Measurements), sessions, len(out.Missing))
		}
	}

	// Warmup epoch: dial every connection, fault in every code path, let
	// the allocator reach steady state before the baseline is taken.
	collect(0)
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	start := time.Now()
	for e := 1; e <= epochs; e++ {
		collect(e)
	}
	elapsed := time.Since(start)

	runtime.GC()
	var end runtime.MemStats
	runtime.ReadMemStats(&end)

	// Flat-memory assertion: steady-state epochs must not grow the heap
	// beyond modest slack over the post-warmup baseline.
	bound := base.HeapAlloc + base.HeapAlloc/2 + 64<<20
	if end.HeapAlloc > bound {
		t.Fatalf("heap grew across epochs: base=%dMB end=%dMB bound=%dMB",
			base.HeapAlloc>>20, end.HeapAlloc>>20, bound>>20)
	}

	frames := float64(sessions*epochs) * 2 // one probe + one result frame per session-epoch
	t.Logf("soak: %d sessions x %d epochs in %v — %.0f frames/sec (%.0f path-measurements/sec), heap %dMB -> %dMB",
		sessions, epochs, elapsed, frames/elapsed.Seconds(),
		float64(sessions*epochs)/elapsed.Seconds(), base.HeapAlloc>>20, end.HeapAlloc>>20)
}

func soakEnvInt(key string, def int) int {
	if v := os.Getenv(key); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// raiseNOFILE lifts the soft descriptor limit to the hard limit. On
// developer containers the hard cap may itself be low; the caller clamps
// its connection budget to whatever sticks.
func raiseNOFILE(t *testing.T) {
	t.Helper()
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		t.Logf("getrlimit NOFILE: %v", err)
		return
	}
	if lim.Cur < lim.Max {
		lim.Cur = lim.Max
		if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
			t.Logf("setrlimit NOFILE %d->%d: %v", lim.Cur, lim.Max, err)
		}
	}
}
