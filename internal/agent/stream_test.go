package agent

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"robusttomo/internal/graph"
	"robusttomo/internal/obs"
	"robusttomo/internal/routing"
	"robusttomo/internal/tomo"
)

// streamPanel is a small single-link-per-path test topology: monitor m owns
// pathsPerMon consecutive paths, path p crosses only link p.
type streamPanel struct {
	pm      *tomo.PathMatrix
	oracle  *EpochOracle
	names   []string
	metrics []float64
	all     []int // every path index
}

func buildStreamPanel(t testing.TB, numMonitors, pathsPerMon int) *streamPanel {
	t.Helper()
	links := numMonitors * pathsPerMon
	var paths []routing.Path
	metrics := make([]float64, links)
	for m := 0; m < numMonitors; m++ {
		for p := 0; p < pathsPerMon; p++ {
			l := m*pathsPerMon + p
			paths = append(paths, routing.Path{Src: graph.NodeID(m), Dst: 99, Edges: []graph.EdgeID{graph.EdgeID(l)}})
			metrics[l] = 1 + float64(l)*0.5
		}
	}
	pm, err := tomo.NewPathMatrix(paths, links)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewEpochOracle(metrics, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, numMonitors)
	all := make([]int, pm.NumPaths())
	for i := range all {
		all[i] = i
	}
	for m := range names {
		names[m] = fmt.Sprintf("m%d", m)
	}
	return &streamPanel{pm: pm, oracle: oracle, names: names, metrics: metrics, all: all}
}

func (p *streamPanel) sourceOf(path int) string { return p.names[p.pm.Path(path).Src] }

// startMonitors launches one Monitor per name, returning the address map.
func (p *streamPanel) startMonitors(t testing.TB) map[string]string {
	t.Helper()
	addrs := map[string]string{}
	for _, name := range p.names {
		mon, err := StartMonitor(name, "127.0.0.1:0", p.oracle)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { mon.Close() })
		addrs[name] = mon.Addr()
	}
	return addrs
}

func (p *streamPanel) streamConfig(addrs map[string]string) StreamConfig {
	return StreamConfig{
		PM:        p.pm,
		Monitors:  addrs,
		SourceOf:  p.sourceOf,
		Watermark: 3 * time.Second,
		Timeouts:  Timeouts{Dial: 2 * time.Second, Exchange: 2 * time.Second},
		Seed:      2014,
	}
}

func (p *streamPanel) wantMeasurements(epoch int, selected []int) []Measurement {
	out := make([]Measurement, 0, len(selected))
	for _, path := range selected {
		links := make([]int, len(p.pm.EdgesOf(path)))
		copy(links, p.pm.EdgesOf(path))
		v, ok := p.oracle.Measure(epoch, links)
		m := Measurement{PathID: path, OK: ok}
		if ok {
			m.Value = v
		}
		out = append(out, m)
	}
	return out
}

// TestStreamCollectHealthy runs several epochs through the streaming plane
// and checks the assembled measurements are exact and complete.
func TestStreamCollectHealthy(t *testing.T) {
	panel := buildStreamPanel(t, 4, 8)
	addrs := panel.startMonitors(t)
	reg := obs.New()
	cfg := panel.streamConfig(addrs)
	cfg.Observer = reg
	cfg.Shards = 2
	s, err := NewStreamNOC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for epoch := 0; epoch < 5; epoch++ {
		out, err := s.CollectAssembled(context.Background(), epoch, panel.all)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if len(out.Missing) != 0 || len(out.Late) != 0 {
			t.Fatalf("epoch %d: missing=%v late=%v on a healthy panel", epoch, out.Missing, out.Late)
		}
		if want := panel.wantMeasurements(epoch, panel.all); !reflect.DeepEqual(out.Measurements, want) {
			t.Fatalf("epoch %d measurements:\n got %+v\nwant %+v", epoch, out.Measurements, want)
		}
	}
	for name, st := range s.BreakerStates() {
		if st != BreakerClosed {
			t.Fatalf("healthy run left breaker %s in %v", name, st)
		}
	}
}

// TestStreamMatchesLegacyNOC collects the same panel through the legacy
// per-line NOC and the streaming plane: identical measurements.
func TestStreamMatchesLegacyNOC(t *testing.T) {
	panel := buildStreamPanel(t, 3, 5)
	addrs := panel.startMonitors(t)

	legacy, err := NewNOC(NOCConfig{PM: panel.pm, Monitors: addrs, SourceOf: panel.sourceOf, Seed: 2014})
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	s, err := NewStreamNOC(panel.streamConfig(addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for epoch := 0; epoch < 3; epoch++ {
		want, err := legacy.CollectEpoch(context.Background(), epoch, panel.all)
		if err != nil {
			t.Fatalf("legacy epoch %d: %v", epoch, err)
		}
		got, err := s.CollectEpoch(context.Background(), epoch, panel.all)
		if err != nil {
			t.Fatalf("stream epoch %d: %v", epoch, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("epoch %d: stream and legacy diverge:\n got %+v\nwant %+v", epoch, got, want)
		}
	}
}

// TestStreamJSONEncoding drives the plane with the JSON fallback codec.
func TestStreamJSONEncoding(t *testing.T) {
	panel := buildStreamPanel(t, 2, 4)
	addrs := panel.startMonitors(t)
	cfg := panel.streamConfig(addrs)
	cfg.Encoding = EncodingJSON
	s, err := NewStreamNOC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out, err := s.CollectAssembled(context.Background(), 0, panel.all)
	if err != nil {
		t.Fatal(err)
	}
	if want := panel.wantMeasurements(0, panel.all); !reflect.DeepEqual(out.Measurements, want) {
		t.Fatalf("JSON-encoded collection:\n got %+v\nwant %+v", out.Measurements, want)
	}
}

// TestStreamMuxedSessions points many logical monitor sessions at a single
// Monitor server and a small SessionsPerConn: all sessions collect, and
// the server sees roughly sessions/SessionsPerConn connections rather than
// one per session.
func TestStreamMuxedSessions(t *testing.T) {
	const sessions = 24
	panel := buildStreamPanel(t, sessions, 2)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := &countingListener{Listener: ln}
	mon, err := StartMonitorOn("hub", cl, panel.oracle)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	addrs := map[string]string{}
	for _, name := range panel.names {
		addrs[name] = mon.Addr() // every session shares one server
	}
	cfg := panel.streamConfig(addrs)
	cfg.Shards = 2
	cfg.SessionsPerConn = 8
	s, err := NewStreamNOC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	out, err := s.CollectAssembled(context.Background(), 0, panel.all)
	if err != nil {
		t.Fatal(err)
	}
	if want := panel.wantMeasurements(0, panel.all); !reflect.DeepEqual(out.Measurements, want) {
		t.Fatalf("muxed collection:\n got %+v\nwant %+v", out.Measurements, want)
	}
	// 24 sessions over 2 shards at 8 sessions/conn can need at most 4
	// conns (ceil per shard); the point is it is far below one per session.
	if got := cl.count(); got > 6 {
		t.Fatalf("%d sessions used %d connections; multiplexing is not happening", sessions, got)
	}
}

type countingListener struct {
	net.Listener
	mu sync.Mutex
	n  int
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.n++
		l.mu.Unlock()
	}
	return c, err
}

func (l *countingListener) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// TestStreamDeadMonitorDegrades kills one monitor: its paths degrade the
// epoch with ErrMonitorUnreachable, the rest still collect, and after
// enough failures the dead session's breaker opens.
func TestStreamDeadMonitorDegrades(t *testing.T) {
	panel := buildStreamPanel(t, 3, 4)
	addrs := panel.startMonitors(t)

	// Replace m1's address with a dead one (listener closed immediately).
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	addrs["m1"] = deadAddr

	cfg := panel.streamConfig(addrs)
	cfg.Retry = RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond}
	cfg.Breaker = BreakerPolicy{FailureThreshold: 2, Cooldown: time.Hour}
	cfg.Timeouts = Timeouts{Dial: 200 * time.Millisecond, Exchange: time.Second}
	cfg.Watermark = 2 * time.Second
	s, err := NewStreamNOC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var lastErr error
	for epoch := 0; epoch < 3; epoch++ {
		out, err := s.CollectAssembled(context.Background(), epoch, panel.all)
		if err == nil {
			t.Fatalf("epoch %d: expected a degraded epoch", epoch)
		}
		lastErr = err
		var cerr *CollectionError
		if !errors.As(err, &cerr) {
			t.Fatalf("epoch %d: error is %T, want *CollectionError", epoch, err)
		}
		if got := cerr.FailedMonitors(); len(got) != 1 || got[0] != "m1" {
			t.Fatalf("epoch %d: failed monitors %v, want [m1]", epoch, got)
		}
		// Early epochs exhaust the retry budget (ErrMonitorUnreachable);
		// once the breaker trips the outcome becomes ErrCircuitOpen.
		if !errors.Is(err, ErrMonitorUnreachable) && !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("epoch %d: error wraps neither sentinel: %v", epoch, err)
		}
		// Live monitors still delivered their share.
		live := []int{}
		for _, p := range panel.all {
			if panel.sourceOf(p) != "m1" {
				live = append(live, p)
			}
		}
		if want := panel.wantMeasurements(epoch, live); !reflect.DeepEqual(out.Measurements, want) {
			t.Fatalf("epoch %d: live measurements wrong:\n got %+v\nwant %+v", epoch, out.Measurements, want)
		}
	}
	if st := s.BreakerStates()["m1"]; st != BreakerOpen {
		t.Fatalf("dead monitor breaker = %v, want open (last err %v)", st, lastErr)
	}
	if !errors.Is(lastErr, ErrCircuitOpen) {
		t.Fatalf("post-trip epoch should report ErrCircuitOpen, got %v", lastErr)
	}
}

// TestStreamWatermarkSeal points one session at a black-hole server that
// accepts and reads but never replies: the epoch seals at the watermark
// with those paths missing and an ErrWatermark outcome.
func TestStreamWatermarkSeal(t *testing.T) {
	panel := buildStreamPanel(t, 3, 4)
	addrs := panel.startMonitors(t)

	bh, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bh.Close()
	go func() { // accept, drain, never answer
		for {
			c, err := bh.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}()
		}
	}()
	addrs["m2"] = bh.Addr().String()

	cfg := panel.streamConfig(addrs)
	cfg.Watermark = 300 * time.Millisecond
	s, err := NewStreamNOC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	start := time.Now()
	out, err := s.CollectAssembled(context.Background(), 0, panel.all)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("watermark did not bound the epoch: took %v", elapsed)
	}
	var cerr *CollectionError
	if !errors.As(err, &cerr) {
		t.Fatalf("error is %T, want *CollectionError", err)
	}
	if !errors.Is(err, ErrWatermark) || !errors.Is(err, ErrMonitorUnreachable) {
		t.Fatalf("watermark outcome must wrap ErrWatermark and ErrMonitorUnreachable: %v", err)
	}
	wantMissing := []int{}
	for _, p := range panel.all {
		if panel.sourceOf(p) == "m2" {
			wantMissing = append(wantMissing, p)
		}
	}
	if !reflect.DeepEqual(out.Missing, wantMissing) {
		t.Fatalf("missing = %v, want %v", out.Missing, wantMissing)
	}
}

// TestStreamBackpressure wedges the only shard's event loop behind a dial
// that blocks, fills the one-slot queue, and checks the overflow batch is
// shed with ErrBackpressure instead of stalling the collect call.
func TestStreamBackpressure(t *testing.T) {
	panel := buildStreamPanel(t, 3, 2)
	addrs := panel.startMonitors(t)

	release := make(chan struct{})
	var once sync.Once
	blockingDial := func(ctx context.Context, network, addr string) (net.Conn, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return (&net.Dialer{}).DialContext(ctx, network, addr)
	}
	defer once.Do(func() { close(release) })

	cfg := panel.streamConfig(addrs)
	cfg.Shards = 1
	cfg.QueueDepth = 1
	cfg.Dial = blockingDial
	cfg.Retry = RetryPolicy{MaxAttempts: 1, BaseBackoff: time.Millisecond}
	cfg.Timeouts = Timeouts{Dial: 10 * time.Second, Exchange: time.Second}
	cfg.Watermark = 400 * time.Millisecond
	s, err := NewStreamNOC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		once.Do(func() { close(release) })
		s.Close()
	}()

	// Three monitor batches race into a 1-deep queue behind a wedged
	// loop: at least one must be shed as backpressure.
	_, err = s.CollectAssembled(context.Background(), 0, panel.all)
	if err == nil {
		t.Fatal("expected a degraded epoch under backpressure")
	}
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("error does not wrap ErrBackpressure: %v", err)
	}
}

// TestStreamLateFoldForward seals an epoch at a short watermark while one
// monitor's reply is delayed, then checks the straggler surfaces in the
// next epoch's Late list with its origin epoch.
func TestStreamLateFoldForward(t *testing.T) {
	panel := buildStreamPanel(t, 2, 3)
	addrs := panel.startMonitors(t)

	// m1 goes through a delaying proxy: bytes are forwarded only after the
	// hold elapses, so its epoch-0 answer arrives after the seal.
	hold := 600 * time.Millisecond
	proxy := newDelayProxy(t, addrs["m1"], hold)
	addrs["m1"] = proxy.addr()

	cfg := panel.streamConfig(addrs)
	cfg.Watermark = 200 * time.Millisecond
	s, err := NewStreamNOC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	out0, err := s.CollectAssembled(context.Background(), 0, panel.all)
	if err == nil {
		t.Fatal("epoch 0 should degrade: m1's reply is delayed past the watermark")
	}
	if len(out0.Missing) == 0 {
		t.Fatalf("epoch 0 should have missing paths, got %+v", out0)
	}

	// Wait for the held reply to land, then collect epoch 1: the epoch-0
	// straggler folds in as Late.
	time.Sleep(hold)
	out1, _ := s.CollectAssembled(context.Background(), 1, panel.all)
	if len(out1.Late) == 0 {
		t.Fatalf("epoch 1 did not fold the late epoch-0 results forward: %+v", out1)
	}
	for _, lm := range out1.Late {
		if lm.Epoch != 0 {
			t.Fatalf("late measurement has origin epoch %d, want 0", lm.Epoch)
		}
		links := panel.pm.EdgesOf(lm.PathID)
		want, ok := panel.oracle.Measure(0, links)
		if lm.OK != ok || lm.Value != want {
			t.Fatalf("late measurement %+v does not match oracle (%v,%v)", lm, want, ok)
		}
	}
}

// delayProxy forwards one TCP hop, holding monitor→NOC bytes for a fixed
// delay (per read chunk) to simulate a slow straggler.
type delayProxy struct {
	ln    net.Listener
	to    string
	delay time.Duration
	done  chan struct{}
}

func newDelayProxy(t *testing.T, to string, delay time.Duration) *delayProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &delayProxy{ln: ln, to: to, delay: delay, done: make(chan struct{})}
	go p.run()
	t.Cleanup(func() { close(p.done); ln.Close() })
	return p
}

func (p *delayProxy) addr() string { return p.ln.Addr().String() }

func (p *delayProxy) run() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.to)
		if err != nil {
			c.Close()
			continue
		}
		go proxyCopy(up, c, 0)       // NOC → monitor: immediate
		go proxyCopy(c, up, p.delay) // monitor → NOC: held
	}
}

func proxyCopy(dst, src net.Conn, delay time.Duration) {
	defer dst.Close()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if delay > 0 {
				time.Sleep(delay)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// TestStreamWiringBugs: out-of-range paths and unknown monitors fail the
// epoch outright with the legacy sentinels.
func TestStreamWiringBugs(t *testing.T) {
	panel := buildStreamPanel(t, 2, 2)
	addrs := panel.startMonitors(t)
	s, err := NewStreamNOC(panel.streamConfig(addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.CollectAssembled(context.Background(), 0, []int{panel.pm.NumPaths()}); !errors.Is(err, ErrPathOutOfRange) {
		t.Fatalf("out-of-range path: %v", err)
	}
	bad := *panel
	badCfg := panel.streamConfig(addrs)
	badCfg.SourceOf = func(int) string { return "nobody" }
	s2, err := NewStreamNOC(badCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.CollectAssembled(context.Background(), 0, bad.all[:1]); !errors.Is(err, ErrUnknownMonitor) {
		t.Fatalf("unknown monitor: %v", err)
	}
}

// TestStreamCloseFailsPending: Close while an epoch is queued ends the
// collect promptly instead of hanging on the watermark.
func TestStreamCloseFailsPending(t *testing.T) {
	panel := buildStreamPanel(t, 1, 2)
	addrs := panel.startMonitors(t)
	cfg := panel.streamConfig(addrs)
	cfg.Watermark = time.Hour
	// A dial that never completes, so the epoch would wait out the
	// watermark if Close did not cut it short.
	cfg.Dial = func(ctx context.Context, network, addr string) (net.Conn, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	cfg.Timeouts = Timeouts{Dial: time.Hour, Exchange: time.Hour}
	s, err := NewStreamNOC(cfg)
	if err != nil {
		t.Fatal(err)
	}

	doneCh := make(chan error, 1)
	go func() {
		_, err := s.CollectAssembled(context.Background(), 0, panel.all)
		doneCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	go s.Close()
	select {
	case err := <-doneCh:
		if err == nil {
			t.Fatal("collect during close should not report a clean epoch")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("CollectAssembled hung across Close")
	}
}
