package bandit

import (
	"testing"

	"robusttomo/internal/failure"
	"robusttomo/internal/routing"
	"robusttomo/internal/stats"
	"robusttomo/internal/tomo"
)

func benchInstance(b *testing.B) (*tomo.PathMatrix, *failure.Model) {
	b.Helper()
	paths := []routing.Path{
		synthPath(0),
		synthPath(1),
		synthPath(2),
		synthPath(0, 1),
		synthPath(3, 4),
		synthPath(5),
	}
	pm, err := tomo.NewPathMatrix(paths, 6)
	if err != nil {
		b.Fatal(err)
	}
	model, err := failure.FromProbabilities([]float64{0.05, 0.1, 0.6, 0.2, 0.2, 0.02})
	if err != nil {
		b.Fatal(err)
	}
	return pm, model
}

func benchUnitCosts(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func BenchmarkLSREpoch(b *testing.B) {
	pm, model := benchInstance(b)
	learner, err := New(pm, benchUnitCosts(pm.NumPaths()), 3, Options{})
	if err != nil {
		b.Fatal(err)
	}
	env := NewFailureEnv(pm, model, stats.NewRNG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := learner.Step(env); err != nil {
			b.Fatal(err)
		}
	}
}

// steadyLearner builds a 64-path learner, runs it past the initialization
// phase (every path observed at least once), and pre-draws a panel of
// availability epochs, so the benchmark loop below measures only the
// learner's steady-state epoch — the regime the epoch-incremental engine
// targets, where the fresh baseline pays O(n) allocation per epoch and the
// incremental engine O(played paths).
func steadyLearner(b *testing.B, fresh bool) (*LSR, [][]bool) {
	b.Helper()
	rng := stats.NewRNG(7, 94)
	pm, model := randomLearnerInstance(rng, 40, 64)
	learner, err := New(pm, benchUnitCosts(pm.NumPaths()), 10, Options{FreshEpoch: fresh})
	if err != nil {
		b.Fatal(err)
	}
	env := NewFailureEnv(pm, model, stats.NewRNG(7, 95))
	for learner.unobserved() >= 0 {
		if _, _, err := learner.Step(env); err != nil {
			b.Fatal(err)
		}
	}
	epochs := make([][]bool, 256)
	for i := range epochs {
		epochs[i] = env.Epoch()
	}
	return learner, epochs
}

// BenchmarkLSREpochSteady measures one steady-state epoch of the
// incremental engine; BenchmarkLSREpochSteadyFresh is the identical
// workload on the fresh-per-epoch baseline (benchregress pairs them by the
// Fresh suffix). The differential test TestLSRFreshMatchesIncremental
// guarantees both compute the same action sequence.
func BenchmarkLSREpochSteady(b *testing.B) {
	learner, epochs := steadyLearner(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		action, err := learner.SelectAction()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := learner.Observe(action, epochs[i%len(epochs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLSREpochSteadyFresh(b *testing.B) {
	learner, epochs := steadyLearner(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		action, err := learner.SelectAction()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := learner.Observe(action, epochs[i%len(epochs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLSRMatroidEpoch(b *testing.B) {
	pm, model := benchInstance(b)
	learner, err := New(pm, benchUnitCosts(pm.NumPaths()), 3, Options{Matroid: true, MatroidBudget: 3})
	if err != nil {
		b.Fatal(err)
	}
	env := NewFailureEnv(pm, model, stats.NewRNG(2, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := learner.Step(env); err != nil {
			b.Fatal(err)
		}
	}
}
