package bandit

import (
	"testing"

	"robusttomo/internal/failure"
	"robusttomo/internal/routing"
	"robusttomo/internal/stats"
	"robusttomo/internal/tomo"
)

func benchInstance(b *testing.B) (*tomo.PathMatrix, *failure.Model) {
	b.Helper()
	paths := []routing.Path{
		synthPath(0),
		synthPath(1),
		synthPath(2),
		synthPath(0, 1),
		synthPath(3, 4),
		synthPath(5),
	}
	pm, err := tomo.NewPathMatrix(paths, 6)
	if err != nil {
		b.Fatal(err)
	}
	model, err := failure.FromProbabilities([]float64{0.05, 0.1, 0.6, 0.2, 0.2, 0.02})
	if err != nil {
		b.Fatal(err)
	}
	return pm, model
}

func benchUnitCosts(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func BenchmarkLSREpoch(b *testing.B) {
	pm, model := benchInstance(b)
	learner, err := New(pm, benchUnitCosts(pm.NumPaths()), 3, Options{})
	if err != nil {
		b.Fatal(err)
	}
	env := NewFailureEnv(pm, model, stats.NewRNG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := learner.Step(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLSRMatroidEpoch(b *testing.B) {
	pm, model := benchInstance(b)
	learner, err := New(pm, benchUnitCosts(pm.NumPaths()), 3, Options{Matroid: true, MatroidBudget: 3})
	if err != nil {
		b.Fatal(err)
	}
	env := NewFailureEnv(pm, model, stats.NewRNG(2, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := learner.Step(env); err != nil {
			b.Fatal(err)
		}
	}
}
