package bandit

import (
	"fmt"
	"math/rand/v2"

	"robusttomo/internal/er"
	"robusttomo/internal/selection"
	"robusttomo/internal/tomo"
)

// EpsilonGreedy is the classical baseline learner: with probability ε it
// explores (plays a uniformly random feasible action); otherwise it
// exploits the current empirical availability estimates through the same
// RoMe maximization LSR uses. It exists as a comparison point for LSR —
// UCB's directed exploration reaches good selections with far fewer wasted
// epochs than undirected ε-exploration (see the learner-comparison
// extension experiment).
type EpsilonGreedy struct {
	pm      *tomo.PathMatrix
	costs   []float64
	budget  float64
	epsilon float64
	rng     *rand.Rand

	sumX             []float64
	count            []int
	epoch            int
	cumulativeReward float64
}

// NewEpsilonGreedy validates the problem and returns a fresh learner.
func NewEpsilonGreedy(pm *tomo.PathMatrix, costs []float64, budget, epsilon float64, rng *rand.Rand) (*EpsilonGreedy, error) {
	n := pm.NumPaths()
	if n == 0 {
		return nil, fmt.Errorf("bandit: no candidate paths")
	}
	if len(costs) != n {
		return nil, fmt.Errorf("bandit: %d costs for %d paths", len(costs), n)
	}
	if budget <= 0 {
		return nil, fmt.Errorf("bandit: non-positive budget %v", budget)
	}
	if epsilon < 0 || epsilon > 1 {
		return nil, fmt.Errorf("bandit: epsilon %v outside [0,1]", epsilon)
	}
	if rng == nil {
		return nil, fmt.Errorf("bandit: nil rng")
	}
	return &EpsilonGreedy{
		pm:      pm,
		costs:   costs,
		budget:  budget,
		epsilon: epsilon,
		rng:     rng,
		sumX:    make([]float64, n),
		count:   make([]int, n),
	}, nil
}

// Epochs returns the number of completed epochs.
func (e *EpsilonGreedy) Epochs() int { return e.epoch }

// CumulativeReward returns the total rank reward accumulated so far.
func (e *EpsilonGreedy) CumulativeReward() float64 { return e.cumulativeReward }

// ThetaHat returns the empirical availability estimates.
func (e *EpsilonGreedy) ThetaHat() []float64 {
	out := make([]float64, len(e.sumX))
	for i := range out {
		if e.count[i] > 0 {
			out[i] = e.sumX[i] / float64(e.count[i])
		}
	}
	return out
}

// SelectAction picks the next epoch's probing set.
func (e *EpsilonGreedy) SelectAction() ([]int, error) {
	if e.rng.Float64() < e.epsilon {
		return e.randomFeasible(), nil
	}
	oracle := er.NewThetaBoundInc(e.pm, e.ThetaHat())
	res, err := selection.RoMe(e.pm, e.costs, e.budget, oracle, selection.NewOptions())
	if err != nil {
		return nil, err
	}
	if len(res.Selected) == 0 {
		// All estimates zero (early epochs): fall back to exploration.
		return e.randomFeasible(), nil
	}
	return res.Selected, nil
}

// randomFeasible fills the budget with uniformly shuffled affordable
// paths.
func (e *EpsilonGreedy) randomFeasible() []int {
	var action []int
	spent := 0.0
	for _, q := range e.rng.Perm(e.pm.NumPaths()) {
		if spent+e.costs[q] <= e.budget {
			action = append(action, q)
			spent += e.costs[q]
		}
	}
	return action
}

// Observe records one epoch's feedback and returns the rank reward.
func (e *EpsilonGreedy) Observe(action []int, avail []bool) (int, error) {
	if len(avail) != e.pm.NumPaths() {
		return 0, fmt.Errorf("bandit: availability vector of %d for %d paths", len(avail), e.pm.NumPaths())
	}
	var up []int
	for _, q := range action {
		if q < 0 || q >= e.pm.NumPaths() {
			return 0, fmt.Errorf("bandit: action path %d out of range", q)
		}
		if avail[q] {
			e.sumX[q]++
			up = append(up, q)
		}
		e.count[q]++
	}
	reward := e.pm.RankOf(up)
	e.cumulativeReward += float64(reward)
	e.epoch++
	return reward, nil
}

// Step runs one full epoch against the environment.
func (e *EpsilonGreedy) Step(env Env) (action []int, reward int, err error) {
	action, err = e.SelectAction()
	if err != nil {
		return nil, 0, err
	}
	reward, err = e.Observe(action, env.Epoch())
	if err != nil {
		return nil, 0, err
	}
	return action, reward, nil
}

// Exploit returns the pure-exploitation selection at the current
// estimates.
func (e *EpsilonGreedy) Exploit() ([]int, error) {
	oracle := er.NewThetaBoundInc(e.pm, e.ThetaHat())
	res, err := selection.RoMe(e.pm, e.costs, e.budget, oracle, selection.NewOptions())
	if err != nil {
		return nil, err
	}
	return res.Selected, nil
}
