package bandit

import (
	"testing"

	"robusttomo/internal/stats"
)

func TestNewEpsilonGreedyValidation(t *testing.T) {
	pm, _ := smallInstance(t)
	rng := stats.NewRNG(1, 1)
	if _, err := NewEpsilonGreedy(pm, unitCosts(2), 3, 0.1, rng); err == nil {
		t.Fatal("cost mismatch accepted")
	}
	if _, err := NewEpsilonGreedy(pm, unitCosts(pm.NumPaths()), 0, 0.1, rng); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := NewEpsilonGreedy(pm, unitCosts(pm.NumPaths()), 3, 1.5, rng); err == nil {
		t.Fatal("epsilon > 1 accepted")
	}
	if _, err := NewEpsilonGreedy(pm, unitCosts(pm.NumPaths()), 3, 0.1, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestEpsilonGreedyRespectsBudget(t *testing.T) {
	pm, model := smallInstance(t)
	costs := []float64{1, 2, 1, 3, 2, 1}
	budget := 4.0
	eg, err := NewEpsilonGreedy(pm, costs, budget, 0.3, stats.NewRNG(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	env := NewFailureEnv(pm, model, stats.NewRNG(3, 3))
	for e := 0; e < 60; e++ {
		action, _, err := eg.Step(env)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, q := range action {
			total += costs[q]
		}
		if total > budget+1e-9 {
			t.Fatalf("epoch %d: cost %v > budget %v", e, total, budget)
		}
	}
	if eg.Epochs() != 60 {
		t.Fatalf("Epochs = %d", eg.Epochs())
	}
	if eg.CumulativeReward() <= 0 {
		t.Fatal("no reward accumulated")
	}
}

func TestEpsilonGreedyObserveValidation(t *testing.T) {
	pm, _ := smallInstance(t)
	eg, _ := NewEpsilonGreedy(pm, unitCosts(pm.NumPaths()), 3, 0.2, stats.NewRNG(4, 4))
	if _, err := eg.Observe([]int{0}, []bool{true}); err == nil {
		t.Fatal("short availability accepted")
	}
	avail := make([]bool, pm.NumPaths())
	if _, err := eg.Observe([]int{99}, avail); err == nil {
		t.Fatal("out-of-range action accepted")
	}
}

func TestEpsilonGreedyLearnsAndExploits(t *testing.T) {
	pm, model := smallInstance(t)
	eg, err := NewEpsilonGreedy(pm, unitCosts(pm.NumPaths()), 3, 0.2, stats.NewRNG(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	env := NewFailureEnv(pm, model, stats.NewRNG(6, 6))
	for e := 0; e < 600; e++ {
		if _, _, err := eg.Step(env); err != nil {
			t.Fatal(err)
		}
	}
	sel, err := eg.Exploit()
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 || len(sel) > 3 {
		t.Fatalf("exploit selection = %v", sel)
	}
	th := eg.ThetaHat()
	nonzero := 0
	for _, v := range th {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero < 3 {
		t.Fatalf("too few paths learned: %v", th)
	}
}

// LSR's directed exploration should accumulate at least as much reward as
// undirected ε-greedy over the same horizon (allowing modest noise).
func TestLSRBeatsEpsilonGreedy(t *testing.T) {
	pm, model := smallInstance(t)
	costs := unitCosts(pm.NumPaths())
	const horizon = 800

	lsr, err := New(pm, costs, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	envA := NewFailureEnv(pm, model, stats.NewRNG(7, 7))
	for e := 0; e < horizon; e++ {
		if _, _, err := lsr.Step(envA); err != nil {
			t.Fatal(err)
		}
	}

	eg, err := NewEpsilonGreedy(pm, costs, 3, 0.2, stats.NewRNG(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	envB := NewFailureEnv(pm, model, stats.NewRNG(7, 7)) // same env stream
	for e := 0; e < horizon; e++ {
		if _, _, err := eg.Step(envB); err != nil {
			t.Fatal(err)
		}
	}

	if lsr.CumulativeReward() < eg.CumulativeReward()-float64(horizon)*0.05 {
		t.Fatalf("LSR reward %v clearly below ε-greedy %v",
			lsr.CumulativeReward(), eg.CumulativeReward())
	}
}
