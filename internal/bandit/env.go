package bandit

import (
	"math/rand/v2"

	"robusttomo/internal/er"
	"robusttomo/internal/failure"
	"robusttomo/internal/tomo"
)

// FailureEnv drives the learner with the true link-failure process: each
// epoch samples an independent link-failure scenario and exposes the
// availability of every candidate path, so correlations between paths
// sharing links are faithfully present (the regime LSR is designed for).
type FailureEnv struct {
	pm    *tomo.PathMatrix
	model *failure.Model
	rng   *rand.Rand
}

var _ Env = (*FailureEnv)(nil)

// NewFailureEnv returns an environment over the given network and failure
// model.
func NewFailureEnv(pm *tomo.PathMatrix, model *failure.Model, rng *rand.Rand) *FailureEnv {
	return &FailureEnv{pm: pm, model: model, rng: rng}
}

// Epoch implements Env.
func (e *FailureEnv) Epoch() []bool {
	sc := e.model.Sample(e.rng)
	out := make([]bool, e.pm.NumPaths())
	for i := range out {
		out[i] = e.pm.Available(i, sc)
	}
	return out
}

// ThetaEnv drives the learner with independent per-path availabilities —
// the idealized model under which LSR's regret bound is stated. Useful for
// regret-shape tests.
type ThetaEnv struct {
	theta []float64
	rng   *rand.Rand
}

var _ Env = (*ThetaEnv)(nil)

// NewThetaEnv returns an environment with the given true availabilities.
func NewThetaEnv(theta []float64, rng *rand.Rand) *ThetaEnv {
	cp := make([]float64, len(theta))
	copy(cp, theta)
	return &ThetaEnv{theta: cp, rng: rng}
}

// Epoch implements Env.
func (e *ThetaEnv) Epoch() []bool { return er.SampleTheta(e.theta, e.rng) }
