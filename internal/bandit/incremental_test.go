package bandit

import (
	"math/rand/v2"
	"testing"

	"robusttomo/internal/failure"
	"robusttomo/internal/routing"
	"robusttomo/internal/stats"
	"robusttomo/internal/tomo"
)

// randomLearnerInstance builds a medium-sized random instance for the
// fresh-vs-incremental differential tests and steady-state benchmarks:
// nPaths paths of 1–4 distinct links over nLinks links, with moderate
// per-link failure probabilities.
func randomLearnerInstance(rng *rand.Rand, nLinks, nPaths int) (*tomo.PathMatrix, *failure.Model) {
	paths := make([]routing.Path, nPaths)
	for i := range paths {
		hops := 1 + rng.IntN(4)
		if hops > nLinks {
			hops = nLinks
		}
		paths[i] = synthPath(stats.SampleWithoutReplacement(rng, nLinks, hops)...)
	}
	pm, err := tomo.NewPathMatrix(paths, nLinks)
	if err != nil {
		panic(err)
	}
	probs := make([]float64, nLinks)
	for i := range probs {
		probs[i] = rng.Float64() * 0.3
	}
	model, err := failure.FromProbabilities(probs)
	if err != nil {
		panic(err)
	}
	return pm, model
}

// The epoch-incremental engine must be a pure performance change: against
// identically seeded environments, the fresh-per-epoch baseline and the
// incremental engine produce bit-identical action sequences, rewards and
// estimates over a horizon long past initialization.
func TestLSRFreshMatchesIncremental(t *testing.T) {
	for _, seed := range []uint64{3, 17, 41} {
		rng := stats.NewRNG(seed, 90)
		pm, model := randomLearnerInstance(rng, 20, 30)
		costs := make([]float64, pm.NumPaths())
		for i := range costs {
			costs[i] = 1 + float64(rng.IntN(3))
		}
		const budget = 8.0

		inc, err := New(pm, costs, budget, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := New(pm, costs, budget, Options{FreshEpoch: true})
		if err != nil {
			t.Fatal(err)
		}
		envInc := NewFailureEnv(pm, model, stats.NewRNG(seed, 91))
		envFresh := NewFailureEnv(pm, model, stats.NewRNG(seed, 91))

		for epoch := 0; epoch < 120; epoch++ {
			aInc, rInc, err := inc.Step(envInc)
			if err != nil {
				t.Fatal(err)
			}
			aFresh, rFresh, err := fresh.Step(envFresh)
			if err != nil {
				t.Fatal(err)
			}
			if len(aInc) != len(aFresh) {
				t.Fatalf("seed %d epoch %d: action %v vs %v", seed, epoch, aInc, aFresh)
			}
			for i := range aInc {
				if aInc[i] != aFresh[i] {
					t.Fatalf("seed %d epoch %d: action %v vs %v", seed, epoch, aInc, aFresh)
				}
			}
			if rInc != rFresh {
				t.Fatalf("seed %d epoch %d: reward %d vs %d", seed, epoch, rInc, rFresh)
			}
		}
		if inc.CumulativeReward() != fresh.CumulativeReward() {
			t.Fatalf("seed %d: cumulative reward %v vs %v", seed, inc.CumulativeReward(), fresh.CumulativeReward())
		}
		thInc, thFresh := inc.ThetaHat(), fresh.ThetaHat()
		for i := range thInc {
			if thInc[i] != thFresh[i] {
				t.Fatalf("seed %d: theta-hat[%d] %v vs %v", seed, i, thInc[i], thFresh[i])
			}
		}
		exInc, err := inc.Exploit()
		if err != nil {
			t.Fatal(err)
		}
		exFresh, err := fresh.Exploit()
		if err != nil {
			t.Fatal(err)
		}
		if len(exInc) != len(exFresh) {
			t.Fatalf("seed %d: exploit %v vs %v", seed, exInc, exFresh)
		}
		for i := range exInc {
			if exInc[i] != exFresh[i] {
				t.Fatalf("seed %d: exploit %v vs %v", seed, exInc, exFresh)
			}
		}
	}
}

// Observe must not retain the caller's action slice or hand back aliased
// memory across epochs: actions returned by SelectAction stay valid after
// later epochs run.
func TestLSRActionsRemainValid(t *testing.T) {
	rng := stats.NewRNG(5, 92)
	pm, model := randomLearnerInstance(rng, 12, 16)
	learner, err := New(pm, unitCosts(pm.NumPaths()), 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	env := NewFailureEnv(pm, model, stats.NewRNG(5, 93))
	var history [][]int
	var copies [][]int
	for epoch := 0; epoch < 40; epoch++ {
		action, _, err := learner.Step(env)
		if err != nil {
			t.Fatal(err)
		}
		history = append(history, action)
		copies = append(copies, append([]int(nil), action...))
	}
	for e := range history {
		for i := range history[e] {
			if history[e][i] != copies[e][i] {
				t.Fatalf("epoch %d action mutated: %v vs %v", e, history[e], copies[e])
			}
		}
	}
}
