// Package bandit implements the paper's Section V learner for the case of
// an unknown failure distribution: LSR (Learning with Submodular Rewards),
// a combinatorial UCB algorithm that learns per-path expected
// availabilities θ while repeatedly selecting probing-path sets under the
// budget constraint. Each epoch plays the action maximizing the
// independence-assumption ER bound at the optimistic estimates θ̂ + C,
// where C_i = sqrt((L+1)·ln n / μ_i) is the confidence width (Eq. 10). The
// inner maximization is NP-hard, so LSR uses RoMe with the Eq. 11 bound as
// its subroutine, exactly as the paper prescribes.
//
// With a matroid action space (independent paths, unit costs) the reward is
// linear and LSR degenerates into LLR of Gai–Krishnamachari–Jain; Options.
// Matroid selects that mode.
package bandit

import (
	"fmt"
	"math"

	"robusttomo/internal/er"
	"robusttomo/internal/linalg"
	"robusttomo/internal/obs"
	"robusttomo/internal/selection"
	"robusttomo/internal/tomo"
)

// Env supplies one epoch of ground truth: a path-availability function
// drawn from the (unknown to the learner) failure process.
type Env interface {
	// Epoch draws the availability of every candidate path for one epoch.
	// The learner only reads entries of probed paths, respecting the
	// semi-bandit feedback model.
	Epoch() []bool
}

// Options configures the learner.
type Options struct {
	// Matroid switches to the LLR special case: the action space contains
	// only linearly independent path sets of size ≤ MatroidBudget with
	// unit costs.
	Matroid       bool
	MatroidBudget int
	// L overrides the maximum-action-size constant in the confidence
	// width. Zero derives it from the budget and cheapest path (or
	// MatroidBudget in matroid mode).
	L int
	// FreshEpoch disables the epoch-incremental engine: every epoch
	// rebuilds its oracle, greedy workspace and rank basis from scratch,
	// as the original implementation did. Action sequences and rewards are
	// bit-identical in both modes (see TestLSRFreshMatchesIncremental);
	// the flag exists as the differential/benchmark baseline for the
	// steady-state allocation win.
	FreshEpoch bool
	// Observer, when non-nil, receives learner metrics (epoch counts,
	// rewards, UCB width spread, exploration picks) and is forwarded to the
	// inner RoMe maximization. Instrumentation reads state the learner
	// already maintains and never changes the action sequence; a nil
	// Observer leaves every metric handle nil.
	Observer *obs.Registry
}

// LSR is the learner state.
type LSR struct {
	pm     *tomo.PathMatrix
	costs  []float64
	budget float64
	opts   Options

	sumX  []float64 // per-path sum of observed availabilities
	count []int     // per-path observation counts (μ)
	mu    []float64 // sumX/count, maintained incrementally on observation
	width []float64 // sqrt((L+1)/count), maintained incrementally
	epoch int       // completed epochs (n)
	l     int       // the L constant

	cumulativeReward float64

	m *banditMetrics

	// Epoch-incremental workspace (unused when opts.FreshEpoch). Only
	// played paths dirty μ/width, so per-epoch state is rebuilt from these
	// persistent buffers with O(played paths) allocation instead of O(n):
	// the UCB vector lands in ucbBuf, the oracle is Reset rather than
	// rebuilt, RoMe reuses romeScratch, and Observe ranks the surviving
	// subset in a private basis via RankOfWith.
	ucbBuf      []float64
	oracle      *er.ThetaBoundInc
	romeScratch *selection.Scratch
	rankBasis   *linalg.SparseBasis
	upBuf       []int
	seenBuf     []bool
	// firstUnobserved is the initialization-phase cursor: every path below
	// it has been observed at least once (counts never decrease).
	firstUnobserved int
}

// New validates the problem and returns a fresh learner.
func New(pm *tomo.PathMatrix, costs []float64, budget float64, opts Options) (*LSR, error) {
	n := pm.NumPaths()
	if n == 0 {
		return nil, fmt.Errorf("bandit: no candidate paths")
	}
	if len(costs) != n {
		return nil, fmt.Errorf("bandit: %d costs for %d paths", len(costs), n)
	}
	if budget <= 0 {
		return nil, fmt.Errorf("bandit: non-positive budget %v", budget)
	}
	if opts.Matroid && opts.MatroidBudget <= 0 {
		return nil, fmt.Errorf("bandit: matroid mode needs a positive MatroidBudget")
	}
	l := opts.L
	if l <= 0 {
		if opts.Matroid {
			l = opts.MatroidBudget
		} else {
			minCost := math.Inf(1)
			for _, c := range costs {
				if c > 0 && c < minCost {
					minCost = c
				}
			}
			if math.IsInf(minCost, 1) {
				l = n
			} else {
				l = int(budget / minCost)
			}
		}
		if l > n {
			l = n
		}
		if l < 1 {
			l = 1
		}
	}
	return &LSR{
		pm:     pm,
		costs:  costs,
		budget: budget,
		opts:   opts,
		sumX:   make([]float64, n),
		count:  make([]int, n),
		mu:     make([]float64, n),
		width:  make([]float64, n),
		l:      l,
		m:      newBanditMetrics(opts.Observer),
	}, nil
}

// Epochs returns the number of completed epochs.
func (b *LSR) Epochs() int { return b.epoch }

// L returns the action-size constant used in the confidence width.
func (b *LSR) L() int { return b.l }

// CumulativeReward returns the total rank reward accumulated so far.
func (b *LSR) CumulativeReward() float64 { return b.cumulativeReward }

// ThetaHat returns the current empirical availability estimates (0 for
// never-observed paths).
func (b *LSR) ThetaHat() []float64 {
	out := make([]float64, len(b.sumX))
	for i := range out {
		if b.count[i] > 0 {
			out[i] = b.sumX[i] / float64(b.count[i])
		}
	}
	return out
}

// Counts returns a copy of the per-path observation counts.
func (b *LSR) Counts() []int {
	out := make([]int, len(b.count))
	copy(out, b.count)
	return out
}

// recordObs folds one availability sample for path q into the sufficient
// statistics, keeping μ and the count-dependent width factor current. This
// is the only place the per-path learner state changes, which is what makes
// the cross-epoch workspace reuse sound: everything else is a pure function
// of (μ, width, epoch).
func (b *LSR) recordObs(q int, x float64) {
	b.sumX[q] += x
	b.count[q]++
	c := float64(b.count[q])
	b.mu[q] = b.sumX[q] / c
	b.width[q] = math.Sqrt(float64(b.l+1) / c)
}

// syncDerived rebuilds everything recordObs maintains incrementally — the
// μ/width factors and the initialization cursor — after sumX/count were
// overwritten wholesale (snapshot restore, window rebuild).
func (b *LSR) syncDerived() {
	b.firstUnobserved = 0
	for i, c := range b.count {
		if c == 0 {
			b.mu[i], b.width[i] = 0, 0
			continue
		}
		b.mu[i] = b.sumX[i] / float64(c)
		b.width[i] = math.Sqrt(float64(b.l+1) / float64(c))
	}
}

// ucb returns θ̂ + C per Eq. 10, with unobserved paths treated as maximally
// optimistic. The width is factored as sqrt((L+1)/count_i)·sqrt(ln n) so the
// per-path part updates only on observation and the epoch part is one
// scalar — both modes (fresh and incremental) evaluate this same factored
// expression, which keeps their float results bit-identical.
func (b *LSR) ucb() []float64 {
	return b.ucbInto(make([]float64, len(b.sumX)))
}

// ucbInto is ucb writing into out (len = NumPaths), allocating nothing.
func (b *LSR) ucbInto(out []float64) []float64 {
	n := float64(b.epoch)
	if n < 2 {
		n = 2
	}
	s := math.Sqrt(math.Log(n))
	for i := range out {
		if b.count[i] == 0 {
			out[i] = 1
			continue
		}
		out[i] = b.mu[i] + b.width[i]*s
	}
	return out
}

// unobserved returns the lowest-index never-probed path, or -1. Counts
// never decrease, so the scan resumes from a cursor instead of restarting
// at 0 every epoch.
func (b *LSR) unobserved() int {
	for b.firstUnobserved < len(b.count) && b.count[b.firstUnobserved] > 0 {
		b.firstUnobserved++
	}
	if b.firstUnobserved < len(b.count) {
		return b.firstUnobserved
	}
	return -1
}

// SelectAction computes the action for the next epoch: during
// initialization, an action covering a not-yet-observed path; afterwards
// the RoMe maximizer of ER(R; θ̂ + C).
func (b *LSR) SelectAction() ([]int, error) {
	b.recordUCBSpread()
	var theta []float64
	if b.opts.FreshEpoch {
		theta = b.ucb()
	} else {
		b.ucbBuf = growFloats(b.ucbBuf, len(b.sumX))
		theta = b.ucbInto(b.ucbBuf)
	}
	if forced := b.unobserved(); forced >= 0 {
		return b.actionWith(forced, theta)
	}
	return b.maximize(theta, -1)
}

// actionWith builds an action guaranteed to contain the forced path (the
// initialization phase of Algorithm 2), filling the rest greedily.
func (b *LSR) actionWith(forced int, theta []float64) ([]int, error) {
	if !b.opts.Matroid && b.costs[forced] > b.budget {
		// The forced path alone violates the budget: it can never be
		// probed, so mark it observed-unavailable to avoid deadlock.
		b.count[forced] = 1
		b.sumX[forced] = 0
		b.mu[forced] = 0
		b.width[forced] = math.Sqrt(float64(b.l + 1))
		return b.SelectAction()
	}
	return b.maximize(theta, forced)
}

// maximize runs the paper's inner optimization with an optional forced
// first pick.
// recordUCBSpread publishes the spread (max − min) of the Eq. 10
// confidence widths over observed paths. Only computed when the gauge is
// installed, so the unobserved learner pays nothing here.
func (b *LSR) recordUCBSpread() {
	if b.m.ucbSpread == nil {
		return
	}
	n := float64(b.epoch)
	if n < 2 {
		n = 2
	}
	s := math.Sqrt(math.Log(n))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, c := range b.count {
		if c == 0 {
			continue
		}
		w := b.width[i] * s
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	if hi < lo {
		return // nothing observed yet
	}
	b.m.ucbSpread.Set(hi - lo)
}

func (b *LSR) maximize(theta []float64, forced int) ([]int, error) {
	if forced >= 0 {
		b.m.explorePicks.Inc()
	}
	if b.opts.Matroid {
		res, err := b.matroidMaximize(theta, forced)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	var oracle *er.ThetaBoundInc
	opts := selection.NewOptions()
	opts.Observer = b.opts.Observer
	if b.opts.FreshEpoch {
		oracle = er.NewThetaBoundInc(b.pm, theta)
	} else {
		if b.oracle == nil {
			b.oracle = er.NewThetaBoundInc(b.pm, theta)
		} else {
			b.oracle.Reset(theta)
		}
		oracle = b.oracle
		if b.romeScratch == nil {
			b.romeScratch = &selection.Scratch{}
		}
		opts.Scratch = b.romeScratch
	}
	budget := b.budget
	var pre []int
	if forced >= 0 {
		oracle.Add(forced)
		budget -= b.costs[forced]
		pre = []int{forced}
	}
	res, err := selection.RoMe(b.pm, b.costs, budget, oracle, opts)
	if err != nil {
		return nil, err
	}
	action := append(pre, res.Selected...)
	if b.opts.FreshEpoch {
		return dedupe(action), nil
	}
	b.seenBuf = growSeen(b.seenBuf, b.pm.NumPaths())
	return dedupeWith(action, b.seenBuf), nil
}

func (b *LSR) matroidMaximize(theta []float64, forced int) ([]int, error) {
	if forced < 0 {
		res, err := selection.MatRoMe(b.pm, theta, b.opts.MatroidBudget, selection.MatRoMeOptions{})
		if err != nil {
			return nil, err
		}
		return res.Selected, nil
	}
	// Force inclusion by giving the forced path an infinitely attractive
	// weight; MatRoMe's stable sort puts it first.
	boost := make([]float64, len(theta))
	copy(boost, theta)
	boost[forced] = math.Inf(1)
	res, err := selection.MatRoMe(b.pm, boost, b.opts.MatroidBudget, selection.MatRoMeOptions{})
	if err != nil {
		return nil, err
	}
	return res.Selected, nil
}

func dedupe(idx []int) []int {
	seen := make(map[int]bool, len(idx))
	out := idx[:0]
	for _, q := range idx {
		if !seen[q] {
			seen[q] = true
			out = append(out, q)
		}
	}
	return out
}

// dedupeWith is dedupe against a persistent seen buffer (len ≥ NumPaths,
// all false on entry, restored to all false before return), so the
// steady-state epoch skips the map allocation.
func dedupeWith(idx []int, seen []bool) []int {
	out := idx[:0]
	for _, q := range idx {
		if !seen[q] {
			seen[q] = true
			out = append(out, q)
		}
	}
	for _, q := range out {
		seen[q] = false
	}
	return out
}

// growFloats resizes buf to n, reallocating only on capacity growth.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	return buf[:n]
}

// growSeen resizes buf to n; new storage starts all false and dedupeWith
// restores that invariant, so no clearing is needed here.
func growSeen(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

// Observe records one epoch's feedback for a played action and returns the
// reward (the rank of the surviving subset, Eq. 8).
func (b *LSR) Observe(action []int, avail []bool) (reward int, err error) {
	if len(avail) != b.pm.NumPaths() {
		return 0, fmt.Errorf("bandit: availability vector of %d for %d paths", len(avail), b.pm.NumPaths())
	}
	up := b.upBuf[:0]
	if b.opts.FreshEpoch {
		up = nil
	}
	for _, q := range action {
		if q < 0 || q >= b.pm.NumPaths() {
			return 0, fmt.Errorf("bandit: action path %d out of range", q)
		}
		x := 0.0
		if avail[q] {
			x = 1
			up = append(up, q)
		}
		b.recordObs(q, x)
	}
	if b.opts.FreshEpoch {
		reward = b.pm.RankOf(up)
	} else {
		b.upBuf = up
		if b.rankBasis == nil {
			b.rankBasis = b.pm.NewRankBasis()
		}
		reward = b.pm.RankOfWith(up, b.rankBasis)
	}
	b.cumulativeReward += float64(reward)
	b.epoch++
	b.m.epochs.Inc()
	b.m.reward.Set(float64(reward))
	b.m.rewardTotal.Add(uint64(reward))
	return reward, nil
}

// Step runs one full epoch against the environment: select, play, observe.
func (b *LSR) Step(env Env) (action []int, reward int, err error) {
	action, err = b.SelectAction()
	if err != nil {
		return nil, 0, err
	}
	reward, err = b.Observe(action, env.Epoch())
	if err != nil {
		return nil, 0, err
	}
	return action, reward, nil
}

// Exploit returns the pure-exploitation selection at the current estimates
// (confidence width zero): the final path set the paper evaluates after
// 500/1000 learning epochs.
func (b *LSR) Exploit() ([]int, error) {
	return b.maximize(b.ThetaHat(), -1)
}
