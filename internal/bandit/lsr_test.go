package bandit

import (
	"math"
	"math/rand/v2"
	"testing"

	"robusttomo/internal/er"
	"robusttomo/internal/failure"
	"robusttomo/internal/graph"
	"robusttomo/internal/routing"
	"robusttomo/internal/selection"
	"robusttomo/internal/stats"
	"robusttomo/internal/tomo"
)

func synthPath(links ...int) routing.Path {
	edges := make([]graph.EdgeID, len(links))
	for i, l := range links {
		edges[i] = graph.EdgeID(l)
	}
	return routing.Path{Src: 0, Dst: 1, Edges: edges}
}

// smallInstance: 6 disjoint-ish paths over 6 links with varied failure
// probabilities.
func smallInstance(t *testing.T) (*tomo.PathMatrix, *failure.Model) {
	t.Helper()
	paths := []routing.Path{
		synthPath(0),
		synthPath(1),
		synthPath(2),
		synthPath(0, 1),
		synthPath(3, 4),
		synthPath(5),
	}
	pm, err := tomo.NewPathMatrix(paths, 6)
	if err != nil {
		t.Fatal(err)
	}
	model, err := failure.FromProbabilities([]float64{0.05, 0.1, 0.6, 0.2, 0.2, 0.02})
	if err != nil {
		t.Fatal(err)
	}
	return pm, model
}

func unitCosts(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func TestNewValidation(t *testing.T) {
	pm, _ := smallInstance(t)
	if _, err := New(pm, unitCosts(3), 2, Options{}); err == nil {
		t.Fatal("cost length mismatch accepted")
	}
	if _, err := New(pm, unitCosts(pm.NumPaths()), 0, Options{}); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := New(pm, unitCosts(pm.NumPaths()), 2, Options{Matroid: true}); err == nil {
		t.Fatal("matroid mode without budget accepted")
	}
}

func TestLDerivation(t *testing.T) {
	pm, _ := smallInstance(t)
	b, err := New(pm, unitCosts(pm.NumPaths()), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.L() != 3 { // budget 3 / min cost 1
		t.Fatalf("L = %d, want 3", b.L())
	}
	bm, err := New(pm, unitCosts(pm.NumPaths()), 3, Options{Matroid: true, MatroidBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bm.L() != 2 {
		t.Fatalf("matroid L = %d, want 2", bm.L())
	}
	bo, err := New(pm, unitCosts(pm.NumPaths()), 3, Options{L: 5})
	if err != nil {
		t.Fatal(err)
	}
	if bo.L() != 5 {
		t.Fatalf("override L = %d, want 5", bo.L())
	}
}

func TestInitializationCoversAllPaths(t *testing.T) {
	pm, model := smallInstance(t)
	b, err := New(pm, unitCosts(pm.NumPaths()), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	env := NewFailureEnv(pm, model, stats.NewRNG(1, 1))
	// After at most N epochs every path must have been observed.
	for e := 0; e < pm.NumPaths(); e++ {
		if _, _, err := b.Step(env); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range b.Counts() {
		if c == 0 {
			t.Fatalf("path %d never observed after initialization", i)
		}
	}
	if b.Epochs() != pm.NumPaths() {
		t.Fatalf("Epochs = %d", b.Epochs())
	}
}

func TestObserveUpdatesEstimates(t *testing.T) {
	pm, _ := smallInstance(t)
	b, err := New(pm, unitCosts(pm.NumPaths()), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	avail := []bool{true, false, true, true, false, true}
	reward, err := b.Observe([]int{0, 1}, avail)
	if err != nil {
		t.Fatal(err)
	}
	if reward != 1 { // only path 0 up among the action
		t.Fatalf("reward = %d, want 1", reward)
	}
	th := b.ThetaHat()
	if th[0] != 1 || th[1] != 0 {
		t.Fatalf("ThetaHat = %v", th)
	}
	if b.CumulativeReward() != 1 {
		t.Fatalf("CumulativeReward = %v", b.CumulativeReward())
	}
}

func TestObserveValidation(t *testing.T) {
	pm, _ := smallInstance(t)
	b, _ := New(pm, unitCosts(pm.NumPaths()), 3, Options{})
	if _, err := b.Observe([]int{0}, []bool{true}); err == nil {
		t.Fatal("short availability accepted")
	}
	avail := make([]bool, pm.NumPaths())
	if _, err := b.Observe([]int{99}, avail); err == nil {
		t.Fatal("out-of-range action accepted")
	}
}

func TestActionsRespectBudget(t *testing.T) {
	pm, model := smallInstance(t)
	costs := []float64{1, 2, 1, 3, 2, 1}
	budget := 4.0
	b, err := New(pm, costs, budget, Options{})
	if err != nil {
		t.Fatal(err)
	}
	env := NewFailureEnv(pm, model, stats.NewRNG(2, 2))
	for e := 0; e < 30; e++ {
		action, _, err := b.Step(env)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		seen := map[int]bool{}
		for _, q := range action {
			if seen[q] {
				t.Fatalf("duplicate path %d in action %v", q, action)
			}
			seen[q] = true
			total += costs[q]
		}
		if total > budget+1e-9 {
			t.Fatalf("epoch %d action %v costs %v > budget %v", e, action, total, budget)
		}
	}
}

func TestUnaffordableForcedPathSkipped(t *testing.T) {
	pm, model := smallInstance(t)
	costs := []float64{1, 1, 99, 1, 1, 1} // path 2 can never be probed
	b, err := New(pm, costs, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	env := NewFailureEnv(pm, model, stats.NewRNG(3, 3))
	for e := 0; e < 20; e++ {
		action, _, err := b.Step(env)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range action {
			if q == 2 {
				t.Fatalf("unaffordable path probed in %v", action)
			}
		}
	}
}

func TestLearnsThetaOnIndependentEnv(t *testing.T) {
	pm, _ := smallInstance(t)
	theta := []float64{0.95, 0.9, 0.4, 0.85, 0.8, 0.98}
	env := NewThetaEnv(theta, stats.NewRNG(4, 4))
	b, err := New(pm, unitCosts(pm.NumPaths()), 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 1500; e++ {
		if _, _, err := b.Step(env); err != nil {
			t.Fatal(err)
		}
	}
	th := b.ThetaHat()
	counts := b.Counts()
	// Frequently played paths should have accurate estimates.
	for i := range th {
		if counts[i] > 300 && math.Abs(th[i]-theta[i]) > 0.1 {
			t.Fatalf("path %d: θ̂ = %v, θ = %v (count %d)", i, th[i], theta[i], counts[i])
		}
	}
}

func TestExploitConvergesToOptimal(t *testing.T) {
	pm, model := smallInstance(t)
	costs := unitCosts(pm.NumPaths())
	budget := 3.0
	b, err := New(pm, costs, budget, Options{})
	if err != nil {
		t.Fatal(err)
	}
	env := NewFailureEnv(pm, model, stats.NewRNG(5, 5))
	for e := 0; e < 1200; e++ {
		if _, _, err := b.Step(env); err != nil {
			t.Fatal(err)
		}
	}
	learned, err := b.Exploit()
	if err != nil {
		t.Fatal(err)
	}
	// Compare achieved exact ER against the known-distribution RoMe pick.
	oracle := er.NewProbBoundInc(pm, model)
	known, err := selection.RoMe(pm, costs, budget, oracle, selection.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	erLearned, err := er.Exact(pm, model, learned)
	if err != nil {
		t.Fatal(err)
	}
	erKnown, err := er.Exact(pm, model, known.Selected)
	if err != nil {
		t.Fatal(err)
	}
	if erLearned < 0.85*erKnown {
		t.Fatalf("learned ER %v too far below known-distribution ER %v", erLearned, erKnown)
	}
}

func TestMatroidModeSelectsIndependentSets(t *testing.T) {
	pm, model := smallInstance(t)
	b, err := New(pm, unitCosts(pm.NumPaths()), 3, Options{Matroid: true, MatroidBudget: 3})
	if err != nil {
		t.Fatal(err)
	}
	env := NewFailureEnv(pm, model, stats.NewRNG(6, 6))
	for e := 0; e < 25; e++ {
		action, _, err := b.Step(env)
		if err != nil {
			t.Fatal(err)
		}
		if len(action) > 3 {
			t.Fatalf("action %v exceeds matroid budget", action)
		}
		if pm.RankOf(action) != len(action) {
			t.Fatalf("action %v not linearly independent", action)
		}
	}
}

// Regret shape: average per-epoch regret must shrink as epochs grow
// (sublinear cumulative regret), measured against the best fixed action's
// expected reward on an independent-θ environment.
func TestRegretSublinear(t *testing.T) {
	paths := []routing.Path{synthPath(0), synthPath(1), synthPath(2), synthPath(3)}
	pm, err := tomo.NewPathMatrix(paths, 4)
	if err != nil {
		t.Fatal(err)
	}
	theta := []float64{0.9, 0.8, 0.3, 0.2}
	// Budget 2, unit costs: best action = paths {0, 1}, expected reward 1.7.
	best := 1.7
	env := NewThetaEnv(theta, stats.NewRNG(7, 7))
	b, err := New(pm, unitCosts(4), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	horizon := 3000
	half := horizon / 2
	var firstHalf float64
	for e := 0; e < horizon; e++ {
		_, r, err := b.Step(env)
		if err != nil {
			t.Fatal(err)
		}
		if e == half-1 {
			firstHalf = b.CumulativeReward()
		}
		_ = r
	}
	secondHalf := b.CumulativeReward() - firstHalf
	regret1 := best*float64(half) - firstHalf
	regret2 := best*float64(horizon-half) - secondHalf
	if regret2 > regret1 {
		t.Fatalf("regret grew: first half %v, second half %v", regret1, regret2)
	}
	// The learner should settle close to the optimum late on.
	if secondHalf/float64(horizon-half) < best-0.15 {
		t.Fatalf("late average reward %v too far from optimum %v", secondHalf/float64(horizon-half), best)
	}
}

func TestDedupe(t *testing.T) {
	got := dedupe([]int{3, 1, 3, 2, 1})
	want := []int{3, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("dedupe = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedupe = %v, want %v", got, want)
		}
	}
}

func TestThetaEnvFrequencies(t *testing.T) {
	env := NewThetaEnv([]float64{0.25}, stats.NewRNG(8, 8))
	up := 0
	n := 8000
	for i := 0; i < n; i++ {
		if env.Epoch()[0] {
			up++
		}
	}
	if f := float64(up) / float64(n); math.Abs(f-0.25) > 0.03 {
		t.Fatalf("frequency %v, want ~0.25", f)
	}
}

func TestFailureEnvConsistentWithModel(t *testing.T) {
	pm, model := smallInstance(t)
	env := NewFailureEnv(pm, model, stats.NewRNG(9, 9))
	n := 8000
	up := 0
	for i := 0; i < n; i++ {
		if env.Epoch()[0] {
			up++
		}
	}
	want := er.ExpectedAvailability(pm, model, 0)
	if f := float64(up) / float64(n); math.Abs(f-want) > 0.03 {
		t.Fatalf("path 0 availability %v, want ~%v", f, want)
	}
}

func TestRandomizedActionsStayValid(t *testing.T) {
	// Fuzz many short learning runs on random instances.
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 99))
		nLinks := 4 + rng.IntN(4)
		nPaths := 3 + rng.IntN(6)
		paths := make([]routing.Path, nPaths)
		for i := range paths {
			hops := 1 + rng.IntN(3)
			if hops > nLinks {
				hops = nLinks
			}
			paths[i] = synthPath(stats.SampleWithoutReplacement(rng, nLinks, hops)...)
		}
		pm, err := tomo.NewPathMatrix(paths, nLinks)
		if err != nil {
			t.Fatal(err)
		}
		probs := make([]float64, nLinks)
		for i := range probs {
			probs[i] = rng.Float64() * 0.5
		}
		model, err := failure.FromProbabilities(probs)
		if err != nil {
			t.Fatal(err)
		}
		costs := make([]float64, nPaths)
		for i := range costs {
			costs[i] = 1 + float64(rng.IntN(3))
		}
		budget := 2 + float64(rng.IntN(6))
		b, err := New(pm, costs, budget, Options{})
		if err != nil {
			t.Fatal(err)
		}
		env := NewFailureEnv(pm, model, rng)
		for e := 0; e < 40; e++ {
			action, _, err := b.Step(env)
			if err != nil {
				t.Fatal(err)
			}
			total := 0.0
			affordable := false
			for _, q := range action {
				total += costs[q]
			}
			for _, c := range costs {
				if c <= budget {
					affordable = true
				}
			}
			if affordable && total > budget+1e-9 {
				t.Fatalf("trial %d epoch %d: cost %v > budget %v", trial, e, total, budget)
			}
		}
	}
}
