package bandit

import (
	"robusttomo/internal/obs"
)

// banditMetrics holds the learner's pre-interned instrument handles. With
// no observer registry every field is nil and each update costs the obs
// package's single nil check; derived quantities (the UCB width spread)
// are only computed when their gauge is installed. Instrumentation never
// changes the action sequence — everything recorded is read off state the
// learner already maintains.
type banditMetrics struct {
	// epochs counts completed Observe calls (= learning epochs).
	epochs *obs.Counter
	// reward is the last epoch's rank reward; rewardTotal accumulates it.
	reward      *obs.Gauge
	rewardTotal *obs.Counter
	// ucbSpread is the max−min spread of the Eq. 10 confidence widths over
	// observed paths: wide early (heterogeneous counts), shrinking toward 0
	// as exploration evens out.
	ucbSpread *obs.Gauge
	// explorePicks counts initialization-phase actions forced to cover a
	// never-observed path.
	explorePicks *obs.Counter
}

// noBanditMetrics is the shared all-nil handle set for unobserved
// learners.
var noBanditMetrics = &banditMetrics{}

// newBanditMetrics registers the learner metric families on reg; a nil
// registry returns the shared all-nil handle set.
func newBanditMetrics(reg *obs.Registry) *banditMetrics {
	if reg == nil {
		return noBanditMetrics
	}
	return &banditMetrics{
		epochs: reg.Counter("tomo_bandit_epochs_total",
			"Completed learning epochs (Observe calls)."),
		reward: reg.Gauge("tomo_bandit_reward",
			"Rank reward of the most recent epoch."),
		rewardTotal: reg.Counter("tomo_bandit_reward_total",
			"Cumulative rank reward across epochs."),
		ucbSpread: reg.Gauge("tomo_bandit_ucb_width_spread",
			"Max minus min confidence width over observed paths (Eq. 10)."),
		explorePicks: reg.Counter("tomo_bandit_exploration_picks_total",
			"Actions forced to cover a never-observed path."),
	}
}
