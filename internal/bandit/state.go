package bandit

import (
	"encoding/json"
	"fmt"
)

// lsrState is the serialized learner state. Epochs in real deployments
// are minutes long (measurement-collection windows), so a learning run
// spans days; Snapshot/Restore let the NOC checkpoint the learner across
// restarts without losing the accumulated availability statistics.
type lsrState struct {
	Version          int       `json:"version"`
	Paths            int       `json:"paths"`
	SumX             []float64 `json:"sumX"`
	Count            []int     `json:"count"`
	Epoch            int       `json:"epoch"`
	CumulativeReward float64   `json:"cumulativeReward"`
	L                int       `json:"l"`
}

const stateVersion = 1

// Snapshot serializes the learner's mutable state.
func (b *LSR) Snapshot() ([]byte, error) {
	st := lsrState{
		Version:          stateVersion,
		Paths:            len(b.sumX),
		SumX:             b.sumX,
		Count:            b.count,
		Epoch:            b.epoch,
		CumulativeReward: b.cumulativeReward,
		L:                b.l,
	}
	data, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("bandit: snapshot: %w", err)
	}
	return data, nil
}

// Restore replaces the learner's mutable state with a snapshot taken from
// a learner over the same candidate set. The L constant is restored too so
// confidence widths continue the original schedule.
func (b *LSR) Restore(data []byte) error {
	var st lsrState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("bandit: restore: %w", err)
	}
	if st.Version != stateVersion {
		return fmt.Errorf("bandit: restore: unsupported state version %d", st.Version)
	}
	if st.Paths != len(b.sumX) || len(st.SumX) != st.Paths || len(st.Count) != st.Paths {
		return fmt.Errorf("bandit: restore: state covers %d paths, learner has %d", st.Paths, len(b.sumX))
	}
	if st.Epoch < 0 || st.L < 1 {
		return fmt.Errorf("bandit: restore: corrupt state (epoch %d, L %d)", st.Epoch, st.L)
	}
	for i, c := range st.Count {
		if c < 0 || st.SumX[i] < 0 || st.SumX[i] > float64(c) {
			return fmt.Errorf("bandit: restore: inconsistent statistics for path %d", i)
		}
	}
	copy(b.sumX, st.SumX)
	copy(b.count, st.Count)
	b.epoch = st.Epoch
	b.cumulativeReward = st.CumulativeReward
	b.l = st.L
	b.syncDerived()
	return nil
}
