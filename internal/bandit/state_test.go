package bandit

import (
	"strings"
	"testing"

	"robusttomo/internal/stats"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	pm, model := smallInstance(t)
	costs := unitCosts(pm.NumPaths())
	a, err := New(pm, costs, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	env := NewFailureEnv(pm, model, stats.NewRNG(1, 1))
	for e := 0; e < 60; e++ {
		if _, _, err := a.Step(env); err != nil {
			t.Fatal(err)
		}
	}
	data, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	b, err := New(pm, costs, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(data); err != nil {
		t.Fatal(err)
	}
	if b.Epochs() != a.Epochs() || b.CumulativeReward() != a.CumulativeReward() || b.L() != a.L() {
		t.Fatalf("restored counters differ: %d/%v/%d vs %d/%v/%d",
			b.Epochs(), b.CumulativeReward(), b.L(), a.Epochs(), a.CumulativeReward(), a.L())
	}
	ta, tb := a.ThetaHat(), b.ThetaHat()
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("ThetaHat[%d] differs: %v vs %v", i, ta[i], tb[i])
		}
	}
	// Both learners must make identical decisions afterwards.
	actA, err := a.SelectAction()
	if err != nil {
		t.Fatal(err)
	}
	actB, err := b.SelectAction()
	if err != nil {
		t.Fatal(err)
	}
	if len(actA) != len(actB) {
		t.Fatalf("actions differ: %v vs %v", actA, actB)
	}
	for i := range actA {
		if actA[i] != actB[i] {
			t.Fatalf("actions differ: %v vs %v", actA, actB)
		}
	}
}

func TestRestoreValidation(t *testing.T) {
	pm, _ := smallInstance(t)
	b, err := New(pm, unitCosts(pm.NumPaths()), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data string
	}{
		{"garbage", "not json"},
		{"wrong version", `{"version":99,"paths":6,"sumX":[0,0,0,0,0,0],"count":[0,0,0,0,0,0],"epoch":0,"l":3}`},
		{"wrong path count", `{"version":1,"paths":2,"sumX":[0,0],"count":[0,0],"epoch":0,"l":3}`},
		{"negative epoch", `{"version":1,"paths":6,"sumX":[0,0,0,0,0,0],"count":[0,0,0,0,0,0],"epoch":-1,"l":3}`},
		{"zero L", `{"version":1,"paths":6,"sumX":[0,0,0,0,0,0],"count":[0,0,0,0,0,0],"epoch":0,"l":0}`},
		{"sum exceeds count", `{"version":1,"paths":6,"sumX":[5,0,0,0,0,0],"count":[1,0,0,0,0,0],"epoch":1,"l":3}`},
		{"ragged arrays", `{"version":1,"paths":6,"sumX":[0],"count":[0,0,0,0,0,0],"epoch":0,"l":3}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := b.Restore([]byte(tc.data)); err == nil {
				t.Fatalf("state %q accepted", tc.data)
			}
		})
	}
}

func TestSnapshotIsJSON(t *testing.T) {
	pm, _ := smallInstance(t)
	b, _ := New(pm, unitCosts(pm.NumPaths()), 3, Options{})
	data, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version":1`) {
		t.Fatalf("snapshot = %s", data)
	}
}
