package bandit

import "fmt"

// WindowedObserver wraps an LSR learner with a sliding observation window,
// an extension for non-stationary failure processes: the paper assumes
// link states are i.i.d. across epochs, but real failure distributions
// drift (maintenance waves, seasonal load). Feeding the learner only the
// most recent W epochs of each path's history lets stale availability
// evidence age out, at the cost of wider confidence intervals.
//
// Implementation: the window keeps per-path observation ring buffers and
// periodically rebuilds the learner's sufficient statistics (sum, count)
// from the live window via Snapshot/Restore, so LSR itself stays unaware
// of the windowing.
type WindowedObserver struct {
	learner *LSR
	window  int
	// ring[i] holds the last ≤ window observations of path i.
	ring  [][]bool
	epoch int
}

// NewWindowedObserver wraps an existing learner with a window of W epochs
// per path.
func NewWindowedObserver(learner *LSR, window int) (*WindowedObserver, error) {
	if learner == nil {
		return nil, fmt.Errorf("bandit: nil learner")
	}
	if window < 10 {
		return nil, fmt.Errorf("bandit: window %d too small (need ≥ 10 for stable estimates)", window)
	}
	return &WindowedObserver{
		learner: learner,
		window:  window,
		ring:    make([][]bool, learner.pm.NumPaths()),
	}, nil
}

// Learner exposes the wrapped LSR (for SelectAction, Exploit, metrics).
func (w *WindowedObserver) Learner() *LSR { return w.learner }

// Step runs one epoch: select via the wrapped learner, observe through the
// window.
func (w *WindowedObserver) Step(env Env) (action []int, reward int, err error) {
	action, err = w.learner.SelectAction()
	if err != nil {
		return nil, 0, err
	}
	avail := env.Epoch()
	reward, err = w.Observe(action, avail)
	if err != nil {
		return nil, 0, err
	}
	return action, reward, nil
}

// Observe records the epoch in both the learner and the window, then
// rebuilds the learner's statistics from the window when entries aged out.
func (w *WindowedObserver) Observe(action []int, avail []bool) (int, error) {
	reward, err := w.learner.Observe(action, avail)
	if err != nil {
		return 0, err
	}
	aged := false
	for _, q := range action {
		w.ring[q] = append(w.ring[q], avail[q])
		if len(w.ring[q]) > w.window {
			w.ring[q] = w.ring[q][len(w.ring[q])-w.window:]
			aged = true
		}
	}
	w.epoch++
	if aged {
		w.rebuild()
	}
	return reward, nil
}

// rebuild overwrites the learner's per-path sufficient statistics with the
// windowed ones, preserving the epoch counter (which drives the confidence
// schedule).
func (w *WindowedObserver) rebuild() {
	for i, ring := range w.ring {
		count := len(ring)
		sum := 0.0
		for _, up := range ring {
			if up {
				sum++
			}
		}
		w.learner.count[i] = count
		w.learner.sumX[i] = sum
	}
	w.learner.syncDerived()
}

// Window returns the configured window size.
func (w *WindowedObserver) Window() int { return w.window }
