package bandit

import (
	"testing"

	"robusttomo/internal/failure"
	"robusttomo/internal/stats"
)

func TestNewWindowedObserverValidation(t *testing.T) {
	pm, _ := smallInstance(t)
	l, err := New(pm, unitCosts(pm.NumPaths()), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWindowedObserver(nil, 100); err == nil {
		t.Fatal("nil learner accepted")
	}
	if _, err := NewWindowedObserver(l, 5); err == nil {
		t.Fatal("tiny window accepted")
	}
	w, err := NewWindowedObserver(l, 50)
	if err != nil {
		t.Fatal(err)
	}
	if w.Window() != 50 || w.Learner() != l {
		t.Fatal("accessors broken")
	}
}

func TestWindowedCountsBounded(t *testing.T) {
	pm, model := smallInstance(t)
	l, err := New(pm, unitCosts(pm.NumPaths()), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWindowedObserver(l, 40)
	if err != nil {
		t.Fatal(err)
	}
	env := NewFailureEnv(pm, model, stats.NewRNG(1, 1))
	for e := 0; e < 400; e++ {
		if _, _, err := w.Step(env); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range l.Counts() {
		if c > 40 {
			t.Fatalf("path %d count %d exceeds window", i, c)
		}
	}
	if l.Epochs() != 400 {
		t.Fatalf("Epochs = %d (must keep the global schedule)", l.Epochs())
	}
}

// Under a distribution shift the windowed learner's estimate tracks the
// new regime while the unwindowed learner stays anchored to the average.
func TestWindowedAdaptsToShift(t *testing.T) {
	pm, _ := smallInstance(t)
	costs := unitCosts(pm.NumPaths())

	run := func(windowed bool) float64 {
		l, err := New(pm, costs, 3, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var step func(env Env) error
		if windowed {
			w, err := NewWindowedObserver(l, 60)
			if err != nil {
				t.Fatal(err)
			}
			step = func(env Env) error { _, _, err := w.Step(env); return err }
		} else {
			step = func(env Env) error { _, _, err := l.Step(env); return err }
		}
		// Phase 1: path 0's link is reliable. Phase 2: it degrades hard.
		phase1, _ := failure.FromProbabilities([]float64{0.02, 0.1, 0.6, 0.2, 0.2, 0.02})
		phase2, _ := failure.FromProbabilities([]float64{0.9, 0.1, 0.6, 0.2, 0.2, 0.02})
		env1 := NewFailureEnv(pm, phase1, stats.NewRNG(2, 2))
		env2 := NewFailureEnv(pm, phase2, stats.NewRNG(3, 3))
		for e := 0; e < 500; e++ {
			if err := step(env1); err != nil {
				t.Fatal(err)
			}
		}
		for e := 0; e < 300; e++ {
			if err := step(env2); err != nil {
				t.Fatal(err)
			}
		}
		return l.ThetaHat()[0]
	}

	windowedTheta := run(true)
	plainTheta := run(false)
	// True availability of path 0 in phase 2 is 0.1. The windowed estimate
	// must sit well below the unwindowed one, which still averages in the
	// 500 reliable epochs.
	if windowedTheta >= plainTheta {
		t.Fatalf("windowed θ̂ %v not below unwindowed %v after shift", windowedTheta, plainTheta)
	}
	if windowedTheta > 0.45 {
		t.Fatalf("windowed θ̂ %v still anchored to the old regime", windowedTheta)
	}
}
