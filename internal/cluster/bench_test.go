package cluster

import (
	"fmt"
	"testing"

	"robusttomo/internal/service"
)

// benchSpecs yields an endless stream of distinct-key specs owned by
// the given node, so every benchmark op is a cold submission (no cache
// hits, no dedup) on a predictable route.
func benchSpecs(b *testing.B, tc *testCluster, owner int) func() service.JobSpec {
	b.Helper()
	next := 0
	return func() service.JobSpec {
		for ; ; next++ {
			spec := clusterSpec(next)
			if ownerIndex(b, tc, spec) == owner {
				next++
				return spec
			}
		}
	}
}

func benchSubmit(b *testing.B, tc *testCluster, submitAt, ownedBy int) {
	b.Helper()
	gen := benchSpecs(b, tc, ownedBy)
	n := tc.nodes[submitAt]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := n.Submit(gen())
		if err != nil {
			b.Fatalf("Submit: %v", err)
		}
		waitResult(b, n, out.ID)
	}
	b.StopTimer()
	st := n.Stats()
	b.ReportMetric(float64(st.HedgeWins)/float64(b.N), "hedgewins")
}

// BenchmarkClusterSubmitForwarded measures the full forwarded path on
// the loopback fabric: route → OpExec frame to the owner → remote
// execute → cache-fill → result. The hedgewins metric records the
// hedge-win rate per op (≈0 on a healthy fabric; the regression ledger
// tracks it so an accidental always-hedge shows up as a perf bug).
func BenchmarkClusterSubmitForwarded(b *testing.B) {
	tc := newTestCluster(b, 3, nil)
	benchSubmit(b, tc, 0, 1)
}

// BenchmarkClusterSubmitForwardedSerial is the forwarded benchmark's
// baseline pair: the same jobs submitted at their owner, i.e. the pure
// local submit+wait latency. The Speedup column in BENCH_cluster.json
// is therefore the forwarding overhead factor (expected < 1: forwarding
// costs one codec round trip on top of the local run).
func BenchmarkClusterSubmitForwardedSerial(b *testing.B) {
	tc := newTestCluster(b, 3, nil)
	benchSubmit(b, tc, 1, 1)
}

// BenchmarkClusterRingOwner isolates the routing decision itself.
func BenchmarkClusterRingOwner(b *testing.B) {
	members := make([]string, 16)
	for i := range members {
		members[i] = fmt.Sprintf("node%02d", i)
	}
	r := NewRing(members, DefaultRingReplicas)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Owner(fmt.Sprintf("key-%d", i&1023), nil); !ok {
			b.Fatal("no owner")
		}
	}
}

// BenchmarkClusterPeerCodec isolates one request+response wire round
// trip — the per-forward framing overhead.
func BenchmarkClusterPeerCodec(b *testing.B) {
	req := &PeerRequest{Op: OpExec, Forwarded: true, Key: "0123456789abcdef0123456789abcdef",
		Origin: "node00", Spec: []byte(`{"links":6,"budget":4.125,"algorithm":"probrome"}`)}
	resp := &PeerResponse{Status: StatusOK, Payload: []byte(`{"paths":[0,1,2],"cost":3.5}`)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rq, err := roundTripRequest(req)
		if err != nil || rq.Key != req.Key {
			b.Fatalf("request round trip: %v", err)
		}
		rs, err := roundTripResponse(resp)
		if err != nil || rs.Status != StatusOK {
			b.Fatalf("response round trip: %v", err)
		}
	}
}
