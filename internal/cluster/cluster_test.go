package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"robusttomo/internal/agent"
	"robusttomo/internal/engine"
	"robusttomo/internal/service"

	_ "robusttomo/internal/selection" // registers the selection engine
)

// clusterSpec returns a small valid instance; vary n to vary the
// canonical key (the budget perturbation keeps the instance valid while
// giving every n a distinct key, hence a distinct ring position).
func clusterSpec(n int) service.JobSpec {
	return service.JobSpec{
		Links:     6,
		Paths:     [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}, {0, 1, 2}, {3, 4, 5}},
		Probs:     []float64{0.1, 0.05, 0.2, 0.1, 0.15, 0.08},
		Costs:     []float64{1, 1, 2, 1, 1, 2, 3, 3},
		Budget:    4 + float64(n)*0.125,
		Algorithm: service.AlgProbRoMe,
	}
}

type testCluster struct {
	tr    *LoopbackTransport
	addrs []string
	nodes []*Node
	svcs  []*service.Service
}

// newTestCluster builds a size-node in-process cluster on one loopback
// fabric: every node sees every other as a peer, gossip loops are off
// (tests drive GossipOnce deterministically), breakers trip on the
// first failure and stay open (an hour's cooldown) so liveness flips
// are deterministic too.
func newTestCluster(t testing.TB, size int, mutate func(i int, cfg *Config)) *testCluster {
	t.Helper()
	tc := &testCluster{tr: NewLoopbackTransport()}
	for i := 0; i < size; i++ {
		tc.addrs = append(tc.addrs, fmt.Sprintf("node%02d", i))
	}
	for i := 0; i < size; i++ {
		svc := service.New(service.Config{Workers: 2, QueueDepth: 256})
		var peers []string
		for j, a := range tc.addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		cfg := Config{
			Self:           tc.addrs[i],
			Peers:          peers,
			HedgeAfter:     25 * time.Millisecond,
			CallTimeout:    5 * time.Second,
			GossipInterval: -1,
			Breaker:        agent.BreakerPolicy{FailureThreshold: 1, Cooldown: time.Hour},
			Service:        svc,
			Transport:      tc.tr,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatalf("New(node %d): %v", i, err)
		}
		tc.tr.Register(tc.addrs[i], n)
		tc.nodes = append(tc.nodes, n)
		tc.svcs = append(tc.svcs, svc)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		for _, n := range tc.nodes {
			n.Close(ctx)
		}
		for _, s := range tc.svcs {
			s.Close(ctx)
		}
	})
	return tc
}

func closeService(t testing.TB, s *service.Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Close(ctx)
}

// ownerIndex returns which node owns spec with everyone alive.
func ownerIndex(t testing.TB, tc *testCluster, spec service.JobSpec) int {
	t.Helper()
	key, err := spec.CanonicalKey()
	if err != nil {
		t.Fatalf("CanonicalKey: %v", err)
	}
	owner, ok := tc.nodes[0].Ring().Owner(key, nil)
	if !ok {
		t.Fatal("no ring owner")
	}
	for i, a := range tc.addrs {
		if a == owner {
			return i
		}
	}
	t.Fatalf("owner %q not a member", owner)
	return -1
}

// specOwnedBy scans spec variants until one is owned by want.
func specOwnedBy(t testing.TB, tc *testCluster, want int) service.JobSpec {
	t.Helper()
	for n := 0; n < 1000; n++ {
		if spec := clusterSpec(n); ownerIndex(t, tc, spec) == want {
			return spec
		}
	}
	t.Fatalf("no spec owned by node %d in 1000 tries", want)
	return service.JobSpec{}
}

// specNotOwnedBy scans spec variants until one is NOT owned by not.
func specNotOwnedBy(t testing.TB, tc *testCluster, not int) service.JobSpec {
	t.Helper()
	for n := 0; n < 1000; n++ {
		if spec := clusterSpec(n); ownerIndex(t, tc, spec) != not {
			return spec
		}
	}
	t.Fatalf("every spec owned by node %d in 1000 tries", not)
	return service.JobSpec{}
}

// referenceJSON runs spec on a fresh single-node service and returns
// the result's JSON — the bytes every cluster path must reproduce.
func referenceJSON(t testing.TB, spec service.JobSpec) []byte {
	t.Helper()
	svc := service.New(service.Config{Workers: 1})
	defer closeService(t, svc)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	res, err := svc.SubmitAndWait(ctx, spec)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal reference: %v", err)
	}
	return b
}

func waitResult(t testing.TB, n *Node, id string) engine.Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	st, err := n.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s) on %s: %v", id[:8], n.Self(), err)
	}
	if st.State != service.StateDone {
		t.Fatalf("job %s on %s ended %s: %s", id[:8], n.Self(), st.State, st.Error)
	}
	res, err := n.Result(id)
	if err != nil {
		t.Fatalf("Result(%s) on %s: %v", id[:8], n.Self(), err)
	}
	return res
}

func checkInvariant(t testing.TB, st NodeStats) {
	t.Helper()
	if got := st.CacheHits + st.Owned + st.Forwards + st.ForwardDedup + st.Shed + st.Rejected; got != st.Submitted {
		t.Fatalf("%s disposition ledger broken: submitted=%d but cacheHits=%d owned=%d forwards=%d dedup=%d shed=%d rejected=%d (sum %d)",
			st.Self, st.Submitted, st.CacheHits, st.Owned, st.Forwards, st.ForwardDedup, st.Shed, st.Rejected, got)
	}
}

func checkDrainedInvariant(t testing.TB, st NodeStats) {
	t.Helper()
	checkInvariant(t, st)
	if got := st.ForwardWins + st.HedgeWins + st.Fallbacks + st.ForwardErrors; got != st.Forwards {
		t.Fatalf("%s completion ledger broken after drain: forwards=%d but wins=%d hedgeWins=%d fallbacks=%d errors=%d (sum %d)",
			st.Self, st.Forwards, st.ForwardWins, st.HedgeWins, st.Fallbacks, st.ForwardErrors, got)
	}
}

// TestClusterExactlyOnceBitIdentical is the acceptance core: one
// identical job submitted concurrently to all three peers executes
// exactly once cluster-wide, and every peer returns bytes bit-identical
// to a single-node run.
func TestClusterExactlyOnceBitIdentical(t *testing.T) {
	spec := clusterSpec(1)
	ref := referenceJSON(t, spec)
	tc := newTestCluster(t, 3, nil)

	var wg sync.WaitGroup
	ids := make([]string, 3)
	errs := make([]error, 3)
	for i, n := range tc.nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			out, err := n.Submit(spec)
			ids[i], errs[i] = out.ID, err
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Submit on node %d: %v", i, err)
		}
	}

	for i, n := range tc.nodes {
		res := waitResult(t, n, ids[i])
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal result from node %d: %v", i, err)
		}
		if string(got) != string(ref) {
			t.Fatalf("node %d result diverges from single-node run:\n got  %s\n want %s", i, got, ref)
		}
	}

	var executed uint64
	for _, s := range tc.svcs {
		executed += s.Stats().Executed
	}
	if executed != 1 {
		t.Fatalf("cluster executed the job %d times, want exactly once", executed)
	}
	for _, n := range tc.nodes {
		checkInvariant(t, n.Stats())
	}
}

// TestClusterKilledOwnerHedges kills the ring owner mid-flight (it
// accepts the connection and never answers); the hedge leg to the
// successor replica must still complete the job with the right bytes.
func TestClusterKilledOwnerHedges(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	spec := specNotOwnedBy(t, tc, 0)
	owner := ownerIndex(t, tc, spec)
	ref := referenceJSON(t, spec)

	tc.tr.SetHang(tc.addrs[owner], true)
	out, err := tc.nodes[0].Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res := waitResult(t, tc.nodes[0], out.ID)
	got, _ := json.Marshal(res)
	if string(got) != string(ref) {
		t.Fatalf("hedged result diverges:\n got  %s\n want %s", got, ref)
	}

	st := tc.nodes[0].Stats()
	if st.Hedges == 0 {
		t.Fatalf("no hedge fired against a hung owner: %+v", st)
	}
	if st.HedgeWins+st.Fallbacks == 0 {
		t.Fatalf("hung owner's job completed without the hedge or fallback winning: %+v", st)
	}
	if tc.svcs[owner].Stats().Executed != 0 {
		t.Fatal("hung owner still executed the job")
	}
}

// TestClusterDeadOwnerFailsFast: a down owner fails the primary leg
// immediately, the hedge fires without waiting for HedgeAfter, and the
// owner's breaker trips so the NEXT submission routes around it
// entirely (no forward attempt at all).
func TestClusterDeadOwnerFailsFast(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	spec := specNotOwnedBy(t, tc, 0)
	owner := ownerIndex(t, tc, spec)
	tc.tr.SetDown(tc.addrs[owner], true)

	out, err := tc.nodes[0].Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitResult(t, tc.nodes[0], out.ID)

	st := tc.nodes[0].Stats()
	if st.Hedges != 1 || st.HedgeWins+st.Fallbacks != 1 {
		t.Fatalf("dead owner should be rescued by the hedge/fallback: %+v", st)
	}

	// Breaker tripped (threshold 1): the owner now reads dead, so a
	// fresh spec it used to own routes straight to the successor.
	found := false
	for _, p := range st.Peers {
		if p.Addr == tc.addrs[owner] && p.State == "open" {
			found = true
		}
	}
	if !found {
		t.Fatalf("owner breaker not open after transport failure: %+v", st.Peers)
	}
	key, _ := spec.CanonicalKey()
	if o, ok := tc.nodes[0].Ring().Owner(key, tc.nodes[0].alive); !ok || o == tc.addrs[owner] {
		t.Fatalf("dead owner %q still owns the key", tc.addrs[owner])
	}
}

// TestClusterForwardDedup: identical concurrent submissions at the same
// non-owner coalesce onto one forward.
func TestClusterForwardDedup(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	spec := specNotOwnedBy(t, tc, 0)
	owner := ownerIndex(t, tc, spec)
	tc.tr.SetDelay(tc.addrs[owner], 50*time.Millisecond)

	out1, err := tc.nodes[0].Submit(spec)
	if err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	out2, err := tc.nodes[0].Submit(spec)
	if err != nil {
		t.Fatalf("second Submit: %v", err)
	}
	if !out2.Deduped {
		t.Fatalf("second submission not deduped: %+v", out2)
	}
	if out1.ID != out2.ID {
		t.Fatalf("dedup changed the ID: %s vs %s", out1.ID, out2.ID)
	}
	waitResult(t, tc.nodes[0], out1.ID)
	st := tc.nodes[0].Stats()
	if st.Forwards != 1 || st.ForwardDedup != 1 {
		t.Fatalf("want 1 forward + 1 dedup, got %+v", st)
	}
}

// TestClusterCacheFill: a completed forward installs the owner's bytes
// locally, so resubmitting the same job at the non-owner is a local
// cache hit — no second forward, no peer traffic.
func TestClusterCacheFill(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	spec := specNotOwnedBy(t, tc, 0)

	out, err := tc.nodes[0].Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	first := waitResult(t, tc.nodes[0], out.ID)

	again, err := tc.nodes[0].Submit(spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !again.Cached {
		t.Fatalf("resubmission after cache-fill not served from cache: %+v", again)
	}
	second, err := tc.nodes[0].Result(again.ID)
	if err != nil {
		t.Fatalf("Result after cache hit: %v", err)
	}
	b1, _ := json.Marshal(first)
	b2, _ := json.Marshal(second)
	if string(b1) != string(b2) {
		t.Fatal("cache-filled bytes diverge from the forwarded result")
	}

	st := tc.nodes[0].Stats()
	if st.Forwards != 1 {
		t.Fatalf("resubmission forwarded again: %+v", st)
	}
	if st.CacheHits != 1 || st.RemoteFills != 1 {
		t.Fatalf("want 1 cache hit + 1 remote fill, got %+v", st)
	}
	if fs := tc.nodes[0].svc.Stats().Filled; fs != 1 {
		t.Fatalf("service filled counter = %d, want 1", fs)
	}
}

// TestClusterCacheProbeOp exercises the OpCacheProbe peer path
// directly: hit after the owner computed, miss on a cold key.
func TestClusterCacheProbeOp(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	spec := specOwnedBy(t, tc, 1)
	key, _ := spec.CanonicalKey()

	ctx := context.Background()
	resp, err := tc.tr.Call(ctx, tc.addrs[1], &PeerRequest{Op: OpCacheProbe, Key: key, Origin: tc.addrs[0]})
	if err != nil || resp.Status != StatusMiss {
		t.Fatalf("cold probe = %v/%v, want miss", resp, err)
	}

	out, err := tc.nodes[1].Submit(spec)
	if err != nil {
		t.Fatalf("owner Submit: %v", err)
	}
	waitResult(t, tc.nodes[1], out.ID)

	resp, err = tc.tr.Call(ctx, tc.addrs[1], &PeerRequest{Op: OpCacheProbe, Key: key, Origin: tc.addrs[0]})
	if err != nil || resp.Status != StatusOK || len(resp.Payload) == 0 {
		t.Fatalf("warm probe = %v/%v, want OK with payload", resp, err)
	}
}

// TestClusterGossipMarksDeadAndRecovers drives the health-gossip loop
// deterministically: a down peer's breaker opens after one failed ping,
// its key range moves to the successor (served locally, no forward),
// and once the peer returns and the cooldown elapses, a gossip probe
// closes the breaker and routing resumes.
func TestClusterGossipMarksDeadAndRecovers(t *testing.T) {
	tc := newTestCluster(t, 2, func(i int, cfg *Config) {
		cfg.Breaker = agent.BreakerPolicy{FailureThreshold: 1, Cooldown: 30 * time.Millisecond}
	})
	ctx := context.Background()

	tc.tr.SetDown(tc.addrs[1], true)
	tc.nodes[0].GossipOnce(ctx)
	if tc.nodes[0].alive(tc.addrs[1]) {
		t.Fatal("peer still alive after failed gossip ping")
	}

	// The dead peer's keys are served locally now.
	spec := specOwnedBy(t, tc, 1)
	out, err := tc.nodes[0].Submit(spec)
	if err != nil {
		t.Fatalf("Submit with dead owner: %v", err)
	}
	waitResult(t, tc.nodes[0], out.ID)
	st := tc.nodes[0].Stats()
	if st.Forwards != 0 || st.Owned != 1 {
		t.Fatalf("dead-owner submit should run locally without forwarding: %+v", st)
	}

	// Recovery: peer back up, cooldown elapsed, one gossip probe heals.
	tc.tr.SetDown(tc.addrs[1], false)
	time.Sleep(40 * time.Millisecond)
	tc.nodes[0].GossipOnce(ctx)
	if !tc.nodes[0].alive(tc.addrs[1]) {
		t.Fatal("peer still dead after successful gossip probe")
	}
	spec2 := specOwnedBy(t, tc, 1)
	for n := 0; n < 1000; n++ {
		spec2 = clusterSpec(n)
		if ownerIndex(t, tc, spec2) == 1 {
			if key, _ := spec2.CanonicalKey(); func() bool {
				_, known := tc.nodes[0].svc.CachedResult(key)
				return !known
			}() {
				break
			}
		}
	}
	out2, err := tc.nodes[0].Submit(spec2)
	if err != nil {
		t.Fatalf("Submit after recovery: %v", err)
	}
	waitResult(t, tc.nodes[0], out2.ID)
	if st := tc.nodes[0].Stats(); st.Forwards == 0 {
		t.Fatalf("recovered peer not routed to: %+v", st)
	}
}

// TestClusterCancelForward cancels an in-flight forward against a hung
// owner: the job must reach a canceled terminal state promptly instead
// of riding out the call timeout.
func TestClusterCancelForward(t *testing.T) {
	tc := newTestCluster(t, 3, func(i int, cfg *Config) {
		cfg.HedgeAfter = 10 * time.Second // keep the hedge out of this test
	})
	spec := specNotOwnedBy(t, tc, 0)
	owner := ownerIndex(t, tc, spec)
	tc.tr.SetHang(tc.addrs[owner], true)
	// The successor may also be remote; hang it too so nothing answers.
	for i := range tc.addrs {
		if i != 0 {
			tc.tr.SetHang(tc.addrs[i], true)
		}
	}

	out, err := tc.nodes[0].Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := tc.nodes[0].Cancel(out.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	st, err := tc.nodes[0].Wait(ctx, out.ID)
	if err != nil {
		t.Fatalf("Wait after cancel: %v", err)
	}
	if st.State != service.StateCanceled {
		t.Fatalf("canceled forward ended %s (%s), want canceled", st.State, st.Error)
	}
	checkDrainedInvariant(t, tc.nodes[0].Stats())
}

// TestClusterStatsSnapshotUnderConcurrentSubmitClose hammers Submit
// from many goroutines while snapshots are taken and one node closes
// mid-flight: every snapshot must satisfy the disposition invariant
// (the counters move under one mutex), and after Close drains, the
// completion ledger must balance too.
func TestClusterStatsSnapshotUnderConcurrentSubmitClose(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	for _, n := range tc.nodes {
		snapWG.Add(1)
		go func(n *Node) {
			defer snapWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					checkInvariant(t, n.Stats())
				}
			}
		}(n)
	}

	var subWG sync.WaitGroup
	for g := 0; g < 8; g++ {
		subWG.Add(1)
		go func(g int) {
			defer subWG.Done()
			for i := 0; i < 60; i++ {
				n := tc.nodes[(g+i)%len(tc.nodes)]
				out, err := n.Submit(clusterSpec(i % 10))
				if err != nil {
					if errors.Is(err, ErrNodeClosed) || errors.Is(err, service.ErrClosed) || errors.Is(err, service.ErrOverloaded) {
						continue // counted as rejected/shed; the ledger covers it
					}
					t.Errorf("Submit: %v", err)
					return
				}
				if g == 0 && i%7 == 0 {
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					n.Wait(ctx, out.ID)
					cancel()
				}
			}
		}(g)
	}

	// Close one node while submissions are still flowing.
	time.Sleep(5 * time.Millisecond)
	closeCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := tc.nodes[2].Close(closeCtx); err != nil {
		t.Errorf("Close: %v", err)
	}
	checkDrainedInvariant(t, tc.nodes[2].Stats())

	subWG.Wait()
	close(stop)
	snapWG.Wait()

	for _, n := range tc.nodes {
		n.Close(closeCtx)
		checkDrainedInvariant(t, n.Stats())
	}
}

// TestClusterStatsAggregation: the cluster-wide snapshot carries every
// reachable peer's ledger and lists unreachable ones instead of
// failing.
func TestClusterStatsAggregation(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	out, err := tc.nodes[0].Submit(clusterSpec(0))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitResult(t, tc.nodes[0], out.ID)

	snap := tc.nodes[0].ClusterStats(context.Background())
	if snap.Totals.Nodes != 3 || len(snap.Nodes) != 3 {
		t.Fatalf("want 3 reachable nodes, got %+v", snap.Totals)
	}
	if snap.Totals.Submitted == 0 {
		t.Fatalf("aggregate lost the submission: %+v", snap.Totals)
	}

	tc.tr.SetDown(tc.addrs[2], true)
	snap = tc.nodes[0].ClusterStats(context.Background())
	if snap.Totals.Nodes != 2 || len(snap.Unreachable) != 1 || snap.Unreachable[0] != tc.addrs[2] {
		t.Fatalf("down peer not reported unreachable: %+v / %v", snap.Totals, snap.Unreachable)
	}
}

// TestClusterNodeClosedSubmit: submissions after Close fail typed and
// are still accounted.
func TestClusterNodeClosedSubmit(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := tc.nodes[0].Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := tc.nodes[0].Submit(clusterSpec(0)); !errors.Is(err, ErrNodeClosed) {
		t.Fatalf("Submit after Close = %v, want ErrNodeClosed", err)
	}
	st := tc.nodes[0].Stats()
	if st.Rejected != 1 {
		t.Fatalf("closed-node submit not counted rejected: %+v", st)
	}
	checkDrainedInvariant(t, st)
}

// TestClusterInvalidSpecRejected: an unresolvable spec fails at the
// routing boundary, before any peer traffic.
func TestClusterInvalidSpecRejected(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	_, err := tc.nodes[0].Submit(service.JobSpec{Engine: "no-such-engine"})
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
	st := tc.nodes[0].Stats()
	if st.Rejected != 1 || st.Forwards != 0 {
		t.Fatalf("invalid spec should count rejected with no forwards: %+v", st)
	}
}

// TestRawResult covers the remote-payload Result adapter.
func TestRawResult(t *testing.T) {
	r := rawResult(`{"a":1}`)
	if r.SizeBytes() != 7 {
		t.Fatalf("SizeBytes = %d", r.SizeBytes())
	}
	c := r.Clone().(rawResult)
	c[0] = 'X'
	if r[0] == 'X' {
		t.Fatal("Clone shares memory with the original")
	}
	b, err := json.Marshal(r)
	if err != nil || string(b) != `{"a":1}` {
		t.Fatalf("MarshalJSON = %s, %v — must be the verbatim payload", b, err)
	}
	if b, _ := json.Marshal(rawResult(nil)); string(b) != "null" {
		t.Fatalf("empty payload marshals %s, want null", b)
	}
}
