package cluster

import (
	"fmt"
	"time"

	"robusttomo/internal/agent"
	"robusttomo/internal/obs"
	"robusttomo/internal/service"
)

// Defaults applied by Config.withDefaults.
const (
	// DefaultRingReplicas is the virtual-node count per ring member —
	// enough that a 3-node cluster's key ranges are within a few percent
	// of even, cheap enough that ring construction is microseconds.
	DefaultRingReplicas = 64
	// DefaultHedgeAfter is how long a forwarded request waits on the
	// owner before hedging to the successor replica.
	DefaultHedgeAfter = 150 * time.Millisecond
	// DefaultCallTimeout bounds one peer call end to end.
	DefaultCallTimeout = 5 * time.Second
	// DefaultGossipInterval spaces the background health pings per peer.
	DefaultGossipInterval = time.Second
)

// ClusterConfigError reports one rejected Config field. Validation is
// synchronous and typed so `tomo serve -peers` misconfiguration fails
// at flag-parse time with a precise message, never as a runtime routing
// surprise.
type ClusterConfigError struct {
	// Field names the offending Config field ("Peers", "Self", ...).
	Field string
	// Value is the rejected value, as given.
	Value string
	// Reason says what is wrong with it.
	Reason string
}

func (e *ClusterConfigError) Error() string {
	if e.Value == "" {
		return fmt.Sprintf("cluster: invalid %s: %s", e.Field, e.Reason)
	}
	return fmt.Sprintf("cluster: invalid %s %q: %s", e.Field, e.Value, e.Reason)
}

// Config parameterizes a Node.
type Config struct {
	// Self is this node's own ring address. It must not appear in Peers.
	Self string
	// Peers lists the other ring members' addresses: non-empty,
	// duplicate-free, not containing Self. Ring membership is static;
	// liveness within it is dynamic (per-peer breakers + gossip).
	Peers []string
	// RingReplicas is the virtual-node count per member. Zero means
	// DefaultRingReplicas; negative is rejected.
	RingReplicas int
	// HedgeAfter is how long a forward waits on the owner before firing
	// the hedge leg to the successor. Zero means DefaultHedgeAfter;
	// negative hedges immediately.
	HedgeAfter time.Duration
	// CallTimeout bounds one peer call. Zero means DefaultCallTimeout.
	CallTimeout time.Duration
	// GossipInterval spaces background health pings. Zero means
	// DefaultGossipInterval; negative disables the gossip loop (tests
	// drive GossipOnce deterministically instead).
	GossipInterval time.Duration
	// Breaker is the per-peer circuit-breaker policy (zero fields take
	// the agent.BreakerPolicy defaults).
	Breaker agent.BreakerPolicy
	// Service is the local job service the node fronts. Required.
	Service *service.Service
	// Transport carries peer calls. Required.
	Transport Transport
	// Observer, when non-nil, receives the tomo_cluster_* metric
	// families.
	Observer *obs.Registry
}

func (cfg Config) withDefaults() Config {
	if cfg.RingReplicas == 0 {
		cfg.RingReplicas = DefaultRingReplicas
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = DefaultHedgeAfter
	}
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = DefaultCallTimeout
	}
	if cfg.GossipInterval == 0 {
		cfg.GossipInterval = DefaultGossipInterval
	}
	return cfg
}

// Validate rejects a misconfigured Config with a *ClusterConfigError
// describing the first offending field. ValidatePeers covers the peer
// list alone for callers that validate flags before building anything.
func (cfg Config) Validate() error {
	if cfg.Self == "" {
		return &ClusterConfigError{Field: "Self", Reason: "node address must be non-empty"}
	}
	if err := ValidatePeers(cfg.Self, cfg.Peers); err != nil {
		return err
	}
	if cfg.RingReplicas < 0 {
		return &ClusterConfigError{Field: "RingReplicas", Value: fmt.Sprint(cfg.RingReplicas),
			Reason: "virtual-node count cannot be negative"}
	}
	if cfg.Service == nil {
		return &ClusterConfigError{Field: "Service", Reason: "local job service is required"}
	}
	if cfg.Transport == nil {
		return &ClusterConfigError{Field: "Transport", Reason: "peer transport is required"}
	}
	return nil
}

// ValidatePeers checks a `-peers` list against self: every address must
// be non-empty, not self, and unique. The error is a
// *ClusterConfigError naming the offending entry.
func ValidatePeers(self string, peers []string) error {
	if len(peers) == 0 {
		return &ClusterConfigError{Field: "Peers", Reason: "at least one peer is required (omit -peers for single-node mode)"}
	}
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p == "" {
			return &ClusterConfigError{Field: "Peers", Reason: "peer address must be non-empty"}
		}
		if p == self {
			return &ClusterConfigError{Field: "Peers", Value: p, Reason: "peer list must not contain this node's own address"}
		}
		if seen[p] {
			return &ClusterConfigError{Field: "Peers", Value: p, Reason: "duplicate peer address"}
		}
		seen[p] = true
	}
	return nil
}
