package cluster

import (
	"errors"
	"strings"
	"testing"

	"robusttomo/internal/service"
)

// TestValidatePeersMatrix is the `-peers` validation matrix: every
// misconfiguration is rejected synchronously with a typed
// *ClusterConfigError naming the offending entry.
func TestValidatePeersMatrix(t *testing.T) {
	cases := []struct {
		name       string
		self       string
		peers      []string
		wantField  string
		wantValue  string
		wantReason string // substring
	}{
		{name: "valid pair", self: "a:1", peers: []string{"b:1", "c:1"}},
		{name: "empty list", self: "a:1", peers: nil,
			wantField: "Peers", wantReason: "at least one peer"},
		{name: "empty entry", self: "a:1", peers: []string{"b:1", ""},
			wantField: "Peers", wantReason: "non-empty"},
		{name: "self-addressed", self: "a:1", peers: []string{"b:1", "a:1"},
			wantField: "Peers", wantValue: "a:1", wantReason: "own address"},
		{name: "duplicate", self: "a:1", peers: []string{"b:1", "c:1", "b:1"},
			wantField: "Peers", wantValue: "b:1", wantReason: "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidatePeers(tc.self, tc.peers)
			if tc.wantField == "" {
				if err != nil {
					t.Fatalf("ValidatePeers(%q, %v) = %v, want nil", tc.self, tc.peers, err)
				}
				return
			}
			var cerr *ClusterConfigError
			if !errors.As(err, &cerr) {
				t.Fatalf("ValidatePeers(%q, %v) = %v (%T), want *ClusterConfigError", tc.self, tc.peers, err, err)
			}
			if cerr.Field != tc.wantField {
				t.Fatalf("Field = %q, want %q", cerr.Field, tc.wantField)
			}
			if cerr.Value != tc.wantValue {
				t.Fatalf("Value = %q, want %q", cerr.Value, tc.wantValue)
			}
			if !strings.Contains(cerr.Reason, tc.wantReason) {
				t.Fatalf("Reason = %q, want substring %q", cerr.Reason, tc.wantReason)
			}
			if !strings.Contains(cerr.Error(), "cluster: invalid Peers") {
				t.Fatalf("Error() = %q, want the field named", cerr.Error())
			}
		})
	}
}

func TestConfigValidate(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer closeService(t, svc)
	tr := NewLoopbackTransport()
	base := func() Config {
		return Config{Self: "a:1", Peers: []string{"b:1"}, Service: svc, Transport: tr}
	}

	if err := base().withDefaults().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	cases := []struct {
		name      string
		mutate    func(*Config)
		wantField string
	}{
		{"empty self", func(c *Config) { c.Self = "" }, "Self"},
		{"negative replicas", func(c *Config) { c.RingReplicas = -1 }, "RingReplicas"},
		{"nil service", func(c *Config) { c.Service = nil }, "Service"},
		{"nil transport", func(c *Config) { c.Transport = nil }, "Transport"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			err := cfg.Validate()
			var cerr *ClusterConfigError
			if !errors.As(err, &cerr) {
				t.Fatalf("Validate() = %v (%T), want *ClusterConfigError", err, err)
			}
			if cerr.Field != tc.wantField {
				t.Fatalf("Field = %q, want %q", cerr.Field, tc.wantField)
			}
		})
	}

	// New surfaces the same typed error.
	cfg := base()
	cfg.Peers = []string{"a:1"}
	var cerr *ClusterConfigError
	if _, err := New(cfg); !errors.As(err, &cerr) {
		t.Fatalf("New with self-addressed peer = %v, want *ClusterConfigError", err)
	}
}
