package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Peer protocol wire format, following the internal/agent wire-codec
// discipline: length-prefixed binary frames with fixed-width big-endian
// fields, every claimed length validated against the bytes actually
// present before any allocation.
//
//	offset 0      magic byte 0xC9
//	offset 1      frame type (0x01 request, 0x02 response)
//	offset 2..5   payload length, uint32 big-endian, ≤ maxPeerFrame
//	offset 6..    payload
//
// Request payload:
//
//	op        byte   (exec / cache probe / stats / ping)
//	flags     byte   (bit 0: forwarded — receiver must run locally,
//	                  never re-forward; undefined bits are rejected)
//	keyLen    uint16, key bytes      (canonical job key)
//	originLen uint16, origin bytes   (submitting node, diagnostics)
//	specLen   uint32, spec bytes     (JSON service.JobSpec, exec only)
//
// Response payload:
//
//	status     byte   (ok / miss / failed / overloaded)
//	errLen     uint16, error bytes
//	payloadLen uint32, payload bytes (result or stats JSON)

// Binary peer-frame constants.
const (
	peerMagic  = 0xC9
	peerHeader = 6 // magic + type + uint32 length

	peerFrameRequest  = 0x01
	peerFrameResponse = 0x02

	// maxPeerFrame bounds one frame payload: far above any real job spec
	// or result, far below an allocation attack.
	maxPeerFrame = 1 << 24

	maxPeerString = 1<<16 - 1 // key / origin / error are uint16-prefixed

	// peerFlagForwarded marks a request already routed by the ring: the
	// receiver executes locally and never forwards again, which makes
	// forwarding loops impossible by construction.
	peerFlagForwarded = 0x01
	peerFlagsKnown    = peerFlagForwarded
)

// PeerOp selects what a peer request asks for.
type PeerOp byte

// Peer request operations.
const (
	// OpExec asks the receiver to run the job (answering from its cache
	// counts) and return the result payload.
	OpExec PeerOp = 0x01
	// OpCacheProbe asks only the receiver's cache: StatusMiss means the
	// caller should compute (or forward) instead.
	OpCacheProbe PeerOp = 0x02
	// OpStats asks for the receiver's NodeStats JSON.
	OpStats PeerOp = 0x03
	// OpPing is the health-gossip heartbeat.
	OpPing PeerOp = 0x04
)

// String implements fmt.Stringer.
func (op PeerOp) String() string {
	switch op {
	case OpExec:
		return "exec"
	case OpCacheProbe:
		return "cache-probe"
	case OpStats:
		return "stats"
	case OpPing:
		return "ping"
	default:
		return fmt.Sprintf("op(0x%02x)", byte(op))
	}
}

// PeerStatus is a peer response's outcome code.
type PeerStatus byte

// Peer response statuses.
const (
	// StatusOK carries the requested payload.
	StatusOK PeerStatus = 0x00
	// StatusMiss answers a cache probe whose key was cold.
	StatusMiss PeerStatus = 0x01
	// StatusFailed reports an execution or decode failure (Err explains).
	StatusFailed PeerStatus = 0x02
	// StatusOverloaded reports the receiver shed the job (its queue was
	// full); the caller should hedge, fall back, or retry later.
	StatusOverloaded PeerStatus = 0x03
)

// String implements fmt.Stringer.
func (s PeerStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusMiss:
		return "miss"
	case StatusFailed:
		return "failed"
	case StatusOverloaded:
		return "overloaded"
	default:
		return fmt.Sprintf("status(0x%02x)", byte(s))
	}
}

// PeerRequest is one decoded peer-protocol request.
type PeerRequest struct {
	Op PeerOp
	// Forwarded marks a request already routed by the consistent-hash
	// ring; the receiver must execute locally and never re-forward.
	Forwarded bool
	// Key is the canonical job key (exec and cache-probe requests).
	Key string
	// Origin names the submitting node, for diagnostics and stats.
	Origin string
	// Spec is the JSON-encoded service.JobSpec of an exec request.
	Spec []byte
}

// PeerResponse is one decoded peer-protocol response.
type PeerResponse struct {
	Status PeerStatus
	// Payload carries the result bytes (exec, cache hit) or stats JSON.
	Payload []byte
	// Err explains failed and overloaded statuses.
	Err string
}

// Frame-shape errors.
var (
	errPeerFrameTooLarge = errors.New("cluster: peer frame exceeds size bound")
	errPeerTruncated     = errors.New("cluster: truncated peer frame")
)

// EncodePeerRequest appends req's wire form to dst and returns the
// extended slice; dst is returned unchanged on error.
func EncodePeerRequest(dst []byte, req *PeerRequest) ([]byte, error) {
	switch req.Op {
	case OpExec, OpCacheProbe, OpStats, OpPing:
	default:
		return dst, fmt.Errorf("cluster: cannot encode unknown peer op 0x%02x", byte(req.Op))
	}
	if len(req.Key) > maxPeerString {
		return dst, fmt.Errorf("cluster: key %d bytes (max %d)", len(req.Key), maxPeerString)
	}
	if len(req.Origin) > maxPeerString {
		return dst, fmt.Errorf("cluster: origin %d bytes (max %d)", len(req.Origin), maxPeerString)
	}
	start := len(dst)
	dst = append(dst, peerMagic, peerFrameRequest, 0, 0, 0, 0)
	flags := byte(0)
	if req.Forwarded {
		flags |= peerFlagForwarded
	}
	dst = append(dst, byte(req.Op), flags)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(req.Key)))
	dst = append(dst, req.Key...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(req.Origin)))
	dst = append(dst, req.Origin...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(req.Spec)))
	dst = append(dst, req.Spec...)
	return sealPeerFrame(dst, start)
}

// EncodePeerResponse appends resp's wire form to dst and returns the
// extended slice; dst is returned unchanged on error.
func EncodePeerResponse(dst []byte, resp *PeerResponse) ([]byte, error) {
	switch resp.Status {
	case StatusOK, StatusMiss, StatusFailed, StatusOverloaded:
	default:
		return dst, fmt.Errorf("cluster: cannot encode unknown peer status 0x%02x", byte(resp.Status))
	}
	if len(resp.Err) > maxPeerString {
		return dst, fmt.Errorf("cluster: error string %d bytes (max %d)", len(resp.Err), maxPeerString)
	}
	start := len(dst)
	dst = append(dst, peerMagic, peerFrameResponse, 0, 0, 0, 0)
	dst = append(dst, byte(resp.Status))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(resp.Err)))
	dst = append(dst, resp.Err...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(resp.Payload)))
	dst = append(dst, resp.Payload...)
	return sealPeerFrame(dst, start)
}

// sealPeerFrame back-patches the payload length of the frame that
// started at start, rejecting payloads beyond maxPeerFrame.
func sealPeerFrame(dst []byte, start int) ([]byte, error) {
	payload := len(dst) - start - peerHeader
	if payload > maxPeerFrame {
		return dst[:start], fmt.Errorf("%w: %d-byte payload", errPeerFrameTooLarge, payload)
	}
	binary.BigEndian.PutUint32(dst[start+2:start+6], uint32(payload))
	return dst, nil
}

// peerDecoder walks a frame payload with bounds checking.
type peerDecoder struct {
	buf []byte
	off int
}

func (d *peerDecoder) remaining() int { return len(d.buf) - d.off }

func (d *peerDecoder) byte() (byte, error) {
	if d.remaining() < 1 {
		return 0, errPeerTruncated
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *peerDecoder) uint16() (uint16, error) {
	if d.remaining() < 2 {
		return 0, errPeerTruncated
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v, nil
}

func (d *peerDecoder) uint32() (uint32, error) {
	if d.remaining() < 4 {
		return 0, errPeerTruncated
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *peerDecoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.remaining() < n {
		return nil, errPeerTruncated
	}
	v := d.buf[d.off : d.off+n]
	d.off += n
	return v, nil
}

// string16 reads a uint16-prefixed string.
func (d *peerDecoder) string16() (string, error) {
	n, err := d.uint16()
	if err != nil {
		return "", err
	}
	b, err := d.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// bytes32 reads a uint32-prefixed byte blob, validated against the
// bytes actually present before allocating the copy.
func (d *peerDecoder) bytes32() ([]byte, error) {
	n, err := d.uint32()
	if err != nil {
		return nil, err
	}
	if int64(n) > int64(d.remaining()) {
		return nil, fmt.Errorf("cluster: blob claims %d bytes in %d", n, d.remaining())
	}
	b, err := d.bytes(int(n))
	if err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return nil, nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// decodePeerRequest decodes a request frame payload.
func decodePeerRequest(payload []byte) (*PeerRequest, error) {
	d := peerDecoder{buf: payload}
	op, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch PeerOp(op) {
	case OpExec, OpCacheProbe, OpStats, OpPing:
	default:
		return nil, fmt.Errorf("cluster: unknown peer op 0x%02x", op)
	}
	flags, err := d.byte()
	if err != nil {
		return nil, err
	}
	if flags&^byte(peerFlagsKnown) != 0 {
		return nil, fmt.Errorf("cluster: unknown request flags 0x%02x", flags)
	}
	req := &PeerRequest{Op: PeerOp(op), Forwarded: flags&peerFlagForwarded != 0}
	if req.Key, err = d.string16(); err != nil {
		return nil, err
	}
	if req.Origin, err = d.string16(); err != nil {
		return nil, err
	}
	if req.Spec, err = d.bytes32(); err != nil {
		return nil, err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("cluster: %d trailing bytes after peer request", d.remaining())
	}
	return req, nil
}

// decodePeerResponse decodes a response frame payload.
func decodePeerResponse(payload []byte) (*PeerResponse, error) {
	d := peerDecoder{buf: payload}
	status, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch PeerStatus(status) {
	case StatusOK, StatusMiss, StatusFailed, StatusOverloaded:
	default:
		return nil, fmt.Errorf("cluster: unknown peer status 0x%02x", status)
	}
	resp := &PeerResponse{Status: PeerStatus(status)}
	if resp.Err, err = d.string16(); err != nil {
		return nil, err
	}
	if resp.Payload, err = d.bytes32(); err != nil {
		return nil, err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("cluster: %d trailing bytes after peer response", d.remaining())
	}
	return resp, nil
}

// ReadPeerFrame reads one length-prefixed peer frame from r and returns
// the decoded *PeerRequest or *PeerResponse. The claimed payload length
// is checked against maxPeerFrame before any allocation, so a hostile
// 4 GiB length prefix costs nothing.
func ReadPeerFrame(r *bufio.Reader) (any, error) {
	var hdr [peerHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != peerMagic {
		return nil, fmt.Errorf("cluster: bad peer frame magic 0x%02x", hdr[0])
	}
	size := binary.BigEndian.Uint32(hdr[2:6])
	if size > maxPeerFrame {
		return nil, fmt.Errorf("%w: claimed %d-byte payload", errPeerFrameTooLarge, size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("cluster: short peer frame payload: %w", err)
	}
	switch hdr[1] {
	case peerFrameRequest:
		return decodePeerRequest(payload)
	case peerFrameResponse:
		return decodePeerResponse(payload)
	default:
		return nil, fmt.Errorf("cluster: unknown peer frame type 0x%02x", hdr[1])
	}
}
