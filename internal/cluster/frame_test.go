package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func decodeOne(t *testing.T, frame []byte) any {
	t.Helper()
	msg, err := ReadPeerFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatalf("ReadPeerFrame: %v", err)
	}
	return msg
}

func TestPeerRequestRoundTrip(t *testing.T) {
	cases := []PeerRequest{
		{Op: OpPing},
		{Op: OpStats, Origin: "node-a"},
		{Op: OpCacheProbe, Key: strings.Repeat("k", 64), Origin: "node-b"},
		{Op: OpExec, Forwarded: true, Key: "abc123", Origin: "node-c", Spec: []byte(`{"links":3}`)},
		{Op: OpExec, Key: "", Origin: "", Spec: nil},
	}
	for _, want := range cases {
		frame, err := EncodePeerRequest(nil, &want)
		if err != nil {
			t.Fatalf("encode %v: %v", want.Op, err)
		}
		got, ok := decodeOne(t, frame).(*PeerRequest)
		if !ok {
			t.Fatalf("decoded wrong type for %v", want.Op)
		}
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("round trip: got %+v want %+v", *got, want)
		}
	}
}

func TestPeerResponseRoundTrip(t *testing.T) {
	cases := []PeerResponse{
		{Status: StatusOK, Payload: []byte(`{"paths":[0,1]}`)},
		{Status: StatusMiss},
		{Status: StatusFailed, Err: "engine exploded"},
		{Status: StatusOverloaded, Err: "queue full, retry after 1s"},
	}
	for _, want := range cases {
		frame, err := EncodePeerResponse(nil, &want)
		if err != nil {
			t.Fatalf("encode %v: %v", want.Status, err)
		}
		got, ok := decodeOne(t, frame).(*PeerResponse)
		if !ok {
			t.Fatalf("decoded wrong type for %v", want.Status)
		}
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("round trip: got %+v want %+v", *got, want)
		}
	}
}

func TestPeerFrameStreaming(t *testing.T) {
	// Multiple frames on one reader decode in order — the connection
	// reuse path.
	var buf []byte
	var err error
	buf, err = EncodePeerRequest(buf, &PeerRequest{Op: OpPing, Origin: "a"})
	if err != nil {
		t.Fatal(err)
	}
	buf, err = EncodePeerResponse(buf, &PeerResponse{Status: StatusOK})
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(bytes.NewReader(buf))
	if _, ok := mustRead(t, br).(*PeerRequest); !ok {
		t.Fatal("first frame should be a request")
	}
	if _, ok := mustRead(t, br).(*PeerResponse); !ok {
		t.Fatal("second frame should be a response")
	}
}

func mustRead(t *testing.T, br *bufio.Reader) any {
	t.Helper()
	msg, err := ReadPeerFrame(br)
	if err != nil {
		t.Fatalf("ReadPeerFrame: %v", err)
	}
	return msg
}

func TestPeerFrameRejections(t *testing.T) {
	valid, err := EncodePeerRequest(nil, &PeerRequest{Op: OpExec, Key: "k", Origin: "o", Spec: []byte("{}")})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[0] = 0xB5 // the agent plane's magic is not ours
		if _, err := ReadPeerFrame(bufio.NewReader(bytes.NewReader(bad))); err == nil {
			t.Fatal("accepted foreign magic")
		}
	})
	t.Run("bad type", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[1] = 0x7F
		if _, err := ReadPeerFrame(bufio.NewReader(bytes.NewReader(bad))); err == nil {
			t.Fatal("accepted unknown frame type")
		}
	})
	t.Run("oversized claim", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		binary.BigEndian.PutUint32(bad[2:6], maxPeerFrame+1)
		_, err := ReadPeerFrame(bufio.NewReader(bytes.NewReader(bad)))
		if !errors.Is(err, errPeerFrameTooLarge) {
			t.Fatalf("oversized claim: %v, want errPeerFrameTooLarge", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		if _, err := ReadPeerFrame(bufio.NewReader(bytes.NewReader(valid[:len(valid)-1]))); err == nil {
			t.Fatal("accepted truncated payload")
		}
	})
	t.Run("unknown op", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[peerHeader] = 0x7F
		if _, err := ReadPeerFrame(bufio.NewReader(bytes.NewReader(bad))); err == nil {
			t.Fatal("accepted unknown op")
		}
	})
	t.Run("unknown flags", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[peerHeader+1] = 0x80
		if _, err := ReadPeerFrame(bufio.NewReader(bytes.NewReader(bad))); err == nil {
			t.Fatal("accepted undefined flag bits")
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad = append(bad, 0xFF)
		binary.BigEndian.PutUint32(bad[2:6], uint32(len(bad)-peerHeader))
		if _, err := ReadPeerFrame(bufio.NewReader(bytes.NewReader(bad))); err == nil {
			t.Fatal("accepted trailing bytes inside the payload")
		}
	})
	t.Run("lying inner length", func(t *testing.T) {
		// The spec blob claims more bytes than the payload holds.
		req := &PeerRequest{Op: OpExec, Key: "k", Origin: "o", Spec: []byte("abcd")}
		frame, err := EncodePeerRequest(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		// spec length field sits 4 bytes before the last 4 payload bytes
		binary.BigEndian.PutUint32(frame[len(frame)-8:len(frame)-4], 1<<30)
		if _, err := ReadPeerFrame(bufio.NewReader(bytes.NewReader(frame))); err == nil {
			t.Fatal("accepted blob length beyond the frame")
		}
	})
	t.Run("encode rejects oversized strings", func(t *testing.T) {
		if _, err := EncodePeerRequest(nil, &PeerRequest{Op: OpPing, Key: strings.Repeat("x", maxPeerString+1)}); err == nil {
			t.Fatal("encoded over-long key")
		}
		if _, err := EncodePeerResponse(nil, &PeerResponse{Status: StatusFailed, Err: strings.Repeat("x", maxPeerString+1)}); err == nil {
			t.Fatal("encoded over-long error")
		}
	})
	t.Run("encode rejects unknown op and status", func(t *testing.T) {
		if _, err := EncodePeerRequest(nil, &PeerRequest{Op: 0x7F}); err == nil {
			t.Fatal("encoded unknown op")
		}
		if _, err := EncodePeerResponse(nil, &PeerResponse{Status: 0x7F}); err == nil {
			t.Fatal("encoded unknown status")
		}
	})
}
