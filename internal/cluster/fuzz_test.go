package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
)

// FuzzPeerFrame throws arbitrary bytes at the peer-frame reader: it
// must never panic, never accept a payload past maxPeerFrame, and any
// frame it does accept must re-encode to the identical bytes (the codec
// has one canonical form). This is the surface a hostile or corrupted
// peer reaches first.
func FuzzPeerFrame(f *testing.F) {
	seed := func(msg any) []byte {
		switch m := msg.(type) {
		case *PeerRequest:
			b, _ := EncodePeerRequest(nil, m)
			return b
		case *PeerResponse:
			b, _ := EncodePeerResponse(nil, m)
			return b
		}
		return nil
	}
	f.Add(seed(&PeerRequest{Op: OpPing}))
	f.Add(seed(&PeerRequest{Op: OpExec, Forwarded: true, Key: "deadbeef", Origin: "node-a", Spec: []byte(`{"links":3,"budget":4}`)}))
	f.Add(seed(&PeerRequest{Op: OpCacheProbe, Key: strings.Repeat("f", 64)}))
	f.Add(seed(&PeerResponse{Status: StatusOK, Payload: []byte(`{"paths":[1,2,3]}`)}))
	f.Add(seed(&PeerResponse{Status: StatusFailed, Err: "no such engine"}))
	f.Add([]byte{peerMagic, peerFrameRequest, 0, 0, 0, 0})             // empty payload
	f.Add([]byte{peerMagic, peerFrameRequest, 0xFF, 0xFF, 0xFF})       // truncated header
	f.Add([]byte{peerMagic, 0x7F, 0, 0, 0, 1, 0x00})                   // unknown frame type
	f.Add([]byte{0xB5, peerFrameRequest, 0, 0, 0, 0})                  // agent-plane magic
	f.Add([]byte{peerMagic, peerFrameRequest, 0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB claim
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadPeerFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return // rejection is fine; the invariant is no panic
		}
		var reenc []byte
		switch m := msg.(type) {
		case *PeerRequest:
			reenc, err = EncodePeerRequest(nil, m)
		case *PeerResponse:
			reenc, err = EncodePeerResponse(nil, m)
		default:
			t.Fatalf("ReadPeerFrame returned %T", msg)
		}
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		size := binary.BigEndian.Uint32(data[2:6])
		whole := data[:peerHeader+int(size)]
		if !bytes.Equal(reenc, whole) {
			t.Fatalf("accepted frame is not canonical:\n in  %x\n out %x", whole, reenc)
		}
	})
}

// FuzzPeerRoundTrip drives the codec with structured inputs: any
// request a node can express must survive encode → decode with every
// field intact, because routing correctness (the Forwarded flag, the
// key) depends on it.
func FuzzPeerRoundTrip(f *testing.F) {
	f.Add(byte(OpPing), false, "", "", []byte(nil))
	f.Add(byte(OpExec), true, "0123456789abcdef", "node-1", []byte(`{"links":6,"budget":4.125}`))
	f.Add(byte(OpCacheProbe), false, strings.Repeat("k", 1000), "a peer with spaces", []byte{})
	f.Add(byte(OpStats), true, "\x00\xff", "名前", []byte{0, 1, 2, 255})
	f.Fuzz(func(t *testing.T, op byte, forwarded bool, key, origin string, spec []byte) {
		req := &PeerRequest{Op: PeerOp(op), Forwarded: forwarded, Key: key, Origin: origin, Spec: spec}
		frame, err := EncodePeerRequest(nil, req)
		if err != nil {
			// Unknown ops and over-long strings must be rejected at
			// encode time, never silently truncated.
			return
		}
		msg, err := ReadPeerFrame(bufio.NewReader(bytes.NewReader(frame)))
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		got, ok := msg.(*PeerRequest)
		if !ok {
			t.Fatalf("request decoded as %T", msg)
		}
		// Encoding normalizes empty spec to nil.
		want := *req
		if len(want.Spec) == 0 {
			want.Spec = nil
		}
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("round trip: got %+v want %+v", *got, want)
		}
	})
}
