package cluster

import "robusttomo/internal/obs"

// clusterMetrics holds the node's pre-interned instrument handles,
// following the repo-wide nil discipline: with no observer registry
// every handle is nil and each update costs one nil check.
type clusterMetrics struct {
	submitted     *obs.Counter
	owned         *obs.Counter
	cacheHits     *obs.Counter
	forwards      *obs.Counter
	forwardDedup  *obs.Counter
	forwardWins   *obs.Counter
	forwardErrors *obs.Counter
	remoteFills   *obs.Counter
	hedges        *obs.Counter
	hedgeWins     *obs.Counter
	fallbacks     *obs.Counter
	peerServed    *obs.CounterVec
	peerState     *obs.GaugeVec
	forwardSec    *obs.Histogram
}

var noClusterMetrics = &clusterMetrics{}

// forwardBuckets span sub-millisecond loopback forwards to calls that
// rode out a hedge delay plus a slow peer.
var forwardBuckets = obs.ExponentialBuckets(1e-4, 4, 10)

func newClusterMetrics(reg *obs.Registry) *clusterMetrics {
	if reg == nil {
		return noClusterMetrics
	}
	return &clusterMetrics{
		submitted: reg.Counter("tomo_cluster_submitted_total",
			"Jobs submitted through this node's cluster surface."),
		owned: reg.Counter("tomo_cluster_owned_total",
			"Submissions this node owned on the ring and ran locally."),
		cacheHits: reg.Counter("tomo_cluster_cache_hits_total",
			"Non-owned submissions answered from the local cache without forwarding."),
		forwards: reg.Counter("tomo_cluster_forwards_total",
			"Submissions forwarded toward their owning shard."),
		forwardDedup: reg.Counter("tomo_cluster_forward_dedup_total",
			"Submissions attached to an identical in-flight forward."),
		forwardWins: reg.Counter("tomo_cluster_forward_wins_total",
			"Forwards answered by the primary (owner) leg."),
		forwardErrors: reg.Counter("tomo_cluster_forward_errors_total",
			"Forwards that failed on every leg including local fallback."),
		remoteFills: reg.Counter("tomo_cluster_remote_fills_total",
			"Remote results installed into the local cache (cache-fill)."),
		hedges: reg.Counter("tomo_cluster_hedges_total",
			"Hedge legs fired because the owner was slow or its breaker open."),
		hedgeWins: reg.Counter("tomo_cluster_hedge_wins_total",
			"Forwards answered by the hedge leg before the primary."),
		fallbacks: reg.Counter("tomo_cluster_fallbacks_total",
			"Forwards completed by local execution after every remote leg failed."),
		peerServed: reg.CounterVec("tomo_cluster_peer_served_total",
			"Peer-protocol requests served, by operation.", "op"),
		peerState: reg.GaugeVec("tomo_cluster_peer_state",
			"Peer breaker state (0 closed, 1 open, 2 half-open), by peer.", "peer"),
		forwardSec: reg.Histogram("tomo_cluster_forward_seconds",
			"Duration of one forwarded submission, submit to terminal state.", forwardBuckets),
	}
}
