package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"robusttomo/internal/agent"
	"robusttomo/internal/engine"
	"robusttomo/internal/service"
)

// ErrNodeClosed marks submissions after Node.Close.
var ErrNodeClosed = errors.New("cluster: node closed")

// rawResult is a remote peer's result payload adapted to the
// engine.Result interface so it can live in the local result cache and
// behind the normal service surface. It is the already-marshaled JSON
// bytes, and MarshalJSON returns them verbatim — a forwarded job's HTTP
// response is bit-identical to the owner's (and to a single-node run,
// since engines are deterministic in their canonical inputs).
type rawResult []byte

// SizeBytes implements engine.Result.
func (r rawResult) SizeBytes() int64 { return int64(len(r)) }

// Clone implements engine.Result.
func (r rawResult) Clone() engine.Result {
	out := make(rawResult, len(r))
	copy(out, r)
	return out
}

// MarshalJSON returns the remote payload verbatim.
func (r rawResult) MarshalJSON() ([]byte, error) {
	if len(r) == 0 {
		return []byte("null"), nil
	}
	return []byte(r), nil
}

// remoteJob tracks one forwarded submission from launch to terminal
// state. Mutable fields are guarded by the owning Node's mutex.
type remoteJob struct {
	key    string
	spec   service.JobSpec
	owner  string             // ring owner at submit time
	cancel context.CancelFunc // cancels the forward's legs
	done   chan struct{}      // closed on terminal state

	state   service.JobState
	res     engine.Result
	err     error
	deduped int
}

// retainRemote bounds how many terminal (failed/canceled) forward
// records stay addressable by ID; successes hand off to the service
// cache and are not retained here.
const retainRemote = 256

// Node is one cluster member: the consistent-hash routing layer in
// front of a local service.Service. Construct with New; all methods are
// safe for concurrent use.
type Node struct {
	cfg  Config
	ring *Ring
	svc  *service.Service
	m    *clusterMetrics

	breakers map[string]*agent.Breaker // per peer

	ctx    context.Context // parent of every forward
	cancel context.CancelFunc

	gossipStop chan struct{}
	wg         sync.WaitGroup

	mu         sync.Mutex
	closed     bool
	remote     map[string]*remoteJob
	remoteDone []string // terminal retained keys, oldest first

	// Disposition counters. Invariant (held at every instant):
	//   submitted == cacheHits + owned + forwards + forwardDedup + shed + rejected
	// and, once forwards drain:
	//   forwards == forwardWins + hedgeWins + fallbacks + forwardErrors
	submitted     uint64
	owned         uint64
	cacheHits     uint64
	forwards      uint64
	forwardDedup  uint64
	shed          uint64
	rejected      uint64
	forwardWins   uint64
	hedgeWins     uint64
	hedges        uint64
	fallbacks     uint64
	forwardErrors uint64
	remoteFills   uint64
	peerServed    map[string]uint64 // by op name
}

// New validates cfg and returns a running Node (its gossip loop starts
// unless GossipInterval is negative). The caller owns the Service's
// lifecycle; Close tears down forwards, gossip and the transport.
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	members := append([]string{cfg.Self}, cfg.Peers...)
	n := &Node{
		cfg:        cfg,
		ring:       NewRing(members, cfg.RingReplicas),
		svc:        cfg.Service,
		m:          newClusterMetrics(cfg.Observer),
		breakers:   make(map[string]*agent.Breaker, len(cfg.Peers)),
		gossipStop: make(chan struct{}),
		remote:     make(map[string]*remoteJob),
		peerServed: make(map[string]uint64),
	}
	for _, p := range cfg.Peers {
		n.breakers[p] = agent.NewBreaker(cfg.Breaker)
	}
	n.ctx, n.cancel = context.WithCancel(context.Background())
	if cfg.GossipInterval > 0 {
		n.wg.Add(1)
		go n.gossipLoop()
	}
	return n, nil
}

// Self returns this node's ring address.
func (n *Node) Self() string { return n.cfg.Self }

// Ring returns the node's (immutable) placement ring.
func (n *Node) Ring() *Ring { return n.ring }

// alive is the ring liveness predicate: self is always alive, a peer is
// alive while its breaker is not open. (Half-open counts as alive — the
// ring keeps routing to it so the admitted probe can close it.)
func (n *Node) alive(member string) bool {
	if member == n.cfg.Self {
		return true
	}
	br, ok := n.breakers[member]
	if !ok {
		return false
	}
	return br.State() != agent.BreakerOpen
}

func (n *Node) setPeerGauge(peer string) {
	if br, ok := n.breakers[peer]; ok {
		n.m.peerState.With(peer).Set(float64(br.State()))
	}
}

// Submit routes spec: owned keys run on the local service, non-owned
// keys are answered from the local cache when possible and otherwise
// forwarded to the owning shard (with hedging; see runForward). The
// returned outcome's ID is pollable through Status/Result/Wait exactly
// as on a single node.
func (n *Node) Submit(spec service.JobSpec) (service.SubmitOutcome, error) {
	key, err := spec.CanonicalKey()
	if err != nil {
		n.mu.Lock()
		n.submitted++
		n.rejected++
		n.mu.Unlock()
		n.m.submitted.Inc()
		return service.SubmitOutcome{}, err
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	n.submitted++
	n.m.submitted.Inc()
	if n.closed {
		n.rejected++
		return service.SubmitOutcome{}, ErrNodeClosed
	}

	owner, ok := n.ring.Owner(key, n.alive)
	if !ok || owner == n.cfg.Self {
		// Owned (or sole survivor): the local service runs it, and its
		// singleflight absorbs concurrent arrivals of the same key.
		out, err := n.svc.Submit(spec)
		switch {
		case err == nil && out.Cached:
			n.cacheHits++
			n.m.cacheHits.Inc()
		case err == nil:
			n.owned++
			n.m.owned.Inc()
		case errors.Is(err, service.ErrOverloaded):
			n.shed++
		default:
			n.rejected++
		}
		return out, err
	}

	// Non-owned: answer locally if the cache already can (dedup onto
	// in-flight local jobs included), never enqueue locally.
	out, answered, err := n.svc.SubmitCached(spec)
	if err != nil {
		n.rejected++
		return out, err
	}
	if answered {
		n.cacheHits++
		n.m.cacheHits.Inc()
		return out, nil
	}

	// Forward. Identical in-flight forwards dedup onto one peer call —
	// with the owner's own singleflight that makes a cluster-wide
	// execute-at-most-once while membership is stable.
	if rj, ok := n.remote[key]; ok && !rj.state.Terminal() {
		rj.deduped++
		n.forwardDedup++
		n.m.forwardDedup.Inc()
		return service.SubmitOutcome{ID: key, State: rj.state, Deduped: true}, nil
	}
	fctx, cancel := context.WithCancel(n.ctx)
	rj := &remoteJob{key: key, spec: spec, owner: owner, cancel: cancel,
		done: make(chan struct{}), state: service.StateQueued}
	n.remote[key] = rj
	n.forwards++
	n.m.forwards.Inc()
	// Owner first, then the replica a hedge escalates to. Two distinct
	// targets always exist: self is a ring member and always alive.
	targets := n.ring.Successors(key, 2, n.alive)
	n.wg.Add(1)
	go n.runForward(fctx, rj, targets)
	return service.SubmitOutcome{ID: key, State: service.StateQueued}, nil
}

// legResult is one forward leg's outcome.
type legResult struct {
	hedge   bool
	local   bool
	payload []byte        // remote leg result bytes
	res     engine.Result // local leg result
	err     error
}

// runForward drives one forwarded submission: a primary OpExec call to
// the ring owner, a hedge leg to the successor after HedgeAfter (or
// immediately when the primary fails fast), first-response-wins with
// loser cancellation, and local execution as the last resort when every
// remote leg fails. The winning payload cache-fills the local service
// so the forwarded ID resolves through the normal service surface.
func (n *Node) runForward(ctx context.Context, rj *remoteJob, targets []string) {
	defer n.wg.Done()
	defer rj.cancel()
	start := time.Now()

	specJSON, err := json.Marshal(rj.spec)
	if err != nil {
		n.finishForward(rj, legResult{err: fmt.Errorf("cluster: encoding spec: %w", err)}, start, false)
		return
	}

	primary := targets[0]
	hedgeTarget := n.cfg.Self
	if len(targets) > 1 {
		hedgeTarget = targets[1]
	}

	resCh := make(chan legResult, 2)
	outstanding := 0
	fire := func(target string, hedge bool) {
		outstanding++
		go n.runLeg(ctx, target, hedge, rj.key, rj.spec, specJSON, resCh)
	}
	fire(primary, false)

	hedged := false
	fireHedge := func() {
		if hedged || hedgeTarget == primary {
			return
		}
		hedged = true
		n.mu.Lock()
		n.hedges++
		n.mu.Unlock()
		n.m.hedges.Inc()
		fire(hedgeTarget, true)
	}

	hedgeAfter := n.cfg.HedgeAfter
	if hedgeAfter < 0 {
		hedgeAfter = 0
	}
	timer := time.NewTimer(hedgeAfter)
	defer timer.Stop()

	var winner legResult
	var lastErr error
	won, localRan := false, false
	for outstanding > 0 && !won {
		select {
		case r := <-resCh:
			outstanding--
			localRan = localRan || r.local
			if r.err == nil {
				winner, won = r, true
			} else {
				lastErr = r.err
				// A failed primary hedges immediately; a failed hedge
				// just leaves the primary running.
				fireHedge()
			}
		case <-timer.C:
			fireHedge()
		}
	}
	rj.cancel() // loser cancellation: the slower leg's wait ends now

	if !won {
		if ctx.Err() != nil {
			// Canceled (by Cancel or node shutdown) — surface that, not
			// the transport noise the cancellation caused.
			n.finishForward(rj, legResult{err: fmt.Errorf("cluster: forward to %s abandoned: %w", primary, ctx.Err())}, start, false)
			return
		}
		if localRan {
			// The job itself failed locally — deterministic, retrying
			// is pointless.
			n.finishForward(rj, legResult{err: lastErr}, start, false)
			return
		}
		// Every remote leg failed; a cluster of one healthy node still
		// answers everything.
		res, err := n.svc.SubmitAndWait(ctx, rj.spec)
		if err != nil {
			err = fmt.Errorf("cluster: local fallback after %v: %w", lastErr, err)
		}
		n.finishForward(rj, legResult{local: true, res: res, err: err}, start, true)
		return
	}
	n.finishForward(rj, winner, start, false)
}

// runLeg executes one forward leg: local submission when target is
// self, an OpExec peer call (feeding the peer's breaker) otherwise.
func (n *Node) runLeg(ctx context.Context, target string, hedge bool, key string, spec service.JobSpec, specJSON []byte, out chan<- legResult) {
	if target == n.cfg.Self {
		res, err := n.svc.SubmitAndWait(ctx, spec)
		out <- legResult{hedge: hedge, local: true, res: res, err: err}
		return
	}
	br := n.breakers[target]
	if br != nil && !br.Allow() {
		out <- legResult{hedge: hedge, err: fmt.Errorf("%w: %s breaker open", ErrPeerUnreachable, target)}
		return
	}
	callCtx, cancel := context.WithTimeout(ctx, n.cfg.CallTimeout)
	defer cancel()
	resp, err := n.cfg.Transport.Call(callCtx, target, &PeerRequest{
		Op: OpExec, Forwarded: true, Key: key, Origin: n.cfg.Self, Spec: specJSON,
	})
	if br != nil {
		// Transport failure marks the peer suspect; any decoded response
		// (including a job failure) proves it alive.
		if err != nil {
			br.Failure()
		} else {
			br.Success()
		}
		n.setPeerGauge(target)
	}
	if err != nil {
		out <- legResult{hedge: hedge, err: err}
		return
	}
	switch resp.Status {
	case StatusOK:
		out <- legResult{hedge: hedge, payload: resp.Payload}
	case StatusOverloaded:
		out <- legResult{hedge: hedge, err: fmt.Errorf("cluster: %s shed the job: %s", target, resp.Err)}
	default:
		out <- legResult{hedge: hedge, err: fmt.Errorf("cluster: %s: %s", target, resp.Err)}
	}
}

// finishForward records a forward's terminal state: counters, metrics,
// cache-fill for remote payloads, and the remote-job record's
// resolution (successes hand off to the service surface and drop out of
// the remote map; failures are retained, bounded by retainRemote).
func (n *Node) finishForward(rj *remoteJob, r legResult, start time.Time, fallback bool) {
	n.m.forwardSec.Observe(time.Since(start).Seconds())
	var res engine.Result
	if r.err == nil {
		if r.local {
			res = r.res
		} else {
			raw := rawResult(r.payload)
			if n.svc.Fill(rj.key, raw) {
				n.mu.Lock()
				n.remoteFills++
				n.mu.Unlock()
				n.m.remoteFills.Inc()
			}
			res = raw
		}
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if r.err == nil {
		switch {
		case fallback:
			n.fallbacks++
			n.m.fallbacks.Inc()
		case r.hedge:
			n.hedgeWins++
			n.m.hedgeWins.Inc()
		default:
			n.forwardWins++
			n.m.forwardWins.Inc()
		}
		rj.state = service.StateDone
		rj.res = res
		close(rj.done)
		// The service cache is now authoritative for this key; later
		// submissions are local cache hits.
		if n.remote[rj.key] == rj {
			delete(n.remote, rj.key)
		}
		return
	}
	n.forwardErrors++
	n.m.forwardErrors.Inc()
	if errors.Is(r.err, context.Canceled) {
		rj.state = service.StateCanceled
	} else {
		rj.state = service.StateFailed
	}
	rj.err = r.err
	close(rj.done)
	n.remoteDone = append(n.remoteDone, rj.key)
	for len(n.remoteDone) > retainRemote {
		old := n.remoteDone[0]
		n.remoteDone = n.remoteDone[1:]
		if j, ok := n.remote[old]; ok && j.state.Terminal() {
			delete(n.remote, old)
		}
	}
}

// HandlePeer implements PeerHandler — the receiving half of the peer
// protocol. Exec requests run on the local service (the request's
// Forwarded flag means they are never forwarded again, so routing loops
// are impossible by construction); cache probes answer only from cache;
// stats and ping serve the gossip and aggregation planes.
func (n *Node) HandlePeer(ctx context.Context, req *PeerRequest) *PeerResponse {
	n.mu.Lock()
	n.peerServed[req.Op.String()]++
	n.mu.Unlock()
	n.m.peerServed.With(req.Op.String()).Inc()

	switch req.Op {
	case OpPing:
		return &PeerResponse{Status: StatusOK}
	case OpStats:
		payload, err := json.Marshal(n.Stats())
		if err != nil {
			return &PeerResponse{Status: StatusFailed, Err: err.Error()}
		}
		return &PeerResponse{Status: StatusOK, Payload: payload}
	case OpCacheProbe:
		res, ok := n.svc.CachedResult(req.Key)
		if !ok {
			return &PeerResponse{Status: StatusMiss}
		}
		payload, err := json.Marshal(res)
		if err != nil {
			return &PeerResponse{Status: StatusFailed, Err: err.Error()}
		}
		return &PeerResponse{Status: StatusOK, Payload: payload}
	case OpExec:
		var spec service.JobSpec
		if err := json.Unmarshal(req.Spec, &spec); err != nil {
			return &PeerResponse{Status: StatusFailed, Err: fmt.Sprintf("decoding spec: %v", err)}
		}
		res, err := n.svc.SubmitAndWait(ctx, spec)
		if err != nil {
			if errors.Is(err, service.ErrOverloaded) {
				return &PeerResponse{Status: StatusOverloaded, Err: err.Error()}
			}
			return &PeerResponse{Status: StatusFailed, Err: err.Error()}
		}
		payload, err := json.Marshal(res)
		if err != nil {
			return &PeerResponse{Status: StatusFailed, Err: err.Error()}
		}
		return &PeerResponse{Status: StatusOK, Payload: payload}
	default:
		return &PeerResponse{Status: StatusFailed, Err: fmt.Sprintf("unhandled op %s", req.Op)}
	}
}

// Status reports a job by ID, resolving in-flight and failed forwards
// from the remote map and everything else through the local service
// (completed forwards live there as cache-fill records).
func (n *Node) Status(id string) (service.JobStatus, error) {
	n.mu.Lock()
	if rj, ok := n.remote[id]; ok {
		st := remoteStatusLocked(rj)
		n.mu.Unlock()
		return st, nil
	}
	n.mu.Unlock()
	return n.svc.Status(id)
}

func remoteStatusLocked(rj *remoteJob) service.JobStatus {
	st := service.JobStatus{
		ID:        rj.key,
		State:     rj.state,
		Engine:    "cluster",
		Algorithm: "forward:" + rj.owner,
		Priority:  rj.spec.Priority,
		Deduped:   rj.deduped,
	}
	if rj.err != nil {
		st.Error = rj.err.Error()
	}
	return st
}

// Result returns a completed job's result by ID (remote results come
// back as the owner's verbatim payload bytes).
func (n *Node) Result(id string) (engine.Result, error) {
	n.mu.Lock()
	if rj, ok := n.remote[id]; ok {
		defer n.mu.Unlock()
		if rj.state == service.StateDone && rj.res != nil {
			return rj.res.Clone(), nil
		}
		return nil, fmt.Errorf("%w: job %s is %s", service.ErrNotDone, shortID(id), rj.state)
	}
	n.mu.Unlock()
	return n.svc.Result(id)
}

// Wait blocks until the job reaches a terminal state (or ctx is done)
// and returns its status, covering local and forwarded jobs alike.
func (n *Node) Wait(ctx context.Context, id string) (service.JobStatus, error) {
	n.mu.Lock()
	rj, ok := n.remote[id]
	n.mu.Unlock()
	if ok {
		select {
		case <-ctx.Done():
			return service.JobStatus{}, ctx.Err()
		case <-rj.done:
		}
		return n.Status(id)
	}
	return n.svc.Wait(ctx, id)
}

// Cancel cancels a job: forwards abandon their legs (the owner may
// still complete the execution for its own cache), local jobs cancel
// through the service.
func (n *Node) Cancel(id string) (service.JobStatus, error) {
	n.mu.Lock()
	rj, ok := n.remote[id]
	n.mu.Unlock()
	if ok {
		rj.cancel()
		return n.Status(id)
	}
	return n.svc.Cancel(id)
}

// GossipOnce health-pings every peer whose breaker admits an attempt,
// feeding outcomes back into the breakers. The background loop calls it
// every GossipInterval; tests call it directly for determinism.
func (n *Node) GossipOnce(ctx context.Context) {
	for _, p := range n.cfg.Peers {
		br := n.breakers[p]
		if !br.Allow() {
			n.setPeerGauge(p)
			continue
		}
		callCtx, cancel := context.WithTimeout(ctx, n.cfg.CallTimeout)
		_, err := n.cfg.Transport.Call(callCtx, p, &PeerRequest{Op: OpPing, Origin: n.cfg.Self})
		cancel()
		if err != nil {
			br.Failure()
		} else {
			br.Success()
		}
		n.setPeerGauge(p)
	}
}

func (n *Node) gossipLoop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.GossipInterval)
	defer tick.Stop()
	for {
		select {
		case <-n.gossipStop:
			return
		case <-tick.C:
			n.GossipOnce(n.ctx)
		}
	}
}

// Close stops the gossip loop, rejects new submissions, and drains
// in-flight forwards — gracefully until ctx expires, then by canceling
// them. The transport is closed last. Close is idempotent; it does not
// close the underlying service (the caller owns that lifecycle).
func (n *Node) Close(ctx context.Context) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	close(n.gossipStop)

	done := make(chan struct{})
	go func() {
		n.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		n.cancel()
		<-done
	}
	n.cancel()
	n.cfg.Transport.Close()
	return err
}

func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
