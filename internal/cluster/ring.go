// Package cluster turns N independent `tomo serve` processes into one
// logical inference service (DESIGN.md §16).
//
// The engine registry's canonical SHA-256 job key (DESIGN.md §15) is a
// content address, so sharding is a routing problem, not a consistency
// problem: a consistent-hash ring with virtual nodes maps every key to
// one owning peer, non-owners forward submissions to the owner over a
// length-prefixed binary peer protocol and install the returned bytes
// in their local cache (remote cache-fill), and a job is executed at
// most once across the fleet while membership is stable — the owner's
// service singleflight absorbs every concurrent arrival of the same
// key.
//
// Failures route around, they do not stall: per-peer circuit breakers
// (the exact state machine the collection plane runs per monitor) mark
// peers dead/alive from call outcomes and background health gossip;
// dead peers are skipped on the ring, so their key range moves to the
// successor; and when the owner is merely slow, a hedged request fires
// to the successor replica after a deterministic delay —
// first-response-wins, the loser's wait is canceled. When every remote
// leg fails the node falls back to computing locally, so a cluster of
// one healthy node still answers everything.
//
// The Transport interface keeps all of that testable: the in-process
// loopback round-trips every call through the real wire codec under
// deterministic fault injection (down, hang, delay) and `-race`, while
// the TCP transport carries identical frames between real daemons.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring with virtual nodes. Placement is a
// pure function of the member list and the replica count — every node
// that shares a configuration computes identical ownership, so routing
// needs no coordination. A Ring is immutable after construction;
// liveness is layered on top through the alive predicate passed to the
// lookup methods (a dead member is skipped, moving exactly its key
// range to the ring successor and nothing else).
type Ring struct {
	replicas int
	points   []ringPoint // sorted by hash
	members  []string    // sorted, deduplicated
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds the ring over members with the given number of virtual
// nodes per member (replicas < 1 takes DefaultRingReplicas). Members
// are deduplicated; order does not matter.
func NewRing(members []string, replicas int) *Ring {
	if replicas < 1 {
		replicas = DefaultRingReplicas
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{replicas: replicas, members: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*replicas)
	for _, m := range uniq {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(m, i), member: m})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Colliding virtual nodes order by member name so placement
		// stays deterministic across processes.
		return r.points[a].member < r.points[b].member
	})
	return r
}

// Members returns the sorted member list (shared; do not mutate).
func (r *Ring) Members() []string { return r.members }

// Replicas returns the virtual-node count per member.
func (r *Ring) Replicas() int { return r.replicas }

// Owner returns the first alive member at or after the key's ring
// point — the shard that owns the job. A nil alive predicate treats
// every member as alive. ok is false only when no member is alive.
func (r *Ring) Owner(key string, alive func(string) bool) (string, bool) {
	succ := r.Successors(key, 1, alive)
	if len(succ) == 0 {
		return "", false
	}
	return succ[0], true
}

// Successors returns up to n distinct alive members in ring order
// starting from the key's point: the owner first, then the replicas a
// hedged or retried request escalates through. A nil alive predicate
// treats every member as alive.
func (r *Ring) Successors(key string, n int, alive func(string) bool) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var out []string
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		if alive == nil || alive(p.member) {
			out = append(out, p.member)
		}
	}
	return out
}

// vnodeHash places one virtual node: the first 8 bytes of
// SHA-256(member "#" index), matching the key hash's domain so
// placement is uniform regardless of member-name structure.
func vnodeHash(member string, i int) uint64 {
	sum := sha256.Sum256([]byte(member + "#" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash maps a canonical job key onto the ring. The key is already a
// SHA-256 hex digest, but hashing it again keeps placement uniform for
// any future key format and costs one compression round.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}
