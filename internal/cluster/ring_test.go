package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingDeterministicPlacement(t *testing.T) {
	members := []string{"c", "a", "b"}
	r1 := NewRing(members, 64)
	r2 := NewRing([]string{"b", "c", "a", "a"}, 64) // order and duplicates must not matter
	if !reflect.DeepEqual(r1.Members(), []string{"a", "b", "c"}) {
		t.Fatalf("Members() = %v, want sorted dedup", r1.Members())
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		o1, ok1 := r1.Owner(key, nil)
		o2, ok2 := r2.Owner(key, nil)
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("key %q: owner %q/%v vs %q/%v — placement must be a pure function of membership", key, o1, ok1, o2, ok2)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, DefaultRingReplicas)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		o, ok := r.Owner(fmt.Sprintf("key-%d", i), nil)
		if !ok {
			t.Fatal("no owner with all members alive")
		}
		counts[o]++
	}
	for m, c := range counts {
		// With 64 vnodes the split should be within a loose 2x band of
		// even; a broken hash collapses to one member.
		if c < keys/6 || c > keys/2+keys/6 {
			t.Fatalf("member %s owns %d of %d keys — distribution badly skewed: %v", m, c, keys, counts)
		}
	}
}

func TestRingDeadMemberMovesOnlyItsRange(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, DefaultRingReplicas)
	dead := "b"
	alive := func(m string) bool { return m != dead }
	moved, stayed := 0, 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, _ := r.Owner(key, nil)
		after, ok := r.Owner(key, alive)
		if !ok {
			t.Fatal("no owner with two members alive")
		}
		if after == dead {
			t.Fatalf("key %q routed to dead member", key)
		}
		if before == dead {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %q owned by alive %q moved to %q when %q died", key, before, after, dead)
		}
		stayed++
	}
	if moved == 0 || stayed == 0 {
		t.Fatalf("degenerate split moved=%d stayed=%d", moved, stayed)
	}
}

func TestRingSuccessorsDistinctAndOrdered(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"}, 16)
	succ := r.Successors("some-key", 10, nil)
	if len(succ) != 4 {
		t.Fatalf("Successors returned %v, want all 4 distinct members", succ)
	}
	seen := map[string]bool{}
	for _, s := range succ {
		if seen[s] {
			t.Fatalf("duplicate member %q in %v", s, succ)
		}
		seen[s] = true
	}
	owner, _ := r.Owner("some-key", nil)
	if succ[0] != owner {
		t.Fatalf("Successors[0] = %q, want owner %q", succ[0], owner)
	}
	// The alive-filtered list is the unfiltered list minus dead members,
	// in the same order.
	filtered := r.Successors("some-key", 10, func(m string) bool { return m != succ[0] })
	if !reflect.DeepEqual(filtered, succ[1:]) {
		t.Fatalf("alive-filtered successors %v, want %v", filtered, succ[1:])
	}
}

func TestRingEmptyAndNoAlive(t *testing.T) {
	empty := NewRing(nil, 0)
	if _, ok := empty.Owner("k", nil); ok {
		t.Fatal("empty ring produced an owner")
	}
	r := NewRing([]string{"a"}, 0)
	if r.Replicas() != DefaultRingReplicas {
		t.Fatalf("Replicas() = %d, want default %d", r.Replicas(), DefaultRingReplicas)
	}
	if _, ok := r.Owner("k", func(string) bool { return false }); ok {
		t.Fatal("all-dead ring produced an owner")
	}
}
