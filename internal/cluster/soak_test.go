package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"robusttomo/internal/agent"
	"robusttomo/internal/service"
)

// TestClusterChurnSoak stands up a 16-node in-process cluster and
// hammers it: concurrent submitters spray a shared key set across
// random nodes while a churn goroutine keeps killing and reviving
// random peers (with gossip pinging so breakers track the churn). The
// invariants: no submission is ever lost (every accepted ID reaches a
// terminal state), every successful result carries the reference bytes,
// and every node's disposition ledger balances after the drain.
//
// Gated behind CLUSTER_SOAK=1 (wired as `make soak-cluster`, bounded
// well under 60s); run with -race.
func TestClusterChurnSoak(t *testing.T) {
	if os.Getenv("CLUSTER_SOAK") == "" {
		t.Skip("set CLUSTER_SOAK=1 (make soak-cluster) to run the churn soak")
	}

	const (
		nodes      = 16
		submitters = 12
		perWorker  = 150
		keySpace   = 40
	)
	tc := newTestCluster(t, nodes, func(i int, cfg *Config) {
		cfg.HedgeAfter = 10 * time.Millisecond
		cfg.Breaker = agent.BreakerPolicy{FailureThreshold: 1, Cooldown: 20 * time.Millisecond}
	})

	// Reference bytes per key, computed once on a clean single node.
	refs := make(map[string]string, keySpace)
	for k := 0; k < keySpace; k++ {
		spec := clusterSpec(k)
		key, err := spec.CanonicalKey()
		if err != nil {
			t.Fatal(err)
		}
		refs[key] = string(referenceJSON(t, spec))
	}

	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		rng := rand.New(rand.NewSource(1))
		down := map[int]bool{}
		for {
			select {
			case <-stop:
				for i := range down {
					tc.tr.SetDown(tc.addrs[i], false)
				}
				return
			case <-time.After(2 * time.Millisecond):
			}
			victim := rng.Intn(nodes)
			if down[victim] {
				tc.tr.SetDown(tc.addrs[victim], false)
				delete(down, victim)
			} else if len(down) < nodes/4 {
				tc.tr.SetDown(tc.addrs[victim], true)
				down[victim] = true
			}
			// Gossip from a random node keeps breaker states tracking
			// the churn (and exercising recovery probes).
			tc.nodes[rng.Intn(nodes)].GossipOnce(context.Background())
		}
	}()

	var completed, failedClean atomic.Uint64
	var subWG sync.WaitGroup
	for w := 0; w < submitters; w++ {
		subWG.Add(1)
		go func(w int) {
			defer subWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < perWorker; i++ {
				n := tc.nodes[rng.Intn(nodes)]
				spec := clusterSpec(rng.Intn(keySpace))
				out, err := n.Submit(spec)
				if err != nil {
					if errors.Is(err, ErrNodeClosed) || errors.Is(err, service.ErrClosed) || errors.Is(err, service.ErrOverloaded) {
						failedClean.Add(1)
						continue
					}
					t.Errorf("Submit: %v", err)
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				st, err := n.Wait(ctx, out.ID)
				cancel()
				if err != nil {
					t.Errorf("Wait(%s): %v", out.ID[:8], err)
					return
				}
				if st.State != service.StateDone {
					// A forward can legitimately fail when its owner AND
					// hedge died mid-flight and the local fallback raced
					// churn — but it must fail terminally, not hang.
					failedClean.Add(1)
					continue
				}
				res, err := n.Result(out.ID)
				if err != nil {
					t.Errorf("Result(%s): %v", out.ID[:8], err)
					return
				}
				b, _ := json.Marshal(res)
				if string(b) != refs[out.ID] {
					t.Errorf("node %s returned divergent bytes for %s", n.Self(), out.ID[:8])
					return
				}
				completed.Add(1)
			}
		}(w)
	}
	subWG.Wait()
	close(stop)
	churnWG.Wait()

	// Drain every node, then audit the ledgers.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var totals NodeStats
	for _, n := range tc.nodes {
		if err := n.Close(ctx); err != nil {
			t.Errorf("Close(%s): %v", n.Self(), err)
		}
		st := n.Stats()
		checkDrainedInvariant(t, st)
		totals.Submitted += st.Submitted
		totals.Forwards += st.Forwards
		totals.CacheHits += st.CacheHits
		totals.Hedges += st.Hedges
		totals.HedgeWins += st.HedgeWins
		totals.Fallbacks += st.Fallbacks
	}
	if got := completed.Load() + failedClean.Load(); got != submitters*perWorker {
		t.Fatalf("lost submissions: %d terminal of %d", got, submitters*perWorker)
	}
	if completed.Load() == 0 {
		t.Fatal("nothing completed — the soak proved nothing")
	}
	t.Logf("soak: %d completed, %d failed-clean; cluster totals: submitted=%d forwards=%d cacheHits=%d hedges=%d hedgeWins=%d fallbacks=%d",
		completed.Load(), failedClean.Load(), totals.Submitted, totals.Forwards, totals.CacheHits, totals.Hedges, totals.HedgeWins, totals.Fallbacks)
	if totals.Hedges == 0 && totals.Fallbacks == 0 {
		t.Log("warning: churn never exercised a hedge or fallback")
	}
}
