package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"robusttomo/internal/service"
)

// PeerInfo is one peer's health as this node sees it.
type PeerInfo struct {
	Addr string `json:"addr"`
	// State is the breaker state: "closed" (healthy), "open" (dead,
	// routed around), "half-open" (probing).
	State string `json:"state"`
}

// NodeStats is one node's cluster-plane ledger plus its local service
// snapshot. The disposition counters partition Submitted:
//
//	Submitted == CacheHits + Owned + Forwards + ForwardDedup + Shed + Rejected
//
// at every instant, and once forwards drain:
//
//	Forwards == ForwardWins + HedgeWins + Fallbacks + ForwardErrors
type NodeStats struct {
	Self  string     `json:"self"`
	Peers []PeerInfo `json:"peers"`

	Submitted    uint64 `json:"submitted"`
	Owned        uint64 `json:"owned"`
	CacheHits    uint64 `json:"cache_hits"`
	Forwards     uint64 `json:"forwards"`
	ForwardDedup uint64 `json:"forward_dedup"`
	Shed         uint64 `json:"shed"`
	Rejected     uint64 `json:"rejected"`

	ForwardWins   uint64 `json:"forward_wins"`
	HedgeWins     uint64 `json:"hedge_wins"`
	Hedges        uint64 `json:"hedges"`
	Fallbacks     uint64 `json:"fallbacks"`
	ForwardErrors uint64 `json:"forward_errors"`
	RemoteFills   uint64 `json:"remote_fills"`

	RemoteInFlight int               `json:"remote_in_flight"`
	PeerServed     map[string]uint64 `json:"peer_served,omitempty"`

	Service service.Stats `json:"service"`
}

// Stats returns this node's snapshot. The counters are read under one
// mutex, so the disposition invariant holds in every snapshot even
// under concurrent Submit and Close.
func (n *Node) Stats() NodeStats {
	st := NodeStats{Self: n.cfg.Self}
	for _, p := range n.cfg.Peers {
		st.Peers = append(st.Peers, PeerInfo{Addr: p, State: n.breakers[p].State().String()})
	}
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].Addr < st.Peers[j].Addr })

	n.mu.Lock()
	st.Submitted = n.submitted
	st.Owned = n.owned
	st.CacheHits = n.cacheHits
	st.Forwards = n.forwards
	st.ForwardDedup = n.forwardDedup
	st.Shed = n.shed
	st.Rejected = n.rejected
	st.ForwardWins = n.forwardWins
	st.HedgeWins = n.hedgeWins
	st.Hedges = n.hedges
	st.Fallbacks = n.fallbacks
	st.ForwardErrors = n.forwardErrors
	st.RemoteFills = n.remoteFills
	inFlight := 0
	for _, rj := range n.remote {
		if !rj.state.Terminal() {
			inFlight++
		}
	}
	st.RemoteInFlight = inFlight
	if len(n.peerServed) > 0 {
		st.PeerServed = make(map[string]uint64, len(n.peerServed))
		for op, c := range n.peerServed {
			st.PeerServed[op] = c
		}
	}
	n.mu.Unlock()

	st.Service = n.svc.Stats()
	return st
}

// ClusterTotals aggregates the fleet-level numbers a dashboard wants
// first.
type ClusterTotals struct {
	Nodes       int    `json:"nodes"`
	Unreachable int    `json:"unreachable"`
	QueueDepth  int    `json:"queue_depth"`
	Running     int    `json:"running"`
	Submitted   uint64 `json:"submitted"`
	CacheHits   uint64 `json:"cache_hits"`
	Forwards    uint64 `json:"forwards"`
	HedgeWins   uint64 `json:"hedge_wins"`
}

// ClusterSnapshot is the cluster-aware /api/v1/stats payload: this
// node's view plus every reachable peer's own NodeStats, with
// fleet-wide totals up front.
type ClusterSnapshot struct {
	Totals      ClusterTotals `json:"totals"`
	Nodes       []NodeStats   `json:"nodes"`
	Unreachable []string      `json:"unreachable,omitempty"`
}

// ClusterStats fans an OpStats call out to every peer (in parallel,
// bounded by CallTimeout each) and aggregates the answers with this
// node's own snapshot. Unreachable peers are listed, not fatal — the
// snapshot degrades the same way routing does.
func (n *Node) ClusterStats(ctx context.Context) ClusterSnapshot {
	type peerAnswer struct {
		addr  string
		stats NodeStats
		err   error
	}
	answers := make([]peerAnswer, len(n.cfg.Peers))
	var wg sync.WaitGroup
	for i, p := range n.cfg.Peers {
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			answers[i].addr = p
			callCtx, cancel := context.WithTimeout(ctx, n.cfg.CallTimeout)
			defer cancel()
			resp, err := n.cfg.Transport.Call(callCtx, p, &PeerRequest{Op: OpStats, Origin: n.cfg.Self})
			if err != nil {
				answers[i].err = err
				return
			}
			if resp.Status != StatusOK {
				answers[i].err = fmt.Errorf("cluster: %s: %s", resp.Status, resp.Err)
				return
			}
			answers[i].err = json.Unmarshal(resp.Payload, &answers[i].stats)
		}(i, p)
	}
	wg.Wait()

	snap := ClusterSnapshot{Nodes: []NodeStats{n.Stats()}}
	for _, a := range answers {
		if a.err != nil {
			snap.Unreachable = append(snap.Unreachable, a.addr)
			continue
		}
		snap.Nodes = append(snap.Nodes, a.stats)
	}
	sort.Strings(snap.Unreachable)
	snap.Totals.Nodes = len(snap.Nodes)
	snap.Totals.Unreachable = len(snap.Unreachable)
	for _, ns := range snap.Nodes {
		snap.Totals.QueueDepth += ns.Service.QueueDepth
		snap.Totals.Running += ns.Service.Running
		snap.Totals.Submitted += ns.Submitted
		snap.Totals.CacheHits += ns.CacheHits
		snap.Totals.Forwards += ns.Forwards
		snap.Totals.HedgeWins += ns.HedgeWins
	}
	return snap
}
