package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPTransport carries peer frames over plain TCP with a small per-peer
// idle-connection pool. One call is one request frame followed by one
// response frame on a pooled connection; a call that fails on a pooled
// (possibly stale) connection is retried once on a fresh dial before
// the peer counts as unreachable.
type TCPTransport struct {
	// DialTimeout bounds one dial. Zero means 2s.
	DialTimeout time.Duration

	mu     sync.Mutex
	idle   map[string][]net.Conn
	closed bool
}

// maxIdlePerPeer bounds pooled connections per peer; extras are closed
// on release.
const maxIdlePerPeer = 2

// NewTCPTransport returns a TCP transport with an empty pool.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{idle: make(map[string][]net.Conn)}
}

func (t *TCPTransport) getIdle(peer string) (net.Conn, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	conns := t.idle[peer]
	if len(conns) == 0 {
		return nil, false
	}
	c := conns[len(conns)-1]
	t.idle[peer] = conns[:len(conns)-1]
	return c, true
}

func (t *TCPTransport) putIdle(peer string, c net.Conn) {
	t.mu.Lock()
	if t.closed || len(t.idle[peer]) >= maxIdlePerPeer {
		t.mu.Unlock()
		c.Close()
		return
	}
	t.idle[peer] = append(t.idle[peer], c)
	t.mu.Unlock()
}

// Call implements Transport.
func (t *TCPTransport) Call(ctx context.Context, peer string, req *PeerRequest) (*PeerResponse, error) {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("%w: transport closed", ErrPeerUnreachable)
	}
	frame, err := EncodePeerRequest(nil, req)
	if err != nil {
		return nil, err
	}
	if c, ok := t.getIdle(peer); ok {
		resp, err := t.exchange(ctx, peer, c, frame)
		if err == nil {
			return resp, nil
		}
		// A pooled connection may have been closed by the peer's idle
		// reaper between calls; one fresh dial decides whether the peer
		// is actually unreachable.
		if ctx.Err() != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrPeerUnreachable, peer, err)
		}
	}
	dialTimeout := t.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	d := net.Dialer{Timeout: dialTimeout}
	c, err := d.DialContext(ctx, "tcp", peer)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrPeerUnreachable, peer, err)
	}
	resp, err := t.exchange(ctx, peer, c, frame)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrPeerUnreachable, peer, err)
	}
	return resp, nil
}

// exchange writes the request frame and reads the response frame on c,
// enforcing ctx by closing the connection when it fires (which unblocks
// the read immediately). On success c returns to the pool; on any error
// it is closed.
func (t *TCPTransport) exchange(ctx context.Context, peer string, c net.Conn, frame []byte) (*PeerResponse, error) {
	stop := context.AfterFunc(ctx, func() { c.Close() })
	defer stop()
	if deadline, ok := ctx.Deadline(); ok {
		c.SetDeadline(deadline)
	}
	if _, err := c.Write(frame); err != nil {
		c.Close()
		return nil, err
	}
	msg, err := ReadPeerFrame(bufio.NewReader(c))
	if err != nil {
		c.Close()
		return nil, err
	}
	resp, ok := msg.(*PeerResponse)
	if !ok {
		c.Close()
		return nil, fmt.Errorf("cluster: peer %s sent %T, want response", peer, msg)
	}
	if !stop() {
		// ctx fired concurrently; the connection is poisoned.
		c.Close()
		return resp, nil
	}
	c.SetDeadline(time.Time{})
	t.putIdle(peer, c)
	return resp, nil
}

// Close implements Transport: the pool drains and later calls fail.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	for peer, conns := range t.idle {
		for _, c := range conns {
			c.Close()
		}
		delete(t.idle, peer)
	}
	return nil
}

// ServePeers accepts peer-protocol connections on ln and dispatches
// each request frame to h until ctx is done or ln is closed. Each
// connection serves requests sequentially (the transport opens more
// connections for concurrency); a malformed frame closes the
// connection. ServePeers returns after ln stops accepting; in-flight
// handlers finish with their own contexts.
func ServePeers(ctx context.Context, ln net.Listener, h PeerHandler) error {
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			servePeerConn(ctx, conn, h)
		}()
	}
}

func servePeerConn(ctx context.Context, conn net.Conn, h PeerHandler) {
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	br := bufio.NewReader(conn)
	for {
		msg, err := ReadPeerFrame(br)
		if err != nil {
			return
		}
		req, ok := msg.(*PeerRequest)
		if !ok {
			return
		}
		resp := h.HandlePeer(ctx, req)
		if resp == nil {
			resp = &PeerResponse{Status: StatusFailed, Err: "nil handler response"}
		}
		frame, err := EncodePeerResponse(nil, resp)
		if err != nil {
			frame, _ = EncodePeerResponse(nil, &PeerResponse{Status: StatusFailed, Err: "response encoding failed"})
		}
		if _, err := conn.Write(frame); err != nil {
			return
		}
	}
}
