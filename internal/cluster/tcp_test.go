package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"robusttomo/internal/agent"
	"robusttomo/internal/service"
)

// echoHandler answers every op with a fixed payload, recording what it
// saw.
type echoHandler struct {
	mu   sync.Mutex
	seen []PeerOp
}

func (h *echoHandler) HandlePeer(ctx context.Context, req *PeerRequest) *PeerResponse {
	h.mu.Lock()
	h.seen = append(h.seen, req.Op)
	h.mu.Unlock()
	return &PeerResponse{Status: StatusOK, Payload: []byte(`{"echo":"` + req.Origin + `"}`)}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h := &echoHandler{}
	srvDone := make(chan struct{})
	go func() {
		defer close(srvDone)
		ServePeers(ctx, ln, h)
	}()

	tr := NewTCPTransport()
	defer tr.Close()
	addr := ln.Addr().String()

	for i := 0; i < 3; i++ {
		resp, err := tr.Call(ctx, addr, &PeerRequest{Op: OpPing, Origin: fmt.Sprintf("caller-%d", i)})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if resp.Status != StatusOK {
			t.Fatalf("call %d status %v", i, resp.Status)
		}
		want := fmt.Sprintf(`{"echo":"caller-%d"}`, i)
		if string(resp.Payload) != want {
			t.Fatalf("call %d payload %s, want %s", i, resp.Payload, want)
		}
	}
	// Sequential calls reuse one pooled connection.
	tr.mu.Lock()
	pooled := len(tr.idle[addr])
	tr.mu.Unlock()
	if pooled != 1 {
		t.Fatalf("idle pool holds %d conns after sequential calls, want 1", pooled)
	}

	// Deadline enforcement: a context that expires mid-call unblocks.
	h2 := &hangHandler{}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go ServePeers(ctx, ln2, h2)
	short, cancelShort := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancelShort()
	if _, err := tr.Call(short, ln2.Addr().String(), &PeerRequest{Op: OpPing}); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("hung peer call = %v, want ErrPeerUnreachable", err)
	}

	cancel()
	<-srvDone
	if _, err := tr.Call(context.Background(), addr, &PeerRequest{Op: OpPing}); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("call to stopped server = %v, want ErrPeerUnreachable", err)
	}
}

type hangHandler struct{}

func (hangHandler) HandlePeer(ctx context.Context, req *PeerRequest) *PeerResponse {
	<-ctx.Done()
	return &PeerResponse{Status: StatusFailed, Err: "too late"}
}

func TestTCPTransportClosed(t *testing.T) {
	tr := NewTCPTransport()
	tr.Close()
	if _, err := tr.Call(context.Background(), "127.0.0.1:1", &PeerRequest{Op: OpPing}); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("closed transport call = %v, want ErrPeerUnreachable", err)
	}
}

// TestClusterOverTCP runs a real 2-node cluster over TCP listeners —
// the deployment shape, not the loopback: a forwarded submission must
// execute on the owner exactly once and return its bytes.
func TestClusterOverTCP(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen %d: %v", i, err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}

	nodes := make([]*Node, 2)
	svcs := make([]*service.Service, 2)
	for i := range nodes {
		svcs[i] = service.New(service.Config{Workers: 2})
		cfg := Config{
			Self:           addrs[i],
			Peers:          []string{addrs[1-i]},
			HedgeAfter:     100 * time.Millisecond,
			GossipInterval: -1,
			Breaker:        agent.BreakerPolicy{FailureThreshold: 2, Cooldown: time.Second},
			Service:        svcs[i],
			Transport:      NewTCPTransport(),
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatalf("New %d: %v", i, err)
		}
		nodes[i] = n
		go ServePeers(ctx, lns[i], n)
	}
	t.Cleanup(func() {
		closeCtx, done := context.WithTimeout(context.Background(), 10*time.Second)
		defer done()
		for _, n := range nodes {
			n.Close(closeCtx)
		}
		for _, s := range svcs {
			s.Close(closeCtx)
		}
	})

	// Find a spec owned by node 1 and submit it at node 0.
	var spec service.JobSpec
	found := false
	for n := 0; n < 1000 && !found; n++ {
		spec = clusterSpec(n)
		key, err := spec.CanonicalKey()
		if err != nil {
			t.Fatal(err)
		}
		if o, _ := nodes[0].Ring().Owner(key, nil); o == addrs[1] {
			found = true
		}
	}
	if !found {
		t.Fatal("no spec owned by node 1")
	}
	ref := referenceJSON(t, spec)

	out, err := nodes[0].Submit(spec)
	if err != nil {
		t.Fatalf("Submit over TCP: %v", err)
	}
	res := waitResult(t, nodes[0], out.ID)
	got, _ := json.Marshal(res)
	if string(got) != string(ref) {
		t.Fatalf("TCP-forwarded result diverges:\n got  %s\n want %s", got, ref)
	}
	if ex := svcs[1].Stats().Executed; ex != 1 {
		t.Fatalf("owner executed %d times, want 1", ex)
	}
	if ex := svcs[0].Stats().Executed; ex != 0 {
		t.Fatalf("non-owner executed %d times, want 0", ex)
	}
	if st := nodes[0].Stats(); st.Forwards != 1 || st.ForwardWins != 1 {
		t.Fatalf("want 1 forward won by the primary, got %+v", st)
	}
}
