package cluster

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrPeerUnreachable marks a peer call that failed at the transport
// layer (down, hung past the deadline, connection refused). It feeds
// the peer's breaker as a failure; protocol-level failures (the peer
// answered StatusFailed) do not — the peer is alive, the job is not.
var ErrPeerUnreachable = errors.New("cluster: peer unreachable")

// Transport carries one peer call: encode req, deliver it to peer,
// return the decoded response. Implementations must honor ctx
// (returning promptly once it is done) and be safe for concurrent use.
// The in-process loopback serves deterministic `-race` tests; the TCP
// transport carries identical frames between real daemons.
type Transport interface {
	Call(ctx context.Context, peer string, req *PeerRequest) (*PeerResponse, error)
	// Close releases transport resources (pooled connections). Calls in
	// flight may fail.
	Close() error
}

// PeerHandler answers decoded peer requests — the receiving half of the
// protocol, implemented by Node. The response is never nil.
type PeerHandler interface {
	HandlePeer(ctx context.Context, req *PeerRequest) *PeerResponse
}

// loopbackPeer is one registered in-process endpoint plus its injected
// faults.
type loopbackPeer struct {
	handler PeerHandler
	down    bool          // Call fails immediately with ErrPeerUnreachable
	hang    bool          // Call blocks until ctx is done
	delay   time.Duration // Call sleeps before delivering (hedge tests)
}

// LoopbackTransport delivers peer calls to in-process handlers,
// round-tripping every request and response through the real wire codec
// so loopback tests exercise the exact bytes TCP carries. Fault
// injection (down, hang, delay) is per-peer and may change between
// calls, which is how tests kill an owner mid-flight.
type LoopbackTransport struct {
	mu    sync.Mutex
	peers map[string]*loopbackPeer
}

// NewLoopbackTransport returns an empty loopback fabric; Register each
// node's handler under its ring address.
func NewLoopbackTransport() *LoopbackTransport {
	return &LoopbackTransport{peers: make(map[string]*loopbackPeer)}
}

// Register installs h as the endpoint at addr, replacing any previous
// registration (and clearing its faults).
func (t *LoopbackTransport) Register(addr string, h PeerHandler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[addr] = &loopbackPeer{handler: h}
}

// SetDown makes calls to addr fail immediately (down=true) or restores
// delivery.
func (t *LoopbackTransport) SetDown(addr string, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.peers[addr]; ok {
		p.down = down
	}
}

// SetHang makes calls to addr block until their context expires — the
// slow-owner case hedging exists for.
func (t *LoopbackTransport) SetHang(addr string, hang bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.peers[addr]; ok {
		p.hang = hang
	}
}

// SetDelay makes calls to addr sleep d before delivering.
func (t *LoopbackTransport) SetDelay(addr string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.peers[addr]; ok {
		p.delay = d
	}
}

// Call implements Transport.
func (t *LoopbackTransport) Call(ctx context.Context, peer string, req *PeerRequest) (*PeerResponse, error) {
	t.mu.Lock()
	p, ok := t.peers[peer]
	var (
		down    bool
		hang    bool
		delay   time.Duration
		handler PeerHandler
	)
	if ok {
		down, hang, delay, handler = p.down, p.hang, p.delay, p.handler
	}
	t.mu.Unlock()
	if !ok || down {
		return nil, fmt.Errorf("%w: %s is down", ErrPeerUnreachable, peer)
	}
	if hang {
		<-ctx.Done()
		return nil, fmt.Errorf("%w: %s hung: %v", ErrPeerUnreachable, peer, ctx.Err())
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %s delayed past deadline: %v", ErrPeerUnreachable, peer, ctx.Err())
		}
	}
	// Round-trip the request through the wire codec: the handler sees
	// exactly what a TCP peer would decode.
	wireReq, err := roundTripRequest(req)
	if err != nil {
		return nil, err
	}
	resp := handler.HandlePeer(ctx, wireReq)
	if resp == nil {
		return nil, fmt.Errorf("cluster: nil response from %s", peer)
	}
	return roundTripResponse(resp)
}

// Close implements Transport; the loopback holds no resources.
func (t *LoopbackTransport) Close() error { return nil }

func roundTripRequest(req *PeerRequest) (*PeerRequest, error) {
	frame, err := EncodePeerRequest(nil, req)
	if err != nil {
		return nil, err
	}
	msg, err := ReadPeerFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		return nil, err
	}
	out, ok := msg.(*PeerRequest)
	if !ok {
		return nil, fmt.Errorf("cluster: request round-trip decoded %T", msg)
	}
	return out, nil
}

func roundTripResponse(resp *PeerResponse) (*PeerResponse, error) {
	frame, err := EncodePeerResponse(nil, resp)
	if err != nil {
		return nil, err
	}
	msg, err := ReadPeerFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		return nil, err
	}
	out, ok := msg.(*PeerResponse)
	if !ok {
		return nil, fmt.Errorf("cluster: response round-trip decoded %T", msg)
	}
	return out, nil
}
