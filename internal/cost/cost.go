// Package cost implements the paper's probing cost model (Section III-B
// and VI-A): the cost of probing a path is the sum of a run-time component
// linear in hop count and an access component charged for each endpoint
// monitor owned by another administrative domain.
//
//	PC(q) = HopWeight·hops(q) + AC(src) + AC(dst)
//
// with HopWeight = 100 and access costs drawn from {0, 300} with equal
// probability (self-owned vs peer-owned monitors). Costs of distinct paths
// are independent and the cost of a set is the sum over its members.
package cost

import (
	"fmt"

	"robusttomo/internal/graph"
	"robusttomo/internal/routing"
	"robusttomo/internal/stats"
)

// Paper defaults from Section VI-A.
const (
	DefaultHopWeight = 100.0
	SelfOwnedAccess  = 0.0
	PeerOwnedAccess  = 300.0
)

// Model assigns probing costs to paths.
type Model struct {
	hopWeight float64
	access    map[graph.NodeID]float64
}

// Config parameterizes NewModel.
type Config struct {
	Monitors  []graph.NodeID
	HopWeight float64 // 0 means DefaultHopWeight
	// PeerProbability is the probability a monitor is peer-owned (access
	// cost 300); the paper uses 0.5. Negative values mean 0.5.
	PeerProbability float64
	Seed            uint64
}

// NewModel draws the access-cost class of every monitor and fixes the
// run-time weight.
func NewModel(cfg Config) (*Model, error) {
	if len(cfg.Monitors) == 0 {
		return nil, fmt.Errorf("cost: no monitors")
	}
	hw := cfg.HopWeight
	if hw == 0 {
		hw = DefaultHopWeight
	}
	if hw < 0 {
		return nil, fmt.Errorf("cost: negative hop weight %v", hw)
	}
	pp := cfg.PeerProbability
	if pp < 0 {
		pp = 0.5
	}
	if pp > 1 {
		return nil, fmt.Errorf("cost: peer probability %v > 1", pp)
	}
	rng := stats.NewRNG(cfg.Seed, 0xC057)
	access := make(map[graph.NodeID]float64, len(cfg.Monitors))
	for _, m := range cfg.Monitors {
		if stats.Bernoulli(rng, pp) {
			access[m] = PeerOwnedAccess
		} else {
			access[m] = SelfOwnedAccess
		}
	}
	return &Model{hopWeight: hw, access: access}, nil
}

// Unit returns a model in which every path costs exactly 1, matching the
// paper's matroid setting (Section IV-B) where the budget counts paths.
func Unit() *Model { return &Model{hopWeight: 0, access: nil} }

// IsUnit reports whether this is the unit-cost model.
func (m *Model) IsUnit() bool { return m.access == nil && m.hopWeight == 0 }

// AccessCost returns the access cost assigned to monitor n (0 for unknown
// nodes, matching self-owned monitors).
func (m *Model) AccessCost(n graph.NodeID) float64 { return m.access[n] }

// PathCost returns PC(q).
func (m *Model) PathCost(p routing.Path) float64 {
	if m.IsUnit() {
		return 1
	}
	return m.hopWeight*float64(p.Hops()) + m.access[p.Src] + m.access[p.Dst]
}

// SetCost returns PC(R) = Σ PC(q) over the set.
func (m *Model) SetCost(paths []routing.Path) float64 {
	total := 0.0
	for _, p := range paths {
		total += m.PathCost(p)
	}
	return total
}

// Costs returns the per-path costs for a slice of candidate paths, indexed
// like the input.
func (m *Model) Costs(paths []routing.Path) []float64 {
	out := make([]float64, len(paths))
	for i, p := range paths {
		out[i] = m.PathCost(p)
	}
	return out
}
