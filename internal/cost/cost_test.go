package cost

import (
	"testing"

	"robusttomo/internal/graph"
	"robusttomo/internal/routing"
)

func pathWith(src, dst graph.NodeID, hops int) routing.Path {
	edges := make([]graph.EdgeID, hops)
	for i := range edges {
		edges[i] = graph.EdgeID(i)
	}
	return routing.Path{Src: src, Dst: dst, Edges: edges}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(Config{}); err == nil {
		t.Fatal("no monitors accepted")
	}
	if _, err := NewModel(Config{Monitors: []graph.NodeID{1}, HopWeight: -1}); err == nil {
		t.Fatal("negative hop weight accepted")
	}
	if _, err := NewModel(Config{Monitors: []graph.NodeID{1}, PeerProbability: 2}); err == nil {
		t.Fatal("probability > 1 accepted")
	}
}

func TestPathCostFormula(t *testing.T) {
	monitors := []graph.NodeID{0, 1}
	// PeerProbability 1: both monitors peer-owned (access 300).
	m, err := NewModel(Config{Monitors: monitors, PeerProbability: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := pathWith(0, 1, 4)
	want := 100.0*4 + 300 + 300
	if got := m.PathCost(p); got != want {
		t.Fatalf("PathCost = %v, want %v", got, want)
	}
	// PeerProbability 0: all self-owned.
	m0, _ := NewModel(Config{Monitors: monitors, PeerProbability: 0, Seed: 1})
	if got := m0.PathCost(p); got != 400 {
		t.Fatalf("self-owned PathCost = %v, want 400", got)
	}
}

func TestAccessCostClasses(t *testing.T) {
	monitors := make([]graph.NodeID, 200)
	for i := range monitors {
		monitors[i] = graph.NodeID(i)
	}
	m, err := NewModel(Config{Monitors: monitors, PeerProbability: -1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	peers := 0
	for _, n := range monitors {
		switch m.AccessCost(n) {
		case PeerOwnedAccess:
			peers++
		case SelfOwnedAccess:
		default:
			t.Fatalf("unexpected access cost %v", m.AccessCost(n))
		}
	}
	// Default 0.5 split: expect roughly half peers.
	if peers < 60 || peers > 140 {
		t.Fatalf("peers = %d/200, want around 100", peers)
	}
	// Unknown nodes cost 0.
	if m.AccessCost(9999) != 0 {
		t.Fatal("unknown node should cost 0")
	}
}

func TestCustomHopWeight(t *testing.T) {
	m, err := NewModel(Config{Monitors: []graph.NodeID{0, 1}, HopWeight: 7, PeerProbability: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.PathCost(pathWith(0, 1, 3)); got != 21 {
		t.Fatalf("PathCost = %v, want 21", got)
	}
}

func TestSetCostAndCosts(t *testing.T) {
	m, _ := NewModel(Config{Monitors: []graph.NodeID{0, 1, 2}, PeerProbability: 0})
	paths := []routing.Path{pathWith(0, 1, 1), pathWith(1, 2, 2)}
	costs := m.Costs(paths)
	if costs[0] != 100 || costs[1] != 200 {
		t.Fatalf("Costs = %v", costs)
	}
	if got := m.SetCost(paths); got != 300 {
		t.Fatalf("SetCost = %v, want 300", got)
	}
}

func TestUnitModel(t *testing.T) {
	m := Unit()
	if !m.IsUnit() {
		t.Fatal("Unit not recognized")
	}
	if got := m.PathCost(pathWith(0, 1, 9)); got != 1 {
		t.Fatalf("unit PathCost = %v, want 1", got)
	}
	if got := m.SetCost([]routing.Path{pathWith(0, 1, 1), pathWith(0, 2, 5)}); got != 2 {
		t.Fatalf("unit SetCost = %v, want 2", got)
	}
}

func TestModelDeterministicInSeed(t *testing.T) {
	monitors := make([]graph.NodeID, 50)
	for i := range monitors {
		monitors[i] = graph.NodeID(i)
	}
	a, _ := NewModel(Config{Monitors: monitors, Seed: 9, PeerProbability: -1})
	b, _ := NewModel(Config{Monitors: monitors, Seed: 9, PeerProbability: -1})
	for _, n := range monitors {
		if a.AccessCost(n) != b.AccessCost(n) {
			t.Fatal("same seed gave different access classes")
		}
	}
}
