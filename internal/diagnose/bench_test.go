package diagnose

import (
	"math/rand/v2"
	"testing"

	"robusttomo/internal/failure"
	"robusttomo/internal/routing"
	"robusttomo/internal/stats"
	"robusttomo/internal/tomo"
)

func benchObservation(b *testing.B) (*tomo.PathMatrix, Observation) {
	b.Helper()
	rng := rand.New(rand.NewPCG(1, 1))
	const nLinks, nPaths = 160, 200
	paths := make([]routing.Path, nPaths)
	for i := range paths {
		hops := 2 + rng.IntN(5)
		paths[i] = synthPath(stats.SampleWithoutReplacement(rng, nLinks, hops)...)
	}
	pm, err := tomo.NewPathMatrix(paths, nLinks)
	if err != nil {
		b.Fatal(err)
	}
	failed := make([]bool, nLinks)
	for i := 0; i < 5; i++ {
		failed[rng.IntN(nLinks)] = true
	}
	sc := failure.Scenario{Failed: failed}
	obs := Observation{}
	for i := 0; i < nPaths; i++ {
		obs.Paths = append(obs.Paths, i)
		obs.OK = append(obs.OK, pm.Available(i, sc))
	}
	return pm, obs
}

func BenchmarkLocalize(b *testing.B) {
	pm, obs := benchObservation(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Localize(pm, obs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyExplanation(b *testing.B) {
	pm, obs := benchObservation(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GreedyExplanation(pm, obs); err != nil {
			b.Fatal(err)
		}
	}
}
