// Package diagnose performs Boolean failure localization from end-to-end
// path observations: given which probed paths succeeded and which failed
// in an epoch, it narrows down the set of links that can be down.
//
// This is the complementary inference the paper's Section II example
// gestures at ("from the failure of path q11 we can conclude that the
// failed link is l7") and the problem its related work (Nguyen–Thiran)
// solves in full. The rules are classical Boolean tomography:
//
//   - every link on a successful path is certainly up;
//   - every failed path must contain at least one down link among its
//     links not yet proven up (a hitting-set constraint);
//   - a link is *implicated* when it is the only possible explanation of
//     some failed path.
//
// Exact minimal hitting sets are NP-hard, so the package offers exact
// enumeration for small residual instances and a greedy cover otherwise.
package diagnose

import (
	"fmt"
	"sort"

	"robusttomo/internal/tomo"
)

// Observation is one epoch of probing feedback: for every probed path,
// whether it delivered a measurement.
type Observation struct {
	Paths []int  // probed candidate path indices
	OK    []bool // parallel to Paths
}

// Diagnosis is the localization result.
type Diagnosis struct {
	// Up[l] is true when link l is proven up (it lies on a successful
	// path).
	Up []bool
	// Suspect[l] is true when link l lies on at least one failed path and
	// is not proven up — it may be down.
	Suspect []bool
	// Implicated[l] is true when some failed path has l as its only
	// possible explanation; such links are certainly down (assuming
	// observations are consistent).
	Implicated []bool
	// Unexplained lists failed paths none of whose links remain suspect —
	// an inconsistency between the observations and the topology.
	Unexplained []int
}

// NumSuspect returns the count of suspect links.
func (d Diagnosis) NumSuspect() int { return count(d.Suspect) }

// NumImplicated returns the count of certainly-down links.
func (d Diagnosis) NumImplicated() int { return count(d.Implicated) }

func count(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// Localize applies the Boolean rules to one observation.
func Localize(pm *tomo.PathMatrix, obs Observation) (Diagnosis, error) {
	if len(obs.Paths) != len(obs.OK) {
		return Diagnosis{}, fmt.Errorf("diagnose: %d paths, %d outcomes", len(obs.Paths), len(obs.OK))
	}
	links := pm.NumLinks()
	d := Diagnosis{
		Up:         make([]bool, links),
		Suspect:    make([]bool, links),
		Implicated: make([]bool, links),
	}
	var failed []int
	for k, p := range obs.Paths {
		if p < 0 || p >= pm.NumPaths() {
			return Diagnosis{}, fmt.Errorf("diagnose: path %d out of range", p)
		}
		if obs.OK[k] {
			for _, l := range pm.EdgesOf(p) {
				d.Up[l] = true
			}
		} else {
			failed = append(failed, p)
		}
	}
	for _, p := range failed {
		var candidates []int
		for _, l := range pm.EdgesOf(p) {
			if !d.Up[l] {
				candidates = append(candidates, l)
				d.Suspect[l] = true
			}
		}
		switch len(candidates) {
		case 0:
			d.Unexplained = append(d.Unexplained, p)
		case 1:
			d.Implicated[candidates[0]] = true
		}
	}
	return d, nil
}

// MaxExactSuspects bounds the exact minimal-hitting-set search.
const MaxExactSuspects = 22

// MinimalExplanations returns all minimum-cardinality sets of suspect
// links that explain every failed path (each failed path contains at
// least one set member). It requires the residual suspect count to be at
// most MaxExactSuspects. When observations are consistent, at least one
// explanation exists; the true failure set is a superset of some minimal
// explanation.
func MinimalExplanations(pm *tomo.PathMatrix, obs Observation) ([][]int, error) {
	d, err := Localize(pm, obs)
	if err != nil {
		return nil, err
	}
	if len(d.Unexplained) > 0 {
		return nil, fmt.Errorf("diagnose: %d failed paths have no possible explanation", len(d.Unexplained))
	}
	// Residual constraints: failed paths' suspect links.
	var constraints [][]int
	for k, p := range obs.Paths {
		if obs.OK[k] {
			continue
		}
		var cs []int
		for _, l := range pm.EdgesOf(p) {
			if d.Suspect[l] {
				cs = append(cs, l)
			}
		}
		constraints = append(constraints, cs)
	}
	if len(constraints) == 0 {
		return [][]int{{}}, nil
	}
	var suspects []int
	for l, s := range d.Suspect {
		if s {
			suspects = append(suspects, l)
		}
	}
	if len(suspects) > MaxExactSuspects {
		return nil, fmt.Errorf("diagnose: %d suspects exceed exact limit %d", len(suspects), MaxExactSuspects)
	}

	pos := make(map[int]int, len(suspects))
	for i, l := range suspects {
		pos[l] = i
	}
	masks := make([]uint64, len(constraints))
	for i, cs := range constraints {
		for _, l := range cs {
			masks[i] |= 1 << pos[l]
		}
	}

	var best [][]int
	bestSize := len(suspects) + 1
	for set := uint64(0); set < 1<<len(suspects); set++ {
		size := popcount(set)
		if size > bestSize {
			continue
		}
		ok := true
		for _, m := range masks {
			if m&set == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if size < bestSize {
			bestSize = size
			best = best[:0]
		}
		var links []int
		for i, l := range suspects {
			if set&(1<<i) != 0 {
				links = append(links, l)
			}
		}
		best = append(best, links)
	}
	sort.Slice(best, func(a, b int) bool { return lessIntSlice(best[a], best[b]) })
	return best, nil
}

// GreedyExplanation returns one (not necessarily minimum) explanation via
// the classical greedy set cover over suspect links, scalable to any
// instance size. It returns an error when some failed path is
// unexplainable.
func GreedyExplanation(pm *tomo.PathMatrix, obs Observation) ([]int, error) {
	d, err := Localize(pm, obs)
	if err != nil {
		return nil, err
	}
	if len(d.Unexplained) > 0 {
		return nil, fmt.Errorf("diagnose: %d failed paths have no possible explanation", len(d.Unexplained))
	}
	// Remaining constraints per failed path.
	var constraints [][]int
	for k, p := range obs.Paths {
		if obs.OK[k] {
			continue
		}
		var cs []int
		for _, l := range pm.EdgesOf(p) {
			if d.Suspect[l] {
				cs = append(cs, l)
			}
		}
		constraints = append(constraints, cs)
	}
	var chosen []int
	covered := make([]bool, len(constraints))
	remaining := len(constraints)
	for remaining > 0 {
		// Pick the suspect link covering the most uncovered constraints;
		// ties break on lower link ID for determinism.
		counts := map[int]int{}
		for i, cs := range constraints {
			if covered[i] {
				continue
			}
			for _, l := range cs {
				counts[l]++
			}
		}
		best, bestCount := -1, 0
		for l, c := range counts {
			if c > bestCount || (c == bestCount && best >= 0 && l < best) {
				best, bestCount = l, c
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("diagnose: internal: uncovered constraint with no candidates")
		}
		chosen = append(chosen, best)
		for i, cs := range constraints {
			if covered[i] {
				continue
			}
			for _, l := range cs {
				if l == best {
					covered[i] = true
					remaining--
					break
				}
			}
		}
	}
	sort.Ints(chosen)
	return chosen, nil
}

func popcount(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
