package diagnose

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"robusttomo/internal/failure"
	"robusttomo/internal/graph"
	"robusttomo/internal/routing"
	"robusttomo/internal/tomo"
	"robusttomo/internal/topo"
)

func synthPath(links ...int) routing.Path {
	edges := make([]graph.EdgeID, len(links))
	for i, l := range links {
		edges[i] = graph.EdgeID(l)
	}
	return routing.Path{Src: 0, Dst: 1, Edges: edges}
}

func examplePM(t *testing.T) (*topo.Example, *tomo.PathMatrix) {
	t.Helper()
	ex := topo.NewExample()
	paths, err := routing.MonitorPairs(ex.Graph, ex.Monitors, ex.Monitors)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := tomo.NewPathMatrix(paths, ex.Graph.NumEdges())
	if err != nil {
		t.Fatal(err)
	}
	return ex, pm
}

func observe(pm *tomo.PathMatrix, sc failure.Scenario) Observation {
	obs := Observation{}
	for i := 0; i < pm.NumPaths(); i++ {
		obs.Paths = append(obs.Paths, i)
		obs.OK = append(obs.OK, pm.Available(i, sc))
	}
	return obs
}

func TestLocalizeValidation(t *testing.T) {
	_, pm := examplePM(t)
	if _, err := Localize(pm, Observation{Paths: []int{0}, OK: nil}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Localize(pm, Observation{Paths: []int{99}, OK: []bool{true}}); err == nil {
		t.Fatal("out-of-range path accepted")
	}
}

func TestLocalizePaperExample(t *testing.T) {
	// The paper's Section II punchline: failing the bridge implicates it
	// uniquely, because every other link of the failed cross paths lies on
	// some successful intra-cluster path.
	ex, pm := examplePM(t)
	sc := failure.Scenario{Failed: make([]bool, pm.NumLinks())}
	sc.Failed[ex.Bridge] = true
	d, err := Localize(pm, observe(pm, sc))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Unexplained) != 0 {
		t.Fatalf("unexplained paths: %v", d.Unexplained)
	}
	if !d.Implicated[ex.Bridge] {
		t.Fatal("bridge not implicated")
	}
	if d.NumImplicated() != 1 || d.NumSuspect() != 1 {
		t.Fatalf("implicated %d, suspect %d, want 1/1", d.NumImplicated(), d.NumSuspect())
	}
	for l := 0; l < pm.NumLinks(); l++ {
		wantUp := l != int(ex.Bridge)
		if d.Up[l] != wantUp {
			t.Fatalf("link %d up=%v, want %v", l, d.Up[l], wantUp)
		}
	}
}

func TestLocalizeNoFailures(t *testing.T) {
	_, pm := examplePM(t)
	sc := failure.Scenario{Failed: make([]bool, pm.NumLinks())}
	d, err := Localize(pm, observe(pm, sc))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumSuspect() != 0 || d.NumImplicated() != 0 || len(d.Unexplained) != 0 {
		t.Fatalf("clean epoch produced suspicion: %+v", d)
	}
}

func TestLocalizeUnexplained(t *testing.T) {
	// Path 0 both failed and all its links proven up by path 1 (same
	// links): inconsistent observation.
	pm, err := tomo.NewPathMatrix([]routing.Path{synthPath(0, 1), synthPath(0, 1)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Localize(pm, Observation{Paths: []int{0, 1}, OK: []bool{false, true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Unexplained) != 1 || d.Unexplained[0] != 0 {
		t.Fatalf("Unexplained = %v", d.Unexplained)
	}
	if _, err := MinimalExplanations(pm, Observation{Paths: []int{0, 1}, OK: []bool{false, true}}); err == nil {
		t.Fatal("inconsistent observation accepted by MinimalExplanations")
	}
	if _, err := GreedyExplanation(pm, Observation{Paths: []int{0, 1}, OK: []bool{false, true}}); err == nil {
		t.Fatal("inconsistent observation accepted by GreedyExplanation")
	}
}

func TestMinimalExplanationsSimple(t *testing.T) {
	// Two failed disjoint paths need two down links; one shared link
	// explains both with a single failure.
	pm, err := tomo.NewPathMatrix([]routing.Path{
		synthPath(0, 2),
		synthPath(1, 2),
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	obs := Observation{Paths: []int{0, 1}, OK: []bool{false, false}}
	expl, err := MinimalExplanations(pm, obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(expl) != 1 || len(expl[0]) != 1 || expl[0][0] != 2 {
		t.Fatalf("explanations = %v, want [[2]]", expl)
	}
}

func TestMinimalExplanationsAllClean(t *testing.T) {
	pm, _ := tomo.NewPathMatrix([]routing.Path{synthPath(0)}, 1)
	expl, err := MinimalExplanations(pm, Observation{Paths: []int{0}, OK: []bool{true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(expl) != 1 || len(expl[0]) != 0 {
		t.Fatalf("explanations = %v, want one empty set", expl)
	}
}

func TestMinimalExplanationsMultiple(t *testing.T) {
	// One failed path with two unexonerated links: two singleton minimal
	// explanations.
	pm, _ := tomo.NewPathMatrix([]routing.Path{synthPath(0, 1)}, 2)
	expl, err := MinimalExplanations(pm, Observation{Paths: []int{0}, OK: []bool{false}})
	if err != nil {
		t.Fatal(err)
	}
	if len(expl) != 2 {
		t.Fatalf("explanations = %v, want two singletons", expl)
	}
}

func TestGreedyExplanationCoversAllFailures(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		nLinks := 4 + rng.IntN(8)
		nPaths := 3 + rng.IntN(10)
		paths := make([]routing.Path, nPaths)
		for i := range paths {
			hops := 1 + rng.IntN(3)
			links := rng.Perm(nLinks)[:hops]
			paths[i] = synthPath(links...)
		}
		pm, err := tomo.NewPathMatrix(paths, nLinks)
		if err != nil {
			return false
		}
		failed := make([]bool, nLinks)
		for l := range failed {
			failed[l] = rng.Float64() < 0.25
		}
		sc := failure.Scenario{Failed: failed}
		obs := Observation{}
		for i := 0; i < nPaths; i++ {
			obs.Paths = append(obs.Paths, i)
			obs.OK = append(obs.OK, pm.Available(i, sc))
		}
		expl, err := GreedyExplanation(pm, obs)
		if err != nil {
			return false // consistent-by-construction observations
		}
		inExpl := map[int]bool{}
		for _, l := range expl {
			inExpl[l] = true
		}
		// Every failed path must contain a chosen link.
		for k, p := range obs.Paths {
			if obs.OK[k] {
				continue
			}
			hit := false
			for _, l := range pm.EdgesOf(p) {
				if inExpl[l] {
					hit = true
					break
				}
			}
			if !hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: the true failure set always explains the observations, so a
// minimal explanation is never larger than the number of truly failed
// suspect links.
func TestMinimalExplanationBoundedByTruth(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 79))
		nLinks := 3 + rng.IntN(6)
		nPaths := 2 + rng.IntN(6)
		paths := make([]routing.Path, nPaths)
		for i := range paths {
			hops := 1 + rng.IntN(3)
			links := rng.Perm(nLinks)[:hops]
			paths[i] = synthPath(links...)
		}
		pm, err := tomo.NewPathMatrix(paths, nLinks)
		if err != nil {
			return false
		}
		failed := make([]bool, nLinks)
		trueDown := 0
		for l := range failed {
			if rng.Float64() < 0.3 {
				failed[l] = true
				trueDown++
			}
		}
		sc := failure.Scenario{Failed: failed}
		obs := Observation{}
		for i := 0; i < nPaths; i++ {
			obs.Paths = append(obs.Paths, i)
			obs.OK = append(obs.OK, pm.Available(i, sc))
		}
		expl, err := MinimalExplanations(pm, obs)
		if err != nil {
			return false
		}
		if len(expl) == 0 {
			return false
		}
		return len(expl[0]) <= trueDown
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
