// Package engine defines the algorithm-agnostic inference-engine API
// behind the job service (internal/service) and `tomo serve`.
//
// An Engine turns a client-submitted job spec into a runnable Job:
// Normalize validates the spec, fills defaults and returns the canonical
// job whose Key is the content-addressed cache ID. The service planes —
// queue, singleflight dedup, LRU result cache, load shedding, metrics —
// speak only this interface, so adding an inference method to the
// service is a registration, not a rewrite: implement Engine, call
// Register from the package's init, and the whole `tomo serve` HTTP
// surface (POST /api/v1/jobs with JobSpec.Engine set to the engine's
// name) serves it.
//
// Engine contract (DESIGN.md §15):
//
//   - Key discipline: Run must be deterministic in the normalized job —
//     byte-equal keys imply bit-identical results. Any randomness must be
//     derived from seeds that are part of the key. Keys from different
//     engines must not collide; an engine hashing its own inputs must
//     domain-separate them (the selection engine's key starts with its
//     algorithm name, the loss engine's with a "loss/v1" tag).
//   - Cache semantics: the service caches the Result under the job key
//     and serves it in place of a re-run. SizeBytes feeds the cache's
//     byte budget and must be proportional to the real footprint; Clone
//     must return a copy safe to hand to callers while the cached
//     original stays immutable.
//   - Obs labels: ObsLabel is the stable label the service attaches to
//     per-engine metrics and lifecycle events; Detail is the
//     job-granular tag echoed in job status (for the selection engine,
//     the algorithm name).
package engine

import (
	"context"

	"robusttomo/internal/obs"
)

// Spec is the engine-facing view of one submitted job: the raw,
// unnormalized fields of the service's wire JobSpec, minus scheduling
// concerns (priority never reaches an engine — results must not depend
// on it). Params carries the engine-specific JSON payload of a v2
// submission; the flat selection fields (Links through Seed) are the
// legacy v1 surface, which the selection engine still reads directly.
type Spec struct {
	// Engine is the resolved engine name (informational; the registry
	// has already routed the spec by the time Normalize sees it).
	Engine string
	// Params is the raw per-engine JSON parameter payload. Engines
	// parse, validate and canonicalize it; hashing a canonical form (not
	// the raw bytes) keeps formatting differences out of the key space.
	Params []byte

	// Legacy v1 selection-instance fields.
	Links     int
	Paths     [][]int
	Probs     []float64
	Costs     []float64
	Budget    float64
	Algorithm string
	MCRuns    int
	Seed      uint64
}

// Result is an engine's run output: the payload the service caches and
// the HTTP layer JSON-encodes.
type Result interface {
	// SizeBytes estimates the in-memory footprint of the cached result
	// (excluding the key, which the cache accounts separately). It only
	// needs to be proportional for the byte budget to bound real memory.
	SizeBytes() int64
	// Clone returns a copy safe to hand to a caller: mutating it must
	// not reach the cached original.
	Clone() Result
}

// Job is one normalized, runnable inference job.
type Job interface {
	// Key is the content-addressed job and cache ID: the canonical hash
	// of everything the result depends on.
	Key() string
	// Detail is the engine-specific job tag echoed in job status (the
	// selection engine reports the normalized algorithm name).
	Detail() string
	// CostHint estimates the job's relative compute cost in arbitrary
	// engine-comparable units (roughly, elementary operations). The
	// service records it for observability and future schedulers; it
	// must not affect the result.
	CostHint() float64
	// Run executes the job. It must honor ctx between iterations of any
	// long computation and report progress through reg (nil-safe).
	Run(ctx context.Context, reg *obs.Registry) (Result, error)
}

// Engine is one registered inference method.
type Engine interface {
	// Name is the registry key and the JobSpec.Engine wire value.
	Name() string
	// ObsLabel is the stable label for per-engine metrics and events.
	ObsLabel() string
	// Normalize validates the spec, fills defaults and returns the
	// canonical job. Equivalent specs must normalize to jobs with equal
	// keys (that is what makes the result cache effective).
	Normalize(spec Spec) (Job, error)
}
