package engine

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"

	"robusttomo/internal/obs"
)

// fakeResult is a minimal Result payload for registry tests.
type fakeResult struct{ n int }

func (r fakeResult) SizeBytes() int64 { return int64(r.n) }
func (r fakeResult) Clone() Result    { return r }

// fakeEngine is a minimal Engine whose jobs echo the engine name.
type fakeEngine struct{ name string }

func (e fakeEngine) Name() string     { return e.name }
func (e fakeEngine) ObsLabel() string { return e.name }
func (e fakeEngine) Normalize(Spec) (Job, error) {
	return fakeJob{key: e.name + "/job"}, nil
}

type fakeJob struct{ key string }

func (j fakeJob) Key() string       { return j.key }
func (j fakeJob) Detail() string    { return "fake" }
func (j fakeJob) CostHint() float64 { return 1 }
func (j fakeJob) Run(context.Context, *obs.Registry) (Result, error) {
	return fakeResult{n: 1}, nil
}

func TestRegisterAndLookup(t *testing.T) {
	Register(fakeEngine{name: "test-lookup"})
	e, err := Lookup("test-lookup")
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "test-lookup" {
		t.Fatalf("Lookup returned engine %q", e.Name())
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(fakeEngine{name: "test-dup"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(fakeEngine{name: "test-dup"})
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name Register did not panic")
		}
	}()
	Register(fakeEngine{name: ""})
}

func TestLookupUnknownListsRegistered(t *testing.T) {
	Register(fakeEngine{name: "test-known"})
	_, err := Lookup("test-absent")
	if err == nil {
		t.Fatal("Lookup of unregistered engine succeeded")
	}
	var ue *UnknownEngineError
	if !errors.As(err, &ue) {
		t.Fatalf("error is %T, want *UnknownEngineError", err)
	}
	if ue.Name != "test-absent" {
		t.Fatalf("UnknownEngineError.Name = %q", ue.Name)
	}
	found := false
	for _, n := range ue.Known {
		if n == "test-known" {
			found = true
		}
	}
	if !found {
		t.Fatalf("UnknownEngineError.Known %v missing test-known", ue.Known)
	}
	if !strings.Contains(err.Error(), "test-known") {
		t.Fatalf("error message %q does not list registered engines", err.Error())
	}
}

func TestEnginesSorted(t *testing.T) {
	Register(fakeEngine{name: "test-zz"})
	Register(fakeEngine{name: "test-aa"})
	names := Engines()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Engines() not sorted: %v", names)
	}
	// The returned slice is a copy; mutating it must not corrupt the
	// registry.
	names[0] = "mutated"
	if got := Engines(); got[0] == "mutated" {
		t.Fatal("Engines() returned a shared slice")
	}
}
