package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// registry is the package-level engine registry. Engines register
// themselves from their package's init (like database/sql drivers), so
// importing an engine package is all it takes to serve it.
var registry = struct {
	sync.RWMutex
	m map[string]Engine
}{m: make(map[string]Engine)}

// Register adds an engine under its Name. It panics on an empty name or
// a duplicate registration: both are programmer errors that should fail
// at init time, not surface as runtime lookups.
func Register(e Engine) {
	name := e.Name()
	if name == "" {
		panic("engine: Register with empty name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("engine: Register called twice for %q", name))
	}
	registry.m[name] = e
}

// Lookup returns the engine registered under name, or an
// *UnknownEngineError listing the registered names.
func Lookup(name string) (Engine, error) {
	registry.RLock()
	e, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, &UnknownEngineError{Name: name, Known: Engines()}
	}
	return e, nil
}

// Engines returns the registered engine names, sorted.
func Engines() []string {
	registry.RLock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	registry.RUnlock()
	sort.Strings(names)
	return names
}

// UnknownEngineError reports a job spec naming an engine that is not
// registered. Its message lists the registered names, so an HTTP 400
// body tells the client what the server actually serves.
type UnknownEngineError struct {
	// Name is the engine the spec asked for.
	Name string
	// Known are the registered engine names at lookup time, sorted.
	Known []string
}

func (e *UnknownEngineError) Error() string {
	if len(e.Known) == 0 {
		return fmt.Sprintf("engine: unknown engine %q (no engines registered)", e.Name)
	}
	return fmt.Sprintf("engine: unknown engine %q (registered: %s)", e.Name, strings.Join(e.Known, ", "))
}
