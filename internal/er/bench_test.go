package er

import (
	"math/rand/v2"
	"testing"
)

func BenchmarkExactSmall(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 7))
	pm, model := randomInstance(rng, 10, 8)
	idx := idxUpTo(pm.NumPaths())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exact(pm, model, idx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProbBoundOracle(b *testing.B) {
	rng := rand.New(rand.NewPCG(8, 8))
	pm, model := randomInstance(rng, 60, 120)
	idx := idxUpTo(pm.NumPaths())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pb := NewProbBoundInc(pm, model)
		for _, q := range idx {
			pb.Add(q)
		}
		if pb.Value() <= 0 {
			b.Fatal("degenerate bound")
		}
	}
}

func BenchmarkMonteCarloOracle(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 9))
	pm, model := randomInstance(rng, 60, 120)
	idx := idxUpTo(pm.NumPaths())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc := NewMonteCarloInc(pm, model, 50, rand.New(rand.NewPCG(uint64(i), 3)))
		for _, q := range idx {
			mc.Add(q)
		}
		if mc.Value() <= 0 {
			b.Fatal("degenerate estimate")
		}
	}
}

func BenchmarkMonteCarloBatch(b *testing.B) {
	rng := rand.New(rand.NewPCG(10, 10))
	pm, model := randomInstance(rng, 60, 120)
	idx := idxUpTo(pm.NumPaths())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if MonteCarlo(pm, model, idx, 200, rand.New(rand.NewPCG(uint64(i), 4))) <= 0 {
			b.Fatal("degenerate estimate")
		}
	}
}

func BenchmarkThetaBoundOracle(b *testing.B) {
	rng := rand.New(rand.NewPCG(11, 11))
	pm, _ := randomInstance(rng, 60, 120)
	theta := make([]float64, pm.NumPaths())
	for i := range theta {
		theta[i] = rng.Float64()
	}
	idx := idxUpTo(pm.NumPaths())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb := NewThetaBoundInc(pm, theta)
		for _, q := range idx {
			tb.Add(q)
		}
	}
}
