package er

import (
	"math/rand/v2"
	"testing"
)

func BenchmarkExactSmall(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 7))
	pm, model := randomInstance(rng, 10, 8)
	idx := idxUpTo(pm.NumPaths())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exact(pm, model, idx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProbBoundOracle(b *testing.B) {
	rng := rand.New(rand.NewPCG(8, 8))
	pm, model := randomInstance(rng, 60, 120)
	idx := idxUpTo(pm.NumPaths())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pb := NewProbBoundInc(pm, model)
		for _, q := range idx {
			pb.Add(q)
		}
		if pb.Value() <= 0 {
			b.Fatal("degenerate bound")
		}
	}
}

func BenchmarkMonteCarloOracle(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 9))
	pm, model := randomInstance(rng, 60, 120)
	idx := idxUpTo(pm.NumPaths())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc := NewMonteCarloInc(pm, model, 50, rand.New(rand.NewPCG(uint64(i), 3)))
		for _, q := range idx {
			mc.Add(q)
		}
		if mc.Value() <= 0 {
			b.Fatal("degenerate estimate")
		}
	}
}

func BenchmarkMonteCarloBatch(b *testing.B) {
	rng := rand.New(rand.NewPCG(10, 10))
	pm, model := randomInstance(rng, 60, 120)
	idx := idxUpTo(pm.NumPaths())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if MonteCarlo(pm, model, idx, 200, rand.New(rand.NewPCG(uint64(i), 4))) <= 0 {
			b.Fatal("degenerate estimate")
		}
	}
}

// BenchmarkMonteCarlo and BenchmarkMonteCarloSerial time the bit-packed
// kernel against the scenario-major reference on a Rocketfuel topology at a
// 1000-scenario panel. cmd/benchregress pairs them into the speedup
// recorded in BENCH_selection.json; the "panel" metric carries the scenario
// count so scenario throughput can be derived from ns/op.
func BenchmarkMonteCarlo(b *testing.B) {
	pm, model := rocketfuelInstance(b, 150, 1)
	idx := idxUpTo(pm.NumPaths())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if MonteCarlo(pm, model, idx, 1000, rand.New(rand.NewPCG(uint64(i), 4))) <= 0 {
			b.Fatal("degenerate estimate")
		}
	}
	b.ReportMetric(1000, "panel") // after the loop: ResetTimer clears metrics
}

func BenchmarkMonteCarloSerial(b *testing.B) {
	pm, model := rocketfuelInstance(b, 150, 1)
	idx := idxUpTo(pm.NumPaths())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if MonteCarloSerial(pm, model, idx, 1000, rand.New(rand.NewPCG(uint64(i), 4))) <= 0 {
			b.Fatal("degenerate estimate")
		}
	}
	b.ReportMetric(1000, "panel")
}

// Incremental-oracle benchmarks at the same panel scale: a full greedy-like
// sweep (Gain every candidate, Add the best) repeated to a fixed depth.
func benchOracleSweep(b *testing.B, oracle func() Incremental, paths int) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc := oracle()
		for depth := 0; depth < 8; depth++ {
			best, bestGain := -1, -1.0
			for q := 0; q < paths; q++ {
				if g := mc.Gain(q); g > bestGain {
					best, bestGain = q, g
				}
			}
			mc.Add(best)
		}
		if mc.Value() <= 0 {
			b.Fatal("degenerate estimate")
		}
	}
	b.ReportMetric(1000, "panel")
}

func BenchmarkMonteCarloInc(b *testing.B) {
	pm, model := rocketfuelInstance(b, 150, 2)
	benchOracleSweep(b, func() Incremental {
		return NewMonteCarloInc(pm, model, 1000, rand.New(rand.NewPCG(9, 9)))
	}, pm.NumPaths())
}

func BenchmarkMonteCarloIncSerial(b *testing.B) {
	pm, model := rocketfuelInstance(b, 150, 2)
	benchOracleSweep(b, func() Incremental {
		return NewMonteCarloIncSerial(pm, model, 1000, rand.New(rand.NewPCG(9, 9)))
	}, pm.NumPaths())
}

// The same sweep on the GF(2) kernel and its serial reference: the packed
// XOR probes against what per-scenario RowBasis walks cost on the same
// field.
func BenchmarkMonteCarloIncGF2(b *testing.B) {
	pm, model := rocketfuelInstance(b, 150, 2)
	benchOracleSweep(b, func() Incremental {
		return NewMonteCarloIncKernel(pm, model, 1000, rand.New(rand.NewPCG(9, 9)), KernelGF2)
	}, pm.NumPaths())
}

func BenchmarkMonteCarloIncGF2Serial(b *testing.B) {
	pm, model := rocketfuelInstance(b, 150, 2)
	benchOracleSweep(b, func() Incremental {
		return NewMonteCarloIncSerialKernel(pm, model, 1000, rand.New(rand.NewPCG(9, 9)), KernelGF2)
	}, pm.NumPaths())
}

func BenchmarkThetaBoundOracle(b *testing.B) {
	rng := rand.New(rand.NewPCG(11, 11))
	pm, _ := randomInstance(rng, 60, 120)
	theta := make([]float64, pm.NumPaths())
	for i := range theta {
		theta[i] = rng.Float64()
	}
	idx := idxUpTo(pm.NumPaths())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb := NewThetaBoundInc(pm, theta)
		for _, q := range idx {
			tb.Add(q)
		}
	}
}
