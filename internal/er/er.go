// Package er implements the paper's robustness objective: the Expected
// Rank (ER) of a set of probing paths under probabilistic link failures
// (Definition 1), together with the three evaluation strategies the paper
// discusses:
//
//   - Exact enumeration of failure scenarios (exponential; for small
//     instances and ground truth in tests),
//   - Monte Carlo estimation over sampled scenarios (the MonteRoMe
//     oracle),
//   - the efficient probabilistic upper bound of Section IV-C, Eq. 7 (the
//     ProbRoMe oracle), built on an incremental basis that exposes each
//     dependent path's representation support R_q,
//   - the independence-assumption variant of the bound, Eq. 11, used by
//     the LSR learner where only path-level availabilities θ are known.
//
// All incremental oracles share the Incremental interface consumed by the
// RoMe greedy in package selection. Their Gain functions are non-increasing
// in the growing selected set, which is what makes lazy greedy evaluation
// exact.
package er

import (
	"robusttomo/internal/failure"
	"robusttomo/internal/tomo"
)

// Incremental is an ER oracle that supports the greedy selection loop:
// marginal gains against the currently committed set, followed by commits.
type Incremental interface {
	// Gain returns the oracle's estimate of ER(R ∪ {q}) − ER(R) for the
	// currently committed set R.
	Gain(path int) float64
	// Add commits path q into R.
	Add(path int)
	// Value returns the oracle's estimate of ER(R).
	Value() float64
}

// BatchGainer is an optional extension of Incremental for oracles that can
// evaluate several candidates' marginal gains concurrently. GainBatch must
// store exactly Gain(paths[i]) into out[i] (same committed set, identical
// bits) — the RoMe greedy relies on that equivalence when it fans the
// initial sweep and lazy stale-refresh waves out over a batch.
type BatchGainer interface {
	Incremental
	GainBatch(paths []int, out []float64)
}

// InitialGainer is an optional extension of Incremental for oracles that
// can produce every candidate's marginal gain against the *empty* committed
// set in one O(n) pass, without touching the elimination basis. The greedy's
// initial sweep uses it to skip n basis probes. InitialGains must store
// exactly Gain(i) into out[i]; it reports false (leaving out untouched)
// once anything has been committed, in which case callers fall back to
// per-path Gain.
type InitialGainer interface {
	Incremental
	InitialGains(out []float64) bool
}

// ExpectedAvailability returns EA(q) = Π_{l∈q} (1 − p_l) for candidate
// path q (Eq. 3 of the paper).
func ExpectedAvailability(pm *tomo.PathMatrix, model *failure.Model, path int) float64 {
	return model.PathAvailability(pm.EdgesOf(path))
}

// Availabilities returns EA for every candidate path.
func Availabilities(pm *tomo.PathMatrix, model *failure.Model) []float64 {
	out := make([]float64, pm.NumPaths())
	for i := range out {
		out[i] = ExpectedAvailability(pm, model, i)
	}
	return out
}
