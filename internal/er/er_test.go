package er

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"robusttomo/internal/failure"
	"robusttomo/internal/graph"
	"robusttomo/internal/routing"
	"robusttomo/internal/stats"
	"robusttomo/internal/tomo"
)

// synthPath builds a candidate path from explicit link IDs.
func synthPath(links ...int) routing.Path {
	edges := make([]graph.EdgeID, len(links))
	for i, l := range links {
		edges[i] = graph.EdgeID(l)
	}
	return routing.Path{Src: 0, Dst: 1, Edges: edges}
}

// randomInstance builds a random path matrix and failure model for
// property tests: nLinks links, nPaths paths of 1-4 random distinct links.
func randomInstance(rng *rand.Rand, nLinks, nPaths int) (*tomo.PathMatrix, *failure.Model) {
	paths := make([]routing.Path, nPaths)
	for i := range paths {
		hops := 1 + rng.IntN(4)
		if hops > nLinks {
			hops = nLinks
		}
		sel := stats.SampleWithoutReplacement(rng, nLinks, hops)
		paths[i] = synthPath(sel...)
	}
	pm, err := tomo.NewPathMatrix(paths, nLinks)
	if err != nil {
		panic(err)
	}
	probs := make([]float64, nLinks)
	for i := range probs {
		probs[i] = rng.Float64() * 0.5
	}
	model, err := failure.FromProbabilities(probs)
	if err != nil {
		panic(err)
	}
	return pm, model
}

func idxUpTo(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func TestExpectedAvailability(t *testing.T) {
	pm, err := tomo.NewPathMatrix([]routing.Path{synthPath(0, 1)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	model, _ := failure.FromProbabilities([]float64{0.1, 0.2, 0.9})
	got := ExpectedAvailability(pm, model, 0)
	want := 0.9 * 0.8
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("EA = %v, want %v", got, want)
	}
	all := Availabilities(pm, model)
	if len(all) != 1 || all[0] != got {
		t.Fatalf("Availabilities = %v", all)
	}
}

func TestExactSinglePath(t *testing.T) {
	// ER of one path = its EA (rank 1 when available, 0 otherwise).
	pm, _ := tomo.NewPathMatrix([]routing.Path{synthPath(0, 1)}, 2)
	model, _ := failure.FromProbabilities([]float64{0.3, 0.4})
	got, err := Exact(pm, model, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.7 * 0.6
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Exact = %v, want %v", got, want)
	}
}

func TestExactTwoDisjointPaths(t *testing.T) {
	// Independent, disjoint paths: ER = EA1 + EA2 (modularity, Lemma 8).
	pm, _ := tomo.NewPathMatrix([]routing.Path{synthPath(0), synthPath(1)}, 2)
	model, _ := failure.FromProbabilities([]float64{0.25, 0.5})
	got, err := Exact(pm, model, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.75 + 0.5
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Exact = %v, want %v", got, want)
	}
}

func TestExactDuplicatePaths(t *testing.T) {
	// Two copies of the same single-link path: rank is 1 unless the link
	// fails, so ER = 1 − p.
	pm, _ := tomo.NewPathMatrix([]routing.Path{synthPath(0), synthPath(0)}, 1)
	model, _ := failure.FromProbabilities([]float64{0.3})
	got, err := Exact(pm, model, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("Exact = %v, want 0.7", got)
	}
}

func TestExactEmptyAndLimit(t *testing.T) {
	pm, _ := tomo.NewPathMatrix([]routing.Path{synthPath(0)}, 1)
	model, _ := failure.FromProbabilities([]float64{0.1})
	if got, err := Exact(pm, model, nil); err != nil || got != 0 {
		t.Fatalf("Exact(∅) = %v, %v", got, err)
	}
	// Exceed MaxExactLinks.
	links := MaxExactLinks + 1
	lp := make([]int, links)
	for i := range lp {
		lp[i] = i
	}
	pmBig, _ := tomo.NewPathMatrix([]routing.Path{synthPath(lp...)}, links)
	probs := make([]float64, links)
	modelBig, _ := failure.FromProbabilities(probs)
	if _, err := Exact(pmBig, modelBig, []int{0}); err == nil {
		t.Fatal("exact over too many links accepted")
	}
}

// Property: ER is monotone non-decreasing: ER(R) ≤ ER(R ∪ {q}).
func TestExactMonotone(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		pm, model := randomInstance(rng, 6, 5)
		base := idxUpTo(4)
		small, err := Exact(pm, model, base)
		if err != nil {
			return false
		}
		big, err := Exact(pm, model, append(base, 4))
		if err != nil {
			return false
		}
		return big >= small-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property (Theorem 5): ER is submodular. For random A ⊆ B and q:
// ER(A+q) − ER(A) ≥ ER(B+q) − ER(B).
func TestExactSubmodular(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		pm, model := randomInstance(rng, 6, 6)
		a := []int{0, 1}
		b := []int{0, 1, 2, 3, 4}
		q := 5
		erA, err1 := Exact(pm, model, a)
		erAq, err2 := Exact(pm, model, append(append([]int{}, a...), q))
		erB, err3 := Exact(pm, model, b)
		erBq, err4 := Exact(pm, model, append(append([]int{}, b...), q))
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return (erAq-erA)-(erBq-erB) >= -1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property (Lemma 8): for linearly independent sets, ER is modular:
// ER(R) = Σ EA(q).
func TestExactModularOnIndependentSets(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		pm, model := randomInstance(rng, 8, 6)
		// Greedily select an independent subset.
		ind := pm.SelectBasisIndices(idxUpTo(pm.NumPaths()))
		exact, err := Exact(pm, model, ind)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, i := range ind {
			sum += ExpectedAvailability(pm, model, i)
		}
		return math.Abs(exact-sum) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property (Eq. 7): the probabilistic bound upper-bounds exact ER and both
// agree on independent sets.
func TestBoundIsUpperBound(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 4))
		pm, model := randomInstance(rng, 7, 7)
		idx := idxUpTo(pm.NumPaths())
		exact, err := Exact(pm, model, idx)
		if err != nil {
			return false
		}
		bound := Bound(pm, model, idx)
		if bound < exact-1e-9 {
			return false
		}
		ind := pm.SelectBasisIndices(idx)
		exactInd, err := Exact(pm, model, ind)
		if err != nil {
			return false
		}
		boundInd := Bound(pm, model, ind)
		return math.Abs(exactInd-boundInd) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundDependentGainFormula(t *testing.T) {
	// Basis: paths {l0}, {l1}. Dependent: {l0,l1}? No — that's their sum
	// only if rows add. {l0}+{l1} = [1 1] which IS path {l0,l1}. So q with
	// links {0,1} depends on both members, and L_Rq = {} (all support
	// links are on q). Then E[D_q] = EA(q)·(1−1) = 0.
	pm, _ := tomo.NewPathMatrix([]routing.Path{synthPath(0), synthPath(1), synthPath(0, 1)}, 2)
	model, _ := failure.FromProbabilities([]float64{0.2, 0.4})
	pb := NewProbBoundInc(pm, model)
	pb.Add(0)
	pb.Add(1)
	if g := pb.Gain(2); g != 0 {
		t.Fatalf("gain of fully covered dependent path = %v, want 0", g)
	}
	pb.Add(2)
	want := 0.8 + 0.6
	if math.Abs(pb.Value()-want) > 1e-12 {
		t.Fatalf("Value = %v, want %v", pb.Value(), want)
	}
}

func TestBoundDependentGainWithOffPathLinks(t *testing.T) {
	// Paths: a={l0,l2}, b={l1,l2}, q={l0,l1} = a + b − 2·l2? Rows:
	// a=[1 0 1], b=[0 1 1], q=[1 1 0]. q = a + b − 2?? a+b = [1 1 2] ≠ q.
	// Use q = a − b + ... pick q=[1 -1 0]: not a 0/1 path. Instead craft
	// dependence with shared link: a={l0}, b={l0,l1}; q={l1} = b − a.
	// L_Rq = {l0} (on support paths, not on q).
	pm, _ := tomo.NewPathMatrix([]routing.Path{synthPath(0), synthPath(0, 1), synthPath(1)}, 2)
	model, _ := failure.FromProbabilities([]float64{0.25, 0.5})
	pb := NewProbBoundInc(pm, model)
	pb.Add(0)
	pb.Add(1)
	got := pb.Gain(2)
	// E[D_q] = EA(q)·(1 − (1−p0)) = 0.5·0.25.
	want := 0.5 * 0.25
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("dependent gain = %v, want %v", got, want)
	}
}

func TestMonteCarloConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	pm, model := randomInstance(rng, 6, 6)
	idx := idxUpTo(pm.NumPaths())
	exact, err := Exact(pm, model, idx)
	if err != nil {
		t.Fatal(err)
	}
	mc := MonteCarlo(pm, model, idx, 20000, rand.New(rand.NewPCG(1, 1)))
	if math.Abs(mc-exact) > 0.05*float64(pm.NumPaths()) {
		t.Fatalf("MC = %v, exact = %v", mc, exact)
	}
}

func TestMonteCarloDeterministicInSeed(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	pm, model := randomInstance(rng, 6, 5)
	idx := idxUpTo(5)
	a := MonteCarlo(pm, model, idx, 200, rand.New(rand.NewPCG(3, 3)))
	b := MonteCarlo(pm, model, idx, 200, rand.New(rand.NewPCG(3, 3)))
	if a != b {
		t.Fatalf("same seed gave %v and %v", a, b)
	}
	if MonteCarlo(pm, model, nil, 200, rng) != 0 {
		t.Fatal("empty selection should be 0")
	}
}

func TestMonteCarloIncMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	pm, model := randomInstance(rng, 8, 8)
	mcRng := rand.New(rand.NewPCG(5, 5))
	inc := NewMonteCarloInc(pm, model, 300, mcRng)
	if inc.Runs() != 300 {
		t.Fatalf("Runs = %d", inc.Runs())
	}
	// Adding all paths: Value must equal the average rank over the same
	// scenario panel (recompute directly).
	for i := 0; i < pm.NumPaths(); i++ {
		gain := inc.Gain(i)
		before := inc.Value()
		inc.Add(i)
		if math.Abs(inc.Value()-before-gain) > 1e-12 {
			t.Fatalf("Add delta %v != Gain %v", inc.Value()-before, gain)
		}
	}
	// Value must be close to an independent MC estimate of the same set.
	batch := MonteCarlo(pm, model, idxUpTo(pm.NumPaths()), 20000, rand.New(rand.NewPCG(6, 6)))
	if math.Abs(inc.Value()-batch) > 0.35 {
		t.Fatalf("inc value %v vs batch %v", inc.Value(), batch)
	}
}

// Property: ProbBound incremental gains are non-increasing as the committed
// set grows (required for exact lazy greedy).
func TestProbBoundGainsNonIncreasing(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 10))
		pm, model := randomInstance(rng, 8, 8)
		pb := NewProbBoundInc(pm, model)
		last := pb.Gain(7)
		for i := 0; i < 7; i++ {
			pb.Add(i)
			g := pb.Gain(7)
			if g > last+1e-9 {
				return false
			}
			last = g
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestThetaBoundAgainstExactTheta(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		pm, _ := randomInstance(rng, 7, 6)
		theta := make([]float64, pm.NumPaths())
		for i := range theta {
			theta[i] = rng.Float64()
		}
		idx := idxUpTo(pm.NumPaths())
		exact := ExactTheta(pm, theta, idx)
		tb := NewThetaBoundInc(pm, theta)
		for _, i := range idx {
			tb.Add(i)
		}
		// Upper bound property under path independence.
		return tb.Value() >= exact-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestThetaBoundClampsInput(t *testing.T) {
	pm, _ := tomo.NewPathMatrix([]routing.Path{synthPath(0)}, 1)
	tb := NewThetaBoundInc(pm, []float64{1.7})
	if g := tb.Gain(0); g != 1 {
		t.Fatalf("clamped gain = %v, want 1", g)
	}
	tb2 := NewThetaBoundInc(pm, []float64{-0.3})
	if g := tb2.Gain(0); g != 0 {
		t.Fatalf("clamped gain = %v, want 0", g)
	}
}

func TestExactThetaSmall(t *testing.T) {
	// Two disjoint single-link paths with θ = (0.5, 0.25):
	// ER = 0.5 + 0.25 (independent rows, modular).
	pm, _ := tomo.NewPathMatrix([]routing.Path{synthPath(0), synthPath(1)}, 2)
	got := ExactTheta(pm, []float64{0.5, 0.25}, []int{0, 1})
	if math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("ExactTheta = %v, want 0.75", got)
	}
	if ExactTheta(pm, []float64{0.5, 0.25}, nil) != 0 {
		t.Fatal("empty set should be 0")
	}
	// Duplicate rows: ER = P(at least one up) = 1 − (1−θ1)(1−θ2).
	pmDup, _ := tomo.NewPathMatrix([]routing.Path{synthPath(0), synthPath(0)}, 1)
	got = ExactTheta(pmDup, []float64{0.5, 0.5}, []int{0, 1})
	if math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("ExactTheta dup = %v, want 0.75", got)
	}
}

func TestSampleTheta(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 12))
	up := 0
	for i := 0; i < 5000; i++ {
		s := SampleTheta([]float64{0.7}, rng)
		if s[0] {
			up++
		}
	}
	if f := float64(up) / 5000; math.Abs(f-0.7) > 0.03 {
		t.Fatalf("sampled frequency %v, want ~0.7", f)
	}
}
