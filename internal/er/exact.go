package er

import (
	"fmt"

	"robusttomo/internal/failure"
	"robusttomo/internal/tomo"
)

// MaxExactLinks caps the number of distinct links Exact will enumerate
// over; beyond it the 2^n scenario space is computationally out of reach,
// matching the paper's observation that exact ER is infeasible at scale.
const MaxExactLinks = 24

// Exact computes ER(R) exactly by enumerating failure sub-scenarios over
// the links actually used by the selected paths. Links outside the
// selection cannot change any path's availability, so the sum over the full
// {0,1}^|E| space collapses to the used-link subspace, which keeps small
// instances tractable. It returns an error when more than MaxExactLinks
// distinct links are involved.
func Exact(pm *tomo.PathMatrix, model *failure.Model, idx []int) (float64, error) {
	if len(idx) == 0 {
		return 0, nil
	}
	// Collect distinct links used by the selection.
	usedSet := make(map[int]bool)
	for _, i := range idx {
		for _, l := range pm.EdgesOf(i) {
			usedSet[l] = true
		}
	}
	used := make([]int, 0, len(usedSet))
	for l := range usedSet {
		used = append(used, l)
	}
	if len(used) > MaxExactLinks {
		return 0, fmt.Errorf("er: exact ER over %d links exceeds limit %d", len(used), MaxExactLinks)
	}

	failed := make([]bool, pm.NumLinks())
	sc := failure.Scenario{Failed: failed}
	total := 0.0
	n := len(used)
	for mask := 0; mask < 1<<n; mask++ {
		prob := 1.0
		for b, l := range used {
			if mask&(1<<b) != 0 {
				failed[l] = true
				prob *= model.Prob(l)
			} else {
				failed[l] = false
				prob *= 1 - model.Prob(l)
			}
		}
		if prob == 0 {
			continue
		}
		total += float64(pm.RankUnder(idx, sc)) * prob
	}
	return total, nil
}
