package er

import (
	"math/rand/v2"
	"sync"
	"testing"

	"robusttomo/internal/stats"
)

// The GF(2) kernels must be bit-identical to their own serial references —
// same field, same panel, same verdicts — exactly like the float64 pairing
// in kernel_test.go.
func TestMonteCarloGF2MatchesSerial(t *testing.T) {
	for _, seed := range []uint64{3, 9} {
		pm, model := rocketfuelInstance(t, 80, seed)
		idx := idxUpTo(pm.NumPaths())
		for _, n := range []int{1, 64, 200} {
			kernel := MonteCarloKernel(pm, model, idx, n, rand.New(rand.NewPCG(seed, 5)), KernelGF2)
			serial := MonteCarloSerialKernel(pm, model, idx, n, rand.New(rand.NewPCG(seed, 5)), KernelGF2)
			if kernel != serial {
				t.Fatalf("seed %d n=%d: GF2 MonteCarlo = %v, serial %v", seed, n, kernel, serial)
			}
		}
	}
}

func TestMonteCarloIncGF2MatchesSerial(t *testing.T) {
	for _, seed := range []uint64{2, 42} {
		pm, model := rocketfuelInstance(t, 120, seed)
		runs := 130
		kernel := NewMonteCarloIncKernel(pm, model, runs, rand.New(rand.NewPCG(seed, 77)), KernelGF2)
		serial := NewMonteCarloIncSerialKernel(pm, model, runs, rand.New(rand.NewPCG(seed, 77)), KernelGF2)
		if kernel.Kernel() != KernelGF2 {
			t.Fatalf("Kernel() = %v, want %v", kernel.Kernel(), KernelGF2)
		}
		n := pm.NumPaths()
		all := idxUpTo(n)
		batch := make([]float64, n)
		pick := stats.NewRNG(seed, 99)
		for round := 0; round < 8; round++ {
			kernel.GainBatch(all, batch)
			for q := 0; q < n; q++ {
				want := serial.Gain(q)
				if got := kernel.Gain(q); got != want {
					t.Fatalf("seed %d round %d: GF2 Gain(%d) = %v, serial %v", seed, round, q, got, want)
				}
				if batch[q] != want {
					t.Fatalf("seed %d round %d: GF2 GainBatch[%d] = %v, serial %v", seed, round, q, batch[q], want)
				}
			}
			q := pick.IntN(n)
			kernel.Add(q)
			serial.Add(q)
			if kernel.Value() != serial.Value() {
				t.Fatalf("seed %d round %d: GF2 Value = %v, serial %v", seed, round, kernel.Value(), serial.Value())
			}
		}
	}
}

// Per scenario the GF(2) rank is at most the rational rank (same rows, the
// parity map only loses independence), so the estimates order pointwise —
// and on tree-like shortest-path routing the gap is strict: even-sized path
// families through shared hubs cancel mod 2 (DESIGN.md §13). The AS1755
// instance must exhibit that strict gap, or the float64-default decision
// documented on Kernel is no longer load-bearing.
func TestMonteCarloGF2BelowFloat64(t *testing.T) {
	pm, model := rocketfuelInstance(t, 150, 2)
	idx := idxUpTo(pm.NumPaths())
	f64 := MonteCarloKernel(pm, model, idx, 200, rand.New(rand.NewPCG(1, 5)), KernelFloat64)
	gf2 := MonteCarloKernel(pm, model, idx, 200, rand.New(rand.NewPCG(1, 5)), KernelGF2)
	if gf2 > f64 {
		t.Fatalf("GF2 estimate %v exceeds float64 %v on the same panel", gf2, f64)
	}
	if gf2 == f64 {
		t.Fatalf("expected a strict GF(2) rank deficit on AS1755 shortest paths, got %v on both kernels", gf2)
	}
}

// The steady state of MonteCarloInc — Gain, GainBatch and the Add of an
// already-committed path (no class splits) — must allocate nothing, on both
// kernels. Splitting Adds may allocate (new class mask + basis clone);
// everything else runs off warm slabs.
func TestMonteCarloIncSteadyStateZeroAlloc(t *testing.T) {
	pm, model := rocketfuelInstance(t, 120, 2)
	all := idxUpTo(pm.NumPaths())
	out := make([]float64, len(all))
	for _, kernel := range []Kernel{KernelGF2, KernelFloat64} {
		mc := NewMonteCarloIncKernel(pm, model, 256, rand.New(rand.NewPCG(4, 4)), kernel)
		// Warm up: commit a few rows (splits allocate here, not later) and
		// touch every code path once.
		for q := 0; q < 6; q++ {
			mc.Add(q * 7)
		}
		mc.GainBatch(all, out)
		if avg := testing.AllocsPerRun(100, func() {
			mc.Gain(11)
		}); avg != 0 {
			t.Errorf("kernel %v: Gain allocates %.2f allocs/op, want 0", kernel, avg)
		}
		if avg := testing.AllocsPerRun(100, func() {
			mc.GainBatch(all, out)
		}); avg != 0 {
			t.Errorf("kernel %v: GainBatch allocates %.2f allocs/op, want 0", kernel, avg)
		}
		if avg := testing.AllocsPerRun(100, func() {
			mc.Add(7) // already committed: every class is homogeneous, no split
		}); avg != 0 {
			t.Errorf("kernel %v: splitless Add allocates %.2f allocs/op, want 0", kernel, avg)
		}
	}
}

// Race soak for the pooled per-worker state: concurrent MonteCarlo calls on
// both kernels share mcWorkerPool and the path matrix's packed rows. Run
// under -race in CI; any sharing bug in the pool, the packed-row build, or
// the scenario panels shows up here.
func TestMonteCarloConcurrentCallsRace(t *testing.T) {
	pm, model := rocketfuelInstance(t, 100, 5)
	idx := idxUpTo(pm.NumPaths())
	var wg sync.WaitGroup
	results := make([]float64, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			kernel := KernelFloat64
			if g%2 == 1 {
				kernel = KernelGF2
			}
			results[g] = MonteCarloKernel(pm, model, idx, 300, rand.New(rand.NewPCG(uint64(g/2), 6)), kernel)
		}(g)
	}
	wg.Wait()
	for g := 0; g < 4; g++ {
		// Same seed and kernel from different goroutines must agree: pooled
		// worker state carries no result-bearing residue between calls.
		want := MonteCarloKernel(pm, model, idx, 300, rand.New(rand.NewPCG(uint64(g/2), 6)), KernelFloat64)
		if g%2 == 0 && results[g] != want {
			t.Fatalf("goroutine %d: concurrent MonteCarlo %v, sequential %v", g, results[g], want)
		}
	}
}
