package er

import (
	"math/rand/v2"
	"testing"

	"robusttomo/internal/failure"
	"robusttomo/internal/graph"
	"robusttomo/internal/routing"
	"robusttomo/internal/stats"
	"robusttomo/internal/tomo"
	"robusttomo/internal/topo"
)

// rocketfuelInstance materializes a seeded monitor placement on the AS1755
// Rocketfuel topology — the paper-scale workload class the kernel is built
// for — and returns its path matrix and failure model.
func rocketfuelInstance(tb testing.TB, candidates int, seed uint64) (*tomo.PathMatrix, *failure.Model) {
	tb.Helper()
	tp, err := topo.Preset(topo.AS1755)
	if err != nil {
		tb.Fatal(err)
	}
	k := 1
	for k*k < candidates {
		k++
	}
	pool := tp.Access
	if len(pool) < 2*k {
		pool = append(append([]graph.NodeID{}, tp.Access...), tp.Core...)
	}
	picked := stats.SampleWithoutReplacement(stats.NewRNG(seed, 0xF0), len(pool), 2*k)
	sources := make([]graph.NodeID, k)
	dests := make([]graph.NodeID, k)
	for i := 0; i < k; i++ {
		sources[i] = pool[picked[i]]
		dests[i] = pool[picked[k+i]]
	}
	paths, err := routing.MonitorPairs(tp.Graph, sources, dests)
	if err != nil {
		tb.Fatal(err)
	}
	if len(paths) > candidates {
		paths = paths[:candidates]
	}
	pm, err := tomo.NewPathMatrix(paths, tp.Graph.NumEdges())
	if err != nil {
		tb.Fatal(err)
	}
	model, err := failure.NewModel(failure.Config{Links: tp.Graph.NumEdges(), ExpectedFailures: 3, Seed: seed})
	if err != nil {
		tb.Fatal(err)
	}
	return pm, model
}

// The bit-packed parallel oracle must be bit-identical to the serial
// reference: every Gain, every Add delta and the running Value, across a
// growing committed set on Rocketfuel-subgraph instances.
func TestMonteCarloIncMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{1, 2, 42} {
		pm, model := rocketfuelInstance(t, 120, seed)
		runs := 130 // straddles a word boundary (3 words, 2 bits of tail)
		kernel := NewMonteCarloInc(pm, model, runs, rand.New(rand.NewPCG(seed, 77)))
		serial := NewMonteCarloIncSerial(pm, model, runs, rand.New(rand.NewPCG(seed, 77)))
		if kernel.Runs() != runs {
			t.Fatalf("Runs = %d, want %d", kernel.Runs(), runs)
		}

		n := pm.NumPaths()
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		batch := make([]float64, n)
		pick := stats.NewRNG(seed, 99)
		for round := 0; round < 8; round++ {
			kernel.GainBatch(all, batch)
			for q := 0; q < n; q++ {
				want := serial.Gain(q)
				if got := kernel.Gain(q); got != want {
					t.Fatalf("seed %d round %d: Gain(%d) = %v, serial %v", seed, round, q, got, want)
				}
				if batch[q] != want {
					t.Fatalf("seed %d round %d: GainBatch[%d] = %v, serial %v", seed, round, q, batch[q], want)
				}
			}
			q := pick.IntN(n)
			kernel.Add(q)
			serial.Add(q)
			if kernel.Value() != serial.Value() {
				t.Fatalf("seed %d round %d: Value = %v, serial %v", seed, round, kernel.Value(), serial.Value())
			}
		}
	}
}

// The batch estimator must match its serial reference exactly for the same
// rng seed: same scenario panel, same integer rank sum.
func TestMonteCarloMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{3, 9} {
		pm, model := rocketfuelInstance(t, 80, seed)
		idx := make([]int, pm.NumPaths())
		for i := range idx {
			idx[i] = i
		}
		for _, n := range []int{1, 64, 200, 500} {
			kernel := MonteCarlo(pm, model, idx, n, rand.New(rand.NewPCG(seed, 5)))
			serial := MonteCarloSerial(pm, model, idx, n, rand.New(rand.NewPCG(seed, 5)))
			if kernel != serial {
				t.Fatalf("seed %d n=%d: MonteCarlo = %v, serial %v", seed, n, kernel, serial)
			}
		}
	}
}

// Two oracles built from the same seed must evolve identically through an
// identical Gain/GainBatch/Add schedule — the determinism the sharded
// kernel guarantees via fixed ranges and integer fold order. Run under
// -race in CI to also prove the sharding is data-race-free.
func TestMonteCarloIncDeterministic(t *testing.T) {
	pm, model := rocketfuelInstance(t, 100, 7)
	run := func() (values []float64, gains []float64) {
		mc := NewMonteCarloInc(pm, model, 256, rand.New(rand.NewPCG(7, 7)))
		n := pm.NumPaths()
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		out := make([]float64, n)
		for round := 0; round < 6; round++ {
			mc.GainBatch(all, out)
			gains = append(gains, out...)
			mc.Add((round * 13) % n)
			values = append(values, mc.Value())
		}
		return values, gains
	}
	v1, g1 := run()
	v2, g2 := run()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("Value diverged at step %d: %v vs %v", i, v1[i], v2[i])
		}
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("Gain diverged at probe %d: %v vs %v", i, g1[i], g2[i])
		}
	}
}
