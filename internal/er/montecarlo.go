package er

import (
	"math/rand/v2"
	"runtime"
	"sync"

	"robusttomo/internal/failure"
	"robusttomo/internal/linalg"
	"robusttomo/internal/tomo"
)

// MonteCarlo estimates ER(R) as the average rank of the surviving rows over
// n freshly sampled failure scenarios. Scenario ranks are evaluated in
// parallel across workers; the result is deterministic in rng because the
// scenarios are drawn up front on the caller's goroutine.
func MonteCarlo(pm *tomo.PathMatrix, model failure.Sampler, idx []int, n int, rng *rand.Rand) float64 {
	if len(idx) == 0 || n <= 0 {
		return 0
	}
	scenarios := failure.SampleScenarios(model, rng, n)
	ranks := make([]int, n)

	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range next {
				ranks[s] = pm.RankUnder(idx, scenarios[s])
			}
		}()
	}
	for s := range scenarios {
		next <- s
	}
	close(next)
	wg.Wait()

	sum := 0
	for _, r := range ranks {
		sum += r
	}
	return float64(sum) / float64(n)
}

// MonteCarloInc is the Monte Carlo incremental oracle behind MonteRoMe: it
// fixes a panel of sampled failure scenarios up front and maintains, per
// scenario, an incremental basis of the surviving committed rows. The
// marginal gain of a candidate is the fraction of scenarios in which it
// both survives and increases the surviving rank — an unbiased estimate of
// the true marginal ER gain over the panel.
type MonteCarloInc struct {
	pm        *tomo.PathMatrix
	scenarios []failure.Scenario
	bases     []linalg.RowBasis
	value     float64
}

var _ Incremental = (*MonteCarloInc)(nil)

// NewMonteCarloInc draws runs scenarios from the model and returns an empty
// oracle.
func NewMonteCarloInc(pm *tomo.PathMatrix, model failure.Sampler, runs int, rng *rand.Rand) *MonteCarloInc {
	scenarios := failure.SampleScenarios(model, rng, runs)
	bases := make([]linalg.RowBasis, runs)
	for i := range bases {
		bases[i] = linalg.NewSparseBasis(pm.NumLinks())
	}
	return &MonteCarloInc{pm: pm, scenarios: scenarios, bases: bases}
}

// Runs returns the scenario panel size.
func (mc *MonteCarloInc) Runs() int { return len(mc.scenarios) }

// Gain implements Incremental.
func (mc *MonteCarloInc) Gain(path int) float64 {
	row := mc.pm.Row(path)
	hits := 0
	for s, sc := range mc.scenarios {
		if !mc.pm.Available(path, sc) {
			continue
		}
		if dep, _ := mc.bases[s].Dependent(row); !dep {
			hits++
		}
	}
	return float64(hits) / float64(len(mc.scenarios))
}

// Add implements Incremental.
func (mc *MonteCarloInc) Add(path int) {
	row := mc.pm.Row(path)
	hits := 0
	for s, sc := range mc.scenarios {
		if !mc.pm.Available(path, sc) {
			continue
		}
		if added, _, _ := mc.bases[s].Add(row); added {
			hits++
		}
	}
	mc.value += float64(hits) / float64(len(mc.scenarios))
}

// Value implements Incremental.
func (mc *MonteCarloInc) Value() float64 { return mc.value }
