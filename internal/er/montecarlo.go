package er

import (
	"math/bits"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"robusttomo/internal/failure"
	"robusttomo/internal/linalg"
	"robusttomo/internal/tomo"
)

// Kernel selects the rank arithmetic the Monte Carlo oracles run on; see
// linalg.Kernel. KernelFloat64 (the default) computes the rank over the
// rationals that the paper's ER(R) metric is defined on. KernelGF2 answers
// the Boolean survival-rank question with packed XOR words — exact over
// GF(2) and strictly faster, but a genuine lower bound on the rational
// rank: shortest-path routing produces even-sized path families whose edge
// sets cancel mod 2 (e.g. four paths through a shared hub), so on real
// topologies the GF(2) rank sits well below the ER rank (DESIGN.md §13).
// Use GF(2) for Boolean-tomography structure or as a cheap lower-bound
// probe, not as a drop-in ER replacement.
type Kernel = linalg.Kernel

const (
	KernelGF2     = linalg.KernelGF2
	KernelFloat64 = linalg.KernelFloat64
)

// mcWorker is the per-worker elimination state of the batch MonteCarlo
// estimator, recycled across calls through mcWorkerPool: a warmed basis and
// survivor scratch sized for one (links, kernel) shape.
type mcWorker struct {
	links  int
	kernel Kernel
	gf2    *linalg.GF2Basis
	f64    *linalg.SparseBasis
	surv   []int
}

var mcWorkerPool sync.Pool

// acquireMCWorker returns a pooled worker state compatible with the given
// shape, or builds a fresh one.
func acquireMCWorker(links int, kernel Kernel) *mcWorker {
	if w, ok := mcWorkerPool.Get().(*mcWorker); ok && w.links == links && w.kernel == kernel {
		return w
	}
	w := &mcWorker{links: links, kernel: kernel}
	if kernel == KernelGF2 {
		w.gf2 = linalg.NewGF2Basis(links)
	} else {
		w.f64 = linalg.NewSparseBasisRankOnly(links)
	}
	return w
}

// MonteCarlo estimates ER(R) as the average rank of the surviving rows over
// n freshly sampled failure scenarios, on the default float64 kernel.
// Scenarios are drawn up front on the caller's goroutine (so the result is
// deterministic in rng) and packed into a bit-column ScenarioSet;
// per-scenario survivor filtering is then a bit test against each path's
// survival mask instead of a per-edge walk. Ranks are evaluated in parallel
// via chunked atomic-counter dispatch — workers claim fixed index ranges,
// so there is no per-scenario channel send and the per-scenario ranks land
// in fixed slots regardless of scheduling. Per-worker bases and scratch are
// recycled across calls through a sync.Pool.
func MonteCarlo(pm *tomo.PathMatrix, model failure.Sampler, idx []int, n int, rng *rand.Rand) float64 {
	return MonteCarloKernel(pm, model, idx, n, rng, KernelFloat64)
}

// MonteCarloKernel is MonteCarlo on an explicit rank kernel.
func MonteCarloKernel(pm *tomo.PathMatrix, model failure.Sampler, idx []int, n int, rng *rand.Rand, kernel Kernel) float64 {
	if len(idx) == 0 || n <= 0 {
		return 0
	}
	set, err := failure.SampleScenarioSet(model, rng, n)
	if err != nil {
		panic("er: " + err.Error()) // only reachable with a zero-link sampler
	}
	words := set.Words()
	maskSlab := make([]uint64, len(idx)*words)
	masks := make([][]uint64, len(idx))
	var packed [][]uint64
	var rowCols [][]int
	var rowVals [][]float64
	if kernel == KernelGF2 {
		packed = make([][]uint64, len(idx))
	} else {
		rowCols = make([][]int, len(idx))
		rowVals = make([][]float64, len(idx))
	}
	for k, i := range idx {
		masks[k] = pm.SurvivalMask(set, i, maskSlab[k*words:(k+1)*words:(k+1)*words])
		if kernel == KernelGF2 {
			packed[k] = pm.PackedRow(i)
		} else {
			rowCols[k], rowVals[k] = sparsifyRow(pm.Row(i))
		}
	}

	ranks := make([]int, n)
	links := pm.NumLinks()
	workers := poolSize()
	if workers > n {
		workers = n
	}
	// Chunks several times smaller than n/workers keep stragglers bounded
	// without paying one dispatch per scenario.
	chunk := (n + workers*8 - 1) / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	runShards(workers, func(int) {
		w := acquireMCWorker(links, kernel)
		surv := w.surv[:0]
		for {
			c := int(next.Add(1)) - 1
			lo := c * chunk
			if lo >= n {
				break
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			for s := lo; s < hi; s++ {
				word, bit := s>>6, uint64(1)<<(s&63)
				surv = surv[:0]
				for k := range idx {
					if masks[k][word]&bit != 0 {
						surv = append(surv, k)
					}
				}
				if kernel == KernelGF2 {
					basis := w.gf2
					basis.Reset()
					for _, k := range surv {
						basis.AddPacked(packed[k])
						if basis.Rank() == links {
							break
						}
					}
					ranks[s] = basis.Rank()
				} else {
					basis := w.f64
					basis.Reset()
					for _, k := range surv {
						basis.AddSparse(rowCols[k], rowVals[k])
						if basis.Rank() == links {
							break
						}
					}
					ranks[s] = basis.Rank()
				}
			}
		}
		w.surv = surv
		mcWorkerPool.Put(w)
	})

	sum := 0
	for _, r := range ranks {
		sum += r
	}
	return float64(sum) / float64(n)
}

// MonteCarloInc is the Monte Carlo incremental oracle behind MonteRoMe: it
// fixes a panel of sampled failure scenarios up front and maintains, per
// scenario, an incremental basis of the surviving committed rows. The
// marginal gain of a candidate is the fraction of scenarios in which it
// both survives and increases the surviving rank — an unbiased estimate of
// the true marginal ER gain over the panel.
//
// Everything on the hot path is bit-packed. The panel lives in a
// link-major ScenarioSet and each candidate's survival mask over the panel
// is precomputed once. Scenarios are grouped into equivalence classes: two
// scenarios in which every committed row survived identically have received
// the exact same Add sequence, so one shared basis serves the whole class.
// Each class is represented by its own membership bitmask over the panel,
// so the per-class survivor count a Gain needs is a word-wise AND+popcount
// against the candidate's survival mask — no per-scenario work at all — and
// each class with survivors is probed once against its basis. Add splits
// classes along the new row's survival mask with three word-ops per class.
// On realistic failure rates a thousand-scenario panel settles into a few
// dozen classes, which cuts the rank work by orders of magnitude.
//
// Rank probes run on the configured kernel (float64 sparse elimination by
// default — the field ER(R) is defined over — or packed GF(2) XOR; see
// NewMonteCarloIncKernel and the Kernel docs for when the fields diverge).
// Gain and Add are single-goroutine over the handful of classes; GainBatch
// fans candidates out over the persistent worker pool, every gain landing
// in its fixed output slot, so results are bit-identical to the serial
// reference oracle (NewMonteCarloIncSerial, enforced by
// TestMonteCarloIncMatchesSerial) regardless of scheduling. The steady
// state — Gain, GainBatch, and splitless Add — allocates nothing: masks and
// scratch live in per-oracle slabs, class bases keep their storage across
// rows, and the batch fan-out reuses a prebound shard function
// (TestMonteCarloIncSteadyStateZeroAlloc).
type MonteCarloInc struct {
	pm     *tomo.PathMatrix
	set    *failure.ScenarioSet
	kernel Kernel
	words  int // panel words per mask

	// masks[i] is candidate i's survival mask over the panel, carved from
	// one slab. packed[i] (GF(2)) is its bit-packed incidence row, shared
	// with the matrix; rowCols[i]/rowVals[i] (float64) its sorted sparse
	// row.
	masks   [][]uint64
	packed  [][]uint64
	rowCols [][]int
	rowVals [][]float64
	value   float64

	// Scenario equivalence classes. classMask[c] is class c's membership
	// bitmask over the panel (classes partition the panel), classBits[c]
	// its popcount. Exactly one of gf2/f64 is populated, by kernel.
	classMask [][]uint64
	classBits []int32
	gf2       []*linalg.GF2Basis
	f64       []*linalg.SparseBasis

	// Per-worker probe scratch: packed reduction words for GF(2) (carved
	// from one slab), dense workspaces for float64.
	gf2Scratch [][]uint64
	wss        []*linalg.Workspace

	// GainBatch fan-out state: the shard function is prebound at
	// construction (binding a method value allocates) and parameters flow
	// through fields, so a steady-state batch performs no allocation.
	batchShardFn func(int)
	batchPaths   []int
	batchOut     []float64
	batchNext    atomic.Int64
	wg           sync.WaitGroup
}

var (
	_ Incremental = (*MonteCarloInc)(nil)
	_ BatchGainer = (*MonteCarloInc)(nil)
)

// NewMonteCarloInc draws runs scenarios from the model and returns an empty
// oracle on the default float64 kernel.
func NewMonteCarloInc(pm *tomo.PathMatrix, model failure.Sampler, runs int, rng *rand.Rand) *MonteCarloInc {
	return NewMonteCarloIncKernel(pm, model, runs, rng, KernelFloat64)
}

// NewMonteCarloIncKernel is NewMonteCarloInc on an explicit rank kernel.
// The rng drives the packed panel draw; the serial reference obtains the
// identical panel from the same seed.
func NewMonteCarloIncKernel(pm *tomo.PathMatrix, model failure.Sampler, runs int, rng *rand.Rand, kernel Kernel) *MonteCarloInc {
	set, err := failure.SampleScenarioSet(model, rng, runs)
	if err != nil {
		panic("er: " + err.Error()) // only reachable with runs <= 0 or a zero-link sampler
	}
	mc := &MonteCarloInc{pm: pm, set: set, kernel: kernel, words: set.Words()}
	links := pm.NumLinks()

	// The whole panel starts as one class over the empty basis; the empty
	// link list survives everything, so SurvivalMask(nil) is the all-ones
	// panel mask with clean padding.
	mc.classMask = [][]uint64{set.SurvivalMask(nil, nil)}
	mc.classBits = []int32{int32(runs)}
	if kernel == KernelGF2 {
		mc.gf2 = []*linalg.GF2Basis{linalg.NewGF2Basis(links)}
	} else {
		mc.f64 = []*linalg.SparseBasis{linalg.NewSparseBasisRankOnly(links)}
	}

	workers := poolSize()
	if kernel == KernelGF2 {
		rowWords := pm.PackedWords()
		slab := make([]uint64, workers*rowWords)
		mc.gf2Scratch = make([][]uint64, workers)
		for i := range mc.gf2Scratch {
			mc.gf2Scratch[i] = slab[i*rowWords : (i+1)*rowWords : (i+1)*rowWords]
		}
	} else {
		mc.wss = make([]*linalg.Workspace, workers)
		for i := range mc.wss {
			mc.wss[i] = linalg.NewWorkspace(links)
		}
	}
	mc.batchShardFn = mc.batchShard

	// Precompute every candidate's survival mask (one slab) and its row in
	// kernel-native form, chunked over paths.
	n := pm.NumPaths()
	maskSlab := make([]uint64, n*mc.words)
	mc.masks = make([][]uint64, n)
	if kernel == KernelGF2 {
		mc.packed = make([][]uint64, n)
	} else {
		mc.rowCols = make([][]int, n)
		mc.rowVals = make([][]float64, n)
	}
	var nextPath atomic.Int64
	runShards(minInt(workers, n), func(int) {
		for {
			i := int(nextPath.Add(1)) - 1
			if i >= n {
				return
			}
			mc.masks[i] = pm.SurvivalMask(set, i, maskSlab[i*mc.words:(i+1)*mc.words:(i+1)*mc.words])
			if kernel == KernelGF2 {
				mc.packed[i] = pm.PackedRow(i)
			} else {
				mc.rowCols[i], mc.rowVals[i] = sparsifyRow(pm.Row(i))
			}
		}
	})
	return mc
}

// sparsifyRow converts a dense row to sorted parallel (cols, vals) form.
func sparsifyRow(row []float64) ([]int, []float64) {
	var cols []int
	var vals []float64
	for j, x := range row {
		if x != 0 {
			cols = append(cols, j)
			vals = append(vals, x)
		}
	}
	return cols, vals
}

// Runs returns the scenario panel size.
func (mc *MonteCarloInc) Runs() int { return mc.set.N() }

// Kernel returns the rank kernel the oracle runs on.
func (mc *MonteCarloInc) Kernel() Kernel { return mc.kernel }

// Classes returns the current number of scenario equivalence classes (an
// observability hook; bounded by min(2^adds, runs)).
func (mc *MonteCarloInc) Classes() int { return len(mc.classMask) }

// andCount returns the popcount of a AND b (equal lengths).
func andCount(a, b []uint64) int {
	n := 0
	for i, w := range a {
		n += bits.OnesCount64(w & b[i])
	}
	return n
}

// inSpan probes candidate path's row against class c's basis with worker
// w's scratch. Read-only on the basis; safe for concurrent workers.
func (mc *MonteCarloInc) inSpan(c, path, w int) bool {
	if mc.kernel == KernelGF2 {
		return mc.gf2[c].InSpanPackedWith(mc.packed[path], mc.gf2Scratch[w])
	}
	return mc.f64[c].InSpanSparseWith(mc.rowCols[path], mc.rowVals[path], mc.wss[w])
}

// gainHits counts the scenarios in which the path both survives and is
// independent of the class basis: per class, a word-parallel survivor count
// and at most one rank probe.
func (mc *MonteCarloInc) gainHits(path, worker int) int {
	mask := mc.masks[path]
	hits := 0
	for c := range mc.classMask {
		cnt := andCount(mask, mc.classMask[c])
		if cnt == 0 {
			continue
		}
		if !mc.inSpan(c, path, worker) {
			hits += cnt
		}
	}
	return hits
}

// Gain implements Incremental. With a few dozen classes the whole
// evaluation is cheaper than a fan-out dispatch, so it runs on the calling
// goroutine; GainBatch is the parallel entry point.
func (mc *MonteCarloInc) Gain(path int) float64 {
	return float64(mc.gainHits(path, 0)) / float64(mc.set.N())
}

// batchShard is the GainBatch worker body: claim paths off the atomic
// counter, write each gain into its fixed slot.
func (mc *MonteCarloInc) batchShard(worker int) {
	paths, out := mc.batchPaths, mc.batchOut
	n := float64(mc.set.N())
	for {
		i := int(mc.batchNext.Add(1)) - 1
		if i >= len(paths) {
			return
		}
		out[i] = float64(mc.gainHits(paths[i], worker)) / n
	}
}

// GainBatch implements BatchGainer: paths are claimed off an atomic counter
// by pool workers, each probing the shared class bases with its own
// scratch. out[i] is exactly Gain(paths[i]).
func (mc *MonteCarloInc) GainBatch(paths []int, out []float64) {
	if len(out) != len(paths) {
		panic("er: GainBatch output length mismatch")
	}
	if len(paths) == 0 {
		return
	}
	workers := poolSize()
	if mc.kernel == KernelGF2 {
		workers = minInt(workers, len(mc.gf2Scratch))
	} else {
		workers = minInt(workers, len(mc.wss))
	}
	workers = minInt(workers, len(paths))
	mc.batchPaths, mc.batchOut = paths, out
	mc.batchNext.Store(0)
	runShardsWith(workers, mc.batchShardFn, &mc.wg)
	mc.batchPaths, mc.batchOut = nil, nil
}

// addRow commits the path's row into class c's basis, reporting whether it
// was independent (and so raised the class rank).
func (mc *MonteCarloInc) addRow(c, path int) bool {
	if mc.kernel == KernelGF2 {
		return mc.gf2[c].AddPacked(mc.packed[path])
	}
	added, _, _ := mc.f64[c].AddSparse(mc.rowCols[path], mc.rowVals[path])
	return added
}

// Add implements Incremental. Classes split along the new row's survival
// mask: a class whose scenarios all survive takes the row in place; a
// partial class keeps its non-survivors and spawns a new class with a
// cloned, extended basis for the survivors (three word-ops on the
// membership masks). Classes are visited in ascending id and new ids
// appended in that order, so the evolution is deterministic. A splitless
// Add (every touched class moves wholesale, no new rank) allocates
// nothing.
func (mc *MonteCarloInc) Add(path int) {
	mask := mc.masks[path]
	nc := len(mc.classMask) // new classes appended below start disjoint from mask work done here
	hits := 0
	for c := 0; c < nc; c++ {
		cm := mc.classMask[c]
		cnt := andCount(mask, cm)
		if cnt == 0 {
			continue
		}
		target := c
		if cnt != int(mc.classBits[c]) {
			// Partial survival: survivors move to a fresh class whose basis
			// starts as a clone of c's.
			newMask := make([]uint64, mc.words)
			for w := range cm {
				newMask[w] = cm[w] & mask[w]
				cm[w] &^= mask[w]
			}
			mc.classBits[c] -= int32(cnt)
			target = len(mc.classMask)
			mc.classMask = append(mc.classMask, newMask)
			mc.classBits = append(mc.classBits, int32(cnt))
			if mc.kernel == KernelGF2 {
				mc.gf2 = append(mc.gf2, mc.gf2[c].Clone())
			} else {
				mc.f64 = append(mc.f64, mc.f64[c].Clone())
			}
		}
		if mc.addRow(target, path) {
			hits += cnt
		}
	}
	mc.value += float64(hits) / float64(mc.set.N())
}

// Value implements Incremental.
func (mc *MonteCarloInc) Value() float64 { return mc.value }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
