package er

import (
	"math/bits"
	"math/rand/v2"
	"sync/atomic"

	"robusttomo/internal/failure"
	"robusttomo/internal/linalg"
	"robusttomo/internal/tomo"
)

// MonteCarlo estimates ER(R) as the average rank of the surviving rows over
// n freshly sampled failure scenarios. Scenarios are drawn up front on the
// caller's goroutine (so the result is deterministic in rng) and packed
// into a bit-column ScenarioSet; per-scenario survivor filtering is then a
// bit test against each path's survival mask instead of a per-edge walk.
// Ranks are evaluated in parallel via chunked atomic-counter dispatch —
// workers claim fixed index ranges, so there is no per-scenario channel
// send and the per-scenario ranks land in fixed slots regardless of
// scheduling.
func MonteCarlo(pm *tomo.PathMatrix, model failure.Sampler, idx []int, n int, rng *rand.Rand) float64 {
	if len(idx) == 0 || n <= 0 {
		return 0
	}
	set, err := failure.SampleScenarioSet(model, rng, n)
	if err != nil {
		panic("er: " + err.Error()) // only reachable with a zero-link sampler
	}
	masks := make([][]uint64, len(idx))
	rowCols := make([][]int, len(idx))
	rowVals := make([][]float64, len(idx))
	for k, i := range idx {
		masks[k] = pm.SurvivalMask(set, i, nil)
		rowCols[k], rowVals[k] = sparsifyRow(pm.Row(i))
	}

	ranks := make([]int, n)
	links := pm.NumLinks()
	workers := poolSize()
	if workers > n {
		workers = n
	}
	// Chunks several times smaller than n/workers keep stragglers bounded
	// without paying one dispatch per scenario.
	chunk := (n + workers*8 - 1) / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	runShards(workers, func(int) {
		basis := linalg.NewSparseBasisRankOnly(links)
		surv := make([]int, 0, len(idx))
		for {
			c := int(next.Add(1)) - 1
			lo := c * chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			for s := lo; s < hi; s++ {
				w, bit := s>>6, uint64(1)<<(s&63)
				surv = surv[:0]
				for k := range idx {
					if masks[k][w]&bit != 0 {
						surv = append(surv, k)
					}
				}
				basis.Reset()
				for _, k := range surv {
					basis.AddSparse(rowCols[k], rowVals[k])
					if basis.Rank() == links {
						break
					}
				}
				ranks[s] = basis.Rank()
			}
		}
	})

	sum := 0
	for _, r := range ranks {
		sum += r
	}
	return float64(sum) / float64(n)
}

// MonteCarloInc is the Monte Carlo incremental oracle behind MonteRoMe: it
// fixes a panel of sampled failure scenarios up front and maintains, per
// scenario, an incremental basis of the surviving committed rows. The
// marginal gain of a candidate is the fraction of scenarios in which it
// both survives and increases the surviving rank — an unbiased estimate of
// the true marginal ER gain over the panel.
//
// The panel lives in a bit-packed ScenarioSet: each candidate's survival
// mask is precomputed once, so Gain and Add visit only the scenarios the
// path survives (a trailing-zero scan of the mask). Scenarios are further
// grouped into equivalence classes: two scenarios in which every committed
// row survived identically have received the exact same Add sequence, so
// their bases hold bit-identical rows and one shared basis serves the whole
// class. Gain probes each class once with the allocation-free
// InSpanSparseWith and weights the verdict by the class's surviving-scenario
// count; Add splits classes along the new row's survival mask. On
// realistic failure rates most scenarios share a handful of classes, which
// cuts the rank work by orders of magnitude.
//
// Probes and class updates fan out over a persistent worker pool; every
// result lands in a fixed per-class slot and integer hit counts are folded
// in ascending class order, so Gain, Add and Value are bit-identical to the
// serial reference oracle (NewMonteCarloIncSerial, enforced by
// TestMonteCarloIncMatchesSerial) regardless of scheduling.
type MonteCarloInc struct {
	pm  *tomo.PathMatrix
	set *failure.ScenarioSet
	// masks[i] is candidate i's survival mask over the panel; rowCols[i]/
	// rowVals[i] are its matrix row in sorted sparse form, feeding the
	// load-free AddSparse/InSpanSparseWith entry points.
	masks   [][]uint64
	rowCols [][]int
	rowVals [][]float64
	value   float64

	// Scenario equivalence classes. classOf maps scenario -> class id;
	// bases and classSize are indexed by class id. Class 0 initially holds
	// the whole panel with an empty basis.
	classOf   []int32
	bases     []*linalg.SparseBasis
	classSize []int32

	// Gain scratch (caller goroutine): per-class survivor counts, the list
	// of classes to probe, and per-probe hit counts for the ordered fold.
	counts    []int32
	probeList []int32
	probeHits []int32

	// Add scratch: per-class mover counts and destination classes, plus the
	// receiving classes (ascending), their mover counts, the split sources
	// (-1 for in-place) and the per-class added verdicts.
	movers    []int32
	target    []int32
	addClass  []int32
	addMovers []int32
	addSrc    []int32
	addOK     []bool

	workerWS     []*linalg.Workspace // one reduction workspace per pool worker
	workerCounts [][]int32           // per-worker class-count scratch (GainBatch)
}

var (
	_ Incremental = (*MonteCarloInc)(nil)
	_ BatchGainer = (*MonteCarloInc)(nil)
)

// NewMonteCarloInc draws runs scenarios from the model and returns an empty
// oracle. The rng consumption matches the serial reference, so equal seeds
// give equal panels.
func NewMonteCarloInc(pm *tomo.PathMatrix, model failure.Sampler, runs int, rng *rand.Rand) *MonteCarloInc {
	set, err := failure.SampleScenarioSet(model, rng, runs)
	if err != nil {
		panic("er: " + err.Error()) // only reachable with runs <= 0 or a zero-link sampler
	}
	mc := &MonteCarloInc{pm: pm, set: set}

	// The whole panel starts as one class over the empty basis.
	mc.classOf = make([]int32, runs)
	mc.bases = []*linalg.SparseBasis{linalg.NewSparseBasisRankOnly(pm.NumLinks())}
	mc.classSize = []int32{int32(runs)}

	workers := poolSize()
	mc.workerWS = make([]*linalg.Workspace, workers)
	for i := range mc.workerWS {
		mc.workerWS[i] = linalg.NewWorkspace(pm.NumLinks())
	}
	mc.workerCounts = make([][]int32, workers)

	// Precompute every candidate's survival mask and sparse row (chunked
	// over paths).
	n := pm.NumPaths()
	mc.masks = make([][]uint64, n)
	mc.rowCols = make([][]int, n)
	mc.rowVals = make([][]float64, n)
	var nextPath atomic.Int64
	runShards(minInt(poolSize(), n), func(int) {
		for {
			i := int(nextPath.Add(1)) - 1
			if i >= n {
				return
			}
			mc.masks[i] = pm.SurvivalMask(set, i, nil)
			mc.rowCols[i], mc.rowVals[i] = sparsifyRow(pm.Row(i))
		}
	})
	return mc
}

// sparsifyRow converts a dense row to sorted parallel (cols, vals) form.
func sparsifyRow(row []float64) ([]int, []float64) {
	var cols []int
	var vals []float64
	for j, x := range row {
		if x != 0 {
			cols = append(cols, j)
			vals = append(vals, x)
		}
	}
	return cols, vals
}

// Runs returns the scenario panel size.
func (mc *MonteCarloInc) Runs() int { return mc.set.N() }

// growInt32 resizes s to n entries, preserving contents; appended entries
// are zero.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		ns := make([]int32, n)
		copy(ns, s)
		return ns
	}
	for i := len(s); i < n; i++ {
		s = s[:i+1]
		s[i] = 0
	}
	return s[:n]
}

// countSurvivors tallies, per class, how many scenarios of the mask survive.
// counts must be zero on entry; the caller re-zeroes the touched entries.
func (mc *MonteCarloInc) countSurvivors(mask []uint64, counts []int32) {
	classOf := mc.classOf
	for w, m := range mask {
		base := w << 6
		for m != 0 {
			s := base + bits.TrailingZeros64(m)
			m &= m - 1
			counts[classOf[s]]++
		}
	}
}

// gainHits computes the independent-survivor count for one path on a single
// goroutine: count survivors per class, then probe each touched class once.
// counts is a zeroed per-class scratch and is re-zeroed before returning.
func (mc *MonteCarloInc) gainHits(path int, counts []int32, ws *linalg.Workspace) int {
	mc.countSurvivors(mc.masks[path], counts)
	cols, vals := mc.rowCols[path], mc.rowVals[path]
	hits := 0
	for c := range mc.bases {
		n := counts[c]
		if n == 0 {
			continue
		}
		counts[c] = 0
		if !mc.bases[c].InSpanSparseWith(cols, vals, ws) {
			hits += int(n)
		}
	}
	return hits
}

// Gain implements Incremental. The per-class probes fan out over the worker
// pool; each verdict lands in a fixed slot and the hit counts are folded in
// ascending class order, independent of scheduling.
func (mc *MonteCarloInc) Gain(path int) float64 {
	counts := growInt32(mc.counts, len(mc.bases))
	mc.counts = counts
	workers := poolSize()
	if workers == 1 {
		return float64(mc.gainHits(path, counts, mc.workerWS[0])) / float64(mc.set.N())
	}

	mc.countSurvivors(mc.masks[path], counts)
	probe := mc.probeList[:0]
	for c := range mc.bases {
		if counts[c] != 0 {
			probe = append(probe, int32(c))
		}
	}
	mc.probeList = probe
	mc.probeHits = growInt32(mc.probeHits, len(probe))
	hits := 0
	if len(probe) > 0 {
		cols, vals := mc.rowCols[path], mc.rowVals[path]
		var next atomic.Int64
		runShards(minInt(workers, len(probe)), func(worker int) {
			ws := mc.workerWS[worker]
			for {
				i := int(next.Add(1)) - 1
				if i >= len(probe) {
					return
				}
				c := probe[i]
				if mc.bases[c].InSpanSparseWith(cols, vals, ws) {
					mc.probeHits[i] = 0
				} else {
					mc.probeHits[i] = counts[c]
				}
			}
		})
		for i := range probe {
			hits += int(mc.probeHits[i])
			counts[probe[i]] = 0
		}
	}
	return float64(hits) / float64(mc.set.N())
}

// GainBatch implements BatchGainer: paths are claimed off an atomic counter
// by pool workers, each probing the shared class bases with its own
// workspace and count scratch. out[i] is exactly Gain(paths[i]).
func (mc *MonteCarloInc) GainBatch(paths []int, out []float64) {
	if len(out) != len(paths) {
		panic("er: GainBatch output length mismatch")
	}
	if len(paths) == 0 {
		return
	}
	var next atomic.Int64
	runShards(minInt(len(mc.workerWS), len(paths)), func(worker int) {
		ws := mc.workerWS[worker]
		counts := growInt32(mc.workerCounts[worker], len(mc.bases))
		mc.workerCounts[worker] = counts
		for {
			i := int(next.Add(1)) - 1
			if i >= len(paths) {
				return
			}
			out[i] = float64(mc.gainHits(paths[i], counts, ws)) / float64(mc.set.N())
		}
	})
}

// Add implements Incremental. Classes split along the new row's survival
// mask: a class whose scenarios all survive takes the row in place; a
// partial class spawns a new class with a cloned basis for the survivors.
// Class ids are assigned serially in ascending order before the basis work
// fans out, and each receiving basis is touched by exactly one worker, so
// the evolution is deterministic and race-free.
func (mc *MonteCarloInc) Add(path int) {
	mask := mc.masks[path]
	nc := len(mc.bases)
	mc.movers = growInt32(mc.movers, nc)
	mc.target = growInt32(mc.target, nc)
	movers, target := mc.movers, mc.target
	mc.countSurvivors(mask, movers)

	// Pass 1 (serial, ascending class id): decide splits, allocate ids.
	addClass := mc.addClass[:0]
	addMovers := mc.addMovers[:0]
	addSrc := mc.addSrc[:0]
	for c := 0; c < nc; c++ {
		m := movers[c]
		target[c] = int32(c)
		if m == 0 {
			continue
		}
		if m == mc.classSize[c] {
			// The whole class moves: the row lands in its basis in place.
			addClass = append(addClass, int32(c))
			addMovers = append(addMovers, m)
			addSrc = append(addSrc, -1)
		} else {
			id := int32(len(mc.bases))
			mc.bases = append(mc.bases, nil) // cloned in pass 2
			mc.classSize[c] -= m
			mc.classSize = append(mc.classSize, m)
			target[c] = id
			addClass = append(addClass, id)
			addMovers = append(addMovers, m)
			addSrc = append(addSrc, int32(c))
		}
		movers[c] = 0
	}
	mc.addClass, mc.addMovers, mc.addSrc = addClass, addMovers, addSrc
	if cap(mc.addOK) < len(addClass) {
		mc.addOK = make([]bool, len(addClass))
	}
	addOK := mc.addOK[:len(addClass)]

	// Pass 2: clone and extend the receiving bases. Each entry owns its
	// basis (a split source is never itself a receiver), so workers never
	// contend.
	if len(addClass) > 0 {
		cols, vals := mc.rowCols[path], mc.rowVals[path]
		var next atomic.Int64
		runShards(minInt(poolSize(), len(addClass)), func(int) {
			for {
				i := int(next.Add(1)) - 1
				if i >= len(addClass) {
					return
				}
				b := mc.bases[addClass[i]]
				if src := addSrc[i]; src >= 0 {
					b = mc.bases[src].Clone()
					mc.bases[addClass[i]] = b
				}
				added, _, _ := b.AddSparse(cols, vals)
				addOK[i] = added
			}
		})
	}

	// Pass 3 (serial): fold hits in ascending class order and reassign the
	// movers of split classes.
	hits := 0
	for i := range addClass {
		if addOK[i] {
			hits += int(addMovers[i])
		}
	}
	classOf := mc.classOf
	for w, m := range mask {
		base := w << 6
		for m != 0 {
			s := base + bits.TrailingZeros64(m)
			m &= m - 1
			if t := target[classOf[s]]; t != classOf[s] {
				classOf[s] = t
			}
		}
	}
	mc.value += float64(hits) / float64(mc.set.N())
}

// Value implements Incremental.
func (mc *MonteCarloInc) Value() float64 { return mc.value }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
