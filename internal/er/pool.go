package er

import (
	"runtime"
	"sync"
)

// The er kernels share one persistent worker pool, started lazily on first
// use and sized to GOMAXPROCS at that moment. A lazy-greedy selection
// issues tens of thousands of small Gain evaluations; persistent workers
// amortize the goroutine spawn that per-call fan-out would pay every time.
//
// Determinism contract: the pool only ever executes *sharded* work — fixed
// index ranges whose partial results land in per-shard slots and are folded
// on the caller's goroutine in shard order. Since the hot-path partials are
// integer hit counts, the fold is exact regardless of which worker ran
// which shard or in what order, so results are bit-identical to a serial
// run (DESIGN.md §7).
var (
	poolOnce    sync.Once
	poolTasks   chan poolTask
	poolWorkers int
)

// poolTask carries the shard index alongside the shard function instead of
// closing over it, so dispatching a shard allocates nothing: the function
// value is whatever the caller already holds (typically a prebound field)
// and the struct travels by value through the channel.
type poolTask struct {
	fn    func(shard int)
	shard int
	wg    *sync.WaitGroup
}

// wgPool recycles the WaitGroups runShards synchronizes on; callers with a
// steady-state zero-alloc contract hold their own WaitGroup and use
// runShardsWith directly.
var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

func startPool() {
	poolWorkers = runtime.GOMAXPROCS(0)
	if poolWorkers < 1 {
		poolWorkers = 1
	}
	if poolWorkers == 1 {
		return // single-threaded: runShards executes everything inline
	}
	poolTasks = make(chan poolTask, 4*poolWorkers)
	for w := 0; w < poolWorkers-1; w++ {
		go func() {
			for t := range poolTasks {
				t.fn(t.shard)
				t.wg.Done()
			}
		}()
	}
}

// poolSize returns how many shards the pool can run concurrently (the
// calling goroutine counts as one worker).
func poolSize() int {
	poolOnce.Do(startPool)
	return poolWorkers
}

// runShards invokes fn(shard) for every shard in [0, shards) and waits for
// all of them. Shard 0 runs on the calling goroutine, the rest on pool
// workers. fn must not call runShards itself (single-level parallelism).
func runShards(shards int, fn func(shard int)) {
	if shards <= 1 {
		if shards == 1 {
			fn(0)
		}
		return
	}
	wg := wgPool.Get().(*sync.WaitGroup)
	runShardsWith(shards, fn, wg)
	wgPool.Put(wg)
}

// runShardsWith is runShards synchronizing on a caller-held WaitGroup
// (which must be idle), letting steady-state callers fan out with zero
// allocation when fn is a prebound function value.
func runShardsWith(shards int, fn func(shard int), wg *sync.WaitGroup) {
	if shards <= 1 {
		if shards == 1 {
			fn(0)
		}
		return
	}
	poolOnce.Do(startPool)
	if poolTasks == nil {
		for s := 0; s < shards; s++ {
			fn(s)
		}
		return
	}
	wg.Add(shards - 1)
	for s := 1; s < shards; s++ {
		poolTasks <- poolTask{fn: fn, shard: s, wg: wg}
	}
	fn(0)
	wg.Wait()
}
