package er

import (
	"robusttomo/internal/failure"
	"robusttomo/internal/linalg"
	"robusttomo/internal/tomo"
)

// ProbBoundInc is the incremental oracle behind ProbRoMe: the efficient
// analytical upper bound on ER from Section IV-C of the paper (Eq. 7).
//
// The committed set R is partitioned into a maximal independent prefix
// R_ind (maintained as an incremental basis) and the dependent remainder
// R_dep. The bound values
//
//	ER(R) ≤ Σ_{q∈R_ind} EA(q) + Σ_{q∈R_dep} E[D_q]
//
// where E[D_q] = EA(q)·(1 − Π_{l∈L_Rq}(1 − p_l)) and L_Rq is the set of
// links on the basis paths q depends on (its representation support R_q)
// that q itself does not traverse: a dependent path contributes rank only
// when it survives and at least one path it depends on has failed (Eq. 6).
//
// Because a path's representation over an independent set is unique, R_q —
// and hence E[D_q] — is fixed from the moment q becomes dependent, so gains
// are non-increasing over the greedy run and lazy evaluation is exact.
type ProbBoundInc struct {
	pm    *tomo.PathMatrix
	model *failure.Model
	ea    []float64 // memoized EA per candidate path

	basis   linalg.RowBasis
	members []int // basis member -> candidate path index
	value   float64
}

var _ Incremental = (*ProbBoundInc)(nil)

// NewProbBoundInc returns an empty ProbBound oracle over the candidates.
func NewProbBoundInc(pm *tomo.PathMatrix, model *failure.Model) *ProbBoundInc {
	return &ProbBoundInc{
		pm:    pm,
		model: model,
		ea:    Availabilities(pm, model),
		basis: linalg.NewSparseBasis(pm.NumLinks()),
	}
}

// Gain implements Incremental.
func (pb *ProbBoundInc) Gain(path int) float64 {
	dep, support := pb.basis.Dependent(pb.pm.Row(path))
	if !dep {
		return pb.ea[path]
	}
	return pb.dependentGain(path, support)
}

// Add implements Incremental.
func (pb *ProbBoundInc) Add(path int) {
	added, _, support := pb.basis.Add(pb.pm.Row(path))
	if added {
		pb.members = append(pb.members, path)
		pb.value += pb.ea[path]
		return
	}
	pb.value += pb.dependentGain(path, support)
}

// Value implements Incremental.
func (pb *ProbBoundInc) Value() float64 { return pb.value }

// dependentGain computes E[D_q] per Eq. 6 for a dependent candidate with
// the given representation support (basis member indices).
func (pb *ProbBoundInc) dependentGain(path int, support []int) float64 {
	if len(support) == 0 {
		// Zero row: never contributes rank.
		return 0
	}
	onPath := make(map[int]bool)
	for _, l := range pb.pm.EdgesOf(path) {
		onPath[l] = true
	}
	// Π (1 − p_l) over links of the support paths not on q, each counted
	// once.
	seen := make(map[int]bool)
	allUp := 1.0
	for _, member := range support {
		q := pb.members[member]
		for _, l := range pb.pm.EdgesOf(q) {
			if onPath[l] || seen[l] {
				continue
			}
			seen[l] = true
			allUp *= 1 - pb.model.Prob(l)
		}
	}
	return pb.ea[path] * (1 - allUp)
}

// Bound computes the Eq. 7 upper bound non-incrementally for an explicit
// set of path indices, scanning them in the given order to fix the
// R_ind/R_dep partition (the paper picks an arbitrary maximal independent
// subset; the scan order realizes that choice).
func Bound(pm *tomo.PathMatrix, model *failure.Model, idx []int) float64 {
	pb := NewProbBoundInc(pm, model)
	for _, i := range idx {
		pb.Add(i)
	}
	return pb.Value()
}
