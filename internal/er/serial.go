package er

import (
	"math/rand/v2"

	"robusttomo/internal/failure"
	"robusttomo/internal/linalg"
	"robusttomo/internal/tomo"
)

// This file keeps the original scenario-major Monte Carlo implementations
// as executable references for the bit-packed kernel in montecarlo.go. The
// kernel is required to be bit-identical to these (equivalence tests in
// kernel_test.go), which is what makes the parallel fast path safe to use
// everywhere the serial oracle was.

// serialPanel draws the exact scenario panel a packed kernel would draw
// from the same rng state — through SampleScenarioSet (so column-sampling
// models consume the rng identically) — and expands it to scenario-major
// form for the reference walks.
func serialPanel(model failure.Sampler, rng *rand.Rand, n int) []failure.Scenario {
	set, err := failure.SampleScenarioSet(model, rng, n)
	if err != nil {
		panic("er: " + err.Error())
	}
	return set.Scenarios()
}

// MonteCarloSerial estimates ER(R) exactly like MonteCarlo but walks every
// scenario's bool failure vector on one goroutine. Given the same rng
// state, MonteCarlo returns the identical value.
func MonteCarloSerial(pm *tomo.PathMatrix, model failure.Sampler, idx []int, n int, rng *rand.Rand) float64 {
	return MonteCarloSerialKernel(pm, model, idx, n, rng, KernelFloat64)
}

// MonteCarloSerialKernel is MonteCarloSerial on an explicit rank kernel,
// the one-goroutine reference MonteCarloKernel must be bit-identical to.
func MonteCarloSerialKernel(pm *tomo.PathMatrix, model failure.Sampler, idx []int, n int, rng *rand.Rand, kernel Kernel) float64 {
	if len(idx) == 0 || n <= 0 {
		return 0
	}
	scenarios := serialPanel(model, rng, n)
	sum := 0
	for _, sc := range scenarios {
		if kernel == KernelFloat64 {
			sum += pm.RankUnder(idx, sc)
			continue
		}
		basis := linalg.NewGF2Basis(pm.NumLinks())
		for _, i := range idx {
			if pm.Available(i, sc) {
				basis.AddPacked(pm.PackedRow(i))
			}
		}
		sum += basis.Rank()
	}
	return float64(sum) / float64(n)
}

// serialMonteCarloInc is the pre-kernel MonteCarloInc: scenario-major
// storage, per-edge availability walks, allocating Dependent probes.
type serialMonteCarloInc struct {
	pm        *tomo.PathMatrix
	scenarios []failure.Scenario
	bases     []linalg.RowBasis
	value     float64
}

var _ Incremental = (*serialMonteCarloInc)(nil)

// NewMonteCarloIncSerial draws runs scenarios from the model and returns
// the serial reference oracle. It consumes the rng exactly like
// NewMonteCarloInc, so equal seeds give equal panels.
func NewMonteCarloIncSerial(pm *tomo.PathMatrix, model failure.Sampler, runs int, rng *rand.Rand) Incremental {
	return NewMonteCarloIncSerialKernel(pm, model, runs, rng, KernelFloat64)
}

// NewMonteCarloIncSerialKernel is NewMonteCarloIncSerial on an explicit
// rank kernel: one RowBasis per scenario on the chosen arithmetic
// (GF2Basis implements the float adapters), no class sharing, no packing.
func NewMonteCarloIncSerialKernel(pm *tomo.PathMatrix, model failure.Sampler, runs int, rng *rand.Rand, kernel Kernel) Incremental {
	scenarios := serialPanel(model, rng, runs)
	bases := make([]linalg.RowBasis, runs)
	for i := range bases {
		if kernel == KernelGF2 {
			bases[i] = linalg.NewGF2Basis(pm.NumLinks())
		} else {
			bases[i] = linalg.NewSparseBasis(pm.NumLinks())
		}
	}
	return &serialMonteCarloInc{pm: pm, scenarios: scenarios, bases: bases}
}

func (mc *serialMonteCarloInc) Gain(path int) float64 {
	row := mc.pm.Row(path)
	hits := 0
	for s, sc := range mc.scenarios {
		if !mc.pm.Available(path, sc) {
			continue
		}
		if dep, _ := mc.bases[s].Dependent(row); !dep {
			hits++
		}
	}
	return float64(hits) / float64(len(mc.scenarios))
}

func (mc *serialMonteCarloInc) Add(path int) {
	row := mc.pm.Row(path)
	hits := 0
	for s, sc := range mc.scenarios {
		if !mc.pm.Available(path, sc) {
			continue
		}
		if added, _, _ := mc.bases[s].Add(row); added {
			hits++
		}
	}
	mc.value += float64(hits) / float64(len(mc.scenarios))
}

func (mc *serialMonteCarloInc) Value() float64 { return mc.value }
