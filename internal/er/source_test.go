package er

import (
	"math/rand/v2"
	"testing"

	"robusttomo/internal/failure"
	"robusttomo/internal/stats"
)

// The packed parallel oracle fed a stateful Gilbert–Elliott source must
// stay bit-identical to the serial reference: the serial side expands the
// very panel the packed side drew (SampleScenarioSet + Scenarios), so
// burstiness in the panel cannot open a gap. Runs under -race in CI.
func TestMonteCarloIncGEMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{1, 11} {
		pm, model := rocketfuelInstance(t, 100, seed)
		probs := model.Probs()
		for i, p := range probs {
			if p > 0.6 {
				probs[i] = 0.6
			}
		}
		cfg := failure.GEConfig{Marginals: probs, MeanBurst: 8, Seed: seed}
		// Two chains from the same config start in the same state;
		// identically seeded rngs then draw the same panel.
		geA, err := failure.NewGilbertElliott(cfg)
		if err != nil {
			t.Fatal(err)
		}
		geB, err := failure.NewGilbertElliott(cfg)
		if err != nil {
			t.Fatal(err)
		}
		runs := 130 // straddles a word boundary
		kernel := NewMonteCarloInc(pm, geA, runs, rand.New(rand.NewPCG(seed, 77)))
		serial := NewMonteCarloIncSerial(pm, geB, runs, rand.New(rand.NewPCG(seed, 77)))

		n := pm.NumPaths()
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		batch := make([]float64, n)
		pick := stats.NewRNG(seed, 99)
		for round := 0; round < 6; round++ {
			kernel.GainBatch(all, batch)
			for q := 0; q < n; q++ {
				if want := serial.Gain(q); batch[q] != want || kernel.Gain(q) != want {
					t.Fatalf("seed %d round %d: Gain(%d) = %v, serial %v", seed, round, q, kernel.Gain(q), want)
				}
			}
			q := pick.IntN(n)
			kernel.Add(q)
			serial.Add(q)
			if kernel.Value() != serial.Value() {
				t.Fatalf("seed %d round %d: Value = %v, serial %v", seed, round, kernel.Value(), serial.Value())
			}
		}
	}
}

// The node-failure source takes the scenario-major panel path (it is not a
// ColumnSampler); parallel and serial oracles must still agree exactly.
func TestMonteCarloIncNodeSourceMatchesSerial(t *testing.T) {
	pm, _ := rocketfuelInstance(t, 80, 5)
	links := pm.NumLinks()
	incidence := make([][]int, links)
	probs := make([]float64, links)
	for l := 0; l < links; l++ {
		incidence[l] = []int{l, (l + 1) % links}
		probs[l] = 0.01
	}
	build := func() *failure.NodeFailureModel {
		m, err := failure.NewNodeFailureModel(failure.NodeFailureConfig{
			Links: links, Incidence: incidence, NodeProbs: probs,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	runs := 96
	kernel := NewMonteCarloInc(pm, build(), runs, rand.New(rand.NewPCG(3, 77)))
	serial := NewMonteCarloIncSerial(pm, build(), runs, rand.New(rand.NewPCG(3, 77)))
	n := pm.NumPaths()
	for round := 0; round < 4; round++ {
		for q := 0; q < n; q++ {
			if got, want := kernel.Gain(q), serial.Gain(q); got != want {
				t.Fatalf("round %d: Gain(%d) = %v, serial %v", round, q, got, want)
			}
		}
		kernel.Add(round)
		serial.Add(round)
		if kernel.Value() != serial.Value() {
			t.Fatalf("round %d: Value = %v, serial %v", round, kernel.Value(), serial.Value())
		}
	}
}
