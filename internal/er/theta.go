package er

import (
	"math/rand/v2"

	"robusttomo/internal/linalg"
	"robusttomo/internal/tomo"
)

// ThetaBoundInc is the independence-assumption variant of the ER bound
// (Eq. 11 of the paper), used by the LSR learner: instead of link failure
// probabilities it consumes per-path availabilities θ_i (learned
// empirically, possibly inflated by confidence intervals) and assumes path
// availabilities are independent:
//
//	ER(R; θ) ≤ Σ_{q∈R_ind} θ_q + Σ_{q∈R_dep} θ_q·(1 − Π_{j∈R_q} θ_j).
type ThetaBoundInc struct {
	pm    *tomo.PathMatrix
	theta []float64

	basis   *linalg.SparseBasis
	members []int
	value   float64
	adds    int

	// supportScratch backs the representation support reported by Gain's
	// dependence probe, so a greedy sweep's many probes allocate nothing.
	supportScratch []int
}

var (
	_ Incremental   = (*ThetaBoundInc)(nil)
	_ InitialGainer = (*ThetaBoundInc)(nil)
)

// NewThetaBoundInc returns an empty oracle for the given per-path
// availabilities. Values are clamped into [0, 1] so UCB-inflated θ̂ + C
// inputs remain probabilities, as in the LSR analysis.
func NewThetaBoundInc(pm *tomo.PathMatrix, theta []float64) *ThetaBoundInc {
	tb := &ThetaBoundInc{pm: pm, basis: linalg.NewSparseBasis(pm.NumLinks())}
	tb.Reset(theta)
	return tb
}

// Reset re-arms the oracle with new availabilities, emptying the committed
// set while keeping all allocated storage. A learner that re-optimizes
// every epoch resets one persistent oracle instead of building a fresh one;
// the resulting gains are identical to a newly constructed oracle's.
func (tb *ThetaBoundInc) Reset(theta []float64) {
	if cap(tb.theta) < len(theta) {
		tb.theta = make([]float64, len(theta))
	}
	tb.theta = tb.theta[:len(theta)]
	for i, v := range theta {
		switch {
		case v < 0:
			tb.theta[i] = 0
		case v > 1:
			tb.theta[i] = 1
		default:
			tb.theta[i] = v
		}
	}
	tb.basis.Reset()
	tb.members = tb.members[:0]
	tb.value = 0
	tb.adds = 0
}

// Gain implements Incremental.
func (tb *ThetaBoundInc) Gain(path int) float64 {
	dep, support := tb.basis.DependentScratch(tb.pm.Row(path), tb.supportScratch)
	if !dep {
		return tb.theta[path]
	}
	if cap(support) > cap(tb.supportScratch) {
		tb.supportScratch = support
	}
	return tb.dependentGain(path, support)
}

// InitialGains implements InitialGainer: against the empty committed set,
// every path with at least one link is independent, so its gain is exactly
// θ_q; zero-edge paths contribute 0 (the zero row is already in the span).
func (tb *ThetaBoundInc) InitialGains(out []float64) bool {
	if tb.adds > 0 {
		return false
	}
	for i := range out {
		if len(tb.pm.Path(i).Edges) == 0 {
			out[i] = 0
			continue
		}
		out[i] = tb.theta[i]
	}
	return true
}

// Add implements Incremental.
func (tb *ThetaBoundInc) Add(path int) {
	tb.adds++
	added, _, support := tb.basis.Add(tb.pm.Row(path))
	if added {
		tb.members = append(tb.members, path)
		tb.value += tb.theta[path]
		return
	}
	tb.value += tb.dependentGain(path, support)
}

// Value implements Incremental.
func (tb *ThetaBoundInc) Value() float64 { return tb.value }

func (tb *ThetaBoundInc) dependentGain(path int, support []int) float64 {
	if len(support) == 0 {
		return 0
	}
	allUp := 1.0
	for _, member := range support {
		allUp *= tb.theta[tb.members[member]]
	}
	return tb.theta[path] * (1 - allUp)
}

// ExactTheta computes ER(R; θ) exactly under the independence assumption by
// enumerating the 2^|R| path-availability patterns. Exponential in |R|;
// test-sized inputs only.
func ExactTheta(pm *tomo.PathMatrix, theta []float64, idx []int) float64 {
	n := len(idx)
	if n == 0 {
		return 0
	}
	total := 0.0
	up := make([]int, 0, n)
	for mask := 0; mask < 1<<n; mask++ {
		prob := 1.0
		up = up[:0]
		for b, i := range idx {
			if mask&(1<<b) != 0 {
				prob *= theta[i]
				up = append(up, i)
			} else {
				prob *= 1 - theta[i]
			}
		}
		if prob == 0 {
			continue
		}
		total += float64(pm.RankOf(up)) * prob
	}
	return total
}

// SampleTheta draws one availability realization per path under the
// independence assumption (used by simulation tests of the learner).
func SampleTheta(theta []float64, rng *rand.Rand) []bool {
	out := make([]bool, len(theta))
	for i, p := range theta {
		out[i] = rng.Float64() < p
	}
	return out
}
