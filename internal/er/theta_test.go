package er

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"robusttomo/internal/routing"
	"robusttomo/internal/tomo"
)

// Property: a Reset oracle is indistinguishable from a freshly constructed
// one — same gains before and after commits, same value. This is what lets
// the LSR learner keep one persistent oracle across epochs.
func TestThetaBoundResetMatchesFresh(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 12))
		pm, _ := randomInstance(rng, 8, 10)
		n := pm.NumPaths()

		reused := NewThetaBoundInc(pm, make([]float64, n))
		// Dirty the reused oracle with an unrelated run first.
		for i := 0; i < n; i += 2 {
			reused.Add(i)
		}

		theta := make([]float64, n)
		for i := range theta {
			theta[i] = 2*rng.Float64() - 0.5 // exercise clamping too
		}
		reused.Reset(theta)
		fresh := NewThetaBoundInc(pm, theta)

		order := rng.Perm(n)
		for _, q := range order[:n/2] {
			if reused.Gain(q) != fresh.Gain(q) {
				return false
			}
			reused.Add(q)
			fresh.Add(q)
			if reused.Value() != fresh.Value() {
				return false
			}
		}
		for q := 0; q < n; q++ {
			if reused.Gain(q) != fresh.Gain(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: InitialGains reproduces per-path Gain bit-for-bit on the empty
// committed set, and refuses once anything has been committed.
func TestThetaBoundInitialGains(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		pm, _ := randomInstance(rng, 8, 10)
		n := pm.NumPaths()
		theta := make([]float64, n)
		for i := range theta {
			theta[i] = rng.Float64()
		}
		tb := NewThetaBoundInc(pm, theta)
		got := make([]float64, n)
		if !tb.InitialGains(got) {
			return false
		}
		for q := 0; q < n; q++ {
			if got[q] != tb.Gain(q) {
				return false
			}
		}
		tb.Add(int(seed % uint64(n)))
		return !tb.InitialGains(got)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// A zero-edge path is already in the span of the empty basis, so its
// empty-set gain is 0 — InitialGains must agree with Gain on that case.
func TestThetaBoundInitialGainsZeroRow(t *testing.T) {
	pm, err := tomo.NewPathMatrix([]routing.Path{synthPath(), synthPath(0)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb := NewThetaBoundInc(pm, []float64{0.9, 0.7})
	got := make([]float64, 2)
	if !tb.InitialGains(got) {
		t.Fatal("InitialGains refused on empty set")
	}
	for q := 0; q < 2; q++ {
		if got[q] != tb.Gain(q) {
			t.Fatalf("path %d: InitialGains %v vs Gain %v", q, got[q], tb.Gain(q))
		}
	}
	if got[0] != 0 {
		t.Fatalf("zero-edge path gain = %v, want 0", got[0])
	}
}
