package experiments

import (
	"fmt"

	"robusttomo/internal/er"
	"robusttomo/internal/selection"
	"robusttomo/internal/stats"
)

// LazyAblationResult compares lazy against naive greedy evaluation counts
// (same selections by construction; see selection tests).
type LazyAblationResult struct {
	Paths            int
	Budget           float64
	LazyEvaluations  int
	NaiveEvaluations int
	Speedup          float64
}

// LazyAblation quantifies how much work lazy evaluation saves RoMe on a
// given workload (DESIGN.md §6 ablation).
func LazyAblation(w Workload, sc Scale, multiplier float64) (LazyAblationResult, error) {
	in, err := BuildInstance(w, sc, 0)
	if err != nil {
		return LazyAblationResult{}, err
	}
	budget := multiplier * instanceBasisCost(in)
	lazy, err := selection.RoMe(in.PM, in.Costs, budget, er.NewProbBoundInc(in.PM, in.Model), selection.Options{Lazy: true})
	if err != nil {
		return LazyAblationResult{}, err
	}
	naive, err := selection.RoMe(in.PM, in.Costs, budget, er.NewProbBoundInc(in.PM, in.Model), selection.Options{Lazy: false})
	if err != nil {
		return LazyAblationResult{}, err
	}
	res := LazyAblationResult{
		Paths:            in.PM.NumPaths(),
		Budget:           budget,
		LazyEvaluations:  lazy.GainEvaluations,
		NaiveEvaluations: naive.GainEvaluations,
	}
	if lazy.GainEvaluations > 0 {
		res.Speedup = float64(naive.GainEvaluations) / float64(lazy.GainEvaluations)
	}
	return res, nil
}

// IntensitySweep measures how the ProbRoMe-vs-SelectPath rank gap depends
// on the failure intensity (expected concurrent failures) — the one free
// parameter of our failure-model substitution (DESIGN.md §4).
func IntensitySweep(w Workload, sc Scale, intensities []float64, multiplier float64) (Figure, error) {
	fig := Figure{
		ID:     fmt.Sprintf("ablation-intensity-%s", w.label()),
		Title:  fmt.Sprintf("Failure-intensity sensitivity (%s)", w.label()),
		XLabel: "expected concurrent failures",
		YLabel: "rank",
	}
	probSeries := Series{Name: AlgProbRoMe}
	spSeries := Series{Name: AlgSelectPath}
	// Trial = one intensity (streams 1000+intensity*10 and intensity*100 are
	// per-intensity already).
	type cell struct{ prob, sp Point }
	cells := make([]cell, len(intensities))
	err := forTrials(effectiveWorkers(sc.Workers), len(intensities), sc.Progress, func(i int) error {
		intensity := intensities[i]
		scI := sc
		scI.ExpectedFailures = intensity
		in, err := BuildInstance(w, scI, 0)
		if err != nil {
			return err
		}
		budget := multiplier * instanceBasisCost(in)
		scenarios := in.Model.SampleN(stats.NewRNG(scI.Seed, 1000+uint64(intensity*10)), scI.Scenarios)
		for _, alg := range []string{AlgProbRoMe, AlgSelectPath} {
			selected, err := in.Select(alg, budget, scI, uint64(intensity*100))
			if err != nil {
				return err
			}
			ranks, _ := in.EvalMetrics(selected, scenarios, false)
			point := Point{X: intensity, Mean: stats.Mean(ranks), Std: stats.StdDev(ranks)}
			if alg == AlgProbRoMe {
				cells[i].prob = point
			} else {
				cells[i].sp = point
			}
		}
		return nil
	})
	if err != nil {
		return Figure{}, err
	}
	for _, c := range cells {
		probSeries.Points = append(probSeries.Points, c.prob)
		spSeries.Points = append(spSeries.Points, c.sp)
	}
	fig.Series = []Series{probSeries, spSeries}
	return fig, nil
}

// OracleQualityResult compares the selections produced with the ProbBound
// oracle, the Monte Carlo oracle, and (when the instance is small enough)
// the exact-ER evaluation of both, quantifying how much objective quality
// the efficient bound gives up.
type OracleQualityResult struct {
	ProbBoundER  float64 // Monte Carlo-evaluated ER of the ProbRoMe pick
	MonteCarloER float64 // same for the MonteRoMe pick
	EvalRuns     int
}

// OracleQuality runs both RoMe oracles on a workload and re-evaluates both
// final selections with a large common Monte Carlo panel.
func OracleQuality(w Workload, sc Scale, multiplier float64, evalRuns int) (OracleQualityResult, error) {
	in, err := BuildInstance(w, sc, 0)
	if err != nil {
		return OracleQualityResult{}, err
	}
	budget := multiplier * instanceBasisCost(in)
	prob, err := in.Select(AlgProbRoMe, budget, sc, 1)
	if err != nil {
		return OracleQualityResult{}, err
	}
	monte, err := in.Select(AlgMonteRoMe, budget, sc, 2)
	if err != nil {
		return OracleQualityResult{}, err
	}
	return OracleQualityResult{
		ProbBoundER:  er.MonteCarlo(in.PM, in.Model, prob, evalRuns, stats.NewRNG(sc.Seed, 1100)),
		MonteCarloER: er.MonteCarlo(in.PM, in.Model, monte, evalRuns, stats.NewRNG(sc.Seed, 1100)),
		EvalRuns:     evalRuns,
	}, nil
}
