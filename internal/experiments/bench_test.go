package experiments

import "testing"

// benchFig8 runs the Figure 8/9 driver — the heaviest trial-sharded runner
// (each trial builds an instance, runs MatRoMe and SelectPath and evaluates
// both under every scenario) — at the given worker count.
// BenchmarkFig8Quick / BenchmarkFig8QuickSerial form a benchregress pair
// (Serial suffix) whose ratio is the measured trial-sharding speedup on the
// host; TestRunnersParallelMatchSerial guarantees both compute identical
// figures.
func benchFig8(b *testing.B, workers int) {
	sc := Scale{MonitorSets: 2, Scenarios: 40, MonteCarloRuns: 20, ExpectedFailures: 2, Seed: 7, Workers: workers}
	cfg := MatroidLossConfig{Base: testWorkload(), PathCounts: []int{24, 48}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatroidLoss(cfg, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Quick(b *testing.B)       { benchFig8(b, 4) }
func BenchmarkFig8QuickSerial(b *testing.B) { benchFig8(b, 1) }

// BenchmarkFig5Quick / Serial: the budget-sweep driver (Figure 5/7), whose
// trials are monitor sets.
func benchFig5(b *testing.B, workers int) {
	sc := Scale{MonitorSets: 2, Scenarios: 40, MonteCarloRuns: 20, ExpectedFailures: 2, Seed: 7, Workers: workers}
	cfg := BudgetSweepConfig{Workload: testWorkload(), Multiplier: []float64{0.5, 1.0}, WithIdentifiability: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BudgetSweep(cfg, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Quick(b *testing.B)       { benchFig5(b, 4) }
func BenchmarkFig5QuickSerial(b *testing.B) { benchFig5(b, 1) }
