package experiments

import (
	"strings"
	"testing"

	"robusttomo/internal/topo"
)

// testWorkload is a miniature ISP (40 nodes / 80 links / 64 candidate
// paths) that keeps each figure runner under a second while preserving the
// structure the algorithms react to.
func testWorkload() Workload {
	return Workload{
		CandidatePaths: 64,
		Custom:         &topo.Config{Name: "mini", Nodes: 40, Links: 80, PoPs: 4, Seed: 99},
	}
}

func testScale() Scale {
	return Scale{MonitorSets: 2, Scenarios: 40, MonteCarloRuns: 20, ExpectedFailures: 2, Seed: 7}
}

func TestBuildInstance(t *testing.T) {
	in, err := BuildInstance(testWorkload(), testScale(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if in.PM.NumPaths() == 0 || in.PM.NumPaths() > 64 {
		t.Fatalf("candidate paths = %d", in.PM.NumPaths())
	}
	if len(in.Costs) != in.PM.NumPaths() {
		t.Fatal("cost vector length mismatch")
	}
	for _, c := range in.Costs {
		if c < 100 { // at least one hop at weight 100
			t.Fatalf("implausible path cost %v", c)
		}
	}
	if in.Model.Links() != in.Topology.Graph.NumEdges() {
		t.Fatal("failure model link count mismatch")
	}
}

func TestBuildInstanceDeterministic(t *testing.T) {
	a, err := BuildInstance(testWorkload(), testScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildInstance(testWorkload(), testScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.PM.NumPaths() != b.PM.NumPaths() {
		t.Fatal("instance not deterministic")
	}
	for i := 0; i < a.PM.NumPaths(); i++ {
		if a.Costs[i] != b.Costs[i] {
			t.Fatal("costs not deterministic")
		}
	}
	c, err := BuildInstance(testWorkload(), testScale(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sources[0] == c.Sources[0] && a.Sources[1] == c.Sources[1] && a.Dests[0] == c.Dests[0] {
		t.Log("different monitor sets drew suspiciously similar monitors (allowed but unlikely)")
	}
}

func TestBuildInstanceLoadedTopology(t *testing.T) {
	tp, err := topo.Generate(topo.Config{Name: "loaded", Nodes: 30, Links: 60, PoPs: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	in, err := BuildInstance(Workload{Loaded: tp, CandidatePaths: 20}, testScale(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if in.Topology != tp {
		t.Fatal("loaded topology not used")
	}
	if got := (Workload{Loaded: tp}).label(); got != "loaded" {
		t.Fatalf("label = %q", got)
	}
}

func TestBuildInstanceUnknownPreset(t *testing.T) {
	if _, err := BuildInstance(Workload{Preset: "AS0", CandidatePaths: 10}, testScale(), 0); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestTableI(t *testing.T) {
	rows, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Nodes != 87 || rows[0].Links != 161 {
		t.Fatalf("AS1755 row = %+v", rows[0])
	}
	if rows[2].Nodes != 315 || rows[2].Links != 972 {
		t.Fatalf("AS1239 row = %+v", rows[2])
	}
	out := FormatTableI(rows)
	if !strings.Contains(out, "AS3257 (Medium)") {
		t.Fatalf("FormatTableI = %q", out)
	}
}

func TestFig3Shape(t *testing.T) {
	fig, err := Fig3(Fig3Config{Workload: testWorkload(), MaxFailures: 4, Trials: 30}, testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	all, _ := fig.SeriesByName("AllPaths")
	b1, _ := fig.SeriesByName("Basis-1")
	// At zero failures a basis and the full set deliver the same rank.
	a0, _ := all.MeanAt(0)
	b0, _ := b1.MeanAt(0)
	if a0 != b0 {
		t.Fatalf("rank at 0 failures: all=%v basis=%v", a0, b0)
	}
	// Under failures the full set dominates any basis (paper's Fig. 3).
	aK := all.FinalMean()
	bK := b1.FinalMean()
	if aK < bK {
		t.Fatalf("AllPaths %v below basis %v under failures", aK, bK)
	}
	// Rank decays as failures accumulate.
	if b1.FinalMean() >= b0 {
		t.Fatalf("basis rank did not decay: %v -> %v", b0, b1.FinalMean())
	}
}

func TestFig4Shape(t *testing.T) {
	fig, err := Fig4(Fig4Config{
		Workload:      testWorkload(),
		MaxDependent:  6,
		ReferenceRuns: 3000,
		SmallRuns:     50,
	}, testScale())
	if err != nil {
		t.Fatal(err)
	}
	ref, ok := fig.SeriesByName("MC-3000")
	if !ok {
		t.Fatalf("missing reference series: %+v", fig.Series)
	}
	bound, _ := fig.SeriesByName("ProbBound")
	// ProbBound must upper-bound the reference at every x (allowing MC
	// noise of a few hundredths).
	for i := range ref.Points {
		if bound.Points[i].Mean < ref.Points[i].Mean-0.1 {
			t.Fatalf("bound %v below reference %v at x=%v",
				bound.Points[i].Mean, ref.Points[i].Mean, ref.Points[i].X)
		}
	}
	// At zero dependent paths the bound is exact (modular case).
	if diff := bound.Points[0].Mean - ref.Points[0].Mean; diff < -0.15 || diff > 0.15 {
		t.Fatalf("bound vs reference at x=0 differ by %v", diff)
	}
}

func TestBudgetSweepShape(t *testing.T) {
	res, err := BudgetSweep(BudgetSweepConfig{
		Workload:            testWorkload(),
		Multiplier:          []float64{0.5, 1.0},
		WithIdentifiability: true,
	}, testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rank.Series) != 3 {
		t.Fatalf("rank series = %d", len(res.Rank.Series))
	}
	prob, _ := res.Rank.SeriesByName(AlgProbRoMe)
	sp, _ := res.Rank.SeriesByName(AlgSelectPath)
	// Rank grows with budget for each algorithm.
	for _, s := range res.Rank.Series {
		lo, _ := s.MeanAt(0.5)
		hi, _ := s.MeanAt(1.0)
		if hi < lo-1e-9 {
			t.Fatalf("%s rank not monotone in budget: %v -> %v", s.Name, lo, hi)
		}
	}
	// The paper's headline: ProbRoMe beats SelectPath under failures.
	pl, _ := prob.MeanAt(0.5)
	sl, _ := sp.MeanAt(0.5)
	if pl <= sl {
		t.Fatalf("ProbRoMe %v not above SelectPath %v at half budget", pl, sl)
	}
	// Identifiability shows the same ordering (Fig. 7).
	pi, _ := res.Ident.SeriesByName(AlgProbRoMe)
	si, _ := res.Ident.SeriesByName(AlgSelectPath)
	piv, _ := pi.MeanAt(1.0)
	siv, _ := si.MeanAt(1.0)
	if piv < siv {
		t.Fatalf("ProbRoMe identifiability %v below SelectPath %v", piv, siv)
	}
	if len(res.BasisCosts) != testScale().MonitorSets {
		t.Fatalf("basis costs = %v", res.BasisCosts)
	}
}

func TestRankCDFShape(t *testing.T) {
	fig, err := RankCDF(RankCDFConfig{Workload: testWorkload(), Multiplier: 0.75}, testScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if len(s.Points) == 0 {
			t.Fatalf("empty CDF for %s", s.Name)
		}
		last := s.Points[len(s.Points)-1]
		if last.Mean != 1 {
			t.Fatalf("%s CDF does not reach 1: %v", s.Name, last)
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Mean < s.Points[i-1].Mean {
				t.Fatalf("%s CDF not monotone", s.Name)
			}
		}
	}
}

func TestMatroidLossShape(t *testing.T) {
	res, err := MatroidLoss(MatroidLossConfig{
		Base:       testWorkload(),
		PathCounts: []int{24, 48},
	}, testScale())
	if err != nil {
		t.Fatal(err)
	}
	mat, _ := res.RankLoss.SeriesByName(AlgMatRoMe)
	sp, _ := res.RankLoss.SeriesByName(AlgSelectPath)
	// MatRoMe's loss must not exceed SelectPath's (paper Fig. 8) — compare
	// at the largest candidate count where the gap is most pronounced.
	if mat.FinalMean() > sp.FinalMean()+0.2 {
		t.Fatalf("MatRoMe loss %v above SelectPath %v", mat.FinalMean(), sp.FinalMean())
	}
	// Losses are non-negative.
	for _, s := range res.RankLoss.Series {
		for _, p := range s.Points {
			if p.Mean < -1e-9 {
				t.Fatalf("negative rank loss in %s: %v", s.Name, p)
			}
		}
	}
	for _, s := range res.IdentLoss.Series {
		for _, p := range s.Points {
			if p.Mean < -1e-9 {
				t.Fatalf("negative identifiability loss in %s: %v", s.Name, p)
			}
		}
	}
}

func TestLearningShape(t *testing.T) {
	fig, err := Learning(LearningConfig{
		Workload:   testWorkload(),
		Multiplier: []float64{0.75},
		Epochs:     []int{60, 200},
	}, testScale())
	if err != nil {
		t.Fatal(err)
	}
	lsrShort, _ := fig.SeriesByName("LSR-60")
	lsrLong, _ := fig.SeriesByName("LSR-200")
	prob, _ := fig.SeriesByName(AlgProbRoMe)
	sp, _ := fig.SeriesByName(AlgSelectPath)
	ps, _ := prob.MeanAt(0.75)
	ss, _ := sp.MeanAt(0.75)
	ls, _ := lsrLong.MeanAt(0.75)
	shortV, _ := lsrShort.MeanAt(0.75)
	// Known-distribution ProbRoMe upper-bounds the learner; the learner
	// beats the failure-agnostic baseline (paper Fig. 10). Allow small
	// sampling slack.
	if ls > ps+1.0 {
		t.Fatalf("LSR %v above known-distribution ProbRoMe %v", ls, ps)
	}
	if ls < ss-1.0 {
		t.Fatalf("LSR %v clearly below SelectPath %v", ls, ss)
	}
	_ = shortV // short horizon is reported; no strict ordering guaranteed at tiny scale
}

func TestLazyAblation(t *testing.T) {
	res, err := LazyAblation(testWorkload(), testScale(), 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if res.LazyEvaluations <= 0 || res.NaiveEvaluations <= 0 {
		t.Fatalf("evaluation counts: %+v", res)
	}
	if res.LazyEvaluations > res.NaiveEvaluations {
		t.Fatalf("lazy used more evaluations than naive: %+v", res)
	}
	if res.Speedup < 1 {
		t.Fatalf("speedup %v < 1", res.Speedup)
	}
}

func TestIntensitySweep(t *testing.T) {
	fig, err := IntensitySweep(testWorkload(), testScale(), []float64{1, 3}, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	prob, _ := fig.SeriesByName(AlgProbRoMe)
	sp, _ := fig.SeriesByName(AlgSelectPath)
	if len(prob.Points) != 2 || len(sp.Points) != 2 {
		t.Fatalf("points: %+v", fig.Series)
	}
	// Higher intensity → lower surviving rank for the baseline.
	if sp.Points[1].Mean > sp.Points[0].Mean+1e-9 {
		t.Fatalf("SelectPath rank rose with intensity: %v", sp.Points)
	}
}

func TestOracleQuality(t *testing.T) {
	res, err := OracleQuality(testWorkload(), testScale(), 0.75, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbBoundER <= 0 || res.MonteCarloER <= 0 {
		t.Fatalf("degenerate oracle quality: %+v", res)
	}
	// The two oracles should land in the same ballpark.
	ratio := res.ProbBoundER / res.MonteCarloER
	if ratio < 0.7 || ratio > 1.5 {
		t.Fatalf("oracle ER ratio %v out of range: %+v", ratio, res)
	}
}

func TestFigureString(t *testing.T) {
	fig := Figure{
		ID: "x", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 1, Mean: 2, Std: 0.5}}},
			{Name: "b", Points: []Point{{X: 2, Mean: 3}}},
		},
	}
	out := fig.String()
	if !strings.Contains(out, "a mean") || !strings.Contains(out, "\t-\t-") {
		t.Fatalf("String = %q", out)
	}
	if _, ok := fig.SeriesByName("nope"); ok {
		t.Fatal("phantom series")
	}
	var empty Series
	if empty.FinalMean() != 0 {
		t.Fatal("FinalMean of empty series")
	}
	if _, ok := empty.MeanAt(0); ok {
		t.Fatal("MeanAt on empty series")
	}
}

func TestFigureJSON(t *testing.T) {
	fig := Figure{
		ID: "fx", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "s", Points: []Point{{X: 1, Mean: 2, Std: 0.1}}}},
	}
	out, err := fig.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id": "fx"`, `"name": "s"`, `"mean": 2`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
}
