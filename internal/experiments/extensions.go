package experiments

import (
	"context"
	"fmt"
	"math"

	"robusttomo/internal/bandit"
	"robusttomo/internal/er"
	"robusttomo/internal/failure"
	"robusttomo/internal/routing"
	"robusttomo/internal/selection"
	"robusttomo/internal/sim"
	"robusttomo/internal/stats"
	"robusttomo/internal/tomo"
)

// CorrelatedConfig parameterizes the shared-risk ablation, an extension
// beyond the paper's independence assumption: links inside the same PoP
// are grouped into SRLGs that fail together.
type CorrelatedConfig struct {
	Workload   Workload
	Multiplier float64 // budget, × basis cost
	GroupProb  float64 // per-epoch SRLG failure probability
	MaxGroup   int     // max links per SRLG
}

// Correlated compares a correlation-blind ProbRoMe (fed the marginal link
// probabilities) against a correlation-aware MonteRoMe (sampling the true
// joint process) and SelectPath, all evaluated under the correlated
// process.
func Correlated(cfg CorrelatedConfig, sc Scale) (Figure, error) {
	fig := Figure{
		ID:     fmt.Sprintf("ext-correlated-%s", cfg.Workload.label()),
		Title:  fmt.Sprintf("Shared-risk link groups (%s)", cfg.Workload.label()),
		XLabel: "algorithm index (0=ProbRoMe-marginals 1=MonteRoMe-joint 2=SelectPath)",
		YLabel: "rank",
	}
	samples := map[string][]float64{}
	names := []string{"ProbRoMe-marginals", "MonteRoMe-joint", AlgSelectPath}

	for set := 0; set < sc.MonitorSets; set++ {
		in, err := BuildInstance(cfg.Workload, sc, set)
		if err != nil {
			return Figure{}, err
		}
		groups := popGroups(in, cfg.MaxGroup, cfg.GroupProb)
		corr, err := failure.NewCorrelatedModel(in.Model, groups)
		if err != nil {
			return Figure{}, err
		}
		budget := cfg.Multiplier * instanceBasisCost(in)

		// Correlation-blind: independent model with matching marginals.
		blindModel, err := corr.IndependentApproximation()
		if err != nil {
			return Figure{}, err
		}
		blind, err := selection.RoMe(in.PM, in.Costs, budget,
			er.NewProbBoundInc(in.PM, blindModel), selection.NewOptions())
		if err != nil {
			return Figure{}, err
		}
		// Correlation-aware: Monte Carlo over the true joint process.
		awareOracle := er.NewMonteCarloInc(in.PM, corr, sc.MonteCarloRuns, stats.NewRNG(sc.Seed, 1200+uint64(set)))
		aware, err := selection.RoMe(in.PM, in.Costs, budget, awareOracle, selection.NewOptions())
		if err != nil {
			return Figure{}, err
		}
		base, err := selection.SelectPathBudgeted(in.PM, in.Costs, budget)
		if err != nil {
			return Figure{}, err
		}

		scenarios := failure.SampleScenarios(corr, stats.NewRNG(sc.Seed, 1300+uint64(set)), sc.Scenarios)
		for i, sel := range [][]int{blind.Selected, aware.Selected, base.Selected} {
			ranks, _ := in.EvalMetrics(sel, scenarios, false)
			samples[names[i]] = append(samples[names[i]], ranks...)
		}
	}
	for i, name := range names {
		fig.Series = append(fig.Series, Series{Name: name, Points: []Point{{
			X:    float64(i),
			Mean: stats.Mean(samples[name]),
			Std:  stats.StdDev(samples[name]),
		}}})
	}
	return fig, nil
}

// popGroups builds one SRLG per PoP from intra-PoP links.
func popGroups(in *Instance, maxGroup int, prob float64) []failure.SRLG {
	if maxGroup <= 0 {
		maxGroup = 4
	}
	perPoP := map[int][]int{}
	for _, e := range in.Topology.Graph.Edges() {
		pu := in.Topology.PoPOf[e.U]
		pv := in.Topology.PoPOf[e.V]
		if pu == pv && len(perPoP[pu]) < maxGroup {
			perPoP[pu] = append(perPoP[pu], int(e.ID))
		}
	}
	var groups []failure.SRLG
	for p := 0; p < len(in.Topology.PoPOf); p++ {
		links, ok := perPoP[p]
		if !ok || len(links) < 2 {
			continue
		}
		groups = append(groups, failure.SRLG{Links: links, Prob: prob})
	}
	return groups
}

// MultipathConfig parameterizes the k-shortest-paths extension: enriching
// the candidate set with alternative routes per monitor pair (the paper
// fixes k = 1, a single routing-determined path per pair).
type MultipathConfig struct {
	Workload   Workload
	Multiplier float64
	K          []int // candidate-route counts per pair, e.g. {1, 2, 3}
}

// Multipath measures how robust rank improves when the same monitors may
// probe up to k routes per pair under the same budget.
func Multipath(cfg MultipathConfig, sc Scale) (Figure, error) {
	if len(cfg.K) == 0 {
		cfg.K = []int{1, 2}
	}
	fig := Figure{
		ID:     fmt.Sprintf("ext-multipath-%s", cfg.Workload.label()),
		Title:  fmt.Sprintf("Multipath candidates (%s)", cfg.Workload.label()),
		XLabel: "routes per monitor pair (k)",
		YLabel: "rank",
	}
	series := Series{Name: AlgProbRoMe}
	for _, k := range cfg.K {
		var samples []float64
		for set := 0; set < sc.MonitorSets; set++ {
			// Build the base instance for monitors/cost/failure models,
			// then re-derive candidates with k routes per pair.
			in, err := BuildInstance(cfg.Workload, sc, set)
			if err != nil {
				return Figure{}, err
			}
			paths, err := routing.MonitorPairsK(in.Topology.Graph, in.Sources, in.Dests, k)
			if err != nil {
				return Figure{}, err
			}
			pm, err := tomo.NewPathMatrix(paths, in.Topology.Graph.NumEdges())
			if err != nil {
				return Figure{}, err
			}
			costs := in.Cost.Costs(paths)
			// Budget from the k=1 basis cost so all k values compete on
			// equal spending.
			budget := cfg.Multiplier * instanceBasisCost(in)
			res, err := selection.RoMe(pm, costs, budget, er.NewProbBoundInc(pm, in.Model), selection.NewOptions())
			if err != nil {
				return Figure{}, err
			}
			scenarios := in.Model.SampleN(stats.NewRNG(sc.Seed, 1700+uint64(set)*3+uint64(k)), sc.Scenarios)
			for _, scn := range scenarios {
				samples = append(samples, float64(pm.RankUnder(res.Selected, scn)))
			}
		}
		series.Points = append(series.Points, Point{X: float64(k), Mean: stats.Mean(samples), Std: stats.StdDev(samples)})
	}
	fig.Series = []Series{series}
	return fig, nil
}

// ClosedLoopConfig parameterizes the end-to-end system comparison: the
// closed-loop runner (internal/sim) in static (known distribution) vs
// learning (unknown distribution) mode over the same failure schedule.
type ClosedLoopConfig struct {
	Workload   Workload
	Multiplier float64
	Horizon    int
	Windows    int
}

// ClosedLoop runs both loop modes and reports the average surviving rank
// per epoch window: the operational view of Fig. 10 (how quickly the
// learning system closes the gap to the known-distribution one).
func ClosedLoop(cfg ClosedLoopConfig, sc Scale) (Figure, error) {
	in, err := BuildInstance(cfg.Workload, sc, 0)
	if err != nil {
		return Figure{}, err
	}
	budget := cfg.Multiplier * instanceBasisCost(in)
	metrics := make([]float64, in.PM.NumLinks())
	mRng := stats.NewRNG(sc.Seed, 1600)
	for i := range metrics {
		metrics[i] = 1 + mRng.Float64()*9
	}
	if cfg.Windows <= 0 {
		cfg.Windows = 8
	}
	window := cfg.Horizon / cfg.Windows
	if window < 1 {
		window = 1
	}

	fig := Figure{
		ID:     fmt.Sprintf("ext-closedloop-%s", cfg.Workload.label()),
		Title:  fmt.Sprintf("Closed loop: static vs learning (%s)", cfg.Workload.label()),
		XLabel: "epoch (window end)",
		YLabel: "avg surviving rank",
	}
	for _, mode := range []struct {
		name string
		mode sim.Mode
	}{{"Static", sim.Static}, {"Learning", sim.Learning}} {
		runner, err := sim.New(sim.Config{
			PM:       in.PM,
			Costs:    in.Costs,
			Budget:   budget,
			Metrics:  metrics,
			Failures: in.Model,
			Horizon:  cfg.Horizon,
			Mode:     mode.mode,
			Model:    in.Model,
			Seed:     sc.Seed,
		})
		if err != nil {
			return Figure{}, err
		}
		reports, err := runner.Run(context.Background(), cfg.Horizon)
		if err != nil {
			return Figure{}, err
		}
		series := Series{Name: mode.name}
		for start := 0; start < len(reports); start += window {
			end := start + window
			if end > len(reports) {
				end = len(reports)
			}
			ranks := make([]float64, 0, end-start)
			for _, rep := range reports[start:end] {
				ranks = append(ranks, float64(rep.Rank))
			}
			series.Points = append(series.Points, Point{
				X:    float64(end),
				Mean: stats.Mean(ranks),
				Std:  stats.StdDev(ranks),
			})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// LearnerDuelConfig parameterizes the LSR vs ε-greedy comparison.
type LearnerDuelConfig struct {
	Workload   Workload
	Multiplier float64
	Horizon    int
	Epsilon    float64
	Windows    int
}

// LearnerDuel races LSR's UCB exploration against the classical ε-greedy
// baseline on the same environment stream, reporting average per-window
// reward (surviving rank). UCB's directed exploration should dominate or
// match at every window.
func LearnerDuel(cfg LearnerDuelConfig, sc Scale) (Figure, error) {
	in, err := BuildInstance(cfg.Workload, sc, 0)
	if err != nil {
		return Figure{}, err
	}
	budget := cfg.Multiplier * instanceBasisCost(in)
	if cfg.Windows <= 0 {
		cfg.Windows = 8
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 0.2
	}
	window := cfg.Horizon / cfg.Windows
	if window < 1 {
		window = 1
	}

	fig := Figure{
		ID:     fmt.Sprintf("ext-learnerduel-%s", cfg.Workload.label()),
		Title:  fmt.Sprintf("LSR (UCB) vs ε-greedy (%s)", cfg.Workload.label()),
		XLabel: "epoch (window end)",
		YLabel: "avg reward (rank)",
	}

	type stepper interface {
		Step(bandit.Env) ([]int, int, error)
	}
	lsr, err := bandit.New(in.PM, in.Costs, budget, bandit.Options{})
	if err != nil {
		return Figure{}, err
	}
	eg, err := bandit.NewEpsilonGreedy(in.PM, in.Costs, budget, cfg.Epsilon, stats.NewRNG(sc.Seed, 1800))
	if err != nil {
		return Figure{}, err
	}
	learners := []struct {
		name string
		s    stepper
	}{{"LSR", lsr}, {fmt.Sprintf("eps-greedy-%.1f", cfg.Epsilon), eg}}

	for _, l := range learners {
		env := bandit.NewFailureEnv(in.PM, in.Model, stats.NewRNG(sc.Seed, 1900))
		series := Series{Name: l.name}
		var rewards []float64
		for e := 1; e <= cfg.Horizon; e++ {
			_, r, err := l.s.Step(env)
			if err != nil {
				return Figure{}, err
			}
			rewards = append(rewards, float64(r))
			if e%window == 0 || e == cfg.Horizon {
				series.Points = append(series.Points, Point{
					X:    float64(e),
					Mean: stats.Mean(rewards),
					Std:  stats.StdDev(rewards),
				})
				rewards = rewards[:0]
			}
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// RegretConfig parameterizes the regret-curve extension: LSR's cumulative
// regret against the best fixed action on an independent-availability
// environment, the setting of Theorem 10.
type RegretConfig struct {
	Workload    Workload
	Multiplier  float64
	Horizon     int
	Checkpoints int
}

// RegretCurve runs LSR and reports cumulative regret at checkpoints, plus
// the regret normalized by ln(n) — the paper's bound predicts the
// normalized curve flattens.
type RegretCurve struct {
	Epochs     []int
	Regret     []float64
	PerLog     []float64 // Regret / ln(n)
	BestReward float64   // expected per-epoch reward of the comparator
}

// Regret measures LSR's empirical regret curve.
func Regret(cfg RegretConfig, sc Scale) (RegretCurve, error) {
	in, err := BuildInstance(cfg.Workload, sc, 0)
	if err != nil {
		return RegretCurve{}, err
	}
	budget := cfg.Multiplier * instanceBasisCost(in)

	// True per-path availabilities; the environment realizes them
	// independently (Theorem 10's setting).
	theta := er.Availabilities(in.PM, in.Model)

	// Comparator: the action RoMe picks knowing the true θ, valued exactly
	// under independence via a large sample.
	oracle := er.NewThetaBoundInc(in.PM, theta)
	best, err := selection.RoMe(in.PM, in.Costs, budget, oracle, selection.NewOptions())
	if err != nil {
		return RegretCurve{}, err
	}
	evalRng := stats.NewRNG(sc.Seed, 1400)
	const evalRuns = 20000
	sum := 0.0
	for i := 0; i < evalRuns; i++ {
		avail := er.SampleTheta(theta, evalRng)
		var up []int
		for _, q := range best.Selected {
			if avail[q] {
				up = append(up, q)
			}
		}
		sum += float64(in.PM.RankOf(up))
	}
	bestReward := sum / evalRuns

	learner, err := bandit.New(in.PM, in.Costs, budget, bandit.Options{})
	if err != nil {
		return RegretCurve{}, err
	}
	env := bandit.NewThetaEnv(theta, stats.NewRNG(sc.Seed, 1500))

	curve := RegretCurve{BestReward: bestReward}
	if cfg.Checkpoints <= 0 {
		cfg.Checkpoints = 10
	}
	step := cfg.Horizon / cfg.Checkpoints
	if step == 0 {
		step = 1
	}
	for e := 1; e <= cfg.Horizon; e++ {
		if _, _, err := learner.Step(env); err != nil {
			return RegretCurve{}, err
		}
		if e%step == 0 || e == cfg.Horizon {
			regret := bestReward*float64(e) - learner.CumulativeReward()
			curve.Epochs = append(curve.Epochs, e)
			curve.Regret = append(curve.Regret, regret)
			curve.PerLog = append(curve.PerLog, regret/math.Log(float64(e)+1))
		}
	}
	return curve, nil
}
