package experiments

import (
	"math"
	"testing"
)

func TestCorrelatedExtension(t *testing.T) {
	fig, err := Correlated(CorrelatedConfig{
		Workload:   testWorkload(),
		Multiplier: 0.75,
		GroupProb:  0.15,
		MaxGroup:   4,
	}, testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	get := func(name string) float64 {
		s, ok := fig.SeriesByName(name)
		if !ok || len(s.Points) != 1 {
			t.Fatalf("series %s missing: %+v", name, fig.Series)
		}
		return s.Points[0].Mean
	}
	blind := get("ProbRoMe-marginals")
	aware := get("MonteRoMe-joint")
	base := get(AlgSelectPath)
	// Both robust variants must beat the failure-agnostic baseline even
	// under correlated failures.
	if blind <= base || aware <= base {
		t.Fatalf("robust selections (%v, %v) not above baseline %v", blind, aware, base)
	}
	// Sanity: all ranks positive and below the no-failure maximum.
	for _, v := range []float64{blind, aware, base} {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("degenerate rank %v", v)
		}
	}
}

func TestRegretExtension(t *testing.T) {
	curve, err := Regret(RegretConfig{
		Workload:    testWorkload(),
		Multiplier:  0.5,
		Horizon:     600,
		Checkpoints: 6,
	}, testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Epochs) < 6 {
		t.Fatalf("checkpoints = %v", curve.Epochs)
	}
	if curve.BestReward <= 0 {
		t.Fatalf("best reward = %v", curve.BestReward)
	}
	// Sublinear regret: the per-epoch average regret over the last half
	// must be smaller than over the first half.
	first := curve.Regret[0] / float64(curve.Epochs[0])
	last := (curve.Regret[len(curve.Regret)-1] - curve.Regret[len(curve.Regret)/2]) /
		float64(curve.Epochs[len(curve.Epochs)-1]-curve.Epochs[len(curve.Epochs)/2])
	if last > first {
		t.Fatalf("per-epoch regret grew: first %v, late %v (curve %v)", first, last, curve.Regret)
	}
}

func TestMultipathExtension(t *testing.T) {
	fig, err := Multipath(MultipathConfig{
		Workload:   testWorkload(),
		Multiplier: 0.75,
		K:          []int{1, 2},
	}, testScale())
	if err != nil {
		t.Fatal(err)
	}
	s, ok := fig.SeriesByName(AlgProbRoMe)
	if !ok || len(s.Points) != 2 {
		t.Fatalf("series = %+v", fig.Series)
	}
	k1, _ := s.MeanAt(1)
	k2, _ := s.MeanAt(2)
	// Extra candidate routes can only help the optimizer (same budget).
	if k2 < k1-0.5 {
		t.Fatalf("k=2 rank %v clearly below k=1 rank %v", k2, k1)
	}
}

func TestClosedLoopExtension(t *testing.T) {
	fig, err := ClosedLoop(ClosedLoopConfig{
		Workload:   testWorkload(),
		Multiplier: 0.6,
		Horizon:    160,
		Windows:    4,
	}, testScale())
	if err != nil {
		t.Fatal(err)
	}
	static, ok := fig.SeriesByName("Static")
	if !ok {
		t.Fatalf("missing Static series: %+v", fig.Series)
	}
	learning, _ := fig.SeriesByName("Learning")
	if len(static.Points) != 4 || len(learning.Points) != 4 {
		t.Fatalf("windows: %d/%d", len(static.Points), len(learning.Points))
	}
	// The known-distribution loop dominates early windows; by the last
	// window the learner should be within striking distance (no collapse).
	sFinal := static.FinalMean()
	lFinal := learning.FinalMean()
	if lFinal < 0.6*sFinal {
		t.Fatalf("learning loop collapsed: %v vs static %v", lFinal, sFinal)
	}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.Mean < 0 {
				t.Fatalf("negative rank in %s: %+v", s.Name, p)
			}
		}
	}
}

func TestLearnerDuelExtension(t *testing.T) {
	fig, err := LearnerDuel(LearnerDuelConfig{
		Workload:   testWorkload(),
		Multiplier: 0.5,
		Horizon:    240,
		Windows:    4,
	}, testScale())
	if err != nil {
		t.Fatal(err)
	}
	lsr, ok := fig.SeriesByName("LSR")
	if !ok || len(lsr.Points) != 4 {
		t.Fatalf("LSR series: %+v", fig.Series)
	}
	eg, ok := fig.SeriesByName("eps-greedy-0.2")
	if !ok {
		t.Fatalf("missing eps-greedy series: %+v", fig.Series)
	}
	// By the final window LSR should be at least competitive.
	if lsr.FinalMean() < eg.FinalMean()-2 {
		t.Fatalf("LSR final %v far below eps-greedy %v", lsr.FinalMean(), eg.FinalMean())
	}
}

func TestPopGroups(t *testing.T) {
	in, err := BuildInstance(testWorkload(), testScale(), 0)
	if err != nil {
		t.Fatal(err)
	}
	groups := popGroups(in, 3, 0.1)
	if len(groups) == 0 {
		t.Fatal("no SRLGs built from PoP structure")
	}
	for _, g := range groups {
		if len(g.Links) < 2 || len(g.Links) > 3 {
			t.Fatalf("group size %d out of [2,3]", len(g.Links))
		}
		if g.Prob != 0.1 {
			t.Fatalf("group prob %v", g.Prob)
		}
	}
}
