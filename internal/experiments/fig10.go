package experiments

import (
	"fmt"

	"robusttomo/internal/bandit"
	"robusttomo/internal/stats"
)

// LearningConfig parameterizes Figure 10: LSR's exploit-time selection
// after a number of learning epochs, compared with the known-distribution
// ProbRoMe and with SelectPath, across budgets.
type LearningConfig struct {
	Workload   Workload
	Multiplier []float64 // budget sweep, multiples of basis cost
	Epochs     []int     // LSR learning horizons (paper: 500 and 1000)
}

// Learning reproduces Figure 10.
func Learning(cfg LearningConfig, sc Scale) (Figure, error) {
	if len(cfg.Multiplier) == 0 {
		cfg.Multiplier = DefaultMultipliers()
	}
	if len(cfg.Epochs) == 0 {
		cfg.Epochs = []int{500, 1000}
	}
	fig := Figure{
		ID:     fmt.Sprintf("fig10-%s", cfg.Workload.label()),
		Title:  fmt.Sprintf("Performance of reinforcement learning (%s, %d paths)", cfg.Workload.label(), cfg.Workload.CandidatePaths),
		XLabel: "budget multiplier (× basis cost)",
		YLabel: "rank",
	}

	names := make([]string, 0, len(cfg.Epochs)+2)
	for _, e := range cfg.Epochs {
		names = append(names, fmt.Sprintf("LSR-%d", e))
	}
	names = append(names, AlgProbRoMe, AlgSelectPath)
	samples := map[string]map[float64][]float64{}
	for _, name := range names {
		samples[name] = map[float64][]float64{}
	}

	// Trial = monitor set: streams 800+set, 900+set*7+horizon and set*11 all
	// depend only on the set index. cells[set][m*len(names)+ni] is the rank
	// sample vector for multiplier m and series ni, in names order.
	cells := make([][][]float64, sc.MonitorSets)
	err := forTrials(effectiveWorkers(sc.Workers), sc.MonitorSets, sc.Progress, func(set int) error {
		in, err := BuildInstance(cfg.Workload, sc, set)
		if err != nil {
			return err
		}
		basisCost := instanceBasisCost(in)
		scRng := stats.NewRNG(sc.Seed, 800+uint64(set))
		scenarios := in.Model.SampleN(scRng, sc.Scenarios)

		cell := make([][]float64, len(cfg.Multiplier)*len(names))
		for m, mult := range cfg.Multiplier {
			budget := mult * basisCost

			// LSR at each horizon: learn online against the true failure
			// process, then evaluate its exploitation-time selection.
			for h, horizon := range cfg.Epochs {
				learner, err := bandit.New(in.PM, in.Costs, budget, bandit.Options{})
				if err != nil {
					return err
				}
				env := bandit.NewFailureEnv(in.PM, in.Model, stats.NewRNG(sc.Seed, 900+uint64(set)*7+uint64(horizon)))
				for e := 0; e < horizon; e++ {
					if _, _, err := learner.Step(env); err != nil {
						return err
					}
				}
				selected, err := learner.Exploit()
				if err != nil {
					return err
				}
				ranks, _ := in.EvalMetrics(selected, scenarios, false)
				cell[m*len(names)+h] = ranks
			}

			for a, alg := range []string{AlgProbRoMe, AlgSelectPath} {
				selected, err := in.Select(alg, budget, sc, uint64(set)*11)
				if err != nil {
					return err
				}
				ranks, _ := in.EvalMetrics(selected, scenarios, false)
				cell[m*len(names)+len(cfg.Epochs)+a] = ranks
			}
		}
		cells[set] = cell
		return nil
	})
	if err != nil {
		return Figure{}, err
	}
	for set := range cells {
		for m, mult := range cfg.Multiplier {
			for ni, name := range names {
				samples[name][mult] = append(samples[name][mult], cells[set][m*len(names)+ni]...)
			}
		}
	}

	for _, name := range names {
		s := Series{Name: name}
		for _, mult := range cfg.Multiplier {
			xs := samples[name][mult]
			s.Points = append(s.Points, Point{X: mult, Mean: stats.Mean(xs), Std: stats.StdDev(xs)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
