package experiments

import (
	"fmt"

	"robusttomo/internal/stats"
)

// Fig3Config parameterizes the Section II motivation experiment: how the
// rank of two arbitrary bases and of the full candidate set degrades as the
// number of concurrent link failures grows.
type Fig3Config struct {
	Workload    Workload
	MaxFailures int // x axis runs 0..MaxFailures
	Trials      int // failure draws per x value
}

// Fig3 reproduces Figure 3. The two "arbitrary" bases come from scanning
// the candidates in natural and in seeded-shuffled order — two different
// but equally arbitrary maximal independent sets, as in the paper's
// motivation.
//
// The shuffle keeps the figure's historical stream 3; each (path set, k)
// cell draws its failure scenarios from its own trialStream-derived
// stream, so cells are independent trials for the parallel runner. (The
// original implementation threaded one RNG through every cell serially;
// the per-cell streams changed the sampled scenarios, and hence the exact
// curve values, once — statistically the figure is unchanged.)
func Fig3(cfg Fig3Config, sc Scale) (Figure, error) {
	in, err := BuildInstance(cfg.Workload, sc, 0)
	if err != nil {
		return Figure{}, err
	}
	n := in.PM.NumPaths()
	natural := make([]int, n)
	for i := range natural {
		natural[i] = i
	}
	shuffled := stats.NewRNG(sc.Seed, 3).Perm(n)

	basis1 := in.PM.SelectBasisIndices(natural)
	basis2 := in.PM.SelectBasisIndices(shuffled)

	sets := []struct {
		name string
		idx  []int
	}{
		{"Basis-1", basis1},
		{"Basis-2", basis2},
		{"AllPaths", natural},
	}

	fig := Figure{
		ID:     fmt.Sprintf("fig3-%s", cfg.Workload.label()),
		Title:  "Rank of a basis under failures",
		XLabel: "concurrent link failures",
		YLabel: "rank",
	}

	// Trial = one (path set, failure count) cell, row-major over sets.
	perSet := cfg.MaxFailures + 1
	points := make([]Point, len(sets)*perSet)
	err = forTrials(effectiveWorkers(sc.Workers), len(points), sc.Progress, func(trial int) error {
		set, k := sets[trial/perSet], trial%perSet
		rng := stats.NewRNG(sc.Seed, trialStream(3, uint64(trial)))
		samples := make([]float64, cfg.Trials)
		for t := 0; t < cfg.Trials; t++ {
			scenario, err := in.Model.ExactK(rng, k)
			if err != nil {
				return err
			}
			samples[t] = float64(in.PM.RankUnder(set.idx, scenario))
		}
		points[trial] = Point{X: float64(k), Mean: stats.Mean(samples), Std: stats.StdDev(samples)}
		return nil
	})
	if err != nil {
		return Figure{}, err
	}
	for s, set := range sets {
		fig.Series = append(fig.Series, Series{Name: set.name, Points: points[s*perSet : (s+1)*perSet]})
	}
	return fig, nil
}
