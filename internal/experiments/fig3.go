package experiments

import (
	"fmt"

	"robusttomo/internal/stats"
)

// Fig3Config parameterizes the Section II motivation experiment: how the
// rank of two arbitrary bases and of the full candidate set degrades as the
// number of concurrent link failures grows.
type Fig3Config struct {
	Workload    Workload
	MaxFailures int // x axis runs 0..MaxFailures
	Trials      int // failure draws per x value
}

// Fig3 reproduces Figure 3. The two "arbitrary" bases come from scanning
// the candidates in natural and in seeded-shuffled order — two different
// but equally arbitrary maximal independent sets, as in the paper's
// motivation.
func Fig3(cfg Fig3Config, sc Scale) (Figure, error) {
	in, err := BuildInstance(cfg.Workload, sc, 0)
	if err != nil {
		return Figure{}, err
	}
	n := in.PM.NumPaths()
	natural := make([]int, n)
	for i := range natural {
		natural[i] = i
	}
	rng := stats.NewRNG(sc.Seed, 3)
	shuffled := rng.Perm(n)

	basis1 := in.PM.SelectBasisIndices(natural)
	basis2 := in.PM.SelectBasisIndices(shuffled)

	sets := []struct {
		name string
		idx  []int
	}{
		{"Basis-1", basis1},
		{"Basis-2", basis2},
		{"AllPaths", natural},
	}

	fig := Figure{
		ID:     fmt.Sprintf("fig3-%s", cfg.Workload.label()),
		Title:  "Rank of a basis under failures",
		XLabel: "concurrent link failures",
		YLabel: "rank",
	}
	for _, set := range sets {
		series := Series{Name: set.name}
		for k := 0; k <= cfg.MaxFailures; k++ {
			samples := make([]float64, cfg.Trials)
			for t := 0; t < cfg.Trials; t++ {
				scenario, err := in.Model.ExactK(rng, k)
				if err != nil {
					return Figure{}, err
				}
				samples[t] = float64(in.PM.RankUnder(set.idx, scenario))
			}
			series.Points = append(series.Points, Point{
				X:    float64(k),
				Mean: stats.Mean(samples),
				Std:  stats.StdDev(samples),
			})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}
