package experiments

import (
	"fmt"

	"robusttomo/internal/er"
	"robusttomo/internal/stats"
)

// Fig4Config parameterizes the ER-approximation comparison (Section IV-C):
// an arbitrary basis plus a growing number of linearly dependent paths,
// valued by a large Monte Carlo reference ("true" ER), the probabilistic
// bound, and a small Monte Carlo panel.
type Fig4Config struct {
	Workload      Workload
	MaxDependent  int // x axis runs 0..MaxDependent dependent paths
	ReferenceRuns int // "truth" panel size (paper: 100000)
	SmallRuns     int // cheap panel size (paper: 50)
}

// Fig4 reproduces Figure 4.
func Fig4(cfg Fig4Config, sc Scale) (Figure, error) {
	in, err := BuildInstance(cfg.Workload, sc, 0)
	if err != nil {
		return Figure{}, err
	}
	n := in.PM.NumPaths()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	basis := in.PM.SelectBasisIndices(order)
	inBasis := make([]bool, n)
	for _, q := range basis {
		inBasis[q] = true
	}
	var dependents []int
	for q := 0; q < n && len(dependents) < cfg.MaxDependent; q++ {
		if !inBasis[q] {
			dependents = append(dependents, q)
		}
	}
	if len(dependents) == 0 {
		return Figure{}, fmt.Errorf("experiments: no dependent candidates (rank %d of %d paths)", len(basis), n)
	}
	// Small instances may offer fewer dependents than requested; clamp the
	// x axis rather than fail.
	if len(dependents) < cfg.MaxDependent {
		cfg.MaxDependent = len(dependents)
	}

	ref := Series{Name: fmt.Sprintf("MC-%d", cfg.ReferenceRuns)}
	bound := Series{Name: "ProbBound"}
	small := Series{Name: fmt.Sprintf("MC-%d", cfg.SmallRuns)}

	// Trial = one x-axis point d (streams 40+d and 400+d are per-point).
	type cell struct{ ref, bound, small Point }
	cells := make([]cell, cfg.MaxDependent+1)
	err = forTrials(effectiveWorkers(sc.Workers), len(cells), sc.Progress, func(d int) error {
		set := append(append([]int{}, basis...), dependents[:d]...)
		x := float64(d)
		refRng := stats.NewRNG(sc.Seed, 40+uint64(d))
		smallRng := stats.NewRNG(sc.Seed, 400+uint64(d))
		cells[d] = cell{
			ref:   Point{X: x, Mean: er.MonteCarlo(in.PM, in.Model, set, cfg.ReferenceRuns, refRng)},
			bound: Point{X: x, Mean: er.Bound(in.PM, in.Model, set)},
			small: Point{X: x, Mean: er.MonteCarlo(in.PM, in.Model, set, cfg.SmallRuns, smallRng)},
		}
		return nil
	})
	if err != nil {
		return Figure{}, err
	}
	for _, c := range cells {
		ref.Points = append(ref.Points, c.ref)
		bound.Points = append(bound.Points, c.bound)
		small.Points = append(small.Points, c.small)
	}

	return Figure{
		ID:     fmt.Sprintf("fig4-%s", cfg.Workload.label()),
		Title:  "Comparing ER computation for different approaches",
		XLabel: "linearly dependent paths",
		YLabel: "expected rank",
		Series: []Series{ref, bound, small},
	}, nil
}
