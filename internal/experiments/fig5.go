package experiments

import (
	"fmt"

	"robusttomo/internal/stats"
)

// BudgetSweepConfig parameterizes the budget-sweep figures (5, 6 and 7).
// Budgets are expressed as multiples of the instance's SelectPath basis
// cost, which centers the sweep on the regime the paper plots (SelectPath
// saturates at multiplier 1; RoMe saturates earlier).
type BudgetSweepConfig struct {
	Workload   Workload
	Multiplier []float64 // budget = multiplier × PC(basis)
	Algorithms []string
	// WithIdentifiability also evaluates the link-identifiability metric
	// (Figure 7).
	WithIdentifiability bool
}

// DefaultMultipliers spans the paper's budget range.
func DefaultMultipliers() []float64 { return []float64{0.25, 0.5, 0.75, 1.0, 1.25} }

// BudgetSweepResult carries the rank figure and, when requested, the
// identifiability figure over the same runs.
type BudgetSweepResult struct {
	Rank  Figure
	Ident Figure
	// BasisCosts records PC(basis) per monitor set, for reporting the
	// absolute budget scale.
	BasisCosts []float64
}

// BudgetSweep reproduces Figure 5 (average rank ± std vs budget) and, with
// WithIdentifiability, Figure 7 in the same pass.
func BudgetSweep(cfg BudgetSweepConfig, sc Scale) (BudgetSweepResult, error) {
	if len(cfg.Algorithms) == 0 {
		cfg.Algorithms = []string{AlgProbRoMe, AlgMonteRoMe, AlgSelectPath}
	}
	if len(cfg.Multiplier) == 0 {
		cfg.Multiplier = DefaultMultipliers()
	}

	res := BudgetSweepResult{
		Rank: Figure{
			ID:     fmt.Sprintf("fig5-%s", cfg.Workload.label()),
			Title:  fmt.Sprintf("Performance with varying budget (%s, %d paths)", cfg.Workload.label(), cfg.Workload.CandidatePaths),
			XLabel: "budget multiplier (× basis cost)",
			YLabel: "rank",
		},
		Ident: Figure{
			ID:     fmt.Sprintf("fig7-%s", cfg.Workload.label()),
			Title:  fmt.Sprintf("Link identifiability with varying budget (%s)", cfg.Workload.label()),
			XLabel: "budget multiplier (× basis cost)",
			YLabel: "identifiable links",
		},
	}

	// Trial = monitor set: every RNG stream below depends only on the set
	// index, so trials are independent and fold back in set order.
	type cell struct{ ranks, idents []float64 }
	type trialResult struct {
		basisCost float64
		// cells[alg index][multiplier index], in config order.
		cells [][]cell
	}
	trials := make([]trialResult, sc.MonitorSets)
	err := forTrials(effectiveWorkers(sc.Workers), sc.MonitorSets, sc.Progress, func(set int) error {
		in, err := BuildInstance(cfg.Workload, sc, set)
		if err != nil {
			return err
		}
		basisCost := instanceBasisCost(in)
		scRng := stats.NewRNG(sc.Seed, 500+uint64(set))
		scenarios := in.Model.SampleN(scRng, sc.Scenarios)

		tr := trialResult{basisCost: basisCost, cells: make([][]cell, len(cfg.Algorithms))}
		for a := range tr.cells {
			tr.cells[a] = make([]cell, len(cfg.Multiplier))
		}
		for m, mult := range cfg.Multiplier {
			budget := mult * basisCost
			for a, alg := range cfg.Algorithms {
				selected, err := in.Select(alg, budget, sc, uint64(set)*31+uint64(mult*100))
				if err != nil {
					return err
				}
				ranks, idents := in.EvalMetrics(selected, scenarios, cfg.WithIdentifiability)
				tr.cells[a][m] = cell{ranks: ranks, idents: idents}
			}
		}
		trials[set] = tr
		return nil
	})
	if err != nil {
		return BudgetSweepResult{}, err
	}

	// Serial fold in set order, appending exactly as the serial loop did.
	rankSamples := map[string]map[float64][]float64{}
	identSamples := map[string]map[float64][]float64{}
	for _, alg := range cfg.Algorithms {
		rankSamples[alg] = map[float64][]float64{}
		identSamples[alg] = map[float64][]float64{}
	}
	for set := range trials {
		res.BasisCosts = append(res.BasisCosts, trials[set].basisCost)
		for m, mult := range cfg.Multiplier {
			for a, alg := range cfg.Algorithms {
				c := trials[set].cells[a][m]
				rankSamples[alg][mult] = append(rankSamples[alg][mult], c.ranks...)
				if cfg.WithIdentifiability {
					identSamples[alg][mult] = append(identSamples[alg][mult], c.idents...)
				}
			}
		}
	}

	for _, alg := range cfg.Algorithms {
		rs := Series{Name: alg}
		is := Series{Name: alg}
		for _, mult := range cfg.Multiplier {
			samples := rankSamples[alg][mult]
			rs.Points = append(rs.Points, Point{X: mult, Mean: stats.Mean(samples), Std: stats.StdDev(samples)})
			if cfg.WithIdentifiability {
				id := identSamples[alg][mult]
				is.Points = append(is.Points, Point{X: mult, Mean: stats.Mean(id), Std: stats.StdDev(id)})
			}
		}
		res.Rank.Series = append(res.Rank.Series, rs)
		if cfg.WithIdentifiability {
			res.Ident.Series = append(res.Ident.Series, is)
		}
	}
	return res, nil
}

// instanceBasisCost returns PC of the SelectPath basis, the sweep's budget
// unit.
func instanceBasisCost(in *Instance) float64 {
	total := 0.0
	for _, q := range in.PM.SelectBasisIndices(naturalOrder(in.PM.NumPaths())) {
		total += in.Costs[q]
	}
	return total
}

func naturalOrder(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// RankCDFConfig parameterizes Figure 6: the CDF of the delivered rank at a
// fixed budget.
type RankCDFConfig struct {
	Workload   Workload
	Multiplier float64 // budget as a multiple of the basis cost
	Algorithms []string
}

// RankCDF reproduces Figure 6. Each series' points are (rank, cumulative
// probability) steps.
func RankCDF(cfg RankCDFConfig, sc Scale) (Figure, error) {
	if len(cfg.Algorithms) == 0 {
		cfg.Algorithms = []string{AlgProbRoMe, AlgMonteRoMe, AlgSelectPath}
	}
	fig := Figure{
		ID:     fmt.Sprintf("fig6-%s", cfg.Workload.label()),
		Title:  fmt.Sprintf("CDF of rank (%s, budget %.2f× basis cost)", cfg.Workload.label(), cfg.Multiplier),
		XLabel: "rank",
		YLabel: "CDF",
	}
	// Trial = monitor set (streams 600+set and set*17 are per-set).
	trials := make([][][]float64, sc.MonitorSets) // [set][alg index]ranks
	err := forTrials(effectiveWorkers(sc.Workers), sc.MonitorSets, sc.Progress, func(set int) error {
		in, err := BuildInstance(cfg.Workload, sc, set)
		if err != nil {
			return err
		}
		budget := cfg.Multiplier * instanceBasisCost(in)
		scRng := stats.NewRNG(sc.Seed, 600+uint64(set))
		scenarios := in.Model.SampleN(scRng, sc.Scenarios)
		byAlg := make([][]float64, len(cfg.Algorithms))
		for a, alg := range cfg.Algorithms {
			selected, err := in.Select(alg, budget, sc, uint64(set)*17)
			if err != nil {
				return err
			}
			byAlg[a], _ = in.EvalMetrics(selected, scenarios, false)
		}
		trials[set] = byAlg
		return nil
	})
	if err != nil {
		return Figure{}, err
	}
	samples := map[string][]float64{}
	for set := range trials {
		for a, alg := range cfg.Algorithms {
			samples[alg] = append(samples[alg], trials[set][a]...)
		}
	}
	for _, alg := range cfg.Algorithms {
		s := Series{Name: alg}
		for _, p := range stats.CDF(samples[alg]) {
			s.Points = append(s.Points, Point{X: p.X, Mean: p.P})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
