package experiments

import (
	"fmt"

	"robusttomo/internal/er"
	"robusttomo/internal/selection"
	"robusttomo/internal/stats"
)

// MatroidLossConfig parameterizes Figures 8 and 9: the linear-independence
// setting with unit costs, comparing MatRoMe against SelectPath as the
// candidate-path count grows. Metrics are losses relative to the
// no-failure case: rank loss and link-identifiability loss.
type MatroidLossConfig struct {
	// Base names the topology; its CandidatePaths field is ignored in
	// favor of PathCounts.
	Base Workload
	// PathCounts is the x axis: candidate-path counts evaluated.
	PathCounts []int
}

// MatroidLossResult carries both loss figures from one pass.
type MatroidLossResult struct {
	RankLoss  Figure // Figure 8
	IdentLoss Figure // Figure 9
}

// MatroidLoss reproduces Figures 8 and 9.
func MatroidLoss(cfg MatroidLossConfig, sc Scale) (MatroidLossResult, error) {
	res := MatroidLossResult{
		RankLoss: Figure{
			ID:     fmt.Sprintf("fig8-%s", cfg.Base.label()),
			Title:  fmt.Sprintf("Rank loss under linear independence (%s)", cfg.Base.label()),
			XLabel: "candidate paths",
			YLabel: "rank loss",
		},
		IdentLoss: Figure{
			ID:     fmt.Sprintf("fig9-%s", cfg.Base.label()),
			Title:  fmt.Sprintf("Link identifiability loss under linear independence (%s)", cfg.Base.label()),
			XLabel: "candidate paths",
			YLabel: "identifiability loss",
		},
	}

	algs := []string{AlgMatRoMe, AlgSelectPath}
	rankLoss := map[string]map[int][]float64{}
	identLoss := map[string]map[int][]float64{}
	for _, alg := range algs {
		rankLoss[alg] = map[int][]float64{}
		identLoss[alg] = map[int][]float64{}
	}

	// Trial = one (path count, monitor set) pair; stream 700+set*13+count
	// depends only on the pair, so trials are independent.
	type cell struct {
		rankLoss, identLoss [][]float64 // per algorithm, in algs order
	}
	cells := make([]cell, len(cfg.PathCounts)*sc.MonitorSets)
	err := forTrials(effectiveWorkers(sc.Workers), len(cells), sc.Progress, func(trial int) error {
		count := cfg.PathCounts[trial/sc.MonitorSets]
		set := trial % sc.MonitorSets
		w := cfg.Base
		w.CandidatePaths = count
		in, err := BuildInstance(w, sc, set)
		if err != nil {
			return err
		}
		// Unit costs; budget = rank of the full candidate set, per the
		// paper's matroid setting.
		budget := in.PM.Rank()

		ea := er.Availabilities(in.PM, in.Model)
		mat, err := selection.MatRoMe(in.PM, ea, budget, selection.MatRoMeOptions{})
		if err != nil {
			return err
		}
		sp := selection.SelectPath(in.PM)

		scRng := stats.NewRNG(sc.Seed, 700+uint64(set)*13+uint64(count))
		scenarios := in.Model.SampleN(scRng, sc.Scenarios)

		c := cell{rankLoss: make([][]float64, len(algs)), identLoss: make([][]float64, len(algs))}
		for a, idx := range [][]int{mat.Selected, sp} {
			baseRankInt, baseIdentInt := in.PM.RankAndIdentifiable(idx)
			baseRank, baseIdent := float64(baseRankInt), float64(baseIdentInt)
			ranks, idents := in.EvalMetrics(idx, scenarios, true)
			for s := range scenarios {
				c.rankLoss[a] = append(c.rankLoss[a], baseRank-ranks[s])
				c.identLoss[a] = append(c.identLoss[a], baseIdent-idents[s])
			}
		}
		cells[trial] = c
		return nil
	})
	if err != nil {
		return MatroidLossResult{}, err
	}
	for ci, count := range cfg.PathCounts {
		for set := 0; set < sc.MonitorSets; set++ {
			c := cells[ci*sc.MonitorSets+set]
			for a, alg := range algs {
				rankLoss[alg][count] = append(rankLoss[alg][count], c.rankLoss[a]...)
				identLoss[alg][count] = append(identLoss[alg][count], c.identLoss[a]...)
			}
		}
	}

	for _, alg := range algs {
		rs := Series{Name: alg}
		is := Series{Name: alg}
		for _, count := range cfg.PathCounts {
			rl := rankLoss[alg][count]
			il := identLoss[alg][count]
			rs.Points = append(rs.Points, Point{X: float64(count), Mean: stats.Mean(rl), Std: stats.StdDev(rl)})
			is.Points = append(is.Points, Point{X: float64(count), Mean: stats.Mean(il), Std: stats.StdDev(il)})
		}
		res.RankLoss.Series = append(res.RankLoss.Series, rs)
		res.IdentLoss.Series = append(res.IdentLoss.Series, is)
	}
	return res, nil
}
