package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the trial-sharded experiment runner. Every figure driver
// decomposes its work into independent trials (monitor sets, x-axis points,
// or combinations of both), runs them through forTrials, and folds the
// per-trial result slots back together in trial-index order. Two
// disciplines make the parallel results byte-identical to the serial ones
// at any worker count:
//
//  1. Per-trial RNG streams. A trial never reads an RNG another trial
//     advances: each derives its own stats.NewRNG stream, either from the
//     figure's fixed stream-numbering scheme or via trialStream for
//     figures that used to thread one serial RNG (Fig3).
//  2. Slot-then-fold accumulation. Trials write only their own result
//     slot; all shared accumulation (sample appends, series assembly)
//     happens in a serial fold over slots in trial order, exactly as the
//     serial loop would have appended.

// splitmix64 is the SplitMix64 finalizer (Steele et al., "Fast splittable
// pseudorandom number generators"): a bijective avalanche mix used to
// derive well-separated RNG stream IDs from structured trial coordinates.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// trialStream derives the RNG stream for a trial from a figure-level base
// stream and the trial's coordinate. The mix keeps streams of neighboring
// trials (and neighboring figures) statistically independent even though
// the inputs differ in a couple of low bits.
func trialStream(base, trial uint64) uint64 {
	return splitmix64(base ^ splitmix64(trial))
}

// effectiveWorkers resolves a Scale.Workers value: 0 and 1 mean serial,
// negative values mean GOMAXPROCS.
func effectiveWorkers(workers int) int {
	if workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if workers == 0 {
		return 1
	}
	return workers
}

// forTrials runs fn(trial) for every trial in [0, n), sharded over the
// given number of workers (≤1 runs inline, no goroutines). fn must confine
// its writes to the trial's own result slot; under that contract the
// caller's fold over slots is byte-identical at any worker count. progress
// (may be nil) receives monotone completion ticks; calls are serialized.
//
// On failure the workers drain and the lowest-indexed *observed* error is
// returned. Remaining trials are abandoned, so — unlike the outputs — the
// specific error value may depend on scheduling when several trials fail.
func forTrials(workers, n int, progress func(done, total int), fn func(trial int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for t := 0; t < n; t++ {
			if err := fn(t); err != nil {
				return err
			}
			if progress != nil {
				progress(t+1, n)
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup

		mu            sync.Mutex
		done          int
		firstErr      error
		firstErrTrial = n
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1) - 1)
				if t >= n || failed.Load() {
					return
				}
				err := fn(t)
				mu.Lock()
				if err != nil {
					if t < firstErrTrial {
						firstErr, firstErrTrial = err, t
					}
					failed.Store(true)
				} else {
					done++
					if progress != nil && firstErr == nil {
						progress(done, n)
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}
