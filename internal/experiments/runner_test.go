package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestEffectiveWorkers(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1},
		{1, 1},
		{3, 3},
		{-1, runtime.GOMAXPROCS(0)},
	}
	for _, c := range cases {
		if got := effectiveWorkers(c.in); got != c.want {
			t.Errorf("effectiveWorkers(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestTrialStreamDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for base := uint64(0); base < 8; base++ {
		for trial := uint64(0); trial < 64; trial++ {
			s := trialStream(base, trial)
			key := fmt.Sprintf("base %d trial %d", base, trial)
			if prev, dup := seen[s]; dup {
				t.Fatalf("stream collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}

func TestForTrialsCoversAllTrials(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 37
		hits := make([]atomic.Int64, n)
		if err := forTrials(workers, n, nil, func(trial int) error {
			hits[trial].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: trial %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForTrialsError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := forTrials(workers, 20, nil, func(trial int) error {
			if trial == 11 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, boom)
		}
	}
}

func TestForTrialsProgressMonotone(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 25
		var last, calls int
		err := forTrials(workers, n, func(done, total int) {
			if total != n {
				t.Fatalf("total = %d, want %d", total, n)
			}
			if done != last+1 {
				t.Fatalf("progress jumped from %d to %d", last, done)
			}
			last = done
			calls++
		}, func(trial int) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if calls != n || last != n {
			t.Fatalf("workers=%d: %d progress calls ending at %d, want %d", workers, calls, last, n)
		}
	}
}

// figJSON runs a figure driver at the given worker count and returns its
// JSON rendering, the byte-level representation the determinism tests
// compare.
func figJSON(t *testing.T, fig Figure, err error) string {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	s, err := fig.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRunnersParallelMatchSerial is the harness's core guarantee: every
// figure driver produces byte-identical JSON at Workers 1 and 4 (and the
// serial inline path at Workers 0).
func TestRunnersParallelMatchSerial(t *testing.T) {
	w := testWorkload()
	runs := map[string]func(sc Scale) (string, error){
		"fig3": func(sc Scale) (string, error) {
			fig, err := Fig3(Fig3Config{Workload: w, MaxFailures: 3, Trials: 10}, sc)
			if err != nil {
				return "", err
			}
			return fig.JSON()
		},
		"fig4": func(sc Scale) (string, error) {
			fig, err := Fig4(Fig4Config{Workload: w, MaxDependent: 3, ReferenceRuns: 200, SmallRuns: 20}, sc)
			if err != nil {
				return "", err
			}
			return fig.JSON()
		},
		"fig5+7": func(sc Scale) (string, error) {
			res, err := BudgetSweep(BudgetSweepConfig{Workload: w, Multiplier: []float64{0.5, 1.0}, WithIdentifiability: true}, sc)
			if err != nil {
				return "", err
			}
			rank, err := res.Rank.JSON()
			if err != nil {
				return "", err
			}
			ident, err := res.Ident.JSON()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%s\n%s\n%v", rank, ident, res.BasisCosts), nil
		},
		"fig6": func(sc Scale) (string, error) {
			fig, err := RankCDF(RankCDFConfig{Workload: w, Multiplier: 0.75}, sc)
			if err != nil {
				return "", err
			}
			return fig.JSON()
		},
		"fig8+9": func(sc Scale) (string, error) {
			res, err := MatroidLoss(MatroidLossConfig{Base: w, PathCounts: []int{24, 48}}, sc)
			if err != nil {
				return "", err
			}
			rank, err := res.RankLoss.JSON()
			if err != nil {
				return "", err
			}
			ident, err := res.IdentLoss.JSON()
			if err != nil {
				return "", err
			}
			return rank + "\n" + ident, nil
		},
		"fig10": func(sc Scale) (string, error) {
			fig, err := Learning(LearningConfig{Workload: w, Multiplier: []float64{0.75}, Epochs: []int{30, 60}}, sc)
			if err != nil {
				return "", err
			}
			return fig.JSON()
		},
		"tableI": func(sc Scale) (string, error) {
			rows, err := TableIWith(sc)
			if err != nil {
				return "", err
			}
			return FormatTableI(rows), nil
		},
		"intensity": func(sc Scale) (string, error) {
			fig, err := IntensitySweep(w, sc, []float64{1, 2, 3}, 0.75)
			if err != nil {
				return "", err
			}
			return fig.JSON()
		},
		"burstiness": func(sc Scale) (string, error) {
			fig, err := Burstiness(BurstinessConfig{Workload: w, Multiplier: 0.75, MeanBursts: []float64{1, 8}}, sc)
			if err != nil {
				return "", err
			}
			return fig.JSON()
		},
		"nodefail": func(sc Scale) (string, error) {
			fig, err := NodeFailures(NodeFailConfig{Workload: w, Multiplier: 0.75, NodeEvents: []float64{0.5, 2}}, sc)
			if err != nil {
				return "", err
			}
			return fig.JSON()
		},
	}
	for name, run := range runs {
		t.Run(name, func(t *testing.T) {
			serial := testScale()
			serial.Workers = 1
			want, err := run(serial)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 4} {
				sc := testScale()
				sc.Workers = workers
				got, err := run(sc)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("Workers=%d output differs from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s", workers, want, workers, got)
				}
			}
		})
	}
}
