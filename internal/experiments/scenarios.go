package experiments

import (
	"fmt"

	"robusttomo/internal/diagnose"
	"robusttomo/internal/er"
	"robusttomo/internal/failure"
	"robusttomo/internal/graph"
	"robusttomo/internal/selection"
	"robusttomo/internal/stats"
)

// BurstinessConfig parameterizes the temporal-correlation ablation: the
// same stationary failure mass delivered in Gilbert–Elliott bursts of
// increasing mean length.
type BurstinessConfig struct {
	Workload   Workload
	Multiplier float64   // budget, × basis cost
	MeanBursts []float64 // mean Bad sojourns swept on the x axis
}

// DefaultMeanBursts spans i.i.d.-equivalent (1) to heavily bursty (16).
func DefaultMeanBursts() []float64 { return []float64{1, 2, 4, 8, 16} }

// burstinessCap keeps every swept burst length reachable: a Gilbert
// chain with marginal m and mean burst L needs the Good→Bad probability
// (m/(1−m))/L ≤ 1, so marginals are capped below 0.5 (the L = 1 bound).
const burstinessCap = 0.45

// Burstiness measures how selection quality degrades when failures are
// temporally correlated: a correlation-blind ProbRoMe (fed only the
// stationary marginals) and a MonteRoMe whose panel is drawn from the
// true bursty process, both evaluated on bursty schedules of growing
// mean burst length. The stationary marginal failure mass is identical
// at every x — only its temporal clustering changes — so any separation
// is attributable to burstiness alone. The selection panel and the
// evaluation schedule are bracketed with the source's Snapshot/Restore,
// so both algorithms are judged on the very same epoch sequence.
func Burstiness(cfg BurstinessConfig, sc Scale) (Figure, error) {
	if len(cfg.MeanBursts) == 0 {
		cfg.MeanBursts = DefaultMeanBursts()
	}
	fig := Figure{
		ID:     fmt.Sprintf("ext-burstiness-%s", cfg.Workload.label()),
		Title:  fmt.Sprintf("Gilbert–Elliott bursty links (%s)", cfg.Workload.label()),
		XLabel: "mean burst length (epochs)",
		YLabel: "rank",
	}
	names := []string{"ProbRoMe-iid", "MonteRoMe-GE", AlgSelectPath}

	// Trial = (monitor set, burst index); every RNG stream below derives
	// from the trial coordinate alone, and trials fold in index order.
	type trialResult struct {
		// ranks[alg index], in names order.
		ranks [][]float64
	}
	nb := len(cfg.MeanBursts)
	trials := make([]trialResult, sc.MonitorSets*nb)
	err := forTrials(effectiveWorkers(sc.Workers), len(trials), sc.Progress, func(trial int) error {
		set, bi := trial/nb, trial%nb
		in, err := BuildInstance(cfg.Workload, sc, set)
		if err != nil {
			return err
		}
		marginals := in.Model.Probs()
		for i, m := range marginals {
			if m > burstinessCap {
				marginals[i] = burstinessCap
			}
		}
		ge, err := failure.NewGilbertElliott(failure.GEConfig{
			Marginals: marginals,
			MeanBurst: cfg.MeanBursts[bi],
			Seed:      trialStream(2100, uint64(trial)),
		})
		if err != nil {
			return err
		}
		blindModel, err := ge.IndependentApproximation()
		if err != nil {
			return err
		}
		budget := cfg.Multiplier * instanceBasisCost(in)

		// The Monte Carlo selection panel advances the chain; rewinding to
		// the pre-panel snapshot afterwards hands the evaluation schedule
		// the same starting state every algorithm is judged from.
		snap := ge.Snapshot()
		blind, err := selection.RoMe(in.PM, in.Costs, budget,
			er.NewProbBoundInc(in.PM, blindModel), selection.NewOptions())
		if err != nil {
			return err
		}
		awareOracle := er.NewMonteCarloInc(in.PM, ge, sc.MonteCarloRuns, stats.NewRNG(sc.Seed, trialStream(2200, uint64(trial))))
		aware, err := selection.RoMe(in.PM, in.Costs, budget, awareOracle, selection.NewOptions())
		if err != nil {
			return err
		}
		base, err := selection.SelectPathBudgeted(in.PM, in.Costs, budget)
		if err != nil {
			return err
		}
		if err := ge.Restore(snap); err != nil {
			return err
		}

		schedule := failure.SampleScenarios(ge, stats.NewRNG(sc.Seed, trialStream(2300, uint64(trial))), sc.Scenarios)
		tr := trialResult{ranks: make([][]float64, len(names))}
		for a, sel := range [][]int{blind.Selected, aware.Selected, base.Selected} {
			tr.ranks[a], _ = in.EvalMetrics(sel, schedule, false)
		}
		trials[trial] = tr
		return nil
	})
	if err != nil {
		return Figure{}, err
	}

	// Serial fold in trial order.
	samples := make(map[string]map[float64][]float64, len(names))
	for _, name := range names {
		samples[name] = map[float64][]float64{}
	}
	for trial := range trials {
		burst := cfg.MeanBursts[trial%nb]
		for a, name := range names {
			samples[name][burst] = append(samples[name][burst], trials[trial].ranks[a]...)
		}
	}
	for _, name := range names {
		s := Series{Name: name}
		for _, burst := range cfg.MeanBursts {
			vals := samples[name][burst]
			s.Points = append(s.Points, Point{X: burst, Mean: stats.Mean(vals), Std: stats.StdDev(vals)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// NodeFailConfig parameterizes the node-failure localization experiment.
type NodeFailConfig struct {
	Workload   Workload
	Multiplier float64
	// NodeEvents sweeps the expected number of node failures per epoch;
	// each node fails with probability NodeEvents/|V|.
	NodeEvents []float64
}

// DefaultNodeEvents spans rare to frequent node events.
func DefaultNodeEvents() []float64 { return []float64{0.5, 1, 2} }

// NodeFailures drives the node-failure source against the link-level
// Boolean diagnoser and a node-level candidate rule, reporting three
// series per event rate:
//
//   - NodeRecall: fraction of truly failed nodes recovered by the node
//     candidate rule (a covered node is a candidate when every selected
//     path over its incident links failed);
//   - LinkImplicatedRecall: fraction of links downed by node events that
//     the link-level diagnoser can certainly implicate — node events down
//     whole incident bundles, so failed paths rarely have single-link
//     explanations and link-level certainty collapses;
//   - IdentifiableNodes: the NodeIdentifiability fraction of the selected
//     probe set (covered nodes with unique failure signatures), the
//     structural ceiling on exact node localization.
func NodeFailures(cfg NodeFailConfig, sc Scale) (Figure, error) {
	if len(cfg.NodeEvents) == 0 {
		cfg.NodeEvents = DefaultNodeEvents()
	}
	fig := Figure{
		ID:     fmt.Sprintf("ext-nodefail-%s", cfg.Workload.label()),
		Title:  fmt.Sprintf("Node failures vs link diagnosis (%s)", cfg.Workload.label()),
		XLabel: "expected node failures per epoch",
		YLabel: "fraction",
	}
	const (
		serNodeRecall = "NodeRecall"
		serLinkRecall = "LinkImplicatedRecall"
		serIdent      = "IdentifiableNodes"
	)
	names := []string{serNodeRecall, serLinkRecall, serIdent}

	// Trial = (monitor set, event-rate index), folded in index order.
	type trialResult struct {
		nodeRecall, linkRecall []float64
		identFrac              float64
	}
	ne := len(cfg.NodeEvents)
	trials := make([]trialResult, sc.MonitorSets*ne)
	err := forTrials(effectiveWorkers(sc.Workers), len(trials), sc.Progress, func(trial int) error {
		set, ei := trial/ne, trial%ne
		in, err := BuildInstance(cfg.Workload, sc, set)
		if err != nil {
			return err
		}
		g := in.Topology.Graph
		nodes := g.NumNodes()
		incidence := make([][]int, nodes)
		for v := 0; v < nodes; v++ {
			for _, e := range g.IncidentEdges(graph.NodeID(v)) {
				incidence[v] = append(incidence[v], int(e))
			}
		}
		q := cfg.NodeEvents[ei] / float64(nodes)
		probs := make([]float64, nodes)
		for v := range probs {
			probs[v] = q
		}
		nfm, err := failure.NewNodeFailureModel(failure.NodeFailureConfig{
			Links: in.PM.NumLinks(), Incidence: incidence, NodeProbs: probs,
		})
		if err != nil {
			return err
		}
		// Selection is correlation-blind: ProbRoMe on the node process's
		// link marginals.
		blindModel, err := nfm.IndependentApproximation()
		if err != nil {
			return err
		}
		budget := cfg.Multiplier * instanceBasisCost(in)
		res, err := selection.RoMe(in.PM, in.Costs, budget,
			er.NewProbBoundInc(in.PM, blindModel), selection.NewOptions())
		if err != nil {
			return err
		}
		selected := res.Selected

		ni, err := in.PM.NodeIdentifiability(selected, incidence)
		if err != nil {
			return err
		}
		tr := trialResult{}
		if ni.NumCovered > 0 {
			tr.identFrac = float64(ni.NumIdentifiable) / float64(ni.NumCovered)
		}

		// Per node, the selected paths over its incident links — the
		// node's failure signature for the candidate rule.
		pathsOf := make([][]int, nodes)
		for _, p := range selected {
			onLink := map[int]bool{}
			for _, e := range in.PM.EdgesOf(p) {
				onLink[e] = true
			}
			for v := 0; v < nodes; v++ {
				for _, l := range incidence[v] {
					if onLink[l] {
						pathsOf[v] = append(pathsOf[v], p)
						break
					}
				}
			}
		}

		rng := stats.NewRNG(sc.Seed, trialStream(2400, uint64(trial)))
		for epoch := 0; epoch < sc.Scenarios; epoch++ {
			scn, downNodes := nfm.SampleWithNodes(rng)
			ob := diagnose.Observation{}
			pathOK := map[int]bool{}
			for _, p := range selected {
				ok := in.PM.Available(p, scn)
				pathOK[p] = ok
				ob.Paths = append(ob.Paths, p)
				ob.OK = append(ob.OK, ok)
			}

			// Node candidates: covered nodes all of whose paths failed.
			candidate := make([]bool, nodes)
			for v := 0; v < nodes; v++ {
				if len(pathsOf[v]) == 0 {
					continue
				}
				allDown := true
				for _, p := range pathsOf[v] {
					if pathOK[p] {
						allDown = false
						break
					}
				}
				candidate[v] = allDown
			}
			if len(downNodes) > 0 {
				hit := 0
				for _, v := range downNodes {
					if candidate[v] {
						hit++
					}
				}
				tr.nodeRecall = append(tr.nodeRecall, float64(hit)/float64(len(downNodes)))
			}

			diag, err := diagnose.Localize(in.PM, ob)
			if err != nil {
				return err
			}
			failedLinks, implicated := 0, 0
			for l, down := range scn.Failed {
				if down {
					failedLinks++
					if diag.Implicated[l] {
						implicated++
					}
				}
			}
			if failedLinks > 0 {
				tr.linkRecall = append(tr.linkRecall, float64(implicated)/float64(failedLinks))
			}
		}
		trials[trial] = tr
		return nil
	})
	if err != nil {
		return Figure{}, err
	}

	samples := map[string]map[float64][]float64{}
	for _, name := range names {
		samples[name] = map[float64][]float64{}
	}
	for trial := range trials {
		rate := cfg.NodeEvents[trial%ne]
		samples[serNodeRecall][rate] = append(samples[serNodeRecall][rate], trials[trial].nodeRecall...)
		samples[serLinkRecall][rate] = append(samples[serLinkRecall][rate], trials[trial].linkRecall...)
		samples[serIdent][rate] = append(samples[serIdent][rate], trials[trial].identFrac)
	}
	for _, name := range names {
		s := Series{Name: name}
		for _, rate := range cfg.NodeEvents {
			vals := samples[name][rate]
			s.Points = append(s.Points, Point{X: rate, Mean: stats.Mean(vals), Std: stats.StdDev(vals)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
