package experiments

import "testing"

func TestBurstinessFigure(t *testing.T) {
	sc := testScale()
	fig, err := Burstiness(BurstinessConfig{Workload: testWorkload(), Multiplier: 0.75, MeanBursts: []float64{1, 4}}, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ProbRoMe-iid", "MonteRoMe-GE", AlgSelectPath} {
		s, ok := fig.SeriesByName(name)
		if !ok {
			t.Fatalf("series %q missing", name)
		}
		if len(s.Points) != 2 {
			t.Fatalf("series %q has %d points, want 2", name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Mean <= 0 {
				t.Fatalf("series %q at burst %v: mean rank %v not positive", name, p.X, p.Mean)
			}
		}
	}
	// The stationary failure mass is identical at every burst length, so
	// the i.i.d.-blind selection cannot gain rank from burstiness; allow
	// Monte Carlo noise but forbid a structural improvement.
	s, _ := fig.SeriesByName("ProbRoMe-iid")
	first, _ := s.MeanAt(1)
	if last := s.FinalMean(); last > first*1.15 {
		t.Errorf("blind selection improved under burstiness: rank %v at L=1 vs %v at L=4", first, last)
	}
}

func TestNodeFailuresFigure(t *testing.T) {
	sc := testScale()
	fig, err := NodeFailures(NodeFailConfig{Workload: testWorkload(), Multiplier: 0.75, NodeEvents: []float64{0.5, 2}}, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"NodeRecall", "LinkImplicatedRecall", "IdentifiableNodes"} {
		s, ok := fig.SeriesByName(name)
		if !ok {
			t.Fatalf("series %q missing", name)
		}
		if len(s.Points) != 2 {
			t.Fatalf("series %q has %d points, want 2", name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Mean < 0 || p.Mean > 1 {
				t.Fatalf("series %q at rate %v: fraction %v outside [0,1]", name, p.X, p.Mean)
			}
		}
	}
}
