// Package experiments reproduces every table and figure of the paper's
// evaluation (Section VI) as programmatic runners that return structured
// series. The cmd/experiments binary prints them, the repository-root
// benchmarks time them, and EXPERIMENTS.md records paper-vs-measured
// shapes.
//
// Scale: the paper evaluates 5 random monitor sets × 500 failure scenarios
// on three Rocketfuel-scale topologies. Every runner takes an explicit
// Scale so tests and benchmarks can run faithful smaller instances while
// cmd/experiments defaults to paper scale.
package experiments

import (
	"fmt"

	"robusttomo/internal/cost"
	"robusttomo/internal/er"
	"robusttomo/internal/failure"
	"robusttomo/internal/graph"
	"robusttomo/internal/routing"
	"robusttomo/internal/selection"
	"robusttomo/internal/stats"
	"robusttomo/internal/tomo"
	"robusttomo/internal/topo"
)

// Scale bundles the evaluation-size knobs shared by all runners.
type Scale struct {
	MonitorSets int // random monitor placements averaged over (paper: 5)
	Scenarios   int // failure scenarios per placement (paper: 500)
	// MonteCarloRuns is the scenario panel size of the MonteRoMe oracle
	// (paper: 50).
	MonteCarloRuns int
	// ExpectedFailures calibrates the failure model's expected number of
	// concurrently failed links per epoch (DESIGN.md §4).
	ExpectedFailures float64
	Seed             uint64
	// Workers shards each runner's independent trials (monitor sets,
	// x-axis points) across goroutines: 0 or 1 runs serially, negative
	// resolves to GOMAXPROCS. Results are byte-identical at any value —
	// every trial owns its RNG streams and result slot (see runner.go).
	Workers int
	// Progress, when non-nil, is called as trials complete with the number
	// finished so far and the total for the current runner. Calls are
	// serialized and done is strictly increasing within a runner.
	Progress func(done, total int)
}

// PaperScale mirrors Section VI-A.
func PaperScale() Scale {
	return Scale{MonitorSets: 5, Scenarios: 500, MonteCarloRuns: 50, ExpectedFailures: 3, Seed: 2014}
}

// QuickScale is a faithful miniature for tests and benchmarks.
func QuickScale() Scale {
	return Scale{MonitorSets: 2, Scenarios: 60, MonteCarloRuns: 25, ExpectedFailures: 2, Seed: 2014}
}

// Workload identifies a topology and candidate-path count, the paper's
// per-figure workload unit (e.g. AS3257 with 1600 candidates). Preset names
// one of the Table I topologies; set Custom instead for an explicit
// generator configuration (tests, ablations).
type Workload struct {
	Preset         string
	CandidatePaths int
	Custom         *topo.Config
	// Loaded, when non-nil, uses an already-materialized topology (e.g.
	// from topo.LoadWeights) instead of generating one. Takes precedence
	// over Custom and Preset.
	Loaded *topo.Topology
}

// label returns the workload's display name.
func (w Workload) label() string {
	switch {
	case w.Loaded != nil:
		return w.Loaded.Name
	case w.Custom != nil:
		return w.Custom.Name
	default:
		return w.Preset
	}
}

// PaperWorkloads returns the Fig. 5 workload triple.
func PaperWorkloads() []Workload {
	return []Workload{
		{Preset: topo.AS1755, CandidatePaths: 400},
		{Preset: topo.AS3257, CandidatePaths: 1600},
		{Preset: topo.AS1239, CandidatePaths: 2500},
	}
}

// Instance is one fully materialized evaluation setting: topology, monitor
// placement, candidate paths, failure and cost models.
type Instance struct {
	Topology *topo.Topology
	Sources  []graph.NodeID
	Dests    []graph.NodeID
	PM       *tomo.PathMatrix
	Model    *failure.Model
	Cost     *cost.Model
	Costs    []float64 // per candidate path
}

// BuildInstance materializes a workload at the given monitor-set index
// (each index draws a fresh random monitor placement, as in the paper's
// averaging over 5 sets).
func BuildInstance(w Workload, sc Scale, monitorSet int) (*Instance, error) {
	var tp *topo.Topology
	var err error
	switch {
	case w.Loaded != nil:
		tp = w.Loaded
	case w.Custom != nil:
		tp, err = topo.Generate(*w.Custom)
	default:
		tp, err = topo.Preset(w.Preset)
	}
	if err != nil {
		return nil, err
	}
	return buildOn(tp, w.CandidatePaths, sc, monitorSet)
}

func buildOn(tp *topo.Topology, candidatePaths int, sc Scale, monitorSet int) (*Instance, error) {
	rng := stats.NewRNG(sc.Seed, uint64(monitorSet)*2654435761+17)

	// Monitor placement: k sources + k destinations among access routers,
	// sized so that |S|·|D| ≥ candidatePaths.
	k := 1
	for k*k < candidatePaths {
		k++
	}
	pool := tp.Access
	if len(pool) < 2*k {
		pool = append(append([]graph.NodeID{}, tp.Access...), tp.Core...)
	}
	if len(pool) < 2*k {
		return nil, fmt.Errorf("experiments: %s has %d candidate monitors, need %d", tp.Name, len(pool), 2*k)
	}
	picked := stats.SampleWithoutReplacement(rng, len(pool), 2*k)
	sources := make([]graph.NodeID, k)
	dests := make([]graph.NodeID, k)
	for i := 0; i < k; i++ {
		sources[i] = pool[picked[i]]
		dests[i] = pool[picked[k+i]]
	}

	paths, err := routing.MonitorPairs(tp.Graph, sources, dests)
	if err != nil {
		return nil, err
	}
	if len(paths) > candidatePaths {
		paths = paths[:candidatePaths]
	}
	pm, err := tomo.NewPathMatrix(paths, tp.Graph.NumEdges())
	if err != nil {
		return nil, err
	}

	model, err := failure.NewModel(failure.Config{
		Links:            tp.Graph.NumEdges(),
		ExpectedFailures: sc.ExpectedFailures,
		Seed:             sc.Seed + uint64(monitorSet),
	})
	if err != nil {
		return nil, err
	}

	monitors := append(append([]graph.NodeID{}, sources...), dests...)
	cm, err := cost.NewModel(cost.Config{Monitors: monitors, Seed: sc.Seed + uint64(monitorSet), PeerProbability: -1})
	if err != nil {
		return nil, err
	}
	return &Instance{
		Topology: tp,
		Sources:  sources,
		Dests:    dests,
		PM:       pm,
		Model:    model,
		Cost:     cm,
		Costs:    cm.Costs(paths),
	}, nil
}

// EvalMetrics evaluates a selection under sampled failure scenarios and
// returns the per-scenario rank and link-identifiability samples. One
// survivor buffer and one elimination basis serve the whole scenario loop,
// so evaluation cost is dominated by the rank computations themselves.
func (in *Instance) EvalMetrics(selected []int, scenarios []failure.Scenario, withIdent bool) (ranks, idents []float64) {
	ranks = make([]float64, len(scenarios))
	if withIdent {
		idents = make([]float64, len(scenarios))
	}
	var surv []int
	basis := in.PM.NewRankBasis()
	for s, sc := range scenarios {
		surv = in.PM.SurvivingInto(surv, selected, sc)
		if withIdent {
			rank, ident := in.PM.RankAndIdentifiableWith(surv, basis)
			ranks[s] = float64(rank)
			idents[s] = float64(ident)
			continue
		}
		ranks[s] = float64(in.PM.RankOfWith(surv, basis))
	}
	return ranks, idents
}

// Algorithms used across the figures, keyed by the paper's names.
const (
	AlgProbRoMe   = "ProbRoMe"
	AlgMonteRoMe  = "MonteRoMe"
	AlgSelectPath = "SelectPath"
	AlgMatRoMe    = "MatRoMe"
)

// Select runs the named algorithm on the instance at the given budget and
// returns the selected candidate indices.
func (in *Instance) Select(alg string, budget float64, sc Scale, rngStream uint64) ([]int, error) {
	switch alg {
	case AlgProbRoMe:
		res, err := selection.RoMe(in.PM, in.Costs, budget, er.NewProbBoundInc(in.PM, in.Model), selection.NewOptions())
		if err != nil {
			return nil, err
		}
		return res.Selected, nil
	case AlgMonteRoMe:
		rng := stats.NewRNG(sc.Seed, rngStream+0x3C)
		oracle := er.NewMonteCarloInc(in.PM, in.Model, sc.MonteCarloRuns, rng)
		res, err := selection.RoMe(in.PM, in.Costs, budget, oracle, selection.NewOptions())
		if err != nil {
			return nil, err
		}
		return res.Selected, nil
	case AlgSelectPath:
		res, err := selection.SelectPathBudgeted(in.PM, in.Costs, budget)
		if err != nil {
			return nil, err
		}
		return res.Selected, nil
	default:
		return nil, fmt.Errorf("experiments: unknown algorithm %q", alg)
	}
}
