package experiments

import (
	"fmt"
	"strings"

	"robusttomo/internal/topo"
)

// TableIRow is one row of the paper's Table I: a topology preset with its
// generated size and a degree summary of the synthetic substitute.
type TableIRow struct {
	Name      string
	Nodes     int
	Links     int
	MeanDeg   float64
	Monitors  int // access routers available for monitor placement
	Connected bool
}

// TableI regenerates the paper's Table I from the topology presets,
// serially.
func TableI() ([]TableIRow, error) { return TableIWith(Scale{}) }

// TableIWith is TableI on the trial-sharded runner (trial = one preset;
// generation is deterministic, so sharding cannot change the rows).
func TableIWith(sc Scale) ([]TableIRow, error) {
	names := topo.PresetNames()
	rows := make([]TableIRow, len(names))
	err := forTrials(effectiveWorkers(sc.Workers), len(names), sc.Progress, func(i int) error {
		tp, err := topo.Preset(names[i])
		if err != nil {
			return err
		}
		deg := tp.Graph.Degrees()
		rows[i] = TableIRow{
			Name:      names[i],
			Nodes:     tp.Graph.NumNodes(),
			Links:     tp.Graph.NumEdges(),
			MeanDeg:   deg.Mean,
			Monitors:  len(tp.Access),
			Connected: tp.Graph.Connected(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTableI renders the rows like the paper's table.
func FormatTableI(rows []TableIRow) string {
	var sb strings.Builder
	sb.WriteString("# Table I — topologies\nAS (type)\tNodes\tLinks\tMeanDeg\tAccess\n")
	kinds := map[string]string{topo.AS1755: "Small", topo.AS3257: "Medium", topo.AS1239: "Large"}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s (%s)\t%d\t%d\t%.2f\t%d\n", r.Name, kinds[r.Name], r.Nodes, r.Links, r.MeanDeg, r.Monitors)
	}
	return sb.String()
}
