package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Point is one x-position of a series with its sample mean and standard
// deviation.
type Point struct {
	X    float64 `json:"x"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
}

// Series is a named curve in a figure.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Figure is the structured output of one experiment runner.
type Figure struct {
	ID     string   `json:"id"` // e.g. "fig5-AS3257"
	Title  string   `json:"title"`
	XLabel string   `json:"xLabel"`
	YLabel string   `json:"yLabel"`
	Series []Series `json:"series"`
}

// String renders the figure as an aligned text table, one row per x value
// and one mean±std column pair per series, matching what the paper plots.
func (f Figure) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s — %s\n", f.ID, f.Title)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name+" mean", s.Name+" std")
	}
	sb.WriteString(strings.Join(header, "\t"))
	sb.WriteByte('\n')

	// Collect the union of x values across series.
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	for _, x := range sorted {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			found := false
			for _, p := range s.Points {
				if p.X == x {
					row = append(row, trimFloat(p.Mean), trimFloat(p.Std))
					found = true
					break
				}
			}
			if !found {
				row = append(row, "-", "-")
			}
		}
		sb.WriteString(strings.Join(row, "\t"))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// JSON renders the figure as indented JSON, for piping into plotting
// tools.
func (f Figure) JSON() (string, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return "", fmt.Errorf("experiments: marshal figure %s: %w", f.ID, err)
	}
	return string(data), nil
}

// SeriesByName returns the named series, or false.
func (f Figure) SeriesByName(name string) (Series, bool) {
	for _, s := range f.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// MeanAt returns the series mean at the given x, or false.
func (s Series) MeanAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Mean, true
		}
	}
	return 0, false
}

// FinalMean returns the mean at the largest x (0 for an empty series).
func (s Series) FinalMean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	best := s.Points[0]
	for _, p := range s.Points[1:] {
		if p.X > best.X {
			best = p
		}
	}
	return best.Mean
}
