package failure

import (
	"testing"

	"robusttomo/internal/stats"
)

// benchLinks sizes the panel benchmarks at a Rocketfuel-like link count.
const benchLinks = 300

func benchProbs() []float64 {
	probs := make([]float64, benchLinks)
	for l := range probs {
		probs[l] = 0.01 + 0.4*float64(l%11)/10
	}
	return probs
}

// benchPanel times drawing a 1000-scenario packed panel from the given
// source, the inner loop of every Monte Carlo oracle refresh. The "panel"
// metric carries the scenario count so cmd/benchregress derives
// scenarios/sec for BENCH_failure.json.
func benchPanel(b *testing.B, build func(b *testing.B) Sampler) {
	src := build(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set, err := SampleScenarioSet(src, stats.NewRNG(uint64(i), 7), 1000)
		if err != nil {
			b.Fatal(err)
		}
		if set.N() != 1000 {
			b.Fatal("short panel")
		}
	}
	b.ReportMetric(1000, "panel") // after the loop: ResetTimer clears metrics
}

func BenchmarkScenarioPanelBernoulli(b *testing.B) {
	benchPanel(b, func(b *testing.B) Sampler {
		m, err := FromProbabilities(benchProbs())
		if err != nil {
			b.Fatal(err)
		}
		return m
	})
}

func BenchmarkScenarioPanelGE(b *testing.B) {
	benchPanel(b, func(b *testing.B) Sampler {
		ge, err := NewGilbertElliott(GEConfig{Marginals: benchProbs(), MeanBurst: 8, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		return ge
	})
}

func BenchmarkScenarioPanelSRLG(b *testing.B) {
	benchPanel(b, func(b *testing.B) Sampler {
		base, err := FromProbabilities(benchProbs())
		if err != nil {
			b.Fatal(err)
		}
		m, err := NewCorrelatedModel(base, []SRLG{
			{Links: []int{0, 1, 2, 3}, Prob: 0.1},
			{Links: []int{100, 150, 200}, Prob: 0.05},
		})
		if err != nil {
			b.Fatal(err)
		}
		return m
	})
}

func BenchmarkScenarioPanelNode(b *testing.B) {
	benchPanel(b, func(b *testing.B) Sampler {
		incidence := make([][]int, benchLinks)
		probs := make([]float64, benchLinks)
		for v := range incidence {
			incidence[v] = []int{v, (v + 1) % benchLinks}
			probs[v] = 0.02
		}
		m, err := NewNodeFailureModel(NodeFailureConfig{
			Links: benchLinks, Incidence: incidence, NodeProbs: probs,
		})
		if err != nil {
			b.Fatal(err)
		}
		return m
	})
}

// BenchmarkGEColumnSteady measures the steady-state per-column cost of the
// Gilbert–Elliott sojourn sampler with the column buffer reused across
// iterations — the allocs/op figure is the tracked contract (the sampler
// itself must not allocate; panel allocation is the caller's).
func BenchmarkGEColumnSteady(b *testing.B) {
	ge, err := NewGilbertElliott(GEConfig{Marginals: benchProbs(), MeanBurst: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	const n = 1000
	col := make([]uint64, (n+63)/64)
	rng := stats.NewRNG(3, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := range col {
			col[w] = 0
		}
		ge.SampleColumn(rng, i%benchLinks, n, col)
	}
}
