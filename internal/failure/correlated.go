package failure

import (
	"fmt"
	"math/rand/v2"

	"robusttomo/internal/stats"
)

// Sampler is the minimal interface scenario consumers (Monte Carlo ER,
// simulation harnesses, learner environments) need from a failure process.
// Model implements it; CorrelatedModel extends it beyond the paper's
// independence assumption.
type Sampler interface {
	// Links returns the number of links covered.
	Links() int
	// Sample draws one epoch's failure scenario.
	Sample(rng *rand.Rand) Scenario
}

var (
	_ Sampler = (*Model)(nil)
	_ Sampler = (*CorrelatedModel)(nil)
)

// SampleScenarios draws n independent scenarios from any sampler.
func SampleScenarios(s Sampler, rng *rand.Rand, n int) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		out[i] = s.Sample(rng)
	}
	return out
}

// SRLG is a shared-risk link group: a set of links that fail together
// (fiber conduits, line cards, power domains) with a per-epoch group
// probability, on top of each link's independent failure probability.
type SRLG struct {
	Links []int   `json:"links"`
	Prob  float64 `json:"prob"`
}

// CorrelatedModel layers shared-risk groups over an independent base
// model — the paper's future-work scenario. A link is down when its own
// independent draw fires or any group containing it fires.
type CorrelatedModel struct {
	base   *Model
	groups []SRLG
}

// NewCorrelatedModel validates the groups against the base model.
func NewCorrelatedModel(base *Model, groups []SRLG) (*CorrelatedModel, error) {
	if base == nil {
		return nil, fmt.Errorf("failure: nil base model")
	}
	cp := make([]SRLG, len(groups))
	for i, g := range groups {
		if len(g.Links) == 0 {
			return nil, fmt.Errorf("failure: group %d is empty", i)
		}
		if g.Prob < 0 || g.Prob >= 1 {
			return nil, fmt.Errorf("failure: group %d probability %v out of [0,1)", i, g.Prob)
		}
		links := make([]int, len(g.Links))
		for k, l := range g.Links {
			if l < 0 || l >= base.Links() {
				return nil, fmt.Errorf("failure: group %d references link %d outside [0,%d)", i, l, base.Links())
			}
			links[k] = l
		}
		cp[i] = SRLG{Links: links, Prob: g.Prob}
	}
	return &CorrelatedModel{base: base, groups: cp}, nil
}

// Links implements Sampler.
func (m *CorrelatedModel) Links() int { return m.base.Links() }

// Groups returns a copy of the shared-risk groups.
func (m *CorrelatedModel) Groups() []SRLG {
	out := make([]SRLG, len(m.groups))
	for i, g := range m.groups {
		out[i] = SRLG{Links: append([]int{}, g.Links...), Prob: g.Prob}
	}
	return out
}

// Sample implements Sampler.
func (m *CorrelatedModel) Sample(rng *rand.Rand) Scenario {
	sc := m.base.Sample(rng)
	for _, g := range m.groups {
		if stats.Bernoulli(rng, g.Prob) {
			for _, l := range g.Links {
				sc.Failed[l] = true
			}
		}
	}
	return sc
}

// SampleN draws n independent scenarios.
func (m *CorrelatedModel) SampleN(rng *rand.Rand, n int) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		out[i] = m.Sample(rng)
	}
	return out
}

// Marginals returns each link's marginal failure probability:
// 1 − (1 − p_l)·Π_{g ∋ l}(1 − p_g). Feeding these into the independent
// Model (via FromProbabilities) gives the best independence approximation
// of this process — what a correlation-blind ProbRoMe would use.
func (m *CorrelatedModel) Marginals() []float64 {
	out := m.base.Probs()
	for i, p := range out {
		up := 1 - p
		for _, g := range m.groups {
			for _, l := range g.Links {
				if l == i {
					up *= 1 - g.Prob
					break
				}
			}
		}
		out[i] = 1 - up
	}
	return out
}

// IndependentApproximation returns the independent Model with this
// process's marginals.
func (m *CorrelatedModel) IndependentApproximation() (*Model, error) {
	return FromProbabilities(m.Marginals())
}

// SourceName implements ScenarioSource.
func (m *CorrelatedModel) SourceName() string { return SourceSRLG }

// Snapshot implements ScenarioSource. Group firings are i.i.d. across
// epochs, so there is no cross-epoch state to capture.
func (m *CorrelatedModel) Snapshot() SourceState { return SourceState{} }

// Restore implements ScenarioSource.
func (m *CorrelatedModel) Restore(s SourceState) error {
	return s.restoreInto(SourceSRLG, nil)
}
