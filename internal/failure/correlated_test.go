package failure

import (
	"math"
	"testing"

	"robusttomo/internal/stats"
)

func baseModel(t *testing.T, probs ...float64) *Model {
	t.Helper()
	m, err := FromProbabilities(probs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewCorrelatedModelValidation(t *testing.T) {
	base := baseModel(t, 0.1, 0.1, 0.1)
	cases := []struct {
		name   string
		groups []SRLG
		ok     bool
	}{
		{"valid", []SRLG{{Links: []int{0, 1}, Prob: 0.2}}, true},
		{"no groups", nil, true},
		{"empty group", []SRLG{{Prob: 0.2}}, false},
		{"bad prob", []SRLG{{Links: []int{0}, Prob: 1.0}}, false},
		{"negative prob", []SRLG{{Links: []int{0}, Prob: -0.1}}, false},
		{"link out of range", []SRLG{{Links: []int{7}, Prob: 0.1}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCorrelatedModel(base, tc.groups)
			if tc.ok != (err == nil) {
				t.Fatalf("err = %v", err)
			}
		})
	}
	if _, err := NewCorrelatedModel(nil, nil); err == nil {
		t.Fatal("nil base accepted")
	}
}

func TestCorrelatedSampleJointFailures(t *testing.T) {
	// Base never fails; the group links 0 and 2 with probability 0.5:
	// links 0 and 2 must always fail together, link 1 never.
	base := baseModel(t, 0, 0, 0)
	cm, err := NewCorrelatedModel(base, []SRLG{{Links: []int{0, 2}, Prob: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3, 3)
	joint, fired := 0, 0
	for i := 0; i < 4000; i++ {
		sc := cm.Sample(rng)
		if sc.Failed[1] {
			t.Fatal("ungrouped link failed")
		}
		if sc.Failed[0] != sc.Failed[2] {
			t.Fatal("grouped links failed independently")
		}
		if sc.Failed[0] {
			fired++
			joint++
		}
	}
	f := float64(fired) / 4000
	if math.Abs(f-0.5) > 0.03 {
		t.Fatalf("group fired %v, want ~0.5", f)
	}
	_ = joint
}

func TestCorrelatedMarginals(t *testing.T) {
	base := baseModel(t, 0.1, 0.2, 0.0)
	cm, err := NewCorrelatedModel(base, []SRLG{
		{Links: []int{0, 1}, Prob: 0.5},
		{Links: []int{0}, Prob: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := cm.Marginals()
	want := []float64{
		1 - 0.9*0.5*0.75, // link 0: base + both groups
		1 - 0.8*0.5,      // link 1: base + group 0
		0,                // link 2: untouched
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("marginal[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Marginals must match empirical frequencies.
	rng := stats.NewRNG(4, 4)
	n := 30000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		sc := cm.Sample(rng)
		for j, f := range sc.Failed {
			if f {
				counts[j]++
			}
		}
	}
	for j := range want {
		f := float64(counts[j]) / float64(n)
		if math.Abs(f-want[j]) > 0.01 {
			t.Fatalf("empirical marginal[%d] = %v, want %v", j, f, want[j])
		}
	}
}

func TestIndependentApproximation(t *testing.T) {
	base := baseModel(t, 0.1, 0.2)
	cm, _ := NewCorrelatedModel(base, []SRLG{{Links: []int{0, 1}, Prob: 0.3}})
	ind, err := cm.IndependentApproximation()
	if err != nil {
		t.Fatal(err)
	}
	marg := cm.Marginals()
	for i := range marg {
		if math.Abs(ind.Prob(i)-marg[i]) > 1e-12 {
			t.Fatalf("approximation prob[%d] = %v, want %v", i, ind.Prob(i), marg[i])
		}
	}
}

func TestGroupsReturnsCopy(t *testing.T) {
	base := baseModel(t, 0.1, 0.1)
	cm, _ := NewCorrelatedModel(base, []SRLG{{Links: []int{0}, Prob: 0.2}})
	gs := cm.Groups()
	gs[0].Links[0] = 1
	if cm.Groups()[0].Links[0] != 0 {
		t.Fatal("Groups aliases internal state")
	}
}

func TestSampleScenariosHelper(t *testing.T) {
	base := baseModel(t, 0.5)
	rng := stats.NewRNG(5, 5)
	scs := SampleScenarios(base, rng, 7)
	if len(scs) != 7 {
		t.Fatalf("scenarios = %d", len(scs))
	}
	cm, _ := NewCorrelatedModel(base, nil)
	if got := len(SampleScenarios(cm, rng, 3)); got != 3 {
		t.Fatalf("correlated scenarios = %d", got)
	}
	if cm.Links() != 1 {
		t.Fatalf("Links = %d", cm.Links())
	}
}
