// Package failure implements the link-failure model the paper adopts from
// Markopoulou et al., "Characterization of failures in an IP backbone"
// (INFOCOM'04): per-link failure counts follow a two-regime power law — the
// top 2.5% of links ("high-failure" links) with n(l) ∝ l^-0.73 and the rest
// with n(l) ∝ l^-1.35, anchored at n(1) = 1000 for the most failure-prone
// link. Counts are normalized into per-epoch failure probabilities.
//
// The paper does not state how normalized counts map onto an epoch-level
// probability, so the model exposes an intensity knob: probabilities are
// scaled so that the expected number of concurrently failed links per epoch
// equals a configurable target (DESIGN.md §4 documents this substitution;
// the experiment harness sweeps it in an ablation).
//
// Link availability is i.i.d. across epochs and independent across links,
// exactly as in the paper's Section III model.
package failure

import (
	"fmt"
	"math"
	"math/rand/v2"

	"robusttomo/internal/stats"
)

// Exponents of the two power-law regimes and the high-failure fraction,
// as specified in Section VI-A of the paper.
const (
	HighExponent = -0.73
	LowExponent  = -1.35
	HighFraction = 0.025
	AnchorCount  = 1000.0
)

// Model holds per-link failure probabilities for one network.
type Model struct {
	probs []float64 // indexed by link (edge) ID
}

// Config parameterizes NewModel.
type Config struct {
	Links int // number of links in the network
	// ExpectedFailures is the expected number of concurrently failed
	// links per epoch; probabilities are scaled to meet it. Must be
	// positive and less than Links.
	ExpectedFailures float64
	// Seed drives the random assignment of failure ranks to link IDs.
	Seed uint64
}

// NewModel builds the Markopoulou-style model: it ranks links 1..L in
// decreasing failure propensity, assigns power-law counts, normalizes, and
// scales to the configured expected number of concurrent failures. The
// rank-to-link assignment is a seeded random permutation so failure-prone
// links land anywhere in the topology.
func NewModel(cfg Config) (*Model, error) {
	if cfg.Links <= 0 {
		return nil, fmt.Errorf("failure: need at least one link, got %d", cfg.Links)
	}
	if cfg.ExpectedFailures <= 0 || cfg.ExpectedFailures >= float64(cfg.Links) {
		return nil, fmt.Errorf("failure: expected failures %.2f out of range (0, %d)", cfg.ExpectedFailures, cfg.Links)
	}
	counts := powerLawCounts(cfg.Links)
	total := 0.0
	for _, c := range counts {
		total += c
	}
	// Normalize then scale so Σ p_l = ExpectedFailures.
	probs := make([]float64, cfg.Links)
	for i, c := range counts {
		probs[i] = c / total * cfg.ExpectedFailures
		if probs[i] > 0.95 {
			probs[i] = 0.95 // keep every link occasionally available
		}
	}
	// Scatter ranks over link IDs.
	rng := stats.NewRNG(cfg.Seed, 0xFA11)
	perm := rng.Perm(cfg.Links)
	scattered := make([]float64, cfg.Links)
	for rank, link := range perm {
		scattered[link] = probs[rank]
	}
	return &Model{probs: scattered}, nil
}

// powerLawCounts returns the failure count per rank (rank 0 = most
// failure-prone link).
func powerLawCounts(links int) []float64 {
	counts := make([]float64, links)
	highCut := int(math.Ceil(HighFraction * float64(links)))
	if highCut < 1 {
		highCut = 1
	}
	// Anchor both regimes so the curve is continuous at the cut and
	// n(1) = AnchorCount.
	for l := 1; l <= links; l++ {
		var c float64
		if l <= highCut {
			c = AnchorCount * math.Pow(float64(l), HighExponent)
		} else {
			// Continuity: low regime anchored at the value the high
			// regime reaches at the cut.
			base := AnchorCount * math.Pow(float64(highCut), HighExponent)
			c = base * math.Pow(float64(l)/float64(highCut), LowExponent)
		}
		counts[l-1] = c
	}
	return counts
}

// FromDurations builds a model from operational failure statistics: each
// link's mean time between failures (MTBF) and mean time to repair (MTTR).
// The steady-state per-epoch failure probability is the classical
// unavailability MTTR/(MTBF + MTTR) — the fraction of epochs the link
// spends down, matching the paper's observation that repair times exceed
// the measurement-collection window (so a failure observed in an epoch
// means the link is down for that whole epoch). Both vectors are in the
// same time unit; entries must be positive.
func FromDurations(mtbf, mttr []float64) (*Model, error) {
	if len(mtbf) == 0 || len(mtbf) != len(mttr) {
		return nil, fmt.Errorf("failure: %d MTBF entries, %d MTTR entries", len(mtbf), len(mttr))
	}
	probs := make([]float64, len(mtbf))
	for i := range mtbf {
		if !(mtbf[i] > 0) || !(mttr[i] > 0) {
			return nil, fmt.Errorf("failure: link %d: MTBF %v and MTTR %v must be positive", i, mtbf[i], mttr[i])
		}
		probs[i] = mttr[i] / (mtbf[i] + mttr[i])
	}
	return FromProbabilities(probs)
}

// FromProbabilities builds a model directly from per-link probabilities,
// for tests and custom scenarios. Probabilities must lie in [0, 1).
func FromProbabilities(probs []float64) (*Model, error) {
	if len(probs) == 0 {
		return nil, fmt.Errorf("failure: empty probability vector")
	}
	cp := make([]float64, len(probs))
	for i, p := range probs {
		if p < 0 || p >= 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("failure: probability %v for link %d out of [0,1)", p, i)
		}
		cp[i] = p
	}
	return &Model{probs: cp}, nil
}

// Links returns the number of links covered by the model.
func (m *Model) Links() int { return len(m.probs) }

// Prob returns the failure probability of link l.
func (m *Model) Prob(l int) float64 { return m.probs[l] }

// Probs returns a copy of all link failure probabilities.
func (m *Model) Probs() []float64 {
	out := make([]float64, len(m.probs))
	copy(out, m.probs)
	return out
}

// ExpectedConcurrentFailures returns Σ p_l, the mean number of links down
// in an epoch.
func (m *Model) ExpectedConcurrentFailures() float64 {
	sum := 0.0
	for _, p := range m.probs {
		sum += p
	}
	return sum
}

// Scenario is one epoch's failure vector: Failed[l] is true when link l is
// down.
type Scenario struct {
	Failed []bool
}

// NumFailed returns the number of failed links in the scenario.
func (s Scenario) NumFailed() int {
	n := 0
	for _, f := range s.Failed {
		if f {
			n++
		}
	}
	return n
}

// Sample draws one epoch's independent failure vector.
func (m *Model) Sample(rng *rand.Rand) Scenario {
	failed := make([]bool, len(m.probs))
	for i, p := range m.probs {
		failed[i] = stats.Bernoulli(rng, p)
	}
	return Scenario{Failed: failed}
}

// SampleColumn implements ColumnSampler: it fills link l's failure
// bit-column over n scenarios by geometric skip sampling. Failures are
// i.i.d. Bernoulli(p) across scenarios, so the gap between consecutive
// failures is geometric; drawing the gaps directly via inverse transform
// (floor(ln U / ln(1−p))) costs one uniform per failure — about Σ_l p_l·n
// draws for the whole panel instead of links·n. The column realization
// differs from scenario-major Sample draws, but is equally distributed and
// deterministic in rng (links are filled in ascending order).
func (m *Model) SampleColumn(rng *rand.Rand, l, n int, col []uint64) {
	p := m.probs[l]
	if p <= 0 {
		return
	}
	if p >= 1 {
		for s := 0; s < n; s++ {
			col[s>>6] |= 1 << (s & 63)
		}
		return
	}
	logq := math.Log1p(-p)
	pos := -1
	for {
		u := rng.Float64()
		if u == 0 {
			return // log(0) = −Inf: an infinite gap, i.e. no further failure
		}
		gap := math.Log(u) / logq
		if gap >= float64(n) {
			return // also guards the int conversion against overflow
		}
		pos += 1 + int(gap)
		if pos >= n {
			return
		}
		col[pos>>6] |= 1 << (pos & 63)
	}
}

// SampleN draws n independent scenarios.
func (m *Model) SampleN(rng *rand.Rand, n int) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		out[i] = m.Sample(rng)
	}
	return out
}

// ExactK returns a scenario with exactly k failed links drawn without
// replacement, weighted by failure probability. Used by the Fig. 3 style
// "k concurrent failures" experiments.
func (m *Model) ExactK(rng *rand.Rand, k int) (Scenario, error) {
	if k < 0 || k > len(m.probs) {
		return Scenario{}, fmt.Errorf("failure: k=%d out of range [0,%d]", k, len(m.probs))
	}
	failed := make([]bool, len(m.probs))
	weights := make([]float64, len(m.probs))
	copy(weights, m.probs)
	for picked := 0; picked < k; picked++ {
		total := 0.0
		for i, w := range weights {
			if !failed[i] {
				total += w
			}
		}
		if total <= 0 {
			// Degenerate weights: fall back to uniform over the rest.
			var candidates []int
			for i := range weights {
				if !failed[i] {
					candidates = append(candidates, i)
				}
			}
			failed[candidates[rng.IntN(len(candidates))]] = true
			continue
		}
		x := rng.Float64() * total
		for i, w := range weights {
			if failed[i] {
				continue
			}
			x -= w
			if x <= 0 {
				failed[i] = true
				break
			}
		}
	}
	return Scenario{Failed: failed}, nil
}

// SourceName implements ScenarioSource.
func (m *Model) SourceName() string { return SourceBernoulli }

// Marginals implements ScenarioSource: for the i.i.d. Bernoulli process
// the stationary marginals are the per-link probabilities themselves.
func (m *Model) Marginals() []float64 { return m.Probs() }

// Snapshot implements ScenarioSource. The process is i.i.d. across
// epochs, so there is no cross-epoch state to capture.
func (m *Model) Snapshot() SourceState { return SourceState{} }

// Restore implements ScenarioSource.
func (m *Model) Restore(s SourceState) error {
	return s.restoreInto(SourceBernoulli, nil)
}

// PathAvailability returns the expected availability of a path crossing the
// given links: Π (1 − p_l), per Eq. 3 of the paper.
func (m *Model) PathAvailability(links []int) float64 {
	ea := 1.0
	for _, l := range links {
		ea *= 1 - m.probs[l]
	}
	return ea
}
