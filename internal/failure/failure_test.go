package failure

import (
	"math"
	"testing"
	"testing/quick"

	"robusttomo/internal/stats"
)

func TestNewModelValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{Links: 100, ExpectedFailures: 2, Seed: 1}, true},
		{"no links", Config{Links: 0, ExpectedFailures: 1}, false},
		{"zero failures", Config{Links: 10, ExpectedFailures: 0}, false},
		{"too many failures", Config{Links: 10, ExpectedFailures: 10}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewModel(tc.cfg)
			if tc.ok != (err == nil) {
				t.Fatalf("err = %v, ok = %v", err, tc.ok)
			}
		})
	}
}

func TestModelExpectedFailuresCalibrated(t *testing.T) {
	m, err := NewModel(Config{Links: 972, ExpectedFailures: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ExpectedConcurrentFailures(); math.Abs(got-3) > 0.05 {
		t.Fatalf("expected failures = %v, want ~3", got)
	}
	if m.Links() != 972 {
		t.Fatalf("Links = %d", m.Links())
	}
}

func TestModelPowerLawShape(t *testing.T) {
	counts := powerLawCounts(1000)
	if counts[0] != AnchorCount {
		t.Fatalf("n(1) = %v, want %v", counts[0], AnchorCount)
	}
	// Counts must be strictly decreasing with rank.
	for i := 1; i < len(counts); i++ {
		if counts[i] >= counts[i-1] {
			t.Fatalf("counts not decreasing at rank %d: %v >= %v", i, counts[i], counts[i-1])
		}
	}
	// The 2.5% cut must be continuous: no big jump across the regime
	// boundary.
	cut := int(math.Ceil(HighFraction * 1000))
	ratio := counts[cut] / counts[cut-1]
	if ratio < 0.5 || ratio > 1 {
		t.Fatalf("discontinuity at regime cut: ratio %v", ratio)
	}
}

func TestModelDeterministicInSeed(t *testing.T) {
	a, _ := NewModel(Config{Links: 50, ExpectedFailures: 2, Seed: 3})
	b, _ := NewModel(Config{Links: 50, ExpectedFailures: 2, Seed: 3})
	c, _ := NewModel(Config{Links: 50, ExpectedFailures: 2, Seed: 4})
	pa, pb, pc := a.Probs(), b.Probs(), c.Probs()
	same := true
	diff := false
	for i := range pa {
		if pa[i] != pb[i] {
			same = false
		}
		if pa[i] != pc[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different probabilities")
	}
	if !diff {
		t.Fatal("different seeds produced identical assignments")
	}
}

func TestFromDurations(t *testing.T) {
	// MTBF 99 days, MTTR 1 day → unavailability 0.01.
	m, err := FromDurations([]float64{99, 30}, []float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Prob(0)-0.01) > 1e-12 {
		t.Fatalf("Prob(0) = %v, want 0.01", m.Prob(0))
	}
	if math.Abs(m.Prob(1)-0.25) > 1e-12 {
		t.Fatalf("Prob(1) = %v, want 0.25", m.Prob(1))
	}
	cases := [][2][]float64{
		{{}, {}},
		{{1}, {1, 2}},
		{{0}, {1}},
		{{1}, {0}},
		{{-1}, {1}},
	}
	for _, tc := range cases {
		if _, err := FromDurations(tc[0], tc[1]); err == nil {
			t.Fatalf("durations %v accepted", tc)
		}
	}
}

func TestFromProbabilities(t *testing.T) {
	m, err := FromProbabilities([]float64{0.1, 0.5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if m.Prob(1) != 0.5 {
		t.Fatalf("Prob(1) = %v", m.Prob(1))
	}
	for _, bad := range [][]float64{{}, {1.0}, {-0.1}, {math.NaN()}} {
		if _, err := FromProbabilities(bad); err == nil {
			t.Fatalf("bad probabilities %v accepted", bad)
		}
	}
}

func TestProbsReturnsCopy(t *testing.T) {
	m, _ := FromProbabilities([]float64{0.1, 0.2})
	p := m.Probs()
	p[0] = 0.9
	if m.Prob(0) == 0.9 {
		t.Fatal("Probs aliases internal state")
	}
}

func TestSampleMatchesProbabilities(t *testing.T) {
	m, _ := FromProbabilities([]float64{0.8, 0.0, 0.3})
	rng := stats.NewRNG(11, 0)
	n := 20000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		sc := m.Sample(rng)
		for j, f := range sc.Failed {
			if f {
				counts[j]++
			}
		}
	}
	freqs := []float64{float64(counts[0]) / float64(n), float64(counts[1]) / float64(n), float64(counts[2]) / float64(n)}
	if math.Abs(freqs[0]-0.8) > 0.02 || freqs[1] != 0 || math.Abs(freqs[2]-0.3) > 0.02 {
		t.Fatalf("empirical frequencies %v, want [0.8 0 0.3]", freqs)
	}
}

func TestSampleN(t *testing.T) {
	m, _ := FromProbabilities([]float64{0.5, 0.5})
	rng := stats.NewRNG(1, 2)
	scs := m.SampleN(rng, 10)
	if len(scs) != 10 {
		t.Fatalf("SampleN = %d scenarios", len(scs))
	}
}

func TestScenarioNumFailed(t *testing.T) {
	sc := Scenario{Failed: []bool{true, false, true, true}}
	if sc.NumFailed() != 3 {
		t.Fatalf("NumFailed = %d", sc.NumFailed())
	}
}

func TestExactK(t *testing.T) {
	m, _ := NewModel(Config{Links: 30, ExpectedFailures: 1, Seed: 5})
	rng := stats.NewRNG(9, 9)
	for k := 0; k <= 5; k++ {
		sc, err := m.ExactK(rng, k)
		if err != nil {
			t.Fatal(err)
		}
		if sc.NumFailed() != k {
			t.Fatalf("ExactK(%d) failed %d links", k, sc.NumFailed())
		}
	}
	if _, err := m.ExactK(rng, -1); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, err := m.ExactK(rng, 31); err == nil {
		t.Fatal("k > links accepted")
	}
}

func TestExactKBiasTowardHighFailureLinks(t *testing.T) {
	// One link with huge probability should appear in most k=1 draws.
	m, _ := FromProbabilities([]float64{0.9, 0.001, 0.001, 0.001})
	rng := stats.NewRNG(4, 4)
	hits := 0
	for i := 0; i < 500; i++ {
		sc, _ := m.ExactK(rng, 1)
		if sc.Failed[0] {
			hits++
		}
	}
	if hits < 450 {
		t.Fatalf("high-failure link selected only %d/500 times", hits)
	}
}

func TestExactKDegenerateWeights(t *testing.T) {
	// All-zero probabilities force the uniform fallback.
	m, _ := FromProbabilities([]float64{0, 0, 0})
	rng := stats.NewRNG(6, 6)
	sc, err := m.ExactK(rng, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumFailed() != 2 {
		t.Fatalf("NumFailed = %d, want 2", sc.NumFailed())
	}
}

func TestPathAvailability(t *testing.T) {
	m, _ := FromProbabilities([]float64{0.1, 0.2, 0.0})
	got := m.PathAvailability([]int{0, 1})
	want := 0.9 * 0.8
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("EA = %v, want %v", got, want)
	}
	if m.PathAvailability(nil) != 1 {
		t.Fatal("empty path should have EA 1")
	}
}

// Property: EA(path) matches the Monte Carlo availability frequency.
func TestPathAvailabilityMatchesSampling(t *testing.T) {
	m, _ := FromProbabilities([]float64{0.3, 0.1, 0.5, 0.05})
	links := []int{0, 2, 3}
	want := m.PathAvailability(links)
	rng := stats.NewRNG(21, 0)
	n := 50000
	up := 0
	for i := 0; i < n; i++ {
		sc := m.Sample(rng)
		ok := true
		for _, l := range links {
			if sc.Failed[l] {
				ok = false
				break
			}
		}
		if ok {
			up++
		}
	}
	got := float64(up) / float64(n)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("sampled EA %v, analytic %v", got, want)
	}
}

// Property: for any valid model, probabilities stay in [0, 0.95] and the
// calibration target is met within rounding.
func TestModelProbabilityBounds(t *testing.T) {
	check := func(seed uint64) bool {
		links := 20 + int(seed%200)
		target := 1 + float64(seed%5)
		if target >= float64(links) {
			return true
		}
		m, err := NewModel(Config{Links: links, ExpectedFailures: target, Seed: seed})
		if err != nil {
			return false
		}
		for _, p := range m.Probs() {
			if p < 0 || p > 0.95 {
				return false
			}
		}
		return math.Abs(m.ExpectedConcurrentFailures()-target) < 0.25*target+0.01
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
