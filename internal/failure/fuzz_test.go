package failure

import (
	"math"
	"testing"

	"robusttomo/internal/stats"
)

// fuzzSpecs derives one SourceSpec per registered source family from the
// fuzzed coordinates, so every registered process is exercised on every
// fuzz iteration.
func fuzzSpecs(seed uint64, links int, burst float64) []SourceSpec {
	probs := make([]float64, links)
	for l := range probs {
		// Deterministic in (seed, l), spread over (0, 0.45]: reachable for
		// every swept burst length (the L = 1 Gilbert bound is m < 0.5).
		probs[l] = 0.01 + 0.44*float64((seed+uint64(l)*2654435761)%97)/96
	}
	incidence := make([][]int, links)
	nodeProbs := make([]float64, links)
	for v := range incidence {
		incidence[v] = []int{v, (v + 1) % links}
		nodeProbs[v] = probs[v] / 4
	}
	groups := []SRLG{{Links: []int{0, links - 1}, Prob: 0.1}}
	return []SourceSpec{
		{Source: SourceBernoulli, Probs: probs},
		{Source: SourceGilbertElliott, Probs: probs, MeanBurst: burst, Seed: seed},
		{Source: SourceSRLG, Probs: probs, Groups: groups},
		{Source: SourceNode, Links: links, Incidence: incidence, NodeProbs: nodeProbs},
	}
}

// FuzzScenarioSource drives every registered scenario source through its
// contract invariants under fuzzed parameters: marginal sanity against a
// long-run empirical rate, snapshot/restore determinism of both the
// epoch-major and packed panels, and packed-column expansion consistency
// (Scenarios() re-packed reproduces the panel bit-for-bit).
func FuzzScenarioSource(f *testing.F) {
	f.Add(uint64(1), uint8(4), float64(2), uint16(50))
	f.Add(uint64(0xdeadbeef), uint8(24), float64(1), uint16(1))
	f.Add(uint64(7), uint8(65), float64(9.5), uint16(200))
	f.Add(uint64(42), uint8(1), float64(16), uint16(64))
	f.Fuzz(func(t *testing.T, seed uint64, linksRaw uint8, burst float64, epochsRaw uint16) {
		links := 1 + int(linksRaw)%96
		epochs := 1 + int(epochsRaw)%300
		if !(burst >= 1) || burst > 64 || math.IsInf(burst, 0) {
			burst = 1 + math.Abs(math.Mod(burst, 63))
			if !(burst >= 1) { // NaN fallthrough
				burst = 1
			}
		}
		for _, spec := range fuzzSpecs(seed, links, burst) {
			src, err := NewSource(spec)
			if err != nil {
				t.Fatalf("%s: building source: %v", spec.Source, err)
			}
			if src.Links() != links {
				t.Fatalf("%s: Links() = %d, want %d", spec.Source, src.Links(), links)
			}

			// Marginal sanity: in range, and matched by the long-run rate.
			// The empirical tolerance is conservative: worst-case perfect
			// cross-link correlation plus the Gilbert burst inflation
			// (1+ρ)/(1−ρ) ≤ 2L−1 on the effective sample count.
			marg := src.Marginals()
			if len(marg) != links {
				t.Fatalf("%s: %d marginals for %d links", spec.Source, len(marg), links)
			}
			mbar := 0.0
			for l, m := range marg {
				if !(m >= 0 && m < 1) {
					t.Fatalf("%s: marginal %v for link %d outside [0,1)", spec.Source, m, l)
				}
				mbar += m
			}
			mbar /= float64(links)
			const empiricalEpochs = 4096
			rng := stats.NewRNG(seed, 0xF022)
			fails := 0
			for e := 0; e < empiricalEpochs; e++ {
				sc := src.Sample(rng)
				if len(sc.Failed) != links {
					t.Fatalf("%s: scenario covers %d links, want %d", spec.Source, len(sc.Failed), links)
				}
				for _, down := range sc.Failed {
					if down {
						fails++
					}
				}
			}
			got := float64(fails) / float64(empiricalEpochs*links)
			tol := 8*math.Sqrt(mbar*(1-mbar)*(2*burst-1)/empiricalEpochs) + 0.02
			if math.Abs(got-mbar) > tol {
				t.Fatalf("%s: empirical failure rate %v vs mean marginal %v (tol %v)", spec.Source, got, mbar, tol)
			}

			// Snapshot/restore determinism: the same draws from the same
			// state and rng stream must replay bit-for-bit, epoch-major and
			// packed alike.
			snap := src.Snapshot()
			drawA := SampleScenarios(src, stats.NewRNG(seed, 0xF023), epochs)
			setA, err := SampleScenarioSet(src, stats.NewRNG(seed, 0xF024), epochs)
			if err != nil {
				t.Fatalf("%s: packed panel: %v", spec.Source, err)
			}
			if err := src.Restore(snap); err != nil {
				t.Fatalf("%s: restoring own snapshot: %v", spec.Source, err)
			}
			drawB := SampleScenarios(src, stats.NewRNG(seed, 0xF023), epochs)
			setB, err := SampleScenarioSet(src, stats.NewRNG(seed, 0xF024), epochs)
			if err != nil {
				t.Fatalf("%s: packed replay: %v", spec.Source, err)
			}
			for e := range drawA {
				for l := range drawA[e].Failed {
					if drawA[e].Failed[l] != drawB[e].Failed[l] {
						t.Fatalf("%s: epoch %d link %d diverged after restore", spec.Source, e, l)
					}
				}
			}
			for l := 0; l < links; l++ {
				colA, colB := setA.Col(l), setB.Col(l)
				for w := range colA {
					if colA[w] != colB[w] {
						t.Fatalf("%s: packed column %d word %d diverged after restore", spec.Source, l, w)
					}
				}
			}

			// Packed-column expansion: Scenarios() re-packed must reproduce
			// the panel exactly (the serial-reference contract the er
			// kernels' parallel==serial equality rests on).
			expanded, err := NewScenarioSet(setA.Scenarios())
			if err != nil {
				t.Fatalf("%s: re-packing expansion: %v", spec.Source, err)
			}
			if expanded.N() != setA.N() || expanded.Links() != setA.Links() {
				t.Fatalf("%s: expansion shape %dx%d, want %dx%d", spec.Source, expanded.N(), expanded.Links(), setA.N(), setA.Links())
			}
			for l := 0; l < links; l++ {
				colA, colE := setA.Col(l), expanded.Col(l)
				for w := range colA {
					if colA[w] != colE[w] {
						t.Fatalf("%s: expansion column %d word %d mismatch", spec.Source, l, w)
					}
				}
			}
		}
	})
}
