package failure

import (
	"fmt"
	"math"
	"math/rand/v2"

	"robusttomo/internal/stats"
)

// GEConfig parameterizes NewGilbertElliott.
//
// Each link runs an independent two-state Markov chain over {Good, Bad}
// with geometric sojourns: from Good the chain enters Bad with per-epoch
// probability p, from Bad it recovers with probability r. The link is
// down with probability PBad while Bad and PGood while Good. The chain
// is parameterized by observables rather than raw transition rates: the
// target stationary marginal failure probability m per link and the mean
// Bad sojourn MeanBurst = 1/r, from which
//
//	πB = (m − PGood) / (PBad − PGood)   (stationary Bad occupancy)
//	r  = 1 / MeanBurst
//	p  = r · πB / (1 − πB)
//
// so the long-run per-link failure rate matches an i.i.d. Bernoulli(m)
// process exactly while failures cluster into bursts of mean length
// MeanBurst. MeanBurst = 1 with the default emissions degenerates to
// p = m/(1−m)-paced single-epoch bursts; larger values stretch the same
// failure mass into longer, rarer bursts.
type GEConfig struct {
	// Marginals are the per-link stationary failure probabilities the
	// chain must reproduce, each in [0, 1).
	Marginals []float64
	// MeanBurst is the mean Bad-state sojourn in epochs; must be ≥ 1.
	MeanBurst float64
	// PBad and PGood are the per-state failure (emission) probabilities.
	// The zero value of PBad means the classical Gilbert default 1 (down
	// for the whole burst); PGood defaults to 0 (up between bursts).
	// Required: 0 ≤ PGood < PBad ≤ 1 and PGood ≤ m < PBad per link.
	PBad  float64
	PGood float64
	// Seed drives the stationary draw of each link's initial state.
	Seed uint64
}

// GilbertElliott is the bursty-link ScenarioSource: independent two-state
// Markov chains per link (see GEConfig). Unlike the i.i.d. sources it is
// stateful across epochs — Sample and SampleColumn advance every link's
// chain — so consumers that need repeatable draws bracket them with
// Snapshot/Restore.
type GilbertElliott struct {
	marginals []float64
	enterBad  []float64 // per-link p (Good → Bad)
	leaveBad  float64   // r (Bad → Good), shared: one MeanBurst for all links
	meanBurst float64
	pBad      float64
	pGood     float64
	bad       []uint64 // current state bitmask, 1 = Bad, bit l = link l
}

// NewGilbertElliott derives the per-link transition probabilities from
// the configured marginals and burst length and draws each link's initial
// state from its stationary distribution (seeded, so construction is
// deterministic).
func NewGilbertElliott(cfg GEConfig) (*GilbertElliott, error) {
	if len(cfg.Marginals) == 0 {
		return nil, fmt.Errorf("failure: gilbert-elliott needs at least one link marginal")
	}
	if cfg.MeanBurst < 1 {
		return nil, fmt.Errorf("failure: gilbert-elliott mean burst %v must be ≥ 1 epoch", cfg.MeanBurst)
	}
	pBad, pGood := cfg.PBad, cfg.PGood
	if pBad == 0 {
		pBad = 1
	}
	if pGood < 0 || pBad > 1 || pGood >= pBad {
		return nil, fmt.Errorf("failure: gilbert-elliott emissions need 0 ≤ PGood < PBad ≤ 1, got PGood=%v PBad=%v", pGood, pBad)
	}
	g := &GilbertElliott{
		marginals: make([]float64, len(cfg.Marginals)),
		enterBad:  make([]float64, len(cfg.Marginals)),
		leaveBad:  1 / cfg.MeanBurst,
		meanBurst: cfg.MeanBurst,
		pBad:      pBad,
		pGood:     pGood,
		bad:       make([]uint64, (len(cfg.Marginals)+63)/64),
	}
	rng := stats.NewRNG(cfg.Seed, 0x6E57)
	for l, m := range cfg.Marginals {
		if m < 0 || m >= 1 || math.IsNaN(m) {
			return nil, fmt.Errorf("failure: marginal %v for link %d out of [0,1)", m, l)
		}
		if m < pGood || m >= pBad {
			return nil, fmt.Errorf("failure: marginal %v for link %d outside emission range [PGood=%v, PBad=%v)", m, l, pGood, pBad)
		}
		piBad := (m - pGood) / (pBad - pGood)
		p := g.leaveBad * piBad / (1 - piBad)
		if p > 1 {
			return nil, fmt.Errorf("failure: link %d marginal %v unreachable with mean burst %v (Good→Bad probability %v > 1); shorten the burst or lower the marginal", l, m, cfg.MeanBurst, p)
		}
		g.marginals[l] = m
		g.enterBad[l] = p
		if stats.Bernoulli(rng, piBad) {
			g.bad[l>>6] |= 1 << (l & 63)
		}
	}
	return g, nil
}

// Links implements Sampler.
func (g *GilbertElliott) Links() int { return len(g.marginals) }

// SourceName implements ScenarioSource.
func (g *GilbertElliott) SourceName() string { return SourceGilbertElliott }

// Marginals implements ScenarioSource: the configured stationary
// marginals, reproduced exactly by the chain's long-run behaviour.
func (g *GilbertElliott) Marginals() []float64 {
	return append([]float64(nil), g.marginals...)
}

// MeanBurst returns the configured mean Bad sojourn in epochs.
func (g *GilbertElliott) MeanBurst() float64 { return g.meanBurst }

// Autocorrelation returns link l's lag-1 autocorrelation of the state
// process, 1 − p_l − r: zero for MeanBurst-1 chains with tiny marginals
// (nearly i.i.d.), approaching 1 as bursts lengthen.
func (g *GilbertElliott) Autocorrelation(l int) float64 {
	return 1 - g.enterBad[l] - g.leaveBad
}

// IndependentApproximation returns the i.i.d. Bernoulli model with this
// chain's stationary marginals — what a correlation-blind consumer
// (ProbRoMe) sees of the process.
func (g *GilbertElliott) IndependentApproximation() (*Model, error) {
	return FromProbabilities(g.marginals)
}

// Snapshot implements ScenarioSource: it captures every link's current
// Good/Bad state.
func (g *GilbertElliott) Snapshot() SourceState {
	return newSourceState(SourceGilbertElliott, g.bad)
}

// Restore implements ScenarioSource.
func (g *GilbertElliott) Restore(s SourceState) error {
	return s.restoreInto(SourceGilbertElliott, g.bad)
}

func (g *GilbertElliott) isBad(l int) bool {
	return g.bad[l>>6]&(1<<(l&63)) != 0
}

func (g *GilbertElliott) flip(l int) {
	g.bad[l>>6] ^= 1 << (l & 63)
}

// Sample implements Sampler: it emits the current epoch's failure vector
// and advances every link's chain one epoch. Emission draws are skipped
// under the default degenerate emissions (PBad=1, PGood=0), and
// transition draws are skipped for absorbing links (p = 0), so the rng
// consumption per epoch is deterministic given the chain state.
func (g *GilbertElliott) Sample(rng *rand.Rand) Scenario {
	failed := make([]bool, len(g.marginals))
	for l := range failed {
		bad := g.isBad(l)
		if bad {
			failed[l] = g.pBad >= 1 || stats.Bernoulli(rng, g.pBad)
		} else if g.pGood > 0 {
			failed[l] = stats.Bernoulli(rng, g.pGood)
		}
		leave := g.leaveBad
		if !bad {
			leave = g.enterBad[l]
		}
		if leave > 0 && stats.Bernoulli(rng, leave) {
			g.flip(l)
		}
	}
	return Scenario{Failed: failed}
}

// SampleColumn implements ColumnSampler: it fills link l's failure
// bit-column over the next n epochs by sojourn skip sampling. Sojourn
// lengths are geometric, so instead of one transition draw per epoch the
// chain jumps whole sojourns via inverse transform — under the default
// degenerate emissions a burst becomes one uniform draw plus a run of
// set bits, costing O(transitions) rather than O(n) per link. A sojourn
// truncated by the panel end leaves the chain mid-sojourn, which by
// memorylessness is distributionally identical to carrying the residual
// over; the final state is written back so consecutive panels chain
// correctly. The realization differs from epoch-major Sample draws but
// is equally distributed, and links must be filled in ascending order
// for determinism (as ColumnSampler requires).
func (g *GilbertElliott) SampleColumn(rng *rand.Rand, l, n int, col []uint64) {
	bad := g.isBad(l)
	pos := 0
	for pos < n {
		leave := g.leaveBad
		if !bad {
			leave = g.enterBad[l]
		}
		// The sojourn runs to the panel end without a flip unless a
		// geometric draw lands the transition inside the panel (a draw
		// of exactly the remaining length flips at the boundary).
		end, flip := n, false
		if leave >= 1 {
			end, flip = pos+1, true
		} else if leave > 0 {
			if u := rng.Float64(); u > 0 {
				// Sojourn length K = 1 + floor(ln U / ln(1−leave)) ≥ 1.
				gap := math.Log(u) / math.Log1p(-leave)
				if gap < float64(n-pos) {
					end, flip = pos+1+int(gap), true
				}
			}
		}
		if bad {
			g.emitBad(rng, pos, end, col)
		} else if g.pGood > 0 {
			g.emitGood(rng, pos, end, col)
		}
		if flip {
			bad = !bad
		}
		pos = end
	}
	if bad != g.isBad(l) {
		g.flip(l)
	}
}

// emitBad sets the failure bits for a Bad sojourn spanning epochs
// [from, to): the whole run under the degenerate PBad = 1, otherwise one
// Bernoulli per epoch.
func (g *GilbertElliott) emitBad(rng *rand.Rand, from, to int, col []uint64) {
	if g.pBad >= 1 {
		for s := from; s < to; s++ {
			col[s>>6] |= 1 << (s & 63)
		}
		return
	}
	for s := from; s < to; s++ {
		if stats.Bernoulli(rng, g.pBad) {
			col[s>>6] |= 1 << (s & 63)
		}
	}
}

// emitGood sets the (rare) failure bits of a Good sojourn, one Bernoulli
// per epoch; callers skip it entirely when PGood = 0.
func (g *GilbertElliott) emitGood(rng *rand.Rand, from, to int, col []uint64) {
	for s := from; s < to; s++ {
		if stats.Bernoulli(rng, g.pGood) {
			col[s>>6] |= 1 << (s & 63)
		}
	}
}
