package failure

import (
	"math"
	"testing"

	"robusttomo/internal/stats"
)

func mustGE(t *testing.T, cfg GEConfig) *GilbertElliott {
	t.Helper()
	g, err := NewGilbertElliott(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGEValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  GEConfig
	}{
		{"no links", GEConfig{MeanBurst: 4}},
		{"burst below one epoch", GEConfig{Marginals: []float64{0.1}, MeanBurst: 0.5}},
		{"marginal out of range", GEConfig{Marginals: []float64{1.2}, MeanBurst: 4}},
		{"nan marginal", GEConfig{Marginals: []float64{math.NaN()}, MeanBurst: 4}},
		{"marginal at PBad", GEConfig{Marginals: []float64{0.5}, MeanBurst: 4, PBad: 0.5}},
		{"marginal below PGood", GEConfig{Marginals: []float64{0.01}, MeanBurst: 4, PGood: 0.05, PBad: 0.9}},
		{"inverted emissions", GEConfig{Marginals: []float64{0.1}, MeanBurst: 4, PGood: 0.8, PBad: 0.3}},
		// p = r·πB/(1−πB) = 1·(0.9/0.1) = 9 > 1: the chain cannot spend
		// 90% of its time in one-epoch bursts.
		{"unreachable marginal", GEConfig{Marginals: []float64{0.9}, MeanBurst: 1}},
	}
	for _, tc := range cases {
		if _, err := NewGilbertElliott(tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// Pinned acceptance test: the empirical failure rate of a long skip-sampled
// panel must match the closed-form stationary marginal m = πG·PGood + πB·PBad
// the chain is derived from. The Monte Carlo tolerance accounts for the
// positive lag-1 autocorrelation ρ of the bursty process, which inflates the
// variance of the empirical mean by (1+ρ)/(1−ρ) relative to i.i.d. draws.
func TestGEStationaryMarginalClosedForm(t *testing.T) {
	const n = 1 << 20
	cases := []GEConfig{
		{Marginals: []float64{0.02, 0.1, 0.3}, MeanBurst: 1, Seed: 11},
		{Marginals: []float64{0.02, 0.1, 0.3}, MeanBurst: 8, Seed: 12},
		{Marginals: []float64{0.05, 0.2}, MeanBurst: 16, PBad: 0.9, PGood: 0.01, Seed: 13},
	}
	for ci, cfg := range cases {
		g := mustGE(t, cfg)
		set, err := SampleScenarioSet(g, stats.NewRNG(42, uint64(ci)), n)
		if err != nil {
			t.Fatal(err)
		}
		for l, m := range g.Marginals() {
			got := float64(CountBits(set.Col(l))) / n
			rho := g.Autocorrelation(l)
			sigma := math.Sqrt(m * (1 - m) * (1 + rho) / (1 - rho) / n)
			if diff := math.Abs(got - m); diff > 4*sigma+1e-9 {
				t.Errorf("case %d link %d: empirical marginal %.5f vs closed form %.5f (|diff| %.5f > 4σ = %.5f)",
					ci, l, got, m, diff, 4*sigma)
			}
		}
	}
}

// The epoch-major Sample path must reproduce the same stationary marginals
// as the column path — it drives sim.Runner schedules.
func TestGESampleMarginals(t *testing.T) {
	const n = 200_000
	g := mustGE(t, GEConfig{Marginals: []float64{0.05, 0.25}, MeanBurst: 4, Seed: 3})
	rng := stats.NewRNG(7, 0)
	counts := make([]int, g.Links())
	for range n {
		sc := g.Sample(rng)
		for l, f := range sc.Failed {
			if f {
				counts[l]++
			}
		}
	}
	for l, m := range g.Marginals() {
		got := float64(counts[l]) / n
		rho := g.Autocorrelation(l)
		sigma := math.Sqrt(m * (1 - m) * (1 + rho) / (1 - rho) / n)
		if diff := math.Abs(got - m); diff > 4*sigma {
			t.Errorf("link %d: empirical %.5f vs %.5f (> 4σ = %.5f)", l, got, m, 4*sigma)
		}
	}
}

// With the default degenerate emissions every maximal run of failed epochs
// is one or more back-to-back Bad sojourns, so the mean observed burst
// length must track MeanBurst (slightly above it, since re-entry within one
// epoch merges bursts).
func TestGEBurstLengths(t *testing.T) {
	const n = 1 << 19
	for _, L := range []float64{2, 8} {
		g := mustGE(t, GEConfig{Marginals: []float64{0.1}, MeanBurst: L, Seed: 5})
		set, err := SampleScenarioSet(g, stats.NewRNG(9, uint64(L)), n)
		if err != nil {
			t.Fatal(err)
		}
		bursts, length, run := 0, 0, 0
		for s := 0; s < n; s++ {
			if set.Failed(0, s) {
				run++
			} else if run > 0 {
				bursts++
				length += run
				run = 0
			}
		}
		mean := float64(length) / float64(bursts)
		if mean < L*0.95 || mean > L*1.25 {
			t.Errorf("MeanBurst %v: observed mean burst %.3f out of [%.2f, %.2f]", L, mean, L*0.95, L*1.25)
		}
	}
}

// Snapshot/Restore must rewind the chain exactly: replaying from a snapshot
// with an identically seeded rng reproduces the draw sequence bit for bit,
// through both the epoch-major and the column paths.
func TestGESnapshotRestoreDeterminism(t *testing.T) {
	g := mustGE(t, GEConfig{Marginals: []float64{0.05, 0.2, 0.4}, MeanBurst: 6, Seed: 21})
	// Advance past the initial state so the snapshot is mid-trajectory.
	SampleScenarios(g, stats.NewRNG(1, 1), 137)

	snap := g.Snapshot()
	first := SampleScenarios(g, stats.NewRNG(2, 2), 301)
	set1, err := SampleScenarioSet(g, stats.NewRNG(3, 3), 500)
	if err != nil {
		t.Fatal(err)
	}

	if err := g.Restore(snap); err != nil {
		t.Fatal(err)
	}
	second := SampleScenarios(g, stats.NewRNG(2, 2), 301)
	set2, err := SampleScenarioSet(g, stats.NewRNG(3, 3), 500)
	if err != nil {
		t.Fatal(err)
	}

	for i := range first {
		for l := range first[i].Failed {
			if first[i].Failed[l] != second[i].Failed[l] {
				t.Fatalf("replay diverged at scenario %d link %d", i, l)
			}
		}
	}
	for l := 0; l < set1.Links(); l++ {
		c1, c2 := set1.Col(l), set2.Col(l)
		for w := range c1 {
			if c1[w] != c2[w] {
				t.Fatalf("column replay diverged at link %d word %d", l, w)
			}
		}
	}
}

// Restore must reject snapshots from other source families or shapes.
func TestGERestoreValidation(t *testing.T) {
	g := mustGE(t, GEConfig{Marginals: []float64{0.1, 0.1}, MeanBurst: 2})
	m, err := FromProbabilities([]float64{0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Restore(m.Snapshot()); err == nil {
		t.Error("bernoulli snapshot accepted by gilbert-elliott source")
	}
	wide := mustGE(t, GEConfig{Marginals: make([]float64, 100), MeanBurst: 2})
	// 100 links need 2 state words; the 2-link chain holds 1.
	if err := g.Restore(wide.Snapshot()); err == nil {
		t.Error("mismatched state width accepted")
	}
	if err := m.Restore(g.Snapshot()); err == nil {
		t.Error("stateful snapshot accepted by stateless source")
	}
}

// Construction is deterministic in the seed: same config, same initial
// states and transition parameters.
func TestGEDeterministicConstruction(t *testing.T) {
	cfg := GEConfig{Marginals: []float64{0.1, 0.2, 0.3, 0.4}, MeanBurst: 5, Seed: 77}
	a, b := mustGE(t, cfg), mustGE(t, cfg)
	sa := SampleScenarios(a, stats.NewRNG(4, 4), 64)
	sb := SampleScenarios(b, stats.NewRNG(4, 4), 64)
	for i := range sa {
		for l := range sa[i].Failed {
			if sa[i].Failed[l] != sb[i].Failed[l] {
				t.Fatalf("same seed diverged at scenario %d link %d", i, l)
			}
		}
	}
}

// Autocorrelation is the analytic 1 − p − r and must grow with MeanBurst.
func TestGEAutocorrelation(t *testing.T) {
	short := mustGE(t, GEConfig{Marginals: []float64{0.1}, MeanBurst: 1})
	long := mustGE(t, GEConfig{Marginals: []float64{0.1}, MeanBurst: 16})
	if s, l := short.Autocorrelation(0), long.Autocorrelation(0); s >= l {
		t.Errorf("autocorrelation did not grow with burst length: %.4f (L=1) vs %.4f (L=16)", s, l)
	}
	// L=1 ⇒ r=1, p = m/(1−m): ρ = 1 − p − r = −m/(1−m).
	want := -0.1 / 0.9
	if got := short.Autocorrelation(0); math.Abs(got-want) > 1e-12 {
		t.Errorf("L=1 autocorrelation %.6f, want %.6f", got, want)
	}
}

func TestGEIndependentApproximation(t *testing.T) {
	g := mustGE(t, GEConfig{Marginals: []float64{0.05, 0.2}, MeanBurst: 4})
	ind, err := g.IndependentApproximation()
	if err != nil {
		t.Fatal(err)
	}
	for l, m := range g.Marginals() {
		if ind.Prob(l) != m {
			t.Fatalf("link %d: independent approximation %.4f, marginal %.4f", l, ind.Prob(l), m)
		}
	}
}
