package failure

import (
	"fmt"
	"math/rand/v2"

	"robusttomo/internal/stats"
)

// NodeFailureConfig parameterizes NewNodeFailureModel.
type NodeFailureConfig struct {
	// Links is the number of links in the network; defaults to
	// Base.Links() when a base model is given (and must match it).
	Links int
	// Incidence lists, per node, the IDs of that node's incident links.
	// A node event downs every listed link for the epoch.
	Incidence [][]int
	// NodeProbs are the per-epoch node-failure probabilities, one per
	// node, each in [0, 1).
	NodeProbs []float64
	// Base is an optional independent per-link process layered under the
	// node events (a link is down when its own draw fires or any incident
	// node fails). Nil means node events are the only failure process.
	Base *Model
}

// NodeFailureModel is the node-event ScenarioSource: whole-node failures
// (router crash, power domain, maintenance reboot) that down every
// incident link at once, optionally layered over an independent per-link
// process. Node events are i.i.d. across epochs, so the source is
// stateless; the cross-link correlation they induce is exactly what the
// link-level diagnoser in internal/diagnose cannot see, which the
// node-localization experiment measures.
type NodeFailureModel struct {
	links     int
	incidence [][]int
	nodeProbs []float64
	nodesOf   [][]int // inverted index: per link, the nodes incident to it
	base      *Model
}

// NewNodeFailureModel validates the incidence structure and probabilities.
func NewNodeFailureModel(cfg NodeFailureConfig) (*NodeFailureModel, error) {
	links := cfg.Links
	if cfg.Base != nil {
		if links != 0 && links != cfg.Base.Links() {
			return nil, fmt.Errorf("failure: node model links %d but base model has %d", links, cfg.Base.Links())
		}
		links = cfg.Base.Links()
	}
	if links <= 0 {
		return nil, fmt.Errorf("failure: node model needs at least one link, got %d", links)
	}
	if len(cfg.Incidence) == 0 {
		return nil, fmt.Errorf("failure: node model needs at least one node")
	}
	if len(cfg.NodeProbs) != len(cfg.Incidence) {
		return nil, fmt.Errorf("failure: %d nodes in incidence but %d node probabilities", len(cfg.Incidence), len(cfg.NodeProbs))
	}
	m := &NodeFailureModel{
		links:     links,
		incidence: make([][]int, len(cfg.Incidence)),
		nodeProbs: make([]float64, len(cfg.NodeProbs)),
		nodesOf:   make([][]int, links),
		base:      cfg.Base,
	}
	for v, q := range cfg.NodeProbs {
		if q < 0 || q >= 1 {
			return nil, fmt.Errorf("failure: node %d probability %v out of [0,1)", v, q)
		}
		m.nodeProbs[v] = q
	}
	for v, inc := range cfg.Incidence {
		// Deduplicate: a self-loop edge lists the same link twice, and a
		// duplicate would double-count the node in Marginals (1−(1−q)²
		// instead of q, silently overstating the blind view).
		seen := make(map[int]bool, len(inc))
		cp := make([]int, 0, len(inc))
		for _, l := range inc {
			if l < 0 || l >= links {
				return nil, fmt.Errorf("failure: node %d incident link %d outside [0,%d)", v, l, links)
			}
			if seen[l] {
				continue
			}
			seen[l] = true
			cp = append(cp, l)
		}
		m.incidence[v] = cp
		for _, l := range cp {
			m.nodesOf[l] = append(m.nodesOf[l], v)
		}
	}
	return m, nil
}

// Links implements Sampler.
func (m *NodeFailureModel) Links() int { return m.links }

// Nodes returns the number of nodes in the model.
func (m *NodeFailureModel) Nodes() int { return len(m.nodeProbs) }

// Incidence returns a copy of node v's incident link IDs.
func (m *NodeFailureModel) Incidence(v int) []int {
	return append([]int(nil), m.incidence[v]...)
}

// SampleWithNodes draws one epoch and also reports which nodes failed
// (ascending IDs) — the ground truth the node-localization experiments
// score against. Node events are drawn first, in node order, then the
// base link process; the draw order is fixed so the realization is
// deterministic in the rng.
func (m *NodeFailureModel) SampleWithNodes(rng *rand.Rand) (Scenario, []int) {
	var downNodes []int
	failed := make([]bool, m.links)
	for v, q := range m.nodeProbs {
		if stats.Bernoulli(rng, q) {
			downNodes = append(downNodes, v)
			for _, l := range m.incidence[v] {
				failed[l] = true
			}
		}
	}
	if m.base != nil {
		sc := m.base.Sample(rng)
		for l, f := range sc.Failed {
			if f {
				failed[l] = true
			}
		}
	}
	return Scenario{Failed: failed}, downNodes
}

// Sample implements Sampler.
func (m *NodeFailureModel) Sample(rng *rand.Rand) Scenario {
	sc, _ := m.SampleWithNodes(rng)
	return sc
}

// SourceName implements ScenarioSource.
func (m *NodeFailureModel) SourceName() string { return SourceNode }

// Marginals implements ScenarioSource: link l is up only when its own
// draw (if any) and every incident node survive, so its marginal is
// 1 − (1 − p_l)·Π_{v ∋ l}(1 − q_v). Feeding these into FromProbabilities
// gives the correlation-blind independent view of the process.
func (m *NodeFailureModel) Marginals() []float64 {
	out := make([]float64, m.links)
	for l := range out {
		up := 1.0
		if m.base != nil {
			up = 1 - m.base.Prob(l)
		}
		for _, v := range m.nodesOf[l] {
			up *= 1 - m.nodeProbs[v]
		}
		out[l] = 1 - up
	}
	return out
}

// IndependentApproximation returns the independent Model with this
// process's marginals.
func (m *NodeFailureModel) IndependentApproximation() (*Model, error) {
	return FromProbabilities(m.Marginals())
}

// Snapshot implements ScenarioSource. Node events are i.i.d. across
// epochs, so there is no cross-epoch state to capture.
func (m *NodeFailureModel) Snapshot() SourceState { return SourceState{} }

// Restore implements ScenarioSource.
func (m *NodeFailureModel) Restore(s SourceState) error {
	return s.restoreInto(SourceNode, nil)
}
