package failure

import (
	"math"
	"testing"

	"robusttomo/internal/stats"
)

// A 4-node path topology: node v incident to the links on either side.
func pathIncidence() [][]int {
	return [][]int{{0}, {0, 1}, {1, 2}, {2}}
}

func mustNodeModel(t *testing.T, cfg NodeFailureConfig) *NodeFailureModel {
	t.Helper()
	m, err := NewNodeFailureModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNodeFailureValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  NodeFailureConfig
	}{
		{"no links", NodeFailureConfig{Incidence: [][]int{{0}}, NodeProbs: []float64{0.1}}},
		{"no nodes", NodeFailureConfig{Links: 3}},
		{"probs/incidence mismatch", NodeFailureConfig{Links: 3, Incidence: pathIncidence(), NodeProbs: []float64{0.1}}},
		{"prob out of range", NodeFailureConfig{Links: 3, Incidence: pathIncidence(), NodeProbs: []float64{0.1, 0.1, 1.0, 0.1}}},
		{"link out of range", NodeFailureConfig{Links: 2, Incidence: pathIncidence(), NodeProbs: []float64{0.1, 0.1, 0.1, 0.1}}},
	}
	for _, tc := range cases {
		if _, err := NewNodeFailureModel(tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	base, err := FromProbabilities([]float64{0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNodeFailureModel(NodeFailureConfig{
		Links: 3, Base: base, Incidence: [][]int{{0}}, NodeProbs: []float64{0.1},
	}); err == nil {
		t.Error("links/base mismatch accepted")
	}
}

// Every node event must down exactly its incident links (absent a base
// process), and the reported ground-truth node set must explain the
// scenario.
func TestNodeFailureGroundTruth(t *testing.T) {
	m := mustNodeModel(t, NodeFailureConfig{
		Links:     3,
		Incidence: pathIncidence(),
		NodeProbs: []float64{0.2, 0.3, 0.1, 0.25},
	})
	rng := stats.NewRNG(1, 1)
	for range 2000 {
		sc, nodes := m.SampleWithNodes(rng)
		want := make([]bool, 3)
		for _, v := range nodes {
			for _, l := range m.Incidence(v) {
				want[l] = true
			}
		}
		for l := range want {
			if sc.Failed[l] != want[l] {
				t.Fatalf("link %d state %v not explained by failed nodes %v", l, sc.Failed[l], nodes)
			}
		}
	}
}

// Marginals must follow the closed form 1 − (1−p_l)·Π_{v ∋ l}(1−q_v), and a
// long empirical run must agree with it.
// A self-loop edge lists the same link twice in a node's incidence; the
// duplicate must not double-count the node in Marginals.
func TestNodeFailureDuplicateIncidence(t *testing.T) {
	m := mustNodeModel(t, NodeFailureConfig{
		Links: 1, Incidence: [][]int{{0, 0}}, NodeProbs: []float64{0.2},
	})
	if got := m.Marginals()[0]; math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("marginal with duplicate incidence = %v, want 0.2", got)
	}
	if got := m.Incidence(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Incidence(0) = %v, want [0]", got)
	}
}

func TestNodeFailureMarginals(t *testing.T) {
	base, err := FromProbabilities([]float64{0.05, 0.0, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.2, 0.3, 0.1, 0.25}
	m := mustNodeModel(t, NodeFailureConfig{Base: base, Incidence: pathIncidence(), NodeProbs: q})

	want := []float64{
		1 - (1-0.05)*(1-q[0])*(1-q[1]), // link 0: nodes 0,1
		1 - (1-0.0)*(1-q[1])*(1-q[2]),  // link 1: nodes 1,2
		1 - (1-0.1)*(1-q[2])*(1-q[3]),  // link 2: nodes 2,3
	}
	got := m.Marginals()
	for l := range want {
		if math.Abs(got[l]-want[l]) > 1e-12 {
			t.Errorf("link %d marginal %.6f, want %.6f", l, got[l], want[l])
		}
	}

	const n = 400_000
	counts := make([]int, 3)
	rng := stats.NewRNG(2, 2)
	for range n {
		sc := m.Sample(rng)
		for l, f := range sc.Failed {
			if f {
				counts[l]++
			}
		}
	}
	for l := range want {
		emp := float64(counts[l]) / n
		sigma := math.Sqrt(want[l] * (1 - want[l]) / n)
		if math.Abs(emp-want[l]) > 4*sigma {
			t.Errorf("link %d empirical marginal %.5f vs closed form %.5f (> 4σ)", l, emp, want[l])
		}
	}

	ind, err := m.IndependentApproximation()
	if err != nil {
		t.Fatal(err)
	}
	if ind.Links() != m.Links() {
		t.Fatalf("independent approximation covers %d links, want %d", ind.Links(), m.Links())
	}
}

// The source is stateless: zero-valued snapshots round-trip and foreign
// snapshots are rejected.
func TestNodeFailureSnapshot(t *testing.T) {
	m := mustNodeModel(t, NodeFailureConfig{Links: 3, Incidence: pathIncidence(), NodeProbs: []float64{0.1, 0.1, 0.1, 0.1}})
	if err := m.Restore(m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	ge := mustGE(t, GEConfig{Marginals: []float64{0.1}, MeanBurst: 2})
	if err := m.Restore(ge.Snapshot()); err == nil {
		t.Error("gilbert-elliott snapshot accepted by node source")
	}
	if m.SourceName() != SourceNode || m.Nodes() != 4 {
		t.Errorf("SourceName=%q Nodes=%d", m.SourceName(), m.Nodes())
	}
}
