package failure

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
)

// ScenarioSet is a bit-packed panel of failure scenarios laid out for the
// Monte Carlo hot path. Instead of n Scenario values each holding a []bool
// over links (scenario-major), the set stores one bit-column per link
// (link-major): bit s of cols[l] is set iff link l is down in scenario s.
//
// The transposed layout turns the inner loop of "does path q survive
// scenario s?" inside out: OR-ing the bit-columns of the path's links and
// complementing yields the path's survival mask over all n scenarios in
// |E_path| word passes, instead of n × |E_path| bool loads. Consumers then
// iterate only the surviving scenarios via trailing-zero scans, or count
// them with a popcount. DESIGN.md §7 documents the layout and why sharded
// consumers stay deterministic.
type ScenarioSet struct {
	n     int // scenarios in the panel
	links int
	words int        // ceil(n / 64)
	cols  [][]uint64 // cols[link][word]: failure bit-column of one link
	tail  uint64     // valid-bit mask of the final word (all-ones when n%64 == 0)
}

// NewScenarioSet packs the given scenarios. All scenarios must cover the
// same positive number of links.
func NewScenarioSet(scenarios []Scenario) (*ScenarioSet, error) {
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("failure: empty scenario panel")
	}
	links := len(scenarios[0].Failed)
	if links == 0 {
		return nil, fmt.Errorf("failure: scenario 0 covers no links")
	}
	n := len(scenarios)
	ss := &ScenarioSet{
		n:     n,
		links: links,
		words: (n + 63) / 64,
		tail:  tailMask(n),
	}
	ss.cols = make([][]uint64, links)
	backing := make([]uint64, links*ss.words) // one allocation for all columns
	for l := range ss.cols {
		ss.cols[l] = backing[l*ss.words : (l+1)*ss.words : (l+1)*ss.words]
	}
	for s, sc := range scenarios {
		if len(sc.Failed) != links {
			return nil, fmt.Errorf("failure: scenario %d covers %d links, scenario 0 covers %d", s, len(sc.Failed), links)
		}
		w, bit := s>>6, uint64(1)<<(s&63)
		for l, failed := range sc.Failed {
			if failed {
				ss.cols[l][w] |= bit
			}
		}
	}
	return ss, nil
}

// ColumnSampler is the fast path SampleScenarioSet takes when the failure
// process can fill a link's bit-column directly: per-link, column-major
// draws instead of materializing n scenario-major []bool vectors and
// re-packing them. The independent Model implements it with geometric skip
// sampling, which costs one draw per actual failure instead of one per
// (link, scenario) pair. Correlated processes fall back to Sample.
type ColumnSampler interface {
	Sampler
	// SampleColumn fills col (len = ceil(n/64) words, zeroed on entry) with
	// link l's failure bit-column over n scenarios: bit s set iff link l is
	// down in scenario s. Bits at positions ≥ n must stay zero.
	SampleColumn(rng *rand.Rand, l, n int, col []uint64)
}

var _ ColumnSampler = (*Model)(nil)

// SampleScenarioSet draws n scenarios from the sampler and packs them.
// Samplers implementing ColumnSampler are drawn column-major (link 0's
// column first) — the packed panel is built directly with no scenario-major
// detour; all other samplers go through SampleScenarios. Either way the
// result is deterministic in rng, and serial reference consumers that need
// the identical panel should expand this set via Scenarios rather than
// re-draw.
func SampleScenarioSet(s Sampler, rng *rand.Rand, n int) (*ScenarioSet, error) {
	cs, ok := s.(ColumnSampler)
	if !ok {
		return NewScenarioSet(SampleScenarios(s, rng, n))
	}
	links := cs.Links()
	if n <= 0 {
		return nil, fmt.Errorf("failure: empty scenario panel")
	}
	if links == 0 {
		return nil, fmt.Errorf("failure: sampler covers no links")
	}
	ss := &ScenarioSet{
		n:     n,
		links: links,
		words: (n + 63) / 64,
		tail:  tailMask(n),
	}
	ss.cols = make([][]uint64, links)
	backing := make([]uint64, links*ss.words) // one allocation for all columns
	for l := range ss.cols {
		ss.cols[l] = backing[l*ss.words : (l+1)*ss.words : (l+1)*ss.words]
		cs.SampleColumn(rng, l, n, ss.cols[l])
	}
	return ss, nil
}

func tailMask(n int) uint64 {
	if r := n & 63; r != 0 {
		return (uint64(1) << r) - 1
	}
	return ^uint64(0)
}

// N returns the panel size.
func (ss *ScenarioSet) N() int { return ss.n }

// Links returns the number of links covered.
func (ss *ScenarioSet) Links() int { return ss.links }

// Words returns the number of 64-bit words per bit-column (and per mask).
func (ss *ScenarioSet) Words() int { return ss.words }

// Failed reports whether link l is down in scenario s.
func (ss *ScenarioSet) Failed(l, s int) bool {
	return ss.cols[l][s>>6]&(uint64(1)<<(s&63)) != 0
}

// Col returns link l's failure bit-column (a live view; callers must not
// modify it). Bit s is set iff link l is down in scenario s.
func (ss *ScenarioSet) Col(l int) []uint64 { return ss.cols[l] }

// Scenarios expands the whole panel into scenario-major form — how the
// serial reference oracles obtain the exact panel a packed consumer drew.
func (ss *ScenarioSet) Scenarios() []Scenario {
	out := make([]Scenario, ss.n)
	for s := range out {
		out[s] = ss.Scenario(s)
	}
	return out
}

// Scenario reconstructs scenario s as the scenario-major representation.
func (ss *ScenarioSet) Scenario(s int) Scenario {
	failed := make([]bool, ss.links)
	w, bit := s>>6, uint64(1)<<(s&63)
	for l := range failed {
		failed[l] = ss.cols[l][w]&bit != 0
	}
	return Scenario{Failed: failed}
}

// ResetMask returns dst resized to Words() and zeroed, allocating only when
// dst is too small.
func (ss *ScenarioSet) ResetMask(dst []uint64) []uint64 {
	if cap(dst) < ss.words {
		return make([]uint64, ss.words)
	}
	dst = dst[:ss.words]
	for i := range dst {
		dst[i] = 0
	}
	return dst
}

// OrLink ORs link l's failure bit-column into dst (len Words()).
func (ss *ScenarioSet) OrLink(dst []uint64, l int) {
	col := ss.cols[l]
	for i := range dst {
		dst[i] |= col[i]
	}
}

// Complement flips dst in place and clears the padding bits past scenario
// n−1, turning an any-link-failed mask into a survival mask.
func (ss *ScenarioSet) Complement(dst []uint64) {
	for i := range dst {
		dst[i] = ^dst[i]
	}
	if ss.words > 0 {
		dst[ss.words-1] &= ss.tail
	}
}

// SurvivalMask writes into dst (reusing its storage when possible) the mask
// of scenarios in which every listed link is up: the complement of the OR
// of the links' failure columns. An empty link list survives everything.
func (ss *ScenarioSet) SurvivalMask(links []int, dst []uint64) []uint64 {
	dst = ss.ResetMask(dst)
	for _, l := range links {
		ss.OrLink(dst, l)
	}
	ss.Complement(dst)
	return dst
}

// CountBits returns the number of set bits in a mask — e.g. how many
// scenarios a path survives.
func CountBits(mask []uint64) int {
	c := 0
	for _, w := range mask {
		c += bits.OnesCount64(w)
	}
	return c
}
