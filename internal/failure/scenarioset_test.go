package failure

import (
	"math"
	"math/rand/v2"
	"testing"
)

func randomScenarios(rng *rand.Rand, links, n int) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		failed := make([]bool, links)
		for l := range failed {
			failed[l] = rng.Float64() < 0.3
		}
		out[i] = Scenario{Failed: failed}
	}
	return out
}

func TestScenarioSetValidation(t *testing.T) {
	if _, err := NewScenarioSet(nil); err == nil {
		t.Fatal("empty panel accepted")
	}
	if _, err := NewScenarioSet([]Scenario{{Failed: nil}}); err == nil {
		t.Fatal("zero-link scenario accepted")
	}
	if _, err := NewScenarioSet([]Scenario{
		{Failed: []bool{true, false}},
		{Failed: []bool{true}},
	}); err == nil {
		t.Fatal("ragged panel accepted")
	}
}

// Pack/unpack roundtrip: every (link, scenario) bit survives, including at
// panel sizes that straddle word boundaries.
func TestScenarioSetRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, n := range []int{1, 63, 64, 65, 70, 128, 200} {
		scs := randomScenarios(rng, 11, n)
		ss, err := NewScenarioSet(scs)
		if err != nil {
			t.Fatal(err)
		}
		if ss.N() != n || ss.Links() != 11 || ss.Words() != (n+63)/64 {
			t.Fatalf("n=%d: N=%d Links=%d Words=%d", n, ss.N(), ss.Links(), ss.Words())
		}
		for s := range scs {
			rt := ss.Scenario(s)
			for l := range scs[s].Failed {
				if scs[s].Failed[l] != rt.Failed[l] || scs[s].Failed[l] != ss.Failed(l, s) {
					t.Fatalf("n=%d: bit (link %d, scenario %d) corrupted", n, l, s)
				}
			}
		}
	}
}

// SurvivalMask must agree with the brute-force per-scenario link walk, and
// padding bits past the panel must stay clear.
func TestScenarioSetSurvivalMask(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for _, n := range []int{5, 64, 70, 130} {
		scs := randomScenarios(rng, 9, n)
		ss, err := NewScenarioSet(scs)
		if err != nil {
			t.Fatal(err)
		}
		var mask []uint64
		for trial := 0; trial < 20; trial++ {
			k := rng.IntN(4)
			links := make([]int, 0, k)
			for len(links) < k {
				links = append(links, rng.IntN(9))
			}
			mask = ss.SurvivalMask(links, mask) // reuse across trials
			survivors := 0
			for s := range scs {
				want := true
				for _, l := range links {
					if scs[s].Failed[l] {
						want = false
						break
					}
				}
				got := mask[s>>6]&(uint64(1)<<(s&63)) != 0
				if got != want {
					t.Fatalf("n=%d links=%v scenario %d: mask says %v, walk says %v", n, links, s, got, want)
				}
				if want {
					survivors++
				}
			}
			if got := CountBits(mask); got != survivors {
				t.Fatalf("n=%d links=%v: CountBits=%d, want %d", n, links, got, survivors)
			}
			// Padding bits must be clear or CountBits overcounts.
			if r := n & 63; r != 0 {
				if mask[len(mask)-1]&^((uint64(1)<<r)-1) != 0 {
					t.Fatalf("n=%d: padding bits set in final word", n)
				}
			}
		}
	}
}

func TestScenarioSetEmptyLinkListSurvivesAll(t *testing.T) {
	scs := randomScenarios(rand.New(rand.NewPCG(3, 3)), 6, 70)
	ss, err := NewScenarioSet(scs)
	if err != nil {
		t.Fatal(err)
	}
	mask := ss.SurvivalMask(nil, nil)
	if CountBits(mask) != 70 {
		t.Fatalf("empty link list survives %d of 70", CountBits(mask))
	}
}

// scenarioMajorOnly hides a Model's ColumnSampler fast path, forcing
// SampleScenarioSet down the generic packing route.
type scenarioMajorOnly struct{ m *Model }

func (s scenarioMajorOnly) Links() int                     { return s.m.Links() }
func (s scenarioMajorOnly) Sample(rng *rand.Rand) Scenario { return s.m.Sample(rng) }

// Samplers without the column fast path must keep the original contract:
// the packed panel consumes the rng exactly like SampleScenarios.
func TestSampleScenarioSetFallbackMatchesSampleScenarios(t *testing.T) {
	model, err := NewModel(Config{Links: 20, ExpectedFailures: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	plain := SampleScenarios(model, rand.New(rand.NewPCG(9, 9)), 77)
	ss, err := SampleScenarioSet(scenarioMajorOnly{model}, rand.New(rand.NewPCG(9, 9)), 77)
	if err != nil {
		t.Fatal(err)
	}
	for s := range plain {
		for l := range plain[s].Failed {
			if plain[s].Failed[l] != ss.Failed(l, s) {
				t.Fatalf("scenario %d link %d differs between packed and unpacked draws", s, l)
			}
		}
	}
}

// The column fast path must be deterministic in rng, keep padding bits
// clear, expand consistently via Scenario/Scenarios/Col, and — since the
// geometric-skip draws are distributed like per-scenario Bernoulli draws —
// land each link's empirical failure rate near its probability.
func TestSampleScenarioSetColumnPath(t *testing.T) {
	model, err := NewModel(Config{Links: 30, ExpectedFailures: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	n := 40000
	ss, err := SampleScenarioSet(model, rand.New(rand.NewPCG(4, 4)), n)
	if err != nil {
		t.Fatal(err)
	}
	again, err := SampleScenarioSet(model, rand.New(rand.NewPCG(4, 4)), n)
	if err != nil {
		t.Fatal(err)
	}
	scs := ss.Scenarios()
	if len(scs) != n {
		t.Fatalf("Scenarios expanded %d of %d", len(scs), n)
	}
	for l := 0; l < ss.Links(); l++ {
		col := ss.Col(l)
		if len(col) != ss.Words() {
			t.Fatalf("link %d: column has %d words, want %d", l, len(col), ss.Words())
		}
		for w := range col {
			if col[w] != again.Col(l)[w] {
				t.Fatalf("link %d word %d: same seed drew different columns", l, w)
			}
		}
		if r := n & 63; r != 0 && col[len(col)-1]&^((uint64(1)<<r)-1) != 0 {
			t.Fatalf("link %d: padding bits set", l)
		}
		fails := CountBits(col)
		// Expansion consistency on a sampled spot-check plus exact count.
		walked := 0
		for s := 0; s < n; s++ {
			if scs[s].Failed[l] {
				walked++
			}
		}
		if walked != fails {
			t.Fatalf("link %d: column says %d failures, expansion says %d", l, fails, walked)
		}
		p := model.Prob(l)
		got := float64(fails) / float64(n)
		// ~6 standard deviations of binomial noise at n=40000.
		slack := 6*math.Sqrt(p*(1-p)/float64(n)) + 1e-9
		if got < p-slack || got > p+slack {
			t.Fatalf("link %d: empirical failure rate %.5f, want %.5f ± %.5f", l, got, p, slack)
		}
	}
}

func TestScenarioSetColAndScenariosAgree(t *testing.T) {
	scs := randomScenarios(rand.New(rand.NewPCG(8, 8)), 7, 130)
	ss, err := NewScenarioSet(scs)
	if err != nil {
		t.Fatal(err)
	}
	back := ss.Scenarios()
	for s := range scs {
		for l := range scs[s].Failed {
			if back[s].Failed[l] != scs[s].Failed[l] {
				t.Fatalf("scenario %d link %d corrupted by Scenarios expansion", s, l)
			}
			got := ss.Col(l)[s>>6]&(uint64(1)<<(s&63)) != 0
			if got != scs[s].Failed[l] {
				t.Fatalf("Col bit (link %d, scenario %d) = %v, want %v", l, s, got, scs[s].Failed[l])
			}
		}
	}
}
