package failure

import (
	"math/rand/v2"
	"testing"
)

func randomScenarios(rng *rand.Rand, links, n int) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		failed := make([]bool, links)
		for l := range failed {
			failed[l] = rng.Float64() < 0.3
		}
		out[i] = Scenario{Failed: failed}
	}
	return out
}

func TestScenarioSetValidation(t *testing.T) {
	if _, err := NewScenarioSet(nil); err == nil {
		t.Fatal("empty panel accepted")
	}
	if _, err := NewScenarioSet([]Scenario{{Failed: nil}}); err == nil {
		t.Fatal("zero-link scenario accepted")
	}
	if _, err := NewScenarioSet([]Scenario{
		{Failed: []bool{true, false}},
		{Failed: []bool{true}},
	}); err == nil {
		t.Fatal("ragged panel accepted")
	}
}

// Pack/unpack roundtrip: every (link, scenario) bit survives, including at
// panel sizes that straddle word boundaries.
func TestScenarioSetRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, n := range []int{1, 63, 64, 65, 70, 128, 200} {
		scs := randomScenarios(rng, 11, n)
		ss, err := NewScenarioSet(scs)
		if err != nil {
			t.Fatal(err)
		}
		if ss.N() != n || ss.Links() != 11 || ss.Words() != (n+63)/64 {
			t.Fatalf("n=%d: N=%d Links=%d Words=%d", n, ss.N(), ss.Links(), ss.Words())
		}
		for s := range scs {
			rt := ss.Scenario(s)
			for l := range scs[s].Failed {
				if scs[s].Failed[l] != rt.Failed[l] || scs[s].Failed[l] != ss.Failed(l, s) {
					t.Fatalf("n=%d: bit (link %d, scenario %d) corrupted", n, l, s)
				}
			}
		}
	}
}

// SurvivalMask must agree with the brute-force per-scenario link walk, and
// padding bits past the panel must stay clear.
func TestScenarioSetSurvivalMask(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for _, n := range []int{5, 64, 70, 130} {
		scs := randomScenarios(rng, 9, n)
		ss, err := NewScenarioSet(scs)
		if err != nil {
			t.Fatal(err)
		}
		var mask []uint64
		for trial := 0; trial < 20; trial++ {
			k := rng.IntN(4)
			links := make([]int, 0, k)
			for len(links) < k {
				links = append(links, rng.IntN(9))
			}
			mask = ss.SurvivalMask(links, mask) // reuse across trials
			survivors := 0
			for s := range scs {
				want := true
				for _, l := range links {
					if scs[s].Failed[l] {
						want = false
						break
					}
				}
				got := mask[s>>6]&(uint64(1)<<(s&63)) != 0
				if got != want {
					t.Fatalf("n=%d links=%v scenario %d: mask says %v, walk says %v", n, links, s, got, want)
				}
				if want {
					survivors++
				}
			}
			if got := CountBits(mask); got != survivors {
				t.Fatalf("n=%d links=%v: CountBits=%d, want %d", n, links, got, survivors)
			}
			// Padding bits must be clear or CountBits overcounts.
			if r := n & 63; r != 0 {
				if mask[len(mask)-1]&^((uint64(1)<<r)-1) != 0 {
					t.Fatalf("n=%d: padding bits set in final word", n)
				}
			}
		}
	}
}

func TestScenarioSetEmptyLinkListSurvivesAll(t *testing.T) {
	scs := randomScenarios(rand.New(rand.NewPCG(3, 3)), 6, 70)
	ss, err := NewScenarioSet(scs)
	if err != nil {
		t.Fatal(err)
	}
	mask := ss.SurvivalMask(nil, nil)
	if CountBits(mask) != 70 {
		t.Fatalf("empty link list survives %d of 70", CountBits(mask))
	}
}

// SampleScenarioSet must consume the rng exactly like SampleScenarios so
// packed and unpacked panels from one seed agree bit for bit.
func TestSampleScenarioSetMatchesSampleScenarios(t *testing.T) {
	model, err := NewModel(Config{Links: 20, ExpectedFailures: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	plain := SampleScenarios(model, rand.New(rand.NewPCG(9, 9)), 77)
	ss, err := SampleScenarioSet(model, rand.New(rand.NewPCG(9, 9)), 77)
	if err != nil {
		t.Fatal(err)
	}
	for s := range plain {
		for l := range plain[s].Failed {
			if plain[s].Failed[l] != ss.Failed(l, s) {
				t.Fatalf("scenario %d link %d differs between packed and unpacked draws", s, l)
			}
		}
	}
}
