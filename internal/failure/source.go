package failure

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
)

// ScenarioSource is the first-class failure-process contract behind every
// scenario consumer (Monte Carlo ER, the closed-loop simulator, the
// experiment harness, the engine params of `tomo serve` jobs). It extends
// the minimal Sampler with the three properties a pluggable process needs:
//
//   - Identity: SourceName returns the registered process-family name, so
//     specs, metrics and cache keys can name the process.
//   - Stationary marginals: Marginals returns each link's long-run
//     failure probability, so a correlation-blind consumer (ProbRoMe fed
//     an independent Model) can be handed the matched i.i.d. view of any
//     process — the comparison the burstiness experiments are built on.
//   - Snapshot/restore: stateful processes (the Gilbert–Elliott chains)
//     evolve hidden state across Sample calls. Snapshot captures that
//     state and Restore rewinds to it, so the deterministic trial-sharded
//     experiment runner can draw a selection panel and an evaluation
//     schedule from one source without the draws perturbing each other,
//     and a replay from (snapshot, rng seed) is bit-identical.
//
// Sample must draw only from the rng it is handed; all cross-epoch state
// must live in the source and be covered by Snapshot. Under that contract
// (source snapshot, rng seed) fully determines any sampled schedule.
type ScenarioSource interface {
	Sampler
	// SourceName returns the registered name of the process family
	// (e.g. "bernoulli", "gilbert_elliott").
	SourceName() string
	// Marginals returns a copy of the per-link stationary marginal
	// failure probabilities, each in [0, 1).
	Marginals() []float64
	// Snapshot captures the source's mutable cross-epoch state. Stateless
	// (i.i.d.-across-epochs) sources return an empty state.
	Snapshot() SourceState
	// Restore rewinds the source to a state captured by Snapshot on a
	// source of the same shape.
	Restore(SourceState) error
}

// Compile-time checks: every built-in process is a full ScenarioSource.
var (
	_ ScenarioSource = (*Model)(nil)
	_ ScenarioSource = (*CorrelatedModel)(nil)
	_ ScenarioSource = (*GilbertElliott)(nil)
	_ ScenarioSource = (*NodeFailureModel)(nil)
)

// SourceState is an opaque snapshot of a source's cross-epoch state. The
// zero value is the state of any stateless source.
type SourceState struct {
	name  string
	words []uint64
}

// newSourceState captures the given words (copied) under the source name.
func newSourceState(name string, words []uint64) SourceState {
	return SourceState{name: name, words: append([]uint64(nil), words...)}
}

// restoreInto validates a snapshot against the expected shape and copies
// its words into dst. A zero-valued state is accepted by stateless
// sources only (words == 0).
func (s SourceState) restoreInto(name string, dst []uint64) error {
	if s.name == "" && len(s.words) == 0 && len(dst) == 0 {
		return nil
	}
	if s.name != name {
		return fmt.Errorf("failure: snapshot from source %q cannot restore a %q source", s.name, name)
	}
	if len(s.words) != len(dst) {
		return fmt.Errorf("failure: snapshot has %d state words, source needs %d", len(s.words), len(dst))
	}
	copy(dst, s.words)
	return nil
}

// SourceSpec is the JSON-transportable parameterization of a registered
// scenario source — what a `tomo serve` job or a sim config names instead
// of constructing a process by hand. Exactly one process family is
// selected by Source; each factory rejects knobs that do not belong to
// its family, so a misdirected parameter fails loudly instead of being
// silently ignored.
//
// The per-link marginal failure probabilities come from Probs when set;
// otherwise the Markopoulou power-law Model is built from Links,
// ExpectedFailures and ModelSeed (exactly NewModel's Config).
type SourceSpec struct {
	// Source is the registered process-family name: "bernoulli",
	// "gilbert_elliott", "srlg" or "node".
	Source string `json:"source"`
	// Links is the link count; required when Probs is empty, and must
	// match len(Probs) when both are given.
	Links int `json:"links,omitempty"`
	// Probs gives explicit per-link marginal failure probabilities.
	Probs []float64 `json:"probs,omitempty"`
	// ExpectedFailures and ModelSeed parameterize the power-law Model
	// used when Probs is empty (see Config).
	ExpectedFailures float64 `json:"expected_failures,omitempty"`
	ModelSeed        uint64  `json:"model_seed,omitempty"`

	// MeanBurst is the Gilbert–Elliott mean bad-state sojourn in epochs
	// (≥ 1); PBad/PGood are the per-state loss probabilities (0 means the
	// defaults: down always in bad, never in good). Seed drives the
	// stationary initial-state draw.
	MeanBurst float64 `json:"mean_burst,omitempty"`
	PBad      float64 `json:"p_bad,omitempty"`
	PGood     float64 `json:"p_good,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`

	// Groups are the shared-risk link groups of the "srlg" source.
	Groups []SRLG `json:"groups,omitempty"`

	// Incidence lists, per node, the IDs of its incident links;
	// NodeProbs the per-epoch node-failure probabilities ("node" source).
	// A node event downs every incident link on top of the per-link
	// marginal process.
	Incidence [][]int   `json:"incidence,omitempty"`
	NodeProbs []float64 `json:"node_probs,omitempty"`
}

// baseModel materializes the spec's per-link marginal model.
func (s SourceSpec) baseModel() (*Model, error) {
	if len(s.Probs) > 0 {
		if s.Links != 0 && s.Links != len(s.Probs) {
			return nil, fmt.Errorf("failure: spec links %d but %d probs", s.Links, len(s.Probs))
		}
		return FromProbabilities(s.Probs)
	}
	return NewModel(Config{Links: s.Links, ExpectedFailures: s.ExpectedFailures, Seed: s.ModelSeed})
}

// rejectFields errors when any of the named spec fields is set — each
// factory calls it with the knobs foreign to its family.
func (s SourceSpec) rejectFields(family string, ge, groups, node bool) error {
	if ge && (s.MeanBurst != 0 || s.PBad != 0 || s.PGood != 0) {
		return fmt.Errorf("failure: %s source takes no Gilbert–Elliott knobs (mean_burst, p_bad, p_good)", family)
	}
	if groups && len(s.Groups) > 0 {
		return fmt.Errorf("failure: %s source takes no SRLG groups", family)
	}
	if node && (len(s.Incidence) > 0 || len(s.NodeProbs) > 0) {
		return fmt.Errorf("failure: %s source takes no node fields (incidence, node_probs)", family)
	}
	return nil
}

// AppendCanonical appends an injective, fixed-width binary encoding of
// the spec to dst: every variable-length section is length-prefixed and
// every number is 8 bytes (floats by IEEE-754 bit pattern), so distinct
// specs cannot collide by concatenation ambiguity. Cache keys that
// incorporate a scenario source hash this encoding, never the raw JSON,
// so reformatted submissions of the same spec share one key.
func (s SourceSpec) AppendCanonical(dst []byte) []byte {
	u64 := func(v uint64) { dst = binary.LittleEndian.AppendUint64(dst, v) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u64(uint64(len(s.Source)))
	dst = append(dst, s.Source...)
	u64(uint64(s.Links))
	u64(uint64(len(s.Probs)))
	for _, p := range s.Probs {
		f64(p)
	}
	f64(s.ExpectedFailures)
	u64(s.ModelSeed)
	f64(s.MeanBurst)
	f64(s.PBad)
	f64(s.PGood)
	u64(s.Seed)
	u64(uint64(len(s.Groups)))
	for _, g := range s.Groups {
		u64(uint64(len(g.Links)))
		for _, l := range g.Links {
			u64(uint64(l))
		}
		f64(g.Prob)
	}
	u64(uint64(len(s.Incidence)))
	for _, links := range s.Incidence {
		u64(uint64(len(links)))
		for _, l := range links {
			u64(uint64(l))
		}
	}
	u64(uint64(len(s.NodeProbs)))
	for _, p := range s.NodeProbs {
		f64(p)
	}
	return dst
}

// SourceFactory builds a source from a spec naming its family.
type SourceFactory func(SourceSpec) (ScenarioSource, error)

var (
	sourcesMu sync.RWMutex
	sources   = map[string]SourceFactory{}
)

// RegisterSource registers a source factory under a family name. It
// panics on an empty name or a duplicate registration — registration is
// an init-time, programmer-controlled act, exactly like engine.Register.
func RegisterSource(name string, f SourceFactory) {
	if name == "" {
		panic("failure: RegisterSource with empty name")
	}
	if f == nil {
		panic("failure: RegisterSource with nil factory")
	}
	sourcesMu.Lock()
	defer sourcesMu.Unlock()
	if _, dup := sources[name]; dup {
		panic(fmt.Sprintf("failure: source %q registered twice", name))
	}
	sources[name] = f
}

// SourceNames returns the registered family names, sorted.
func SourceNames() []string {
	sourcesMu.RLock()
	defer sourcesMu.RUnlock()
	out := make([]string, 0, len(sources))
	for name := range sources {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewSource resolves the spec's family in the registry and builds the
// source. Unknown families report the registered names.
func NewSource(spec SourceSpec) (ScenarioSource, error) {
	sourcesMu.RLock()
	f, ok := sources[spec.Source]
	sourcesMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("failure: unknown scenario source %q (registered: %v)", spec.Source, SourceNames())
	}
	return f(spec)
}

// Built-in family names.
const (
	SourceBernoulli      = "bernoulli"
	SourceGilbertElliott = "gilbert_elliott"
	SourceSRLG           = "srlg"
	SourceNode           = "node"
)

func init() {
	RegisterSource(SourceBernoulli, func(s SourceSpec) (ScenarioSource, error) {
		if err := s.rejectFields(SourceBernoulli, true, true, true); err != nil {
			return nil, err
		}
		return s.baseModel()
	})
	RegisterSource(SourceGilbertElliott, func(s SourceSpec) (ScenarioSource, error) {
		if err := s.rejectFields(SourceGilbertElliott, false, true, true); err != nil {
			return nil, err
		}
		base, err := s.baseModel()
		if err != nil {
			return nil, err
		}
		return NewGilbertElliott(GEConfig{
			Marginals: base.Probs(),
			MeanBurst: s.MeanBurst,
			PBad:      s.PBad,
			PGood:     s.PGood,
			Seed:      s.Seed,
		})
	})
	RegisterSource(SourceSRLG, func(s SourceSpec) (ScenarioSource, error) {
		if err := s.rejectFields(SourceSRLG, true, false, true); err != nil {
			return nil, err
		}
		base, err := s.baseModel()
		if err != nil {
			return nil, err
		}
		return NewCorrelatedModel(base, s.Groups)
	})
	RegisterSource(SourceNode, func(s SourceSpec) (ScenarioSource, error) {
		if err := s.rejectFields(SourceNode, true, true, false); err != nil {
			return nil, err
		}
		cfg := NodeFailureConfig{
			Links:     s.Links,
			Incidence: s.Incidence,
			NodeProbs: s.NodeProbs,
		}
		// A node spec with per-link marginals (or power-law parameters)
		// layers node events over that independent link process; without
		// them the process is node events alone.
		if len(s.Probs) > 0 || s.ExpectedFailures > 0 {
			base, err := s.baseModel()
			if err != nil {
				return nil, err
			}
			cfg.Base = base
			cfg.Links = base.Links()
		}
		return NewNodeFailureModel(cfg)
	})
}
