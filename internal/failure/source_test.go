package failure

import (
	"bytes"
	"encoding/json"
	"testing"

	"robusttomo/internal/stats"
)

func TestSourceRegistryNames(t *testing.T) {
	names := SourceNames()
	want := map[string]bool{
		SourceBernoulli: false, SourceGilbertElliott: false,
		SourceSRLG: false, SourceNode: false,
	}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("built-in source %q not registered (have %v)", n, names)
		}
	}
	if _, err := NewSource(SourceSpec{Source: "no-such-process"}); err == nil {
		t.Error("unknown source accepted")
	}
}

// Every built-in factory must build a working source from a minimal spec,
// reporting the right family name and link count.
func TestNewSourceBuiltins(t *testing.T) {
	specs := []SourceSpec{
		{Source: SourceBernoulli, Links: 10, ExpectedFailures: 1.5},
		{Source: SourceBernoulli, Probs: []float64{0.1, 0.2}},
		{Source: SourceGilbertElliott, Probs: []float64{0.1, 0.2}, MeanBurst: 4},
		{Source: SourceGilbertElliott, Links: 10, ExpectedFailures: 1, MeanBurst: 8, Seed: 3},
		{Source: SourceSRLG, Probs: []float64{0.1, 0.2, 0.3}, Groups: []SRLG{{Links: []int{0, 2}, Prob: 0.05}}},
		{Source: SourceNode, Links: 3, Incidence: [][]int{{0}, {0, 1}, {1, 2}, {2}}, NodeProbs: []float64{0.1, 0.1, 0.1, 0.1}},
		{Source: SourceNode, Probs: []float64{0.05, 0.05, 0.05}, Incidence: [][]int{{0, 1}, {1, 2}}, NodeProbs: []float64{0.1, 0.2}},
	}
	for i, spec := range specs {
		src, err := NewSource(spec)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if src.SourceName() != spec.Source {
			t.Errorf("spec %d: SourceName %q, want %q", i, src.SourceName(), spec.Source)
		}
		if wantLinks := len(spec.Probs); wantLinks > 0 && src.Links() != wantLinks {
			t.Errorf("spec %d: Links %d, want %d", i, src.Links(), wantLinks)
		}
		if got := src.Marginals(); len(got) != src.Links() {
			t.Errorf("spec %d: %d marginals for %d links", i, len(got), src.Links())
		}
		sc := src.Sample(stats.NewRNG(1, uint64(i)))
		if len(sc.Failed) != src.Links() {
			t.Errorf("spec %d: scenario covers %d links, want %d", i, len(sc.Failed), src.Links())
		}
	}
}

// Factories must reject knobs that belong to another family, so a typo'd
// spec fails loudly instead of silently sampling the wrong process.
func TestNewSourceRejectsForeignFields(t *testing.T) {
	bad := []SourceSpec{
		{Source: SourceBernoulli, Links: 4, ExpectedFailures: 1, MeanBurst: 4},
		{Source: SourceBernoulli, Links: 4, ExpectedFailures: 1, Groups: []SRLG{{Links: []int{0}, Prob: 0.1}}},
		{Source: SourceBernoulli, Links: 4, ExpectedFailures: 1, NodeProbs: []float64{0.1}},
		{Source: SourceGilbertElliott, Links: 4, ExpectedFailures: 1, MeanBurst: 4, Incidence: [][]int{{0}}},
		{Source: SourceSRLG, Probs: []float64{0.1}, Groups: []SRLG{{Links: []int{0}, Prob: 0.1}}, PBad: 0.9},
		{Source: SourceNode, Links: 2, Incidence: [][]int{{0, 1}}, NodeProbs: []float64{0.1}, MeanBurst: 2},
		{Source: SourceBernoulli, Links: 3, ExpectedFailures: 1, Probs: []float64{0.1, 0.2}},
	}
	for i, spec := range bad {
		if _, err := NewSource(spec); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
}

func TestRegisterSourcePanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	expectPanic("empty name", func() { RegisterSource("", func(SourceSpec) (ScenarioSource, error) { return nil, nil }) })
	expectPanic("nil factory", func() { RegisterSource("x", nil) })
	expectPanic("duplicate", func() {
		RegisterSource(SourceBernoulli, func(SourceSpec) (ScenarioSource, error) { return nil, nil })
	})
}

// The canonical encoding must be injective across specs that JSON or naive
// concatenation could conflate — cache keys hang off it.
func TestSourceSpecCanonicalInjective(t *testing.T) {
	specs := []SourceSpec{
		{Source: SourceBernoulli, Links: 4},
		{Source: SourceBernoulli, Links: 5},
		{Source: SourceGilbertElliott, Links: 4},
		{Source: SourceGilbertElliott, Links: 4, MeanBurst: 4},
		{Source: SourceGilbertElliott, Links: 4, MeanBurst: 4, Seed: 1},
		{Source: SourceGilbertElliott, Links: 4, MeanBurst: 4, PBad: 0.9},
		{Source: SourceBernoulli, Probs: []float64{0.1, 0.2}},
		{Source: SourceBernoulli, Probs: []float64{0.2, 0.1}},
		// Group splits that flatten to the same link multiset.
		{Source: SourceSRLG, Links: 4, Groups: []SRLG{{Links: []int{0, 1}, Prob: 0.1}}},
		{Source: SourceSRLG, Links: 4, Groups: []SRLG{{Links: []int{0}, Prob: 0.1}, {Links: []int{1}, Prob: 0.1}}},
		// Incidence splits that flatten identically.
		{Source: SourceNode, Links: 4, Incidence: [][]int{{0, 1}}, NodeProbs: []float64{0.1}},
		{Source: SourceNode, Links: 4, Incidence: [][]int{{0}, {1}}, NodeProbs: []float64{0.1, 0.1}},
		{Source: SourceNode, Links: 4, Incidence: [][]int{{0}, {1}}, NodeProbs: []float64{0.1, 0.2}},
	}
	seen := map[string]int{}
	for i, spec := range specs {
		key := string(spec.AppendCanonical(nil))
		if j, dup := seen[key]; dup {
			t.Errorf("specs %d and %d encode identically", j, i)
		}
		seen[key] = i
	}
	// Appending must extend dst, not restart it.
	pre := []byte("prefix")
	out := specs[0].AppendCanonical(pre)
	if !bytes.HasPrefix(out, pre) {
		t.Error("AppendCanonical dropped existing dst bytes")
	}
}

// Specs must survive a JSON round-trip unchanged — they travel inside
// engine params.
func TestSourceSpecJSONRoundTrip(t *testing.T) {
	spec := SourceSpec{
		Source:    SourceGilbertElliott,
		Probs:     []float64{0.1, 0.25},
		MeanBurst: 8,
		PBad:      0.95,
		PGood:     0.01,
		Seed:      42,
	}
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var rt SourceSpec
	if err := json.Unmarshal(blob, &rt); err != nil {
		t.Fatal(err)
	}
	a := spec.AppendCanonical(nil)
	b := rt.AppendCanonical(nil)
	if !bytes.Equal(a, b) {
		t.Fatalf("round-tripped spec encodes differently:\n%q\n%q", a, b)
	}
}

// Built-in sources must expand their packed panels identically to their
// scenario-major expansion — the property the serial reference oracles
// rely on.
func TestSourcePanelExpansion(t *testing.T) {
	specs := []SourceSpec{
		{Source: SourceBernoulli, Links: 12, ExpectedFailures: 2, ModelSeed: 1},
		{Source: SourceGilbertElliott, Probs: []float64{0.02, 0.1, 0.3, 0.05, 0.2, 0.01, 0.15, 0.08, 0.25, 0.12, 0.04, 0.18}, MeanBurst: 4},
		{Source: SourceSRLG, Links: 12, ExpectedFailures: 2, ModelSeed: 1, Groups: []SRLG{{Links: []int{1, 5, 7}, Prob: 0.1}}},
		{Source: SourceNode, Links: 3, Incidence: [][]int{{0}, {0, 1}, {1, 2}, {2}}, NodeProbs: []float64{0.1, 0.2, 0.1, 0.1}},
	}
	for i, spec := range specs {
		src, err := NewSource(spec)
		if err != nil {
			t.Fatal(err)
		}
		set, err := SampleScenarioSet(src, stats.NewRNG(5, uint64(i)), 130)
		if err != nil {
			t.Fatal(err)
		}
		repacked, err := NewScenarioSet(set.Scenarios())
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l < set.Links(); l++ {
			a, b := set.Col(l), repacked.Col(l)
			for w := range a {
				if a[w] != b[w] {
					t.Fatalf("spec %d: packed column %d word %d differs after expansion round-trip", i, l, w)
				}
			}
		}
	}
}
