package graph

// Bridges returns the IDs of all bridge edges (cut links): edges whose
// removal increases the number of connected components. In tomography
// terms these are the single points of failure — a failed bridge
// disconnects monitor pairs outright, which is precisely the situation the
// paper's Section II example builds around.
//
// Parallel edges are handled correctly: two parallel edges between the
// same pair of nodes protect each other, so neither is a bridge. The
// classical Tarjan low-link algorithm runs in O(V + E); the DFS is
// iterative so deep topologies cannot overflow the goroutine stack.
func (g *Graph) Bridges() []EdgeID {
	n := len(g.names)
	if n == 0 {
		return nil
	}
	const unvisited = -1
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = unvisited
	}

	var bridges []EdgeID
	timer := 0

	type frame struct {
		node    NodeID
		viaEdge EdgeID // edge used to enter node; -1 at roots
		edgeIdx int    // next incident edge to process
	}

	for start := 0; start < n; start++ {
		if disc[start] != unvisited {
			continue
		}
		stack := []frame{{node: NodeID(start), viaEdge: -1}}
		disc[start] = timer
		low[start] = timer
		timer++

		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			adj := g.adj[f.node]
			if f.edgeIdx < len(adj) {
				eid := adj[f.edgeIdx]
				f.edgeIdx++
				if eid == f.viaEdge {
					continue // don't traverse the entry edge backwards
				}
				v := g.edges[eid].Other(f.node)
				if disc[v] == unvisited {
					disc[v] = timer
					low[v] = timer
					timer++
					stack = append(stack, frame{node: v, viaEdge: eid})
				} else if disc[v] < low[f.node] {
					low[f.node] = disc[v]
				}
				continue
			}
			// Done with f: propagate low-link to the parent and test the
			// entry edge for bridge-ness.
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				continue
			}
			parent := &stack[len(stack)-1]
			if low[f.node] < low[parent.node] {
				low[parent.node] = low[f.node]
			}
			if low[f.node] > disc[parent.node] {
				bridges = append(bridges, f.viaEdge)
			}
		}
	}
	return bridges
}

// IsBridge reports whether the edge is a bridge. For repeated queries
// prefer calling Bridges once.
func (g *Graph) IsBridge(id EdgeID) bool {
	for _, b := range g.Bridges() {
		if b == id {
			return true
		}
	}
	return false
}

// ArticulationPoints returns the cut vertices: nodes whose removal
// increases the number of connected components. In monitoring terms these
// are routers whose outage (all incident links down at once — a chassis
// failure) partitions monitor reachability. Same iterative Tarjan DFS as
// Bridges; results are in ascending node order.
func (g *Graph) ArticulationPoints() []NodeID {
	n := len(g.names)
	if n == 0 {
		return nil
	}
	const unvisited = -1
	disc := make([]int, n)
	low := make([]int, n)
	isCut := make([]bool, n)
	for i := range disc {
		disc[i] = unvisited
	}
	timer := 0

	type frame struct {
		node     NodeID
		viaEdge  EdgeID
		edgeIdx  int
		children int
	}

	for start := 0; start < n; start++ {
		if disc[start] != unvisited {
			continue
		}
		stack := []frame{{node: NodeID(start), viaEdge: -1}}
		disc[start] = timer
		low[start] = timer
		timer++

		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			adj := g.adj[f.node]
			if f.edgeIdx < len(adj) {
				eid := adj[f.edgeIdx]
				f.edgeIdx++
				if eid == f.viaEdge {
					continue
				}
				v := g.edges[eid].Other(f.node)
				if disc[v] == unvisited {
					disc[v] = timer
					low[v] = timer
					timer++
					f.children++
					stack = append(stack, frame{node: v, viaEdge: eid})
				} else if disc[v] < low[f.node] {
					low[f.node] = disc[v]
				}
				continue
			}
			done := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				// done is a DFS root: cut vertex iff it has ≥ 2 children.
				if done.children >= 2 {
					isCut[done.node] = true
				}
				continue
			}
			parent := &stack[len(stack)-1]
			if low[done.node] < low[parent.node] {
				low[parent.node] = low[done.node]
			}
			// Non-root parent is a cut vertex when no back edge from the
			// finished subtree climbs above it. (Roots — bottom frame with
			// no entry edge — are instead judged by child count on pop.)
			isRoot := len(stack) == 1 && parent.viaEdge < 0
			if !isRoot && low[done.node] >= disc[parent.node] {
				isCut[parent.node] = true
			}
		}
	}
	var out []NodeID
	for i, cut := range isCut {
		if cut {
			out = append(out, NodeID(i))
		}
	}
	return out
}
