package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBridgesLine(t *testing.T) {
	// Every edge of a path graph is a bridge.
	g := New(4, 3)
	g.AddNodes(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	bridges := g.Bridges()
	if len(bridges) != 3 {
		t.Fatalf("bridges = %v, want all 3 edges", bridges)
	}
}

func TestBridgesCycle(t *testing.T) {
	// No edge of a cycle is a bridge.
	g := New(4, 4)
	g.AddNodes(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 0, 1)
	if bridges := g.Bridges(); len(bridges) != 0 {
		t.Fatalf("bridges = %v, want none", bridges)
	}
}

func TestBridgesBarbell(t *testing.T) {
	// Two triangles joined by one edge: only the joining edge is a bridge.
	g := New(6, 7)
	g.AddNodes(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 0, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 5, 1)
	g.MustAddEdge(5, 3, 1)
	mid := g.MustAddEdge(2, 3, 1)
	bridges := g.Bridges()
	if len(bridges) != 1 || bridges[0] != mid {
		t.Fatalf("bridges = %v, want [%d]", bridges, mid)
	}
	if !g.IsBridge(mid) {
		t.Fatal("IsBridge(mid) = false")
	}
	if g.IsBridge(0) {
		t.Fatal("triangle edge reported as bridge")
	}
}

func TestBridgesParallelEdges(t *testing.T) {
	// Parallel edges protect each other.
	g := New(2, 2)
	g.AddNodes(2)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 1, 2)
	if bridges := g.Bridges(); len(bridges) != 0 {
		t.Fatalf("bridges = %v, want none with parallel edges", bridges)
	}
	// A single edge IS a bridge.
	g2 := New(2, 1)
	g2.AddNodes(2)
	g2.MustAddEdge(0, 1, 1)
	if bridges := g2.Bridges(); len(bridges) != 1 {
		t.Fatalf("bridges = %v, want the single edge", bridges)
	}
}

func TestBridgesDisconnected(t *testing.T) {
	g := New(4, 2)
	g.AddNodes(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	if bridges := g.Bridges(); len(bridges) != 2 {
		t.Fatalf("bridges = %v, want both component edges", bridges)
	}
	if (New(0, 0)).Bridges() != nil {
		t.Fatal("empty graph should have no bridges")
	}
}

func TestBridgesExampleStarStar(t *testing.T) {
	// The Section II-style topology: m1..m3–a, m4..m6–b, a–b, m1–m4.
	// The a–b bridge is protected by the redundant m1–m4 link; the pure
	// star legs m2–a, m3–a, m5–b, m6–b remain bridges.
	g := New(8, 8)
	g.AddNodes(8)
	g.MustAddEdge(0, 6, 1) // m1-a
	e2 := g.MustAddEdge(1, 6, 1)
	e3 := g.MustAddEdge(2, 6, 1)
	g.MustAddEdge(3, 7, 1) // m4-b
	e5 := g.MustAddEdge(4, 7, 1)
	e6 := g.MustAddEdge(5, 7, 1)
	ab := g.MustAddEdge(6, 7, 1)
	g.MustAddEdge(0, 3, 2.5) // redundant m1-m4

	bridges := map[EdgeID]bool{}
	for _, b := range g.Bridges() {
		bridges[b] = true
	}
	for _, want := range []EdgeID{e2, e3, e5, e6} {
		if !bridges[want] {
			t.Fatalf("leg edge %d not reported as bridge: %v", want, g.Bridges())
		}
	}
	if bridges[ab] {
		t.Fatal("protected a-b link reported as bridge")
	}
	if len(bridges) != 4 {
		t.Fatalf("bridges = %v, want exactly the 4 legs", g.Bridges())
	}
}

func TestArticulationPointsPath(t *testing.T) {
	// Path 0-1-2-3: interior nodes 1, 2 are cut vertices.
	g := New(4, 3)
	g.AddNodes(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	got := g.ArticulationPoints()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("ArticulationPoints = %v, want [1 2]", got)
	}
}

func TestArticulationPointsCycle(t *testing.T) {
	g := New(4, 4)
	g.AddNodes(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 0, 1)
	if got := g.ArticulationPoints(); len(got) != 0 {
		t.Fatalf("cycle has cut vertices: %v", got)
	}
	if (New(0, 0)).ArticulationPoints() != nil {
		t.Fatal("empty graph has cut vertices")
	}
}

func TestArticulationPointsBarbell(t *testing.T) {
	// Two triangles joined by an edge between nodes 2 and 3: both joints
	// are cut vertices.
	g := New(6, 7)
	g.AddNodes(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 0, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 5, 1)
	g.MustAddEdge(5, 3, 1)
	g.MustAddEdge(2, 3, 1)
	got := g.ArticulationPoints()
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("ArticulationPoints = %v, want [2 3]", got)
	}
}

// bruteForceArticulation removes each node (with its incident edges) and
// compares component counts over the remaining nodes.
func bruteForceArticulation(g *Graph) map[NodeID]bool {
	countWithout := func(skip NodeID) int {
		// Build the graph minus skip, mapping old IDs to new.
		h := New(g.NumNodes()-1, g.NumEdges())
		remap := make([]NodeID, g.NumNodes())
		next := NodeID(0)
		for n := 0; n < g.NumNodes(); n++ {
			if NodeID(n) == skip {
				remap[n] = -1
				continue
			}
			remap[n] = next
			h.AddNode("")
			next++
		}
		for _, e := range g.Edges() {
			if e.U == skip || e.V == skip {
				continue
			}
			h.MustAddEdge(remap[e.U], remap[e.V], e.Weight)
		}
		return len(h.Components())
	}
	base := len(g.Components())
	out := map[NodeID]bool{}
	for n := 0; n < g.NumNodes(); n++ {
		id := NodeID(n)
		// Removing an isolated node or a whole component's only node does
		// not count: compare adjusted counts. Removing node n removes its
		// own component membership; the node's removal splits the graph
		// iff the remaining nodes have MORE components than base minus
		// (1 if n was an isolated vertex else 0).
		expected := base
		if g.Degree(id) == 0 {
			expected--
		}
		if countWithout(id) > expected {
			out[id] = true
		}
	}
	return out
}

// Property: Tarjan articulation points match brute-force node removal on
// random multigraphs.
func TestArticulationPointsMatchBruteForce(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 57))
		n := 2 + rng.IntN(9)
		g := New(n, 0)
		g.AddNodes(n)
		m := rng.IntN(16)
		for i := 0; i < m; i++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u == v {
				continue
			}
			g.MustAddEdge(NodeID(u), NodeID(v), 1)
		}
		want := bruteForceArticulation(g)
		got := map[NodeID]bool{}
		for _, a := range g.ArticulationPoints() {
			got[a] = true
		}
		if len(got) != len(want) {
			return false
		}
		for id := range want {
			if !got[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceBridges removes each edge in turn and checks connectivity of
// the remaining multigraph restricted to the original components.
func bruteForceBridges(g *Graph) map[EdgeID]bool {
	baseComponents := len(g.Components())
	out := map[EdgeID]bool{}
	for _, e := range g.Edges() {
		// Rebuild without edge e.
		h := New(g.NumNodes(), g.NumEdges()-1)
		h.AddNodes(g.NumNodes())
		for _, f := range g.Edges() {
			if f.ID == e.ID {
				continue
			}
			h.MustAddEdge(f.U, f.V, f.Weight)
		}
		if len(h.Components()) > baseComponents {
			out[e.ID] = true
		}
	}
	return out
}

// Property: Tarjan bridges match the brute-force removal test on random
// multigraphs.
func TestBridgesMatchBruteForce(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 55))
		n := 2 + rng.IntN(10)
		g := New(n, 0)
		g.AddNodes(n)
		m := rng.IntN(18)
		for i := 0; i < m; i++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u == v {
				continue
			}
			g.MustAddEdge(NodeID(u), NodeID(v), 1)
		}
		want := bruteForceBridges(g)
		got := map[EdgeID]bool{}
		for _, b := range g.Bridges() {
			if got[b] {
				return false // duplicates
			}
			got[b] = true
		}
		if len(got) != len(want) {
			return false
		}
		for id := range want {
			if !got[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
