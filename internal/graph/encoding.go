package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in a line-oriented text format:
//
//	# comment lines start with '#'
//	node <id> <label>
//	edge <u> <v> <weight>
//
// Node lines appear first, in ID order; edge lines follow in edge-ID order,
// so a round trip through ReadEdgeList preserves all IDs.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for n, label := range g.names {
		if _, err := fmt.Fprintf(bw, "node %d %s\n", n, label); err != nil {
			return fmt.Errorf("write node %d: %w", n, err)
		}
	}
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(bw, "edge %d %d %g\n", e.U, e.V, e.Weight); err != nil {
			return fmt.Errorf("write edge %d: %w", e.ID, err)
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format emitted by WriteEdgeList. Unknown line
// kinds, blank lines and '#' comments are ignored so that hand-edited files
// survive. Node lines must appear in dense ID order.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	g := New(0, 0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: line %d: malformed node line", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: node id: %w", lineNo, err)
			}
			if id != g.NumNodes() {
				return nil, fmt.Errorf("graph: line %d: node ids must be dense, got %d want %d", lineNo, id, g.NumNodes())
			}
			label := ""
			if len(fields) > 2 {
				label = fields[2]
			}
			g.AddNode(label)
		case "edge":
			if len(fields) < 4 {
				return nil, fmt.Errorf("graph: line %d: malformed edge line", lineNo)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: edge u: %w", lineNo, err)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: edge v: %w", lineNo, err)
			}
			w, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: edge weight: %w", lineNo, err)
			}
			if _, err := g.AddEdge(NodeID(u), NodeID(v), w); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
		default:
			// Ignore unknown directives for forward compatibility.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scan: %w", err)
	}
	return g, nil
}

// Canonical returns a deterministic fingerprint string of the graph
// structure (sorted edge endpoint pairs with weights). Two graphs with the
// same node count and the same multiset of weighted edges have equal
// fingerprints. Intended for test assertions and cache keys, not hashing
// large graphs on hot paths.
func (g *Graph) Canonical() string {
	lines := make([]string, 0, len(g.edges))
	for _, e := range g.edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		lines = append(lines, fmt.Sprintf("%d-%d@%g", u, v, e.Weight))
	}
	sort.Strings(lines)
	return fmt.Sprintf("n=%d;%s", len(g.names), strings.Join(lines, ","))
}
