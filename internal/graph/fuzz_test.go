package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList asserts the parser never panics and that everything it
// accepts survives a write/read round trip unchanged.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("node 0 a\nnode 1 b\nedge 0 1 2.5\n")
	f.Add("# comment\n\nnode 0 x\n")
	f.Add("edge 0 1 1\n")
	f.Add("node 0 a\nedge 0 0 1\n")
	f.Add("garbage that is not a directive\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("serialized form rejected: %v", err)
		}
		if g.Canonical() != g2.Canonical() {
			t.Fatalf("round trip changed graph:\n%s\n%s", g.Canonical(), g2.Canonical())
		}
	})
}
