// Package graph provides the undirected weighted multigraph that underlies
// every other subsystem in this repository: topologies are graphs, routing
// runs over graphs, and the tomography path matrix indexes graph edges.
//
// Nodes and edges are identified by dense integer IDs (0..N-1 and 0..E-1
// respectively) so that downstream packages can use plain slices as
// node- and edge-indexed tables. The graph is append-only: nodes and edges
// can be added but not removed, which keeps IDs stable for the lifetime of
// an experiment. Link failures are modelled downstream as scenario masks
// over edge IDs, never as structural deletions.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node in a Graph. IDs are dense: the n-th added node
// has NodeID n-1.
type NodeID int

// EdgeID identifies an edge in a Graph. IDs are dense: the e-th added edge
// has EdgeID e-1.
type EdgeID int

// Edge is an undirected weighted edge between two nodes. U < V is not
// required; both orientations denote the same link.
type Edge struct {
	ID     EdgeID
	U, V   NodeID
	Weight float64
}

// Other returns the endpoint of e that is not n. It returns U if n matches
// neither endpoint, which callers guard against via Incident.
func (e Edge) Other(n NodeID) NodeID {
	if e.U == n {
		return e.V
	}
	return e.U
}

// Incident reports whether n is an endpoint of e.
func (e Edge) Incident(n NodeID) bool { return e.U == n || e.V == n }

var (
	// ErrNodeRange is returned when a node ID is outside [0, NumNodes).
	ErrNodeRange = errors.New("graph: node id out of range")
	// ErrSelfLoop is returned when attempting to add an edge from a node
	// to itself; tomography path matrices have no use for self loops.
	ErrSelfLoop = errors.New("graph: self loops are not allowed")
	// ErrBadWeight is returned for non-positive or non-finite edge weights.
	ErrBadWeight = errors.New("graph: edge weight must be positive and finite")
)

// Graph is an undirected weighted multigraph with dense node and edge IDs.
// The zero value is an empty graph ready to use.
type Graph struct {
	names []string // node labels, indexed by NodeID
	edges []Edge   // indexed by EdgeID
	adj   [][]EdgeID
}

// New returns an empty graph with capacity hints for n nodes and m edges.
func New(n, m int) *Graph {
	return &Graph{
		names: make([]string, 0, n),
		edges: make([]Edge, 0, m),
		adj:   make([][]EdgeID, 0, n),
	}
}

// AddNode appends a node with the given label and returns its ID.
func (g *Graph) AddNode(label string) NodeID {
	id := NodeID(len(g.names))
	g.names = append(g.names, label)
	g.adj = append(g.adj, nil)
	return id
}

// AddNodes appends n unlabeled nodes (labels "n<ID>") and returns the ID of
// the first one.
func (g *Graph) AddNodes(n int) NodeID {
	first := NodeID(len(g.names))
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", int(first)+i))
	}
	return first
}

// AddEdge appends an undirected edge between u and v with the given weight
// and returns its ID. Parallel edges are allowed; self loops are not.
func (g *Graph) AddEdge(u, v NodeID, weight float64) (EdgeID, error) {
	if !g.validNode(u) || !g.validNode(v) {
		return 0, fmt.Errorf("%w: (%d,%d) with %d nodes", ErrNodeRange, u, v, len(g.names))
	}
	if u == v {
		return 0, fmt.Errorf("%w: node %d", ErrSelfLoop, u)
	}
	if !(weight > 0) || weight != weight || weight > 1e300 {
		return 0, fmt.Errorf("%w: %v", ErrBadWeight, weight)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, U: u, V: v, Weight: weight})
	g.adj[u] = append(g.adj[u], id)
	g.adj[v] = append(g.adj[v], id)
	return id, nil
}

// MustAddEdge is AddEdge for construction code with known-good arguments
// (topology generators, tests). It panics on error.
func (g *Graph) MustAddEdge(u, v NodeID, weight float64) EdgeID {
	id, err := g.AddEdge(u, v, weight)
	if err != nil {
		panic(err)
	}
	return id
}

func (g *Graph) validNode(n NodeID) bool { return n >= 0 && int(n) < len(g.names) }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Label returns the label of node n, or "" if n is out of range.
func (g *Graph) Label(n NodeID) string {
	if !g.validNode(n) {
		return ""
	}
	return g.names[n]
}

// Edge returns the edge with the given ID. ok is false if the ID is out of
// range.
func (g *Graph) Edge(id EdgeID) (Edge, bool) {
	if id < 0 || int(id) >= len(g.edges) {
		return Edge{}, false
	}
	return g.edges[id], true
}

// Edges returns a copy of all edges in ID order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// IncidentEdges returns the IDs of edges incident to n, in insertion order.
// The returned slice is a copy.
func (g *Graph) IncidentEdges(n NodeID) []EdgeID {
	if !g.validNode(n) {
		return nil
	}
	out := make([]EdgeID, len(g.adj[n]))
	copy(out, g.adj[n])
	return out
}

// Degree returns the number of edges incident to n (parallel edges count
// separately).
func (g *Graph) Degree(n NodeID) int {
	if !g.validNode(n) {
		return 0
	}
	return len(g.adj[n])
}

// Neighbors returns the distinct neighbor nodes of n in ascending order.
func (g *Graph) Neighbors(n NodeID) []NodeID {
	if !g.validNode(n) {
		return nil
	}
	seen := make(map[NodeID]bool, len(g.adj[n]))
	for _, eid := range g.adj[n] {
		seen[g.edges[eid].Other(n)] = true
	}
	out := make([]NodeID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasEdgeBetween reports whether at least one edge connects u and v.
func (g *Graph) HasEdgeBetween(u, v NodeID) bool {
	if !g.validNode(u) || !g.validNode(v) {
		return false
	}
	for _, eid := range g.adj[u] {
		if g.edges[eid].Other(u) == v {
			return true
		}
	}
	return false
}

// Connected reports whether the graph is connected. The empty graph and
// single-node graphs are connected.
func (g *Graph) Connected() bool {
	if len(g.names) <= 1 {
		return true
	}
	return len(g.Component(0)) == len(g.names)
}

// Component returns the IDs of all nodes reachable from start (including
// start), in BFS discovery order. It returns nil for an out-of-range start.
func (g *Graph) Component(start NodeID) []NodeID {
	if !g.validNode(start) {
		return nil
	}
	seen := make([]bool, len(g.names))
	seen[start] = true
	queue := []NodeID{start}
	var order []NodeID
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, eid := range g.adj[n] {
			v := g.edges[eid].Other(n)
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return order
}

// Components returns all connected components, each as a sorted node list,
// ordered by their smallest node ID.
func (g *Graph) Components() [][]NodeID {
	var comps [][]NodeID
	seen := make([]bool, len(g.names))
	for n := 0; n < len(g.names); n++ {
		if seen[n] {
			continue
		}
		comp := g.Component(NodeID(n))
		for _, v := range comp {
			seen[v] = true
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// DegreeStats summarizes the degree distribution of a graph.
type DegreeStats struct {
	Min, Max int
	Mean     float64
}

// Degrees returns degree statistics for the graph. All fields are zero for
// an empty graph.
func (g *Graph) Degrees() DegreeStats {
	if len(g.names) == 0 {
		return DegreeStats{}
	}
	stats := DegreeStats{Min: len(g.edges)*2 + 1}
	total := 0
	for n := range g.names {
		d := len(g.adj[n])
		total += d
		if d < stats.Min {
			stats.Min = d
		}
		if d > stats.Max {
			stats.Max = d
		}
	}
	stats.Mean = float64(total) / float64(len(g.names))
	return stats
}

// String returns a short human-readable summary, e.g. "graph(87 nodes, 161 edges)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(%d nodes, %d edges)", len(g.names), len(g.edges))
}
