package graph

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := New(3, 3)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(b, c, 2)
	g.MustAddEdge(c, a, 3)
	return g
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New(0, 0)
	for i := 0; i < 5; i++ {
		if got := g.AddNode("x"); int(got) != i {
			t.Fatalf("AddNode #%d = %d, want %d", i, got, i)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestAddNodesBulk(t *testing.T) {
	g := New(0, 0)
	g.AddNode("first")
	start := g.AddNodes(4)
	if start != 1 {
		t.Fatalf("AddNodes start = %d, want 1", start)
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
	if g.Label(2) != "n2" {
		t.Fatalf("Label(2) = %q, want n2", g.Label(2))
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(2, 1)
	a := g.AddNode("a")
	b := g.AddNode("b")

	if _, err := g.AddEdge(a, b, 1.5); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if _, err := g.AddEdge(a, a, 1); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop: got %v, want ErrSelfLoop", err)
	}
	if _, err := g.AddEdge(a, 99, 1); !errors.Is(err, ErrNodeRange) {
		t.Errorf("bad node: got %v, want ErrNodeRange", err)
	}
	if _, err := g.AddEdge(a, -1, 1); !errors.Is(err, ErrNodeRange) {
		t.Errorf("negative node: got %v, want ErrNodeRange", err)
	}
	for _, w := range []float64{0, -1, nan()} {
		if _, err := g.AddEdge(a, b, w); !errors.Is(err, ErrBadWeight) {
			t.Errorf("weight %v: got %v, want ErrBadWeight", w, err)
		}
	}
}

func nan() float64 { return float64FromBits() }

func float64FromBits() float64 {
	var f float64
	f = 0.0
	return f / f // quiet NaN without importing math
}

func TestParallelEdgesAllowed(t *testing.T) {
	g := New(2, 2)
	a := g.AddNode("a")
	b := g.AddNode("b")
	e1 := g.MustAddEdge(a, b, 1)
	e2 := g.MustAddEdge(a, b, 2)
	if e1 == e2 {
		t.Fatalf("parallel edges share an ID: %d", e1)
	}
	if g.Degree(a) != 2 || g.Degree(b) != 2 {
		t.Fatalf("degrees = %d,%d, want 2,2", g.Degree(a), g.Degree(b))
	}
	if nbrs := g.Neighbors(a); len(nbrs) != 1 || nbrs[0] != b {
		t.Fatalf("Neighbors(a) = %v, want [b]", nbrs)
	}
}

func TestEdgeAccessors(t *testing.T) {
	g := buildTriangle(t)
	e, ok := g.Edge(1)
	if !ok {
		t.Fatal("Edge(1) not found")
	}
	if e.U != 1 || e.V != 2 || e.Weight != 2 {
		t.Fatalf("Edge(1) = %+v", e)
	}
	if _, ok := g.Edge(99); ok {
		t.Error("Edge(99) should not exist")
	}
	if _, ok := g.Edge(-1); ok {
		t.Error("Edge(-1) should not exist")
	}
	if e.Other(1) != 2 || e.Other(2) != 1 {
		t.Error("Other endpoints wrong")
	}
	if !e.Incident(1) || !e.Incident(2) || e.Incident(0) {
		t.Error("Incident wrong")
	}
}

func TestEdgesReturnsCopy(t *testing.T) {
	g := buildTriangle(t)
	edges := g.Edges()
	edges[0].Weight = 999
	e, _ := g.Edge(0)
	if e.Weight == 999 {
		t.Fatal("Edges() aliases internal storage")
	}
}

func TestIncidentEdgesReturnsCopy(t *testing.T) {
	g := buildTriangle(t)
	inc := g.IncidentEdges(0)
	if len(inc) != 2 {
		t.Fatalf("IncidentEdges(0) = %v, want 2 edges", inc)
	}
	inc[0] = 42
	if g.IncidentEdges(0)[0] == 42 {
		t.Fatal("IncidentEdges aliases internal storage")
	}
	if g.IncidentEdges(-5) != nil {
		t.Fatal("IncidentEdges(-5) should be nil")
	}
}

func TestHasEdgeBetween(t *testing.T) {
	g := New(3, 1)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.MustAddEdge(a, b, 1)
	if !g.HasEdgeBetween(a, b) || !g.HasEdgeBetween(b, a) {
		t.Error("a-b edge not reported")
	}
	if g.HasEdgeBetween(a, c) {
		t.Error("phantom a-c edge")
	}
	if g.HasEdgeBetween(a, 17) {
		t.Error("out of range should be false")
	}
}

func TestConnectivity(t *testing.T) {
	g := New(4, 2)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(c, d, 1)

	if g.Connected() {
		t.Error("two components reported connected")
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("Components = %v, want 2", comps)
	}
	if comps[0][0] != a || comps[1][0] != c {
		t.Errorf("component ordering wrong: %v", comps)
	}

	g.MustAddEdge(b, c, 1)
	if !g.Connected() {
		t.Error("connected graph reported disconnected")
	}
	if got := len(g.Components()); got != 1 {
		t.Errorf("Components = %d, want 1", got)
	}
}

func TestEmptyAndSingletonConnected(t *testing.T) {
	g := New(0, 0)
	if !g.Connected() {
		t.Error("empty graph should be connected")
	}
	g.AddNode("only")
	if !g.Connected() {
		t.Error("singleton graph should be connected")
	}
}

func TestComponentBFSOrder(t *testing.T) {
	// Path a-b-c: BFS from a discovers in order a,b,c.
	g := New(3, 2)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(b, c, 1)
	got := g.Component(a)
	want := []NodeID{a, b, c}
	if len(got) != len(want) {
		t.Fatalf("Component = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Component = %v, want %v", got, want)
		}
	}
	if g.Component(-1) != nil {
		t.Error("Component(-1) should be nil")
	}
}

func TestDegreeStats(t *testing.T) {
	g := buildTriangle(t)
	stats := g.Degrees()
	if stats.Min != 2 || stats.Max != 2 || stats.Mean != 2 {
		t.Fatalf("Degrees = %+v, want all 2", stats)
	}
	if got := (New(0, 0)).Degrees(); got != (DegreeStats{}) {
		t.Fatalf("empty Degrees = %+v, want zero", got)
	}
}

func TestStringSummary(t *testing.T) {
	g := buildTriangle(t)
	if got := g.String(); got != "graph(3 nodes, 3 edges)" {
		t.Fatalf("String = %q", got)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := buildTriangle(t)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.Canonical() != g2.Canonical() {
		t.Fatalf("round trip changed graph:\n%s\n%s", g.Canonical(), g2.Canonical())
	}
	if g2.Label(0) != "a" {
		t.Errorf("label lost in round trip: %q", g2.Label(0))
	}
}

func TestReadEdgeListIgnoresCommentsAndBlank(t *testing.T) {
	in := `
# a comment
node 0 a
node 1 b

edge 0 1 2.5
future-directive whatever
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("parsed %s, want 2 nodes 1 edge", g)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"sparse node ids", "node 5 x\n"},
		{"bad node id", "node zero x\n"},
		{"short node line", "node\n"},
		{"short edge line", "node 0 a\nnode 1 b\nedge 0 1\n"},
		{"bad edge endpoint", "node 0 a\nnode 1 b\nedge 0 q 1\n"},
		{"bad edge endpoint u", "node 0 a\nnode 1 b\nedge q 1 1\n"},
		{"bad edge weight", "node 0 a\nnode 1 b\nedge 0 1 heavy\n"},
		{"edge out of range", "node 0 a\nedge 0 3 1\n"},
		{"self loop", "node 0 a\nedge 0 0 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("input %q parsed without error", tc.in)
			}
		})
	}
}

func TestCanonicalOrderIndependent(t *testing.T) {
	g1 := New(3, 2)
	g1.AddNodes(3)
	g1.MustAddEdge(0, 1, 1)
	g1.MustAddEdge(1, 2, 2)

	g2 := New(3, 2)
	g2.AddNodes(3)
	g2.MustAddEdge(2, 1, 2) // reversed endpoints, different insertion order
	g2.MustAddEdge(1, 0, 1)

	if g1.Canonical() != g2.Canonical() {
		t.Fatalf("canonical differs:\n%s\n%s", g1.Canonical(), g2.Canonical())
	}
}

// Property: on random graphs, the sum of all node degrees equals twice the
// edge count, and Components partitions the node set.
func TestRandomGraphInvariants(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		n := 2 + rng.IntN(20)
		m := rng.IntN(40)
		g := New(n, m)
		g.AddNodes(n)
		for i := 0; i < m; i++ {
			u := NodeID(rng.IntN(n))
			v := NodeID(rng.IntN(n))
			if u == v {
				continue
			}
			g.MustAddEdge(u, v, 1+rng.Float64())
		}
		total := 0
		for i := 0; i < n; i++ {
			total += g.Degree(NodeID(i))
		}
		if total != 2*g.NumEdges() {
			return false
		}
		covered := 0
		for _, comp := range g.Components() {
			covered += len(comp)
		}
		return covered == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: WriteEdgeList/ReadEdgeList round-trips random graphs.
func TestRandomGraphRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 2 + rng.IntN(15)
		g := New(n, 0)
		g.AddNodes(n)
		for i := 0; i < rng.IntN(30); i++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u == v {
				continue
			}
			g.MustAddEdge(NodeID(u), NodeID(v), float64(1+rng.IntN(10)))
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			return false
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		return g.Canonical() == g2.Canonical()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
