package linalg

import "fmt"

// Basis maintains a growing set of linearly independent row vectors in
// fully reduced (RREF-like) form and, crucially for the paper's
// probabilistic ER bound, tracks for every vector the coefficients of its
// representation in terms of the previously accepted independent vectors.
//
// Members of the basis are addressed by the order in which their vectors
// were accepted (0, 1, 2, ...). When Add rejects a vector as dependent, it
// reports the support of its representation: the member indices whose
// combination reproduces the vector. That support is exactly the paper's
// R_q, the set of basis paths a dependent path q depends on.
//
// Invariant: every stored row has value 1 in its own pivot column and 0 in
// every other row's pivot column, so reducing an external vector against
// the rows in any order is exact.
type Basis struct {
	dim int
	tol float64

	// reduced[i] is the i-th fully reduced row; pivots[i] its pivot column.
	reduced [][]float64
	pivots  []int
	// combos[i] expresses reduced[i] as a combination of the accepted
	// original vectors: reduced[i] = Σ_k combos[i][k]·orig_k. Slices are
	// padded lazily to the current member count.
	combos [][]float64
}

// NewBasis returns an empty basis for vectors of the given dimension.
func NewBasis(dim int) *Basis { return NewBasisTol(dim, DefaultTol) }

// NewBasisTol is NewBasis with an explicit zero tolerance.
func NewBasisTol(dim int, tol float64) *Basis {
	return &Basis{dim: dim, tol: tol}
}

// Rank returns the number of vectors accepted so far.
func (b *Basis) Rank() int { return len(b.reduced) }

// Dim returns the vector dimension.
func (b *Basis) Dim() int { return b.dim }

// reduceVec eliminates the pivot-column components of v (modified in
// place) and returns the elimination factor per basis row. Because rows
// satisfy the RREF invariant the order of elimination does not matter.
func (b *Basis) reduceVec(v []float64) (factors []float64) {
	factors = make([]float64, len(b.reduced))
	for i, row := range b.reduced {
		col := b.pivots[i]
		f := v[col] // row[col] == 1 by invariant
		if nearZero(f, b.tol) {
			continue
		}
		factors[i] = f
		for j := range v {
			v[j] -= f * row[j]
		}
		v[col] = 0
	}
	return factors
}

func (b *Basis) residualPivot(v []float64) int {
	for j := 0; j < b.dim; j++ {
		if !nearZero(v[j], b.tol) {
			return j
		}
	}
	return -1
}

// memberCoeffs expands per-row elimination factors into coefficients over
// the accepted original vectors.
func (b *Basis) memberCoeffs(factors []float64) []float64 {
	coeffs := make([]float64, len(b.reduced))
	for i, f := range factors {
		if f == 0 {
			continue
		}
		for k, c := range b.combos[i] {
			coeffs[k] += f * c
		}
	}
	return coeffs
}

// Dependent reports whether v already lies in the span of the basis,
// without modifying the basis. If it does, support lists the member
// indices (in insertion order) whose combination reproduces v. The support
// is empty for the zero vector.
func (b *Basis) Dependent(v []float64) (dependent bool, support []int) {
	if len(v) != b.dim {
		panic(fmt.Sprintf("linalg: basis dim %d, vector dim %d", b.dim, len(v)))
	}
	res := make([]float64, b.dim)
	copy(res, v)
	factors := b.reduceVec(res)
	if b.residualPivot(res) >= 0 {
		return false, nil
	}
	for k, c := range b.memberCoeffs(factors) {
		if !nearZero(c, b.tol) {
			support = append(support, k)
		}
	}
	return true, support
}

// Representation returns the coefficients over the accepted members that
// reproduce v, when v lies in the span: v = Σ_k coeffs[k]·member_k. ok is
// false for vectors outside the span.
func (b *Basis) Representation(v []float64) (coeffs []float64, ok bool) {
	if len(v) != b.dim {
		panic(fmt.Sprintf("linalg: basis dim %d, vector dim %d", b.dim, len(v)))
	}
	res := make([]float64, b.dim)
	copy(res, v)
	factors := b.reduceVec(res)
	if b.residualPivot(res) >= 0 {
		return nil, false
	}
	return b.memberCoeffs(factors), true
}

// Add attempts to insert v. If v is independent of the current basis it is
// accepted: added reports true and member is its index. Otherwise added is
// false and support lists the members whose combination reproduces v (the
// paper's R_q).
func (b *Basis) Add(v []float64) (added bool, member int, support []int) {
	if len(v) != b.dim {
		panic(fmt.Sprintf("linalg: basis dim %d, vector dim %d", b.dim, len(v)))
	}
	res := make([]float64, b.dim)
	copy(res, v)
	factors := b.reduceVec(res)
	pivotCol := b.residualPivot(res)
	if pivotCol < 0 {
		for k, c := range b.memberCoeffs(factors) {
			if !nearZero(c, b.tol) {
				support = append(support, k)
			}
		}
		return false, -1, support
	}

	member = len(b.reduced)
	// combo for the new row before normalization:
	// res = 1·v − Σ_i factors[i]·reduced[i].
	combo := make([]float64, member+1)
	combo[member] = 1
	for i, f := range factors {
		if f == 0 {
			continue
		}
		for k, c := range b.combos[i] {
			combo[k] -= f * c
		}
	}
	// Normalize pivot to 1.
	pv := res[pivotCol]
	for j := range res {
		res[j] /= pv
		if nearZero(res[j], b.tol) {
			res[j] = 0
		}
	}
	res[pivotCol] = 1
	for k := range combo {
		combo[k] /= pv
	}

	// Restore the RREF invariant: clear column pivotCol in existing rows.
	for i, row := range b.reduced {
		f := row[pivotCol]
		if nearZero(f, b.tol) {
			row[pivotCol] = 0
			continue
		}
		for j := range row {
			row[j] -= f * res[j]
			if nearZero(row[j], b.tol) {
				row[j] = 0
			}
		}
		row[pivotCol] = 0
		row[b.pivots[i]] = 1
		// combos[i] -= f·combo (pad to new length first).
		ci := b.combos[i]
		for len(ci) < member+1 {
			ci = append(ci, 0)
		}
		for k, c := range combo {
			ci[k] -= f * c
		}
		b.combos[i] = ci
	}

	b.reduced = append(b.reduced, res)
	b.pivots = append(b.pivots, pivotCol)
	b.combos = append(b.combos, combo)
	return true, member, nil
}

// MustAdd adds v and panics if it is dependent. For construction code with
// vectors known to be independent.
func (b *Basis) MustAdd(v []float64) int {
	added, member, _ := b.Add(v)
	if !added {
		panic("linalg: MustAdd of dependent vector")
	}
	return member
}

// Clone returns a deep copy of the basis, so speculative additions can be
// explored without mutating the original.
func (b *Basis) Clone() *Basis {
	c := &Basis{dim: b.dim, tol: b.tol}
	c.reduced = make([][]float64, len(b.reduced))
	c.combos = make([][]float64, len(b.combos))
	c.pivots = make([]int, len(b.pivots))
	copy(c.pivots, b.pivots)
	for i := range b.reduced {
		c.reduced[i] = append([]float64(nil), b.reduced[i]...)
		c.combos[i] = append([]float64(nil), b.combos[i]...)
	}
	return c
}
