package linalg

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBasisAddIndependent(t *testing.T) {
	b := NewBasis(3)
	vectors := [][]float64{{1, 1, 0}, {0, 1, 1}, {1, 0, 0}}
	for i, v := range vectors {
		added, member, _ := b.Add(v)
		if !added || member != i {
			t.Fatalf("Add #%d: added=%v member=%d", i, added, member)
		}
	}
	if b.Rank() != 3 {
		t.Fatalf("Rank = %d, want 3", b.Rank())
	}
}

func TestBasisRejectsDependentWithSupport(t *testing.T) {
	b := NewBasis(4)
	b.MustAdd([]float64{1, 1, 0, 0}) // member 0
	b.MustAdd([]float64{0, 1, 1, 0}) // member 1
	b.MustAdd([]float64{0, 0, 0, 1}) // member 2

	// v = member0 - member1 → support {0, 1}.
	added, _, support := b.Add([]float64{1, 0, -1, 0})
	if added {
		t.Fatal("dependent vector accepted")
	}
	if len(support) != 2 || support[0] != 0 || support[1] != 1 {
		t.Fatalf("support = %v, want [0 1]", support)
	}

	// v = member2 alone → support {2}.
	dep, support := b.Dependent([]float64{0, 0, 0, 2})
	if !dep || len(support) != 1 || support[0] != 2 {
		t.Fatalf("Dependent = %v %v, want true [2]", dep, support)
	}

	// Zero vector → dependent with empty support.
	dep, support = b.Dependent([]float64{0, 0, 0, 0})
	if !dep || len(support) != 0 {
		t.Fatalf("zero vector: %v %v", dep, support)
	}
}

func TestBasisSupportCoefficientsReconstruct(t *testing.T) {
	// Verify the support is genuinely the representation support by
	// checking a combination that uses all three members.
	b := NewBasis(4)
	m0 := []float64{1, 0, 0, 1}
	m1 := []float64{0, 1, 0, 1}
	m2 := []float64{0, 0, 1, 1}
	b.MustAdd(m0)
	b.MustAdd(m1)
	b.MustAdd(m2)

	v := make([]float64, 4)
	for j := range v {
		v[j] = 2*m0[j] - m1[j] + 3*m2[j]
	}
	dep, support := b.Dependent(v)
	if !dep || len(support) != 3 {
		t.Fatalf("Dependent(%v) = %v %v", v, dep, support)
	}
}

func TestBasisDependentDoesNotMutate(t *testing.T) {
	b := NewBasis(2)
	b.MustAdd([]float64{1, 0})
	rankBefore := b.Rank()
	b.Dependent([]float64{0, 1})
	if b.Rank() != rankBefore {
		t.Fatal("Dependent mutated basis")
	}
	// The independent probe above must still be addable.
	if added, _, _ := b.Add([]float64{0, 1}); !added {
		t.Fatal("independent vector rejected after probe")
	}
}

func TestBasisMustAddPanics(t *testing.T) {
	b := NewBasis(2)
	b.MustAdd([]float64{1, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd of dependent vector should panic")
		}
	}()
	b.MustAdd([]float64{2, 0})
}

func TestBasisDimMismatchPanics(t *testing.T) {
	b := NewBasis(3)
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch should panic")
		}
	}()
	b.Add([]float64{1})
}

func TestBasisCloneIsolated(t *testing.T) {
	b := NewBasis(2)
	b.MustAdd([]float64{1, 0})
	c := b.Clone()
	c.MustAdd([]float64{0, 1})
	if b.Rank() != 1 || c.Rank() != 2 {
		t.Fatalf("ranks = %d,%d, want 1,2", b.Rank(), c.Rank())
	}
}

func TestBasisInsertionOrderIndependence(t *testing.T) {
	// Regression guard for the RREF-invariant maintenance: adding vectors
	// whose pivots arrive out of column order must still produce correct
	// dependency classifications.
	b := NewBasis(4)
	b.MustAdd([]float64{0, 0, 1, 1}) // pivot col 2
	b.MustAdd([]float64{1, 1, 1, 0}) // pivot col 0
	b.MustAdd([]float64{0, 1, 0, 0}) // pivot col 1

	// span = {e2+e3, e0+e1+e2, e1}; so e0 = (r1 - r0... ) check known member:
	dep, _ := b.Dependent([]float64{1, 0, 1, 1}) // r1 - r2 = [1 0 1 0]; plus?
	// [1 0 1 1] = r1 - r2 + (r0 - [0 0 1 0])? Compute: r1-r2 = [1 0 1 0].
	// [1 0 1 1] - [1 0 1 0] = e3, and e3 = r0 - e2 is not representable
	// without e2 alone. Must NOT be dependent unless e3 in span. e3 alone:
	// span vectors all have c2 == c3 combined... verify via rank instead.
	m := mustFromRows(t, [][]float64{
		{0, 0, 1, 1},
		{1, 1, 1, 0},
		{0, 1, 0, 0},
		{1, 0, 1, 1},
	})
	wantDep := Rank(m) == 3
	if dep != wantDep {
		t.Fatalf("Dependent = %v, rank oracle says %v", dep, wantDep)
	}
}

// Property: Basis.Rank after adding all rows equals matrix Rank, for random
// 0/1 matrices, under any insertion order.
func TestBasisMatchesMatrixRank(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 41))
		rows := 1 + rng.IntN(12)
		cols := 1 + rng.IntN(12)
		m := randomBinaryMatrix(rng, rows, cols, 0.4)
		b := NewBasis(cols)
		order := rng.Perm(rows)
		for _, i := range order {
			b.Add(m.Row(i))
		}
		return b.Rank() == Rank(m)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: when Add reports a dependent vector with support S, the vector
// is NOT in the span of the accepted members outside S ∪ {v}; moreover it
// IS in the span of exactly the members in S. We verify the second half
// (the one the ER bound relies on) by rank comparison.
func TestBasisSupportSpansVector(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 43))
		cols := 2 + rng.IntN(8)
		nvec := 2 + rng.IntN(10)
		b := NewBasis(cols)
		var members [][]float64
		for i := 0; i < nvec; i++ {
			v := make([]float64, cols)
			for j := range v {
				if rng.Float64() < 0.5 {
					v[j] = 1
				}
			}
			added, _, support := b.Add(v)
			if added {
				members = append(members, v)
				continue
			}
			// Check v ∈ span(members[support]).
			rows := make([][]float64, 0, len(support)+1)
			for _, s := range support {
				rows = append(rows, members[s])
			}
			withoutV, err := FromRows(rows)
			if err != nil {
				return false
			}
			rows = append(rows, v)
			withV, err := FromRows(rows)
			if err != nil {
				return false
			}
			if Rank(withV) != Rank(withoutV) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: support is minimal in the sense that dropping any single member
// from it breaks the representation (coefficients in a basis representation
// are unique, so every support member is necessary).
func TestBasisSupportMinimal(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 47))
		cols := 2 + rng.IntN(6)
		b := NewBasis(cols)
		var members [][]float64
		for i := 0; i < 8; i++ {
			v := make([]float64, cols)
			for j := range v {
				if rng.Float64() < 0.5 {
					v[j] = 1
				}
			}
			added, _, support := b.Add(v)
			if added {
				members = append(members, v)
				continue
			}
			for drop := range support {
				rows := make([][]float64, 0, len(support))
				for k, s := range support {
					if k == drop {
						continue
					}
					rows = append(rows, members[s])
				}
				rows = append(rows, v)
				m, err := FromRows(rows)
				if err != nil {
					return false
				}
				// v must NOT be in the span of the reduced support.
				if Rank(m) == len(rows)-1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBasisNumericalStability(t *testing.T) {
	// Repeatedly add scaled copies and combinations; rank must stay correct.
	b := NewBasis(5)
	base := [][]float64{
		{1, 1, 0, 0, 0},
		{0, 1, 1, 0, 0},
		{0, 0, 1, 1, 0},
		{0, 0, 0, 1, 1},
	}
	for _, v := range base {
		b.MustAdd(v)
	}
	for i := 0; i < 50; i++ {
		comb := make([]float64, 5)
		for j, v := range base {
			scale := float64(i%7) - 3
			if scale == 0 {
				scale = 0.5
			}
			_ = j
			for k := range comb {
				comb[k] += scale * v[k]
			}
		}
		dep, _ := b.Dependent(comb)
		if !dep {
			t.Fatalf("iteration %d: combination flagged independent", i)
		}
	}
	if b.Rank() != 4 {
		t.Fatalf("Rank = %d, want 4", b.Rank())
	}
	if math.Abs(float64(b.Dim())-5) > 0 {
		t.Fatalf("Dim = %d", b.Dim())
	}
}
