package linalg

import (
	"math/rand/v2"
	"testing"
)

func benchMatrix(rows, cols int) *Matrix {
	rng := rand.New(rand.NewPCG(1, 2))
	return randomBinaryMatrix(rng, rows, cols, 0.1)
}

func BenchmarkRankSmall(b *testing.B) {
	m := benchMatrix(100, 160)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Rank(m) == 0 {
			b.Fatal("zero rank")
		}
	}
}

func BenchmarkRankLarge(b *testing.B) {
	m := benchMatrix(800, 972)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Rank(m) == 0 {
			b.Fatal("zero rank")
		}
	}
}

func BenchmarkRREF(b *testing.B) {
	m := benchMatrix(200, 328)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		red, pivots := RREF(m, DefaultTol)
		if red == nil || len(pivots) == 0 {
			b.Fatal("degenerate RREF")
		}
	}
}

func BenchmarkBasisAdd(b *testing.B) {
	m := benchMatrix(400, 328)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		basis := NewBasis(m.Cols())
		for r := 0; r < m.Rows(); r++ {
			basis.Add(m.Row(r))
		}
		if basis.Rank() == 0 {
			b.Fatal("empty basis")
		}
	}
}

func BenchmarkBasisDependent(b *testing.B) {
	m := benchMatrix(400, 328)
	basis := NewBasis(m.Cols())
	for r := 0; r < m.Rows()/2; r++ {
		basis.Add(m.Row(r))
	}
	probe := m.Row(m.Rows() - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		basis.Dependent(probe)
	}
}

func BenchmarkPivotedCholesky(b *testing.B) {
	m := benchMatrix(200, 328)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sel := PivotedCholeskyRows(m, 1e-7); len(sel) == 0 {
			b.Fatal("no rows selected")
		}
	}
}

func BenchmarkSingularValues(b *testing.B) {
	m := benchMatrix(40, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sv := SingularValues(m); len(sv) == 0 {
			b.Fatal("no singular values")
		}
	}
}

func BenchmarkRankExact(b *testing.B) {
	m := benchMatrix(30, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RankExact(m)
	}
}
