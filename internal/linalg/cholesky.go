package linalg

import "math"

// PivotedCholeskyRows selects a maximal linearly independent subset of the
// rows of m using pivoted Cholesky factorization of the Gram matrix
// G = m·mᵀ. It returns the selected row indices in pivot order, i.e. the
// order in which the factorization chose them.
//
// This mirrors the SelectPath baseline from Chen et al. (SIGCOMM'04): an
// "arbitrary" basis extracted by a rank-revealing decomposition. The
// factorization greedily pivots on the row with the largest residual
// diagonal, stopping once the residual drops below tol, which happens after
// exactly rank(m) steps.
func PivotedCholeskyRows(m *Matrix, tol float64) []int {
	n := m.Rows()
	if n == 0 || m.Cols() == 0 {
		return nil
	}
	// diag[i] = residual squared norm of row i.
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		s := 0.0
		for _, v := range row {
			s += v * v
		}
		diag[i] = s
	}
	// L columns computed so far: l[k][i] = L[i][k], stored per step.
	var lcols [][]float64
	var selected []int
	chosen := make([]bool, n)

	for step := 0; step < n; step++ {
		// Pivot: unchosen row with max residual diagonal.
		best, bestVal := -1, tol
		for i := 0; i < n; i++ {
			if !chosen[i] && diag[i] > bestVal {
				best, bestVal = i, diag[i]
			}
		}
		if best < 0 {
			break
		}
		chosen[best] = true
		selected = append(selected, best)

		// Compute the new column of L: for each i,
		// L[i][step] = (G[i][best] − Σ_k L[i][k]·L[best][k]) / sqrt(diag[best]).
		pivotRow := m.Row(best)
		col := make([]float64, n)
		invSqrt := 1 / math.Sqrt(diag[best])
		for i := 0; i < n; i++ {
			if chosen[i] && i != best {
				continue
			}
			g := dot(m.Row(i), pivotRow)
			for k, lc := range lcols {
				_ = k
				g -= lc[i] * lc[best]
			}
			col[i] = g * invSqrt
		}
		// Update residual diagonals.
		for i := 0; i < n; i++ {
			if chosen[i] {
				continue
			}
			diag[i] -= col[i] * col[i]
			if diag[i] < 0 {
				diag[i] = 0
			}
		}
		lcols = append(lcols, col)
	}
	return selected
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
