package linalg

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestPivotedCholeskyRowsSelectsBasis(t *testing.T) {
	m := mustFromRows(t, [][]float64{
		{1, 1, 0, 0},
		{0, 1, 1, 0},
		{1, 2, 1, 0}, // dependent on rows 0,1
		{0, 0, 0, 1},
	})
	sel := PivotedCholeskyRows(m, 1e-7)
	if len(sel) != 3 {
		t.Fatalf("selected %v, want 3 rows", sel)
	}
	sub := m.SelectRows(sel)
	if Rank(sub) != 3 {
		t.Fatalf("selected rows have rank %d, want 3", Rank(sub))
	}
	// The largest-norm row (row 2) is the first pivot even though it is a
	// combination of rows 0 and 1 — any maximal independent set is valid.
	if sel[0] != 2 {
		t.Errorf("first pivot = %d, want the max-norm row 2", sel[0])
	}
}

func TestPivotedCholeskyEmpty(t *testing.T) {
	if sel := PivotedCholeskyRows(NewMatrix(0, 5), 1e-7); sel != nil {
		t.Fatalf("empty matrix selected %v", sel)
	}
	if sel := PivotedCholeskyRows(NewMatrix(3, 0), 1e-7); sel != nil {
		t.Fatalf("zero-col matrix selected %v", sel)
	}
	zero := NewMatrix(3, 3)
	if sel := PivotedCholeskyRows(zero, 1e-7); len(sel) != 0 {
		t.Fatalf("zero matrix selected %v", sel)
	}
}

// Property: pivoted Cholesky selects exactly rank(m) rows and they are
// linearly independent, on random 0/1 matrices.
func TestPivotedCholeskyRank(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 61))
		rows := 1 + rng.IntN(14)
		cols := 1 + rng.IntN(10)
		m := randomBinaryMatrix(rng, rows, cols, 0.4)
		sel := PivotedCholeskyRows(m, 1e-7)
		if len(sel) != Rank(m) {
			return false
		}
		if len(sel) == 0 {
			return true
		}
		return Rank(m.SelectRows(sel)) == len(sel)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSingularValuesKnown(t *testing.T) {
	// diag(3,2) has singular values 3, 2.
	m := mustFromRows(t, [][]float64{{3, 0}, {0, 2}})
	sv := SingularValues(m)
	if len(sv) != 2 || math.Abs(sv[0]-3) > 1e-9 || math.Abs(sv[1]-2) > 1e-9 {
		t.Fatalf("SingularValues = %v", sv)
	}
}

func TestSingularValuesRankDeficient(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 1}, {2, 2}})
	sv := SingularValues(m)
	// Frobenius norm = sqrt(10); single nonzero singular value sqrt(10).
	if math.Abs(sv[0]-math.Sqrt(10)) > 1e-9 {
		t.Errorf("sv[0] = %v, want sqrt(10)", sv[0])
	}
	if sv[1] > 1e-9 {
		t.Errorf("sv[1] = %v, want ~0", sv[1])
	}
	if got := RankSVD(m, 1e-9); got != 1 {
		t.Errorf("RankSVD = %d, want 1", got)
	}
}

func TestSingularValuesEmpty(t *testing.T) {
	if sv := SingularValues(NewMatrix(0, 3)); sv != nil {
		t.Fatalf("empty SVD = %v", sv)
	}
	if got := RankSVD(NewMatrix(2, 2), 1e-9); got != 0 {
		t.Fatalf("RankSVD(zero) = %d", got)
	}
}

func TestSingularValuesWideAndTallAgree(t *testing.T) {
	m := mustFromRows(t, [][]float64{
		{1, 0, 1, 0, 1},
		{0, 1, 0, 1, 0},
		{1, 1, 1, 1, 1},
	})
	svA := SingularValues(m)
	svB := SingularValues(m.Transpose())
	if len(svA) != len(svB) {
		t.Fatalf("lengths differ: %v vs %v", svA, svB)
	}
	for i := range svA {
		if math.Abs(svA[i]-svB[i]) > 1e-8 {
			t.Fatalf("singular values differ: %v vs %v", svA, svB)
		}
	}
}

// Property: RankSVD agrees with Gaussian rank on random 0/1 matrices, and
// the sum of squared singular values equals the squared Frobenius norm.
func TestSVDProperties(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 71))
		rows := 1 + rng.IntN(8)
		cols := 1 + rng.IntN(8)
		m := randomBinaryMatrix(rng, rows, cols, 0.5)
		if RankSVD(m, 1e-9) != Rank(m) {
			return false
		}
		frob2 := 0.0
		for i := 0; i < rows; i++ {
			for _, v := range m.Row(i) {
				frob2 += v * v
			}
		}
		sum2 := 0.0
		for _, s := range SingularValues(m) {
			sum2 += s * s
		}
		return math.Abs(frob2-sum2) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRankExactLargeValues(t *testing.T) {
	// Values that would challenge naive float comparisons.
	m := mustFromRows(t, [][]float64{
		{1e10, 1},
		{1e10, 1.0000001},
	})
	if got := RankExact(m); got != 2 {
		t.Fatalf("RankExact = %d, want 2", got)
	}
}
