package linalg

import "math/big"

// RankExact computes the exact rank of a matrix with rational entries using
// fraction-free Gaussian elimination over big.Rat. It is immune to
// round-off and serves as the ground-truth oracle for the floating-point
// kernels in tests. Entries of m are converted via big.Rat's float64
// constructor, so m must hold exactly representable values (path matrices
// are 0/1, which always qualifies).
func RankExact(m *Matrix) int {
	rows, cols := m.Rows(), m.Cols()
	if rows == 0 || cols == 0 {
		return 0
	}
	work := make([][]*big.Rat, rows)
	for i := 0; i < rows; i++ {
		work[i] = make([]*big.Rat, cols)
		for j := 0; j < cols; j++ {
			r := new(big.Rat)
			r.SetFloat64(m.At(i, j))
			work[i][j] = r
		}
	}

	rank := 0
	for col := 0; col < cols && rank < rows; col++ {
		pivot := -1
		for r := rank; r < rows; r++ {
			if work[r][col].Sign() != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work[rank], work[pivot] = work[pivot], work[rank]
		prow := work[rank]
		inv := new(big.Rat).Inv(prow[col])
		for r := rank + 1; r < rows; r++ {
			row := work[r]
			if row[col].Sign() == 0 {
				continue
			}
			f := new(big.Rat).Mul(row[col], inv)
			row[col].SetInt64(0)
			for j := col + 1; j < cols; j++ {
				if prow[j].Sign() == 0 {
					continue
				}
				t := new(big.Rat).Mul(f, prow[j])
				row[j].Sub(row[j], t)
			}
		}
		rank++
	}
	return rank
}
