package linalg

import (
	"fmt"
	"math/bits"
)

// Kernel selects the elimination arithmetic rank-only consumers run on.
// Survival structure is Boolean — a path either survives a scenario or it
// does not, and its incidence row has 0/1 entries — so the rank question
// the Monte Carlo oracles ask can be answered over GF(2) with XOR word
// arithmetic (KernelGF2), an order of magnitude cheaper than the float64
// sparse elimination (KernelFloat64). The float64 kernel remains the
// differential-test oracle and the only choice for weighted inputs.
//
// GF(2) rank can in principle undercount the rational rank of a 0/1 matrix
// (the smallest example is three rows pairwise sharing a column, see
// DESIGN.md §13), so consumers that switch kernels are guarded by
// differential tests against the float64 reference on their real instances.
type Kernel int

const (
	// KernelGF2 is the bit-packed XOR kernel — the default for 0/1 inputs.
	KernelGF2 Kernel = iota
	// KernelFloat64 is the tolerance-based sparse float64 kernel.
	KernelFloat64
)

func (k Kernel) String() string {
	switch k {
	case KernelGF2:
		return "gf2"
	case KernelFloat64:
		return "float64"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// GF2Words returns the number of 64-bit words a packed vector of the given
// dimension occupies.
func GF2Words(dim int) int { return (dim + 63) / 64 }

// PackRow01 packs a 0/1 float64 row into packed words, appending to dst[:0]
// semantics: dst is resized (reallocating only when too small) and fully
// overwritten. Entries other than exactly 0 or 1 panic — GF(2) has no
// faithful image for them; weighted rows belong on the float64 kernel.
func PackRow01(row []float64, dst []uint64) []uint64 {
	words := GF2Words(len(row))
	if cap(dst) < words {
		dst = make([]uint64, words)
	} else {
		dst = dst[:words]
		for i := range dst {
			dst[i] = 0
		}
	}
	for j, x := range row {
		switch x {
		case 0:
		case 1:
			dst[j>>6] |= 1 << (j & 63)
		default:
			panic(fmt.Sprintf("linalg: PackRow01 entry %v at column %d is not 0/1", x, j))
		}
	}
	return dst
}

// GF2Basis maintains a growing set of GF(2)-independent packed bit rows —
// the XOR analogue of a rank-only SparseBasis. Rows live contiguously in
// one backing slab (row i occupies words [i·words, (i+1)·words)), so Reset
// re-slices instead of freeing and a warmed basis adds rows without
// allocating. Each stored row's lowest set bit is its pivot and no two rows
// share a pivot; reduction scans a vector's set bits in ascending order and
// XORs in the pivot row, which can only flip bits at or above the scan
// point, so a single ascending pass is exact (DESIGN.md §13).
//
// The basis satisfies RowBasis in rank-only form: Add and Dependent accept
// 0/1 float64 vectors and report nil supports. The packed-native entry
// points (AddPacked, InSpanPacked, RankAfterPacked) are the hot path — bit
// columns from failure.ScenarioSet and pre-packed path rows feed them with
// no unpacking. Mutating calls are single-writer; InSpanPackedWith is
// read-only and safe to call concurrently when each goroutine brings its
// own scratch.
type GF2Basis struct {
	dim   int
	words int

	rowData []uint64 // slab of committed rows, len == rank·words
	pivots  []int    // pivots[i] is the pivot bit of row i
	rowOf   []int32  // rowOf[bit] is the row pivoting on bit, or -1

	scratch []uint64 // reduction scratch for the basis's own operations
	pack    []uint64 // packing scratch for the float64 adapter entry points
}

var _ RowBasis = (*GF2Basis)(nil)

// NewGF2Basis returns an empty basis for packed vectors of the given
// dimension.
func NewGF2Basis(dim int) *GF2Basis {
	if dim <= 0 {
		panic(fmt.Sprintf("linalg: GF2 basis needs positive dimension, got %d", dim))
	}
	rowOf := make([]int32, dim)
	for i := range rowOf {
		rowOf[i] = -1
	}
	return &GF2Basis{
		dim:     dim,
		words:   GF2Words(dim),
		rowOf:   rowOf,
		scratch: make([]uint64, GF2Words(dim)),
	}
}

// Rank implements RowBasis.
func (b *GF2Basis) Rank() int { return len(b.pivots) }

// Dim implements RowBasis.
func (b *GF2Basis) Dim() int { return b.dim }

// Words returns the packed word count vectors for this basis must have.
func (b *GF2Basis) Words() int { return b.words }

// Reset empties the basis, keeping all storage for reuse.
func (b *GF2Basis) Reset() {
	for _, c := range b.pivots {
		b.rowOf[c] = -1
	}
	b.pivots = b.pivots[:0]
	b.rowData = b.rowData[:0]
}

// row returns committed row i (a view into the slab).
func (b *GF2Basis) row(i int32) []uint64 {
	off := int(i) * b.words
	return b.rowData[off : off+b.words]
}

// reduceFrom eliminates the pivoted bits of v in ascending order starting
// at word lo and returns the first pivotless set bit, or -1 when v reduces
// to zero. Stored rows have no bits below their pivot, so XOR-ing one in
// never disturbs bits already scanned past.
func (b *GF2Basis) reduceFrom(v []uint64, lo int) int {
	for w := lo; w < len(v); w++ {
		for v[w] != 0 {
			c := w<<6 + bits.TrailingZeros64(v[w])
			r := b.rowOf[c]
			if r < 0 {
				return c
			}
			row := b.row(r)
			for k := w; k < len(v); k++ {
				v[k] ^= row[k]
			}
		}
	}
	return -1
}

// checkPacked validates a packed operand's length.
func (b *GF2Basis) checkPacked(v []uint64) {
	if len(v) != b.words {
		panic(fmt.Sprintf("linalg: GF2 basis wants %d packed words, got %d", b.words, len(v)))
	}
}

// AddPacked inserts the packed vector if it is GF(2)-independent of the
// basis and reports whether it was accepted. Bits at positions ≥ Dim must
// be zero. The vector is copied before reduction; v is never modified.
func (b *GF2Basis) AddPacked(v []uint64) bool {
	b.checkPacked(v)
	if len(b.pivots) == b.dim {
		return false // full rank spans everything
	}
	// Carve the prospective row off the slab tail and reduce it in place;
	// committing is just extending the slab length. Rows are addressed by
	// index, so a growth reallocation never invalidates anything.
	n := len(b.rowData)
	if cap(b.rowData) < n+b.words {
		grown := make([]uint64, n, maxInt(2*cap(b.rowData), n+b.words))
		copy(grown, b.rowData)
		b.rowData = grown
	}
	row := b.rowData[n : n+b.words : n+b.words]
	copy(row, v)
	c := b.reduceFrom(row, 0)
	if c < 0 {
		return false
	}
	b.rowOf[c] = int32(len(b.pivots))
	b.pivots = append(b.pivots, c)
	b.rowData = b.rowData[:n+b.words]
	return true
}

// InSpanPacked reports whether the packed vector lies in the row span,
// using the basis's own scratch (single-writer, like Add).
func (b *GF2Basis) InSpanPacked(v []uint64) bool {
	return b.InSpanPackedWith(v, b.scratch)
}

// InSpanPackedWith is InSpanPacked reducing in caller-supplied scratch
// (len Words()), allocating nothing and only reading the basis: any number
// of goroutines may probe a shared basis concurrently as long as each
// brings its own scratch and no mutation runs concurrently.
func (b *GF2Basis) InSpanPackedWith(v, scratch []uint64) bool {
	b.checkPacked(v)
	if len(b.pivots) == b.dim {
		return true
	}
	if len(b.pivots) == 0 {
		for _, w := range v {
			if w != 0 {
				return false
			}
		}
		return true
	}
	if len(scratch) != b.words {
		panic(fmt.Sprintf("linalg: GF2 scratch wants %d words, got %d", b.words, len(scratch)))
	}
	copy(scratch, v)
	return b.reduceFrom(scratch, 0) < 0
}

// RankAfterPacked returns the rank the basis would have after AddPacked(v),
// without mutating the basis.
func (b *GF2Basis) RankAfterPacked(v []uint64) int {
	if b.InSpanPacked(v) {
		return len(b.pivots)
	}
	return len(b.pivots) + 1
}

// Clone returns a deep copy, so class splits can extend a snapshot without
// mutating the original.
func (b *GF2Basis) Clone() *GF2Basis {
	c := &GF2Basis{
		dim:     b.dim,
		words:   b.words,
		rowData: append([]uint64(nil), b.rowData...),
		pivots:  append([]int(nil), b.pivots...),
		rowOf:   append([]int32(nil), b.rowOf...),
		scratch: make([]uint64, b.words),
	}
	return c
}

// Add implements RowBasis for 0/1 float64 vectors: accepted vectors report
// their insertion index as member; supports are nil (rank-only semantics,
// matching NewSparseBasisRankOnly).
func (b *GF2Basis) Add(v []float64) (added bool, member int, support []int) {
	if len(v) != b.dim {
		panic(fmt.Sprintf("linalg: GF2 basis dim %d, vector dim %d", b.dim, len(v)))
	}
	b.pack = PackRow01(v, b.pack)
	if !b.AddPacked(b.pack) {
		return false, -1, nil
	}
	return true, len(b.pivots) - 1, nil
}

// Dependent implements RowBasis for 0/1 float64 vectors, with nil support.
func (b *GF2Basis) Dependent(v []float64) (dependent bool, support []int) {
	if len(v) != b.dim {
		panic(fmt.Sprintf("linalg: GF2 basis dim %d, vector dim %d", b.dim, len(v)))
	}
	b.pack = PackRow01(v, b.pack)
	return b.InSpanPacked(b.pack), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
