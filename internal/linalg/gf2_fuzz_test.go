package linalg

import (
	"math/rand/v2"
	"testing"
)

// naiveGF2Rank computes the GF(2) rank of the rows by fresh forward
// elimination over a dense byte matrix — an independent reference for the
// incremental packed kernel.
func naiveGF2Rank(rows [][]byte, dim int) int {
	m := make([][]byte, len(rows))
	for i, r := range rows {
		m[i] = append([]byte(nil), r...)
	}
	rank := 0
	for col := 0; col < dim && rank < len(m); col++ {
		pivot := -1
		for i := rank; i < len(m); i++ {
			if m[i][col] != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m[rank], m[pivot] = m[pivot], m[rank]
		for i := rank + 1; i < len(m); i++ {
			if m[i][col] != 0 {
				for j := col; j < dim; j++ {
					m[i][j] ^= m[rank][j]
				}
			}
		}
		rank++
	}
	return rank
}

// fuzzSeedMatrix serializes (dim, rows) into the fuzz input format: one dim
// byte, then ceil(dim/8) bytes per row.
func fuzzSeedMatrix(dim int, rows [][]int) []byte {
	bytesPerRow := (dim + 7) / 8
	data := []byte{byte(dim - 1)}
	for _, cols := range rows {
		rb := make([]byte, bytesPerRow)
		for _, c := range cols {
			rb[c/8] |= 1 << (c % 8)
		}
		data = append(data, rb...)
	}
	return data
}

// FuzzGF2VsFloat64Rank drives random 0/1 matrices through the packed GF(2)
// kernel, a naive dense mod-2 reference, and the float64 sparse kernel.
// Invariants:
//
//  1. The incremental GF(2) rank equals the naive mod-2 rank of every row
//     prefix — the packed kernel is exact over its own field.
//  2. Until the kernels first diverge the acceptance sequences agree, and a
//     GF(2)-accepted row is always float64-accepted (GF(2) independence of
//     a common row set implies rational independence; the converse can
//     fail, which is the only legal divergence — see DESIGN.md §13).
//  3. The final GF(2) rank never exceeds the float64 rank.
//
// The seed corpus includes the canonical divergent instances so the legal
// divergence path is always exercised.
func FuzzGF2VsFloat64Rank(f *testing.F) {
	// Triangle: rational rank 3, GF(2) rank 2.
	f.Add(fuzzSeedMatrix(3, [][]int{{0, 1}, {1, 2}, {0, 2}}))
	// Realizable monitor-pair instance (4 paths over 4 links) where the
	// fourth path is the GF(2) XOR of the first three but rationally
	// independent: rank_Q = 4, rank_GF2 = 3.
	f.Add(fuzzSeedMatrix(4, [][]int{{0, 1}, {1, 2}, {0, 2, 3}, {3}}))
	f.Add(fuzzSeedMatrix(1, [][]int{{0}, {0}}))
	rng := rand.New(rand.NewPCG(99, 1))
	for trial := 0; trial < 8; trial++ {
		dim := 1 + rng.IntN(96)
		var rows [][]int
		for r := 0; r < 1+rng.IntN(24); r++ {
			var cols []int
			for c := 0; c < dim; c++ {
				if rng.Float64() < 0.15 {
					cols = append(cols, c)
				}
			}
			rows = append(rows, cols)
		}
		f.Add(fuzzSeedMatrix(dim, rows))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		dim := 1 + int(data[0])%96
		bytesPerRow := (dim + 7) / 8
		body := data[1:]
		nRows := len(body) / bytesPerRow
		if nRows == 0 {
			return
		}
		if nRows > 48 {
			nRows = 48
		}

		gf2 := NewGF2Basis(dim)
		f64 := NewSparseBasisRankOnly(dim)
		var naiveRows [][]byte
		diverged := false
		for r := 0; r < nRows; r++ {
			chunk := body[r*bytesPerRow : (r+1)*bytesPerRow]
			packed := make([]uint64, GF2Words(dim))
			denseBits := make([]byte, dim)
			dense := make([]float64, dim)
			for j := 0; j < dim; j++ {
				if chunk[j/8]&(1<<(j%8)) != 0 {
					packed[j>>6] |= 1 << (j & 63)
					denseBits[j] = 1
					dense[j] = 1
				}
			}
			naiveRows = append(naiveRows, denseBits)

			accG := gf2.AddPacked(packed)
			accF, _, _ := f64.Add(dense)
			if wantRank := naiveGF2Rank(naiveRows, dim); gf2.Rank() != wantRank {
				t.Fatalf("row %d: incremental GF2 rank %d, naive mod-2 rank %d", r, gf2.Rank(), wantRank)
			}
			if !diverged {
				if accG && !accF {
					t.Fatalf("row %d: GF2 accepted a row the float64 kernel rejected", r)
				}
				if accG != accF {
					diverged = true // float64-only acceptance: legal, bases differ from here on
				}
			}
		}
		if gf2.Rank() > f64.Rank() {
			t.Fatalf("final GF2 rank %d exceeds float64 rank %d", gf2.Rank(), f64.Rank())
		}
	})
}
