package linalg

import (
	"math/rand/v2"
	"testing"
)

// unpackRow expands packed words into a 0/1 float64 vector of length dim.
func unpackRow(v []uint64, dim int) []float64 {
	out := make([]float64, dim)
	for j := range out {
		if v[j>>6]&(1<<(j&63)) != 0 {
			out[j] = 1
		}
	}
	return out
}

func randPacked(rng *rand.Rand, dim int, density float64) []uint64 {
	v := make([]uint64, GF2Words(dim))
	for j := 0; j < dim; j++ {
		if rng.Float64() < density {
			v[j>>6] |= 1 << (j & 63)
		}
	}
	return v
}

func TestGF2BasisBasics(t *testing.T) {
	b := NewGF2Basis(130)
	if b.Words() != 3 {
		t.Fatalf("words = %d, want 3", b.Words())
	}
	zero := make([]uint64, 3)
	if !b.InSpanPacked(zero) {
		t.Fatal("empty basis must span the zero vector")
	}
	if b.AddPacked(zero) {
		t.Fatal("zero vector accepted")
	}
	e0 := []uint64{1, 0, 0}
	e129 := []uint64{0, 0, 2}
	if !b.AddPacked(e0) || !b.AddPacked(e129) {
		t.Fatal("unit vectors rejected")
	}
	if b.Rank() != 2 {
		t.Fatalf("rank = %d, want 2", b.Rank())
	}
	both := []uint64{1, 0, 2}
	if !b.InSpanPacked(both) {
		t.Fatal("e0 XOR e129 must lie in span")
	}
	if got := b.RankAfterPacked(both); got != 2 {
		t.Fatalf("RankAfterPacked(dependent) = %d, want 2", got)
	}
	e64 := []uint64{0, 1, 0}
	if got := b.RankAfterPacked(e64); got != 3 {
		t.Fatalf("RankAfterPacked(independent) = %d, want 3", got)
	}
	if b.Rank() != 2 {
		t.Fatal("RankAfterPacked mutated the basis")
	}
	b.Reset()
	if b.Rank() != 0 || !b.InSpanPacked(zero) || b.InSpanPacked(e0) {
		t.Fatal("Reset did not empty the basis")
	}
	if !b.AddPacked(e0) {
		t.Fatal("re-add after Reset rejected")
	}
}

// The GF(2) kernel and the float64 sparse kernel must produce the same
// acceptance sequence and rank on random 0/1 rows whenever GF(2) accepts —
// GF(2) independence implies rational independence. The converse can fail
// (DESIGN.md §13), so the full-sequence equality below is checked on random
// sparse instances where the differential fuzz target (gf2_fuzz_test.go)
// carries the one-sided invariants.
func TestGF2MatchesSparseOnRandomRows(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 7))
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.IntN(200)
		gf2 := NewGF2Basis(dim)
		f64 := NewSparseBasisRankOnly(dim)
		rows := 1 + rng.IntN(2*dim)
		for r := 0; r < rows; r++ {
			v := randPacked(rng, dim, 0.1)
			dense := unpackRow(v, dim)
			accG := gf2.AddPacked(v)
			accF, _, _ := f64.Add(dense)
			if accG && !accF {
				t.Fatalf("trial %d row %d: GF2 accepted a float64-dependent row", trial, r)
			}
			if accG != accF {
				// A genuine GF(2)-vs-Q divergence: rare on random sparse
				// rows, legal, and the bases may differ from here on.
				t.Logf("trial %d row %d: kernels diverged (gf2=%v f64=%v) — stopping trial", trial, r, accG, accF)
				break
			}
		}
		if gf2.Rank() > f64.Rank() {
			t.Fatalf("trial %d: gf2 rank %d exceeds float64 rank %d", trial, gf2.Rank(), f64.Rank())
		}
	}
}

// Canonical counterexample: three 0/1 rows pairwise sharing a column have
// rational rank 3 but GF(2) rank 2 (their XOR is zero). The kernel must
// report the GF(2) answer; the float64 kernel the rational one.
func TestGF2RankBelowRationalRank(t *testing.T) {
	rows := [][]float64{
		{1, 1, 0},
		{0, 1, 1},
		{1, 0, 1},
	}
	gf2 := NewGF2Basis(3)
	f64 := NewSparseBasisRankOnly(3)
	for _, r := range rows {
		gf2.Add(r)
		f64.Add(r)
	}
	if gf2.Rank() != 2 {
		t.Fatalf("gf2 rank = %d, want 2", gf2.Rank())
	}
	if f64.Rank() != 3 {
		t.Fatalf("float64 rank = %d, want 3", f64.Rank())
	}
}

func TestGF2RowBasisAdapter(t *testing.T) {
	var rb RowBasis = NewGF2Basis(4)
	added, member, support := rb.Add([]float64{1, 0, 1, 0})
	if !added || member != 0 || support != nil {
		t.Fatalf("Add = (%v, %d, %v)", added, member, support)
	}
	added, member, _ = rb.Add([]float64{0, 1, 0, 0})
	if !added || member != 1 {
		t.Fatalf("second Add = (%v, %d)", added, member)
	}
	dep, _ := rb.Dependent([]float64{1, 1, 1, 0})
	if !dep {
		t.Fatal("XOR of members reported independent")
	}
	if dep, _ := rb.Dependent([]float64{0, 0, 0, 1}); dep {
		t.Fatal("fresh unit vector reported dependent")
	}
	if rb.Dim() != 4 || rb.Rank() != 2 {
		t.Fatalf("dim/rank = %d/%d", rb.Dim(), rb.Rank())
	}
}

func TestPackRow01RejectsWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PackRow01 accepted a non-0/1 entry")
		}
	}()
	PackRow01([]float64{0, 0.5, 1}, nil)
}

// Steady-state probes and failed adds on a warmed basis must not allocate —
// the property the Monte Carlo zero-alloc claim is built on.
func TestGF2BasisSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	dim := 161
	b := NewGF2Basis(dim)
	vecs := make([][]uint64, 12)
	for i := range vecs {
		vecs[i] = randPacked(rng, dim, 0.08)
	}
	for _, v := range vecs[:8] {
		b.AddPacked(v)
	}
	dep := make([]uint64, b.Words())
	copy(dep, vecs[0]) // committed (or reduced-away) row: never accepted again
	scratch := make([]uint64, b.Words())
	if avg := testing.AllocsPerRun(100, func() {
		if b.AddPacked(dep) {
			t.Fatal("dependent row accepted")
		}
		b.InSpanPackedWith(vecs[9], scratch)
		b.RankAfterPacked(vecs[10])
	}); avg != 0 {
		t.Fatalf("steady-state GF2 ops allocate %.1f allocs/op, want 0", avg)
	}
	// Reset + re-add settles into zero allocations once the slab is warm.
	if avg := testing.AllocsPerRun(100, func() {
		b.Reset()
		for _, v := range vecs[:8] {
			b.AddPacked(v)
		}
	}); avg != 0 {
		t.Fatalf("warm Reset+Add cycle allocates %.1f allocs/op, want 0", avg)
	}
}

func TestGF2Clone(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	b := NewGF2Basis(100)
	for i := 0; i < 6; i++ {
		b.AddPacked(randPacked(rng, 100, 0.1))
	}
	c := b.Clone()
	v := randPacked(rng, 100, 0.1)
	for !c.AddPacked(v) { // find an independent vector for the clone
		v = randPacked(rng, 100, 0.1)
	}
	if c.Rank() != b.Rank()+1 {
		t.Fatalf("clone rank %d, original %d", c.Rank(), b.Rank())
	}
	if b.InSpanPacked(v) {
		t.Fatal("extending the clone mutated the original")
	}
}

func BenchmarkGF2Rank(b *testing.B) {
	rng := rand.New(rand.NewPCG(12, 12))
	dim := 161
	rows := make([][]uint64, 150)
	for i := range rows {
		rows[i] = randPacked(rng, dim, 0.06)
	}
	basis := NewGF2Basis(dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		basis.Reset()
		for _, r := range rows {
			basis.AddPacked(r)
		}
	}
}

// BenchmarkGF2RankSerial is the float64 sparse kernel on the same rows —
// the reference cmd/benchregress pairs BenchmarkGF2Rank against.
func BenchmarkGF2RankSerial(b *testing.B) {
	rng := rand.New(rand.NewPCG(12, 12))
	dim := 161
	rows := make([][]float64, 150)
	for i := range rows {
		rows[i] = unpackRow(randPacked(rng, dim, 0.06), dim)
	}
	basis := NewSparseBasisRankOnly(dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		basis.Reset()
		for _, r := range rows {
			basis.Add(r)
		}
	}
}
