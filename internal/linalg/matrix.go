// Package linalg implements the dense linear algebra needed for network
// tomography path matrices: rank computation (Gaussian elimination and
// one-sided Jacobi SVD), reduced row echelon form, pivoted Cholesky row
// selection (the SelectPath baseline's basis extraction), an incremental
// row basis that tracks dependency coefficients (required by the paper's
// probabilistic ER bound), and an exact big.Rat elimination used to verify
// the floating-point kernels in tests.
//
// Path matrices are 0/1 and modest in size (thousands of rows, around a
// thousand columns), so a dense row-major float64 representation with a
// fixed absolute tolerance is both simple and robust. DefaultTol is the
// tolerance used across the repository.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// DefaultTol is the absolute tolerance below which a value is treated as
// zero during elimination. Path-matrix entries are 0/1 and eliminations
// involve small coefficients, so 1e-9 leaves many orders of magnitude of
// headroom.
const DefaultTol = 1e-9

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero matrix with the given shape. It panics on
// negative dimensions, which is a programming error.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal
// length. The data is copied.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: row %d has %d cols, want %d", i, len(r), cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a mutable view of row i (no copy).
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// SelectRows returns a new matrix consisting of the given rows of m, in the
// given order. Row indices may repeat.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	out := NewMatrix(len(idx), m.cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// MulVec returns m·x. It panics if len(x) != Cols(), a programming error.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("linalg: MulVec dim %d != %d", len(x), m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		sum := 0.0
		for j, v := range row {
			sum += v * x[j]
		}
		out[i] = sum
	}
	return out
}

// Gram returns m·mᵀ (the Gram matrix of the rows).
func (m *Matrix) Gram() *Matrix {
	g := NewMatrix(m.rows, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.Row(i)
		for j := i; j < m.rows; j++ {
			rj := m.Row(j)
			sum := 0.0
			for k := range ri {
				sum += ri[k] * rj[k]
			}
			g.Set(i, j, sum)
			g.Set(j, i, sum)
		}
	}
	return g
}

// String renders small matrices for debugging; large matrices are
// summarized by shape.
func (m *Matrix) String() string {
	if m.rows*m.cols > 400 {
		return fmt.Sprintf("matrix(%dx%d)", m.rows, m.cols)
	}
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%g", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// nearZero reports whether v is within tol of zero.
func nearZero(v, tol float64) bool { return math.Abs(v) <= tol }
