package linalg

import (
	"math/rand/v2"
	"strings"
	"testing"
)

func mustFromRows(t *testing.T, rows [][]float64) *Matrix {
	t.Helper()
	m, err := FromRows(rows)
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	return m
}

func randomBinaryMatrix(rng *rand.Rand, rows, cols int, density float64) *Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				m.Set(i, j, 1)
			}
		}
	}
	return m
}

func TestNewMatrixShape(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative shape should panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestFromRowsValidation(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	m, err := FromRows(nil)
	if err != nil || m.Rows() != 0 {
		t.Fatalf("empty FromRows: %v %v", m, err)
	}
}

func TestSetAtRow(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(1, 0, 5)
	if m.At(1, 0) != 5 {
		t.Fatal("Set/At mismatch")
	}
	row := m.Row(1)
	row[1] = 7
	if m.At(1, 1) != 7 {
		t.Fatal("Row is not a live view")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestSelectRows(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 0}, {0, 1}, {1, 1}})
	s := m.SelectRows([]int{2, 0, 2})
	if s.Rows() != 3 || s.At(0, 1) != 1 || s.At(1, 0) != 1 || s.At(1, 1) != 0 {
		t.Fatalf("SelectRows wrong: %v", s)
	}
}

func TestTranspose(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("Transpose wrong:\n%v", tr)
	}
}

func TestMulVec(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 0, 2}, {0, 3, 0}})
	y := m.MulVec([]float64{1, 2, 3})
	if y[0] != 7 || y[1] != 6 {
		t.Fatalf("MulVec = %v", y)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch should panic")
		}
	}()
	m.MulVec([]float64{1})
}

func TestGram(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 1, 0}, {0, 1, 1}})
	g := m.Gram()
	if g.At(0, 0) != 2 || g.At(1, 1) != 2 || g.At(0, 1) != 1 || g.At(1, 0) != 1 {
		t.Fatalf("Gram wrong:\n%v", g)
	}
}

func TestStringForms(t *testing.T) {
	small := mustFromRows(t, [][]float64{{1, 2}})
	if !strings.Contains(small.String(), "1 2") {
		t.Errorf("small String = %q", small.String())
	}
	big := NewMatrix(50, 50)
	if !strings.Contains(big.String(), "matrix(50x50)") {
		t.Errorf("big String = %q", big.String())
	}
}
