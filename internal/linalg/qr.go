package linalg

import "math"

// QR computes the column-pivoted Householder QR factorization of m:
// m·P = Q·R with Q orthonormal (implicit), R upper triangular and P a
// column permutation choosing the largest remaining column norm at each
// step — the classical rank-revealing QR. It returns the R factor (same
// shape as m) and the column permutation perm (perm[k] = original column
// index of factored column k).
//
// Chen et al., whose SelectPath baseline this repository reimplements,
// describe their basis extraction in terms of rank-revealing
// decompositions of AᵀA; QR on A is the numerically preferable equivalent
// and serves here as an independent oracle for cross-checking the Gaussian
// and SVD rank paths.
func QR(m *Matrix) (r *Matrix, perm []int) {
	rows, cols := m.Rows(), m.Cols()
	work := m.Clone()
	perm = make([]int, cols)
	for j := range perm {
		perm[j] = j
	}
	// Remaining squared column norms for pivoting.
	norms := make([]float64, cols)
	for j := 0; j < cols; j++ {
		s := 0.0
		for i := 0; i < rows; i++ {
			v := work.At(i, j)
			s += v * v
		}
		norms[j] = s
	}

	steps := rows
	if cols < steps {
		steps = cols
	}
	for k := 0; k < steps; k++ {
		// Pivot: column with the largest residual norm.
		best := k
		for j := k + 1; j < cols; j++ {
			if norms[j] > norms[best] {
				best = j
			}
		}
		if best != k {
			swapCols(work, k, best)
			perm[k], perm[best] = perm[best], perm[k]
			norms[k], norms[best] = norms[best], norms[k]
		}

		// Householder vector for column k below row k.
		alpha := 0.0
		for i := k; i < rows; i++ {
			v := work.At(i, k)
			alpha += v * v
		}
		alpha = math.Sqrt(alpha)
		if alpha <= 0 {
			continue
		}
		if work.At(k, k) > 0 {
			alpha = -alpha
		}
		// v = x − alpha·e1; applied implicitly.
		v := make([]float64, rows-k)
		v[0] = work.At(k, k) - alpha
		for i := k + 1; i < rows; i++ {
			v[i-k] = work.At(i, k)
		}
		vnorm2 := 0.0
		for _, x := range v {
			vnorm2 += x * x
		}
		if vnorm2 == 0 {
			continue
		}
		// Apply H = I − 2vvᵀ/(vᵀv) to columns k..cols-1.
		for j := k; j < cols; j++ {
			dotVX := 0.0
			for i := k; i < rows; i++ {
				dotVX += v[i-k] * work.At(i, j)
			}
			f := 2 * dotVX / vnorm2
			for i := k; i < rows; i++ {
				work.Set(i, j, work.At(i, j)-f*v[i-k])
			}
		}
		// Column k is now alpha·e1 exactly (up to round-off): snap it.
		work.Set(k, k, alpha)
		for i := k + 1; i < rows; i++ {
			work.Set(i, k, 0)
		}
		// Downdate the residual norms.
		for j := k + 1; j < cols; j++ {
			v := work.At(k, j)
			norms[j] -= v * v
			if norms[j] < 0 {
				norms[j] = 0
			}
		}
		norms[k] = 0
	}
	return work, perm
}

// RankQR returns the numerical rank of m as the number of diagonal entries
// of the rank-revealing R factor above tol (scaled by the leading entry).
func RankQR(m *Matrix, tol float64) int {
	if m.Rows() == 0 || m.Cols() == 0 {
		return 0
	}
	r, _ := QR(m)
	steps := m.Rows()
	if m.Cols() < steps {
		steps = m.Cols()
	}
	lead := math.Abs(r.At(0, 0))
	if lead <= tol {
		return 0
	}
	threshold := tol * lead * math.Sqrt(float64(m.Rows()*m.Cols()))
	if threshold < tol {
		threshold = tol
	}
	rank := 0
	for k := 0; k < steps; k++ {
		if math.Abs(r.At(k, k)) > threshold {
			rank++
		}
	}
	return rank
}

func swapCols(m *Matrix, a, b int) {
	for i := 0; i < m.Rows(); i++ {
		va, vb := m.At(i, a), m.At(i, b)
		m.Set(i, a, vb)
		m.Set(i, b, va)
	}
}
