package linalg

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestQRKnownMatrix(t *testing.T) {
	// Identity: R = permutation of identity, rank 3.
	m := mustFromRows(t, [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}})
	r, perm := QR(m)
	if len(perm) != 3 {
		t.Fatalf("perm = %v", perm)
	}
	for k := 0; k < 3; k++ {
		if math.Abs(math.Abs(r.At(k, k))-1) > 1e-12 {
			t.Fatalf("R diagonal = %v", r.At(k, k))
		}
	}
	if got := RankQR(m, DefaultTol); got != 3 {
		t.Fatalf("RankQR = %d, want 3", got)
	}
}

func TestQRRankDeficient(t *testing.T) {
	m := mustFromRows(t, [][]float64{
		{1, 1, 0},
		{0, 1, 1},
		{1, 2, 1}, // sum of the first two
	})
	if got := RankQR(m, 1e-9); got != 2 {
		t.Fatalf("RankQR = %d, want 2", got)
	}
}

func TestQRPreservesColumnNorms(t *testing.T) {
	// Q is orthogonal, so R's columns have the same norms as the pivoted
	// columns of m.
	rng := rand.New(rand.NewPCG(4, 4))
	m := randomBinaryMatrix(rng, 8, 6, 0.5)
	r, perm := QR(m)
	for j := 0; j < m.Cols(); j++ {
		orig := 0.0
		for i := 0; i < m.Rows(); i++ {
			v := m.At(i, perm[j])
			orig += v * v
		}
		got := 0.0
		for i := 0; i < m.Rows(); i++ {
			v := r.At(i, j)
			got += v * v
		}
		if math.Abs(orig-got) > 1e-9 {
			t.Fatalf("column %d norm %v, want %v", j, got, orig)
		}
	}
}

func TestQRUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	m := randomBinaryMatrix(rng, 7, 7, 0.5)
	r, _ := QR(m)
	for i := 1; i < r.Rows(); i++ {
		for j := 0; j < i && j < r.Cols(); j++ {
			if math.Abs(r.At(i, j)) > 1e-9 {
				t.Fatalf("R[%d][%d] = %v below diagonal", i, j, r.At(i, j))
			}
		}
	}
}

func TestQREmpty(t *testing.T) {
	if got := RankQR(NewMatrix(0, 3), DefaultTol); got != 0 {
		t.Fatalf("RankQR(empty) = %d", got)
	}
	if got := RankQR(NewMatrix(3, 3), DefaultTol); got != 0 {
		t.Fatalf("RankQR(zero) = %d", got)
	}
}

// Property: QR rank agrees with Gaussian and exact rank on random 0/1
// matrices — three independent rank oracles concurring.
func TestRankQRMatchesOtherOracles(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 91))
		rows := 1 + rng.IntN(12)
		cols := 1 + rng.IntN(12)
		m := randomBinaryMatrix(rng, rows, cols, 0.4)
		want := RankExact(m)
		return RankQR(m, DefaultTol) == want && Rank(m) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
