package linalg

// Rank returns the numerical rank of m using Gaussian elimination with
// partial pivoting and the DefaultTol zero threshold. The input is not
// modified.
func Rank(m *Matrix) int { return RankTol(m, DefaultTol) }

// RankTol is Rank with an explicit zero tolerance.
func RankTol(m *Matrix, tol float64) int {
	if m.rows == 0 || m.cols == 0 {
		return 0
	}
	work := m.Clone()
	return eliminate(work, tol)
}

// eliminate reduces work in place to row echelon form with partial
// pivoting and returns the number of pivots (the rank).
func eliminate(work *Matrix, tol float64) int {
	rank := 0
	for col := 0; col < work.cols && rank < work.rows; col++ {
		// Partial pivot: largest |value| in this column at/below rank row.
		pivot, pivotVal := -1, tol
		for r := rank; r < work.rows; r++ {
			if v := abs(work.At(r, col)); v > pivotVal {
				pivot, pivotVal = r, v
			}
		}
		if pivot < 0 {
			continue
		}
		swapRows(work, rank, pivot)
		prow := work.Row(rank)
		pv := prow[col]
		for r := rank + 1; r < work.rows; r++ {
			row := work.Row(r)
			if nearZero(row[col], tol) {
				continue
			}
			f := row[col] / pv
			row[col] = 0
			for j := col + 1; j < work.cols; j++ {
				row[j] -= f * prow[j]
			}
		}
		rank++
	}
	return rank
}

func swapRows(m *Matrix, i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// RREF reduces a copy of m to reduced row echelon form and returns the
// reduced matrix together with the pivot column of each pivot row. Rows
// beyond the rank are zero. Pivot entries are scaled to exactly 1 and
// entries within tol of zero are snapped to exactly 0 so downstream
// identifiability tests are stable.
func RREF(m *Matrix, tol float64) (reduced *Matrix, pivotCols []int) {
	work := m.Clone()
	rank := 0
	for col := 0; col < work.cols && rank < work.rows; col++ {
		pivot, pivotVal := -1, tol
		for r := rank; r < work.rows; r++ {
			if v := abs(work.At(r, col)); v > pivotVal {
				pivot, pivotVal = r, v
			}
		}
		if pivot < 0 {
			continue
		}
		swapRows(work, rank, pivot)
		prow := work.Row(rank)
		pv := prow[col]
		for j := col; j < work.cols; j++ {
			prow[j] /= pv
		}
		prow[col] = 1
		for r := 0; r < work.rows; r++ {
			if r == rank {
				continue
			}
			row := work.Row(r)
			if nearZero(row[col], tol) {
				row[col] = 0
				continue
			}
			f := row[col]
			row[col] = 0
			for j := col + 1; j < work.cols; j++ {
				row[j] -= f * prow[j]
				if nearZero(row[j], tol) {
					row[j] = 0
				}
			}
		}
		pivotCols = append(pivotCols, col)
		rank++
	}
	// Snap sub-tolerance residue in pivot rows too.
	for r := 0; r < rank; r++ {
		row := work.Row(r)
		for j := range row {
			if nearZero(row[j], tol) {
				row[j] = 0
			}
		}
	}
	return work, pivotCols
}

// InRowSpace reports whether vector v lies in the row space of the RREF
// matrix produced by RREF (with matching pivotCols). It reduces a copy of v
// against the pivot rows and checks that the residual vanishes.
func InRowSpace(reduced *Matrix, pivotCols []int, v []float64, tol float64) bool {
	res := make([]float64, len(v))
	copy(res, v)
	for r, col := range pivotCols {
		f := res[col]
		if nearZero(f, tol) {
			continue
		}
		row := reduced.Row(r)
		for j := range res {
			res[j] -= f * row[j]
		}
	}
	for _, x := range res {
		if !nearZero(x, tol) {
			return false
		}
	}
	return true
}
