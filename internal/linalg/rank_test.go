package linalg

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestRankKnownMatrices(t *testing.T) {
	cases := []struct {
		name string
		rows [][]float64
		want int
	}{
		{"empty", nil, 0},
		{"zero", [][]float64{{0, 0}, {0, 0}}, 0},
		{"identity3", [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}, 3},
		{"duplicated row", [][]float64{{1, 1}, {1, 1}}, 1},
		{"sum row", [][]float64{{1, 0}, {0, 1}, {1, 1}}, 2},
		{"wide", [][]float64{{1, 2, 3, 4}}, 1},
		{"tall dependent", [][]float64{{1}, {2}, {3}}, 1},
		{
			"paper-like 4x4",
			[][]float64{
				{1, 1, 0, 0},
				{0, 1, 1, 0},
				{0, 0, 1, 1},
				{1, 0, 0, 1}, // = r1 - r2 + r3
			},
			3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := FromRows(tc.rows)
			if err != nil {
				t.Fatal(err)
			}
			if got := Rank(m); got != tc.want {
				t.Errorf("Rank = %d, want %d", got, tc.want)
			}
			if got := RankExact(m); got != tc.want {
				t.Errorf("RankExact = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestRankDoesNotMutate(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	Rank(m)
	if m.At(1, 0) != 3 {
		t.Fatal("Rank mutated input")
	}
}

// Property: float rank matches exact rational rank on random 0/1 matrices.
func TestRankMatchesExactRandom(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		rows := 1 + rng.IntN(12)
		cols := 1 + rng.IntN(12)
		m := randomBinaryMatrix(rng, rows, cols, 0.4)
		return Rank(m) == RankExact(m)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: rank is invariant under transposition and bounded by min shape.
func TestRankProperties(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		rows := 1 + rng.IntN(10)
		cols := 1 + rng.IntN(10)
		m := randomBinaryMatrix(rng, rows, cols, 0.5)
		r := Rank(m)
		if r > rows || r > cols {
			return false
		}
		return Rank(m.Transpose()) == r
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: rank is subadditive under row stacking: rank([A;B]) ≤ rank(A)+rank(B)
// and ≥ max(rank(A), rank(B)).
func TestRankSubadditive(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 29))
		cols := 1 + rng.IntN(8)
		ra := 1 + rng.IntN(6)
		rb := 1 + rng.IntN(6)
		a := randomBinaryMatrix(rng, ra, cols, 0.5)
		b := randomBinaryMatrix(rng, rb, cols, 0.5)
		stacked := NewMatrix(ra+rb, cols)
		for i := 0; i < ra; i++ {
			copy(stacked.Row(i), a.Row(i))
		}
		for i := 0; i < rb; i++ {
			copy(stacked.Row(ra+i), b.Row(i))
		}
		rs, raa, rbb := Rank(stacked), Rank(a), Rank(b)
		if rs > raa+rbb {
			return false
		}
		if rs < raa || rs < rbb {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRREFBasics(t *testing.T) {
	m := mustFromRows(t, [][]float64{
		{1, 1, 0},
		{0, 1, 1},
		{1, 2, 1}, // dependent
	})
	red, pivots := RREF(m, DefaultTol)
	if len(pivots) != 2 {
		t.Fatalf("pivots = %v, want 2", pivots)
	}
	// Pivot rows should be e1-ish: [1 0 -1] and [0 1 1].
	if red.At(0, 0) != 1 || red.At(0, 1) != 0 || red.At(0, 2) != -1 {
		t.Errorf("row 0 = %v", red.Row(0))
	}
	if red.At(1, 0) != 0 || red.At(1, 1) != 1 || red.At(1, 2) != 1 {
		t.Errorf("row 1 = %v", red.Row(1))
	}
	for j := 0; j < 3; j++ {
		if red.At(2, j) != 0 {
			t.Errorf("dependent row not zeroed: %v", red.Row(2))
		}
	}
}

func TestInRowSpace(t *testing.T) {
	m := mustFromRows(t, [][]float64{
		{1, 1, 0},
		{0, 1, 1},
	})
	red, pivots := RREF(m, DefaultTol)
	cases := []struct {
		v    []float64
		want bool
	}{
		{[]float64{1, 1, 0}, true},
		{[]float64{0, 1, 1}, true},
		{[]float64{1, 2, 1}, true},  // sum
		{[]float64{1, 0, -1}, true}, // difference
		{[]float64{0, 0, 0}, true},
		{[]float64{1, 0, 0}, false},
		{[]float64{0, 0, 1}, false},
	}
	for _, tc := range cases {
		if got := InRowSpace(red, pivots, tc.v, DefaultTol); got != tc.want {
			t.Errorf("InRowSpace(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

// Property: every original row is in the row space of its own RREF, and the
// number of pivots equals the rank.
func TestRREFConsistency(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		rows := 1 + rng.IntN(10)
		cols := 1 + rng.IntN(10)
		m := randomBinaryMatrix(rng, rows, cols, 0.45)
		red, pivots := RREF(m, DefaultTol)
		if len(pivots) != Rank(m) {
			return false
		}
		for i := 0; i < rows; i++ {
			if !InRowSpace(red, pivots, m.Row(i), 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
