package linalg

import "fmt"

// RowBasis is the incremental-basis contract shared by the dense Basis and
// the SparseBasis. The expected-rank oracles only need these operations.
type RowBasis interface {
	// Rank returns the number of accepted vectors.
	Rank() int
	// Dim returns the vector dimension.
	Dim() int
	// Dependent reports whether v lies in the span, with the
	// representation support over accepted members.
	Dependent(v []float64) (dependent bool, support []int)
	// Add inserts v if independent; otherwise reports the support.
	Add(v []float64) (added bool, member int, support []int)
}

var (
	_ RowBasis = (*Basis)(nil)
	_ RowBasis = (*SparseBasis)(nil)
)

// sparseRow is a vector stored as parallel (col, val) pairs, sorted by
// column.
type sparseRow struct {
	cols []int
	vals []float64
}

func (r *sparseRow) nnz() int { return len(r.cols) }

// SparseBasis is Basis with rows stored sparsely. Path-matrix rows carry a
// handful of nonzeros across hundreds of columns, and even after
// elimination fill-in the reduced rows of ISP instances stay far from
// dense, so row updates cost O(nnz) instead of O(dim). Semantics are
// identical to Basis (differential-tested), including the RREF invariant
// that makes single-pass reduction exact and the member-indexed
// representation supports the ER bound consumes.
type SparseBasis struct {
	dim int
	tol float64
	// rankOnly disables representation-support tracking (combos): Add and
	// Dependent then report nil supports. Acceptance decisions, ranks and
	// row evolution are bit-identical to the tracking mode — the combo
	// bookkeeping never feeds back into the reduction — while Add skips
	// the O(members) coefficient upkeep and its allocations. Monte Carlo
	// scenario panels, which only consume ranks, run in this mode.
	rankOnly bool

	rows   []sparseRow
	pivots []int
	// pivotOf[col] is the row whose pivot is col, or -1. Gives O(1)
	// "which row eliminates this column" lookups during reduction.
	pivotOf []int
	combos  [][]float64

	// mergeCols/mergeVals are the axpy merge scratch: each RREF-restore
	// update merges into them and swaps them with the row's old storage, so
	// a warmed-up basis performs Add without allocating.
	mergeCols []int
	mergeVals []float64

	// factorsScratch/coeffsScratch back the per-operation elimination-factor
	// and member-coefficient vectors, so steady-state Add/Dependent calls in
	// support-tracking mode allocate nothing. They are only valid within a
	// single operation (the basis is single-writer by contract).
	factorsScratch []float64
	coeffsScratch  []float64

	// ws is the workspace the basis's own (mutating) operations reduce in;
	// read-only probes may substitute an external one via InSpanWith.
	ws *Workspace
}

// NewSparseBasis returns an empty sparse basis for vectors of the given
// dimension.
func NewSparseBasis(dim int) *SparseBasis { return NewSparseBasisTol(dim, DefaultTol) }

// NewSparseBasisRankOnly returns an empty sparse basis with support
// tracking disabled — for consumers that only need ranks and membership
// booleans (Monte Carlo scenario panels, basis-index selection).
func NewSparseBasisRankOnly(dim int) *SparseBasis {
	return newSparseBasis(dim, DefaultTol, true)
}

// NewSparseBasisTol is NewSparseBasis with an explicit zero tolerance.
func NewSparseBasisTol(dim int, tol float64) *SparseBasis {
	return newSparseBasis(dim, tol, false)
}

func newSparseBasis(dim int, tol float64, rankOnly bool) *SparseBasis {
	pv := make([]int, dim)
	for i := range pv {
		pv[i] = -1
	}
	b := &SparseBasis{
		dim:      dim,
		tol:      tol,
		rankOnly: rankOnly,
		pivotOf:  pv,
		ws:       NewWorkspace(dim),
	}
	if !rankOnly {
		// The rank can never exceed dim, so sizing the per-operation factor
		// and coefficient scratch to dim up front removes the growth
		// reallocations Add would otherwise pay each time the member count
		// crossed the previous capacity. Rank-only bases never touch either
		// scratch, so they skip the 2·dim floats.
		b.factorsScratch = make([]float64, 0, dim)
		b.coeffsScratch = make([]float64, 0, dim)
	}
	return b
}

// Rank implements RowBasis.
func (b *SparseBasis) Rank() int { return len(b.rows) }

// Dim implements RowBasis.
func (b *SparseBasis) Dim() int { return b.dim }

// Reset empties the basis for reuse, keeping its allocated workspace. Hot
// loops that rank many row subsets of the same dimension (Monte Carlo
// scenario panels) reset one basis instead of allocating per subset.
func (b *SparseBasis) Reset() {
	b.rows = b.rows[:0]
	b.pivots = b.pivots[:0]
	b.combos = b.combos[:0]
	for i := range b.pivotOf {
		b.pivotOf[i] = -1
	}
}

// reduce eliminates pivot-column components of the workspace vector.
// Because rows satisfy the RREF invariant, each pivot column needs at most
// one elimination, and eliminating with a row never reintroduces another
// pivot column. Newly touched columns are processed as they appear. When
// factors is non-nil (length = number of rows) the elimination factor of
// each row is recorded there.
func (b *SparseBasis) reduce(ws *Workspace, factors []float64) {
	dense, mark := ws.dense, ws.mark
	for k := 0; k < len(ws.touched); k++ {
		col := ws.touched[k]
		row := b.pivotOf[col]
		if row < 0 {
			continue
		}
		f := dense[col]
		if nearZero(f, b.tol) {
			continue
		}
		if factors != nil {
			factors[row] = f
		}
		r := &b.rows[row]
		vals := r.vals
		for i, c := range r.cols {
			if !mark[c] {
				mark[c] = true
				ws.touched = append(ws.touched, c)
			}
			dense[c] -= f * vals[i]
		}
		dense[col] = 0
	}
}

// reduceScratch runs reduce in the basis's own workspace, recording factors
// into the reusable factor scratch (valid until the next basis operation).
func (b *SparseBasis) reduceScratch() (factors []float64) {
	factors = b.factorBuf(len(b.rows))
	b.reduce(b.ws, factors)
	return factors
}

// factorBuf returns the factor scratch zeroed and resized to n.
func (b *SparseBasis) factorBuf(n int) []float64 {
	if cap(b.factorsScratch) < n {
		b.factorsScratch = make([]float64, n)
	}
	b.factorsScratch = b.factorsScratch[:n]
	clear(b.factorsScratch)
	return b.factorsScratch
}

// memberCoeffs expands elimination factors into coefficients over the
// accepted members, in the reusable coefficient scratch (valid until the
// next basis operation).
func (b *SparseBasis) memberCoeffs(factors []float64) []float64 {
	if cap(b.coeffsScratch) < len(b.rows) {
		b.coeffsScratch = make([]float64, len(b.rows))
	}
	coeffs := b.coeffsScratch[:len(b.rows)]
	clear(coeffs)
	for i, f := range factors {
		if f == 0 {
			continue
		}
		for k, c := range b.combos[i] {
			coeffs[k] += f * c
		}
	}
	return coeffs
}

// Dependent implements RowBasis. In rank-only mode the support is nil.
func (b *SparseBasis) Dependent(v []float64) (dependent bool, support []int) {
	return b.DependentScratch(v, nil)
}

// DependentScratch is Dependent with a caller-provided support scratch: the
// reported support is appended into scratch[:0], so a hot caller probing
// many vectors against one basis performs no per-probe allocation. The
// returned slice aliases scratch (when its capacity sufficed) and is valid
// until the caller's next use of it.
func (b *SparseBasis) DependentScratch(v []float64, scratch []int) (dependent bool, support []int) {
	if len(v) != b.dim {
		panic(fmt.Sprintf("linalg: sparse basis dim %d, vector dim %d", b.dim, len(v)))
	}
	if b.rankOnly {
		return b.InSpanWith(v, b.ws), nil
	}
	b.ws.load(v)
	factors := b.reduceScratch()
	pivot := b.ws.residualPivot(b.tol)
	b.ws.clear()
	if pivot >= 0 {
		return false, nil
	}
	support = scratch[:0]
	for k, c := range b.memberCoeffs(factors) {
		if !nearZero(c, b.tol) {
			support = append(support, k)
		}
	}
	return true, support
}

// InSpanWith reports whether v lies in the row span, reducing in the
// caller-supplied workspace and allocating nothing. It performs exactly the
// eliminations Dependent performs (so the answer is bit-identical) but
// skips the factor and support bookkeeping. The basis itself is only read:
// concurrent InSpanWith calls on one shared basis are safe as long as each
// goroutine brings its own workspace and no mutation (Add, Reset) runs
// concurrently.
func (b *SparseBasis) InSpanWith(v []float64, ws *Workspace) bool {
	if len(v) != b.dim {
		panic(fmt.Sprintf("linalg: sparse basis dim %d, vector dim %d", b.dim, len(v)))
	}
	ws.checkDim(b.dim)
	if len(b.rows) == 0 {
		// Empty basis spans only the zero vector.
		for _, x := range v {
			if !nearZero(x, b.tol) {
				return false
			}
		}
		return true
	}
	if len(b.rows) == b.dim {
		return true // full column rank spans everything
	}
	ws.load(v)
	b.reduce(ws, nil)
	pivot := ws.residualPivot(b.tol)
	ws.clear()
	return pivot < 0
}

// InSpanSparseWith is InSpanWith for a vector given in sparse form (parallel
// cols/vals sorted by column, columns within [0, dim)). Bit-identical to
// InSpanWith on the equivalent dense vector.
func (b *SparseBasis) InSpanSparseWith(cols []int, vals []float64, ws *Workspace) bool {
	ws.checkDim(b.dim)
	if len(b.rows) == 0 {
		// Empty basis spans only the zero vector; omitted columns are zero.
		for _, x := range vals {
			if !nearZero(x, b.tol) {
				return false
			}
		}
		return true
	}
	if len(b.rows) == b.dim {
		return true // full column rank spans everything
	}
	ws.loadSparse(cols, vals)
	b.reduce(ws, nil)
	pivot := ws.residualPivot(b.tol)
	ws.clear()
	return pivot < 0
}

// Representation returns the coefficients over accepted members that
// reproduce v, when v lies in the span. Not available in rank-only mode.
func (b *SparseBasis) Representation(v []float64) (coeffs []float64, ok bool) {
	if len(v) != b.dim {
		panic(fmt.Sprintf("linalg: sparse basis dim %d, vector dim %d", b.dim, len(v)))
	}
	if b.rankOnly {
		panic("linalg: Representation called on a rank-only sparse basis")
	}
	b.ws.load(v)
	factors := b.reduceScratch()
	pivot := b.ws.residualPivot(b.tol)
	b.ws.clear()
	if pivot >= 0 {
		return nil, false
	}
	// The coefficient scratch is reused by the next operation; hand the
	// caller its own copy.
	return append([]float64(nil), b.memberCoeffs(factors)...), true
}

// Add implements RowBasis.
func (b *SparseBasis) Add(v []float64) (added bool, member int, support []int) {
	if len(v) != b.dim {
		panic(fmt.Sprintf("linalg: sparse basis dim %d, vector dim %d", b.dim, len(v)))
	}
	b.ws.load(v)
	return b.addLoaded()
}

// AddSparse is Add for a vector given in sparse form: parallel cols/vals
// sorted by column, all columns within [0, dim). It skips the dense scan
// that load performs, and because loadSparse touches columns in the same
// order, the outcome is bit-identical to Add on the equivalent dense vector.
func (b *SparseBasis) AddSparse(cols []int, vals []float64) (added bool, member int, support []int) {
	b.ws.loadSparse(cols, vals)
	return b.addLoaded()
}

// addLoaded runs the Add body on the vector already scattered into b.ws.
func (b *SparseBasis) addLoaded() (added bool, member int, support []int) {
	var factors []float64
	if !b.rankOnly {
		factors = b.factorBuf(len(b.rows))
	}
	b.reduce(b.ws, factors)
	pivotCol := b.ws.residualPivot(b.tol)
	if pivotCol < 0 {
		b.ws.clear()
		if b.rankOnly {
			return false, -1, nil
		}
		for k, c := range b.memberCoeffs(factors) {
			if !nearZero(c, b.tol) {
				support = append(support, k)
			}
		}
		return false, -1, support
	}

	member = len(b.rows)
	var combo []float64
	if !b.rankOnly {
		// A retired combo left behind by Reset (beyond len, within cap)
		// donates its storage, mirroring the row-storage reuse below.
		if cap(b.combos) > member {
			combo = b.combos[:member+1][member]
		}
		if cap(combo) < member+1 {
			combo = make([]float64, member+1)
		} else {
			combo = combo[:member+1]
			clear(combo)
		}
		combo[member] = 1
		for i, f := range factors {
			if f == 0 {
				continue
			}
			for k, c := range b.combos[i] {
				combo[k] -= f * c
			}
		}
	}
	// Extract, normalize and sort the residual row. A retired row left
	// behind by Reset (beyond len, within cap) donates its storage, so
	// panel-style reuse (Reset + re-Add) settles into zero allocations.
	pv := b.ws.dense[pivotCol]
	var newRow sparseRow
	if cap(b.rows) > member {
		newRow = b.rows[:member+1][member]
		newRow.cols = newRow.cols[:0]
		newRow.vals = newRow.vals[:0]
	}
	if cap(newRow.cols) < len(b.ws.touched) {
		newRow.cols = make([]int, 0, len(b.ws.touched))
		newRow.vals = make([]float64, 0, len(b.ws.touched))
	}
	for _, j := range b.ws.touched {
		// touched is unsorted; gather then sort once below.
		x := b.ws.dense[j] / pv
		if j == pivotCol {
			x = 1
		}
		if nearZero(x, b.tol) {
			continue
		}
		newRow.cols = append(newRow.cols, j)
		newRow.vals = append(newRow.vals, x)
	}
	b.ws.clear()
	sortSparse(&newRow)
	for k := range combo {
		combo[k] /= pv
	}

	// Restore the RREF invariant: clear pivotCol from existing rows.
	for i := range b.rows {
		r := &b.rows[i]
		f := r.at(pivotCol)
		if nearZero(f, b.tol) {
			continue
		}
		b.mergeCols, b.mergeVals = r.axpy(-f, &newRow, b.tol, b.mergeCols, b.mergeVals)
		if b.rankOnly {
			continue
		}
		// combos[i] -= f·combo.
		ci := b.combos[i]
		for len(ci) < member+1 {
			ci = append(ci, 0)
		}
		for k, c := range combo {
			ci[k] -= f * c
		}
		b.combos[i] = ci
	}

	b.rows = append(b.rows, newRow)
	b.pivots = append(b.pivots, pivotCol)
	b.pivotOf[pivotCol] = member
	if !b.rankOnly {
		b.combos = append(b.combos, combo)
	}
	return true, member, nil
}

// Clone returns a deep copy of the basis, so speculative additions can be
// explored without mutating the original.
func (b *SparseBasis) Clone() *SparseBasis {
	c := NewSparseBasisTol(b.dim, b.tol)
	c.rankOnly = b.rankOnly
	c.rows = make([]sparseRow, len(b.rows))
	c.combos = make([][]float64, len(b.combos))
	c.pivots = append([]int{}, b.pivots...)
	copy(c.pivotOf, b.pivotOf)
	for i := range b.rows {
		c.rows[i] = sparseRow{
			cols: append([]int{}, b.rows[i].cols...),
			vals: append([]float64{}, b.rows[i].vals...),
		}
	}
	for i := range b.combos {
		c.combos[i] = append([]float64{}, b.combos[i]...)
	}
	return c
}

// at returns the value at column c (0 when absent) via binary search.
func (r *sparseRow) at(c int) float64 {
	lo, hi := 0, len(r.cols)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.cols[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(r.cols) && r.cols[lo] == c {
		return r.vals[lo]
	}
	return 0
}

// axpy performs r += f·other with merge semantics, dropping entries within
// tol of zero. The merge lands in the caller-provided scratch slices; the
// row's previous storage is returned as the next call's scratch, so a warm
// caller never allocates.
func (r *sparseRow) axpy(f float64, other *sparseRow, tol float64, scratchCols []int, scratchVals []float64) ([]int, []float64) {
	cols := scratchCols[:0]
	vals := scratchVals[:0]
	if need := len(r.cols) + other.nnz(); cap(cols) < need {
		cols = make([]int, 0, need)
		vals = make([]float64, 0, need)
	}
	i, j := 0, 0
	for i < len(r.cols) || j < len(other.cols) {
		switch {
		case j >= len(other.cols) || (i < len(r.cols) && r.cols[i] < other.cols[j]):
			cols = append(cols, r.cols[i])
			vals = append(vals, r.vals[i])
			i++
		case i >= len(r.cols) || other.cols[j] < r.cols[i]:
			x := f * other.vals[j]
			if !nearZero(x, tol) {
				cols = append(cols, other.cols[j])
				vals = append(vals, x)
			}
			j++
		default:
			x := r.vals[i] + f*other.vals[j]
			if !nearZero(x, tol) {
				cols = append(cols, r.cols[i])
				vals = append(vals, x)
			}
			i++
			j++
		}
	}
	oldCols, oldVals := r.cols, r.vals
	r.cols, r.vals = cols, vals
	return oldCols[:0], oldVals[:0]
}

func sortSparse(r *sparseRow) {
	// Insertion sort on (cols, vals) pairs; rows are short.
	for i := 1; i < len(r.cols); i++ {
		for j := i; j > 0 && r.cols[j] < r.cols[j-1]; j-- {
			r.cols[j], r.cols[j-1] = r.cols[j-1], r.cols[j]
			r.vals[j], r.vals[j-1] = r.vals[j-1], r.vals[j]
		}
	}
}
